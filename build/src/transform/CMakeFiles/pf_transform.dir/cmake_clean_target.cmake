file(REMOVE_RECURSE
  "libpf_transform.a"
)
