
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/Canonicalize.cpp" "src/transform/CMakeFiles/pf_transform.dir/Canonicalize.cpp.o" "gcc" "src/transform/CMakeFiles/pf_transform.dir/Canonicalize.cpp.o.d"
  "/root/repo/src/transform/MdDpSplitPass.cpp" "src/transform/CMakeFiles/pf_transform.dir/MdDpSplitPass.cpp.o" "gcc" "src/transform/CMakeFiles/pf_transform.dir/MdDpSplitPass.cpp.o.d"
  "/root/repo/src/transform/PatternMatch.cpp" "src/transform/CMakeFiles/pf_transform.dir/PatternMatch.cpp.o" "gcc" "src/transform/CMakeFiles/pf_transform.dir/PatternMatch.cpp.o.d"
  "/root/repo/src/transform/PipelinePass.cpp" "src/transform/CMakeFiles/pf_transform.dir/PipelinePass.cpp.o" "gcc" "src/transform/CMakeFiles/pf_transform.dir/PipelinePass.cpp.o.d"
  "/root/repo/src/transform/SplitUtil.cpp" "src/transform/CMakeFiles/pf_transform.dir/SplitUtil.cpp.o" "gcc" "src/transform/CMakeFiles/pf_transform.dir/SplitUtil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
