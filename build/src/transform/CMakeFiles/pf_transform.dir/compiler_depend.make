# Empty compiler generated dependencies file for pf_transform.
# This may be replaced when dependencies are built.
