file(REMOVE_RECURSE
  "CMakeFiles/pf_transform.dir/Canonicalize.cpp.o"
  "CMakeFiles/pf_transform.dir/Canonicalize.cpp.o.d"
  "CMakeFiles/pf_transform.dir/MdDpSplitPass.cpp.o"
  "CMakeFiles/pf_transform.dir/MdDpSplitPass.cpp.o.d"
  "CMakeFiles/pf_transform.dir/PatternMatch.cpp.o"
  "CMakeFiles/pf_transform.dir/PatternMatch.cpp.o.d"
  "CMakeFiles/pf_transform.dir/PipelinePass.cpp.o"
  "CMakeFiles/pf_transform.dir/PipelinePass.cpp.o.d"
  "CMakeFiles/pf_transform.dir/SplitUtil.cpp.o"
  "CMakeFiles/pf_transform.dir/SplitUtil.cpp.o.d"
  "libpf_transform.a"
  "libpf_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
