# Empty dependencies file for pf_models.
# This may be replaced when dependencies are built.
