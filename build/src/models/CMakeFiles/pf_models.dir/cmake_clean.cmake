file(REMOVE_RECURSE
  "CMakeFiles/pf_models.dir/ZooClassic.cpp.o"
  "CMakeFiles/pf_models.dir/ZooClassic.cpp.o.d"
  "CMakeFiles/pf_models.dir/ZooExtra.cpp.o"
  "CMakeFiles/pf_models.dir/ZooExtra.cpp.o.d"
  "CMakeFiles/pf_models.dir/ZooMisc.cpp.o"
  "CMakeFiles/pf_models.dir/ZooMisc.cpp.o.d"
  "CMakeFiles/pf_models.dir/ZooMobile.cpp.o"
  "CMakeFiles/pf_models.dir/ZooMobile.cpp.o.d"
  "libpf_models.a"
  "libpf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
