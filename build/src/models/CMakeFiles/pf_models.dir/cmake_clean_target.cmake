file(REMOVE_RECURSE
  "libpf_models.a"
)
