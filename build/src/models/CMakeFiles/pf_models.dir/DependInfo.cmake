
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/ZooClassic.cpp" "src/models/CMakeFiles/pf_models.dir/ZooClassic.cpp.o" "gcc" "src/models/CMakeFiles/pf_models.dir/ZooClassic.cpp.o.d"
  "/root/repo/src/models/ZooExtra.cpp" "src/models/CMakeFiles/pf_models.dir/ZooExtra.cpp.o" "gcc" "src/models/CMakeFiles/pf_models.dir/ZooExtra.cpp.o.d"
  "/root/repo/src/models/ZooMisc.cpp" "src/models/CMakeFiles/pf_models.dir/ZooMisc.cpp.o" "gcc" "src/models/CMakeFiles/pf_models.dir/ZooMisc.cpp.o.d"
  "/root/repo/src/models/ZooMobile.cpp" "src/models/CMakeFiles/pf_models.dir/ZooMobile.cpp.o" "gcc" "src/models/CMakeFiles/pf_models.dir/ZooMobile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
