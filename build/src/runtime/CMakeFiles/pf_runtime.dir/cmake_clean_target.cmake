file(REMOVE_RECURSE
  "libpf_runtime.a"
)
