
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/ExecutionEngine.cpp" "src/runtime/CMakeFiles/pf_runtime.dir/ExecutionEngine.cpp.o" "gcc" "src/runtime/CMakeFiles/pf_runtime.dir/ExecutionEngine.cpp.o.d"
  "/root/repo/src/runtime/Interpreter.cpp" "src/runtime/CMakeFiles/pf_runtime.dir/Interpreter.cpp.o" "gcc" "src/runtime/CMakeFiles/pf_runtime.dir/Interpreter.cpp.o.d"
  "/root/repo/src/runtime/MemoryPlanner.cpp" "src/runtime/CMakeFiles/pf_runtime.dir/MemoryPlanner.cpp.o" "gcc" "src/runtime/CMakeFiles/pf_runtime.dir/MemoryPlanner.cpp.o.d"
  "/root/repo/src/runtime/TimelineDump.cpp" "src/runtime/CMakeFiles/pf_runtime.dir/TimelineDump.cpp.o" "gcc" "src/runtime/CMakeFiles/pf_runtime.dir/TimelineDump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pf_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
