file(REMOVE_RECURSE
  "CMakeFiles/pf_runtime.dir/ExecutionEngine.cpp.o"
  "CMakeFiles/pf_runtime.dir/ExecutionEngine.cpp.o.d"
  "CMakeFiles/pf_runtime.dir/Interpreter.cpp.o"
  "CMakeFiles/pf_runtime.dir/Interpreter.cpp.o.d"
  "CMakeFiles/pf_runtime.dir/MemoryPlanner.cpp.o"
  "CMakeFiles/pf_runtime.dir/MemoryPlanner.cpp.o.d"
  "CMakeFiles/pf_runtime.dir/TimelineDump.cpp.o"
  "CMakeFiles/pf_runtime.dir/TimelineDump.cpp.o.d"
  "libpf_runtime.a"
  "libpf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
