
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/CommandGenerator.cpp" "src/codegen/CMakeFiles/pf_codegen.dir/CommandGenerator.cpp.o" "gcc" "src/codegen/CMakeFiles/pf_codegen.dir/CommandGenerator.cpp.o.d"
  "/root/repo/src/codegen/MemoryOptimizer.cpp" "src/codegen/CMakeFiles/pf_codegen.dir/MemoryOptimizer.cpp.o" "gcc" "src/codegen/CMakeFiles/pf_codegen.dir/MemoryOptimizer.cpp.o.d"
  "/root/repo/src/codegen/PimKernelSpec.cpp" "src/codegen/CMakeFiles/pf_codegen.dir/PimKernelSpec.cpp.o" "gcc" "src/codegen/CMakeFiles/pf_codegen.dir/PimKernelSpec.cpp.o.d"
  "/root/repo/src/codegen/WeightPlacement.cpp" "src/codegen/CMakeFiles/pf_codegen.dir/WeightPlacement.cpp.o" "gcc" "src/codegen/CMakeFiles/pf_codegen.dir/WeightPlacement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pf_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
