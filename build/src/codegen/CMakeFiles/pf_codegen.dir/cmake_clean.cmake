file(REMOVE_RECURSE
  "CMakeFiles/pf_codegen.dir/CommandGenerator.cpp.o"
  "CMakeFiles/pf_codegen.dir/CommandGenerator.cpp.o.d"
  "CMakeFiles/pf_codegen.dir/MemoryOptimizer.cpp.o"
  "CMakeFiles/pf_codegen.dir/MemoryOptimizer.cpp.o.d"
  "CMakeFiles/pf_codegen.dir/PimKernelSpec.cpp.o"
  "CMakeFiles/pf_codegen.dir/PimKernelSpec.cpp.o.d"
  "CMakeFiles/pf_codegen.dir/WeightPlacement.cpp.o"
  "CMakeFiles/pf_codegen.dir/WeightPlacement.cpp.o.d"
  "libpf_codegen.a"
  "libpf_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
