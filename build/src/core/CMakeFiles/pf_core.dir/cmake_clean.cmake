file(REMOVE_RECURSE
  "CMakeFiles/pf_core.dir/PimFlow.cpp.o"
  "CMakeFiles/pf_core.dir/PimFlow.cpp.o.d"
  "CMakeFiles/pf_core.dir/Report.cpp.o"
  "CMakeFiles/pf_core.dir/Report.cpp.o.d"
  "libpf_core.a"
  "libpf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
