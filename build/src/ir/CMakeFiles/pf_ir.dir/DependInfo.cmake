
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Builder.cpp" "src/ir/CMakeFiles/pf_ir.dir/Builder.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/Builder.cpp.o.d"
  "/root/repo/src/ir/Graph.cpp" "src/ir/CMakeFiles/pf_ir.dir/Graph.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/Graph.cpp.o.d"
  "/root/repo/src/ir/GraphPrinter.cpp" "src/ir/CMakeFiles/pf_ir.dir/GraphPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/GraphPrinter.cpp.o.d"
  "/root/repo/src/ir/GraphSerializer.cpp" "src/ir/CMakeFiles/pf_ir.dir/GraphSerializer.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/GraphSerializer.cpp.o.d"
  "/root/repo/src/ir/Metrics.cpp" "src/ir/CMakeFiles/pf_ir.dir/Metrics.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/Metrics.cpp.o.d"
  "/root/repo/src/ir/Parallelism.cpp" "src/ir/CMakeFiles/pf_ir.dir/Parallelism.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/Parallelism.cpp.o.d"
  "/root/repo/src/ir/ShapeInference.cpp" "src/ir/CMakeFiles/pf_ir.dir/ShapeInference.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/ShapeInference.cpp.o.d"
  "/root/repo/src/ir/Tensor.cpp" "src/ir/CMakeFiles/pf_ir.dir/Tensor.cpp.o" "gcc" "src/ir/CMakeFiles/pf_ir.dir/Tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
