file(REMOVE_RECURSE
  "CMakeFiles/pf_ir.dir/Builder.cpp.o"
  "CMakeFiles/pf_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/pf_ir.dir/Graph.cpp.o"
  "CMakeFiles/pf_ir.dir/Graph.cpp.o.d"
  "CMakeFiles/pf_ir.dir/GraphPrinter.cpp.o"
  "CMakeFiles/pf_ir.dir/GraphPrinter.cpp.o.d"
  "CMakeFiles/pf_ir.dir/GraphSerializer.cpp.o"
  "CMakeFiles/pf_ir.dir/GraphSerializer.cpp.o.d"
  "CMakeFiles/pf_ir.dir/Metrics.cpp.o"
  "CMakeFiles/pf_ir.dir/Metrics.cpp.o.d"
  "CMakeFiles/pf_ir.dir/Parallelism.cpp.o"
  "CMakeFiles/pf_ir.dir/Parallelism.cpp.o.d"
  "CMakeFiles/pf_ir.dir/ShapeInference.cpp.o"
  "CMakeFiles/pf_ir.dir/ShapeInference.cpp.o.d"
  "CMakeFiles/pf_ir.dir/Tensor.cpp.o"
  "CMakeFiles/pf_ir.dir/Tensor.cpp.o.d"
  "libpf_ir.a"
  "libpf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
