file(REMOVE_RECURSE
  "libpf_search.a"
)
