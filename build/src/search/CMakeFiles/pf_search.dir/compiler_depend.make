# Empty compiler generated dependencies file for pf_search.
# This may be replaced when dependencies are built.
