file(REMOVE_RECURSE
  "CMakeFiles/pf_search.dir/CostProvider.cpp.o"
  "CMakeFiles/pf_search.dir/CostProvider.cpp.o.d"
  "CMakeFiles/pf_search.dir/LayerExtract.cpp.o"
  "CMakeFiles/pf_search.dir/LayerExtract.cpp.o.d"
  "CMakeFiles/pf_search.dir/Profiler.cpp.o"
  "CMakeFiles/pf_search.dir/Profiler.cpp.o.d"
  "CMakeFiles/pf_search.dir/SearchEngine.cpp.o"
  "CMakeFiles/pf_search.dir/SearchEngine.cpp.o.d"
  "libpf_search.a"
  "libpf_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
