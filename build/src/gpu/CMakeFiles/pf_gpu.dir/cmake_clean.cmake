file(REMOVE_RECURSE
  "CMakeFiles/pf_gpu.dir/GpuModel.cpp.o"
  "CMakeFiles/pf_gpu.dir/GpuModel.cpp.o.d"
  "libpf_gpu.a"
  "libpf_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
