# Empty dependencies file for pf_gpu.
# This may be replaced when dependencies are built.
