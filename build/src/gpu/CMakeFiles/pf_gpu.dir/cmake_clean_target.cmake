file(REMOVE_RECURSE
  "libpf_gpu.a"
)
