file(REMOVE_RECURSE
  "CMakeFiles/pf_support.dir/StringUtil.cpp.o"
  "CMakeFiles/pf_support.dir/StringUtil.cpp.o.d"
  "CMakeFiles/pf_support.dir/Table.cpp.o"
  "CMakeFiles/pf_support.dir/Table.cpp.o.d"
  "libpf_support.a"
  "libpf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
