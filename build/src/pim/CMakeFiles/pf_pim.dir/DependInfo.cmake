
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/PimSimulator.cpp" "src/pim/CMakeFiles/pf_pim.dir/PimSimulator.cpp.o" "gcc" "src/pim/CMakeFiles/pf_pim.dir/PimSimulator.cpp.o.d"
  "/root/repo/src/pim/ReferenceSimulator.cpp" "src/pim/CMakeFiles/pf_pim.dir/ReferenceSimulator.cpp.o" "gcc" "src/pim/CMakeFiles/pf_pim.dir/ReferenceSimulator.cpp.o.d"
  "/root/repo/src/pim/TraceIO.cpp" "src/pim/CMakeFiles/pf_pim.dir/TraceIO.cpp.o" "gcc" "src/pim/CMakeFiles/pf_pim.dir/TraceIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
