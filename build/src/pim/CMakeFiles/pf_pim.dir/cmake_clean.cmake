file(REMOVE_RECURSE
  "CMakeFiles/pf_pim.dir/PimSimulator.cpp.o"
  "CMakeFiles/pf_pim.dir/PimSimulator.cpp.o.d"
  "CMakeFiles/pf_pim.dir/ReferenceSimulator.cpp.o"
  "CMakeFiles/pf_pim.dir/ReferenceSimulator.cpp.o.d"
  "CMakeFiles/pf_pim.dir/TraceIO.cpp.o"
  "CMakeFiles/pf_pim.dir/TraceIO.cpp.o.d"
  "libpf_pim.a"
  "libpf_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
