# Empty compiler generated dependencies file for pf_pim.
# This may be replaced when dependencies are built.
