file(REMOVE_RECURSE
  "libpf_pim.a"
)
