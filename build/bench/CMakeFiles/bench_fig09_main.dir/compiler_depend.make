# Empty compiler generated dependencies file for bench_fig09_main.
# This may be replaced when dependencies are built.
