file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_main.dir/bench_fig09_main.cpp.o"
  "CMakeFiles/bench_fig09_main.dir/bench_fig09_main.cpp.o.d"
  "bench_fig09_main"
  "bench_fig09_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
