file(REMOVE_RECURSE
  "CMakeFiles/bench_prelim_parallelism.dir/bench_prelim_parallelism.cpp.o"
  "CMakeFiles/bench_prelim_parallelism.dir/bench_prelim_parallelism.cpp.o.d"
  "bench_prelim_parallelism"
  "bench_prelim_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prelim_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
