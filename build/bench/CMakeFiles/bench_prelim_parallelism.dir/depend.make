# Empty dependencies file for bench_prelim_parallelism.
# This may be replaced when dependencies are built.
