
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_arch_compare.cpp" "bench/CMakeFiles/bench_arch_compare.dir/bench_arch_compare.cpp.o" "gcc" "bench/CMakeFiles/bench_arch_compare.dir/bench_arch_compare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pf_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/pf_search.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pf_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/pf_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
