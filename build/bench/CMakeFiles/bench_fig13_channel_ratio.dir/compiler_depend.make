# Empty compiler generated dependencies file for bench_fig13_channel_ratio.
# This may be replaced when dependencies are built.
