# Empty dependencies file for bench_fig14_cmd_opts.
# This may be replaced when dependencies are built.
