# Empty compiler generated dependencies file for bench_fig03_channels.
# This may be replaced when dependencies are built.
