file(REMOVE_RECURSE
  "CMakeFiles/pf_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/pf_bench_common.dir/BenchCommon.cpp.o.d"
  "libpf_bench_common.a"
  "libpf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
