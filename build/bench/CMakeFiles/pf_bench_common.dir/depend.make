# Empty dependencies file for pf_bench_common.
# This may be replaced when dependencies are built.
