file(REMOVE_RECURSE
  "libpf_bench_common.a"
)
