file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_layerwise.dir/bench_fig10_layerwise.cpp.o"
  "CMakeFiles/bench_fig10_layerwise.dir/bench_fig10_layerwise.cpp.o.d"
  "bench_fig10_layerwise"
  "bench_fig10_layerwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
