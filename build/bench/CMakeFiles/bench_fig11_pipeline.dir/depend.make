# Empty dependencies file for bench_fig11_pipeline.
# This may be replaced when dependencies are built.
