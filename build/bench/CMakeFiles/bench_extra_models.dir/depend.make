# Empty dependencies file for bench_extra_models.
# This may be replaced when dependencies are built.
