file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_models.dir/bench_extra_models.cpp.o"
  "CMakeFiles/bench_extra_models.dir/bench_extra_models.cpp.o.d"
  "bench_extra_models"
  "bench_extra_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
