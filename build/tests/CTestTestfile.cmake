# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/pim_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
