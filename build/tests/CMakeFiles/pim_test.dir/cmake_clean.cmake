file(REMOVE_RECURSE
  "CMakeFiles/pim_test.dir/pim/PimSimulatorTest.cpp.o"
  "CMakeFiles/pim_test.dir/pim/PimSimulatorTest.cpp.o.d"
  "CMakeFiles/pim_test.dir/pim/TraceIOTest.cpp.o"
  "CMakeFiles/pim_test.dir/pim/TraceIOTest.cpp.o.d"
  "pim_test"
  "pim_test.pdb"
  "pim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
