file(REMOVE_RECURSE
  "CMakeFiles/search_test.dir/search/AlgorithmDpTest.cpp.o"
  "CMakeFiles/search_test.dir/search/AlgorithmDpTest.cpp.o.d"
  "CMakeFiles/search_test.dir/search/LayerExtractTest.cpp.o"
  "CMakeFiles/search_test.dir/search/LayerExtractTest.cpp.o.d"
  "CMakeFiles/search_test.dir/search/ProfilerTest.cpp.o"
  "CMakeFiles/search_test.dir/search/ProfilerTest.cpp.o.d"
  "CMakeFiles/search_test.dir/search/SearchEngineTest.cpp.o"
  "CMakeFiles/search_test.dir/search/SearchEngineTest.cpp.o.d"
  "search_test"
  "search_test.pdb"
  "search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
