file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/runtime/ExecutionEngineTest.cpp.o"
  "CMakeFiles/engine_test.dir/runtime/ExecutionEngineTest.cpp.o.d"
  "CMakeFiles/engine_test.dir/runtime/MemoryPlannerTest.cpp.o"
  "CMakeFiles/engine_test.dir/runtime/MemoryPlannerTest.cpp.o.d"
  "CMakeFiles/engine_test.dir/runtime/SchedulerPropertyTest.cpp.o"
  "CMakeFiles/engine_test.dir/runtime/SchedulerPropertyTest.cpp.o.d"
  "CMakeFiles/engine_test.dir/runtime/TimelineDumpTest.cpp.o"
  "CMakeFiles/engine_test.dir/runtime/TimelineDumpTest.cpp.o.d"
  "engine_test"
  "engine_test.pdb"
  "engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
