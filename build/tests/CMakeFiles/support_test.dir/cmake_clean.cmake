file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/support/FormatTest.cpp.o"
  "CMakeFiles/support_test.dir/support/FormatTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/RandomTest.cpp.o"
  "CMakeFiles/support_test.dir/support/RandomTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/StatsTest.cpp.o"
  "CMakeFiles/support_test.dir/support/StatsTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/StringUtilTest.cpp.o"
  "CMakeFiles/support_test.dir/support/StringUtilTest.cpp.o.d"
  "CMakeFiles/support_test.dir/support/TableTest.cpp.o"
  "CMakeFiles/support_test.dir/support/TableTest.cpp.o.d"
  "support_test"
  "support_test.pdb"
  "support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
