file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/ir/ApiContractTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/ApiContractTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/BuilderTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/BuilderTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/GraphTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/GraphTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/MetricsTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/MetricsTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/NewOpsTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/NewOpsTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/ParallelismTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/ParallelismTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/PrinterTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/PrinterTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/SerializerTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/SerializerTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/ShapeInferenceTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/ShapeInferenceTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/TensorTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/TensorTest.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
