
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/ApiContractTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/ApiContractTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/ApiContractTest.cpp.o.d"
  "/root/repo/tests/ir/BuilderTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/BuilderTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/BuilderTest.cpp.o.d"
  "/root/repo/tests/ir/GraphTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/GraphTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/GraphTest.cpp.o.d"
  "/root/repo/tests/ir/MetricsTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/MetricsTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/MetricsTest.cpp.o.d"
  "/root/repo/tests/ir/NewOpsTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/NewOpsTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/NewOpsTest.cpp.o.d"
  "/root/repo/tests/ir/ParallelismTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/ParallelismTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/ParallelismTest.cpp.o.d"
  "/root/repo/tests/ir/PrinterTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/PrinterTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/PrinterTest.cpp.o.d"
  "/root/repo/tests/ir/SerializerTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/SerializerTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/SerializerTest.cpp.o.d"
  "/root/repo/tests/ir/ShapeInferenceTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/ShapeInferenceTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/ShapeInferenceTest.cpp.o.d"
  "/root/repo/tests/ir/TensorTest.cpp" "tests/CMakeFiles/ir_test.dir/ir/TensorTest.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/TensorTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/pf_search.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pf_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/pf_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
