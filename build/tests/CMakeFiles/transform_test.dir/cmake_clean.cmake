file(REMOVE_RECURSE
  "CMakeFiles/transform_test.dir/transform/CanonicalizeTest.cpp.o"
  "CMakeFiles/transform_test.dir/transform/CanonicalizeTest.cpp.o.d"
  "CMakeFiles/transform_test.dir/transform/MdDpSplitTest.cpp.o"
  "CMakeFiles/transform_test.dir/transform/MdDpSplitTest.cpp.o.d"
  "CMakeFiles/transform_test.dir/transform/PatternMatchTest.cpp.o"
  "CMakeFiles/transform_test.dir/transform/PatternMatchTest.cpp.o.d"
  "CMakeFiles/transform_test.dir/transform/PipelineTest.cpp.o"
  "CMakeFiles/transform_test.dir/transform/PipelineTest.cpp.o.d"
  "CMakeFiles/transform_test.dir/transform/SplitUtilTest.cpp.o"
  "CMakeFiles/transform_test.dir/transform/SplitUtilTest.cpp.o.d"
  "transform_test"
  "transform_test.pdb"
  "transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
