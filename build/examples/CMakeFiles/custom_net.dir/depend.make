# Empty dependencies file for custom_net.
# This may be replaced when dependencies are built.
