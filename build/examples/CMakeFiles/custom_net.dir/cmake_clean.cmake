file(REMOVE_RECURSE
  "CMakeFiles/custom_net.dir/custom_net.cpp.o"
  "CMakeFiles/custom_net.dir/custom_net.cpp.o.d"
  "custom_net"
  "custom_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
