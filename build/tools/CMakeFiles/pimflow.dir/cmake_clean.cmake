file(REMOVE_RECURSE
  "CMakeFiles/pimflow.dir/pimflow.cpp.o"
  "CMakeFiles/pimflow.dir/pimflow.cpp.o.d"
  "pimflow"
  "pimflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
