# Empty dependencies file for pimflow.
# This may be replaced when dependencies are built.
