# Empty compiler generated dependencies file for pimflow.
# This may be replaced when dependencies are built.
