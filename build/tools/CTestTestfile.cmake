# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(pimflow_cli_profile_split "/root/repo/build/tools/pimflow" "-m=profile" "-t=split" "-n=toy" "--dir=/root/repo/build/tools")
set_tests_properties(pimflow_cli_profile_split PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_profile_pipeline "/root/repo/build/tools/pimflow" "-m=profile" "-t=pipeline" "-n=toy" "--dir=/root/repo/build/tools")
set_tests_properties(pimflow_cli_profile_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_solve "/root/repo/build/tools/pimflow" "-m=solve" "-n=toy" "--dir=/root/repo/build/tools")
set_tests_properties(pimflow_cli_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_run "/root/repo/build/tools/pimflow" "-m=run" "-n=toy" "--dir=/root/repo/build/tools")
set_tests_properties(pimflow_cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_run_gpu_only "/root/repo/build/tools/pimflow" "-m=run" "--gpu_only" "-n=toy" "--dir=/root/repo/build/tools")
set_tests_properties(pimflow_cli_run_gpu_only PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_bad_args "/root/repo/build/tools/pimflow" "-m=nonsense")
set_tests_properties(pimflow_cli_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_trace "/root/repo/build/tools/pimflow" "-m=trace" "-n=toy" "--dir=/root/repo/build/tools")
set_tests_properties(pimflow_cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_unknown_model "/root/repo/build/tools/pimflow" "-m=run" "-n=notanet")
set_tests_properties(pimflow_cli_unknown_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(pimflow_cli_run_solved_graph "/root/repo/build/tools/pimflow" "-m=run" "-n=toy" "--graph=/root/repo/build/tools/toy.pimflow.graph" "--dir=/root/repo/build/tools")
set_tests_properties(pimflow_cli_run_solved_graph PROPERTIES  DEPENDS "pimflow_cli_solve" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
