//===- bench/bench_fig16_scaling.cpp - Fig. 16 ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 16: model-type and model-size sensitivity. (a) BERT at
/// sequence lengths 3 and 64: for the tiny input PIMFlow matches Newton++,
/// while the longer sequence opens MD-DP over the FC batch rows. (b)
/// Scaled EfficientNet variants: PIMFlow's advantage shrinks as the model
/// grows, because even 1x1 CONV layers gain arithmetic intensity and data
/// reuse that favor the GPU.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Figure 16", "Model type and size sensitivity");

  // (a) BERT sequence-length study.
  std::printf("(a) BERT-base encoder (normalized to GPU baseline):\n");
  Table Bert;
  Bert.setHeader({"input", "Baseline", "Newton++", "PIMFlow",
                  "PIMFlow vs Newton++"});
  for (int64_t Seq : {3, 64}) {
    Graph Short = buildBertEncoder(Seq);
    const double Base =
        PimFlow(OffloadPolicy::GpuOnly).compileAndRun(Short).endToEndNs();
    const double Npp = PimFlow(OffloadPolicy::NewtonPlusPlus)
                           .compileAndRun(Short)
                           .endToEndNs();
    const double Flow =
        PimFlow(OffloadPolicy::PimFlow).compileAndRun(Short).endToEndNs();
    Bert.addRow({formatStr("1x%lld", (long long)Seq), "1.000",
                 norm(Npp, Base), norm(Flow, Base),
                 formatStr("%+.0f%%", (Npp / Flow - 1.0) * 100.0)});
  }
  std::printf("%s\n", Bert.render().c_str());

  // (b) Scaled EfficientNets.
  std::printf("(b) EfficientNet scaling (PIMFlow end-to-end speedup over "
              "the GPU baseline):\n");
  Table ENet;
  ENet.setHeader({"variant", "resolution", "baseline (us)",
                  "pimflow (us)", "speedup"});
  for (int V : {0, 1, 2, 3, 4, 6}) {
    Graph G = buildEfficientNet(V);
    const int64_t Res = G.value(G.graphInputs()[0]).Shape.dim(1);
    const double Base =
        PimFlow(OffloadPolicy::GpuOnly).compileAndRun(G).endToEndNs();
    const double Flow =
        PimFlow(OffloadPolicy::PimFlow).compileAndRun(G).endToEndNs();
    ENet.addRow({formatStr("ENetB%d", V),
                 formatStr("%lld", (long long)Res),
                 formatStr("%.0f", Base / 1e3),
                 formatStr("%.0f", Flow / 1e3),
                 formatStr("%+.0f%%", (Base / Flow - 1.0) * 100.0)});
  }
  std::printf("%s\n", ENet.render().c_str());

  // (c) Width-scaled MobileNetV2 / MnasNet (the paper also scales these).
  std::printf("(c) width-scaled mobile nets (PIMFlow end-to-end speedup "
              "over the GPU baseline):\n");
  Table Mob;
  Mob.setHeader({"model", "w1.0", "w1.4", "w2.0"});
  for (int Which = 0; Which < 2; ++Which) {
    std::vector<std::string> Row = {Which == 0 ? "mobilenet-v2"
                                               : "mnasnet"};
    for (double W : {1.0, 1.4, 2.0}) {
      Graph G = Which == 0 ? buildMobileNetV2(W) : buildMnasNet(W);
      const double Base =
          PimFlow(OffloadPolicy::GpuOnly).compileAndRun(G).endToEndNs();
      const double Flow =
          PimFlow(OffloadPolicy::PimFlow).compileAndRun(G).endToEndNs();
      Row.push_back(formatStr("%+.0f%%", (Base / Flow - 1.0) * 100.0));
    }
    Mob.addRow(Row);
  }
  std::printf("%s\n", Mob.render().c_str());

  std::printf("Expected shape: BERT 1x3 gains nothing from PIMFlow over "
              "Newton++ while 1x64 gains substantially (paper: +32%%); "
              "the EfficientNet speedup decays as the variant grows "
              "(paper: down to ~7%% at B6; our simulated crossover "
              "arrives earlier, around B4, because large activations "
              "punish the halved GPU channel count harder).\n");
  return 0;
}
