//===- bench/BenchCommon.cpp - Shared bench harness helpers -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

namespace pf::bench {

CompileResult &cachedRun(const std::string &Key, const std::string &Model,
                         OffloadPolicy Policy,
                         const PimFlowOptions &Options) {
  static std::map<std::string, CompileResult> Cache;
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  Graph G = buildModel(Model);
  PimFlow Flow(Policy, Options);
  return Cache.emplace(Key, Flow.compileAndRun(G)).first->second;
}

void printHeader(const char *Figure, const char *Caption) {
  std::printf("=== %s ===\n%s\n\n", Figure, Caption);
}

std::string norm(double Value, double Baseline) {
  return formatStr("%.3f", Baseline > 0.0 ? Value / Baseline : 0.0);
}

} // namespace pf::bench
