//===- bench/BenchCommon.cpp - Shared bench harness helpers -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/Counters.h"
#include "obs/Json.h"

namespace pf::bench {

namespace {

std::string &currentFigure() {
  static std::string Figure;
  return Figure;
}

std::vector<BenchResult> &results() {
  static std::vector<BenchResult> Results;
  return Results;
}

/// Installs (once) an atexit hook that dumps the results log to the path in
/// PIMFLOW_BENCH_JSON, so every bench binary emits machine-readable data
/// without per-main wiring.
void armAutoDump() {
  static bool Armed = false;
  if (Armed)
    return;
  Armed = true;
  if (!std::getenv("PIMFLOW_BENCH_JSON"))
    return;
  // Construct the log statics BEFORE registering the handler: destructors
  // and atexit handlers run in reverse registration order, so this keeps
  // the vector alive when the handler fires.
  results();
  currentFigure();
  std::atexit([] {
    const char *Path = std::getenv("PIMFLOW_BENCH_JSON");
    if (!Path)
      return;
    if (!writeResultsJson(Path))
      std::fprintf(stderr, "warning: cannot write bench JSON to %s\n", Path);
  });
}

} // namespace

CompileResult &cachedRun(const std::string &Key, const std::string &Model,
                         OffloadPolicy Policy,
                         const PimFlowOptions &Options) {
  static std::map<std::string, CompileResult> Cache;
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  // Each fresh run starts from a clean registry, so the counters recorded
  // with its result cover this iteration alone — a bench binary's JSON
  // dump is then per-iteration, not cumulative across its sweep.
  obs::resetAll();
  Graph G = buildModel(Model);
  PimFlow Flow(Policy, Options);
  CompileResult &R = Cache.emplace(Key, Flow.compileAndRun(G)).first->second;
  BenchResult BR;
  BR.Figure = currentFigure();
  BR.Key = Key;
  BR.Model = Model;
  BR.Policy = policyName(Policy);
  BR.EndToEndNs = R.endToEndNs();
  BR.EnergyJ = R.energyJ();
  BR.Counters = obs::Registry::instance().counterSnapshot();
  recordResult(BR);
  return R;
}

void printHeader(const char *Figure, const char *Caption) {
  armAutoDump();
  currentFigure() = Figure;
  std::printf("=== %s ===\n%s\n\n", Figure, Caption);
}

std::string norm(double Value, double Baseline) {
  return formatStr("%.3f", Baseline > 0.0 ? Value / Baseline : 0.0);
}

void recordResult(const BenchResult &R) {
  armAutoDump();
  results().push_back(R);
}

std::string renderResultsJson() {
  obs::JsonWriter W;
  W.beginObject().key("results").beginArray();
  for (const BenchResult &R : results()) {
    W.beginObject()
        .field("figure", R.Figure)
        .field("key", R.Key)
        .field("model", R.Model)
        .field("policy", R.Policy)
        .field("end_to_end_ns", R.EndToEndNs)
        .field("energy_j", R.EnergyJ);
    if (!R.Counters.empty()) {
      W.key("counters").beginObject();
      for (const auto &[Name, Value] : R.Counters)
        W.field(Name, Value);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray().endObject();
  return W.take();
}

bool writeResultsJson(const std::string &Path) {
  return obs::writeTextFile(Path, renderResultsJson());
}

} // namespace pf::bench
