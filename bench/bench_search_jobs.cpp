//===- bench/bench_search_jobs.cpp - Parallel profiling speedup -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock cost of the execution-mode search (Algorithm 1) with the
/// candidate-profiling pre-pass running serially (--jobs=1) versus on every
/// hardware thread (--jobs=0). Each run starts from a cold profiler so the
/// measured time is dominated by candidate simulation, which is what the
/// pre-pass parallelizes; the chosen plan is asserted identical across job
/// counts. Speedup over ~1.0x requires a multi-core host.
///
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdio>

#include "BenchCommon.h"
#include "search/SearchEngine.h"
#include "support/Assert.h"
#include "support/ThreadPool.h"

using namespace pf;
using namespace pf::bench;

namespace {

struct TimedSearch {
  double WallNs = 0.0;
  double PlanNs = 0.0; ///< Predicted cost of the chosen plan.
};

TimedSearch timedSearch(const Graph &G, int Jobs) {
  Profiler P(systemConfigFor(OffloadPolicy::PimFlow, {}));
  SearchOptions S = searchOptionsFor(OffloadPolicy::PimFlow, {});
  S.Jobs = Jobs;
  SearchEngine Engine(P, S);
  const auto T0 = std::chrono::steady_clock::now();
  const ExecutionPlan Plan = Engine.search(G);
  const auto T1 = std::chrono::steady_clock::now();
  TimedSearch R;
  R.WallNs = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0).count());
  R.PlanNs = Plan.PredictedNs;
  return R;
}

} // namespace

int main() {
  const unsigned HwThreads = ThreadPool::defaultConcurrency();
  printHeader("Search speedup from parallel candidate profiling",
              "Cold-cache Algorithm 1 wall-clock, jobs=1 vs jobs=<all>");
  std::printf("hardware threads: %u\n\n", HwThreads);

  Table T;
  T.setHeader({"model", "jobs=1 (ms)", "jobs=all (ms)", "speedup"});
  for (const std::string Model :
       {"mobilenet-v2", "efficientnet-v1-b0", "resnet-50"}) {
    const Graph G = buildModel(Model);
    const TimedSearch Serial = timedSearch(G, 1);
    const TimedSearch Parallel = timedSearch(G, 0);
    PF_ASSERT(Serial.PlanNs == Parallel.PlanNs,
              "parallel search diverged from the serial plan cost");
    T.addRow({Model, formatStr("%.2f", Serial.WallNs / 1e6),
              formatStr("%.2f", Parallel.WallNs / 1e6),
              formatStr("%.2fx", Serial.WallNs / Parallel.WallNs)});
    BenchResult R1;
    R1.Figure = "search-jobs";
    R1.Key = "search_jobs1_" + Model;
    R1.Model = Model;
    R1.Policy = "pimflow";
    R1.EndToEndNs = Serial.WallNs;
    recordResult(R1);
    BenchResult RN;
    RN.Figure = "search-jobs";
    RN.Key = formatStr("search_jobsall%u_%s", HwThreads, Model.c_str());
    RN.Model = Model;
    RN.Policy = "pimflow";
    RN.EndToEndNs = Parallel.WallNs;
    recordResult(RN);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: speedup approaches the smaller of the "
              "hardware thread count and the candidate-level parallelism; "
              "on a single-core host both columns match.\n");
  return 0;
}
