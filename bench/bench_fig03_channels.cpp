//===- bench/bench_fig03_channels.cpp - Fig. 3 ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 3: GPU-only model inference time as the number of
/// memory channels shrinks, normalized to 24 channels (the paper's
/// preliminary study motivating the GPU/PIM channel split: compute-
/// intensive models tolerate losing half the channels).
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Figure 3",
              "GPU-only inference time vs memory channel count "
              "(normalized to 24 channels)");

  const int Channels[] = {8, 12, 16, 20, 24, 28, 32};

  Table T;
  {
    std::vector<std::string> Header = {"model"};
    for (int C : Channels)
      Header.push_back(formatStr("%dch", C));
    T.setHeader(Header);
  }

  for (const std::string &Name : modelNames()) {
    std::map<int, double> Ns;
    for (int C : Channels) {
      PimFlowOptions O;
      O.TotalChannels = C;
      Ns[C] = cachedRun(formatStr("f3/%s/%d", Name.c_str(), C), Name,
                        OffloadPolicy::GpuOnly, O)
                  .endToEndNs();
    }
    std::vector<std::string> Row = {Name};
    for (int C : Channels)
      Row.push_back(norm(Ns[C], Ns[24]));
    T.addRow(Row);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: compute-bound models (ResNet-50, VGG-16 "
              "convs) degrade little down to ~16 channels; bandwidth-"
              "hungry models degrade more below that.\n");
  return 0;
}
