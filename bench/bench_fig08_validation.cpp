//===- bench/bench_fig08_validation.cpp - Fig. 8 ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 8 (the simulator-validation experiment): PIM-vs-GPU
/// speedup for the Newton matrix-vector kernel benchmarks across batch
/// sizes, on a Titan-V-like 24-HBM-channel GPU configuration. The paper's
/// reproduction measured 20.4x at batch 1, shrinking as the batch grows
/// (GPU weight reuse improves; PIM time scales linearly with vectors).
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"
#include "ir/Builder.h"
#include "search/Profiler.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Figure 8",
              "Simulator validation: PIM speedup over GPU for "
              "matrix-vector kernels vs batch size (Titan-V-like GPU)");

  SystemConfig C;
  C.Gpu = GpuConfig::titanVLike();
  C.Pim = PimConfig::newtonPlusPlus();
  Profiler P(C);

  struct MatrixCase {
    int64_t K, M;
  };
  const MatrixCase Matrices[] = {
      {2048, 2048}, {4096, 4096}, {8192, 4096}, {25088, 4096}};
  const int64_t Batches[] = {1, 2, 4, 8, 16};

  Table T;
  {
    std::vector<std::string> Header = {"matrix (KxM)"};
    for (int64_t B : Batches)
      Header.push_back(formatStr("b=%lld", (long long)B));
    T.setHeader(Header);
  }

  for (const MatrixCase &MC : Matrices) {
    std::vector<std::string> Row = {
        formatStr("%lldx%lld", (long long)MC.K, (long long)MC.M)};
    for (int64_t Batch : Batches) {
      GraphBuilder B("gemv");
      ValueId X = B.input("x", TensorShape{Batch, MC.K});
      B.output(B.gemm(X, MC.M));
      Graph G = B.take();
      NodeId N = G.topoOrder().front();
      const double Speedup = P.gpuNodeNs(G, N) / P.pimNodeNs(G, N);
      Row.push_back(formatStr("%.1fx", Speedup));
    }
    T.addRow(Row);
  }

  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: order-of-magnitude PIM speedup at batch 1 "
              "(paper: 20.4x reproduced vs 50x in the Newton paper and "
              "~10x in its follow-up), decaying as the batch grows.\n");
  return 0;
}
