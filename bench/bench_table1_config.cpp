//===- bench/bench_table1_config.cpp - Table 1 ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints Table 1: the DRAM-PIM configuration every experiment runs on —
/// organization, timing parameters (adapted for GDDR6), and the PIMFlow
/// command-optimization extensions.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"
#include "pim/PimConfig.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Table 1", "DRAM-PIM configuration");
  const PimConfig C = PimConfig::newtonPlusPlus();

  Table Org;
  Org.setHeader({"parameter", "value"});
  Org.addRow({"Num of PIM channels", formatStr("%d", C.Channels)});
  Org.addRow({"Num of Ranks", "1"});
  Org.addRow({"Num of Banks", formatStr("%d", C.BanksPerChannel)});
  Org.addRow({"Num of Multipliers per bank",
              formatStr("%d", C.MultipliersPerBank)});
  Org.addRow({"Column I/O bit width", formatStr("%db", C.ColumnIOBits)});
  Org.addRow({"Num of Column I/Os per row",
              formatStr("%d", C.ColumnIOsPerRow)});
  Org.addRow({"Global buffer size", formatStr("%d KB",
                                              C.GlobalBufferBytes / 1024)});
  Org.addRow({"Num of global buffers (PIMFlow)",
              formatStr("%d", C.NumGlobalBuffers)});
  Org.addRow({"PIM clock", formatStr("%.1f GHz", C.ClockGhz)});
  std::printf("%s\n", Org.render().c_str());

  Table Timing;
  Timing.setHeader({"timing parameter (cycles)", "value"});
  Timing.addRow({"tCCDL", formatStr("%lld", (long long)C.TCcdl)});
  Timing.addRow({"tG_ACT", formatStr("%lld", (long long)C.TGact)});
  Timing.addRow({"tGWRITE", formatStr("%lld", (long long)C.TGwrite)});
  Timing.addRow({"tRRD", formatStr("%lld", (long long)C.TRrd)});
  Timing.addRow({"tCOMP", formatStr("%lld", (long long)C.TComp)});
  Timing.addRow({"tREADRES", formatStr("%lld", (long long)C.TReadRes)});
  std::printf("%s\n", Timing.render().c_str());

  std::printf("Peak per channel: %lld MACs per COMP every %lld cycles "
              "(%.0f GMAC/s); %d channels -> %.1f TMAC/s.\n",
              (long long)C.macsPerComp(), (long long)C.TComp,
              static_cast<double>(C.macsPerComp()) / C.TComp * C.ClockGhz,
              C.Channels,
              static_cast<double>(C.macsPerComp()) / C.TComp * C.ClockGhz *
                  C.Channels / 1000.0);
  return 0;
}
