//===- bench/bench_fig13_channel_ratio.cpp - Fig. 13 ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 13: end-to-end time as the GPU/PIM channel split of
/// the 32-channel memory varies, normalized to the GPU baseline. The
/// paper derives the default 16/16 division from this sweep: more PIM
/// channels help until the GPU starves.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Figure 13",
              "End-to-end time vs PIM-enabled channel count in a "
              "32-channel memory (normalized to the 32-channel GPU "
              "baseline)");

  const int PimChannels[] = {4, 8, 12, 16, 20, 24, 28};
  const OffloadPolicy Mechanisms[] = {OffloadPolicy::NewtonPlus,
                                      OffloadPolicy::NewtonPlusPlus,
                                      OffloadPolicy::PimFlow};

  for (const std::string Model : {"efficientnet-v1-b0", "resnet-50"}) {
    const double Base =
        cachedRun("f13/" + Model + "/base", Model, OffloadPolicy::GpuOnly)
            .endToEndNs();
    Table T;
    {
      std::vector<std::string> Header = {"mechanism"};
      for (int C : PimChannels)
        Header.push_back(formatStr("%d pim", C));
      T.setHeader(Header);
    }
    for (OffloadPolicy P : Mechanisms) {
      std::vector<std::string> Row = {policyName(P)};
      for (int C : PimChannels) {
        PimFlowOptions O;
        O.PimChannels = C;
        const double Ns =
            cachedRun(formatStr("f13/%s/%d/%d", Model.c_str(),
                                static_cast<int>(P), C),
                      Model, P, O)
                .endToEndNs();
        Row.push_back(norm(Ns, Base));
      }
      T.addRow(Row);
    }
    std::printf("%s:\n%s\n", Model.c_str(), T.render().c_str());
  }
  std::printf("Expected shape: performance improves with PIM channels up "
              "to ~16, then degrades as the GPU loses bandwidth; the "
              "negative side is steeper for Newton+/Newton++ and for "
              "ResNet-50's compute-heavy layers.\n");
  return 0;
}
