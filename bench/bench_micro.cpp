//===- bench/bench_micro.cpp - google-benchmark micro suite -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the library's hot paths: PIM trace
/// simulation, command-generation planning, graph transforms, the search
/// DP, and the reference interpreter. These track the compiler's own
/// performance (the Section-7 compilation-overhead discussion), not the
/// simulated hardware.
///
/// Besides the wall-clock benchmarks, the binary records deterministic
/// *simulated* proxies (channel cycles, plan/search/engine times, toy and
/// resnet-18 end-to-end) through the bench harness, so its
/// PIMFLOW_BENCH_JSON dump is machine-independent and can be gated by
/// pf_perf_diff. Pass --no-wall to skip the wall-clock runs (CI).
///
//===----------------------------------------------------------------------===//

#include <cstring>

#include <benchmark/benchmark.h>

#include "BenchCommon.h"

#include "codegen/CommandGenerator.h"
#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "models/Zoo.h"
#include "obs/Metrics.h"
#include "obs/Scope.h"
#include "runtime/Interpreter.h"
#include "search/SearchEngine.h"
#include "transform/MdDpSplitPass.h"

using namespace pf;

static void BM_PimChannelSimulation(benchmark::State &State) {
  PimConfig C = PimConfig::newtonPlusPlus();
  PimSimulator Sim(C);
  ChannelTrace Trace;
  std::vector<PimCommand> Pattern;
  for (int T = 0; T < 8; ++T) {
    Pattern.push_back(PimCommand::gwrite(32, 4));
    Pattern.push_back(PimCommand::gact(4));
    Pattern.push_back(PimCommand::comp(512));
  }
  Pattern.push_back(PimCommand::readRes(64));
  Trace.Blocks.push_back(CommandBlock{Pattern, 1000});
  for (auto _ : State)
    benchmark::DoNotOptimize(Sim.simulateChannel(Trace));
}
BENCHMARK(BM_PimChannelSimulation);

static void BM_CommandGeneratorPlan(benchmark::State &State) {
  PimCommandGenerator Gen(PimConfig::newtonPlusPlus(), CodegenOptions{});
  PimKernelSpec Spec;
  Spec.M = 144;
  Spec.K = 24;
  Spec.NumVectors = 3136;
  for (auto _ : State)
    benchmark::DoNotOptimize(Gen.plan(Spec).Ns);
}
BENCHMARK(BM_CommandGeneratorPlan);

static void BM_BuildMobileNetV2(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(buildMobileNetV2().numNodes());
}
BENCHMARK(BM_BuildMobileNetV2);

static void BM_TopoSortResNet50(benchmark::State &State) {
  Graph G = buildResNet50();
  for (auto _ : State)
    benchmark::DoNotOptimize(G.topoOrder().size());
}
BENCHMARK(BM_TopoSortResNet50);

static void BM_MdDpSplitPass(benchmark::State &State) {
  const Graph Template = [] {
    GraphBuilder B("t");
    ValueId X = B.input("x", TensorShape{1, 56, 56, 64});
    B.output(B.conv2d(X, 128, 3, 1, 1));
    return B.take();
  }();
  for (auto _ : State) {
    Graph G = Template;
    benchmark::DoNotOptimize(
        applyMdDpSplit(G, G.topoOrder().front(), 0.5).has_value());
  }
}
BENCHMARK(BM_MdDpSplitPass);

static void BM_SearchMobileNetV2(benchmark::State &State) {
  // Full Algorithm-1 search including profiling (cold cache each time):
  // the dominant compilation cost of Section 7.
  const Graph G = buildMobileNetV2();
  for (auto _ : State) {
    Profiler P(SystemConfig::dual());
    SearchEngine S(P, SearchOptions{});
    benchmark::DoNotOptimize(S.search(G).PredictedNs);
  }
}
BENCHMARK(BM_SearchMobileNetV2)->Unit(benchmark::kMillisecond);

static void BM_InterpreterToy(benchmark::State &State) {
  const Graph G = buildToy();
  const Tensor In =
      Interpreter::randomInput(G.value(G.graphInputs()[0]).Shape, 1);
  Interpreter I(G);
  for (auto _ : State)
    benchmark::DoNotOptimize(I.run({In}).front().at(0));
}
BENCHMARK(BM_InterpreterToy)->Unit(benchmark::kMillisecond);

static void BM_ExecutionEngineResNet50(benchmark::State &State) {
  const Graph G = buildResNet50();
  ExecutionEngine E(SystemConfig::gpuOnly());
  for (auto _ : State)
    benchmark::DoNotOptimize(E.execute(G).TotalNs);
}
BENCHMARK(BM_ExecutionEngineResNet50)->Unit(benchmark::kMillisecond);

namespace {

/// Records the deterministic (simulated, not wall-clock) proxies of the
/// hot paths above: the numbers are identical on every machine, so the
/// baseline diff gates real behavior changes, never scheduler jitter.
void recordDeterministicProxies() {
  using namespace pf::bench;
  printHeader("Micro", "Deterministic micro proxies (simulated units)");

  {
    PimConfig C = PimConfig::newtonPlusPlus();
    PimSimulator Sim(C);
    ChannelTrace Trace;
    std::vector<PimCommand> Pattern;
    for (int T = 0; T < 8; ++T) {
      Pattern.push_back(PimCommand::gwrite(32, 4));
      Pattern.push_back(PimCommand::gact(4));
      Pattern.push_back(PimCommand::comp(512));
    }
    Pattern.push_back(PimCommand::readRes(64));
    Trace.Blocks.push_back(CommandBlock{Pattern, 1000});
    BenchResult R;
    R.Figure = "Micro";
    R.Key = "micro/sim_channel_cycles";
    R.EndToEndNs = static_cast<double>(Sim.simulateChannel(Trace));
    recordResult(R);
  }
  {
    PimCommandGenerator Gen(PimConfig::newtonPlusPlus(), CodegenOptions{});
    PimKernelSpec Spec;
    Spec.M = 144;
    Spec.K = 24;
    Spec.NumVectors = 3136;
    BenchResult R;
    R.Figure = "Micro";
    R.Key = "micro/plan_ns";
    R.EndToEndNs = Gen.plan(Spec).Ns;
    recordResult(R);
  }
  {
    const Graph G = buildMobileNetV2();
    Profiler P(SystemConfig::dual());
    SearchEngine S(P, SearchOptions{});
    BenchResult R;
    R.Figure = "Micro";
    R.Key = "micro/search_mobilenet_predicted_ns";
    R.Model = "mobilenet-v2";
    R.EndToEndNs = S.search(G).PredictedNs;
    recordResult(R);
  }
  {
    const Graph G = buildResNet50();
    ExecutionEngine E(SystemConfig::gpuOnly());
    BenchResult R;
    R.Figure = "Micro";
    R.Key = "micro/engine_resnet50_total_ns";
    R.Model = "resnet-50";
    R.EndToEndNs = E.execute(G).TotalNs;
    recordResult(R);
  }
  {
    // Per-candidate profile-latency distribution: run the search with the
    // streaming registry on and report the bounded-error p50/p99 of
    // profiler.profile_sim_ns. Simulated nanoseconds, so the quantiles are
    // identical on every machine and safe to gate in tier 5.
    //
    // A private scope instead of toggling + partially resetting the
    // process globals: the old MetricsRegistry::reset() dance also wiped
    // whatever counters earlier iterations had accumulated globally while
    // leaving the Registry half intact (the obs::resetAll() misuse this
    // sweep removes). SearchOptions::Jobs defaults to 1, so the serial
    // search stays on this thread and the guard covers every record.
    obs::Scope Scoped;
    obs::ScopeGuard Guard(Scoped);
    const Graph G = buildMobileNetV2();
    Profiler P(SystemConfig::dual());
    SearchEngine S(P, SearchOptions{});
    (void)S.search(G);
    obs::QuantileStats Q;
    for (const auto &[Name, Stats] : Scoped.metrics().histogramSnapshot())
      if (Name == "profiler.profile_sim_ns")
        Q = Stats;
    BenchResult R;
    R.Figure = "Micro";
    R.Model = "mobilenet-v2";
    R.Key = "micro/profile_ns_p50";
    R.EndToEndNs = Q.P50;
    recordResult(R);
    R.Key = "micro/profile_ns_p99";
    R.EndToEndNs = Q.P99;
    recordResult(R);
  }
  // Whole-flow proxies on a small and a mid-size model.
  cachedRun("micro/toy", "toy", OffloadPolicy::PimFlow);
  cachedRun("micro/resnet-18", "resnet-18", OffloadPolicy::PimFlow);
}

} // namespace

int main(int Argc, char **Argv) {
  bool NoWall = false;
  // Strip --no-wall before google-benchmark sees (and rejects) it.
  int OutArgc = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--no-wall") == 0)
      NoWall = true;
    else
      Argv[OutArgc++] = Argv[I];
  }
  Argc = OutArgc;

  recordDeterministicProxies();
  if (NoWall)
    return 0;
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
