//===- bench/bench_fig12_energy.cpp - Fig. 12 -------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 12: energy consumption per model per offloading
/// mechanism, normalized to the GPU baseline. Paper: Newton++ uses 18%
/// and PIMFlow 26% less energy on average, with the compute-heavy models'
/// gains limited by GPU static power.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Figure 12",
              "Inference energy per mechanism, normalized to the GPU "
              "baseline (lower is better)");

  const OffloadPolicy Shown[] = {OffloadPolicy::NewtonPlus,
                                 OffloadPolicy::NewtonPlusPlus,
                                 OffloadPolicy::PimFlow};

  Table T;
  {
    std::vector<std::string> Header = {"model"};
    for (OffloadPolicy P : Shown)
      Header.push_back(policyName(P));
    T.setHeader(Header);
  }

  std::map<OffloadPolicy, std::vector<double>> Ratios;
  for (const std::string &Name : modelNames()) {
    const double Base = cachedRun("f12/" + Name + "/base", Name,
                                  OffloadPolicy::GpuOnly)
                            .energyJ();
    std::vector<std::string> Row = {Name};
    for (OffloadPolicy P : Shown) {
      const double E =
          cachedRun(formatStr("f12/%s/%d", Name.c_str(),
                              static_cast<int>(P)),
                    Name, P)
              .energyJ();
      Row.push_back(norm(E, Base));
      Ratios[P].push_back(E / Base);
    }
    T.addRow(Row);
  }

  std::printf("%s\n", T.render().c_str());
  for (OffloadPolicy P : Shown)
    std::printf("%-10s average energy vs baseline: %.0f%%\n",
                policyName(P), mean(Ratios[P]) * 100.0);
  std::printf("\nExpected shape: Newton++ and PIMFlow below the baseline "
              "(paper: -18%% and -26%% average); models with small "
              "speedups see limited gains from GPU static power.\n");
  return 0;
}
