//===- bench/bench_prelim_parallelism.cpp - Section 3, obs. 1 ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section-3 preliminary observation motivating PIMFlow's
/// graph transformations: "The majority of DNN inference models including
/// CNN do not have enough inherent inter-node parallelism to fully utilize
/// PIM units in parallel with GPU" — in 75% of the surveyed Torchvision
/// models, zero or <17% of nodes have an independent peer. This bench
/// measures the same metric on the zoo models, before and after the
/// PIMFlow transformations (which *create* the missing parallelism).
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"
#include "ir/Parallelism.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Preliminary analysis (Section 3, observation 1)",
              "Inherent inter-node parallelism of the model graphs, and "
              "the parallelism PIMFlow's transformations create");

  Table T;
  T.setHeader({"model", "nodes", "indep. peers", "avg width",
               "after PIMFlow", "width after"});
  std::vector<std::string> Nets = modelNames();
  Nets.push_back("bert");
  for (const std::string &Name : Nets) {
    Graph G = buildModel(Name);
    const ParallelismStats Before = analyzeParallelism(G);

    const CompileResult &R = cachedRun("par/" + Name, Name,
                                       OffloadPolicy::PimFlow);
    const ParallelismStats After = analyzeParallelism(R.Transformed);

    T.addRow({Name, formatStr("%d", Before.NumNodes),
              formatStr("%.0f%%", Before.independentFraction() * 100.0),
              formatStr("%.2f", Before.averageWidth()),
              formatStr("%.0f%%", After.independentFraction() * 100.0),
              formatStr("%.2f", After.averageWidth())});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: the CNNs have little or no inherent "
              "inter-node parallelism (mobile nets and VGG-16: 0%%; "
              "ResNet-50's shortcut convs: ~20%% — matching the paper's "
              "observation that 75%% of Torchvision models sit at 0-17%%); "
              "BERT's Q/K/V projections give it more. After the "
              "MD-DP/pipelining transformations the fraction of nodes "
              "with an independent peer rises sharply — the parallelism "
              "is created, not found.\n");
  return 0;
}
