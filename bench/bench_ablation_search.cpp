//===- bench/bench_ablation_search.cpp - Design-choice ablations -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation studies for the design choices DESIGN.md calls out, beyond the
/// paper's own figures:
///
/// (a) Command-scheduling granularity (Fig. 6's three levels as the
///     scheduler's ceiling): G_ACT-only vs +READRES vs +COMP.
/// (b) Split-ratio granularity: the paper's 10% grid vs the future-work
///     auto-tuned 2% refinement (Section 5's footnote measured ~1.13%
///     extra speedup for EfficientNetB0 from a full 2% grid).
/// (c) The memory-layout optimizer (Section 4.3.2), end to end.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Ablation: search & back-end design choices",
              "End-to-end PIMFlow time under degraded design choices, "
              "normalized to the full design");

  // (a) Scheduling granularity.
  std::printf("(a) command-scheduling granularity ceiling "
              "(CONV layers, Newton++):\n");
  Table TG;
  TG.setHeader({"model", "comp (full)", "readres", "g_act only"});
  for (const std::string Model : {"mobilenet-v2", "resnet-50"}) {
    std::map<ScheduleGranularity, double> Ns;
    for (ScheduleGranularity Gr :
         {ScheduleGranularity::Comp, ScheduleGranularity::ReadRes,
          ScheduleGranularity::GAct}) {
      PimFlowOptions O;
      O.MaxGranularity = Gr;
      Ns[Gr] = cachedRun(formatStr("abl-g/%s/%d", Model.c_str(),
                                   static_cast<int>(Gr)),
                         Model, OffloadPolicy::NewtonPlusPlus, O)
                   .ConvLayerNs;
    }
    TG.addRow({Model, "1.000",
               norm(Ns[ScheduleGranularity::ReadRes],
                    Ns[ScheduleGranularity::Comp]),
               norm(Ns[ScheduleGranularity::GAct],
                    Ns[ScheduleGranularity::Comp])});
  }
  std::printf("%s\n", TG.render().c_str());

  // (b) Ratio granularity.
  std::printf("(b) MD-DP split-ratio granularity (PIMFlow-md):\n");
  Table TR;
  TR.setHeader({"model", "10% grid", "+2% auto-tune", "extra speedup"});
  for (const std::string Model :
       {"efficientnet-v1-b0", "mobilenet-v2", "mnasnet-1.0"}) {
    PimFlowOptions Coarse, Fine;
    Fine.AutoTuneRatios = true;
    const double CoarseNs =
        cachedRun("abl-r/" + Model + "/10", Model,
                  OffloadPolicy::PimFlowMd, Coarse)
            .endToEndNs();
    const double FineNs = cachedRun("abl-r/" + Model + "/2", Model,
                                    OffloadPolicy::PimFlowMd, Fine)
                              .endToEndNs();
    TR.addRow({Model, "1.000", norm(FineNs, CoarseNs),
               formatStr("%+.2f%%", (CoarseNs / FineNs - 1.0) * 100.0)});
  }
  std::printf("%s", TR.render().c_str());
  std::printf("(paper footnote: a full 2%% grid bought 1.13%% on "
              "EfficientNetB0 — too little to justify 5x the profiling)\n\n");

  // (c) Memory optimizer.
  std::printf("(c) memory-layout optimizer (PIMFlow-md end-to-end):\n");
  Table TM;
  TM.setHeader({"model", "optimizer on", "optimizer off"});
  for (const std::string &Model : modelNames()) {
    PimFlowOptions On, Off;
    Off.MemoryOptimizer = false;
    const double OnNs = cachedRun("abl-m/" + Model + "/on", Model,
                                  OffloadPolicy::PimFlowMd, On)
                            .endToEndNs();
    const double OffNs = cachedRun("abl-m/" + Model + "/off", Model,
                                   OffloadPolicy::PimFlowMd, Off)
                             .endToEndNs();
    TM.addRow({Model, "1.000", norm(OffNs, OnNs)});
  }
  std::printf("%s\n", TM.render().c_str());
  std::printf("Expected shapes: finer scheduling granularity never hurts "
              "and rescues small-matrix layers; 2%% ratios buy ~1%%; "
              "disabling the layout optimizer erases much of the "
              "splitting gain (\"most splitting attempts futile\").\n");
  return 0;
}
