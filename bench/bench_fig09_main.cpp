//===- bench/bench_fig09_main.cpp - Fig. 9 ----------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 9, the paper's main result: (1) execution time of all
/// PIM-candidate CONV layers and (2) end-to-end inference time of the five
/// CNN models under every offloading mechanism, normalized to the GPU
/// baseline. Pass --contention to include the Section-7 memory-controller
/// contention model. Positional arguments select the models to sweep
/// (default: the paper's five); ci.sh uses `toy resnet-18` for a fast,
/// deterministic baseline.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main(int Argc, char **Argv) {
  PimFlowOptions Options;
  std::vector<std::string> Models;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--contention") == 0)
      Options.ModelContention = true;
    else
      Models.push_back(Argv[I]);
  }
  if (Models.empty())
    Models = modelNames();

  printHeader("Figure 9",
              "CONV-layer and end-to-end inference time per offloading "
              "mechanism, normalized to the GPU baseline (lower is "
              "better)");

  Table Conv, E2e;
  {
    std::vector<std::string> Header = {"model"};
    for (OffloadPolicy P : allPolicies())
      Header.push_back(policyName(P));
    Conv.setHeader(Header);
    E2e.setHeader(Header);
  }

  std::vector<double> FlowE2e, FlowConv;
  for (const std::string &Name : Models) {
    double BaseConv = 0.0, BaseE2e = 0.0;
    std::vector<std::string> ConvRow = {Name}, E2eRow = {Name};
    for (OffloadPolicy P : allPolicies()) {
      const CompileResult &R =
          cachedRun(formatStr("f9/%s/%d/%d", Name.c_str(),
                              static_cast<int>(P),
                              Options.ModelContention ? 1 : 0),
                    Name, P, Options);
      if (P == OffloadPolicy::GpuOnly) {
        BaseConv = R.ConvLayerNs;
        BaseE2e = R.endToEndNs();
      }
      ConvRow.push_back(norm(R.ConvLayerNs, BaseConv));
      E2eRow.push_back(norm(R.endToEndNs(), BaseE2e));
      if (P == OffloadPolicy::PimFlow) {
        FlowConv.push_back(R.ConvLayerNs / BaseConv);
        FlowE2e.push_back(R.endToEndNs() / BaseE2e);
      }
    }
    Conv.addRow(ConvRow);
    E2e.addRow(E2eRow);
  }

  std::printf("(1) PIM-candidate CONV layers:\n%s\n",
              Conv.render().c_str());
  std::printf("(2) End-to-end inference:\n%s\n", E2e.render().c_str());
  std::printf("PIMFlow averages: CONV %.0f%% speedup, end-to-end %.0f%% "
              "speedup (paper: 30%% CONV / 34%% end-to-end on average, up "
              "to 82%%).\n",
              (1.0 / mean(FlowConv) - 1.0) * 100.0,
              (1.0 / mean(FlowE2e) - 1.0) * 100.0);
  return 0;
}
