//===- bench/bench_fig15_stages.cpp - Fig. 15 -------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 15: pipeline stage-count sensitivity. More stages
/// shrink the prologue/epilogue but add kernel-launch and synchronization
/// overheads; the paper finds two stages optimal.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Figure 15",
              "PIMFlow-pl end-to-end time vs pipeline stage count "
              "(normalized to 2 stages)");

  const int Stages[] = {2, 3, 4, 5};
  Table T;
  {
    std::vector<std::string> Header = {"model"};
    for (int S : Stages)
      Header.push_back(formatStr("%d stages", S));
    T.setHeader(Header);
  }

  for (const std::string Model :
       {"efficientnet-v1-b0", "mobilenet-v2", "mnasnet-1.0"}) {
    std::map<int, double> Ns;
    for (int S : Stages) {
      PimFlowOptions O;
      O.PipelineStages = S;
      Ns[S] = cachedRun(formatStr("f15/%s/%d", Model.c_str(), S), Model,
                        OffloadPolicy::PimFlowPl, O)
                  .endToEndNs();
    }
    std::vector<std::string> Row = {Model};
    for (int S : Stages)
      Row.push_back(norm(Ns[S], Ns[2]));
    T.addRow(Row);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: two stages are optimal; deeper pipelines "
              "pay more in launch/sync overhead than the extra overlap "
              "returns.\n");
  return 0;
}
