//===- bench/bench_arch_compare.cpp - PIM architecture study ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section-8 claim check: "PIMFlow is designed with such PIM architectures
/// in mind, and thus it can be readily adapted to support them." This
/// bench retargets the full compiler to an HBM-PIM-style device (Samsung's
/// bank-level MAC architecture: more, slower pseudo-channel units with
/// smaller buffers) purely through the PimConfig interface and compares
/// the end-to-end outcome against the default GDDR6 AiM/Newton target.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"
#include "search/Profiler.h"
#include "search/SearchEngine.h"
#include "runtime/ExecutionEngine.h"

using namespace pf;
using namespace pf::bench;

namespace {

/// Compiles and runs \p Model with an explicit PIM device config.
double runWithPim(const std::string &Model, const PimConfig &Pim) {
  SystemConfig C = SystemConfig::dual();
  C.Pim = Pim;
  C.Pim.Channels = 16; // Same channel budget for a fair comparison.
  Profiler P(C);
  SearchOptions S; // Full PIMFlow options.
  Graph G = buildModel(Model);
  SearchEngine Engine(P, S);
  ExecutionPlan Plan = Engine.search(G);
  SearchEngine::apply(G, Plan);
  return ExecutionEngine(C).execute(G).TotalNs;
}

} // namespace

int main() {
  printHeader("PIM architecture study",
              "Full PIMFlow retargeted to a different DRAM-PIM device "
              "through PimConfig alone (16 PIM channels each, normalized "
              "to the GPU baseline)");

  Table T;
  T.setHeader({"model", "GDDR6 AiM (default)", "HBM-PIM style"});
  for (const std::string Model :
       {"efficientnet-v1-b0", "mobilenet-v2", "resnet-50"}) {
    const double Base =
        cachedRun("arch/" + Model + "/base", Model, OffloadPolicy::GpuOnly)
            .endToEndNs();
    const double Aim = runWithPim(Model, PimConfig::newtonPlusPlus());
    const double Hbm = runWithPim(Model, PimConfig::hbmPim());
    T.addRow({Model, norm(Aim, Base), norm(Hbm, Base)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: the compiler retargets without code "
              "changes; the HBM-PIM-style datapath (8 banks at 1.2 GHz = "
              "~40%% of the AiM MAC rate per channel) retains only part "
              "of the gain, so compute-heavier models keep more of their "
              "speedup than bandwidth-bound mobile nets.\n");
  return 0;
}
