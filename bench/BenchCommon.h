//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: cached compile-and-run
/// over (model, policy, options) and normalized-series table printing.
/// Every binary regenerates the rows/series of one table or figure of the
/// paper's evaluation (see DESIGN.md section 4 for the index).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_BENCH_BENCHCOMMON_H
#define PIMFLOW_BENCH_BENCHCOMMON_H

#include <map>
#include <string>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"

namespace pf::bench {

/// Compiles and runs \p Model under \p Policy, memoizing by a caller-chosen
/// key so sweeps that revisit configurations stay fast.
CompileResult &cachedRun(const std::string &Key, const std::string &Model,
                         OffloadPolicy Policy,
                         const PimFlowOptions &Options = {});

/// Prints a standard figure header.
void printHeader(const char *Figure, const char *Caption);

/// Formats a value normalized to \p Baseline with 3 decimals.
std::string norm(double Value, double Baseline);

} // namespace pf::bench

#endif // PIMFLOW_BENCH_BENCHCOMMON_H
