//===- bench/BenchCommon.h - Shared bench harness helpers -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: cached compile-and-run
/// over (model, policy, options) and normalized-series table printing.
/// Every binary regenerates the rows/series of one table or figure of the
/// paper's evaluation (see DESIGN.md section 4 for the index).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_BENCH_BENCHCOMMON_H
#define PIMFLOW_BENCH_BENCHCOMMON_H

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/PimFlow.h"
#include "models/Zoo.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"

namespace pf::bench {

/// Compiles and runs \p Model under \p Policy, memoizing by a caller-chosen
/// key so sweeps that revisit configurations stay fast. Every fresh (non
/// cache-hit) run is also recorded for the machine-readable results dump
/// (see writeResultsJson).
CompileResult &cachedRun(const std::string &Key, const std::string &Model,
                         OffloadPolicy Policy,
                         const PimFlowOptions &Options = {});

/// Prints a standard figure header and tags subsequently recorded results
/// with \p Figure.
void printHeader(const char *Figure, const char *Caption);

/// Formats a value normalized to \p Baseline with 3 decimals.
std::string norm(double Value, double Baseline);

/// One recorded data point of a bench binary.
struct BenchResult {
  std::string Figure;  ///< From the preceding printHeader.
  std::string Key;     ///< The cachedRun cache key.
  std::string Model;
  std::string Policy;
  double EndToEndNs = 0.0;
  double EnergyJ = 0.0;
  /// Counter snapshot of this iteration alone (cachedRun resets the
  /// observability registry before each fresh run); empty when the
  /// registry is disabled.
  std::vector<std::pair<std::string, int64_t>> Counters;
};

/// Appends a data point to the results log (cachedRun does this
/// automatically; benches computing derived values can add extra points).
void recordResult(const BenchResult &R);

/// The accumulated results as a JSON document
/// ({"results":[{figure,key,model,policy,end_to_end_ns,energy_j}...]}).
std::string renderResultsJson();

/// Writes renderResultsJson() to \p Path; false on I/O failure. Set the
/// PIMFLOW_BENCH_JSON environment variable to have every bench binary do
/// this automatically at exit.
bool writeResultsJson(const std::string &Path);

} // namespace pf::bench

#endif // PIMFLOW_BENCH_BENCHCOMMON_H
