//===- bench/bench_fig10_layerwise.cpp - Fig. 10 ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 10: the layerwise performance breakdown for nodes
/// executed in the MD-DP mode — per candidate layer, the GPU time, the PIM
/// time, the chosen split ratio, and the MD-DP time, normalized to the GPU
/// baseline. Pass one or more model names (default mobilenet-v2).
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"
#include "codegen/PimKernelSpec.h"

using namespace pf;
using namespace pf::bench;

namespace {

void runModel(const std::string &Model) {
  printHeader("Figure 10",
              formatStr("Layerwise MD-DP breakdown for %s (times "
                        "normalized to the layer's GPU-baseline time)",
                        Model.c_str())
                  .c_str());

  const CompileResult &R =
      cachedRun("f10/" + Model, Model, OffloadPolicy::PimFlowMd);
  Graph G = buildModel(Model);

  Table T;
  T.setHeader({"layer (MxKxV)", "gpu", "pim", "md-dp", "ratio->gpu"});
  int Shown = 0;
  for (const LayerProfile &L : R.Plan.Layers) {
    const Node &N = G.node(L.Id);
    if (N.Kind != OpKind::Conv2d)
      continue;
    const PimKernelSpec S = lowerToPimSpec(G, L.Id);
    T.addRow({formatStr("%lldx%lldx%lld", (long long)S.M, (long long)S.K,
                        (long long)S.NumVectors),
              "1.000", norm(L.PimNs, L.GpuNs),
              norm(L.BestMdDpNs, L.GpuNs),
              formatStr("%.0f%%", L.BestRatioGpu * 100.0)});
    ++Shown;
  }
  std::printf("%s\n(%d candidate CONV layers)\n", T.render().c_str(),
              Shown);
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Models;
  for (int I = 1; I < Argc; ++I)
    Models.push_back(Argv[I]);
  if (Models.empty())
    Models.push_back("mobilenet-v2");
  for (const std::string &Model : Models)
    runModel(Model);
  std::printf("Expected shape: layers whose PIM time is within ~2x of GPU "
              "split at interior ratios and beat both devices; layers "
              "where PIM dominates offload fully (ratio 0%%).\n");
  return 0;
}
