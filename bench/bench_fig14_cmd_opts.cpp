//===- bench/bench_fig14_cmd_opts.cpp - Fig. 14 -----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 14: the isolated impact of the two PIM-command
/// optimizations — GWRITE latency hiding and multiple global buffers —
/// on the PIM-candidate CONV layers, relative to Newton+. Paper: ~9% from
/// hiding, ~14% from buffers, ~22% combined, composing independently.
/// Pass --no-memopt to additionally show the memory-layout optimizer's
/// contribution (Section 4.3.2).
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>

#include "BenchCommon.h"

using namespace pf;
using namespace pf::bench;

int main(int Argc, char **Argv) {
  bool ShowMemOpt = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--no-memopt") == 0)
      ShowMemOpt = true;

  printHeader("Figure 14",
              "PIM command-optimization ablation: CONV-layer time "
              "normalized to Newton+ (1 buffer, no hiding)");

  struct Variant {
    const char *Name;
    int Buffers;
    bool Hiding;
  };
  const Variant Variants[] = {
      {"Newton+ (neither)", 1, false},
      {"+GWRITE hiding", 1, true},
      {"+multi-buffer (4)", 4, false},
      {"+both (Newton++)", 4, true},
  };

  Table T;
  {
    std::vector<std::string> Header = {"model"};
    for (const Variant &V : Variants)
      Header.push_back(V.Name);
    T.setHeader(Header);
  }

  std::map<const char *, std::vector<double>> Ratios;
  for (const std::string &Name : modelNames()) {
    double Base = 0.0;
    std::vector<std::string> Row = {Name};
    for (const Variant &V : Variants) {
      PimFlowOptions O;
      O.NumGlobalBuffers = V.Buffers;
      O.GwriteLatencyHiding = V.Hiding;
      const double ConvNs =
          cachedRun(formatStr("f14/%s/%d/%d", Name.c_str(), V.Buffers,
                              V.Hiding ? 1 : 0),
                    Name, OffloadPolicy::NewtonPlus, O)
              .ConvLayerNs;
      if (V.Buffers == 1 && !V.Hiding)
        Base = ConvNs;
      Row.push_back(norm(ConvNs, Base));
      Ratios[V.Name].push_back(ConvNs / Base);
    }
    T.addRow(Row);
  }
  std::printf("%s\n", T.render().c_str());
  for (const Variant &V : Variants)
    std::printf("%-20s avg speedup over Newton+: %.0f%%\n", V.Name,
                (1.0 / mean(Ratios[V.Name]) - 1.0) * 100.0);
  std::printf("\nExpected shape: each optimization helps on its own and "
              "they compose without interfering (paper: 9%% + 14%% -> "
              "22%%).\n");

  if (ShowMemOpt) {
    std::printf("\nMemory-layout optimizer ablation (PIMFlow-md "
                "end-to-end, normalized to optimizer ON):\n");
    Table M;
    M.setHeader({"model", "memopt on", "memopt off"});
    for (const std::string &Name : modelNames()) {
      PimFlowOptions On, Off;
      Off.MemoryOptimizer = false;
      const double TOn = cachedRun("f14m/" + Name + "/on", Name,
                                   OffloadPolicy::PimFlowMd, On)
                             .endToEndNs();
      const double TOff = cachedRun("f14m/" + Name + "/off", Name,
                                    OffloadPolicy::PimFlowMd, Off)
                              .endToEndNs();
      M.addRow({Name, "1.000", norm(TOff, TOn)});
    }
    std::printf("%s\n", M.render().c_str());
  }
  return 0;
}
