//===- bench/bench_table2_ratios.cpp - Table 2 ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: the distribution of MD-DP split ratios the search
/// picks across all PIM-candidate layers of the five models (0 = total
/// offload to PIM, 100 = full GPU), plus the Section-7 compilation-
/// overhead statistics (profiling sample counts and cache effectiveness).
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"
#include "search/Profiler.h"
#include "search/SearchEngine.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Table 2",
              "Distribution of MD-DP split ratios to GPU over all "
              "PIM-candidate layers (0 = total offload)");

  // One shared profiler so the compile-overhead stats aggregate.
  Profiler P(SystemConfig::dual());
  SearchOptions Options; // Full PIMFlow-md option set.
  Options.AllowPipeline = false;

  int Histogram[11] = {};
  int TotalLayers = 0;
  for (const std::string &Name : modelNames()) {
    Graph G = buildModel(Name);
    SearchEngine S(P, Options);
    ExecutionPlan Plan = S.search(G);
    for (const SegmentPlan &Seg : Plan.Segments) {
      double Ratio;
      switch (Seg.Mode) {
      case SegmentMode::FullPim:
        Ratio = 0.0;
        break;
      case SegmentMode::MdDp:
        Ratio = Seg.RatioGpu;
        break;
      case SegmentMode::GpuNode:
        if (!isPimCandidate(G.node(Seg.Nodes[0])))
          continue;
        Ratio = 1.0;
        break;
      default:
        continue;
      }
      ++Histogram[static_cast<int>(Ratio * 10.0 + 0.5)];
      ++TotalLayers;
    }
  }

  Table T;
  {
    std::vector<std::string> Header, Row;
    for (int B = 0; B <= 10; ++B)
      Header.push_back(formatStr("%d", B * 10));
    T.setHeader(Header);
    for (int B = 0; B <= 10; ++B)
      Row.push_back(formatStr("%.0f%%",
                              100.0 * Histogram[B] / TotalLayers));
    T.addRow(Row);
  }
  std::printf("Split ratio to GPU (%% of %d candidate layers):\n%s\n",
              TotalLayers, T.render().c_str());

  const int Split = TotalLayers - Histogram[0] - Histogram[10];
  std::printf("%.0f%% fully offloaded, %.0f%% split across GPU and PIM, "
              "%.0f%% kept on GPU (paper: 41%% / 58%% / 0%%).\n\n",
              100.0 * Histogram[0] / TotalLayers,
              100.0 * Split / TotalLayers,
              100.0 * Histogram[10] / TotalLayers);

  std::printf("Compilation overhead (Section 7): %zu profiled samples, "
              "%zu served from the metadata cache (%.0f%% hit rate; "
              "identical layers repeat across blocks and models).\n",
              P.cacheMisses(), P.cacheHits(),
              100.0 * static_cast<double>(P.cacheHits()) /
                  static_cast<double>(P.cacheHits() + P.cacheMisses()));
  return 0;
}
