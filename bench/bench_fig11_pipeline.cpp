//===- bench/bench_fig11_pipeline.cpp - Fig. 11 -----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 11: the layerwise comparison of pipelining candidate
/// subgraphs — each matched pattern instance executed (a) with its nodes in
/// MD-DP/best-per-node mode and (b) pipelined — across the mobile CNNs.
/// The paper's finding: the Type 1 (1x1-DW) pattern is the one that
/// outperforms MD-DP.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <map>

#include "BenchCommon.h"
#include "search/Profiler.h"
#include "search/SearchEngine.h"
#include "transform/PatternMatch.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Figure 11",
              "Pipelining candidate subgraphs: per-node-best (MD-DP) vs "
              "pipelined time, by pattern type");

  Profiler P(SystemConfig::dual());
  SearchOptions MdOnly;
  MdOnly.AllowPipeline = false;

  struct Agg {
    double MdNs = 0.0;
    double PipeNs = 0.0;
    int Count = 0;
    int Wins = 0;
  };
  std::map<PipelinePattern, Agg> ByPattern;

  for (const std::string Model :
       {"efficientnet-v1-b0", "mobilenet-v2", "mnasnet-1.0"}) {
    Graph G = buildModel(Model);
    for (const PipelineCandidate &Cand : findPipelineCandidates(G)) {
      // Per-node best over {gpu, pim, md-dp ratios} for each chain node.
      double MdNs = 0.0;
      for (NodeId Id : Cand.Chain) {
        double Best = P.gpuNodeNs(G, Id);
        if (isPimCandidate(G.node(Id))) {
          Best = std::min(Best, P.pimNodeNs(G, Id));
          for (double R = 0.1; R < 1.0 - 1e-9; R += 0.1)
            Best = std::min(Best, P.mdDpNs(G, Id, R));
        }
        MdNs += Best;
      }
      const double PipeNs = P.pipelineNs(G, Cand.Chain, 2);
      if (PipeNs < 0.0)
        continue;
      Agg &A = ByPattern[Cand.Pattern];
      A.MdNs += MdNs;
      A.PipeNs += PipeNs;
      A.Count += 1;
      A.Wins += PipeNs < MdNs;
    }
  }

  Table T;
  T.setHeader({"pattern", "instances", "pipeline wins", "md-dp (us)",
               "pipelined (us)", "pipe/md-dp"});
  for (const auto &[Pattern, A] : ByPattern)
    T.addRow({pipelinePatternName(Pattern), formatStr("%d", A.Count),
              formatStr("%d", A.Wins), formatStr("%.1f", A.MdNs / 1e3),
              formatStr("%.1f", A.PipeNs / 1e3),
              norm(A.PipeNs, A.MdNs)});
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: Type 1 (1x1-dw) pipelines effectively "
              "(PIM 1x1 stages overlap GPU DW stages); patterns whose "
              "prologue/epilogue stages are expensive gain less or "
              "lose.\n");
  return 0;
}
