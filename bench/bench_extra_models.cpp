//===- bench/bench_extra_models.cpp - Artifact A.7 study --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact's "Experiment Customization": runs PIMFlow on CNN models
/// the paper did not evaluate — AlexNet, SqueezeNet 1.1, ResNet-18/34,
/// DenseNet-121 — testing that the compiler generalizes beyond the tuned
/// five. SqueezeNet is the interesting case: it is 1x1-dominated like the
/// mobile nets but *already has* inter-node parallelism in its fire
/// modules.
///
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "BenchCommon.h"
#include "ir/Parallelism.h"

using namespace pf;
using namespace pf::bench;

int main() {
  printHeader("Extended model study (artifact A.7)",
              "PIMFlow on models outside the paper's evaluation, "
              "normalized to the GPU baseline");

  Table T;
  T.setHeader({"model", "inherent par.", "Newton++", "PIMFlow",
               "PIMFlow e2e (us)"});
  for (const std::string &Name : extraModelNames()) {
    Graph G = buildModel(Name);
    const ParallelismStats P = analyzeParallelism(G);
    const double Base =
        cachedRun("xm/" + Name + "/base", Name, OffloadPolicy::GpuOnly)
            .endToEndNs();
    const double Npp = cachedRun("xm/" + Name + "/npp", Name,
                                 OffloadPolicy::NewtonPlusPlus)
                           .endToEndNs();
    const double Flow =
        cachedRun("xm/" + Name + "/flow", Name, OffloadPolicy::PimFlow)
            .endToEndNs();
    T.addRow({Name, formatStr("%.0f%%", P.independentFraction() * 100.0),
              norm(Npp, Base), norm(Flow, Base),
              formatStr("%.1f", Flow / 1e3)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: the FC-heavy classics (AlexNet) gain most "
              "from plain offloading; the 1x1-heavy SqueezeNet gains from "
              "MD-DP splits on top of its inherent branch parallelism; "
              "every model at least matches its Newton++ result.\n");
  return 0;
}
