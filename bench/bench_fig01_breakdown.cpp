//===- bench/bench_fig01_breakdown.cpp - Fig. 1 -----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 1: the GPU runtime breakdown of the CNN models by
/// operator class on an RTX 2080 Ti-class GPU (left), and the arithmetic
/// intensity (# of MACs / # of loaded+stored elements) of the models'
/// convolution layer classes (right). The paper's premise: pointwise (1x1)
/// convolutions are a large share of mobile-CNN runtime and have an
/// arithmetic intensity close to FC layers — the PIM sweet spot.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <map>

#include "BenchCommon.h"
#include "gpu/GpuModel.h"
#include "ir/Metrics.h"

using namespace pf;
using namespace pf::bench;

namespace {

/// Operator class for the breakdown.
const char *classOf(const Node &N) {
  if (N.Kind == OpKind::Gemm)
    return "fc";
  if (N.Kind == OpKind::Conv2d) {
    if (isDepthwiseConv(N))
      return "dw-conv";
    if (N.conv().isPointwise())
      return "1x1-conv";
    return "conv";
  }
  return "other";
}

} // namespace

int main() {
  printHeader("Figure 1",
              "GPU runtime breakdown by operator class (RTX 2080 Ti-like) "
              "and arithmetic intensity of conv layer classes");

  GpuModel Gpu(GpuConfig::rtx2080TiLike());
  const char *Classes[] = {"conv", "1x1-conv", "dw-conv", "fc", "other"};

  Table Breakdown;
  Breakdown.setHeader({"model", "conv %", "1x1-conv %", "dw-conv %",
                       "fc %", "other %"});
  Table Intensity;
  Intensity.setHeader({"model", "conv MAC/elem", "1x1 MAC/elem",
                       "dw MAC/elem", "fc MAC/elem"});

  for (const std::string &Name : modelNames()) {
    Graph G = buildModel(Name);
    std::map<std::string, double> TimeNs;
    std::map<std::string, double> Macs, Elems;
    for (NodeId Id : G.topoOrder()) {
      const Node &N = G.node(Id);
      TimeNs[classOf(N)] += Gpu.nodeTime(G, Id).Ns;
      const NodeMetrics M = computeMetrics(G, Id);
      Macs[classOf(N)] += static_cast<double>(M.Macs);
      Elems[classOf(N)] += static_cast<double>(M.LdStElements);
    }
    double Total = 0.0;
    for (const char *C : Classes)
      Total += TimeNs[C];
    std::vector<std::string> Row = {Name};
    for (const char *C : Classes)
      Row.push_back(formatStr("%.1f", 100.0 * TimeNs[C] / Total));
    Breakdown.addRow(Row);

    std::vector<std::string> IRow = {Name};
    for (const char *C : {"conv", "1x1-conv", "dw-conv", "fc"})
      IRow.push_back(Elems[C] > 0.0 ? formatStr("%.1f", Macs[C] / Elems[C])
                                    : std::string("-"));
    Intensity.addRow(IRow);
  }

  std::printf("%s\n%s\n", Breakdown.render().c_str(),
              Intensity.render().c_str());
  std::printf("Expected shape: 1x1 convolutions dominate mobile-CNN "
              "runtime; their arithmetic intensity sits far below dense "
              "conv and near FC.\n");
  return 0;
}
