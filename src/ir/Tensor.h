//===- ir/Tensor.h - Tensor shapes and dense tensors ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tensor shape and dense tensor types. Activations use the NHWC
/// (channels-last) layout throughout, matching the paper's assumption that
/// channel-dimension accesses are contiguous (Section 2.2). Functional
/// execution is always float32; DataType only affects the byte counts seen
/// by the timing models.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_TENSOR_H
#define PIMFLOW_IR_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/Assert.h"

namespace pf {

/// Element type of a tensor as seen by the hardware models.
enum class DataType : uint8_t {
  F32,
  F16,
};

/// Size of one element of \p Type in bytes.
inline int64_t byteSize(DataType Type) {
  switch (Type) {
  case DataType::F32:
    return 4;
  case DataType::F16:
    return 2;
  }
  pf_unreachable("unknown data type");
}

/// Short name ("f32"/"f16") for printing.
const char *dataTypeName(DataType Type);

/// A dense tensor shape. Activations are rank-4 NHWC; FC activations are
/// rank-2 [N, K]; weights use [KH, KW, Cin/G, Cout] for convolutions and
/// [K, M] for GEMM.
class TensorShape {
public:
  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> Dims) : Dims(Dims) {}
  explicit TensorShape(std::vector<int64_t> Dims) : Dims(std::move(Dims)) {}

  /// Number of dimensions.
  int64_t rank() const { return static_cast<int64_t>(Dims.size()); }

  /// Extent of dimension \p I (asserts in range).
  int64_t dim(int64_t I) const {
    PF_ASSERT(I >= 0 && I < rank(), "shape dim out of range");
    return Dims[static_cast<size_t>(I)];
  }

  /// Mutable extent of dimension \p I.
  void setDim(int64_t I, int64_t V) {
    PF_ASSERT(I >= 0 && I < rank(), "shape dim out of range");
    Dims[static_cast<size_t>(I)] = V;
  }

  /// Total number of elements (1 for rank-0).
  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    return N;
  }

  const std::vector<int64_t> &dims() const { return Dims; }

  bool operator==(const TensorShape &Other) const = default;

  /// Renders as e.g. "[1x56x56x64]".
  std::string toString() const;

private:
  std::vector<int64_t> Dims;
};

/// A dense float32 tensor used by the functional reference interpreter.
class Tensor {
public:
  Tensor() = default;
  explicit Tensor(TensorShape Shape)
      : Shape(std::move(Shape)),
        Data(static_cast<size_t>(this->Shape.numElements()), 0.0f) {}

  const TensorShape &shape() const { return Shape; }
  int64_t numElements() const { return Shape.numElements(); }

  float *data() { return Data.data(); }
  const float *data() const { return Data.data(); }

  float at(int64_t I) const {
    PF_ASSERT(I >= 0 && I < numElements(), "tensor index out of range");
    return Data[static_cast<size_t>(I)];
  }
  float &at(int64_t I) {
    PF_ASSERT(I >= 0 && I < numElements(), "tensor index out of range");
    return Data[static_cast<size_t>(I)];
  }

  /// NHWC element accessor for rank-4 tensors.
  float &at4(int64_t N, int64_t H, int64_t W, int64_t C) {
    return Data[static_cast<size_t>(flatten4(N, H, W, C))];
  }
  float at4(int64_t N, int64_t H, int64_t W, int64_t C) const {
    return Data[static_cast<size_t>(flatten4(N, H, W, C))];
  }

private:
  int64_t flatten4(int64_t N, int64_t H, int64_t W, int64_t C) const {
    PF_ASSERT(Shape.rank() == 4, "at4 requires a rank-4 tensor");
    PF_ASSERT(N >= 0 && N < Shape.dim(0) && H >= 0 && H < Shape.dim(1) &&
                  W >= 0 && W < Shape.dim(2) && C >= 0 && C < Shape.dim(3),
              "NHWC index out of range");
    return ((N * Shape.dim(1) + H) * Shape.dim(2) + W) * Shape.dim(3) + C;
  }

  TensorShape Shape;
  std::vector<float> Data;
};

} // namespace pf

#endif // PIMFLOW_IR_TENSOR_H
