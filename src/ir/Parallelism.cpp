//===- ir/Parallelism.cpp - Inter-node parallelism analysis -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parallelism.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

using namespace pf;

ParallelismStats pf::analyzeParallelism(const Graph &G) {
  const std::vector<NodeId> Order = G.topoOrder();
  const size_t N = Order.size();
  ParallelismStats Stats;
  Stats.NumNodes = static_cast<int>(N);
  if (N == 0)
    return Stats;

  std::unordered_map<NodeId, size_t> Index;
  for (size_t I = 0; I < N; ++I)
    Index[Order[I]] = I;

  // Reach[i] = bitset of nodes reachable from i (descendants, including i).
  const size_t Words = (N + 63) / 64;
  std::vector<std::vector<uint64_t>> Reach(
      N, std::vector<uint64_t>(Words, 0));
  auto SetBit = [&](std::vector<uint64_t> &Bits, size_t J) {
    Bits[J / 64] |= uint64_t(1) << (J % 64);
  };

  std::vector<int> Depth(N, 1);
  // Walk in reverse topological order so consumers' sets are final.
  for (size_t I = N; I-- > 0;) {
    SetBit(Reach[I], I);
    const Node &Nd = G.node(Order[I]);
    for (ValueId Out : Nd.Outputs) {
      for (NodeId Consumer : G.consumers(Out)) {
        const size_t J = Index.at(Consumer);
        for (size_t W = 0; W < Words; ++W)
          Reach[I][W] |= Reach[J][W];
      }
    }
  }
  // Critical path via forward pass.
  for (size_t I = 0; I < N; ++I) {
    const Node &Nd = G.node(Order[I]);
    for (ValueId In : Nd.Inputs) {
      const NodeId Producer = G.producer(In);
      if (Producer == InvalidNode)
        continue;
      Depth[I] = std::max(Depth[I], Depth[Index.at(Producer)] + 1);
    }
    Stats.CriticalPathLength = std::max(Stats.CriticalPathLength, Depth[I]);
  }

  // Two nodes are independent iff neither reaches the other. For node i,
  // the nodes ordered with i are Reach[i] (descendants) plus all ancestors
  // (j such that i is in Reach[j]).
  for (size_t I = 0; I < N; ++I) {
    std::vector<uint64_t> Ordered = Reach[I];
    for (size_t J = 0; J < N; ++J)
      if ((Reach[J][I / 64] >> (I % 64)) & 1)
        SetBit(Ordered, J);
    size_t OrderedCount = 0;
    for (uint64_t W : Ordered)
      OrderedCount += static_cast<size_t>(__builtin_popcountll(W));
    if (OrderedCount < N)
      ++Stats.NodesWithIndependentPeer;
  }
  return Stats;
}
