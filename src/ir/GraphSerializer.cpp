//===- ir/GraphSerializer.cpp - Graph save/load -----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/GraphSerializer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "support/Format.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

const char *kMagic = "pimflow-graph v1";

/// Kind <-> mnemonic lookup via opKindName.
std::optional<OpKind> kindFromName(const std::string &Name) {
  static const OpKind All[] = {
      OpKind::Input,   OpKind::Conv2d,  OpKind::Gemm,
      OpKind::Relu,    OpKind::Relu6,   OpKind::Sigmoid,
      OpKind::SiLU,    OpKind::Tanh,    OpKind::Gelu,
      OpKind::Softmax, OpKind::Add,     OpKind::Mul,
      OpKind::BatchNorm, OpKind::MaxPool, OpKind::AvgPool,
      OpKind::GlobalAvgPool, OpKind::Pad, OpKind::Slice,
      OpKind::Concat,  OpKind::Flatten, OpKind::Identity,
      OpKind::LayerNorm, OpKind::MatMul,
  };
  for (OpKind K : All)
    if (Name == opKindName(K))
      return K;
  return std::nullopt;
}

std::optional<Device> deviceFromName(const std::string &Name) {
  for (Device D : {Device::Any, Device::Gpu, Device::Pim})
    if (Name == deviceName(D))
      return D;
  return std::nullopt;
}

/// Emits the attr tokens of \p N.
std::string attrTokens(const Node &N) {
  auto LL = [](int64_t V) {
    return formatStr("%lld", static_cast<long long>(V));
  };
  switch (N.Kind) {
  case OpKind::Conv2d: {
    const Conv2dAttrs &A = N.conv();
    return " kh=" + LL(A.KernelH) + " kw=" + LL(A.KernelW) +
           " sh=" + LL(A.StrideH) + " sw=" + LL(A.StrideW) +
           " pt=" + LL(A.PadTop) + " pb=" + LL(A.PadBottom) +
           " pl=" + LL(A.PadLeft) + " pr=" + LL(A.PadRight) +
           " g=" + LL(A.Groups);
  }
  case OpKind::Gemm:
    return formatStr(" bias=%d", N.gemm().HasBias ? 1 : 0);
  case OpKind::MaxPool:
  case OpKind::AvgPool: {
    const PoolAttrs &A = std::get<PoolAttrs>(N.Attrs);
    return " kh=" + LL(A.KernelH) + " kw=" + LL(A.KernelW) +
           " sh=" + LL(A.StrideH) + " sw=" + LL(A.StrideW) +
           " pt=" + LL(A.PadTop) + " pb=" + LL(A.PadBottom) +
           " pl=" + LL(A.PadLeft) + " pr=" + LL(A.PadRight);
  }
  case OpKind::BatchNorm:
    return formatStr(" eps=%.9g",
                     std::get<BatchNormAttrs>(N.Attrs).Epsilon);
  case OpKind::Pad: {
    const PadAttrs &A = std::get<PadAttrs>(N.Attrs);
    return " pt=" + LL(A.Top) + " pb=" + LL(A.Bottom) +
           " pl=" + LL(A.Left) + " pr=" + LL(A.Right);
  }
  case OpKind::Slice: {
    const SliceAttrs &A = std::get<SliceAttrs>(N.Attrs);
    return " axis=" + LL(A.Axis) + " begin=" + LL(A.Begin) +
           " end=" + LL(A.End);
  }
  case OpKind::Concat:
    return " axis=" + LL(std::get<ConcatAttrs>(N.Attrs).Axis);
  case OpKind::LayerNorm:
    return formatStr(" eps=%.9g",
                     std::get<LayerNormAttrs>(N.Attrs).Epsilon);
  case OpKind::MatMul:
    return formatStr(" tb=%d",
                     std::get<MatMulAttrs>(N.Attrs).TransposeB ? 1 : 0);
  default:
    return std::string();
  }
}

/// Parsed key=value attr map.
using AttrMap = std::unordered_map<std::string, std::string>;

int64_t attrInt(const AttrMap &M, const char *Key, int64_t Default = 0) {
  auto It = M.find(Key);
  return It == M.end() ? Default : std::atoll(It->second.c_str());
}

OpAttrs attrsFromMap(OpKind Kind, const AttrMap &M) {
  switch (Kind) {
  case OpKind::Conv2d: {
    Conv2dAttrs A;
    A.KernelH = attrInt(M, "kh", 1);
    A.KernelW = attrInt(M, "kw", 1);
    A.StrideH = attrInt(M, "sh", 1);
    A.StrideW = attrInt(M, "sw", 1);
    A.PadTop = attrInt(M, "pt");
    A.PadBottom = attrInt(M, "pb");
    A.PadLeft = attrInt(M, "pl");
    A.PadRight = attrInt(M, "pr");
    A.Groups = attrInt(M, "g", 1);
    return A;
  }
  case OpKind::Gemm: {
    GemmAttrs A;
    A.HasBias = attrInt(M, "bias", 1) != 0;
    return A;
  }
  case OpKind::MaxPool:
  case OpKind::AvgPool: {
    PoolAttrs A;
    A.KernelH = attrInt(M, "kh", 2);
    A.KernelW = attrInt(M, "kw", 2);
    A.StrideH = attrInt(M, "sh", 2);
    A.StrideW = attrInt(M, "sw", 2);
    A.PadTop = attrInt(M, "pt");
    A.PadBottom = attrInt(M, "pb");
    A.PadLeft = attrInt(M, "pl");
    A.PadRight = attrInt(M, "pr");
    return A;
  }
  case OpKind::BatchNorm: {
    BatchNormAttrs A;
    auto It = M.find("eps");
    if (It != M.end())
      A.Epsilon = static_cast<float>(std::atof(It->second.c_str()));
    return A;
  }
  case OpKind::Pad: {
    PadAttrs A;
    A.Top = attrInt(M, "pt");
    A.Bottom = attrInt(M, "pb");
    A.Left = attrInt(M, "pl");
    A.Right = attrInt(M, "pr");
    return A;
  }
  case OpKind::Slice: {
    SliceAttrs A;
    A.Axis = attrInt(M, "axis", 1);
    A.Begin = attrInt(M, "begin");
    A.End = attrInt(M, "end");
    return A;
  }
  case OpKind::Concat: {
    ConcatAttrs A;
    A.Axis = attrInt(M, "axis", 1);
    return A;
  }
  case OpKind::LayerNorm: {
    LayerNormAttrs A;
    auto It = M.find("eps");
    if (It != M.end())
      A.Epsilon = static_cast<float>(std::atof(It->second.c_str()));
    return A;
  }
  case OpKind::MatMul: {
    MatMulAttrs A;
    A.TransposeB = attrInt(M, "tb", 0) != 0;
    return A;
  }
  default:
    return std::monostate{};
  }
}

/// Tokenizer skipping repeated spaces.
std::vector<std::string> tokens(const std::string &Line) {
  std::vector<std::string> Out;
  for (const std::string &T : split(Line, ' '))
    if (!T.empty())
      Out.push_back(T);
  return Out;
}

} // namespace

std::string pf::serializeGraph(const Graph &G) {
  std::string Out = formatStr("%s %s\n", kMagic, G.name().c_str());

  // Compact value renumbering: only values referenced by live structure.
  std::unordered_map<ValueId, int> Renumber;
  auto Touch = [&Renumber](ValueId Id) {
    Renumber.emplace(Id, static_cast<int>(Renumber.size()));
  };
  for (ValueId In : G.graphInputs())
    Touch(In);
  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    for (ValueId In : N.Inputs)
      Touch(In);
    for (ValueId O : N.Outputs)
      Touch(O);
  }
  for (ValueId O : G.graphOutputs())
    Touch(O);

  // Emit values sorted by new id.
  std::vector<ValueId> Ordered(Renumber.size(), InvalidValue);
  for (const auto &[Old, New] : Renumber)
    Ordered[static_cast<size_t>(New)] = Old;
  for (size_t I = 0; I < Ordered.size(); ++I) {
    const Value &V = G.value(Ordered[I]);
    PF_ASSERT(V.Name.find(' ') == std::string::npos,
              "value names must not contain spaces");
    Out += formatStr("value %zu %s %s %s", I, V.Name.c_str(),
                     dataTypeName(V.Type), V.IsParam ? "param" : "flow");
    if (V.IsParam)
      Out += formatStr(" %llu",
                       static_cast<unsigned long long>(V.InitSeed));
    for (int64_t D : V.Shape.dims())
      Out += formatStr(" %lld", static_cast<long long>(D));
    Out += '\n';
  }

  int NodeIdx = 0;
  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    PF_ASSERT(N.Name.find(' ') == std::string::npos,
              "node names must not contain spaces");
    Out += formatStr("node %d %s %s %s inputs", NodeIdx++,
                     opKindName(N.Kind), N.Name.c_str(),
                     deviceName(N.Dev));
    for (ValueId In : N.Inputs)
      Out += formatStr(" %d", Renumber.at(In));
    Out += " outputs";
    for (ValueId O : N.Outputs)
      Out += formatStr(" %d", Renumber.at(O));
    Out += attrTokens(N);
    Out += '\n';
  }

  Out += "inputs";
  for (ValueId In : G.graphInputs())
    Out += formatStr(" %d", Renumber.at(In));
  Out += "\noutputs";
  for (ValueId O : G.graphOutputs())
    Out += formatStr(" %d", Renumber.at(O));
  Out += "\nend\n";
  return Out;
}

std::variant<Graph, std::string> pf::parseGraph(const std::string &Text) {
  const std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.empty() || !startsWith(Lines[0], kMagic))
    return std::string("missing pimflow-graph header");
  const std::string Name = trim(Lines[0].substr(std::strlen(kMagic)));
  Graph G(Name.empty() ? "graph" : Name);

  std::vector<ValueId> ValueIds; // Serialized id -> graph value id.
  auto ValueAt = [&ValueIds](int64_t I) -> std::optional<ValueId> {
    if (I < 0 || static_cast<size_t>(I) >= ValueIds.size())
      return std::nullopt;
    return ValueIds[static_cast<size_t>(I)];
  };

  for (size_t LineNo = 1; LineNo < Lines.size(); ++LineNo) {
    const std::string Line = trim(Lines[LineNo]);
    if (Line.empty())
      continue;
    const std::vector<std::string> T = tokens(Line);
    auto Err = [&LineNo](const std::string &Why) {
      return formatStr("line %zu: %s", LineNo + 1, Why.c_str());
    };

    if (T[0] == "end")
      break;

    if (T[0] == "value") {
      if (T.size() < 5)
        return Err("malformed value line");
      const std::optional<int64_t> SerialId = parseInt(T[1]);
      if (!SerialId)
        return Err("value id '" + T[1] + "' is not an integer");
      if (*SerialId != static_cast<int64_t>(ValueIds.size()))
        return Err("value ids must be sequential");
      const std::string &VName = T[2];
      const DataType Type = T[3] == "f32" ? DataType::F32 : DataType::F16;
      if (T[3] != "f32" && T[3] != "f16")
        return Err("unknown data type " + T[3]);
      const bool IsParam = T[4] == "param";
      if (T[4] != "param" && T[4] != "flow")
        return Err("unknown value class " + T[4]);
      size_t DimStart = 5;
      uint64_t Seed = 0;
      if (IsParam) {
        if (T.size() < 6)
          return Err("param value missing init seed");
        const std::optional<uint64_t> S = parseUint(T[5]);
        if (!S)
          return Err("init seed '" + T[5] +
                     "' is not a non-negative integer");
        Seed = *S;
        DimStart = 6;
      }
      std::vector<int64_t> Dims;
      for (size_t I = DimStart; I < T.size(); ++I) {
        const std::optional<int64_t> D = parseInt(T[I]);
        if (!D || *D <= 0)
          return Err("shape extent '" + T[I] +
                     "' is not a positive integer");
        Dims.push_back(*D);
      }
      TensorShape Shape(Dims);
      if (IsParam) {
        ValueId Id = G.addParam(VName, Shape, Type);
        G.value(Id).InitSeed = Seed; // Preserve weight materialization.
        ValueIds.push_back(Id);
      } else {
        ValueIds.push_back(G.addValue(VName, Shape, Type));
      }
      continue;
    }

    if (T[0] == "node") {
      if (T.size() < 6)
        return Err("malformed node line");
      const std::optional<OpKind> Kind = kindFromName(T[2]);
      if (!Kind)
        return Err("unknown op kind " + T[2]);
      const std::string &NName = T[3];
      const std::optional<Device> Dev = deviceFromName(T[4]);
      if (!Dev)
        return Err("unknown device " + T[4]);
      if (T[5] != "inputs")
        return Err("expected 'inputs'");
      size_t I = 6;
      std::vector<ValueId> Ins, Outs;
      for (; I < T.size() && T[I] != "outputs"; ++I) {
        const std::optional<int64_t> Idx = parseInt(T[I]);
        if (!Idx)
          return Err("input value id '" + T[I] + "' is not an integer");
        auto V = ValueAt(*Idx);
        if (!V)
          return Err("input value id out of range");
        Ins.push_back(*V);
      }
      if (I >= T.size())
        return Err("expected 'outputs'");
      for (++I; I < T.size() && T[I].find('=') == std::string::npos; ++I) {
        const std::optional<int64_t> Idx = parseInt(T[I]);
        if (!Idx)
          return Err("output value id '" + T[I] + "' is not an integer");
        auto V = ValueAt(*Idx);
        if (!V)
          return Err("output value id out of range");
        Outs.push_back(*V);
      }
      AttrMap Attrs;
      for (; I < T.size(); ++I) {
        const size_t Eq = T[I].find('=');
        if (Eq == std::string::npos)
          return Err("malformed attribute " + T[I]);
        const std::string Key = T[I].substr(0, Eq);
        const std::string Val = T[I].substr(Eq + 1);
        // "eps" attrs are floats; everything else must be an integer
        // (atoi-style silent truncation used to accept "kh=3x" as 3).
        if (Key == "eps") {
          char *End = nullptr;
          std::strtod(Val.c_str(), &End);
          if (Val.empty() || *End != '\0')
            return Err("attribute " + Key + " value '" + Val +
                       "' is not a number");
        } else if (!parseInt(Val)) {
          return Err("attribute " + Key + " value '" + Val +
                     "' is not an integer");
        }
        Attrs[Key] = Val;
      }
      if (Outs.empty())
        return Err("node without outputs");
      G.addNode(*Kind, NName, attrsFromMap(*Kind, Attrs), std::move(Ins),
                std::move(Outs));
      G.node(static_cast<NodeId>(G.numNodesIncludingDead() - 1)).Dev =
          *Dev;
      continue;
    }

    if (T[0] == "inputs" || T[0] == "outputs") {
      std::vector<ValueId> Ids;
      for (size_t I = 1; I < T.size(); ++I) {
        const std::optional<int64_t> Idx = parseInt(T[I]);
        if (!Idx)
          return Err("graph interface value id '" + T[I] +
                     "' is not an integer");
        auto V = ValueAt(*Idx);
        if (!V)
          return Err("graph interface value id out of range");
        Ids.push_back(*V);
      }
      if (T[0] == "inputs")
        G.setGraphInputs(std::move(Ids));
      else
        G.setGraphOutputs(std::move(Ids));
      continue;
    }

    return Err("unknown directive " + T[0]);
  }

  if (auto VErr = G.validate())
    return "parsed graph is invalid: " + *VErr;
  return G;
}

bool pf::saveGraph(const Graph &G, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Text = serializeGraph(G);
  const bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) ==
                  Text.size();
  std::fclose(F);
  return Ok;
}

std::optional<Graph> pf::loadGraph(const std::string &Path,
                                   std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = "cannot open " + Path;
    return std::nullopt;
  }
  std::string Text;
  char Buf[4096];
  size_t Read;
  while ((Read = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, Read);
  std::fclose(F);
  auto Result = parseGraph(Text);
  if (std::holds_alternative<std::string>(Result)) {
    if (Error)
      *Error = std::get<std::string>(Result);
    return std::nullopt;
  }
  return std::get<Graph>(std::move(Result));
}
