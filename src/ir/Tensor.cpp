//===- ir/Tensor.cpp - Tensor shapes and dense tensors ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Tensor.h"

#include "support/Format.h"

using namespace pf;

const char *pf::dataTypeName(DataType Type) {
  switch (Type) {
  case DataType::F32:
    return "f32";
  case DataType::F16:
    return "f16";
  }
  pf_unreachable("unknown data type");
}

std::string TensorShape::toString() const {
  std::string Out = "[";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I != 0)
      Out += 'x';
    Out += formatStr("%lld", static_cast<long long>(Dims[I]));
  }
  Out += ']';
  return Out;
}
