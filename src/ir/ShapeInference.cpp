//===- ir/ShapeInference.cpp - Shape propagation ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ShapeInference.h"

#include "support/Format.h"

using namespace pf;

namespace {

std::optional<std::string> fail(const Node &N, const std::string &Why) {
  return formatStr("shape inference failed at node '%s' (%s): %s",
                   N.Name.c_str(), opKindName(N.Kind), Why.c_str());
}

} // namespace

std::optional<std::string> pf::inferNodeShapes(Graph &G, NodeId Id) {
  Node &N = G.node(Id);
  auto In = [&](size_t I) -> const TensorShape & {
    PF_ASSERT(I < N.Inputs.size(), "node input index out of range");
    return G.value(N.Inputs[I]).Shape;
  };
  auto SetOut = [&](size_t I, TensorShape Shape) {
    PF_ASSERT(I < N.Outputs.size(), "node output index out of range");
    G.value(N.Outputs[I]).Shape = std::move(Shape);
  };

  switch (N.Kind) {
  case OpKind::Input:
    return std::nullopt; // Shape fixed at construction.

  case OpKind::Conv2d: {
    if (N.Inputs.size() < 2)
      return fail(N, "expects input and weight");
    const Conv2dAttrs &A = N.conv();
    const TensorShape &X = In(0);
    const TensorShape &W = In(1);
    if (X.rank() != 4 || W.rank() != 4)
      return fail(N, "conv expects rank-4 input and weight");
    const int64_t Cin = X.dim(3);
    const int64_t Cout = W.dim(3);
    if (W.dim(0) != A.KernelH || W.dim(1) != A.KernelW)
      return fail(N, "weight kernel extent mismatch");
    if (W.dim(2) * A.Groups != Cin)
      return fail(N, formatStr("group/channel mismatch: W.Cin=%lld G=%lld "
                               "X.C=%lld",
                               static_cast<long long>(W.dim(2)),
                               static_cast<long long>(A.Groups),
                               static_cast<long long>(Cin)));
    if (Cout % A.Groups != 0)
      return fail(N, "Cout not divisible by groups");
    const int64_t Ho = convOutExtent(X.dim(1), A.KernelH, A.StrideH,
                                     A.PadTop, A.PadBottom);
    const int64_t Wo = convOutExtent(X.dim(2), A.KernelW, A.StrideW,
                                     A.PadLeft, A.PadRight);
    if (Ho <= 0 || Wo <= 0)
      return fail(N, "non-positive output spatial extent");
    SetOut(0, TensorShape{X.dim(0), Ho, Wo, Cout});
    return std::nullopt;
  }

  case OpKind::Gemm: {
    if (N.Inputs.size() < 2)
      return fail(N, "expects input and weight");
    const TensorShape &X = In(0);
    const TensorShape &W = In(1);
    if (X.rank() != 2 || W.rank() != 2)
      return fail(N, "gemm expects rank-2 operands");
    if (X.dim(1) != W.dim(0))
      return fail(N, "inner dimension mismatch");
    SetOut(0, TensorShape{X.dim(0), W.dim(1)});
    return std::nullopt;
  }

  case OpKind::Relu:
  case OpKind::Relu6:
  case OpKind::Sigmoid:
  case OpKind::SiLU:
  case OpKind::Tanh:
  case OpKind::Gelu:
  case OpKind::Softmax:
  case OpKind::Identity:
    SetOut(0, In(0));
    return std::nullopt;

  case OpKind::Add:
  case OpKind::Mul: {
    const TensorShape &A = In(0);
    const TensorShape &B = In(1);
    // Same shape, or B broadcast over all but the last (channel) axis.
    if (A == B) {
      SetOut(0, A);
      return std::nullopt;
    }
    if (B.numElements() == A.dim(A.rank() - 1)) {
      SetOut(0, A);
      return std::nullopt;
    }
    return fail(N, formatStr("incompatible shapes %s vs %s",
                             A.toString().c_str(), B.toString().c_str()));
  }

  case OpKind::BatchNorm: {
    const TensorShape &X = In(0);
    if (X.rank() != 4)
      return fail(N, "batchnorm expects rank-4 input");
    SetOut(0, X);
    return std::nullopt;
  }

  case OpKind::MaxPool:
  case OpKind::AvgPool: {
    const PoolAttrs &A = std::get<PoolAttrs>(N.Attrs);
    const TensorShape &X = In(0);
    if (X.rank() != 4)
      return fail(N, "pool expects rank-4 input");
    const int64_t Ho = convOutExtent(X.dim(1), A.KernelH, A.StrideH,
                                     A.PadTop, A.PadBottom);
    const int64_t Wo = convOutExtent(X.dim(2), A.KernelW, A.StrideW,
                                     A.PadLeft, A.PadRight);
    if (Ho <= 0 || Wo <= 0)
      return fail(N, "non-positive pooled extent");
    SetOut(0, TensorShape{X.dim(0), Ho, Wo, X.dim(3)});
    return std::nullopt;
  }

  case OpKind::GlobalAvgPool: {
    const TensorShape &X = In(0);
    if (X.rank() != 4)
      return fail(N, "globalavgpool expects rank-4 input");
    SetOut(0, TensorShape{X.dim(0), 1, 1, X.dim(3)});
    return std::nullopt;
  }

  case OpKind::Pad: {
    const PadAttrs &A = std::get<PadAttrs>(N.Attrs);
    const TensorShape &X = In(0);
    if (X.rank() != 4)
      return fail(N, "pad expects rank-4 input");
    SetOut(0, TensorShape{X.dim(0), X.dim(1) + A.Top + A.Bottom,
                          X.dim(2) + A.Left + A.Right, X.dim(3)});
    return std::nullopt;
  }

  case OpKind::Slice: {
    const SliceAttrs &A = std::get<SliceAttrs>(N.Attrs);
    TensorShape X = In(0);
    if (A.Axis < 0 || A.Axis >= X.rank())
      return fail(N, "slice axis out of range");
    if (A.Begin < 0 || A.End > X.dim(A.Axis) || A.Begin >= A.End)
      return fail(N, formatStr("slice range [%lld,%lld) invalid for dim %lld",
                               static_cast<long long>(A.Begin),
                               static_cast<long long>(A.End),
                               static_cast<long long>(X.dim(A.Axis))));
    X.setDim(A.Axis, A.End - A.Begin);
    SetOut(0, X);
    return std::nullopt;
  }

  case OpKind::Concat: {
    const ConcatAttrs &A = std::get<ConcatAttrs>(N.Attrs);
    if (N.Inputs.empty())
      return fail(N, "concat expects at least one input");
    TensorShape Out = In(0);
    if (A.Axis < 0 || A.Axis >= Out.rank())
      return fail(N, "concat axis out of range");
    int64_t Total = Out.dim(A.Axis);
    for (size_t I = 1; I < N.Inputs.size(); ++I) {
      const TensorShape &X = In(I);
      if (X.rank() != Out.rank())
        return fail(N, "concat rank mismatch");
      for (int64_t D = 0; D < Out.rank(); ++D)
        if (D != A.Axis && X.dim(D) != Out.dim(D))
          return fail(N, "concat non-axis extent mismatch");
      Total += X.dim(A.Axis);
    }
    Out.setDim(A.Axis, Total);
    SetOut(0, Out);
    return std::nullopt;
  }

  case OpKind::Flatten: {
    const TensorShape &X = In(0);
    SetOut(0, TensorShape{X.dim(0), X.numElements() / X.dim(0)});
    return std::nullopt;
  }

  case OpKind::LayerNorm: {
    const TensorShape &X = In(0);
    if (X.rank() < 1)
      return fail(N, "layernorm expects at least rank 1");
    const TensorShape &Scale = In(1);
    if (Scale.numElements() != X.dim(X.rank() - 1))
      return fail(N, "layernorm scale must match the last axis");
    SetOut(0, X);
    return std::nullopt;
  }

  case OpKind::MatMul: {
    const MatMulAttrs &A = std::get<MatMulAttrs>(N.Attrs);
    const TensorShape &X = In(0);
    const TensorShape &Y = In(1);
    if (X.rank() != 2 || Y.rank() != 2)
      return fail(N, "matmul expects rank-2 operands");
    const int64_t KY = A.TransposeB ? Y.dim(1) : Y.dim(0);
    const int64_t M = A.TransposeB ? Y.dim(0) : Y.dim(1);
    if (X.dim(1) != KY)
      return fail(N, "matmul inner dimension mismatch");
    SetOut(0, TensorShape{X.dim(0), M});
    return std::nullopt;
  }
  }
  pf_unreachable("unknown op kind in shape inference");
}

std::optional<std::string> pf::inferShapes(Graph &G) {
  for (NodeId Id : G.topoOrder())
    if (auto Err = inferNodeShapes(G, Id))
      return Err;
  return std::nullopt;
}
