//===- ir/ShapeInference.h - Shape propagation ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Propagates tensor shapes from graph inputs/parameters through every live
/// node. Transformation passes call this after rewriting a graph to refresh
/// value shapes and to catch malformed rewrites early.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_SHAPEINFERENCE_H
#define PIMFLOW_IR_SHAPEINFERENCE_H

#include <optional>
#include <string>

#include "ir/Graph.h"

namespace pf {

/// Computes the output shape(s) of \p N given its current input shapes and
/// writes them into the graph. Returns an error string on inconsistent
/// inputs.
std::optional<std::string> inferNodeShapes(Graph &G, NodeId Id);

/// Runs inferNodeShapes over all live nodes in topological order.
/// Returns the first error encountered, or std::nullopt on success.
std::optional<std::string> inferShapes(Graph &G);

/// Convenience: computes a Conv2d output spatial extent.
inline int64_t convOutExtent(int64_t In, int64_t Kernel, int64_t Stride,
                             int64_t PadLo, int64_t PadHi) {
  return (In + PadLo + PadHi - Kernel) / Stride + 1;
}

} // namespace pf

#endif // PIMFLOW_IR_SHAPEINFERENCE_H
