//===- ir/Graph.h - Model computation graph ---------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computation-graph IR that the PIMFlow passes transform. A Graph owns
/// Values (tensors flowing between nodes, plus weight parameters) and Nodes
/// (operator applications). It plays the role of the ONNX ModelProto in the
/// original artifact: the transformation passes, the search engine, and the
/// DRAM-PIM back-end all operate on this representation.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_GRAPH_H
#define PIMFLOW_IR_GRAPH_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/Ops.h"
#include "ir/Tensor.h"

namespace pf {

using ValueId = int32_t;
using NodeId = int32_t;
inline constexpr NodeId InvalidNode = -1;
inline constexpr ValueId InvalidValue = -1;

/// The device a node is assigned to execute on. `Any` means the placement
/// decision has not been made (pre-search graphs).
enum class Device : uint8_t {
  Any,
  Gpu,
  Pim,
};

/// Returns "any"/"gpu"/"pim".
const char *deviceName(Device Dev);

/// A tensor flowing through the graph, or a weight parameter.
struct Value {
  ValueId Id = InvalidValue;
  std::string Name;
  TensorShape Shape;
  DataType Type = DataType::F16;
  /// True for weight/bias parameters (graph-constant inputs).
  bool IsParam = false;
  /// Seed used to deterministically materialize parameter data on demand.
  uint64_t InitSeed = 0;

  int64_t byteCount() const { return Shape.numElements() * byteSize(Type); }
};

/// One operator application.
struct Node {
  NodeId Id = InvalidNode;
  std::string Name;
  OpKind Kind = OpKind::Identity;
  OpAttrs Attrs;
  std::vector<ValueId> Inputs;
  std::vector<ValueId> Outputs;
  /// Placement annotation; set by the search / transformation passes.
  Device Dev = Device::Any;
  bool Dead = false;

  const Conv2dAttrs &conv() const {
    PF_ASSERT(Kind == OpKind::Conv2d, "not a conv node");
    return std::get<Conv2dAttrs>(Attrs);
  }
  const GemmAttrs &gemm() const {
    PF_ASSERT(Kind == OpKind::Gemm, "not a gemm node");
    return std::get<GemmAttrs>(Attrs);
  }
};

/// Returns true if \p N is a PIM-offload candidate per the paper's rule:
/// FC (Gemm) layers and all CONV layers except depthwise (grouped) ones.
bool isPimCandidate(const Node &N);

/// Returns true for depthwise (grouped) convolutions, which stay on GPU.
bool isDepthwiseConv(const Node &N);

/// A computation graph: an SSA-ish dataflow of Nodes over Values.
///
/// Values are single-assignment: every non-input, non-parameter value has
/// exactly one producing node. Nodes are stored in insertion order and may
/// be marked dead by passes; topoOrder() yields a topologically sorted view
/// of the live nodes.
class Graph {
public:
  explicit Graph(std::string Name = "graph") : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Creates a flowing (activation) value.
  ValueId addValue(const std::string &Name, TensorShape Shape,
                   DataType Type = DataType::F16);

  /// Creates a weight parameter value with a deterministic init seed.
  ValueId addParam(const std::string &Name, TensorShape Shape,
                   DataType Type = DataType::F16);

  /// Appends a node. All input/output value ids must already exist, and
  /// each output must not have a producer yet.
  NodeId addNode(OpKind Kind, const std::string &Name, OpAttrs Attrs,
                 std::vector<ValueId> Inputs, std::vector<ValueId> Outputs);

  /// Marks a node dead. Its outputs lose their producer and may be re-used
  /// as outputs of a replacement node.
  void removeNode(NodeId Id);

  Value &value(ValueId Id) {
    PF_ASSERT(Id >= 0 && static_cast<size_t>(Id) < Values.size(),
              "value id out of range");
    return Values[static_cast<size_t>(Id)];
  }
  const Value &value(ValueId Id) const {
    return const_cast<Graph *>(this)->value(Id);
  }

  Node &node(NodeId Id) {
    PF_ASSERT(Id >= 0 && static_cast<size_t>(Id) < Nodes.size(),
              "node id out of range");
    return Nodes[static_cast<size_t>(Id)];
  }
  const Node &node(NodeId Id) const {
    return const_cast<Graph *>(this)->node(Id);
  }

  size_t numValues() const { return Values.size(); }
  size_t numNodesIncludingDead() const { return Nodes.size(); }

  /// Number of live nodes.
  size_t numNodes() const;

  const std::vector<Value> &values() const { return Values; }
  const std::vector<Node> &nodes() const { return Nodes; }

  void setGraphInputs(std::vector<ValueId> Ids) { Inputs = std::move(Ids); }
  void setGraphOutputs(std::vector<ValueId> Ids) { Outputs = std::move(Ids); }
  const std::vector<ValueId> &graphInputs() const { return Inputs; }
  const std::vector<ValueId> &graphOutputs() const { return Outputs; }

  /// Producer of \p Id, or InvalidNode for graph inputs and parameters.
  NodeId producer(ValueId Id) const;

  /// Live nodes consuming \p Id.
  std::vector<NodeId> consumers(ValueId Id) const;

  /// Topologically sorted live node ids (Kahn). Aborts on cycles.
  std::vector<NodeId> topoOrder() const;

  /// Like topoOrder, but a cyclic graph yields a partial order (the
  /// schedulable prefix) instead of aborting — callers compare the size
  /// against numNodes() to diagnose cycles gracefully.
  std::vector<NodeId> tryTopoOrder() const;

  /// Structural validation: every live node's values exist, every flowing
  /// value consumed by a live node has a live producer or is a graph input,
  /// graph outputs are produced. Returns an error description or
  /// std::nullopt when valid.
  std::optional<std::string> validate() const;

  /// Attaches explicit data for a parameter (tests / small examples). The
  /// interpreter falls back to seed-based materialization otherwise.
  void setParamData(ValueId Id, Tensor Data);

  /// Explicit data for \p Id if previously attached.
  const Tensor *paramData(ValueId Id) const;

private:
  std::string Name;
  std::vector<Value> Values;
  std::vector<Node> Nodes;
  std::vector<ValueId> Inputs;
  std::vector<ValueId> Outputs;
  /// Producer node of each value (InvalidNode if none).
  std::vector<NodeId> ProducerOf;
  std::unordered_map<ValueId, Tensor> ExplicitParamData;
};

} // namespace pf

#endif // PIMFLOW_IR_GRAPH_H
