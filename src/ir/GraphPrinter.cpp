//===- ir/GraphPrinter.cpp - Textual graph dump -----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/GraphPrinter.h"

#include "support/Format.h"

using namespace pf;

namespace {

std::string attrString(const Node &N) {
  switch (N.Kind) {
  case OpKind::Conv2d: {
    const Conv2dAttrs &A = N.conv();
    return formatStr(" {k=%lldx%lld s=%lld p=%lld,%lld,%lld,%lld g=%lld}",
                     static_cast<long long>(A.KernelH),
                     static_cast<long long>(A.KernelW),
                     static_cast<long long>(A.StrideH),
                     static_cast<long long>(A.PadTop),
                     static_cast<long long>(A.PadBottom),
                     static_cast<long long>(A.PadLeft),
                     static_cast<long long>(A.PadRight),
                     static_cast<long long>(A.Groups));
  }
  case OpKind::MaxPool:
  case OpKind::AvgPool: {
    const PoolAttrs &A = std::get<PoolAttrs>(N.Attrs);
    return formatStr(" {k=%lldx%lld s=%lld}",
                     static_cast<long long>(A.KernelH),
                     static_cast<long long>(A.KernelW),
                     static_cast<long long>(A.StrideH));
  }
  case OpKind::Pad: {
    const PadAttrs &A = std::get<PadAttrs>(N.Attrs);
    return formatStr(" {t=%lld b=%lld l=%lld r=%lld}",
                     static_cast<long long>(A.Top),
                     static_cast<long long>(A.Bottom),
                     static_cast<long long>(A.Left),
                     static_cast<long long>(A.Right));
  }
  case OpKind::Slice: {
    const SliceAttrs &A = std::get<SliceAttrs>(N.Attrs);
    return formatStr(" {axis=%lld [%lld,%lld)}",
                     static_cast<long long>(A.Axis),
                     static_cast<long long>(A.Begin),
                     static_cast<long long>(A.End));
  }
  case OpKind::Concat: {
    const ConcatAttrs &A = std::get<ConcatAttrs>(N.Attrs);
    return formatStr(" {axis=%lld}", static_cast<long long>(A.Axis));
  }
  default:
    return std::string();
  }
}

} // namespace

std::string pf::printNode(const Graph &G, NodeId Id) {
  const Node &N = G.node(Id);
  std::string Line = formatStr("%%%s = %s(", N.Name.c_str(),
                               opKindName(N.Kind));
  for (size_t I = 0; I < N.Inputs.size(); ++I) {
    if (I != 0)
      Line += ", ";
    Line += '%';
    Line += G.value(N.Inputs[I]).Name;
  }
  Line += ')';
  Line += attrString(N);
  Line += " : ";
  Line += G.value(N.Outputs[0]).Shape.toString();
  if (N.Dev != Device::Any) {
    Line += " @";
    Line += deviceName(N.Dev);
  }
  return Line;
}

std::string pf::printDot(const Graph &G) {
  std::string Out = formatStr("digraph \"%s\" {\n  rankdir=TB;\n"
                              "  node [shape=box, fontname=\"monospace\"];\n",
                              G.name().c_str());
  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    const char *Fill = N.Dev == Device::Pim   ? "lightsalmon"
                       : N.Dev == Device::Gpu ? "lightsteelblue"
                                              : "white";
    Out += formatStr("  n%d [label=\"%s\\n%s\", style=filled, "
                     "fillcolor=%s];\n",
                     Id, N.Name.c_str(), opKindName(N.Kind), Fill);
  }
  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    for (ValueId In : N.Inputs) {
      const NodeId Producer = G.producer(In);
      if (Producer == InvalidNode)
        continue; // Graph inputs / parameters are omitted for readability.
      Out += formatStr("  n%d -> n%d [label=\"%s\"];\n", Producer, Id,
                       G.value(In).Shape.toString().c_str());
    }
  }
  Out += "}\n";
  return Out;
}

std::string pf::printGraph(const Graph &G) {
  std::string Out = formatStr("graph %s (", G.name().c_str());
  const auto &Ins = G.graphInputs();
  for (size_t I = 0; I < Ins.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += '%';
    Out += G.value(Ins[I]).Name;
    Out += ' ';
    Out += G.value(Ins[I]).Shape.toString();
  }
  Out += ") {\n";
  for (NodeId Id : G.topoOrder()) {
    Out += "  ";
    Out += printNode(G, Id);
    Out += '\n';
  }
  Out += "  return ";
  const auto &Outs = G.graphOutputs();
  for (size_t I = 0; I < Outs.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += '%';
    Out += G.value(Outs[I]).Name;
  }
  Out += "\n}\n";
  return Out;
}
