//===- ir/Metrics.h - Per-node cost metrics ---------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static cost metrics of graph nodes: MAC counts, load/store bytes, and the
/// arithmetic-intensity measure from the paper's Fig. 1 (# of MACs divided
/// by # of loaded/stored elements). The GPU timing model and the
/// preliminary-analysis bench both build on these.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_METRICS_H
#define PIMFLOW_IR_METRICS_H

#include <cstdint>

#include "ir/Graph.h"

namespace pf {

/// Cost summary of one node.
struct NodeMetrics {
  /// Multiply-accumulate operations (conv/gemm) or elementwise op count.
  int64_t Macs = 0;
  /// Total non-MAC arithmetic ops (activations, pooling compares...).
  int64_t OtherOps = 0;
  /// Bytes read: activations + weights (assuming no cache).
  int64_t BytesIn = 0;
  /// Of which weight/parameter bytes.
  int64_t WeightBytes = 0;
  /// Bytes written.
  int64_t BytesOut = 0;

  /// Elements loaded or stored (for arithmetic intensity a la Fig. 1).
  int64_t LdStElements = 0;

  /// Arithmetic intensity: MACs per loaded/stored element.
  double arithmeticIntensity() const {
    return LdStElements == 0
               ? 0.0
               : static_cast<double>(Macs) /
                     static_cast<double>(LdStElements);
  }

  int64_t flops() const { return 2 * Macs + OtherOps; }
};

/// Computes the metrics of node \p Id. Shapes must be inferred.
NodeMetrics computeMetrics(const Graph &G, NodeId Id);

/// Sums metrics over all live nodes.
NodeMetrics computeGraphMetrics(const Graph &G);

} // namespace pf

#endif // PIMFLOW_IR_METRICS_H
