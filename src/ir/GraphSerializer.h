//===- ir/GraphSerializer.h - Graph save/load -------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented textual serialization of Graphs — the stand-in for the
/// artifact's ONNX files: the driver saves transformed graphs to disk and
/// later steps (or other tools) reload them. The format is self-contained
/// (declares every value with shape/type/param flag before the node list)
/// and round-trips exactly, including device annotations.
///
/// ```
/// pimflow-graph v1 <name>
/// value <id> <name> <f16|f32> <flow|param> [d0 d1 ...]
/// node <id> <kind> <name> <device> inputs <i...> outputs <o...>
///      [<key>=<value> ...]   (on the same physical line)
/// inputs <v...>
/// outputs <v...>
/// end
/// ```
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_GRAPHSERIALIZER_H
#define PIMFLOW_IR_GRAPHSERIALIZER_H

#include <optional>
#include <string>
#include <variant>

#include "ir/Graph.h"

namespace pf {

/// Serializes \p G (live nodes only) to the textual format.
std::string serializeGraph(const Graph &G);

/// Parses a graph previously produced by serializeGraph. Returns the graph
/// or an error description.
std::variant<Graph, std::string> parseGraph(const std::string &Text);

/// Writes serializeGraph(G) to \p Path. Returns false on I/O failure.
bool saveGraph(const Graph &G, const std::string &Path);

/// Reads and parses a graph file. Returns std::nullopt (and fills
/// \p Error if non-null) on failure.
std::optional<Graph> loadGraph(const std::string &Path,
                               std::string *Error = nullptr);

} // namespace pf

#endif // PIMFLOW_IR_GRAPHSERIALIZER_H
