//===- ir/GraphPrinter.h - Textual graph dump -------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable textual rendering of a Graph, one node per line, with
/// shapes, attributes and device annotations. Used by examples and
/// debugging; transformation tests diff these dumps.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_GRAPHPRINTER_H
#define PIMFLOW_IR_GRAPHPRINTER_H

#include <string>

#include "ir/Graph.h"

namespace pf {

/// Renders one node as e.g.
/// "%conv_3 = conv2d(%relu_2.out, %w_1) {k=3x3 s=2 p=1 g=1} : [1x56x56x64]
///  @gpu".
std::string printNode(const Graph &G, NodeId Id);

/// Renders the whole graph in topological order with a header naming the
/// graph inputs and a footer naming the outputs.
std::string printGraph(const Graph &G);

/// Renders the dataflow as a Graphviz DOT digraph: one box per live node
/// (colored by device: PIM nodes filled), edges labeled with tensor
/// shapes. Feed to `dot -Tsvg` to visualize transformed graphs.
std::string printDot(const Graph &G);

} // namespace pf

#endif // PIMFLOW_IR_GRAPHPRINTER_H
