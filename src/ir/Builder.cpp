//===- ir/Builder.cpp - Convenience graph construction ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "ir/ShapeInference.h"
#include "support/Format.h"

using namespace pf;

std::string GraphBuilder::freshName(const char *Stem) {
  return formatStr("%s_%d", Stem, Counter++);
}

ValueId GraphBuilder::input(const std::string &Name, TensorShape Shape) {
  ValueId Id = G.addValue(Name, std::move(Shape));
  auto Inputs = G.graphInputs();
  Inputs.push_back(Id);
  G.setGraphInputs(std::move(Inputs));
  return Id;
}

ValueId GraphBuilder::addOp(OpKind Kind, OpAttrs Attrs,
                            std::vector<ValueId> Inputs) {
  std::string Name = freshName(opKindName(Kind));
  ValueId Out = G.addValue(Name + ".out", TensorShape{});
  NodeId N = G.addNode(Kind, Name, std::move(Attrs), std::move(Inputs), {Out});
  auto Err = inferNodeShapes(G, N);
  PF_ASSERT(!Err, "builder produced an op that fails shape inference");
  if (Err)
    pf_unreachable(Err->c_str());
  return Out;
}

ValueId GraphBuilder::conv2d(ValueId X, int64_t Cout, int64_t Kernel,
                             int64_t Stride, int64_t Pad, int64_t Groups,
                             bool WithBias) {
  const TensorShape &XS = G.value(X).Shape;
  PF_ASSERT(XS.rank() == 4, "conv2d input must be rank-4 NHWC");
  const int64_t Cin = XS.dim(3);
  PF_ASSERT(Cin % Groups == 0, "channels not divisible by groups");
  ValueId W = G.addParam(freshName("w"),
                         TensorShape{Kernel, Kernel, Cin / Groups, Cout});
  Conv2dAttrs A;
  A.KernelH = A.KernelW = Kernel;
  A.StrideH = A.StrideW = Stride;
  A.PadTop = A.PadBottom = A.PadLeft = A.PadRight = Pad;
  A.Groups = Groups;
  std::vector<ValueId> Inputs = {X, W};
  if (WithBias)
    Inputs.push_back(G.addParam(freshName("b"), TensorShape{Cout}));
  return addOp(OpKind::Conv2d, A, std::move(Inputs));
}

ValueId GraphBuilder::dwConv(ValueId X, int64_t Kernel, int64_t Stride,
                             int64_t Pad) {
  const int64_t C = G.value(X).Shape.dim(3);
  return conv2d(X, C, Kernel, Stride, Pad, /*Groups=*/C);
}

ValueId GraphBuilder::gemm(ValueId X, int64_t OutFeatures, bool WithBias) {
  const TensorShape &XS = G.value(X).Shape;
  PF_ASSERT(XS.rank() == 2, "gemm input must be rank-2");
  ValueId W =
      G.addParam(freshName("w"), TensorShape{XS.dim(1), OutFeatures});
  GemmAttrs A;
  A.HasBias = WithBias;
  std::vector<ValueId> Inputs = {X, W};
  if (WithBias)
    Inputs.push_back(G.addParam(freshName("b"), TensorShape{OutFeatures}));
  return addOp(OpKind::Gemm, A, std::move(Inputs));
}

ValueId GraphBuilder::relu(ValueId X) {
  return addOp(OpKind::Relu, std::monostate{}, {X});
}
ValueId GraphBuilder::relu6(ValueId X) {
  return addOp(OpKind::Relu6, std::monostate{}, {X});
}
ValueId GraphBuilder::silu(ValueId X) {
  return addOp(OpKind::SiLU, std::monostate{}, {X});
}
ValueId GraphBuilder::sigmoid(ValueId X) {
  return addOp(OpKind::Sigmoid, std::monostate{}, {X});
}
ValueId GraphBuilder::gelu(ValueId X) {
  return addOp(OpKind::Gelu, std::monostate{}, {X});
}
ValueId GraphBuilder::softmax(ValueId X) {
  return addOp(OpKind::Softmax, std::monostate{}, {X});
}

ValueId GraphBuilder::add(ValueId A, ValueId B) {
  return addOp(OpKind::Add, std::monostate{}, {A, B});
}
ValueId GraphBuilder::mul(ValueId A, ValueId B) {
  return addOp(OpKind::Mul, std::monostate{}, {A, B});
}

ValueId GraphBuilder::batchNorm(ValueId X) {
  const int64_t C = G.value(X).Shape.dim(3);
  ValueId Scale = G.addParam(freshName("bn_scale"), TensorShape{C});
  ValueId Bias = G.addParam(freshName("bn_bias"), TensorShape{C});
  ValueId Mean = G.addParam(freshName("bn_mean"), TensorShape{C});
  ValueId Var = G.addParam(freshName("bn_var"), TensorShape{C});
  return addOp(OpKind::BatchNorm, BatchNormAttrs{}, {X, Scale, Bias, Mean,
                                                     Var});
}

ValueId GraphBuilder::layerNorm(ValueId X) {
  const TensorShape &XS = G.value(X).Shape;
  const int64_t C = XS.dim(XS.rank() - 1);
  ValueId Scale = G.addParam(freshName("ln_scale"), TensorShape{C});
  ValueId Bias = G.addParam(freshName("ln_bias"), TensorShape{C});
  return addOp(OpKind::LayerNorm, LayerNormAttrs{}, {X, Scale, Bias});
}

ValueId GraphBuilder::matmul(ValueId A, ValueId B, bool TransposeB) {
  MatMulAttrs Attrs;
  Attrs.TransposeB = TransposeB;
  return addOp(OpKind::MatMul, Attrs, {A, B});
}

static PoolAttrs makePool(int64_t Kernel, int64_t Stride, int64_t Pad) {
  PoolAttrs A;
  A.KernelH = A.KernelW = Kernel;
  A.StrideH = A.StrideW = Stride;
  A.PadTop = A.PadBottom = A.PadLeft = A.PadRight = Pad;
  return A;
}

ValueId GraphBuilder::maxPool(ValueId X, int64_t Kernel, int64_t Stride,
                              int64_t Pad) {
  return addOp(OpKind::MaxPool, makePool(Kernel, Stride, Pad), {X});
}
ValueId GraphBuilder::avgPool(ValueId X, int64_t Kernel, int64_t Stride,
                              int64_t Pad) {
  return addOp(OpKind::AvgPool, makePool(Kernel, Stride, Pad), {X});
}
ValueId GraphBuilder::globalAvgPool(ValueId X) {
  return addOp(OpKind::GlobalAvgPool, std::monostate{}, {X});
}

ValueId GraphBuilder::pad(ValueId X, int64_t Top, int64_t Bottom,
                          int64_t Left, int64_t Right) {
  PadAttrs A;
  A.Top = Top;
  A.Bottom = Bottom;
  A.Left = Left;
  A.Right = Right;
  return addOp(OpKind::Pad, A, {X});
}

ValueId GraphBuilder::slice(ValueId X, int64_t Axis, int64_t Begin,
                            int64_t End) {
  SliceAttrs A;
  A.Axis = Axis;
  A.Begin = Begin;
  A.End = End;
  return addOp(OpKind::Slice, A, {X});
}

ValueId GraphBuilder::concat(const std::vector<ValueId> &Xs, int64_t Axis) {
  ConcatAttrs A;
  A.Axis = Axis;
  return addOp(OpKind::Concat, A, Xs);
}

ValueId GraphBuilder::flatten(ValueId X) {
  return addOp(OpKind::Flatten, std::monostate{}, {X});
}

void GraphBuilder::output(ValueId X) {
  auto Outputs = G.graphOutputs();
  Outputs.push_back(X);
  G.setGraphOutputs(std::move(Outputs));
}

Graph GraphBuilder::take() {
  auto Err = G.validate();
  if (Err)
    pf_unreachable(Err->c_str());
  return std::move(G);
}
