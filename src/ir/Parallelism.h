//===- ir/Parallelism.h - Inter-node parallelism analysis -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section-3 preliminary analysis, observation 1: "zero or
/// less than 17% of the graph nodes have nodes without data-flow
/// dependency in 75% of the Torchvision CNN models" — i.e. CNN graphs are
/// mostly straight lines, so a compiler must *create* inter-node
/// parallelism rather than find it. This analysis computes, per graph, the
/// fraction of nodes that have at least one concurrently executable peer
/// (another node with no dependency path in either direction).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_PARALLELISM_H
#define PIMFLOW_IR_PARALLELISM_H

#include "ir/Graph.h"

namespace pf {

/// Result of the inter-node parallelism analysis.
struct ParallelismStats {
  /// Live nodes analyzed.
  int NumNodes = 0;
  /// Nodes with at least one independent (unordered) peer.
  int NodesWithIndependentPeer = 0;
  /// Length of the longest dependency chain (critical path in nodes).
  int CriticalPathLength = 0;

  /// The paper's metric: fraction of nodes with an independent peer.
  double independentFraction() const {
    return NumNodes == 0
               ? 0.0
               : static_cast<double>(NodesWithIndependentPeer) / NumNodes;
  }

  /// Average width: nodes per critical-path step.
  double averageWidth() const {
    return CriticalPathLength == 0
               ? 0.0
               : static_cast<double>(NumNodes) / CriticalPathLength;
  }
};

/// Computes reachability-based parallelism statistics over the live nodes
/// of \p G. O(N^2 / 64) via bitset reachability; fine for model graphs.
ParallelismStats analyzeParallelism(const Graph &G);

} // namespace pf

#endif // PIMFLOW_IR_PARALLELISM_H
