//===- ir/Ops.h - Operator kinds and attributes -----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operator set of the graph IR. It mirrors the subset of ONNX opset 13
/// that the paper's transformation passes touch: Conv (including depthwise
/// via groups), Gemm, elementwise ops, pooling, the data-movement trio
/// Slice/Pad/Concat that MD-DP splitting and pipelining insert, and the
/// activation functions appearing in the evaluated models.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_OPS_H
#define PIMFLOW_IR_OPS_H

#include <cstdint>
#include <variant>

namespace pf {

/// Discriminator for graph node operators.
enum class OpKind : uint8_t {
  Input,      ///< Graph input placeholder (no computation).
  Conv2d,     ///< 2-D convolution, NHWC, weights [KH,KW,Cin/G,Cout].
  Gemm,       ///< Fully-connected: X[N,K] * W[K,M] + bias[M].
  Relu,       ///< max(x, 0)
  Relu6,      ///< min(max(x, 0), 6)
  Sigmoid,    ///< 1 / (1 + exp(-x))
  SiLU,       ///< x * sigmoid(x) (a.k.a. swish; EfficientNet)
  Tanh,       ///< tanh(x)
  Gelu,       ///< Gaussian error linear unit (BERT)
  Softmax,    ///< softmax over the last axis
  Add,        ///< elementwise addition (same shape or channel broadcast)
  Mul,        ///< elementwise multiplication (same shape or channel bcast)
  BatchNorm,  ///< per-channel (x - mean)/sqrt(var+eps)*scale + bias
  MaxPool,    ///< max pooling
  AvgPool,    ///< average pooling
  GlobalAvgPool, ///< spatial global average pooling -> [N,1,1,C]
  Pad,        ///< zero padding of spatial dims
  Slice,      ///< contiguous slice along one axis
  Concat,     ///< concatenation along one axis
  Flatten,    ///< collapse to [N, rest]
  Identity,   ///< pass-through (used by transforms as a placeholder)
  LayerNorm,  ///< normalize over the last axis, then scale+bias (BERT)
  MatMul,     ///< weight-less matrix product A[N,K] x B[K,M] (attention)
};

/// Returns the mnemonic for \p Kind ("conv2d", "gemm", ...).
const char *opKindName(OpKind Kind);

/// Attributes for Conv2d.
struct Conv2dAttrs {
  int64_t KernelH = 1;
  int64_t KernelW = 1;
  int64_t StrideH = 1;
  int64_t StrideW = 1;
  /// Spatial zero padding: top/bottom/left/right.
  int64_t PadTop = 0;
  int64_t PadBottom = 0;
  int64_t PadLeft = 0;
  int64_t PadRight = 0;
  /// Grouped convolution; depthwise when Groups == Cin == Cout.
  int64_t Groups = 1;
  bool operator==(const Conv2dAttrs &) const = default;

  /// True for 1x1 stride-free pointwise convolution, the primary PIM target.
  bool isPointwise() const {
    return KernelH == 1 && KernelW == 1 && Groups == 1;
  }
};

/// Attributes for Gemm (fully-connected).
struct GemmAttrs {
  bool HasBias = true;
  bool operator==(const GemmAttrs &) const = default;
};

/// Attributes for MaxPool / AvgPool.
struct PoolAttrs {
  int64_t KernelH = 2;
  int64_t KernelW = 2;
  int64_t StrideH = 2;
  int64_t StrideW = 2;
  int64_t PadTop = 0;
  int64_t PadBottom = 0;
  int64_t PadLeft = 0;
  int64_t PadRight = 0;
  bool operator==(const PoolAttrs &) const = default;
};

/// Attributes for BatchNorm.
struct BatchNormAttrs {
  float Epsilon = 1e-5f;
  bool operator==(const BatchNormAttrs &) const = default;
};

/// Attributes for LayerNorm.
struct LayerNormAttrs {
  float Epsilon = 1e-5f;
  bool operator==(const LayerNormAttrs &) const = default;
};

/// Attributes for MatMul: optionally transpose the second operand
/// (attention's Q x K^T).
struct MatMulAttrs {
  bool TransposeB = false;
  bool operator==(const MatMulAttrs &) const = default;
};

/// Attributes for Pad: zero padding amounts for the spatial dims of an NHWC
/// tensor.
struct PadAttrs {
  int64_t Top = 0;
  int64_t Bottom = 0;
  int64_t Left = 0;
  int64_t Right = 0;
  bool operator==(const PadAttrs &) const = default;
};

/// Attributes for Slice: [Begin, End) along Axis.
struct SliceAttrs {
  int64_t Axis = 1;
  int64_t Begin = 0;
  int64_t End = 0;
  bool operator==(const SliceAttrs &) const = default;
};

/// Attributes for Concat.
struct ConcatAttrs {
  int64_t Axis = 1;
  bool operator==(const ConcatAttrs &) const = default;
};

/// Tagged union of all per-op attribute structs. std::monostate is used for
/// attribute-free ops (activations, Add, Flatten, ...).
using OpAttrs = std::variant<std::monostate, Conv2dAttrs, GemmAttrs,
                             PoolAttrs, BatchNormAttrs, PadAttrs, SliceAttrs,
                             ConcatAttrs, LayerNormAttrs, MatMulAttrs>;

} // namespace pf

#endif // PIMFLOW_IR_OPS_H
