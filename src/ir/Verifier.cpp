//===- ir/Verifier.cpp - Graph invariant verification -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <deque>
#include <variant>

#include "ir/ShapeInference.h"
#include "support/Format.h"

using namespace pf;

namespace {

bool validValueId(const Graph &G, ValueId Id) {
  return Id >= 0 && static_cast<size_t>(Id) < G.numValues();
}

std::string valueContext(const Graph &G, ValueId Id) {
  if (!validValueId(G, Id) || G.value(Id).Name.empty())
    return formatStr("value #%d", Id);
  return formatStr("value '%s'", G.value(Id).Name.c_str());
}

std::string nodeContext(const Node &N) {
  if (N.Name.empty())
    return formatStr("node #%d", N.Id);
  return formatStr("node '%s'", N.Name.c_str());
}

bool isGraphInput(const Graph &G, ValueId Id) {
  for (ValueId In : G.graphInputs())
    if (In == Id)
      return true;
  return false;
}

/// True when \p Attrs holds the struct \p Kind requires. std::get on a
/// mismatched variant throws, so every attribute consumer (shape inference,
/// isPimCandidate, the interpreter) depends on this invariant.
bool attrsMatchKind(OpKind Kind, const OpAttrs &Attrs) {
  switch (Kind) {
  case OpKind::Conv2d:
    return std::holds_alternative<Conv2dAttrs>(Attrs);
  case OpKind::Gemm:
    return std::holds_alternative<GemmAttrs>(Attrs);
  case OpKind::MaxPool:
  case OpKind::AvgPool:
    return std::holds_alternative<PoolAttrs>(Attrs);
  case OpKind::BatchNorm:
    return std::holds_alternative<BatchNormAttrs>(Attrs);
  case OpKind::Pad:
    return std::holds_alternative<PadAttrs>(Attrs);
  case OpKind::Slice:
    return std::holds_alternative<SliceAttrs>(Attrs);
  case OpKind::Concat:
    return std::holds_alternative<ConcatAttrs>(Attrs);
  case OpKind::LayerNorm:
    return std::holds_alternative<LayerNormAttrs>(Attrs);
  case OpKind::MatMul:
    return std::holds_alternative<MatMulAttrs>(Attrs);
  default:
    return std::holds_alternative<std::monostate>(Attrs);
  }
}

/// Fewest inputs shape inference / the interpreter dereference without an
/// arity guard of their own; fewer is reported before inference runs.
size_t minInputsFor(OpKind Kind) {
  switch (Kind) {
  case OpKind::Input:
    return 0;
  case OpKind::Conv2d:
  case OpKind::Gemm:
  case OpKind::Add:
  case OpKind::Mul:
  case OpKind::LayerNorm:
  case OpKind::MatMul:
    return 2;
  default:
    return 1;
  }
}

void checkName(const std::string &Name, const std::string &Ctx,
               const char *What, DiagnosticEngine &DE) {
  if (Name.empty()) {
    DE.error(DiagCode::VerifyBadName, Ctx, formatStr("%s name is empty", What));
    return;
  }
  if (Name.find_first_of(" \t\n\r") != std::string::npos)
    DE.error(DiagCode::VerifyBadName, Ctx,
             formatStr("%s name contains whitespace, which the serializer "
                       "cannot round-trip",
                       What));
}

/// Shared legality checks for the conv/pool spatial window attributes.
void checkWindowAttrs(const std::string &Ctx, int64_t KH, int64_t KW,
                      int64_t SH, int64_t SW, int64_t PT, int64_t PB,
                      int64_t PL, int64_t PR, DiagnosticEngine &DE) {
  auto Bad = [&](const std::string &Msg) {
    DE.error(DiagCode::VerifyIllegalAttrs, Ctx, Msg);
  };
  if (KH < 1 || KW < 1)
    Bad(formatStr("kernel %lldx%lld must be positive",
                  static_cast<long long>(KH), static_cast<long long>(KW)));
  if (SH < 1 || SW < 1)
    Bad(formatStr("stride %lldx%lld must be positive",
                  static_cast<long long>(SH), static_cast<long long>(SW)));
  if (PT < 0 || PB < 0 || PL < 0 || PR < 0)
    Bad("padding must be non-negative");
  // pad >= kernel yields windows living entirely inside padding; the H-split
  // arithmetic in transform/SplitUtil is only exact under pad < kernel.
  if (KH >= 1 && (PT >= KH || PB >= KH))
    Bad(formatStr("vertical padding %lld/%lld must be smaller than the "
                  "kernel height %lld",
                  static_cast<long long>(PT), static_cast<long long>(PB),
                  static_cast<long long>(KH)));
  if (KW >= 1 && (PL >= KW || PR >= KW))
    Bad(formatStr("horizontal padding %lld/%lld must be smaller than the "
                  "kernel width %lld",
                  static_cast<long long>(PL), static_cast<long long>(PR),
                  static_cast<long long>(KW)));
}

/// Attribute legality for one node. Only called when attrsMatchKind() holds.
void checkNodeAttrs(const Graph &G, const Node &N, const std::string &Ctx,
                    DiagnosticEngine &DE) {
  auto Bad = [&](const std::string &Msg) {
    DE.error(DiagCode::VerifyIllegalAttrs, Ctx, Msg);
  };
  switch (N.Kind) {
  case OpKind::Conv2d: {
    const Conv2dAttrs &A = std::get<Conv2dAttrs>(N.Attrs);
    checkWindowAttrs(Ctx, A.KernelH, A.KernelW, A.StrideH, A.StrideW,
                     A.PadTop, A.PadBottom, A.PadLeft, A.PadRight, DE);
    if (A.Groups < 1)
      Bad(formatStr("groups %lld must be positive",
                    static_cast<long long>(A.Groups)));
    // Kernel vs input extents: a window taller/wider than the padded input
    // produces a non-positive output extent.
    if (!N.Inputs.empty() && validValueId(G, N.Inputs[0])) {
      const TensorShape &X = G.value(N.Inputs[0]).Shape;
      if (X.rank() == 4) {
        if (A.KernelH > X.dim(1) + A.PadTop + A.PadBottom)
          Bad(formatStr("kernel height %lld exceeds the padded input height "
                        "%lld",
                        static_cast<long long>(A.KernelH),
                        static_cast<long long>(X.dim(1) + A.PadTop +
                                               A.PadBottom)));
        if (A.KernelW > X.dim(2) + A.PadLeft + A.PadRight)
          Bad(formatStr("kernel width %lld exceeds the padded input width "
                        "%lld",
                        static_cast<long long>(A.KernelW),
                        static_cast<long long>(X.dim(2) + A.PadLeft +
                                               A.PadRight)));
      }
    }
    break;
  }
  case OpKind::MaxPool:
  case OpKind::AvgPool: {
    const PoolAttrs &A = std::get<PoolAttrs>(N.Attrs);
    checkWindowAttrs(Ctx, A.KernelH, A.KernelW, A.StrideH, A.StrideW,
                     A.PadTop, A.PadBottom, A.PadLeft, A.PadRight, DE);
    break;
  }
  case OpKind::Pad: {
    const PadAttrs &A = std::get<PadAttrs>(N.Attrs);
    if (A.Top < 0 || A.Bottom < 0 || A.Left < 0 || A.Right < 0)
      Bad("padding must be non-negative");
    break;
  }
  case OpKind::Slice: {
    const SliceAttrs &A = std::get<SliceAttrs>(N.Attrs);
    if (A.Axis < 0)
      Bad(formatStr("slice axis %lld must be non-negative",
                    static_cast<long long>(A.Axis)));
    if (A.Begin < 0 || A.End <= A.Begin)
      Bad(formatStr("slice range [%lld,%lld) is empty or negative",
                    static_cast<long long>(A.Begin),
                    static_cast<long long>(A.End)));
    break;
  }
  case OpKind::Concat: {
    const ConcatAttrs &A = std::get<ConcatAttrs>(N.Attrs);
    if (A.Axis < 0)
      Bad(formatStr("concat axis %lld must be non-negative",
                    static_cast<long long>(A.Axis)));
    break;
  }
  case OpKind::BatchNorm: {
    if (std::get<BatchNormAttrs>(N.Attrs).Epsilon <= 0.0f)
      Bad("batchnorm epsilon must be positive");
    break;
  }
  case OpKind::LayerNorm: {
    if (std::get<LayerNormAttrs>(N.Attrs).Epsilon <= 0.0f)
      Bad("layernorm epsilon must be positive");
    break;
  }
  default:
    break;
  }
}

/// Kahn's algorithm over the live subgraph, reporting instead of aborting
/// like topoOrder(). Only meaningful when producer links are consistent;
/// the caller skips it otherwise.
void checkAcyclic(const Graph &G, DiagnosticEngine &DE) {
  const std::vector<Node> &Nodes = G.nodes();
  std::vector<int> PendingInputs(Nodes.size(), 0);
  std::vector<std::vector<NodeId>> ValueConsumers(G.numValues());
  std::deque<NodeId> Ready;
  size_t LiveCount = 0;

  for (const Node &N : Nodes) {
    if (N.Dead)
      continue;
    ++LiveCount;
    int Pending = 0;
    for (ValueId In : N.Inputs) {
      NodeId Prod = validValueId(G, In) ? G.producer(In) : InvalidNode;
      if (Prod == InvalidNode || G.node(Prod).Dead)
        continue;
      ++Pending;
      ValueConsumers[static_cast<size_t>(In)].push_back(N.Id);
    }
    PendingInputs[static_cast<size_t>(N.Id)] = Pending;
    if (Pending == 0)
      Ready.push_back(N.Id);
  }

  size_t Ordered = 0;
  std::vector<bool> Done(Nodes.size(), false);
  while (!Ready.empty()) {
    NodeId Id = Ready.front();
    Ready.pop_front();
    Done[static_cast<size_t>(Id)] = true;
    ++Ordered;
    for (ValueId Out : G.node(Id).Outputs) {
      if (!validValueId(G, Out))
        continue;
      for (NodeId Consumer : ValueConsumers[static_cast<size_t>(Out)])
        if (--PendingInputs[static_cast<size_t>(Consumer)] == 0)
          Ready.push_back(Consumer);
    }
  }

  if (Ordered == LiveCount)
    return;
  for (const Node &N : Nodes)
    if (!N.Dead && !Done[static_cast<size_t>(N.Id)])
      DE.error(DiagCode::VerifyCycle, nodeContext(N),
               "participates in a dataflow cycle");
}

} // namespace

bool pf::verify(const Graph &G, DiagnosticEngine &DE) {
  const size_t ErrorsBefore = DE.errorCount();
  // Set when a finding would make the downstream checks unsafe (Kahn over
  // inconsistent links, shape inference over bad ids / mismatched attrs).
  bool Structural = false;

  checkName(G.name(), "graph", "graph", DE);

  // 1. Value table sanity.
  for (size_t I = 0; I < G.values().size(); ++I) {
    const Value &V = G.values()[I];
    if (V.Id != static_cast<ValueId>(I)) {
      DE.error(DiagCode::VerifyDanglingValue, valueContext(G, V.Id),
               formatStr("stored id %d does not match table slot %zu", V.Id,
                         I));
      Structural = true;
    }
    checkName(V.Name, formatStr("value #%zu", I), "value", DE);
  }

  // 2-6. Per-node structure, dataflow uses, attributes, devices.
  for (const Node &N : G.nodes()) {
    if (N.Dead)
      continue;
    const std::string Ctx = nodeContext(N);

    if (N.Id < 0 || static_cast<size_t>(N.Id) >= G.nodes().size() ||
        &G.nodes()[static_cast<size_t>(N.Id)] != &N) {
      DE.error(DiagCode::VerifyProducerLink, Ctx,
               formatStr("stored node id %d does not match its table slot",
                         N.Id));
      Structural = true;
      continue; // Id-keyed checks below would be misattributed.
    }

    checkName(N.Name, Ctx, "node", DE);

    const bool AttrsOk = attrsMatchKind(N.Kind, N.Attrs);
    if (!AttrsOk) {
      DE.error(DiagCode::VerifyIllegalAttrs, Ctx,
               formatStr("attribute struct does not match op kind '%s'",
                         opKindName(N.Kind)));
      Structural = true;
    }

    if (N.Inputs.size() < minInputsFor(N.Kind)) {
      DE.error(DiagCode::VerifyIllegalAttrs, Ctx,
               formatStr("%s expects at least %zu input(s), got %zu",
                         opKindName(N.Kind), minInputsFor(N.Kind),
                         N.Inputs.size()));
      Structural = true;
    }
    if (N.Outputs.empty()) {
      DE.error(DiagCode::VerifyProducerLink, Ctx, "node produces no outputs");
      Structural = true;
    }

    for (size_t I = 0; I < N.Inputs.size(); ++I)
      if (!validValueId(G, N.Inputs[I])) {
        DE.error(DiagCode::VerifyDanglingValue, Ctx,
                 formatStr("input #%zu references value id %d, but the graph "
                           "has %zu values",
                           I, N.Inputs[I], G.numValues()));
        Structural = true;
      }

    for (size_t I = 0; I < N.Outputs.size(); ++I) {
      const ValueId Out = N.Outputs[I];
      if (!validValueId(G, Out)) {
        DE.error(DiagCode::VerifyDanglingValue, Ctx,
                 formatStr("output #%zu references value id %d, but the "
                           "graph has %zu values",
                           I, Out, G.numValues()));
        Structural = true;
        continue;
      }
      if (G.value(Out).IsParam) {
        DE.error(DiagCode::VerifyProducerLink, Ctx,
                 formatStr("output #%zu is parameter '%s'; parameters cannot "
                           "be produced",
                           I, G.value(Out).Name.c_str()));
        Structural = true;
      }
      const NodeId Prod = G.producer(Out);
      if (Prod != N.Id) {
        DE.error(DiagCode::VerifyProducerLink, Ctx,
                 Prod == InvalidNode
                     ? formatStr("producer link for output '%s' is unset",
                                 G.value(Out).Name.c_str())
                     : formatStr("producer link for output '%s' points at "
                                 "node #%d",
                                 G.value(Out).Name.c_str(), Prod));
        Structural = true;
      }
    }

    // Use-before-def: every consumed flowing value needs a live producer.
    for (ValueId In : N.Inputs) {
      if (!validValueId(G, In))
        continue;
      const Value &V = G.value(In);
      if (V.IsParam || isGraphInput(G, In))
        continue;
      const NodeId Prod = G.producer(In);
      if (Prod == InvalidNode)
        DE.error(DiagCode::VerifyUseBeforeDef, Ctx,
                 formatStr("consumes %s, which no live node produces",
                           valueContext(G, In).c_str()));
      else if (G.node(Prod).Dead)
        DE.error(DiagCode::VerifyUseBeforeDef, Ctx,
                 formatStr("consumes %s, produced only by dead node '%s'",
                           valueContext(G, In).c_str(),
                           G.node(Prod).Name.c_str()));
    }

    if (AttrsOk) {
      checkNodeAttrs(G, N, Ctx, DE);
      if (N.Dev == Device::Pim && !isPimCandidate(N))
        DE.error(DiagCode::VerifyDevice, Ctx,
                 formatStr("%s is assigned to PIM but is not a PIM-offload "
                           "candidate",
                           opKindName(N.Kind)));
    }
  }

  // 4. Graph interface.
  for (ValueId In : G.graphInputs()) {
    if (!validValueId(G, In)) {
      DE.error(DiagCode::VerifyGraphOutput, formatStr("graph input #%d", In),
               "references a value id out of range");
      Structural = true;
      continue;
    }
    if (G.value(In).IsParam)
      DE.error(DiagCode::VerifyGraphOutput, valueContext(G, In),
               "graph input is a parameter");
    const NodeId Prod = G.producer(In);
    if (Prod != InvalidNode && G.node(Prod).Kind != OpKind::Input)
      DE.error(DiagCode::VerifyGraphOutput, valueContext(G, In),
               formatStr("graph input is produced by node '%s'",
                         G.node(Prod).Name.c_str()));
  }
  for (ValueId Out : G.graphOutputs()) {
    if (!validValueId(G, Out)) {
      DE.error(DiagCode::VerifyGraphOutput, formatStr("graph output #%d", Out),
               "references a value id out of range");
      Structural = true;
      continue;
    }
    const NodeId Prod = G.producer(Out);
    if (Prod == InvalidNode && !isGraphInput(G, Out) && !G.value(Out).IsParam)
      DE.error(DiagCode::VerifyGraphOutput, valueContext(G, Out),
               "graph output is never produced");
    else if (Prod != InvalidNode && G.node(Prod).Dead)
      DE.error(DiagCode::VerifyGraphOutput, valueContext(G, Out),
               formatStr("graph output is produced only by dead node '%s'",
                         G.node(Prod).Name.c_str()));
  }
  if (G.graphOutputs().empty() && G.numNodes() > 0)
    DE.error(DiagCode::VerifyGraphOutput, "graph",
             "graph has live nodes but no outputs");

  // 3. Acyclicity, once the producer links are known consistent.
  if (!Structural)
    checkAcyclic(G, DE);

  // 7. Shape consistency, only on an otherwise-clean graph: inference would
  // trip (or mis-blame) on any of the breakage reported above.
  if (DE.errorCount() == ErrorsBefore) {
    Graph Copy(G);
    if (auto Err = inferShapes(Copy)) {
      DE.error(DiagCode::VerifyShapeInfer, "graph", *Err);
    } else {
      for (const Node &N : G.nodes()) {
        if (N.Dead)
          continue;
        for (ValueId Out : N.Outputs)
          if (G.value(Out).Shape != Copy.value(Out).Shape)
            DE.error(DiagCode::VerifyStaleShape, valueContext(G, Out),
                     formatStr("stored shape %s but inference computes %s",
                               G.value(Out).Shape.toString().c_str(),
                               Copy.value(Out).Shape.toString().c_str()));
      }
    }
  }

  return DE.errorCount() == ErrorsBefore;
}

std::optional<std::string> pf::verify(const Graph &G) {
  DiagnosticEngine DE;
  if (verify(G, DE))
    return std::nullopt;
  return DE.render();
}

void pf::verifyOrDie(const Graph &G, const char *When) {
  DiagnosticEngine DE;
  if (verify(G, DE))
    return;
  fatal(formatStr("graph '%s' failed verification %s:\n%s", G.name().c_str(),
                  When, DE.render().c_str()));
}
