//===- ir/Builder.h - Convenience graph construction ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GraphBuilder builds model graphs layer-by-layer, creating weight
/// parameters and running shape inference as it goes. The model zoo uses it
/// to express the evaluated networks at the same granularity as their ONNX
/// exports.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_BUILDER_H
#define PIMFLOW_IR_BUILDER_H

#include <string>

#include "ir/Graph.h"

namespace pf {

/// Incremental graph construction helper. All layer methods return the
/// ValueId of the layer's output tensor.
class GraphBuilder {
public:
  explicit GraphBuilder(std::string GraphName)
      : G(std::move(GraphName)) {}

  /// Declares a graph input of \p Shape.
  ValueId input(const std::string &Name, TensorShape Shape);

  /// Conv2d with `same`-style explicit padding. Weight is created as a
  /// parameter of shape [KH, KW, Cin/Groups, Cout]; an optional bias [Cout]
  /// is added when \p WithBias.
  ValueId conv2d(ValueId X, int64_t Cout, int64_t Kernel, int64_t Stride,
                 int64_t Pad, int64_t Groups = 1, bool WithBias = false);

  /// Depthwise convolution: groups == channel count.
  ValueId dwConv(ValueId X, int64_t Kernel, int64_t Stride, int64_t Pad);

  /// Fully connected layer to \p OutFeatures.
  ValueId gemm(ValueId X, int64_t OutFeatures, bool WithBias = true);

  ValueId relu(ValueId X);
  ValueId relu6(ValueId X);
  ValueId silu(ValueId X);
  ValueId sigmoid(ValueId X);
  ValueId gelu(ValueId X);
  ValueId softmax(ValueId X);

  ValueId add(ValueId A, ValueId B);
  ValueId mul(ValueId A, ValueId B);

  /// BatchNorm with per-channel scale/bias/mean/var parameters.
  ValueId batchNorm(ValueId X);

  ValueId maxPool(ValueId X, int64_t Kernel, int64_t Stride, int64_t Pad = 0);
  ValueId avgPool(ValueId X, int64_t Kernel, int64_t Stride, int64_t Pad = 0);
  ValueId globalAvgPool(ValueId X);

  /// LayerNorm over the last axis with learned scale/bias parameters.
  ValueId layerNorm(ValueId X);

  /// Weight-less matrix product (attention); \p TransposeB computes
  /// A x B^T.
  ValueId matmul(ValueId A, ValueId B, bool TransposeB = false);

  ValueId pad(ValueId X, int64_t Top, int64_t Bottom, int64_t Left,
              int64_t Right);
  ValueId slice(ValueId X, int64_t Axis, int64_t Begin, int64_t End);
  ValueId concat(const std::vector<ValueId> &Xs, int64_t Axis);
  ValueId flatten(ValueId X);

  /// Marks \p X as a graph output.
  void output(ValueId X);

  /// Finalizes and returns the graph (validates it first).
  Graph take();

  Graph &graph() { return G; }

private:
  /// Adds a node with a freshly created (shape-inferred) output value.
  ValueId addOp(OpKind Kind, OpAttrs Attrs, std::vector<ValueId> Inputs);

  std::string freshName(const char *Stem);

  Graph G;
  int Counter = 0;
};

} // namespace pf

#endif // PIMFLOW_IR_BUILDER_H
