//===- ir/Metrics.cpp - Per-node cost metrics -------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Metrics.h"

using namespace pf;

NodeMetrics pf::computeMetrics(const Graph &G, NodeId Id) {
  const Node &N = G.node(Id);
  NodeMetrics M;

  int64_t InElems = 0;
  for (ValueId In : N.Inputs) {
    const Value &V = G.value(In);
    M.BytesIn += V.byteCount();
    InElems += V.Shape.numElements();
    if (V.IsParam)
      M.WeightBytes += V.byteCount();
  }
  int64_t OutElems = 0;
  for (ValueId Out : N.Outputs) {
    const Value &V = G.value(Out);
    M.BytesOut += V.byteCount();
    OutElems += V.Shape.numElements();
  }
  M.LdStElements = InElems + OutElems;

  switch (N.Kind) {
  case OpKind::Conv2d: {
    const Conv2dAttrs &A = N.conv();
    const TensorShape &X = G.value(N.Inputs[0]).Shape;
    const TensorShape &O = G.value(N.Outputs[0]).Shape;
    const int64_t CinPerGroup = X.dim(3) / A.Groups;
    M.Macs = O.numElements() * A.KernelH * A.KernelW * CinPerGroup;
    break;
  }
  case OpKind::Gemm: {
    const TensorShape &X = G.value(N.Inputs[0]).Shape;
    const TensorShape &W = G.value(N.Inputs[1]).Shape;
    M.Macs = X.dim(0) * X.dim(1) * W.dim(1);
    break;
  }
  case OpKind::MatMul: {
    const TensorShape &X = G.value(N.Inputs[0]).Shape;
    const TensorShape &O = G.value(N.Outputs[0]).Shape;
    M.Macs = X.dim(0) * X.dim(1) * O.dim(1);
    break;
  }
  case OpKind::LayerNorm:
    M.OtherOps = 6 * OutElems; // Mean, variance, normalize, affine.
    break;
  case OpKind::Add:
  case OpKind::Mul:
  case OpKind::Relu:
  case OpKind::Relu6:
  case OpKind::Identity:
    M.OtherOps = OutElems;
    break;
  case OpKind::Sigmoid:
  case OpKind::SiLU:
  case OpKind::Tanh:
  case OpKind::Gelu:
  case OpKind::Softmax:
    // Transcendental activations cost several ops per element.
    M.OtherOps = 8 * OutElems;
    break;
  case OpKind::BatchNorm:
    M.OtherOps = 4 * OutElems;
    break;
  case OpKind::MaxPool:
  case OpKind::AvgPool: {
    const PoolAttrs &A = std::get<PoolAttrs>(N.Attrs);
    M.OtherOps = OutElems * A.KernelH * A.KernelW;
    break;
  }
  case OpKind::GlobalAvgPool: {
    const TensorShape &X = G.value(N.Inputs[0]).Shape;
    M.OtherOps = X.numElements();
    break;
  }
  case OpKind::Pad:
  case OpKind::Slice:
  case OpKind::Concat:
  case OpKind::Flatten:
  case OpKind::Input:
    // Pure data movement.
    break;
  }
  return M;
}

NodeMetrics pf::computeGraphMetrics(const Graph &G) {
  NodeMetrics Total;
  for (const Node &N : G.nodes()) {
    if (N.Dead)
      continue;
    NodeMetrics M = computeMetrics(G, N.Id);
    Total.Macs += M.Macs;
    Total.OtherOps += M.OtherOps;
    Total.BytesIn += M.BytesIn;
    Total.WeightBytes += M.WeightBytes;
    Total.BytesOut += M.BytesOut;
    Total.LdStElements += M.LdStElements;
  }
  return Total;
}
