//===- ir/Graph.cpp - Model computation graph -------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Graph.h"

#include <deque>

#include "support/Format.h"

using namespace pf;

const char *pf::deviceName(Device Dev) {
  switch (Dev) {
  case Device::Any:
    return "any";
  case Device::Gpu:
    return "gpu";
  case Device::Pim:
    return "pim";
  }
  pf_unreachable("unknown device");
}

const char *pf::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Input:
    return "input";
  case OpKind::Conv2d:
    return "conv2d";
  case OpKind::Gemm:
    return "gemm";
  case OpKind::Relu:
    return "relu";
  case OpKind::Relu6:
    return "relu6";
  case OpKind::Sigmoid:
    return "sigmoid";
  case OpKind::SiLU:
    return "silu";
  case OpKind::Tanh:
    return "tanh";
  case OpKind::Gelu:
    return "gelu";
  case OpKind::Softmax:
    return "softmax";
  case OpKind::Add:
    return "add";
  case OpKind::Mul:
    return "mul";
  case OpKind::BatchNorm:
    return "batchnorm";
  case OpKind::MaxPool:
    return "maxpool";
  case OpKind::AvgPool:
    return "avgpool";
  case OpKind::GlobalAvgPool:
    return "globalavgpool";
  case OpKind::Pad:
    return "pad";
  case OpKind::Slice:
    return "slice";
  case OpKind::Concat:
    return "concat";
  case OpKind::Flatten:
    return "flatten";
  case OpKind::Identity:
    return "identity";
  case OpKind::LayerNorm:
    return "layernorm";
  case OpKind::MatMul:
    return "matmul";
  }
  pf_unreachable("unknown op kind");
}

bool pf::isDepthwiseConv(const Node &N) {
  return N.Kind == OpKind::Conv2d && N.conv().Groups > 1;
}

bool pf::isPimCandidate(const Node &N) {
  if (N.Kind == OpKind::Gemm)
    return true;
  return N.Kind == OpKind::Conv2d && !isDepthwiseConv(N);
}

ValueId Graph::addValue(const std::string &Name, TensorShape Shape,
                        DataType Type) {
  Value V;
  V.Id = static_cast<ValueId>(Values.size());
  V.Name = Name;
  V.Shape = std::move(Shape);
  V.Type = Type;
  Values.push_back(std::move(V));
  ProducerOf.push_back(InvalidNode);
  return Values.back().Id;
}

ValueId Graph::addParam(const std::string &Name, TensorShape Shape,
                        DataType Type) {
  ValueId Id = addValue(Name, std::move(Shape), Type);
  Value &V = value(Id);
  V.IsParam = true;
  // Seed derived from the id so parameter data is deterministic but distinct
  // per parameter.
  V.InitSeed = 0x5DEECE66Dull ^ (static_cast<uint64_t>(Id) * 0x2545F4914F6CDD1Dull);
  return Id;
}

NodeId Graph::addNode(OpKind Kind, const std::string &Name, OpAttrs Attrs,
                      std::vector<ValueId> NodeInputs,
                      std::vector<ValueId> NodeOutputs) {
  for (ValueId In : NodeInputs)
    PF_ASSERT(In >= 0 && static_cast<size_t>(In) < Values.size(),
              "node input value does not exist");
  for (ValueId Out : NodeOutputs) {
    PF_ASSERT(Out >= 0 && static_cast<size_t>(Out) < Values.size(),
              "node output value does not exist");
    PF_ASSERT(ProducerOf[static_cast<size_t>(Out)] == InvalidNode,
              "node output already has a producer");
    PF_ASSERT(!value(Out).IsParam, "parameters cannot be node outputs");
  }

  Node N;
  N.Id = static_cast<NodeId>(Nodes.size());
  N.Name = Name;
  N.Kind = Kind;
  N.Attrs = std::move(Attrs);
  N.Inputs = std::move(NodeInputs);
  N.Outputs = std::move(NodeOutputs);
  for (ValueId Out : N.Outputs)
    ProducerOf[static_cast<size_t>(Out)] = N.Id;
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

void Graph::removeNode(NodeId Id) {
  Node &N = node(Id);
  PF_ASSERT(!N.Dead, "node already removed");
  N.Dead = true;
  for (ValueId Out : N.Outputs)
    ProducerOf[static_cast<size_t>(Out)] = InvalidNode;
}

size_t Graph::numNodes() const {
  size_t Count = 0;
  for (const Node &N : Nodes)
    if (!N.Dead)
      ++Count;
  return Count;
}

NodeId Graph::producer(ValueId Id) const {
  PF_ASSERT(Id >= 0 && static_cast<size_t>(Id) < ProducerOf.size(),
            "value id out of range");
  return ProducerOf[static_cast<size_t>(Id)];
}

std::vector<NodeId> Graph::consumers(ValueId Id) const {
  std::vector<NodeId> Out;
  for (const Node &N : Nodes) {
    if (N.Dead)
      continue;
    for (ValueId In : N.Inputs)
      if (In == Id) {
        Out.push_back(N.Id);
        break;
      }
  }
  return Out;
}

std::vector<NodeId> Graph::topoOrder() const {
  std::vector<NodeId> Order = tryTopoOrder();
  PF_ASSERT(Order.size() == numNodes(), "graph contains a dataflow cycle");
  return Order;
}

std::vector<NodeId> Graph::tryTopoOrder() const {
  // Kahn's algorithm: a node is ready once all of its non-parameter,
  // non-graph-input inputs have been produced.
  std::vector<int> PendingInputs(Nodes.size(), 0);
  std::vector<std::vector<NodeId>> ValueConsumers(Values.size());
  std::deque<NodeId> Ready;
  size_t LiveCount = 0;

  for (const Node &N : Nodes) {
    if (N.Dead)
      continue;
    ++LiveCount;
    int Pending = 0;
    for (ValueId In : N.Inputs) {
      if (producer(In) == InvalidNode)
        continue; // Parameter or graph input: always available.
      ++Pending;
      ValueConsumers[static_cast<size_t>(In)].push_back(N.Id);
    }
    PendingInputs[static_cast<size_t>(N.Id)] = Pending;
    if (Pending == 0)
      Ready.push_back(N.Id);
  }

  std::vector<NodeId> Order;
  Order.reserve(LiveCount);
  while (!Ready.empty()) {
    NodeId Id = Ready.front();
    Ready.pop_front();
    Order.push_back(Id);
    for (ValueId Out : node(Id).Outputs)
      for (NodeId Consumer : ValueConsumers[static_cast<size_t>(Out)])
        if (--PendingInputs[static_cast<size_t>(Consumer)] == 0)
          Ready.push_back(Consumer);
  }
  // Cyclic dependency sets never become ready; the order is partial and
  // the caller decides how to fail (topoOrder asserts, the execution
  // engine and validate() diagnose).
  return Order;
}

std::optional<std::string> Graph::validate() const {
  for (const Node &N : Nodes) {
    if (N.Dead)
      continue;
    if (N.Outputs.empty())
      return formatStr("node '%s' has no outputs", N.Name.c_str());
    for (ValueId In : N.Inputs) {
      const Value &V = value(In);
      bool IsGraphInput = false;
      for (ValueId GIn : Inputs)
        IsGraphInput |= (GIn == In);
      if (!V.IsParam && !IsGraphInput && producer(In) == InvalidNode)
        return formatStr("node '%s' consumes value '%s' with no producer",
                         N.Name.c_str(), V.Name.c_str());
    }
  }
  for (ValueId Out : Outputs)
    if (producer(Out) == InvalidNode)
      return formatStr("graph output '%s' is never produced",
                       value(Out).Name.c_str());
  // A completely empty graph is legal (it round-trips through the
  // serializer); live nodes with no graph outputs are not.
  if (Outputs.empty() && numNodes() > 0)
    return std::string("graph has no outputs");
  // Run the toposort to check acyclicity without tripping topoOrder's
  // must-be-acyclic assertion.
  if (tryTopoOrder().size() != numNodes())
    return std::string("graph contains a dataflow cycle");
  return std::nullopt;
}

void Graph::setParamData(ValueId Id, Tensor Data) {
  PF_ASSERT(value(Id).IsParam, "setParamData on a non-parameter value");
  PF_ASSERT(Data.shape() == value(Id).Shape,
            "explicit parameter data shape mismatch");
  ExplicitParamData[Id] = std::move(Data);
}

const Tensor *Graph::paramData(ValueId Id) const {
  auto It = ExplicitParamData.find(Id);
  return It == ExplicitParamData.end() ? nullptr : &It->second;
}
