//===- ir/Verifier.h - Graph invariant verification -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph verifier: an exhaustive, non-aborting check of every IR
/// invariant the transformation passes rely on. Unlike Graph::validate()
/// (which stops at the first structural error) the verifier collects *all*
/// findings into a DiagnosticEngine with stable codes, so a broken rewrite
/// is pinpointed instead of surfacing as a wrong answer or a distant
/// PF_ASSERT. Invariants checked, in dependency order:
///
///   1. Value table sanity: ids consistent, serializer-legal names.
///   2. Node structure: in-range ValueIds, producer-link consistency,
///      attribute struct matches the op kind, serializer-legal names.
///   3. Dataflow: every consumed flowing value has a live producer or is a
///      graph input (use-before-def), and the live subgraph is acyclic
///      (detected with a local Kahn pass — topoOrder() would abort).
///   4. Graph interface: outputs produced, inputs unproduced non-params.
///   5. Attribute legality: positive kernels/strides, non-negative padding,
///      padding smaller than the kernel (the split passes' arithmetic is
///      only exact under pad < kernel; see docs/INTERNALS.md §8).
///   6. Device legality: Device::Pim only on PIM-offload candidates.
///   7. Shape consistency: shape inference re-run on a copy must succeed
///      and reproduce the stored shapes (stale-shape detection). Skipped
///      when any structural finding above fired, since inference would
///      trip on the same breakage.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_IR_VERIFIER_H
#define PIMFLOW_IR_VERIFIER_H

#include <optional>
#include <string>

#include "ir/Graph.h"
#include "support/Diagnostics.h"

namespace pf {

/// Runs every verifier check over \p G, reporting findings into \p DE.
/// Returns true when no errors were reported (warnings do not fail
/// verification). Never aborts, whatever the state of \p G.
bool verify(const Graph &G, DiagnosticEngine &DE);

/// Convenience wrapper: returns the rendered diagnostics on failure, or
/// std::nullopt when \p G verifies clean.
std::optional<std::string> verify(const Graph &G);

/// Verifies \p G and aborts via fatal() with the rendered diagnostics when
/// it is broken. \p When names the pipeline point for the message (e.g.
/// "after MdDpSplit"). Pass-boundary breakage is a compiler bug, not a user
/// error, so the failure mode is a loud stop with evidence.
void verifyOrDie(const Graph &G, const char *When);

} // namespace pf

/// Pass-boundary verification hook. Compiled to a real verifyOrDie() under
/// -DPIMFLOW_CHECKED=ON (the CI configuration) and to a no-op otherwise so
/// release builds pay nothing per pass.
#ifdef PIMFLOW_CHECKED
#define PF_VERIFY_PASS(G, When) ::pf::verifyOrDie((G), (When))
#else
#define PF_VERIFY_PASS(G, When)                                                \
  do {                                                                         \
  } while (false)
#endif

#endif // PIMFLOW_IR_VERIFIER_H
