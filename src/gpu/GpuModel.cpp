//===- gpu/GpuModel.cpp - Analytical GPU timing model -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gpu/GpuModel.h"

#include <algorithm>

using namespace pf;

GpuKernelTime GpuModel::kernelTime(const NodeMetrics &M, bool IsMacKernel,
                                   bool F16, bool SplitKCapable) const {
  GpuKernelTime T;

  const double Flops = static_cast<double>(M.flops());
  const double Traffic =
      static_cast<double>(M.BytesIn + M.BytesOut) * Config.TrafficInflation;

  // Occupancy derate: small kernels cannot fill the SMs. Convolutions
  // parallelize over output elements (batch-1 kernels are notoriously
  // under-occupied); GEMV/GEMM kernels additionally split the reduction
  // across threads (cuBLAS split-K), so their parallelism scales with
  // total FLOPs (~256 per thread).
  const double OutElems =
      static_cast<double>(M.BytesOut) / (F16 ? 2.0 : 4.0);
  double ParallelWork = OutElems;
  if (SplitKCapable)
    ParallelWork = std::max(ParallelWork, Flops / 256.0);
  const double Occupancy =
      std::min(1.0, ParallelWork / Config.SaturationElements);

  double Efficiency = IsMacKernel ? Config.GemmEfficiency : 0.25;
  Efficiency *= std::max(Occupancy, 0.10);

  T.ComputeNs = Flops / (Config.peakFlops(F16) * Efficiency) * 1e9;
  T.MemoryNs = Traffic / Config.memBandwidth() * 1e9;

  const double Launch =
      IsMacKernel ? Config.KernelLaunchNs : Config.LightKernelLaunchNs;
  // Write-through coherence mode (dual GPU/PIM configuration) slows the
  // kernel body; the launch path is unaffected.
  const double Body =
      std::max(T.ComputeNs, T.MemoryNs) * Config.CoherenceSlowdown;
  T.Ns = Body + Launch;

  // Utilization for the power model: fraction of peak compute achieved over
  // the kernel's lifetime.
  const double IdealComputeNs = Flops / Config.peakFlops(F16) * 1e9;
  T.Utilization = T.Ns > 0.0 ? std::min(1.0, IdealComputeNs / T.Ns) : 0.0;
  // Memory-bound kernels still burn power moving data.
  if (T.MemoryNs > T.ComputeNs)
    T.Utilization = std::max(T.Utilization, 0.35 * (T.MemoryNs / T.Ns));
  return T;
}

GpuKernelTime GpuModel::nodeTime(const Graph &G, NodeId Id) const {
  const Node &N = G.node(Id);
  if (N.Kind == OpKind::Input || N.Kind == OpKind::Identity ||
      N.Kind == OpKind::Flatten)
    return GpuKernelTime{}; // Metadata-only; free at inference time.

  const NodeMetrics M = computeMetrics(G, Id);
  const bool IsMacKernel =
      N.Kind == OpKind::Conv2d || N.Kind == OpKind::Gemm;
  const bool F16 = G.value(N.Outputs[0]).Type == DataType::F16;
  return kernelTime(M, IsMacKernel, F16, /*SplitKCapable=*/N.Kind == OpKind::Gemm);
}

double GpuModel::kernelEnergyJ(const GpuKernelTime &T) const {
  const double Seconds = T.Ns * 1e-9;
  return Seconds * (Config.IdlePowerW + Config.DynamicPowerW * T.Utilization);
}

double GpuModel::idleEnergyJ(double Ns) const {
  return Ns * 1e-9 * Config.IdlePowerW;
}
