//===- gpu/GpuModel.h - Analytical GPU timing model -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Accel-Sim stand-in: a calibrated roofline model that prices a graph
/// node as the max of its compute time (SM throughput derated by occupancy)
/// and its memory time (DRAM traffic over the channel bandwidth), plus a
/// kernel launch overhead. The PIMFlow search only needs *relative*
/// GPU-vs-PIM latencies as functions of layer shape and channel count, which
/// this model reproduces: dense 3x3 convolutions are compute-bound, FC and
/// pointwise layers are bandwidth-bound, and shrinking the channel count
/// only hurts the latter.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_GPU_GPUMODEL_H
#define PIMFLOW_GPU_GPUMODEL_H

#include "gpu/GpuConfig.h"
#include "ir/Graph.h"
#include "ir/Metrics.h"

namespace pf {

/// Timing breakdown of one kernel.
struct GpuKernelTime {
  double Ns = 0.0;        ///< Total latency including launch overhead.
  double ComputeNs = 0.0; ///< SM-bound component.
  double MemoryNs = 0.0;  ///< DRAM-bound component.
  double Utilization = 0.0; ///< Average SM utilization in [0, 1].
};

/// Analytical GPU timing and power model.
class GpuModel {
public:
  explicit GpuModel(GpuConfig Config) : Config(Config) {}

  const GpuConfig &config() const { return Config; }

  /// Latency of executing node \p Id of \p G as one GPU kernel.
  GpuKernelTime nodeTime(const Graph &G, NodeId Id) const;

  /// Latency from raw cost metrics; \p IsMacKernel selects the dense-kernel
  /// (conv/gemm) efficiency path vs the lightweight-kernel path, and
  /// \p SplitKCapable marks kernels (GEMM/GEMV) whose parallelism scales
  /// with the reduction length via split-K decomposition.
  GpuKernelTime kernelTime(const NodeMetrics &M, bool IsMacKernel, bool F16,
                           bool SplitKCapable = false) const;

  /// Energy in joules for running a kernel of the given timing: static
  /// power for the duration plus dynamic power scaled by utilization.
  double kernelEnergyJ(const GpuKernelTime &T) const;

  /// Static energy burned while the GPU sits idle for \p Ns nanoseconds
  /// (e.g. waiting on PIM).
  double idleEnergyJ(double Ns) const;

private:
  GpuConfig Config;
};

} // namespace pf

#endif // PIMFLOW_GPU_GPUMODEL_H
