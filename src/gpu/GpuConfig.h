//===- gpu/GpuConfig.h - GPU hardware parameters ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the analytical GPU model. The defaults describe an NVIDIA
/// GeForce RTX 2060-class part attached to a 32-channel GDDR6 memory — the
/// paper's baseline GPU configuration. The simulator-validation experiment
/// (Fig. 8) swaps in a Titan-V-like configuration with 24 HBM channels via
/// titanVLike().
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_GPU_GPUCONFIG_H
#define PIMFLOW_GPU_GPUCONFIG_H

namespace pf {

/// Analytical GPU model parameters (roofline + launch overheads).
struct GpuConfig {
  /// Number of streaming multiprocessors.
  int NumSms = 30;
  /// FP32 FMA lanes per SM.
  int LanesPerSm = 64;
  /// Core clock in GHz.
  double ClockGhz = 1.68;
  /// FP16 throughput multiplier over FP32: cuDNN uses the tensor cores
  /// (HMMA) for fp16 conv/GEMM, several times the CUDA-core FMA rate.
  double Fp16Multiplier = 6.0;

  /// Number of memory channels visible to the GPU. The paper's dual
  /// GPU/PIM configuration hands a contiguous subset of the 32 channels to
  /// PIM; the remainder stays here.
  int MemChannels = 32;
  /// Sustained bandwidth per memory channel in GB/s.
  double ChannelBandwidthGBs = 14.0;

  /// Fixed kernel launch + cuDNN dispatch overhead in nanoseconds.
  double KernelLaunchNs = 1500.0;
  /// Launch overhead of lightweight (elementwise/pool) kernels, which the
  /// runtime typically fuses or streams.
  double LightKernelLaunchNs = 800.0;

  /// Peak fraction achieved by well-tiled GEMM/conv kernels.
  double GemmEfficiency = 0.75;
  /// DRAM traffic inflation over the compulsory minimum (cache conflicts,
  /// write allocate, metadata).
  double TrafficInflation = 1.15;
  /// Output elements needed to fully occupy the device; below this the
  /// compute throughput scales down linearly.
  double SaturationElements = 262144.0;

  /// GPU-kernel slowdown from running the caches in write-through mode,
  /// required for coherence between PIM commands and GPU accesses in the
  /// dual configuration (the paper's footnote measured 2.8% vs
  /// write-back). 1.0 outside the dual configuration.
  double CoherenceSlowdown = 1.0;

  /// Idle (static) board power in watts.
  double IdlePowerW = 35.0;
  /// Additional dynamic power at full utilization in watts.
  double DynamicPowerW = 110.0;

  /// Peak FLOP/s for \p F16 data.
  double peakFlops(bool F16) const {
    double Peak = static_cast<double>(NumSms) * LanesPerSm * 2.0 * ClockGhz *
                  1e9;
    return F16 ? Peak * Fp16Multiplier : Peak;
  }

  /// Aggregate DRAM bandwidth in bytes/s.
  double memBandwidth() const {
    return static_cast<double>(MemChannels) * ChannelBandwidthGBs * 1e9;
  }

  /// Titan-V-like configuration used to reproduce the Fig. 8 validation
  /// against the Newton paper's setup (24 HBM channels, more SMs).
  static GpuConfig titanVLike() {
    GpuConfig C;
    C.NumSms = 80;
    C.LanesPerSm = 64;
    C.ClockGhz = 1.46;
    C.MemChannels = 24;
    C.ChannelBandwidthGBs = 27.0; // ~650 GB/s aggregate HBM2.
    return C;
  }

  /// RTX 2080 Ti-like configuration (Fig. 1 runtime-breakdown platform).
  static GpuConfig rtx2080TiLike() {
    GpuConfig C;
    C.NumSms = 68;
    C.LanesPerSm = 64;
    C.ClockGhz = 1.545;
    C.MemChannels = 22;
    C.ChannelBandwidthGBs = 28.0; // ~616 GB/s aggregate GDDR6.
    return C;
  }
};

} // namespace pf

#endif // PIMFLOW_GPU_GPUCONFIG_H
