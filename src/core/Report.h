//===- core/Report.h - Compilation & execution reporting --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a CompileResult into a human-readable report: segment summary,
/// per-device utilization, PIM command statistics, weight placement, and
/// the energy breakdown — the `--stats` view of the pimflow driver.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_CORE_REPORT_H
#define PIMFLOW_CORE_REPORT_H

#include <string>

#include "core/PimFlow.h"

namespace pf {

/// Aggregate statistics extracted from a CompileResult.
struct ExecutionStats {
  int GpuKernels = 0;
  int PimKernels = 0;
  int FusedOrFreeNodes = 0;
  double GpuBusyFraction = 0.0;
  double PimBusyFraction = 0.0;
  /// PIM command totals over all offloaded kernels.
  int64_t PimGwriteBursts = 0;
  int64_t PimGActs = 0;
  int64_t PimCompColumns = 0;
  int64_t PimReadRes = 0;
  /// Weight bytes resident in PIM channels (placed at compile time).
  int64_t PimWeightBytes = 0;
  /// Weight bytes of GPU-resident layers.
  int64_t GpuWeightBytes = 0;
};

/// Computes the statistics of \p R (re-deriving PIM command counts from the
/// transformed graph under \p R.Config).
ExecutionStats computeStats(const CompileResult &R);

/// Renders the full report.
std::string renderReport(const CompileResult &R);

} // namespace pf

#endif // PIMFLOW_CORE_REPORT_H
