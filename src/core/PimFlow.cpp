//===- core/PimFlow.cpp - End-to-end compiler facade ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PimFlow.h"

#include <map>

#include "ir/ShapeInference.h"
#include "ir/Verifier.h"
#include "obs/Counters.h"
#include "obs/Trace.h"
#include "runtime/Equivalence.h"
#include "runtime/Recovery.h"
#include "support/Format.h"
#include "support/Log.h"
#include "transform/Canonicalize.h"

using namespace pf;

const char *pf::policyName(OffloadPolicy P) {
  switch (P) {
  case OffloadPolicy::GpuOnly:
    return "Baseline";
  case OffloadPolicy::NewtonPlus:
    return "Newton+";
  case OffloadPolicy::NewtonPlusPlus:
    return "Newton++";
  case OffloadPolicy::PimFlowMd:
    return "PIMFlow-md";
  case OffloadPolicy::PimFlowPl:
    return "PIMFlow-pl";
  case OffloadPolicy::PimFlow:
    return "PIMFlow";
  }
  pf_unreachable("unknown offload policy");
}

std::vector<OffloadPolicy> pf::allPolicies() {
  return {OffloadPolicy::GpuOnly,    OffloadPolicy::NewtonPlus,
          OffloadPolicy::NewtonPlusPlus, OffloadPolicy::PimFlowMd,
          OffloadPolicy::PimFlowPl,  OffloadPolicy::PimFlow};
}

SystemConfig pf::systemConfigFor(OffloadPolicy P, const PimFlowOptions &O) {
  SystemConfig C;
  if (P == OffloadPolicy::GpuOnly) {
    C = SystemConfig::gpuOnly(O.TotalChannels);
  } else {
    const bool Optimized = P != OffloadPolicy::NewtonPlus;
    C = SystemConfig::dual(O.PimChannels, Optimized, O.TotalChannels);
  }
  C.MemoryOptimizer = O.MemoryOptimizer;
  C.ModelContention = O.ModelContention;
  if (O.NumGlobalBuffers)
    C.Pim.NumGlobalBuffers = *O.NumGlobalBuffers;
  if (O.GwriteLatencyHiding)
    C.Pim.GwriteLatencyHiding = *O.GwriteLatencyHiding;
  if (O.MaxGranularity)
    C.Codegen.MaxGranularity = *O.MaxGranularity;
  return C;
}

SearchOptions pf::searchOptionsFor(OffloadPolicy P,
                                   const PimFlowOptions &O) {
  SearchOptions S;
  S.PipelineStages = O.PipelineStages;
  S.RefineRatios = O.AutoTuneRatios;
  S.Jobs = O.SearchJobs;
  switch (P) {
  case OffloadPolicy::GpuOnly:
    S.AllowSplit = S.AllowPipeline = S.AllowFullOffload = false;
    break;
  case OffloadPolicy::NewtonPlus:
  case OffloadPolicy::NewtonPlusPlus:
    S.AllowSplit = S.AllowPipeline = false;
    S.AllowFullOffload = true;
    break;
  case OffloadPolicy::PimFlowMd:
    S.AllowSplit = S.AllowFullOffload = true;
    S.AllowPipeline = false;
    break;
  case OffloadPolicy::PimFlowPl:
    S.AllowSplit = false;
    S.AllowFullOffload = S.AllowPipeline = true;
    break;
  case OffloadPolicy::PimFlow:
    S.AllowSplit = S.AllowPipeline = S.AllowFullOffload = true;
    break;
  }
  return S;
}

PimFlow::PimFlow(OffloadPolicy Policy, PimFlowOptions Options)
    : Policy(Policy), Options(Options),
      Config(systemConfigFor(Policy, Options)), Prof(Config) {
  if (!this->Options.PlanCacheDir.empty())
    Cache = std::make_unique<PlanCache>(this->Options.PlanCacheDir);
}

PlanKey PimFlow::planKey(const Graph &Model) const {
  return makePlanKey(Model, Config, searchOptionsFor(Policy, Options),
                     Options.PimFloor);
}

CompileResult PimFlow::compileAndRun(const Graph &Model) {
  PF_TRACE_SCOPE_CAT("pimflow.compile_and_run", "compile");
  PF_LOG_INFO("compiling %s under %s (%zu nodes)", Model.name().c_str(),
              policyName(Policy), Model.numNodes());
  return executePlan(Model, plan(Model));
}

ExecutionPlan PimFlow::plan(const Graph &Model) {
  PF_TRACE_SCOPE_CAT("pimflow.plan", "compile");
  {
    // Reject out-of-range configurations before they configure anything; the
    // factories always produce valid configs, so this only fires for
    // hand-assembled option sets.
    DiagnosticEngine DE;
    if (!validateSystemConfig(Config, DE))
      fatal(formatStr("invalid system configuration:\n%s",
                      DE.render().c_str()));
  }
  auto Fresh = [&] {
    SearchEngine Search(Prof, searchOptionsFor(Policy, Options));
    ExecutionPlan P = Search.search(Model);
    PF_LOG_INFO("search: %zu segments, %.2f us predicted (%zu/%zu profile "
                "cache hits)",
                P.Segments.size(), P.PredictedNs / 1e3, Prof.cacheHits(),
                Prof.cacheHits() + Prof.cacheMisses());
    return P;
  };
  if (Cache)
    return Cache->getOrCompute(planKey(Model), Fresh);
  return Fresh();
}

Graph PimFlow::materialize(const Graph &Model, const ExecutionPlan &Plan) {
  PF_TRACE_SCOPE_CAT("pimflow.materialize", "compile");

  {
    // Replays and serve sessions reach this path without going through
    // plan(), so the configuration gate runs here as well.
    DiagnosticEngine DE;
    if (!validateSystemConfig(Config, DE))
      fatal(formatStr("invalid system configuration:\n%s",
                      DE.render().c_str()));
  }

  Graph G = Model; // Copy, then rewrite in place.

  // Pass-boundary checking: the structural verifier runs at each boundary
  // under PIMFLOW_CHECKED (or Options.VerifyPasses at runtime), and the
  // differential check additionally cross-runs the reference interpreter on
  // original vs. transformed — every PIMFlow rewrite is elementwise exact,
  // so any difference is a transform bug worth stopping for.
  auto AtPassBoundary = [&](const char *When) {
    if (Options.VerifyPasses)
      verifyOrDie(G, When);
    else
      PF_VERIFY_PASS(G, When);
    if (Options.DifferentialCheck) {
      PF_TRACE_SCOPE_CAT("pimflow.differential_check", "compile");
      if (auto Diff = compareGraphOutputs(Model, G, /*Seed=*/0x51A5))
        fatal(formatStr("differential check %s: transformed graph diverges "
                        "from '%s': %s",
                        When, Model.name().c_str(), Diff->c_str()));
    }
  };

  {
    PF_TRACE_SCOPE_CAT("pimflow.apply_plan", "compile");
    SearchEngine::apply(G, Plan);
  }
  AtPassBoundary("after plan application (MD-DP splits / pipelining)");
  {
    // Clean up transform residue (dead chain nodes, cancellable
    // slice-of-concat pairs); also removes false dependencies on whole-join
    // concats at pipeline stage boundaries.
    PF_TRACE_SCOPE_CAT("pimflow.canonicalize", "compile");
    canonicalize(G);
  }
  AtPassBoundary("after canonicalization");
  {
    PF_TRACE_SCOPE_CAT("pimflow.shape_inference", "compile");
    auto ShapeErr = inferShapes(G);
    PF_ASSERT(!ShapeErr, "transformed graph fails shape inference");
    (void)ShapeErr;
  }
  {
    // Final gate: the graph handed to the execution engine always passes
    // the full verifier, whatever the build configuration. This subsumes
    // the old validate()/device PF_ASSERT block with coded diagnostics.
    PF_TRACE_SCOPE_CAT("pimflow.verify", "compile");
    DiagnosticEngine DE(Options.MaxVerifyErrors);
    if (!verify(G, DE))
      fatal(formatStr("transformed graph '%s' failed verification:\n%s",
                      G.name().c_str(), DE.render().c_str()));

    // PIM annotations additionally require PIM channels — a property of the
    // system configuration, not of the graph, so checked here rather than
    // in the verifier.
    for (const Node &N : G.nodes()) {
      if (N.Dead || N.Dev != Device::Pim)
        continue;
      PF_ASSERT(Config.hasPim(), "PIM annotation without PIM channels");
    }
  }
  return G;
}

CompileResult PimFlow::executePlan(const Graph &Model, ExecutionPlan Plan) {
  PF_TRACE_SCOPE_CAT("pimflow.execute_plan", "compile");
  CompileResult R;
  R.Policy = Policy;
  R.Config = Config;
  R.Transformed = materialize(Model, Plan);
  R.Plan = std::move(Plan);

  if (Options.FaultSpec.empty()) {
    PF_TRACE_SCOPE_CAT("pimflow.execute", "compile");
    ExecutionEngine Engine(Config);
    R.Schedule = Engine.execute(R.Transformed);
  } else {
    // Fault-injected execution: build the fault schedule, then let the
    // recovery executor retry, remap, or fall back as needed. Recovery only
    // flips device annotations, so the executed graph stays bit-identical
    // to the transformed one.
    PF_TRACE_SCOPE_CAT("pimflow.execute_with_faults", "compile");
    DiagnosticEngine DE;
    FaultModel Faults;
    if (Options.FaultSpec == "chaos") {
      Faults = FaultModel::chaos(Options.FaultSeed, Config.Pim.Channels);
    } else if (auto Parsed = FaultModel::parse(Options.FaultSpec, DE)) {
      Faults = *std::move(Parsed);
    } else {
      fatal(formatStr("bad --faults spec:\n%s", DE.render().c_str()));
    }
    PF_LOG_INFO("injecting faults: %s", Faults.describe().c_str());

    RecoveryOptions RO;
    RO.Retry.MaxRetries = Options.MaxRetries;
    RO.PimFloor = Options.PimFloor;
    RecoveryExecutor Exec(Config, Faults, RO);
    RecoveryResult RR = Exec.run(R.Transformed, DE);
    if (!RR.Ok)
      fatal(formatStr("fault recovery failed for '%s':\n%s",
                      R.Transformed.name().c_str(), DE.render().c_str()));
    R.Transformed = std::move(RR.Executed);
    R.Schedule = std::move(RR.Schedule);
    R.Recovery.Active = true;
    R.Recovery.Degraded = RR.Degraded;
    R.Recovery.DeadChannels = RR.DeadChannels;
    R.Recovery.StalledChannels = RR.StalledChannels;
    R.Recovery.SurvivingChannels = RR.SurvivingChannels;
    R.Recovery.NodesRemapped = RR.NodesRemapped;
    R.Recovery.NodesFellBack = RR.NodesFellBack;
    R.Recovery.TransientRetries = RR.TransientRetries;
    R.Recovery.Notes = std::move(RR.Notes);
    for (const std::string &Note : R.Recovery.Notes)
      PF_LOG_INFO("recovery: %s", Note.c_str());
  }
  obs::addCounter("pimflow.compilations");
  PF_LOG_INFO("executed %s: %.2f us end-to-end, %.2f uJ",
              R.Transformed.name().c_str(), R.endToEndNs() / 1e3,
              R.energyJ() * 1e6);

  // Per-layer-class attribution reads GPU-baseline times out of the plan's
  // decision trail rather than the profiler: every covered node carries its
  // GpuOnlyNs, so a deserialized plan attributes identically to a fresh
  // search without a single profiler query.
  std::map<NodeId, double> GpuBaselineNs;
  for (const SearchDecision &D : R.Plan.Decisions)
    GpuBaselineNs[D.Id] = D.GpuOnlyNs;
  for (const SegmentPlan &S : R.Plan.Segments) {
    bool HasConv = false, HasFc = false;
    for (NodeId Id : S.Nodes) {
      const Node &N = Model.node(Id);
      HasConv |= N.Kind == OpKind::Conv2d && isPimCandidate(N);
      HasFc |= N.Kind == OpKind::Gemm;
    }
    double ConvNs = HasConv ? S.PredictedNs : 0.0;
    if (HasConv && S.Mode == SegmentMode::Pipeline) {
      // A pipelined segment's time covers the whole chain (candidate
      // convs + depthwise/activation stages); attribute only the
      // candidate-conv share, estimated from the chain's GPU-baseline
      // split, to the CONV-layer metric.
      double CandidateNs = 0.0, ChainNs = 0.0;
      for (NodeId Id : S.Nodes) {
        auto It = GpuBaselineNs.find(Id);
        const double Ns = It != GpuBaselineNs.end() ? It->second : 0.0;
        ChainNs += Ns;
        if (isPimCandidate(Model.node(Id)))
          CandidateNs += Ns;
      }
      if (ChainNs > 0.0)
        ConvNs *= CandidateNs / ChainNs;
    }
    R.ConvLayerNs += ConvNs;
    if (HasFc)
      R.FcLayerNs += S.PredictedNs;
  }
  return R;
}
