//===- core/PimFlow.h - End-to-end compiler facade --------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level PIMFlow entry point, mirroring the artifact's `pimflow`
/// driver: pick an offloading mechanism (Section 5's evaluated list), run
/// the execution-mode and task-size search, transform the model graph, and
/// execute it on the simulated GPU + PIM-enabled-memory system.
///
/// \code
///   pf::Graph Model = pf::buildMobileNetV2();
///   pf::PimFlow Flow(pf::OffloadPolicy::PimFlow);
///   pf::CompileResult R = Flow.compileAndRun(Model);
///   // R.EndToEndNs, R.EnergyJ, R.Transformed, R.Plan ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_CORE_PIMFLOW_H
#define PIMFLOW_CORE_PIMFLOW_H

#include <memory>
#include <optional>

#include "plan/PlanCache.h"
#include "runtime/ExecutionEngine.h"
#include "search/SearchEngine.h"

namespace pf {

/// The offloading mechanisms evaluated in Section 5.
enum class OffloadPolicy : uint8_t {
  GpuOnly,        ///< Baseline: GPU with all 32 memory channels.
  NewtonPlus,     ///< Newton with CONV/FC offloading + command scheduling.
  NewtonPlusPlus, ///< Newton+ plus the PIM command optimizations.
  PimFlowMd,      ///< Newton++ plus MD-DP mixed-parallel execution.
  PimFlowPl,      ///< Newton++ plus pipelined execution.
  PimFlow,        ///< Full PIMFlow: MD-DP + pipelining.
};

/// Returns the paper's mechanism name ("Baseline", "Newton+", ...).
const char *policyName(OffloadPolicy P);

/// All evaluated policies in the paper's order.
std::vector<OffloadPolicy> allPolicies();

/// Tunables for sensitivity studies; defaults reproduce the paper's main
/// configuration.
struct PimFlowOptions {
  int TotalChannels = 32;
  /// PIM-enabled channels of the dual configuration (Fig. 13 sweeps this).
  int PimChannels = 16;
  /// Pipeline stage count (Fig. 15 sweeps this).
  int PipelineStages = 2;
  /// Memory-layout optimization (Section 4.3.2).
  bool MemoryOptimizer = true;
  /// Model memory-controller contention (Section 7).
  bool ModelContention = false;
  /// Ablation overrides for the PIM command optimizations (Fig. 14). When
  /// unset, the policy decides (Newton+: 1 buffer / no hiding; Newton++ and
  /// later: 4 buffers / hiding).
  std::optional<int> NumGlobalBuffers;
  std::optional<bool> GwriteLatencyHiding;
  /// The paper's future-work auto-tuning: refine MD-DP split ratios around
  /// the coarse 10% optimum at 2% granularity (Section 5's footnote
  /// measured ~1% extra speedup from a full 2% grid).
  bool AutoTuneRatios = false;
  /// Ablation override for the Fig.-6 command-scheduling granularity (the
  /// finest level the scheduler may use; default: COMP).
  std::optional<ScheduleGranularity> MaxGranularity;
  /// Worker threads for the search's candidate-profiling pre-pass
  /// (SearchOptions::Jobs): 1 = serial, 0 = all hardware threads, N = N
  /// workers. The compile result is identical for every value.
  int SearchJobs = 1;
  /// Run the graph verifier at every pass boundary (plan application,
  /// canonicalization) even in builds without PIMFLOW_CHECKED. The final
  /// transformed graph is always verified regardless of this flag.
  bool VerifyPasses = false;
  /// Differential pass-boundary check: cross-run the reference interpreter
  /// on the original vs. the transformed graph at each pass boundary and
  /// abort on the first differing output element. Expensive (two full
  /// interpreter runs per boundary); debugging aid, not a production mode.
  bool DifferentialCheck = false;
  /// Cap on collected diagnostics when verification fails (--max-errors).
  int MaxVerifyErrors = 64;
  /// Fault-injection spec (--faults): the FaultModel::parse grammar, or the
  /// literal "chaos" to derive a seeded random schedule. Empty = no faults.
  std::string FaultSpec;
  /// Seed for FaultSpec == "chaos" (--fault-seed).
  uint64_t FaultSeed = 0;
  /// Retry budget for transient command faults (--max-retries).
  int MaxRetries = 3;
  /// Minimum surviving PIM channels before whole-graph GPU fallback
  /// (--pim-floor).
  int PimFloor = 1;
  /// Content-addressed plan cache directory (--plan-cache-dir). When set,
  /// plan() consults the cache before searching and stores fresh results;
  /// empty disables caching. Keys cover the canonical graph, system
  /// configuration, search options, and fault floor, so any relevant
  /// change misses.
  std::string PlanCacheDir;
};

/// Builds the system configuration a policy runs on.
SystemConfig systemConfigFor(OffloadPolicy P, const PimFlowOptions &O);

/// Builds the search option set a policy is allowed to use.
SearchOptions searchOptionsFor(OffloadPolicy P, const PimFlowOptions &O);

/// Degradation summary of a fault-injected run (CompileResult::Recovery).
struct RecoverySummary {
  /// Fault injection was requested (FaultSpec non-empty).
  bool Active = false;
  /// Something degraded: channels lost, nodes remapped or demoted.
  bool Degraded = false;
  int DeadChannels = 0;
  int StalledChannels = 0;
  int SurvivingChannels = 0;
  int NodesRemapped = 0;
  int NodesFellBack = 0;
  int TransientRetries = 0;
  /// Human-readable degradation notes, one per event.
  std::vector<std::string> Notes;
};

/// Outcome of compiling and executing one model under one policy.
struct CompileResult {
  OffloadPolicy Policy = OffloadPolicy::GpuOnly;
  SystemConfig Config;
  /// The transformed, device-annotated graph.
  Graph Transformed{"empty"};
  /// The search result that produced it.
  ExecutionPlan Plan;
  /// End-to-end schedule of the transformed graph.
  Timeline Schedule;

  double endToEndNs() const { return Schedule.TotalNs; }
  double energyJ() const { return Schedule.EnergyJ; }

  /// Sum of profiled segment times over segments containing PIM-candidate
  /// CONV layers (Fig. 9's per-layer-class metric).
  double ConvLayerNs = 0.0;
  /// Likewise for FC (Gemm) layers.
  double FcLayerNs = 0.0;

  /// Degradation summary when the run was fault-injected (--faults).
  RecoverySummary Recovery;
};

/// The compiler-and-runtime facade.
class PimFlow {
public:
  explicit PimFlow(OffloadPolicy Policy, PimFlowOptions Options = {});

  OffloadPolicy policy() const { return Policy; }
  const SystemConfig &config() const { return Config; }

  /// Runs the full flow on \p Model: search (or cache hit), transform,
  /// validate, execute. Equivalent to executePlan(Model, plan(Model)).
  CompileResult compileAndRun(const Graph &Model);

  /// The search half of the flow: produces the execution plan for
  /// \p Model, consulting the plan cache when PlanCacheDir is set.
  ExecutionPlan plan(const Graph &Model);

  /// The execution half: applies \p Plan to \p Model, validates, and
  /// executes — no search and no profiling, so a deserialized artifact
  /// replays without ever touching the profiler.
  CompileResult executePlan(const Graph &Model, ExecutionPlan Plan);

  /// The transform half of executePlan: applies \p Plan to \p Model,
  /// canonicalizes, infers shapes, and runs the full verifier — returning
  /// the execution-ready graph without executing it. Serve sessions
  /// materialize each (model, plan) pair once up front, then execute the
  /// cached graph many times under per-request channel grants.
  Graph materialize(const Graph &Model, const ExecutionPlan &Plan);

  /// The content address a compile of \p Model would be cached under.
  PlanKey planKey(const Graph &Model) const;

  /// The profiler (exposes the measurement cache for reuse and the
  /// compilation-overhead statistics of Section 7).
  Profiler &profiler() { return Prof; }

  /// The plan cache, or nullptr when PlanCacheDir is empty.
  PlanCache *planCache() { return Cache.get(); }

private:
  OffloadPolicy Policy;
  PimFlowOptions Options;
  SystemConfig Config;
  Profiler Prof;
  std::unique_ptr<PlanCache> Cache;
};

} // namespace pf

#endif // PIMFLOW_CORE_PIMFLOW_H
