//===- core/Report.cpp - Compilation & execution reporting ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "codegen/PimKernelSpec.h"
#include "codegen/WeightPlacement.h"
#include "runtime/MemoryPlanner.h"
#include "runtime/TimelineDump.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace pf;

ExecutionStats pf::computeStats(const CompileResult &R) {
  ExecutionStats S;
  const Graph &G = R.Transformed;

  PimCommandGenerator Gen(R.Config.Pim.Channels > 0
                              ? R.Config.Pim
                              : PimConfig::newtonPlus(),
                          R.Config.Codegen);

  for (const NodeSchedule &Sched : R.Schedule.Nodes) {
    const Node &N = G.node(Sched.Id);
    if (Sched.durationNs() <= 0.0) {
      ++S.FusedOrFreeNodes;
      continue;
    }
    if (Sched.Dev == Device::Pim) {
      ++S.PimKernels;
      const PimKernelSpec Spec = lowerToPimSpec(G, Sched.Id);
      const PimKernelPlan Plan = Gen.plan(Spec);
      S.PimGwriteBursts += Plan.Stats.GwriteBursts;
      S.PimGActs += Plan.Stats.GActs;
      S.PimCompColumns += Plan.Stats.CompColumns;
      S.PimReadRes += Plan.Stats.ReadResCmds;
      S.PimWeightBytes += Spec.weightBytes();
    } else {
      ++S.GpuKernels;
      for (ValueId In : N.Inputs)
        if (G.value(In).IsParam)
          S.GpuWeightBytes += G.value(In).byteCount();
    }
  }
  if (R.Schedule.TotalNs > 0.0) {
    S.GpuBusyFraction = R.Schedule.GpuBusyNs / R.Schedule.TotalNs;
    S.PimBusyFraction = R.Schedule.PimBusyNs / R.Schedule.TotalNs;
  }
  return S;
}

std::string pf::renderReport(const CompileResult &R) {
  const ExecutionStats S = computeStats(R);
  std::string Out;

  Out += formatStr("== %s report: %s ==\n\n", policyName(R.Policy),
                   R.Transformed.name().c_str());
  Out += formatStr("end-to-end %.2f us, energy %.2f uJ\n",
                   R.endToEndNs() / 1e3, R.energyJ() * 1e6);
  Out += formatStr("PIM-candidate CONV layers %.2f us, FC layers %.2f us\n",
                   R.ConvLayerNs / 1e3, R.FcLayerNs / 1e3);

  // Segment-mode summary.
  int Counts[4] = {};
  for (const SegmentPlan &Seg : R.Plan.Segments)
    ++Counts[static_cast<int>(Seg.Mode)];
  Out += formatStr("segments: %d gpu, %d full-pim, %d md-dp, %d "
                   "pipelined\n\n",
                   Counts[0], Counts[1], Counts[2], Counts[3]);

  Table T;
  T.setHeader({"statistic", "value"});
  T.addRow({"GPU kernels", formatStr("%d", S.GpuKernels)});
  T.addRow({"PIM kernels", formatStr("%d", S.PimKernels)});
  T.addRow({"fused / free nodes", formatStr("%d", S.FusedOrFreeNodes)});
  T.addRow({"GPU busy", formatStr("%.0f%%", S.GpuBusyFraction * 100.0)});
  T.addRow({"PIM busy", formatStr("%.0f%%", S.PimBusyFraction * 100.0)});
  T.addRow({"GWRITE bursts",
            formatStr("%lld", (long long)S.PimGwriteBursts)});
  T.addRow({"G_ACTs", formatStr("%lld", (long long)S.PimGActs)});
  T.addRow({"COMP columns",
            formatStr("%lld", (long long)S.PimCompColumns)});
  T.addRow({"READRES", formatStr("%lld", (long long)S.PimReadRes)});
  T.addRow({"weights in PIM channels",
            formatStr("%.2f MB", S.PimWeightBytes / 1048576.0)});
  T.addRow({"weights in GPU channels",
            formatStr("%.2f MB", S.GpuWeightBytes / 1048576.0)});
  const MemoryPlan MP = planMemory(R.Transformed, R.Schedule,
                                   MemoryOptimizer(R.Config.MemoryOptimizer));
  T.addRow({"peak activations",
            formatStr("%.2f MB", MP.PeakActivationBytes / 1048576.0)});
  T.addRow({"aliased (zero-copy) views",
            formatStr("%.2f MB", MP.AliasedBytes / 1048576.0)});
  if (R.Config.hasPim()) {
    const PlacementPlan WP =
        placeWeights(R.Transformed, R.Config.Pim, R.Config.Codegen);
    T.addRow({"PIM cell-array rows/bank",
              formatStr("%lld (%.2f%% of capacity)",
                        (long long)WP.RowsPerBankUsed,
                        WP.utilization() * 100.0)});
  }
  Out += T.render();

  Out += "\ntimeline:\n";
  Out += renderGantt(R.Transformed, R.Schedule);
  return Out;
}
