//===- pim/FaultModel.h - Deterministic PIM fault schedules -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seed-driven schedule of injectable PIM faults. Real
/// DRAM-PIM deployments lose channels, see transient command failures on the
/// shared bus, and stall on cross-channel fetches; the stack must degrade
/// gracefully instead of producing wrong timings or hanging. The model
/// covers four fault classes:
///
///  * DeadChannel     — a PIM channel is permanently unusable; its work must
///                      be remapped across the survivors.
///  * SlowChannel     — a channel completes commands at a latency multiple
///                      (thermal throttling, marginal timing margins).
///  * TransientCommand — the Nth COMP/READRES on a channel fails a bounded
///                      number of times before succeeding; the runtime
///                      retries with backoff.
///  * StalledGwrite   — a GWRITE never completes; a per-command watchdog
///                      bounds the loss and the channel counts as lost.
///
/// Every fault is a *pure function of the model's contents*: simulating the
/// same trace against the same model twice gives identical results, so the
/// recovery pre-check and the execution engine always agree on outcomes.
/// FaultModel::chaos derives a randomized-but-seeded schedule for the chaos
/// test harness.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_FAULTMODEL_H
#define PIMFLOW_PIM_FAULTMODEL_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pim/PimCommand.h"
#include "support/Diagnostics.h"

namespace pf {

/// The injectable fault classes.
enum class FaultKind : uint8_t {
  DeadChannel,
  SlowChannel,
  TransientCommand,
  StalledGwrite,
};

/// Returns "dead"/"slow"/"transient"/"stall".
const char *faultKindName(FaultKind Kind);

/// One transient command failure: the \p Ordinal-th expanded command of
/// \p Kind on \p Channel fails \p Fails consecutive times before
/// succeeding. Kind is restricted to Comp and ReadRes (the bank-engine
/// commands whose results cross the bus).
struct TransientFault {
  int Channel = 0;
  PimCmdKind Kind = PimCmdKind::Comp;
  int64_t Ordinal = 0;
  int Fails = 1;
};

/// A windowed channel outage: \p Channel is unusable for virtual times in
/// [StartNs, EndNs) and healthy again afterwards. Unlike the static fault
/// classes above (pure functions of a single run), outages are evaluated
/// against the *server's* virtual clock, so channels die and recover
/// while a request stream is in flight (docs/INTERNALS.md section 14).
struct ChannelOutage {
  int Channel = 0;
  int64_t StartNs = 0;
  int64_t EndNs = 0; ///< exclusive; must be > StartNs
  /// Ordinal in the (StartNs, Channel)-sorted timeline, assigned by
  /// addOutage. Serve traces and flight events name outage windows by
  /// this id, correlating a request interruption with the exact window
  /// that caused it.
  int Id = -1;

  bool covers(int64_t NowNs) const {
    return NowNs >= StartNs && NowNs < EndNs;
  }
};

/// Retry/backoff policy applied to transient faults plus the per-command
/// watchdog bounding stalled commands. All costs are in PIM clock cycles so
/// the simulator can price them directly.
struct RetryPolicy {
  /// Maximum re-issues of a failed command before the fault is treated as
  /// persistent and the kernel falls back.
  int MaxRetries = 3;
  /// Backoff before the first retry; doubles per attempt (exponential).
  int64_t BackoffBaseCycles = 64;
  /// Multiplier applied to the backoff after every failed attempt.
  int BackoffMultiplier = 2;
  /// Per-command completion bound: a command not done after this many
  /// cycles is declared stalled, so a hung trace can never hang the
  /// makespan computation.
  int64_t WatchdogCycles = 1 << 20;

  /// Total extra cycles of \p Attempts retries of a command whose base
  /// latency is \p CmdCycles (re-issue cost plus accumulated backoff).
  int64_t retryCostCycles(int Attempts, int64_t CmdCycles) const;
};

/// A deterministic schedule of faults against one PIM channel group.
/// Channel indices refer to the PIM channel group (0-based, below
/// PimConfig::Channels); entries aimed at out-of-range channels are inert.
class FaultModel {
public:
  FaultModel() = default;

  /// Parses a comma-separated fault spec:
  ///   dead:<ch>                 permanently dead channel
  ///   dead@<t1>..<t2>:<ch>      windowed outage: dead for virtual times
  ///                             [t1, t2) microseconds, healthy after
  ///   stall:<ch>                stalled GWRITE on the channel
  ///   slow:<ch>:<mult>          latency multiplier (float >= 1)
  ///   comp:<ch>:<ord>:<fails>   Nth COMP fails <fails> times
  ///   readres:<ch>:<ord>:<fails>  likewise for READRES
  /// Malformed entries produce fault.bad-spec diagnostics and nullopt.
  static std::optional<FaultModel> parse(const std::string &Spec,
                                         DiagnosticEngine &DE);

  /// Randomized-but-seeded schedule over \p NumChannels channels: 1-3
  /// faults of mixed classes drawn from a deterministic PRNG. Identical
  /// (Seed, NumChannels) pairs yield identical models.
  static FaultModel chaos(uint64_t Seed, int NumChannels);

  /// Randomized-but-seeded *timeline* of windowed outages over
  /// \p NumChannels channels inside [0, HorizonNs): 1-4 outage windows
  /// with seeded start/duration, for the chaos-under-serve harness.
  /// Identical (Seed, NumChannels, HorizonNs) inputs yield identical
  /// timelines; the static fault classes stay empty.
  static FaultModel chaosTimeline(uint64_t Seed, int NumChannels,
                                  int64_t HorizonNs);

  void addDead(int Channel) { Dead.insert(Channel); }
  void addStalled(int Channel) { Stalled.insert(Channel); }
  void addSlow(int Channel, double Factor);
  void addTransient(TransientFault F) { Transients.push_back(F); }
  void addOutage(ChannelOutage O);

  bool empty() const {
    return Dead.empty() && Stalled.empty() && Slow.empty() &&
           Transients.empty() && Outages.empty();
  }
  int faultCount() const {
    return static_cast<int>(Dead.size() + Stalled.size() + Slow.size() +
                            Transients.size() + Outages.size());
  }

  bool channelDead(int Channel) const { return Dead.count(Channel) > 0; }
  /// True when \p Channel is unusable at virtual time \p NowNs: either
  /// permanently dead or inside a windowed outage.
  bool deadAt(int Channel, int64_t NowNs) const;
  /// All windowed outages, sorted by (StartNs, Channel) — the serve
  /// loop's fault timeline.
  const std::vector<ChannelOutage> &outages() const { return Outages; }
  bool hasTimeline() const { return !Outages.empty(); }
  bool channelStalled(int Channel) const {
    return Stalled.count(Channel) > 0;
  }
  /// Latency multiplier of \p Channel (1.0 when healthy).
  double slowFactor(int Channel) const;
  const std::vector<TransientFault> &transients() const { return Transients; }
  /// Transient faults aimed at \p Channel.
  std::vector<TransientFault> transientsOn(int Channel) const;

  /// Channels in [0, NumChannels) that are neither dead nor stalled, in
  /// ascending order.
  std::vector<int> survivors(int NumChannels) const;

  /// Projects the model onto a compacted survivor channel group: survivor
  /// \p Survivors[i] becomes channel i of the result. Dead/stalled entries
  /// vanish (their channels are gone); slow factors and transients follow
  /// their channel to its new index.
  FaultModel compactedFor(const std::vector<int> &Survivors) const;

  /// Human-readable one-line summary ("dead:3 slow:2:4.0 comp:1:8:2").
  std::string describe() const;

private:
  std::set<int> Dead;
  std::set<int> Stalled;
  std::map<int, double> Slow;
  std::vector<TransientFault> Transients;
  std::vector<ChannelOutage> Outages; ///< sorted by (StartNs, Channel)
};

} // namespace pf

#endif // PIMFLOW_PIM_FAULTMODEL_H
