//===- pim/TraceIO.cpp - PIM command trace files ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/TraceIO.h"

#include <cstdio>
#include <cstring>

#include "support/Format.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

const char *kMagic = "pimflow-trace v1";

/// One command as a trace line.
std::string commandLine(const PimCommand &Cmd) {
  switch (Cmd.Kind) {
  case PimCmdKind::Gwrite:
  case PimCmdKind::Gwrite2:
  case PimCmdKind::Gwrite4:
    return formatStr("  %s bursts=%lld\n", pimCmdName(Cmd.Kind),
                     static_cast<long long>(Cmd.Count));
  case PimCmdKind::GAct:
    return formatStr("  G_ACT n=%lld\n",
                     static_cast<long long>(Cmd.Count));
  case PimCmdKind::Comp:
    return formatStr("  COMP cols=%lld\n",
                     static_cast<long long>(Cmd.Count));
  case PimCmdKind::ReadRes:
    return formatStr("  READRES n=%lld\n",
                     static_cast<long long>(Cmd.Count));
  }
  pf_unreachable("unknown PIM command kind");
}

/// Parses a single command line ("GWRITE_4 bursts=9"). Returns false on
/// malformed input.
bool parseCommand(const std::vector<std::string> &T, PimCommand &Out) {
  if (T.size() != 2)
    return false;
  const size_t Eq = T[1].find('=');
  if (Eq == std::string::npos)
    return false;
  const int64_t Count = std::atoll(T[1].c_str() + Eq + 1);
  if (Count <= 0)
    return false;
  Out.Count = Count;
  if (T[0] == "GWRITE")
    Out.Kind = PimCmdKind::Gwrite;
  else if (T[0] == "GWRITE_2")
    Out.Kind = PimCmdKind::Gwrite2;
  else if (T[0] == "GWRITE_4")
    Out.Kind = PimCmdKind::Gwrite4;
  else if (T[0] == "G_ACT")
    Out.Kind = PimCmdKind::GAct;
  else if (T[0] == "COMP")
    Out.Kind = PimCmdKind::Comp;
  else if (T[0] == "READRES")
    Out.Kind = PimCmdKind::ReadRes;
  else
    return false;
  return true;
}

std::vector<std::string> tokens(const std::string &Line) {
  std::vector<std::string> Out;
  for (const std::string &T : split(Line, ' '))
    if (!T.empty())
      Out.push_back(T);
  return Out;
}

} // namespace

std::vector<PimCommand> pf::expandTrace(const ChannelTrace &Trace,
                                        int64_t MaxCommands) {
  PF_ASSERT(Trace.numCommands() <= MaxCommands,
            "trace expansion exceeds the command cap");
  std::vector<PimCommand> Out;
  Out.reserve(static_cast<size_t>(Trace.numCommands()));
  for (const CommandBlock &B : Trace.Blocks)
    for (int64_t R = 0; R < B.Repeats; ++R)
      Out.insert(Out.end(), B.Pattern.begin(), B.Pattern.end());
  return Out;
}

std::string pf::dumpTrace(const DeviceTrace &Trace) {
  std::string Out = formatStr("%s channels=%zu\n", kMagic,
                              Trace.Channels.size());
  for (size_t C = 0; C < Trace.Channels.size(); ++C) {
    const ChannelTrace &Channel = Trace.Channels[C];
    if (Channel.empty())
      continue;
    Out += formatStr("channel %zu\n", C);
    for (const CommandBlock &B : Channel.Blocks) {
      Out += formatStr("block repeat=%lld\n",
                       static_cast<long long>(B.Repeats));
      for (const PimCommand &Cmd : B.Pattern)
        Out += commandLine(Cmd);
      Out += "end\n";
    }
  }
  return Out;
}

std::variant<DeviceTrace, std::string>
pf::parseTrace(const std::string &Text) {
  const std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.empty() || !startsWith(Lines[0], kMagic))
    return std::string("missing pimflow-trace header");
  const size_t Eq = Lines[0].find("channels=");
  if (Eq == std::string::npos)
    return std::string("missing channel count");
  const int Channels = std::atoi(Lines[0].c_str() + Eq + 9);
  if (Channels <= 0 || Channels > 4096)
    return std::string("implausible channel count");

  DeviceTrace Trace(Channels);
  int CurChannel = -1;
  CommandBlock *CurBlock = nullptr;

  for (size_t LineNo = 1; LineNo < Lines.size(); ++LineNo) {
    const std::string Line = trim(Lines[LineNo]);
    if (Line.empty())
      continue;
    const std::vector<std::string> T = tokens(Line);
    auto Err = [&LineNo](const std::string &Why) {
      return formatStr("line %zu: %s", LineNo + 1, Why.c_str());
    };

    if (T[0] == "channel") {
      if (T.size() != 2)
        return Err("malformed channel line");
      CurChannel = std::atoi(T[1].c_str());
      if (CurChannel < 0 || CurChannel >= Channels)
        return Err("channel index out of range");
      CurBlock = nullptr;
      continue;
    }
    if (T[0] == "block") {
      if (CurChannel < 0)
        return Err("block before any channel");
      if (T.size() != 2 || !startsWith(T[1], "repeat="))
        return Err("malformed block line");
      const int64_t Repeats = std::atoll(T[1].c_str() + 7);
      if (Repeats <= 0)
        return Err("non-positive repeat count");
      auto &Blocks =
          Trace.Channels[static_cast<size_t>(CurChannel)].Blocks;
      Blocks.push_back(CommandBlock{{}, Repeats});
      CurBlock = &Blocks.back();
      continue;
    }
    if (T[0] == "end") {
      if (!CurBlock)
        return Err("end outside a block");
      if (CurBlock->Pattern.empty())
        return Err("empty block");
      CurBlock = nullptr;
      continue;
    }
    // Otherwise a command line inside a block.
    if (!CurBlock)
      return Err("command outside a block");
    PimCommand Cmd;
    if (!parseCommand(T, Cmd))
      return Err("malformed command " + Line);
    CurBlock->Pattern.push_back(Cmd);
  }
  if (CurBlock)
    return std::string("unterminated block at end of trace");
  return Trace;
}

bool pf::saveTrace(const DeviceTrace &Trace, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Text = dumpTrace(Trace);
  const bool Ok =
      std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  std::fclose(F);
  return Ok;
}
