//===- pim/TraceIO.cpp - PIM command trace files ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/TraceIO.h"

#include <cstdio>
#include <cstring>

#include "support/Format.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

const char *kMagic = "pimflow-trace v1";

/// One command as a trace line.
std::string commandLine(const PimCommand &Cmd) {
  switch (Cmd.Kind) {
  case PimCmdKind::Gwrite:
  case PimCmdKind::Gwrite2:
  case PimCmdKind::Gwrite4:
    return formatStr("  %s bursts=%lld\n", pimCmdName(Cmd.Kind),
                     static_cast<long long>(Cmd.Count));
  case PimCmdKind::GAct:
    return formatStr("  G_ACT n=%lld\n",
                     static_cast<long long>(Cmd.Count));
  case PimCmdKind::Comp:
    return formatStr("  COMP cols=%lld\n",
                     static_cast<long long>(Cmd.Count));
  case PimCmdKind::ReadRes:
    return formatStr("  READRES n=%lld\n",
                     static_cast<long long>(Cmd.Count));
  }
  pf_unreachable("unknown PIM command kind");
}

/// The count field key each command kind dumps ("bursts"/"n"/"cols").
const char *countKeyFor(PimCmdKind Kind) {
  switch (Kind) {
  case PimCmdKind::Gwrite:
  case PimCmdKind::Gwrite2:
  case PimCmdKind::Gwrite4:
    return "bursts";
  case PimCmdKind::GAct:
  case PimCmdKind::ReadRes:
    return "n";
  case PimCmdKind::Comp:
    return "cols";
  }
  pf_unreachable("unknown PIM command kind");
}

/// Parses a single command line ("GWRITE_4 bursts=9"). Returns a reason on
/// malformed input, std::nullopt on success.
std::optional<std::string> parseCommand(const std::vector<std::string> &T,
                                        PimCommand &Out) {
  if (T.size() != 2)
    return formatStr("expected 2 fields, got %zu", T.size());
  if (T[0] == "GWRITE")
    Out.Kind = PimCmdKind::Gwrite;
  else if (T[0] == "GWRITE_2")
    Out.Kind = PimCmdKind::Gwrite2;
  else if (T[0] == "GWRITE_4")
    Out.Kind = PimCmdKind::Gwrite4;
  else if (T[0] == "G_ACT")
    Out.Kind = PimCmdKind::GAct;
  else if (T[0] == "COMP")
    Out.Kind = PimCmdKind::Comp;
  else if (T[0] == "READRES")
    Out.Kind = PimCmdKind::ReadRes;
  else
    return formatStr("unknown command '%s'", T[0].c_str());
  const size_t Eq = T[1].find('=');
  if (Eq == std::string::npos)
    return formatStr("field '%s' is not key=value", T[1].c_str());
  const std::string Key = T[1].substr(0, Eq);
  if (Key != countKeyFor(Out.Kind))
    return formatStr("%s expects '%s=', got '%s='", T[0].c_str(),
                     countKeyFor(Out.Kind), Key.c_str());
  const std::optional<int64_t> Count = parseInt(T[1].substr(Eq + 1));
  if (!Count || *Count <= 0)
    return formatStr("'%s' is not a positive integer",
                     T[1].c_str() + Eq + 1);
  Out.Count = *Count;
  return std::nullopt;
}

std::vector<std::string> tokens(const std::string &Line) {
  std::vector<std::string> Out;
  for (const std::string &T : split(Line, ' '))
    if (!T.empty())
      Out.push_back(T);
  return Out;
}

} // namespace

std::vector<PimCommand> pf::expandTrace(const ChannelTrace &Trace,
                                        int64_t MaxCommands) {
  PF_ASSERT(Trace.numCommands() <= MaxCommands,
            "trace expansion exceeds the command cap");
  std::vector<PimCommand> Out;
  Out.reserve(static_cast<size_t>(Trace.numCommands()));
  for (const CommandBlock &B : Trace.Blocks)
    for (int64_t R = 0; R < B.Repeats; ++R)
      Out.insert(Out.end(), B.Pattern.begin(), B.Pattern.end());
  return Out;
}

std::string pf::dumpTrace(const DeviceTrace &Trace) {
  std::string Out = formatStr("%s channels=%zu\n", kMagic,
                              Trace.Channels.size());
  for (size_t C = 0; C < Trace.Channels.size(); ++C) {
    const ChannelTrace &Channel = Trace.Channels[C];
    if (Channel.empty())
      continue;
    Out += formatStr("channel %zu\n", C);
    for (const CommandBlock &B : Channel.Blocks) {
      Out += formatStr("block repeat=%lld\n",
                       static_cast<long long>(B.Repeats));
      for (const PimCommand &Cmd : B.Pattern)
        Out += commandLine(Cmd);
      Out += "end\n";
    }
  }
  return Out;
}

std::variant<DeviceTrace, std::string>
pf::parseTrace(const std::string &Text) {
  const std::vector<std::string> Lines = split(Text, '\n');
  // Header (line 1): "pimflow-trace v1 channels=N", nothing more. Blind
  // offset arithmetic here used to accept junk ("channels=12x" parsed as
  // 12, arbitrary trailing fields ignored).
  if (Lines.empty() || !startsWith(Lines[0], kMagic))
    return std::string("line 1: missing pimflow-trace header");
  const std::vector<std::string> Header = tokens(Lines[0]);
  if (Header.size() != 3 || !startsWith(Header[2], "channels="))
    return std::string("line 1: header must be exactly "
                       "'pimflow-trace v1 channels=N'");
  const std::optional<int64_t> Channels =
      parseInt(Header[2].substr(std::strlen("channels=")));
  if (!Channels)
    return formatStr("line 1: channel count '%s' is not an integer",
                     Header[2].c_str() + std::strlen("channels="));
  if (*Channels <= 0 || *Channels > 4096)
    return formatStr("line 1: implausible channel count %lld",
                     static_cast<long long>(*Channels));

  DeviceTrace Trace(static_cast<int>(*Channels));
  int CurChannel = -1;
  CommandBlock *CurBlock = nullptr;

  for (size_t LineNo = 1; LineNo < Lines.size(); ++LineNo) {
    const std::string Line = trim(Lines[LineNo]);
    if (Line.empty())
      continue;
    const std::vector<std::string> T = tokens(Line);
    auto Err = [&LineNo](const std::string &Why) {
      return formatStr("line %zu: %s", LineNo + 1, Why.c_str());
    };

    if (T[0] == "channel") {
      if (T.size() != 2)
        return Err(formatStr("channel line expects 2 fields, got %zu",
                             T.size()));
      const std::optional<int64_t> Idx = parseInt(T[1]);
      if (!Idx)
        return Err(formatStr("channel index '%s' is not an integer",
                             T[1].c_str()));
      if (*Idx < 0 || *Idx >= *Channels)
        return Err(formatStr("channel index %lld out of range [0, %lld)",
                             static_cast<long long>(*Idx),
                             static_cast<long long>(*Channels)));
      CurChannel = static_cast<int>(*Idx);
      CurBlock = nullptr;
      continue;
    }
    if (T[0] == "block") {
      if (CurChannel < 0)
        return Err("block before any channel");
      if (T.size() != 2 || !startsWith(T[1], "repeat="))
        return Err("malformed block line (expected 'block repeat=N')");
      const std::optional<int64_t> Repeats =
          parseInt(T[1].substr(std::strlen("repeat=")));
      if (!Repeats)
        return Err(formatStr("repeat count '%s' is not an integer",
                             T[1].c_str() + std::strlen("repeat=")));
      if (*Repeats <= 0)
        return Err("non-positive repeat count");
      auto &Blocks =
          Trace.Channels[static_cast<size_t>(CurChannel)].Blocks;
      Blocks.push_back(CommandBlock{{}, *Repeats});
      CurBlock = &Blocks.back();
      continue;
    }
    if (T[0] == "end") {
      if (!CurBlock)
        return Err("end outside a block");
      if (CurBlock->Pattern.empty())
        return Err("empty block");
      CurBlock = nullptr;
      continue;
    }
    // Otherwise a command line inside a block.
    if (!CurBlock)
      return Err("command outside a block");
    PimCommand Cmd;
    if (auto Why = parseCommand(T, Cmd))
      return Err(formatStr("malformed command '%s': %s", Line.c_str(),
                           Why->c_str()));
    CurBlock->Pattern.push_back(Cmd);
  }
  if (CurBlock)
    return std::string("unterminated block at end of trace");
  return Trace;
}

bool pf::saveTrace(const DeviceTrace &Trace, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Text = dumpTrace(Trace);
  const bool Ok =
      std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  std::fclose(F);
  return Ok;
}
