//===- pim/PimSimulator.h - DRAM-PIM cycle simulator ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Ramulator-extension stand-in: executes PIM command traces against the
/// Table-1 timing parameters and reports cycles, command counts, and energy.
///
/// Each channel has two engines:
///  * the fetch engine serving GWRITE (data moves from GPU channels into the
///    global buffers), and
///  * the bank engine serving G_ACT / COMP / READRES.
/// Without GWRITE latency hiding the two serialize (the paper's baseline,
/// where a single set of channels cannot fetch and activate at once); with
/// hiding, G_ACT proceeds under an in-flight GWRITE and only COMP waits for
/// its input data — the Section 4.1 optimization enabled by the split
/// GPU/PIM channel groups.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_PIMSIMULATOR_H
#define PIMFLOW_PIM_PIMSIMULATOR_H

#include "pim/PimCommand.h"
#include "pim/PimConfig.h"

namespace pf {

/// Aggregate results of executing one device trace.
struct PimRunStats {
  /// Makespan over all channels, in PIM clock cycles.
  int64_t Cycles = 0;
  /// Makespan in nanoseconds.
  double Ns = 0.0;

  /// Command counts (expanded over block repeats).
  int64_t GwriteCmds = 0;
  int64_t GwriteBursts = 0;
  int64_t GActs = 0;
  int64_t CompCmds = 0;
  int64_t CompColumns = 0;
  int64_t ReadResCmds = 0;

  /// Busy cycles summed over channels (for utilization reporting).
  int64_t BusyCycleSum = 0;
  int ActiveChannels = 0;
};

/// Executes DeviceTraces under a PimConfig.
class PimSimulator {
public:
  explicit PimSimulator(PimConfig Config) : Config(Config) {}

  const PimConfig &config() const { return Config; }

  /// Cycle count of a single channel's trace.
  int64_t simulateChannel(const ChannelTrace &Trace) const;

  /// Runs every channel and returns the makespan and aggregate counts.
  PimRunStats run(const DeviceTrace &Trace) const;

  /// Energy in joules of a run: per-command energies plus the MAC energy of
  /// \p EffectiveMacs (the codegen knows how many multipliers were actually
  /// occupied; partially filled banks do not burn MAC energy) plus static
  /// power over the makespan.
  double energyJ(const PimRunStats &Stats, int64_t EffectiveMacs) const;

private:
  PimConfig Config;
};

} // namespace pf

#endif // PIMFLOW_PIM_PIMSIMULATOR_H
