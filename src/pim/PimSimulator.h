//===- pim/PimSimulator.h - DRAM-PIM cycle simulator ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Ramulator-extension stand-in: executes PIM command traces against the
/// Table-1 timing parameters and reports cycles, command counts, and energy.
///
/// Each channel has two engines:
///  * the fetch engine serving GWRITE (data moves from GPU channels into the
///    global buffers), and
///  * the bank engine serving G_ACT / COMP / READRES.
/// Without GWRITE latency hiding the two serialize (the paper's baseline,
/// where a single set of channels cannot fetch and activate at once); with
/// hiding, G_ACT proceeds under an in-flight GWRITE and only COMP waits for
/// its input data — the Section 4.1 optimization enabled by the split
/// GPU/PIM channel groups.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_PIMSIMULATOR_H
#define PIMFLOW_PIM_PIMSIMULATOR_H

#include <vector>

#include "pim/FaultModel.h"
#include "pim/PimCommand.h"
#include "pim/PimConfig.h"

namespace pf {

/// Aggregate results of executing one device trace.
struct PimRunStats {
  /// Makespan over all channels, in PIM clock cycles.
  int64_t Cycles = 0;
  /// Makespan in nanoseconds.
  double Ns = 0.0;

  /// Command counts (expanded over block repeats).
  int64_t GwriteCmds = 0;
  int64_t GwriteBursts = 0;
  int64_t GActs = 0;
  int64_t CompCmds = 0;
  int64_t CompColumns = 0;
  int64_t ReadResCmds = 0;

  /// Busy cycles summed over channels (for utilization reporting).
  int64_t BusyCycleSum = 0;
  int ActiveChannels = 0;
};

/// Health classification of one channel after a fault-aware run.
enum class ChannelHealth : uint8_t {
  Ok,               ///< Completed fault-free.
  Degraded,         ///< Completed, but slower (retries / slow channel).
  Dead,             ///< Permanently unusable; made no progress.
  Stalled,          ///< A GWRITE never completed; watchdog fired.
  RetriesExhausted, ///< A transient fault outlived the retry budget.
};

/// Returns "ok"/"degraded"/"dead"/"stalled"/"retries-exhausted".
const char *channelHealthName(ChannelHealth H);

/// Per-channel outcome of a fault-aware run.
struct ChannelFaultOutcome {
  int Channel = 0;
  ChannelHealth Health = ChannelHealth::Ok;
  /// Commands that failed at least once.
  int TransientFaults = 0;
  /// Retry attempts actually issued.
  int Retries = 0;
  /// Extra cycles spent re-issuing commands and backing off.
  int64_t RetryCycles = 0;
  /// Channel completion time (watchdog bound for stalled channels, 0 for
  /// dead ones).
  int64_t Cycles = 0;

  /// True when the channel cannot finish its trace under any retry budget.
  bool persistent() const {
    return Health == ChannelHealth::Dead ||
           Health == ChannelHealth::Stalled ||
           Health == ChannelHealth::RetriesExhausted;
  }
};

/// Aggregate results of a fault-aware run: retry-inflated timing plus the
/// per-channel outcomes recovery decides on.
struct FaultyRunStats {
  PimRunStats Stats;
  std::vector<ChannelFaultOutcome> Outcomes;
  int TotalRetries = 0;

  /// True when at least one channel ended in a persistent failure — the
  /// kernel as planned did not complete and its result must not be used.
  bool anyPersistent() const {
    for (const ChannelFaultOutcome &O : Outcomes)
      if (O.persistent())
        return true;
    return false;
  }
  bool degraded() const {
    for (const ChannelFaultOutcome &O : Outcomes)
      if (O.Health != ChannelHealth::Ok)
        return true;
    return false;
  }
};

/// Executes DeviceTraces under a PimConfig.
class PimSimulator {
public:
  explicit PimSimulator(PimConfig Config) : Config(Config) {}

  const PimConfig &config() const { return Config; }

  /// Cycle count of a single channel's trace.
  int64_t simulateChannel(const ChannelTrace &Trace) const;

  /// Runs every channel and returns the makespan and aggregate counts.
  PimRunStats run(const DeviceTrace &Trace) const;

  /// Fault-aware run: executes \p Trace with \p Faults injected under the
  /// retry/backoff/watchdog rules of \p Retry. Slow channels multiply their
  /// completion time, transient COMP/READRES failures cost bounded retries
  /// with exponential backoff, stalled GWRITEs are cut off at the watchdog
  /// bound, and dead channels make no progress. Deterministic: identical
  /// inputs yield identical outcomes. Callers must check anyPersistent()
  /// before trusting Stats — a persistent outcome means the kernel did not
  /// complete as planned.
  FaultyRunStats runWithFaults(const DeviceTrace &Trace,
                               const FaultModel &Faults,
                               const RetryPolicy &Retry) const;

  /// Energy in joules of a run: per-command energies plus the MAC energy of
  /// \p EffectiveMacs (the codegen knows how many multipliers were actually
  /// occupied; partially filled banks do not burn MAC energy) plus static
  /// power over the makespan.
  double energyJ(const PimRunStats &Stats, int64_t EffectiveMacs) const;

private:
  PimConfig Config;
};

} // namespace pf

#endif // PIMFLOW_PIM_PIMSIMULATOR_H
