//===- pim/PimSimulator.h - DRAM-PIM cycle simulator ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Ramulator-extension stand-in: executes PIM command traces against the
/// Table-1 timing parameters and reports cycles, command counts, and energy.
///
/// Each channel has two engines:
///  * the fetch engine serving GWRITE (data moves from GPU channels into the
///    global buffers), and
///  * the bank engine serving G_ACT / COMP / READRES.
/// Without GWRITE latency hiding the two serialize (the paper's baseline,
/// where a single set of channels cannot fetch and activate at once); with
/// hiding, G_ACT proceeds under an in-flight GWRITE and only COMP waits for
/// its input data — the Section 4.1 optimization enabled by the split
/// GPU/PIM channel groups.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_PIMSIMULATOR_H
#define PIMFLOW_PIM_PIMSIMULATOR_H

#include <vector>

#include "pim/FaultModel.h"
#include "pim/PimCommand.h"
#include "pim/PimConfig.h"

namespace pf {

/// Busy cycles of one channel split by command phase. Command durations are
/// state-independent (only start times depend on engine occupancy), so the
/// per-phase totals are exact regardless of GWRITE latency hiding; with
/// hiding enabled the fetch phase (GWRITE) overlaps the bank phases, which
/// is why busyCycles() can exceed CompletionCycles. The fault path adds
/// retry/backoff time (RetryCycles) and watchdog-bounded stall loss
/// (StallCycles) so a degraded run's extra time is attributable, not just
/// visible as a longer makespan.
struct ChannelPhaseCycles {
  int Channel = 0;
  int64_t GwriteCycles = 0;
  int64_t GactCycles = 0;
  int64_t CompCycles = 0;
  int64_t ReadResCycles = 0;
  /// Fault path: re-issue plus accumulated backoff time of retried
  /// commands.
  int64_t RetryCycles = 0;
  /// Fault path: cycles lost to a stalled GWRITE before the watchdog cut
  /// the channel off.
  int64_t StallCycles = 0;
  /// Channel completion time (0 for dead channels).
  int64_t CompletionCycles = 0;

  /// Total attributed busy time: the phase buckets sum to this by
  /// construction (the consistency the attribution tests pin down).
  int64_t busyCycles() const {
    return GwriteCycles + GactCycles + CompCycles + ReadResCycles +
           RetryCycles + StallCycles;
  }
  /// Bank-engine busy time (the compute-side phases; excludes the fetch
  /// engine, which may overlap under GWRITE latency hiding).
  int64_t bankBusyCycles() const {
    return GactCycles + CompCycles + ReadResCycles + RetryCycles;
  }

  ChannelPhaseCycles &operator+=(const ChannelPhaseCycles &O);
};

/// Per-phase busy cycles of \p Trace under \p Config's timing parameters
/// (expanded over block repeats; no simulation needed since durations are
/// state-independent).
ChannelPhaseCycles phaseCyclesOf(const PimConfig &Config,
                                 const ChannelTrace &Trace);

/// Aggregate results of executing one device trace.
struct PimRunStats {
  /// Makespan over all channels, in PIM clock cycles.
  int64_t Cycles = 0;
  /// Makespan in nanoseconds.
  double Ns = 0.0;

  /// Command counts (expanded over block repeats).
  int64_t GwriteCmds = 0;
  int64_t GwriteBursts = 0;
  int64_t GActs = 0;
  int64_t CompCmds = 0;
  int64_t CompColumns = 0;
  int64_t ReadResCmds = 0;

  /// Busy cycles summed over channels (for utilization reporting).
  int64_t BusyCycleSum = 0;
  int ActiveChannels = 0;

  /// Per-channel phase accounting, one entry per non-empty channel in
  /// channel order. Fault-aware runs fold retry/stall time into the
  /// matching entry.
  std::vector<ChannelPhaseCycles> ChannelPhases;
};

/// Health classification of one channel after a fault-aware run.
enum class ChannelHealth : uint8_t {
  Ok,               ///< Completed fault-free.
  Degraded,         ///< Completed, but slower (retries / slow channel).
  Dead,             ///< Permanently unusable; made no progress.
  Stalled,          ///< A GWRITE never completed; watchdog fired.
  RetriesExhausted, ///< A transient fault outlived the retry budget.
};

/// Returns "ok"/"degraded"/"dead"/"stalled"/"retries-exhausted".
const char *channelHealthName(ChannelHealth H);

/// Per-channel outcome of a fault-aware run.
struct ChannelFaultOutcome {
  int Channel = 0;
  ChannelHealth Health = ChannelHealth::Ok;
  /// Commands that failed at least once.
  int TransientFaults = 0;
  /// Retry attempts actually issued.
  int Retries = 0;
  /// Extra cycles spent re-issuing commands and backing off.
  int64_t RetryCycles = 0;
  /// Channel completion time (watchdog bound for stalled channels, 0 for
  /// dead ones).
  int64_t Cycles = 0;

  /// True when the channel cannot finish its trace under any retry budget.
  bool persistent() const {
    return Health == ChannelHealth::Dead ||
           Health == ChannelHealth::Stalled ||
           Health == ChannelHealth::RetriesExhausted;
  }
};

/// Aggregate results of a fault-aware run: retry-inflated timing plus the
/// per-channel outcomes recovery decides on.
struct FaultyRunStats {
  PimRunStats Stats;
  std::vector<ChannelFaultOutcome> Outcomes;
  int TotalRetries = 0;

  /// True when at least one channel ended in a persistent failure — the
  /// kernel as planned did not complete and its result must not be used.
  bool anyPersistent() const {
    for (const ChannelFaultOutcome &O : Outcomes)
      if (O.persistent())
        return true;
    return false;
  }
  bool degraded() const {
    for (const ChannelFaultOutcome &O : Outcomes)
      if (O.Health != ChannelHealth::Ok)
        return true;
    return false;
  }
};

/// Executes DeviceTraces under a PimConfig.
class PimSimulator {
public:
  explicit PimSimulator(PimConfig Config) : Config(Config) {}

  const PimConfig &config() const { return Config; }

  /// Cycle count of a single channel's trace.
  int64_t simulateChannel(const ChannelTrace &Trace) const;

  /// Runs every channel and returns the makespan and aggregate counts.
  PimRunStats run(const DeviceTrace &Trace) const;

  /// Fault-aware run: executes \p Trace with \p Faults injected under the
  /// retry/backoff/watchdog rules of \p Retry. Slow channels multiply their
  /// completion time, transient COMP/READRES failures cost bounded retries
  /// with exponential backoff, stalled GWRITEs are cut off at the watchdog
  /// bound, and dead channels make no progress. Deterministic: identical
  /// inputs yield identical outcomes. Callers must check anyPersistent()
  /// before trusting Stats — a persistent outcome means the kernel did not
  /// complete as planned.
  FaultyRunStats runWithFaults(const DeviceTrace &Trace,
                               const FaultModel &Faults,
                               const RetryPolicy &Retry) const;

  /// Energy in joules of a run: per-command energies plus the MAC energy of
  /// \p EffectiveMacs (the codegen knows how many multipliers were actually
  /// occupied; partially filled banks do not burn MAC energy) plus static
  /// power over the makespan.
  double energyJ(const PimRunStats &Stats, int64_t EffectiveMacs) const;

private:
  PimConfig Config;
};

} // namespace pf

#endif // PIMFLOW_PIM_PIMSIMULATOR_H
