//===- pim/PimConfig.h - DRAM-PIM device parameters -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the Newton/AiM-style DRAM-PIM device (the paper's
/// Table 1): channel/bank organization, global-buffer provisioning, command
/// timing parameters adapted for GDDR6, per-command energies, and the two
/// PIM-command optimizations PIMFlow adds (multiple global buffers and
/// GWRITE latency hiding).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_PIMCONFIG_H
#define PIMFLOW_PIM_PIMCONFIG_H

#include <cstdint>

#include "support/Assert.h"

namespace pf {

/// DRAM-PIM hardware and timing configuration (Table 1 defaults).
struct PimConfig {
  //===--------------------------------------------------------------------===
  // Organization
  //===--------------------------------------------------------------------===

  /// Number of PIM-enabled memory channels (16 of the 32-channel memory in
  /// the default GPU/PIM channel grouping).
  int Channels = 16;
  /// Banks per channel; all banks compute in lockstep under one command.
  int BanksPerChannel = 16;
  /// fp16 multipliers per bank (one reduction tree each).
  int MultipliersPerBank = 16;
  /// Column I/O width in bits (one COMP fetches this much per bank).
  int ColumnIOBits = 256;
  /// Column I/Os per activated row.
  int ColumnIOsPerRow = 32;
  /// Total global-buffer capacity per channel in bytes.
  int GlobalBufferBytes = 4096;
  /// Accumulation contexts per bank (result latches). A bank can keep this
  /// many partial dot products alive; kernels whose resident rows times
  /// buffered vectors exceed it must drain partial sums per K-tile and
  /// merge them outside the memory.
  int ResultLatchesPerBank = 16;
  /// Burst size of a single GWRITE beat in bytes.
  int BurstBytes = 32;
  /// PIM command clock in GHz (GDDR6 command rate; AiM reports 1 TFLOPS
  /// per 16-bank chip, i.e. 16 banks x 16 MACs at ~2 GHz).
  double ClockGhz = 2.0;

  /// Aggregate GWRITE supply bandwidth in GB/s: input vectors are fetched
  /// from the GPU channel group through the memory network, so the sum of
  /// all PIM channels' fetch traffic cannot exceed what those channels and
  /// the crossbar deliver. Caps kernels with heavily redundant im2col
  /// fetches (large-K convolutions).
  double FetchSupplyGBs = 200.0;

  //===--------------------------------------------------------------------===
  // Timing parameters in clock cycles (Table 1, adapted for GDDR6)
  //===--------------------------------------------------------------------===

  /// Column-to-column delay; issue gap of back-to-back bursts.
  int64_t TCcdl = 2;
  /// Row activate latency of G_ACT (all banks in parallel).
  int64_t TGact = 11;
  /// Latency of the first GWRITE burst (cross-channel fetch setup).
  int64_t TGwrite = 11;
  /// Row-to-row activate delay between consecutive G_ACTs.
  int64_t TRrd = 11;
  /// Per-COMP latency (one column I/O through the MAC tree).
  int64_t TComp = 2;
  /// READRES latency (drain result latches to the bus).
  int64_t TReadRes = 25;

  //===--------------------------------------------------------------------===
  // PIMFlow command optimizations (Section 4.1)
  //===--------------------------------------------------------------------===

  /// Number of global buffers per channel (1 = Newton, 2 = AiM, 4 =
  /// PIMFlow). G_ACT row fetches are reused against this many input
  /// vectors, and GWRITE_2/GWRITE_4 fill several buffers per command.
  int NumGlobalBuffers = 1;
  /// Asynchronously issue G_ACT behind an in-flight GWRITE, possible only
  /// in the split GPU/PIM channel configuration where data is fetched from
  /// GPU channels while PIM channels activate rows.
  bool GwriteLatencyHiding = false;

  //===--------------------------------------------------------------------===
  // Energy parameters (CACTI-7-derived, per command / per byte, in pJ)
  //===--------------------------------------------------------------------===

  double ActEnergyPj = 909.0;      ///< Per G_ACT (all banks of a channel).
  double MacEnergyPj = 0.4;        ///< Per multiply-accumulate.
  double CompFixedPj = 30.0;       ///< Per-COMP command overhead.
  double GwriteEnergyPerBytePj = 4.0; ///< Cross-channel fetch per byte.
  double ReadResEnergyPj = 160.0;  ///< Per READRES (32B over the bus).
  double StaticPowerWPerChannel = 0.05; ///< Background power per channel.

  //===--------------------------------------------------------------------===
  // Derived quantities
  //===--------------------------------------------------------------------===

  /// fp16 elements a single COMP consumes per bank.
  int64_t elementsPerComp() const { return ColumnIOBits / 16; }

  /// fp16 weight elements one activated row supplies per bank.
  int64_t elementsPerRow() const {
    return static_cast<int64_t>(ColumnIOsPerRow) * elementsPerComp();
  }

  /// Capacity of one global buffer in fp16 elements.
  int64_t bufferElements() const {
    PF_ASSERT(NumGlobalBuffers >= 1, "need at least one global buffer");
    return GlobalBufferBytes / NumGlobalBuffers / 2;
  }

  /// MACs per COMP command across all banks of a channel.
  int64_t macsPerComp() const {
    return static_cast<int64_t>(BanksPerChannel) * MultipliersPerBank;
  }

  /// Converts cycles to nanoseconds.
  double cyclesToNs(int64_t Cycles) const {
    return static_cast<double>(Cycles) / ClockGhz;
  }

  /// Newton+ mechanism: baseline command set (single buffer, no hiding).
  static PimConfig newtonPlus() {
    PimConfig C;
    C.NumGlobalBuffers = 1;
    C.GwriteLatencyHiding = false;
    return C;
  }

  /// Newton++ / PIMFlow mechanism: both PIM-command optimizations on.
  static PimConfig newtonPlusPlus() {
    PimConfig C;
    C.NumGlobalBuffers = 4;
    C.GwriteLatencyHiding = true;
    return C;
  }

  /// HBM-PIM-style configuration (the Samsung bank-level-MAC architecture
  /// the paper cites as an adaptation target): more, slower pseudo-channel
  /// units at a lower clock, with smaller per-channel buffers. PIMFlow's
  /// code generator adapts through the same PimConfig interface.
  static PimConfig hbmPim() {
    PimConfig C;
    C.Channels = 32;            // Pseudo-channels of a 4-stack HBM2.
    C.BanksPerChannel = 8;
    C.MultipliersPerBank = 16;
    C.ClockGhz = 1.2;
    C.GlobalBufferBytes = 2048;
    C.NumGlobalBuffers = 2;
    C.GwriteLatencyHiding = true;
    C.FetchSupplyGBs = 300.0;   // HBM interposer links.
    return C;
  }
};

} // namespace pf

#endif // PIMFLOW_PIM_PIMCONFIG_H
