//===- pim/ReferenceSimulator.h - Validation-grade simulator ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent, command-at-a-time reference implementation of the
/// DRAM-PIM timing rules, used to validate the fast block simulator (which
/// extrapolates steady-state iterations). It expands every block, splits
/// multi-count commands into unit events, and advances explicit
/// fetch-engine / bank-engine clocks per event. Slower but simpler — the
/// property tests require the two simulators to agree cycle-for-cycle on
/// arbitrary traces.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_REFERENCESIMULATOR_H
#define PIMFLOW_PIM_REFERENCESIMULATOR_H

#include "pim/PimCommand.h"
#include "pim/PimConfig.h"

namespace pf {

/// Cycle count of \p Trace on one channel under \p Config, computed by the
/// unit-event reference model.
int64_t referenceSimulateChannel(const PimConfig &Config,
                                 const ChannelTrace &Trace);

} // namespace pf

#endif // PIMFLOW_PIM_REFERENCESIMULATOR_H
