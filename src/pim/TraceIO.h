//===- pim/TraceIO.h - PIM command trace files ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual PIM command traces, the artifact's interchange format between
/// the TVM back-end and the DRAM-PIM simulator ("TVM DRAM-PIM back-end
/// interfaces with this simulator to generate PIM command traces for
/// PIM-offloaded layers and measures the trace execution time").
///
/// The format keeps the block structure (pattern + repeat count) so real
/// layer traces stay small:
///
/// ```
/// pimflow-trace v1 channels=<N>
/// channel <c>
/// block repeat=<R>
///   GWRITE_4 bursts=9
///   G_ACT n=2
///   COMP cols=72
///   READRES n=4
/// end
/// ```
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_TRACEIO_H
#define PIMFLOW_PIM_TRACEIO_H

#include <string>
#include <variant>
#include <vector>

#include "pim/PimCommand.h"

namespace pf {

/// Fully expands \p Trace into a flat command list (block repeats
/// unrolled). Aborts if the expansion would exceed \p MaxCommands.
std::vector<PimCommand> expandTrace(const ChannelTrace &Trace,
                                    int64_t MaxCommands = 1 << 24);

/// Serializes a device trace to the textual format.
std::string dumpTrace(const DeviceTrace &Trace);

/// Parses a textual trace. Returns the trace or an error description.
std::variant<DeviceTrace, std::string> parseTrace(const std::string &Text);

/// Writes dumpTrace(Trace) to \p Path. Returns false on I/O failure.
bool saveTrace(const DeviceTrace &Trace, const std::string &Path);

} // namespace pf

#endif // PIMFLOW_PIM_TRACEIO_H
