//===- pim/FaultModel.cpp - Deterministic PIM fault schedules ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/FaultModel.h"

#include <algorithm>
#include <cstdlib>

#include "support/Format.h"
#include "support/Random.h"
#include "support/StringUtil.h"

using namespace pf;

const char *pf::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::DeadChannel:
    return "dead";
  case FaultKind::SlowChannel:
    return "slow";
  case FaultKind::TransientCommand:
    return "transient";
  case FaultKind::StalledGwrite:
    return "stall";
  }
  pf_unreachable("unknown fault kind");
}

int64_t RetryPolicy::retryCostCycles(int Attempts, int64_t CmdCycles) const {
  int64_t Cost = 0;
  int64_t Backoff = BackoffBaseCycles;
  for (int A = 0; A < Attempts; ++A) {
    Cost += CmdCycles + Backoff;
    Backoff *= BackoffMultiplier;
  }
  return Cost;
}

void FaultModel::addSlow(int Channel, double Factor) {
  PF_ASSERT(Factor >= 1.0, "slow factor below 1 would speed the channel up");
  Slow[Channel] = Factor;
}

void FaultModel::addOutage(ChannelOutage O) {
  PF_ASSERT(O.EndNs > O.StartNs, "outage window must be non-empty");
  // Keep the timeline sorted by (StartNs, Channel): the serve loop turns
  // it into events in this order, so insertion order never matters.
  auto It = std::upper_bound(
      Outages.begin(), Outages.end(), O,
      [](const ChannelOutage &A, const ChannelOutage &B) {
        return A.StartNs != B.StartNs ? A.StartNs < B.StartNs
                                      : A.Channel < B.Channel;
      });
  Outages.insert(It, O);
  // Ordinal ids follow the sorted timeline so they are stable in the set
  // of windows, not in insertion order.
  for (size_t I = 0; I < Outages.size(); ++I)
    Outages[I].Id = static_cast<int>(I);
}

bool FaultModel::deadAt(int Channel, int64_t NowNs) const {
  if (channelDead(Channel))
    return true;
  for (const ChannelOutage &O : Outages) {
    if (O.StartNs > NowNs)
      break; // sorted by start: nothing later can cover NowNs
    if (O.Channel == Channel && O.covers(NowNs))
      return true;
  }
  return false;
}

double FaultModel::slowFactor(int Channel) const {
  auto It = Slow.find(Channel);
  return It == Slow.end() ? 1.0 : It->second;
}

std::vector<TransientFault> FaultModel::transientsOn(int Channel) const {
  std::vector<TransientFault> Out;
  for (const TransientFault &T : Transients)
    if (T.Channel == Channel)
      Out.push_back(T);
  return Out;
}

std::vector<int> FaultModel::survivors(int NumChannels) const {
  std::vector<int> Out;
  for (int Ch = 0; Ch < NumChannels; ++Ch)
    if (!channelDead(Ch) && !channelStalled(Ch))
      Out.push_back(Ch);
  return Out;
}

FaultModel FaultModel::compactedFor(const std::vector<int> &Survivors) const {
  FaultModel Out;
  for (size_t I = 0; I < Survivors.size(); ++I) {
    const int Old = Survivors[I];
    const int New = static_cast<int>(I);
    if (const double F = slowFactor(Old); F > 1.0)
      Out.addSlow(New, F);
    for (TransientFault T : transientsOn(Old)) {
      T.Channel = New;
      Out.addTransient(T);
    }
  }
  return Out;
}

std::string FaultModel::describe() const {
  std::string Out;
  auto Append = [&Out](const std::string &S) {
    if (!Out.empty())
      Out += ' ';
    Out += S;
  };
  for (int Ch : Dead)
    Append(formatStr("dead:%d", Ch));
  for (const ChannelOutage &O : Outages)
    // Windows are stored in ns but specified in us; chaosTimeline and the
    // parse grammar both keep them us-aligned, so this prints exactly.
    Append(formatStr("dead@%lld..%lld:%d",
                     static_cast<long long>(O.StartNs / 1000),
                     static_cast<long long>(O.EndNs / 1000), O.Channel));
  for (int Ch : Stalled)
    Append(formatStr("stall:%d", Ch));
  for (const auto &[Ch, F] : Slow)
    Append(formatStr("slow:%d:%.2f", Ch, F));
  for (const TransientFault &T : Transients)
    Append(formatStr("%s:%d:%lld:%d",
                     T.Kind == PimCmdKind::Comp ? "comp" : "readres",
                     T.Channel, static_cast<long long>(T.Ordinal), T.Fails));
  return Out.empty() ? "none" : Out;
}

namespace {

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= S.size()) {
    const size_t End = S.find(Sep, Start);
    if (End == std::string::npos) {
      Parts.push_back(S.substr(Start));
      break;
    }
    Parts.push_back(S.substr(Start, End - Start));
    Start = End + 1;
  }
  return Parts;
}

/// Strict double parse: the whole string must be a finite number.
std::optional<double> parseDoubleStrict(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  char *End = nullptr;
  const double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size())
    return std::nullopt;
  return V;
}

/// Parses an integer field of a fault entry into [Min, Max].
std::optional<int64_t> parseField(const std::string &Entry,
                                  const std::string &Field, int64_t Min,
                                  int64_t Max, DiagnosticEngine &DE) {
  const std::optional<int64_t> V = parseInt(Field);
  if (!V || *V < Min || *V > Max) {
    DE.error(DiagCode::FaultBadSpec, Entry,
             formatStr("field '%s' must be an integer in [%lld, %lld]",
                       Field.c_str(), static_cast<long long>(Min),
                       static_cast<long long>(Max)));
    return std::nullopt;
  }
  return V;
}

} // namespace

std::optional<FaultModel> FaultModel::parse(const std::string &Spec,
                                            DiagnosticEngine &DE) {
  FaultModel M;
  bool Ok = true;
  for (const std::string &Entry : splitOn(Spec, ',')) {
    if (Entry.empty())
      continue;
    const std::vector<std::string> F = splitOn(Entry, ':');
    const std::string &Kind = F[0];
    if (Kind.rfind("dead@", 0) == 0 && F.size() == 2) {
      // dead@<t1>..<t2>:<ch> — a windowed outage in virtual microseconds.
      const std::string Window = Kind.substr(5);
      const size_t Dots = Window.find("..");
      std::optional<int64_t> T1, T2;
      if (Dots != std::string::npos) {
        T1 = parseField(Entry, Window.substr(0, Dots), 0,
                        int64_t(1) << 40, DE);
        T2 = parseField(Entry, Window.substr(Dots + 2), 0,
                        int64_t(1) << 40, DE);
      } else {
        DE.error(DiagCode::FaultBadSpec, Entry,
                 "expected dead@<t1>..<t2>:<ch> (window in microseconds)");
      }
      const auto Ch =
          Dots != std::string::npos && T1 && T2
              ? parseField(Entry, F[1], 0, 4095, DE)
              : std::nullopt;
      if (!Ch || *T2 <= *T1) {
        if (Ch && T1 && T2 && *T2 <= *T1)
          DE.error(DiagCode::FaultBadSpec, Entry,
                   "outage window must satisfy t2 > t1");
        Ok = false;
        continue;
      }
      M.addOutage(ChannelOutage{static_cast<int>(*Ch), *T1 * 1000,
                                *T2 * 1000});
    } else if ((Kind == "dead" || Kind == "stall") && F.size() == 2) {
      const auto Ch = parseField(Entry, F[1], 0, 4095, DE);
      if (!Ch) {
        Ok = false;
        continue;
      }
      if (Kind == "dead")
        M.addDead(static_cast<int>(*Ch));
      else
        M.addStalled(static_cast<int>(*Ch));
    } else if (Kind == "slow" && F.size() == 3) {
      const auto Ch = parseField(Entry, F[1], 0, 4095, DE);
      const auto Mult = parseDoubleStrict(F[2]);
      if (!Ch || !Mult || *Mult < 1.0 || *Mult > 1e6) {
        if (Ch && (!Mult || *Mult < 1.0 || *Mult > 1e6))
          DE.error(DiagCode::FaultBadSpec, Entry,
                   "slow factor must be a number in [1, 1e6]");
        Ok = false;
        continue;
      }
      M.addSlow(static_cast<int>(*Ch), *Mult);
    } else if ((Kind == "comp" || Kind == "readres") && F.size() == 4) {
      const auto Ch = parseField(Entry, F[1], 0, 4095, DE);
      const auto Ord = parseField(Entry, F[2], 0, int64_t(1) << 40, DE);
      const auto Fails = parseField(Entry, F[3], 1, 1 << 20, DE);
      if (!Ch || !Ord || !Fails) {
        Ok = false;
        continue;
      }
      M.addTransient(TransientFault{
          static_cast<int>(*Ch),
          Kind == "comp" ? PimCmdKind::Comp : PimCmdKind::ReadRes, *Ord,
          static_cast<int>(*Fails)});
    } else {
      DE.error(DiagCode::FaultBadSpec, Entry,
               "expected dead:<ch>, dead@<t1>..<t2>:<ch>, stall:<ch>, "
               "slow:<ch>:<mult>, comp:<ch>:<ord>:<fails> or "
               "readres:<ch>:<ord>:<fails>");
      Ok = false;
    }
  }
  if (!Ok)
    return std::nullopt;
  return M;
}

FaultModel FaultModel::chaosTimeline(uint64_t Seed, int NumChannels,
                                     int64_t HorizonNs) {
  FaultModel M;
  if (NumChannels <= 0 || HorizonNs <= 0)
    return M;
  // A distinct stream from chaos(): the seed-pinned chaos() outputs must
  // not move when the timeline generator evolves.
  Rng R(Seed * 0x9E3779B97F4A7C15ull + 0xD15EA5Eull);
  const int64_t HorizonUs = std::max<int64_t>(1, HorizonNs / 1000);
  const int NumOutages = 1 + static_cast<int>(R.nextBelow(4));
  for (int I = 0; I < NumOutages; ++I) {
    const int Ch = static_cast<int>(
        R.nextBelow(static_cast<uint64_t>(NumChannels)));
    // Start anywhere in the horizon; last 5-30% of the remaining span so
    // every window both starts and (usually) ends inside the stream.
    const int64_t StartUs = static_cast<int64_t>(
        R.nextBelow(static_cast<uint64_t>(HorizonUs)));
    const int64_t Span = std::max<int64_t>(1, HorizonUs - StartUs);
    const int64_t DurUs = 1 + static_cast<int64_t>(R.nextBelow(
        static_cast<uint64_t>(std::max<int64_t>(1, (Span * 3) / 10))));
    M.addOutage(ChannelOutage{Ch, StartUs * 1000,
                              (StartUs + DurUs) * 1000});
  }
  return M;
}

FaultModel FaultModel::chaos(uint64_t Seed, int NumChannels) {
  FaultModel M;
  if (NumChannels <= 0)
    return M;
  Rng R(Seed * 0x9E3779B97F4A7C15ull + 0xC0FFEEull);
  const int NumFaults = 1 + static_cast<int>(R.nextBelow(3));
  for (int I = 0; I < NumFaults; ++I) {
    const int Ch = static_cast<int>(R.nextBelow(
        static_cast<uint64_t>(NumChannels)));
    switch (R.nextBelow(4)) {
    case 0:
      M.addDead(Ch);
      break;
    case 1:
      M.addSlow(Ch, 1.5 + R.nextDouble() * 6.0);
      break;
    case 2:
      M.addStalled(Ch);
      break;
    default:
      // Fails in [1, 5]: values above the default MaxRetries of 3 exercise
      // the retries-exhausted fallback path.
      M.addTransient(TransientFault{
          Ch, R.nextBelow(2) == 0 ? PimCmdKind::Comp : PimCmdKind::ReadRes,
          static_cast<int64_t>(R.nextBelow(64)),
          1 + static_cast<int>(R.nextBelow(5))});
      break;
    }
  }
  return M;
}
