//===- pim/PimSimulator.cpp - DRAM-PIM cycle simulator ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/PimSimulator.h"

#include <algorithm>

#include "obs/Counters.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"

using namespace pf;

namespace {

/// Sliding-window bucket width for per-channel completion metrics, in
/// simulated cycles (the registry's SimCycles clock).
constexpr int64_t ChannelCycleBucket = 1'000'000;

/// Streams one channel's completion into the telemetry registry: the
/// `pim.channel_cycles` quantile histogram plus its simulated-cycle
/// window, keyed by the logical cycle clock the simulator advances.
void recordChannelCycles(int64_t Cycles) {
  pf::obs::MetricsRegistry &M = pf::obs::activeMetrics();
  if (!M.enabled())
    return;
  M.advanceCycles(Cycles);
  pf::obs::recordMetricWindowed("pim.channel_cycles",
                                pf::obs::TickDomain::SimCycles,
                                ChannelCycleBucket, M.cycles(),
                                static_cast<double>(Cycles));
}

} // namespace

const char *pf::pimCmdName(PimCmdKind Kind) {
  switch (Kind) {
  case PimCmdKind::Gwrite:
    return "GWRITE";
  case PimCmdKind::Gwrite2:
    return "GWRITE_2";
  case PimCmdKind::Gwrite4:
    return "GWRITE_4";
  case PimCmdKind::GAct:
    return "G_ACT";
  case PimCmdKind::Comp:
    return "COMP";
  case PimCmdKind::ReadRes:
    return "READRES";
  }
  pf_unreachable("unknown PIM command kind");
}

namespace {

/// Per-channel timing state carried across commands.
struct ChannelState {
  int64_t FetchFree = 0;     ///< Fetch engine next-free cycle (GWRITE).
  int64_t BankFree = 0;      ///< Bank engine next-free cycle.
  int64_t LastGwriteDone = 0;
  int64_t LastGactDone = 0;
  int64_t LastCompDone = 0;
  int64_t Now = 0;           ///< Completion time of the latest command.

  /// Component-wise difference (per-iteration advance of each cursor).
  ChannelState minus(const ChannelState &Other) const {
    return ChannelState{FetchFree - Other.FetchFree,
                        BankFree - Other.BankFree,
                        LastGwriteDone - Other.LastGwriteDone,
                        LastGactDone - Other.LastGactDone,
                        LastCompDone - Other.LastCompDone,
                        Now - Other.Now};
  }

  /// Advances every cursor by \p Times iterations of \p Delta. The cursors
  /// may advance at *different* rates (e.g. the fetch engine falls behind
  /// a bank-bound pattern by a growing margin), so the shift is
  /// per-component.
  void advance(const ChannelState &Delta, int64_t Times) {
    FetchFree += Delta.FetchFree * Times;
    BankFree += Delta.BankFree * Times;
    LastGwriteDone += Delta.LastGwriteDone * Times;
    LastGactDone += Delta.LastGactDone * Times;
    LastCompDone += Delta.LastCompDone * Times;
    Now += Delta.Now * Times;
  }

  bool operator==(const ChannelState &) const = default;
};

/// Applies one command to \p S under \p C's timing rules.
void step(const PimConfig &C, ChannelState &S, const PimCommand &Cmd) {
  switch (Cmd.Kind) {
  case PimCmdKind::Gwrite:
  case PimCmdKind::Gwrite2:
  case PimCmdKind::Gwrite4: {
    const int64_t Buffers = Cmd.Kind == PimCmdKind::Gwrite    ? 1
                            : Cmd.Kind == PimCmdKind::Gwrite2 ? 2
                                                              : 4;
    const int64_t Bursts = Cmd.Count * Buffers;
    PF_ASSERT(Bursts >= 1, "GWRITE with no bursts");
    // First burst pays the cross-channel setup latency; the rest stream at
    // the column-to-column rate.
    const int64_t Duration = C.TGwrite + (Bursts - 1) * C.TCcdl;
    int64_t Start = S.FetchFree;
    if (!C.GwriteLatencyHiding)
      Start = std::max(Start, S.BankFree);
    const int64_t Done = Start + Duration;
    S.FetchFree = Done;
    S.LastGwriteDone = Done;
    if (!C.GwriteLatencyHiding)
      S.BankFree = Done; // Single serialized engine.
    S.Now = Done;
    return;
  }
  case PimCmdKind::GAct: {
    const int64_t Duration = C.TGact + (Cmd.Count - 1) * C.TRrd;
    int64_t Start = S.BankFree;
    if (!C.GwriteLatencyHiding)
      Start = std::max(Start, S.LastGwriteDone);
    const int64_t Done = Start + Duration;
    S.BankFree = Done;
    S.LastGactDone = Done;
    if (!C.GwriteLatencyHiding)
      S.FetchFree = Done;
    S.Now = Done;
    return;
  }
  case PimCmdKind::Comp: {
    // COMP consumes global-buffer data (GWRITE) against an open row
    // (G_ACT): it waits for both regardless of hiding.
    const int64_t Start = std::max({S.BankFree, S.LastGwriteDone,
                                    S.LastGactDone});
    const int64_t Done = Start + Cmd.Count * C.TComp;
    S.BankFree = Done;
    S.LastCompDone = Done;
    if (!C.GwriteLatencyHiding)
      S.FetchFree = Done;
    S.Now = Done;
    return;
  }
  case PimCmdKind::ReadRes: {
    const int64_t Duration = C.TReadRes + (Cmd.Count - 1) * C.TCcdl;
    const int64_t Start = std::max(S.BankFree, S.LastCompDone);
    const int64_t Done = Start + Duration;
    S.BankFree = Done;
    if (!C.GwriteLatencyHiding)
      S.FetchFree = Done;
    S.Now = Done;
    return;
  }
  }
  pf_unreachable("unknown PIM command kind");
}

/// Runs one iteration of \p Pattern.
void runPattern(const PimConfig &C, ChannelState &S,
                const std::vector<PimCommand> &Pattern) {
  for (const PimCommand &Cmd : Pattern)
    step(C, S, Cmd);
}

} // namespace

ChannelPhaseCycles &ChannelPhaseCycles::operator+=(const ChannelPhaseCycles &O) {
  GwriteCycles += O.GwriteCycles;
  GactCycles += O.GactCycles;
  CompCycles += O.CompCycles;
  ReadResCycles += O.ReadResCycles;
  RetryCycles += O.RetryCycles;
  StallCycles += O.StallCycles;
  CompletionCycles += O.CompletionCycles;
  return *this;
}

ChannelPhaseCycles pf::phaseCyclesOf(const PimConfig &Config,
                                     const ChannelTrace &Trace) {
  ChannelPhaseCycles P;
  for (const CommandBlock &B : Trace.Blocks) {
    if (B.Repeats <= 0)
      continue;
    for (const PimCommand &Cmd : B.Pattern) {
      // Durations mirror step() exactly; only start times depend on state.
      switch (Cmd.Kind) {
      case PimCmdKind::Gwrite:
      case PimCmdKind::Gwrite2:
      case PimCmdKind::Gwrite4: {
        const int64_t Buffers = Cmd.Kind == PimCmdKind::Gwrite    ? 1
                                : Cmd.Kind == PimCmdKind::Gwrite2 ? 2
                                                                  : 4;
        const int64_t Bursts = Cmd.Count * Buffers;
        P.GwriteCycles +=
            B.Repeats * (Config.TGwrite + (Bursts - 1) * Config.TCcdl);
        break;
      }
      case PimCmdKind::GAct:
        P.GactCycles +=
            B.Repeats * (Config.TGact + (Cmd.Count - 1) * Config.TRrd);
        break;
      case PimCmdKind::Comp:
        P.CompCycles += B.Repeats * Cmd.Count * Config.TComp;
        break;
      case PimCmdKind::ReadRes:
        P.ReadResCycles +=
            B.Repeats * (Config.TReadRes + (Cmd.Count - 1) * Config.TCcdl);
        break;
      }
    }
  }
  return P;
}

const char *pf::channelHealthName(ChannelHealth H) {
  switch (H) {
  case ChannelHealth::Ok:
    return "ok";
  case ChannelHealth::Degraded:
    return "degraded";
  case ChannelHealth::Dead:
    return "dead";
  case ChannelHealth::Stalled:
    return "stalled";
  case ChannelHealth::RetriesExhausted:
    return "retries-exhausted";
  }
  pf_unreachable("unknown channel health");
}

namespace {

/// Accumulates \p Channel's expanded command counts into \p Stats.
void accumulateCommands(const ChannelTrace &Channel, PimRunStats &Stats) {
  for (const CommandBlock &B : Channel.Blocks) {
    for (const PimCommand &Cmd : B.Pattern) {
      switch (Cmd.Kind) {
      case PimCmdKind::Gwrite:
        Stats.GwriteCmds += B.Repeats;
        Stats.GwriteBursts += B.Repeats * Cmd.Count;
        break;
      case PimCmdKind::Gwrite2:
        Stats.GwriteCmds += B.Repeats;
        Stats.GwriteBursts += B.Repeats * Cmd.Count * 2;
        break;
      case PimCmdKind::Gwrite4:
        Stats.GwriteCmds += B.Repeats;
        Stats.GwriteBursts += B.Repeats * Cmd.Count * 4;
        break;
      case PimCmdKind::GAct:
        Stats.GActs += B.Repeats * Cmd.Count;
        break;
      case PimCmdKind::Comp:
        Stats.CompCmds += B.Repeats;
        Stats.CompColumns += B.Repeats * Cmd.Count;
        break;
      case PimCmdKind::ReadRes:
        Stats.ReadResCmds += B.Repeats * Cmd.Count;
        break;
      }
    }
  }
}

bool isGwrite(PimCmdKind Kind) {
  return Kind == PimCmdKind::Gwrite || Kind == PimCmdKind::Gwrite2 ||
         Kind == PimCmdKind::Gwrite4;
}

/// Expanded command instances of \p Kind in \p Channel (COMP: one instance
/// per issued command; READRES: Count repetitions per command).
int64_t instancesOf(const ChannelTrace &Channel, PimCmdKind Kind) {
  int64_t N = 0;
  for (const CommandBlock &B : Channel.Blocks)
    for (const PimCommand &Cmd : B.Pattern) {
      if (Cmd.Kind != Kind)
        continue;
      N += Kind == PimCmdKind::Comp ? B.Repeats : B.Repeats * Cmd.Count;
    }
  return N;
}

bool hasGwrite(const ChannelTrace &Channel) {
  for (const CommandBlock &B : Channel.Blocks)
    for (const PimCommand &Cmd : B.Pattern)
      if (isGwrite(Cmd.Kind))
        return true;
  return false;
}

} // namespace

int64_t PimSimulator::simulateChannel(const ChannelTrace &Trace) const {
  ChannelState S;
  for (const CommandBlock &B : Trace.Blocks) {
    if (B.Pattern.empty() || B.Repeats <= 0)
      continue;
    // Iterate explicitly until the per-iteration advance of every cursor
    // repeats (the max-plus dynamics have reached their periodic regime),
    // then extrapolate the remaining iterations per component. This is
    // cycle-exact: once the full delta vector is stationary, every later
    // iteration advances each cursor by exactly that delta.
    ChannelState Prev = S;
    ChannelState PrevDelta;
    bool HaveDelta = false;
    int StableCount = 0;
    for (int64_t Iter = 0; Iter < B.Repeats; ++Iter) {
      runPattern(Config, S, B.Pattern);
      const ChannelState Delta = S.minus(Prev);
      StableCount = HaveDelta && Delta == PrevDelta ? StableCount + 1 : 0;
      if (StableCount >= 2) {
        S.advance(Delta, B.Repeats - Iter - 1);
        break;
      }
      Prev = S;
      PrevDelta = Delta;
      HaveDelta = true;
    }
  }
  return S.Now;
}

PimRunStats PimSimulator::run(const DeviceTrace &Trace) const {
  PimRunStats Stats;
  for (size_t ChIdx = 0; ChIdx < Trace.Channels.size(); ++ChIdx) {
    const ChannelTrace &Channel = Trace.Channels[ChIdx];
    if (Channel.empty())
      continue;
    const int64_t Cycles = simulateChannel(Channel);
    recordChannelCycles(Cycles);
    Stats.Cycles = std::max(Stats.Cycles, Cycles);
    Stats.BusyCycleSum += Cycles;
    ++Stats.ActiveChannels;
    accumulateCommands(Channel, Stats);
    ChannelPhaseCycles Phases = phaseCyclesOf(Config, Channel);
    Phases.Channel = static_cast<int>(ChIdx);
    Phases.CompletionCycles = Cycles;
    Stats.ChannelPhases.push_back(Phases);
  }
  Stats.Ns = Config.cyclesToNs(Stats.Cycles);
  // The GWRITE fetch traffic of all channels is supplied by the GPU channel
  // group through the memory network; its aggregate bandwidth lower-bounds
  // the kernel's duration.
  const double FetchBytes = static_cast<double>(Stats.GwriteBursts) *
                            static_cast<double>(Config.BurstBytes);
  const double FetchFloorNs = FetchBytes / (Config.FetchSupplyGBs * 1e9) * 1e9;
  if (FetchFloorNs > Stats.Ns) {
    Stats.Ns = FetchFloorNs;
    Stats.Cycles = static_cast<int64_t>(FetchFloorNs * Config.ClockGhz);
    obs::addCounter("pim.sim.fetch_floor_hits");
  }
  obs::addCounter("pim.sim.runs");
  obs::addCounter("pim.sim.channels_simulated", Stats.ActiveChannels);
  obs::addCounter("pim.sim.commands", Stats.GwriteCmds + Stats.GActs +
                                          Stats.CompCmds + Stats.ReadResCmds);
  return Stats;
}

FaultyRunStats PimSimulator::runWithFaults(const DeviceTrace &Trace,
                                           const FaultModel &Faults,
                                           const RetryPolicy &Retry) const {
  FaultyRunStats R;
  PimRunStats &Stats = R.Stats;
  for (size_t ChIdx = 0; ChIdx < Trace.Channels.size(); ++ChIdx) {
    const ChannelTrace &Channel = Trace.Channels[ChIdx];
    if (Channel.empty())
      continue;
    const int Ch = static_cast<int>(ChIdx);
    ChannelFaultOutcome O;
    O.Channel = Ch;
    ++Stats.ActiveChannels;
    accumulateCommands(Channel, Stats);
    ChannelPhaseCycles Phases;
    Phases.Channel = Ch;

    if (Faults.channelDead(Ch)) {
      // No progress at all: the channel's share of the kernel is lost.
      O.Health = ChannelHealth::Dead;
      obs::addCounter("pim.sim.dead_channel_hits");
      obs::flightEvent(obs::FlightEventKind::ChannelDead, 0, Ch);
      R.Outcomes.push_back(O);
      Stats.ChannelPhases.push_back(Phases);
      continue;
    }
    if (Faults.channelStalled(Ch) && hasGwrite(Channel)) {
      // The stalled GWRITE never completes; the per-command watchdog bounds
      // the loss so the makespan computation cannot hang. The whole bound
      // is attributed as stall time — the channel produced nothing usable.
      O.Health = ChannelHealth::Stalled;
      O.Cycles = Retry.WatchdogCycles;
      obs::addCounter("pim.sim.watchdog_trips");
      obs::flightEvent(obs::FlightEventKind::WatchdogTrip, Retry.WatchdogCycles,
                       Ch, -1,
                       static_cast<double>(Retry.WatchdogCycles));
      Stats.Cycles = std::max(Stats.Cycles, O.Cycles);
      Stats.BusyCycleSum += O.Cycles;
      R.Outcomes.push_back(O);
      Phases.StallCycles = Retry.WatchdogCycles;
      Phases.CompletionCycles = Retry.WatchdogCycles;
      Stats.ChannelPhases.push_back(Phases);
      continue;
    }

    int64_t Cycles = simulateChannel(Channel);
    Phases = phaseCyclesOf(Config, Channel);
    Phases.Channel = Ch;
    const double Slow = Faults.slowFactor(Ch);
    if (Slow > 1.0) {
      Cycles = static_cast<int64_t>(static_cast<double>(Cycles) * Slow);
      // A slow channel stretches every command uniformly, so each phase
      // bucket inflates by the same factor.
      for (int64_t *Bucket :
           {&Phases.GwriteCycles, &Phases.GactCycles, &Phases.CompCycles,
            &Phases.ReadResCycles})
        *Bucket = static_cast<int64_t>(static_cast<double>(*Bucket) * Slow);
      O.Health = ChannelHealth::Degraded;
      obs::addCounter("pim.sim.slow_channel_hits");
    }
    for (const TransientFault &T : Faults.transientsOn(Ch)) {
      if (T.Kind != PimCmdKind::Comp && T.Kind != PimCmdKind::ReadRes)
        continue;
      // Faults aimed past the end of the trace never fire.
      if (T.Ordinal >= instancesOf(Channel, T.Kind))
        continue;
      ++O.TransientFaults;
      const int64_t CmdCycles =
          T.Kind == PimCmdKind::Comp ? Config.TComp : Config.TReadRes;
      const int Attempts = std::min(T.Fails, Retry.MaxRetries);
      O.Retries += Attempts;
      const int64_t Extra = Retry.retryCostCycles(Attempts, CmdCycles);
      O.RetryCycles += Extra;
      Cycles += Extra;
      obs::addCounter("pim.sim.transient_faults");
      obs::addCounter("pim.sim.retries", Attempts);
      obs::flightEvent(obs::FlightEventKind::RetryIssued, Cycles, Ch, Attempts,
                       static_cast<double>(Extra), pimCmdName(T.Kind));
      // The backoff component is the retry cost beyond the plain re-issues.
      const int64_t Backoff = Extra - Attempts * CmdCycles;
      if (Backoff > 0)
        obs::flightEvent(obs::FlightEventKind::BackoffWait, Cycles, Ch,
                         Attempts, static_cast<double>(Backoff));
      obs::recordMetric("pim.retry_cost_cycles", static_cast<double>(Extra));
      if (T.Fails > Retry.MaxRetries)
        O.Health = ChannelHealth::RetriesExhausted;
      else if (O.Health == ChannelHealth::Ok)
        O.Health = ChannelHealth::Degraded;
    }
    O.Cycles = Cycles;
    R.TotalRetries += O.Retries;
    recordChannelCycles(Cycles);
    obs::flightEvent(obs::FlightEventKind::PhaseTransition, Cycles, Ch, -1,
                     static_cast<double>(Cycles),
                     channelHealthName(O.Health));
    Stats.Cycles = std::max(Stats.Cycles, Cycles);
    Stats.BusyCycleSum += Cycles;
    Phases.RetryCycles = O.RetryCycles;
    Phases.CompletionCycles = Cycles;
    Stats.ChannelPhases.push_back(Phases);
    R.Outcomes.push_back(O);
  }
  Stats.Ns = Config.cyclesToNs(Stats.Cycles);
  // Same fetch-supply floor as the fault-free path: retries do not add
  // GWRITE traffic, so the floor is unchanged.
  const double FetchBytes = static_cast<double>(Stats.GwriteBursts) *
                            static_cast<double>(Config.BurstBytes);
  const double FetchFloorNs = FetchBytes / (Config.FetchSupplyGBs * 1e9) * 1e9;
  if (FetchFloorNs > Stats.Ns) {
    Stats.Ns = FetchFloorNs;
    Stats.Cycles = static_cast<int64_t>(FetchFloorNs * Config.ClockGhz);
  }
  obs::addCounter("pim.sim.fault_runs");
  return R;
}

double PimSimulator::energyJ(const PimRunStats &Stats,
                             int64_t EffectiveMacs) const {
  double Pj = 0.0;
  Pj += static_cast<double>(Stats.GActs) * Config.ActEnergyPj;
  Pj += static_cast<double>(Stats.CompColumns) * Config.CompFixedPj;
  Pj += static_cast<double>(EffectiveMacs) * Config.MacEnergyPj;
  Pj += static_cast<double>(Stats.GwriteBursts) *
        static_cast<double>(Config.BurstBytes) * Config.GwriteEnergyPerBytePj;
  Pj += static_cast<double>(Stats.ReadResCmds) * Config.ReadResEnergyPj;
  // Static power of every PIM channel over the kernel's lifetime.
  const double StaticJ = Stats.Ns * 1e-9 * Config.StaticPowerWPerChannel *
                         static_cast<double>(Config.Channels);
  return Pj * 1e-12 + StaticJ;
}
