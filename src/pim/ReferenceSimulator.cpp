//===- pim/ReferenceSimulator.cpp - Validation-grade simulator --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "pim/ReferenceSimulator.h"

#include <algorithm>

#include "pim/TraceIO.h"

using namespace pf;

int64_t pf::referenceSimulateChannel(const PimConfig &C,
                                     const ChannelTrace &Trace) {
  // Explicit engine clocks. Without latency hiding the channel has one
  // serialized command engine; with hiding the fetch path (GWRITE) runs
  // beside the bank path (G_ACT / COMP / READRES).
  int64_t FetchClock = 0;
  int64_t BankClock = 0;
  int64_t GwriteDone = 0;
  int64_t GactDone = 0;
  int64_t CompDone = 0;
  int64_t Now = 0;

  auto Serialize = [&](int64_t Done) {
    if (!C.GwriteLatencyHiding) {
      FetchClock = Done;
      BankClock = Done;
    }
  };

  for (const PimCommand &Cmd : expandTrace(Trace)) {
    switch (Cmd.Kind) {
    case PimCmdKind::Gwrite:
    case PimCmdKind::Gwrite2:
    case PimCmdKind::Gwrite4: {
      const int64_t Buffers = Cmd.Kind == PimCmdKind::Gwrite    ? 1
                              : Cmd.Kind == PimCmdKind::Gwrite2 ? 2
                                                                : 4;
      int64_t T = C.GwriteLatencyHiding
                      ? FetchClock
                      : std::max(FetchClock, BankClock);
      // First burst pays the cross-channel setup; the rest stream.
      for (int64_t Burst = 0; Burst < Cmd.Count * Buffers; ++Burst)
        T += Burst == 0 ? C.TGwrite : C.TCcdl;
      FetchClock = T;
      GwriteDone = T;
      Serialize(T);
      Now = T;
      break;
    }
    case PimCmdKind::GAct: {
      int64_t T = BankClock;
      if (!C.GwriteLatencyHiding)
        T = std::max(T, GwriteDone);
      for (int64_t Act = 0; Act < Cmd.Count; ++Act)
        T += Act == 0 ? C.TGact : C.TRrd;
      BankClock = T;
      GactDone = T;
      Serialize(T);
      Now = T;
      break;
    }
    case PimCmdKind::Comp: {
      int64_t T = std::max({BankClock, GwriteDone, GactDone});
      for (int64_t Col = 0; Col < Cmd.Count; ++Col)
        T += C.TComp;
      BankClock = T;
      CompDone = T;
      Serialize(T);
      Now = T;
      break;
    }
    case PimCmdKind::ReadRes: {
      int64_t T = std::max(BankClock, CompDone);
      for (int64_t R = 0; R < Cmd.Count; ++R)
        T += R == 0 ? C.TReadRes : C.TCcdl;
      BankClock = T;
      Serialize(T);
      Now = T;
      break;
    }
    }
  }
  return Now;
}
