//===- pim/PimCommand.h - PIM command set and traces ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DRAM-PIM command set (GWRITE / GWRITE_2 / GWRITE_4 / G_ACT / COMP /
/// READRES) and the trace representation consumed by the cycle simulator.
///
/// Real layers issue millions of commands in perfectly periodic patterns
/// (one pattern per output-vector batch), so a trace is stored as a sequence
/// of CommandBlocks: a command pattern plus a repeat count. The simulator
/// computes the warm-up iteration exactly, measures the steady-state
/// iteration, and extrapolates — cycle-identical to unrolling for periodic
/// patterns while keeping traces compact.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PIM_PIMCOMMAND_H
#define PIMFLOW_PIM_PIMCOMMAND_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/Assert.h"

namespace pf {

/// DRAM-PIM command opcodes.
enum class PimCmdKind : uint8_t {
  Gwrite,   ///< Push input data into one global buffer.
  Gwrite2,  ///< Extended: fill two global buffers with one command.
  Gwrite4,  ///< Extended: fill four global buffers with one command.
  GAct,     ///< Activate the target row in all banks.
  Comp,     ///< One column I/O through every bank's MAC tree.
  ReadRes,  ///< Drain the per-bank result latches.
};

/// Returns the mnemonic for \p Kind.
const char *pimCmdName(PimCmdKind Kind);

/// One PIM command as scheduled to a channel.
struct PimCommand {
  PimCmdKind Kind = PimCmdKind::Comp;
  /// GWRITE*: number of 32B bursts carried (per buffer). COMP: number of
  /// back-to-back column computes this command stands for. READRES / G_ACT:
  /// number of consecutive repetitions.
  int64_t Count = 1;

  static PimCommand gwrite(int64_t Bursts, int Buffers) {
    PF_ASSERT(Buffers == 1 || Buffers == 2 || Buffers == 4,
              "GWRITE supports 1/2/4 buffers");
    PimCommand C;
    C.Kind = Buffers == 1   ? PimCmdKind::Gwrite
             : Buffers == 2 ? PimCmdKind::Gwrite2
                            : PimCmdKind::Gwrite4;
    C.Count = Bursts;
    return C;
  }
  static PimCommand gact(int64_t Repeats = 1) {
    return PimCommand{PimCmdKind::GAct, Repeats};
  }
  static PimCommand comp(int64_t Columns) {
    return PimCommand{PimCmdKind::Comp, Columns};
  }
  static PimCommand readRes(int64_t Repeats = 1) {
    return PimCommand{PimCmdKind::ReadRes, Repeats};
  }
};

/// A periodic block of commands: `Pattern` repeated `Repeats` times.
struct CommandBlock {
  std::vector<PimCommand> Pattern;
  int64_t Repeats = 1;
};

/// The command stream of one PIM channel.
struct ChannelTrace {
  std::vector<CommandBlock> Blocks;

  /// Total number of commands represented (after expansion).
  int64_t numCommands() const {
    int64_t N = 0;
    for (const CommandBlock &B : Blocks)
      N += B.Repeats * static_cast<int64_t>(B.Pattern.size());
    return N;
  }

  bool empty() const { return Blocks.empty(); }
};

/// The command streams of every channel of the device for one PIM kernel.
struct DeviceTrace {
  std::vector<ChannelTrace> Channels;

  explicit DeviceTrace(int NumChannels = 0) : Channels(NumChannels) {}

  /// Channels with at least one command.
  int numActiveChannels() const {
    int N = 0;
    for (const ChannelTrace &C : Channels)
      N += C.empty() ? 0 : 1;
    return N;
  }
};

} // namespace pf

#endif // PIMFLOW_PIM_PIMCOMMAND_H
