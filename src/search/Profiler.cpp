//===- search/Profiler.cpp - Candidate profiling ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/Profiler.h"

#include <algorithm>
#include <cstdio>

#include "obs/Counters.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "search/LayerExtract.h"
#include "support/Format.h"
#include "support/StringUtil.h"
#include "transform/MdDpSplitPass.h"
#include "transform/PipelinePass.h"

using namespace pf;

namespace {

/// The candidate layer plus its trailing elementwise epilogue (if any):
/// when the layer stays on the GPU the epilogue fuses for free, but an
/// offloaded layer turns it into a standalone GPU kernel. Profiling the
/// pair makes the samples price that asymmetry.
std::vector<NodeId> withEpilogue(const Graph &G, NodeId Id) {
  std::vector<NodeId> Chain = {Id};
  const ValueId Out = G.node(Id).Outputs[0];
  const std::vector<NodeId> Users = G.consumers(Out);
  if (Users.size() != 1)
    return Chain;
  const Node &U = G.node(Users[0]);
  switch (U.Kind) {
  case OpKind::Relu:
  case OpKind::Relu6:
  case OpKind::Sigmoid:
  case OpKind::SiLU:
  case OpKind::Tanh:
  case OpKind::Gelu:
    if (U.Inputs[0] == Out)
      Chain.push_back(U.Id);
    break;
  default:
    break;
  }
  return Chain;
}

} // namespace

Profiler::Profiler(const SystemConfig &Config)
    : Config(Config), Engine(Config) {
  ConfigSig = formatStr(
      "gc%d/bw%.1f/pc%d/gb%d/lh%d/sg%d/gr%d/mo%d",
      Config.Gpu.MemChannels, Config.Gpu.ChannelBandwidthGBs,
      Config.Pim.Channels, Config.Pim.NumGlobalBuffers,
      Config.Pim.GwriteLatencyHiding ? 1 : 0,
      Config.Codegen.StridedGwrite ? 1 : 0,
      static_cast<int>(Config.Codegen.MaxGranularity),
      Config.MemoryOptimizer ? 1 : 0);
}

std::string Profiler::signature(const Graph &G,
                                const std::vector<NodeId> &Chain,
                                const std::string &Mode) const {
  std::string Sig = ConfigSig + "|" + Mode + "|";
  for (NodeId Id : Chain) {
    const Node &N = G.node(Id);
    Sig += opKindName(N.Kind);
    if (N.Kind == OpKind::Conv2d) {
      const Conv2dAttrs &A = N.conv();
      Sig += formatStr("[k%lld.%lld s%lld.%lld p%lld.%lld.%lld.%lld g%lld]",
                       static_cast<long long>(A.KernelH),
                       static_cast<long long>(A.KernelW),
                       static_cast<long long>(A.StrideH),
                       static_cast<long long>(A.StrideW),
                       static_cast<long long>(A.PadTop),
                       static_cast<long long>(A.PadBottom),
                       static_cast<long long>(A.PadLeft),
                       static_cast<long long>(A.PadRight),
                       static_cast<long long>(A.Groups));
    }
    for (ValueId In : N.Inputs)
      Sig += G.value(In).Shape.toString();
    Sig += "->";
    Sig += G.value(N.Outputs[0]).Shape.toString();
    Sig += ';';
  }
  return Sig;
}

Profiler::Shard &Profiler::shardFor(const std::string &Key) {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

double Profiler::measure(const std::string &Key,
                         const std::function<double()> &Compute) {
  Shard &S = shardFor(Key);
  std::shared_ptr<Entry> E;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      E = std::make_shared<Entry>();
      S.Map.emplace(Key, E);
      Owner = true;
    } else {
      E = It->second;
    }
  }

  if (!Owner) {
    // Completed or in flight: either way this thread does not simulate, so
    // the hit/miss totals match the serial sweep for any worker count.
    Hits.fetch_add(1, std::memory_order_relaxed);
    obs::addCounter("profiler.cache_hits");
    obs::flightEvent(obs::FlightEventKind::CacheHit, 0,
                     static_cast<int32_t>(std::hash<std::string>{}(Key) %
                                          NumShards));
    const double Ns = E->Ready.load(std::memory_order_acquire)
                          ? E->Ns
                          : (obs::addCounter("profiler.single_flight_waits"),
                             E->Result.get());
    // Hits feed the same profile-latency distribution as fresh measures:
    // the simulated latency is deterministic and identical either way, so
    // the histogram describes the candidates this run evaluated no matter
    // how warm the cache was.
    if (Ns >= 0.0)
      obs::recordMetricWindowed("profiler.profile_sim_ns",
                                obs::TickDomain::WallUs,
                                /*BucketWidth=*/100'000,
                                static_cast<int64_t>(
                                    obs::Tracer::instance().nowUs()),
                                Ns);
    return Ns;
  }

  Misses.fetch_add(1, std::memory_order_relaxed);
  obs::addCounter("profiler.cache_misses");
  const bool Observed = obs::activeRegistry().enabled();
  const double StartUs = Observed ? obs::Tracer::instance().nowUs() : 0.0;
  double Ns;
  try {
    PF_TRACE_SCOPE_CAT("profiler.measure", "profile");
    Ns = Compute();
  } catch (...) {
    // Withdraw the slot so a later call can retry, and wake any waiters
    // with the failure.
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Map.erase(Key);
    }
    E->Done.set_exception(std::current_exception());
    throw;
  }
  if (Observed)
    obs::recordHistogram("profiler.measure_wall_us",
                         obs::Tracer::instance().nowUs() - StartUs);
  // Per-candidate profile latency in *simulated* nanoseconds: the
  // deterministic tail-latency distribution the bench baselines gate on
  // (wall time stays in the plain histogram above). Failed pipeline
  // probes return a negative sentinel and are not latencies.
  if (Ns >= 0.0)
    obs::recordMetricWindowed("profiler.profile_sim_ns",
                              obs::TickDomain::WallUs,
                              /*BucketWidth=*/100'000,
                              static_cast<int64_t>(
                                  obs::Tracer::instance().nowUs()),
                              Ns);
  obs::flightEvent(obs::FlightEventKind::CacheMiss, 0,
                   static_cast<int32_t>(std::hash<std::string>{}(Key) %
                                        NumShards),
                   -1, Ns);
  E->Ns = Ns;
  E->Ready.store(true, std::memory_order_release);
  E->Done.set_value(Ns);
  return Ns;
}

double Profiler::gpuNodeNs(const Graph &G, NodeId Id) {
  const std::vector<NodeId> Chain = withEpilogue(G, Id);
  return measure(signature(G, Chain, "gpu"), [&] {
    ExtractedGraph Micro = extractChain(G, Chain);
    Micro.G.node(Micro.Nodes[0]).Dev = Device::Gpu;
    return Engine.execute(Micro.G).TotalNs;
  });
}

double Profiler::pimNodeNs(const Graph &G, NodeId Id) {
  PF_ASSERT(Config.hasPim(), "PIM profiling without PIM channels");
  const std::vector<NodeId> Chain = withEpilogue(G, Id);
  return measure(signature(G, Chain, "pim"), [&] {
    ExtractedGraph Micro = extractChain(G, Chain);
    Micro.G.node(Micro.Nodes[0]).Dev = Device::Pim;
    return Engine.execute(Micro.G).TotalNs;
  });
}

double Profiler::mdDpNs(const Graph &G, NodeId Id, double RatioGpu) {
  if (RatioGpu <= 0.0)
    return pimNodeNs(G, Id);
  if (RatioGpu >= 1.0)
    return gpuNodeNs(G, Id);
  const std::string Mode = formatStr("mddp%.2f", RatioGpu);
  const std::vector<NodeId> Chain = withEpilogue(G, Id);
  return measure(signature(G, Chain, Mode), [&] {
    ExtractedGraph Micro = extractChain(G, Chain);
    auto Result = applyMdDpSplit(Micro.G, Micro.Nodes[0], RatioGpu);
    // A degenerate ratio (rounds to 0/1) annotated the node instead.
    (void)Result;
    return Engine.execute(Micro.G).TotalNs;
  });
}

double Profiler::pipelineNs(const Graph &G, const std::vector<NodeId> &Chain,
                            int Stages) {
  const std::string Mode = formatStr("pipe%d", Stages);
  return measure(signature(G, Chain, Mode), [&]() -> double {
    ExtractedGraph Micro = extractChain(G, Chain);
    PipelineSpec Spec;
    Spec.Chain = Micro.Nodes;
    Spec.NumStages = Stages;
    if (!applyPipeline(Micro.G, Spec))
      return -1.0;
    return Engine.execute(Micro.G).TotalNs;
  });
}

double Profiler::chainGpuNs(const Graph &G,
                            const std::vector<NodeId> &Chain) {
  double Total = 0.0;
  for (NodeId Id : Chain)
    Total += gpuNodeNs(G, Id);
  return Total;
}

bool Profiler::saveCache(const std::string &Path) const {
  // Collect only resolved entries (an in-flight measurement mid-save would
  // mean saveCache raced the pre-pass; callers save after search returns).
  std::vector<std::pair<std::string, double>> Rows;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Key, E] : S.Map)
      if (E->Ready.load(std::memory_order_acquire))
        Rows.emplace_back(Key, E->Ns);
  }
  std::sort(Rows.begin(), Rows.end());
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  // %.17g round-trips doubles exactly through strtod, so a search resumed
  // from the cache produces bit-identical plans (and byte-identical plan
  // artifacts) to one that measured everything itself.
  for (const auto &[Key, Ns] : Rows)
    std::fprintf(F, "%s\t%.17g\n", Key.c_str(), Ns);
  std::fclose(F);
  return true;
}

bool Profiler::loadCache(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  char Line[4096];
  while (std::fgets(Line, sizeof(Line), F)) {
    std::string S = trim(Line);
    const size_t Tab = S.rfind('\t');
    if (Tab == std::string::npos)
      continue;
    std::string Key = S.substr(0, Tab);
    auto E = std::make_shared<Entry>();
    E->Ns = std::atof(S.c_str() + Tab + 1);
    E->Ready.store(true, std::memory_order_release);
    E->Done.set_value(E->Ns);
    Shard &Sh = shardFor(Key);
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    Sh.Map[Key] = std::move(E);
  }
  std::fclose(F);
  return true;
}
