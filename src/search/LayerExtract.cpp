//===- search/LayerExtract.cpp - Profiling micrograph extraction -*- C++ -*-==//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/LayerExtract.h"

#include <unordered_map>

#include "ir/ShapeInference.h"

using namespace pf;

ExtractedGraph pf::extractChain(const Graph &Src,
                                const std::vector<NodeId> &Chain) {
  PF_ASSERT(!Chain.empty(), "extracting an empty chain");
  ExtractedGraph Out;
  Graph &G = Out.G;
  G.setName(Src.name() + ".micro");

  std::unordered_map<ValueId, ValueId> ValueMap;
  std::vector<ValueId> GraphInputs;

  // Non-parameter inputs are staged through a zero-cost GPU-resident
  // Identity node: in the full model the layer's activations live in GPU
  // memory, so an offloaded micrograph must pay the same GPU<->PIM handoff
  // the execution engine would charge in situ.
  auto MapInput = [&](ValueId SrcId) {
    auto It = ValueMap.find(SrcId);
    if (It != ValueMap.end())
      return It->second;
    const Value &V = Src.value(SrcId);
    ValueId NewId;
    if (V.IsParam) {
      NewId = G.addParam(V.Name, V.Shape, V.Type);
    } else {
      ValueId InId = G.addValue(V.Name + ".src", V.Shape, V.Type);
      GraphInputs.push_back(InId);
      NewId = G.addValue(V.Name, V.Shape, V.Type);
      NodeId Stage = G.addNode(OpKind::Identity, V.Name + ".stage",
                               std::monostate{}, {InId}, {NewId});
      G.node(Stage).Dev = Device::Gpu;
    }
    ValueMap.emplace(SrcId, NewId);
    return NewId;
  };

  for (size_t I = 0; I < Chain.size(); ++I) {
    const Node &N = Src.node(Chain[I]);
    PF_ASSERT(!N.Dead, "extracting a dead node");
    std::vector<ValueId> Inputs;
    Inputs.reserve(N.Inputs.size());
    for (size_t J = 0; J < N.Inputs.size(); ++J) {
      if (I > 0 && J == 0) {
        // Chain dataflow edge.
        PF_ASSERT(N.Inputs[0] == Src.node(Chain[I - 1]).Outputs[0],
                  "chain nodes are not connected");
        Inputs.push_back(ValueMap.at(N.Inputs[0]));
        continue;
      }
      Inputs.push_back(MapInput(N.Inputs[J]));
    }
    const Value &OutV = Src.value(N.Outputs[0]);
    ValueId NewOut = G.addValue(OutV.Name, OutV.Shape, OutV.Type);
    ValueMap.emplace(N.Outputs[0], NewOut);
    NodeId NewNode = G.addNode(N.Kind, N.Name, N.Attrs, std::move(Inputs),
                               {NewOut});
    Out.Nodes.push_back(NewNode);
  }

  // Stage the chain output back into GPU memory as well (downstream
  // consumers — activations, pooling — run on the GPU).
  const ValueId ChainOut = ValueMap.at(Src.node(Chain.back()).Outputs[0]);
  ValueId Sink = G.addValue(G.value(ChainOut).Name + ".sink",
                            G.value(ChainOut).Shape, G.value(ChainOut).Type);
  NodeId SinkNode = G.addNode(OpKind::Identity, "sink", std::monostate{},
                              {ChainOut}, {Sink});
  G.node(SinkNode).Dev = Device::Gpu;

  G.setGraphInputs(std::move(GraphInputs));
  G.setGraphOutputs({Sink});
  auto Err = inferShapes(G);
  PF_ASSERT(!Err, "extracted micrograph fails shape inference");
  auto VErr = G.validate();
  PF_ASSERT(!VErr, "extracted micrograph fails validation");
  return Out;
}

ExtractedGraph pf::extractLayer(const Graph &Src, NodeId Id) {
  return extractChain(Src, {Id});
}
