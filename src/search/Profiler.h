//===- search/Profiler.h - Candidate profiling ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware-measurement-based profiling for the execution-mode and
/// task-size search (Section 4.2.2): every candidate configuration — a
/// layer at a GPU/PIM split ratio, or a pipelined chain — is extracted into
/// a micrograph, transformed, and timed on the simulated system.
///
/// Results are memoized by a structural signature (layer shapes, attributes,
/// mode, and system configuration), mirroring the artifact's metadata log
/// of profiling results: mobile CNNs repeat identical blocks many times, so
/// the cache removes most of the (simulated-)hardware measurement cost.
///
/// The memo table is thread-safe and single-flight: the search's candidate
/// pre-pass (SearchOptions::Jobs > 1) profiles from a worker pool, and two
/// workers racing on the same signature resolve to one simulation — the
/// loser waits for the winner's result instead of re-measuring, so
/// cacheHits()/cacheMisses() are identical for every worker count.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SEARCH_PROFILER_H
#define PIMFLOW_SEARCH_PROFILER_H

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/ExecutionEngine.h"
#include "runtime/SystemConfig.h"
#include "search/CostProvider.h"

namespace pf {

/// Profiles candidate execution modes on a fixed system configuration.
class Profiler : public CostProvider {
public:
  explicit Profiler(const SystemConfig &Config);

  const SystemConfig &config() const override { return Config; }

  /// GPU-only time of node \p Id (the ratio-1.0 sample).
  double gpuNodeNs(const Graph &G, NodeId Id) override;

  /// Full-offload time of node \p Id on PIM, including handoffs (the
  /// ratio-0.0 sample).
  double pimNodeNs(const Graph &G, NodeId Id) override;

  /// MD-DP time of node \p Id at \p RatioGpu (fraction of work on GPU).
  double mdDpNs(const Graph &G, NodeId Id, double RatioGpu) override;

  /// Pipelined time of \p Chain with \p Stages stages. Returns a negative
  /// value when the chain cannot be pipelined at this stage count.
  double pipelineNs(const Graph &G, const std::vector<NodeId> &Chain,
                    int Stages) override;

  /// Sum of per-node GPU times of \p Chain (the chain's baseline).
  double chainGpuNs(const Graph &G, const std::vector<NodeId> &Chain);

  size_t cacheHits() const { return Hits.load(std::memory_order_relaxed); }
  size_t cacheMisses() const {
    return Misses.load(std::memory_order_relaxed);
  }

  /// Serializes the memo table to \p Path ("signature<TAB>ns" lines,
  /// sorted by signature so the file is byte-identical for every worker
  /// count).
  bool saveCache(const std::string &Path) const;
  /// Loads a memo table previously written by saveCache.
  bool loadCache(const std::string &Path);

private:
  /// One memo slot. The owner (the thread that inserted the slot) runs the
  /// simulation and publishes through Result; every other thread that finds
  /// the slot counts a cache hit and, if the measurement is still in
  /// flight, blocks on the shared future.
  struct Entry {
    Entry() : Result(Done.get_future().share()) {}
    std::atomic<bool> Ready{false};
    double Ns = 0.0;
    std::promise<double> Done;
    std::shared_future<double> Result;
  };

  /// A shard of the memo table. Sharding by signature hash keeps the
  /// insert/lookup critical sections short under a concurrent pre-pass;
  /// the simulation itself always runs outside the shard lock.
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> Map;
  };
  static constexpr size_t NumShards = 16;

  Shard &shardFor(const std::string &Key);

  /// Structural signature of a chain under this config.
  std::string signature(const Graph &G, const std::vector<NodeId> &Chain,
                        const std::string &Mode) const;

  /// Memoized, single-flight micrograph measurement.
  double measure(const std::string &Key,
                 const std::function<double()> &Compute);

  SystemConfig Config;
  ExecutionEngine Engine;
  std::string ConfigSig;
  Shard Shards[NumShards];
  std::atomic<size_t> Hits{0};
  std::atomic<size_t> Misses{0};
};

} // namespace pf

#endif // PIMFLOW_SEARCH_PROFILER_H
