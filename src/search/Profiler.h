//===- search/Profiler.h - Candidate profiling ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware-measurement-based profiling for the execution-mode and
/// task-size search (Section 4.2.2): every candidate configuration — a
/// layer at a GPU/PIM split ratio, or a pipelined chain — is extracted into
/// a micrograph, transformed, and timed on the simulated system.
///
/// Results are memoized by a structural signature (layer shapes, attributes,
/// mode, and system configuration), mirroring the artifact's metadata log
/// of profiling results: mobile CNNs repeat identical blocks many times, so
/// the cache removes most of the (simulated-)hardware measurement cost.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SEARCH_PROFILER_H
#define PIMFLOW_SEARCH_PROFILER_H

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/ExecutionEngine.h"
#include "runtime/SystemConfig.h"
#include "search/CostProvider.h"

namespace pf {

/// Profiles candidate execution modes on a fixed system configuration.
class Profiler : public CostProvider {
public:
  explicit Profiler(const SystemConfig &Config);

  const SystemConfig &config() const override { return Config; }

  /// GPU-only time of node \p Id (the ratio-1.0 sample).
  double gpuNodeNs(const Graph &G, NodeId Id) override;

  /// Full-offload time of node \p Id on PIM, including handoffs (the
  /// ratio-0.0 sample).
  double pimNodeNs(const Graph &G, NodeId Id) override;

  /// MD-DP time of node \p Id at \p RatioGpu (fraction of work on GPU).
  double mdDpNs(const Graph &G, NodeId Id, double RatioGpu) override;

  /// Pipelined time of \p Chain with \p Stages stages. Returns a negative
  /// value when the chain cannot be pipelined at this stage count.
  double pipelineNs(const Graph &G, const std::vector<NodeId> &Chain,
                    int Stages) override;

  /// Sum of per-node GPU times of \p Chain (the chain's baseline).
  double chainGpuNs(const Graph &G, const std::vector<NodeId> &Chain);

  size_t cacheHits() const { return Hits; }
  size_t cacheMisses() const { return Misses; }

  /// Serializes the memo table to \p Path ("signature<TAB>ns" lines).
  bool saveCache(const std::string &Path) const;
  /// Loads a memo table previously written by saveCache.
  bool loadCache(const std::string &Path);

private:
  /// Structural signature of a chain under this config.
  std::string signature(const Graph &G, const std::vector<NodeId> &Chain,
                        const std::string &Mode) const;

  /// Memoized micrograph measurement.
  double measure(const std::string &Key,
                 const std::function<double()> &Compute);

  SystemConfig Config;
  ExecutionEngine Engine;
  std::string ConfigSig;
  std::unordered_map<std::string, double> Cache;
  size_t Hits = 0;
  size_t Misses = 0;
};

} // namespace pf

#endif // PIMFLOW_SEARCH_PROFILER_H
