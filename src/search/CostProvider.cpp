//===- search/CostProvider.cpp - Search cost abstraction --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/CostProvider.h"

using namespace pf;

// Out-of-line virtual anchor.
CostProvider::~CostProvider() = default;
