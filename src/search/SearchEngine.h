//===- search/SearchEngine.h - Execution mode & task size search -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1: the execution-mode and task-size search. Every PIM-candidate
/// layer is profiled at 10% GPU/PIM split-ratio intervals (including the
/// full-GPU and full-PIM endpoints); every matched pipelining subgraph is
/// profiled at the configured stage count; and a dynamic program over the
/// topologically sorted node sequence picks the optimal covering of the
/// graph by {GPU, full-offload, MD-DP, pipelined} segments.
///
/// The mechanism variants of the evaluation restrict the option set:
/// Newton+/Newton++ choose only between full GPU and full PIM per node,
/// PIMFlow-md adds the split ratios, PIMFlow-pl adds pipelining instead,
/// and PIMFlow allows everything.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SEARCH_SEARCHENGINE_H
#define PIMFLOW_SEARCH_SEARCHENGINE_H

#include <vector>

#include "search/CostProvider.h"
#include "search/Profiler.h"
#include "transform/PatternMatch.h"

namespace pf {

/// How one segment of the node sequence executes.
enum class SegmentMode : uint8_t {
  GpuNode,  ///< Single node, GPU.
  FullPim,  ///< Single node fully offloaded to PIM.
  MdDp,     ///< Single node split across GPU and PIM.
  Pipeline, ///< A chain executed as pipeline stages.
};

/// Returns "gpu"/"pim"/"md-dp"/"pipeline".
const char *segmentModeName(SegmentMode M);

/// One chosen segment.
struct SegmentPlan {
  SegmentMode Mode = SegmentMode::GpuNode;
  std::vector<NodeId> Nodes;
  /// MD-DP: chosen fraction of work on the GPU (0.1 .. 0.9).
  double RatioGpu = 1.0;
  /// Pipeline: stage count and matched pattern.
  int Stages = 2;
  PipelinePattern Pattern = PipelinePattern::PwDw;
  /// Profiled time of this segment in isolation.
  double PredictedNs = 0.0;
};

/// Per-candidate-layer profile, kept for the evaluation's layerwise
/// breakdowns (Fig. 10) and the ratio distribution (Table 2).
struct LayerProfile {
  NodeId Id = InvalidNode;
  double GpuNs = 0.0;
  double PimNs = 0.0;
  double BestMdDpNs = 0.0;
  double BestRatioGpu = 1.0; ///< Over the profiled 10% grid.
};

/// One profiled option of a node (search explainability): what the
/// candidate-profiling pre-pass measured before the DP chose.
struct CandidateOption {
  SegmentMode Mode = SegmentMode::GpuNode;
  /// MD-DP candidates: the sampled GPU fraction.
  double RatioGpu = 1.0;
  /// Profiled time of the node under this option, in isolation.
  double Ns = 0.0;
};

/// Per-node record of everything the search considered and what the DP
/// chose — the raw material of the perf report's `decisions` array.
struct SearchDecision {
  NodeId Id = InvalidNode;
  /// The node was a PIM-offloading candidate (profiled beyond GPU-only).
  bool PimCandidate = false;
  /// Every option profiled for this node (GPU first, then full-PIM, then
  /// the MD-DP ratio grid in sweep order). Non-candidates have only the
  /// GPU entry.
  std::vector<CandidateOption> Candidates;
  /// What the DP's segment covering assigned to this node.
  SegmentMode ChosenMode = SegmentMode::GpuNode;
  double ChosenRatioGpu = 1.0;
  /// The chosen option's time share for this node (a pipeline segment's
  /// time is split over its chain proportionally to GPU-baseline times,
  /// the same attribution rule the CONV-layer metric uses).
  double ChosenNs = 0.0;
  /// The GPU-only reference cost.
  double GpuOnlyNs = 0.0;

  /// Marginal gain of the chosen option vs. running this node on the GPU
  /// (positive when the DP found something faster).
  double gainNs() const { return GpuOnlyNs - ChosenNs; }
};

/// The search result.
struct ExecutionPlan {
  std::vector<SegmentPlan> Segments;
  std::vector<LayerProfile> Layers;
  /// One decision record per covered node, in topological order.
  std::vector<SearchDecision> Decisions;
  /// DP objective: sum of profiled segment times.
  double PredictedNs = 0.0;
};

/// Option set available to the search (mechanism-dependent).
struct SearchOptions {
  /// Permit MD-DP splits at the interior ratios (0.1 .. 0.9).
  bool AllowSplit = true;
  /// Permit pipelined subgraphs.
  bool AllowPipeline = true;
  /// Permit full offloading of a node to PIM.
  bool AllowFullOffload = true;
  /// Pipeline stage count.
  int PipelineStages = 2;
  /// Split-ratio grid step (the paper uses 10%; Section 5's footnote notes
  /// 2% gains only ~1%).
  double RatioStep = 0.1;
  /// The paper's future-work auto-tuning: after the coarse grid sweep,
  /// locally refine the best ratio at RefinedStep granularity (one extra
  /// round of samples around the coarse optimum instead of a full fine
  /// grid).
  bool RefineRatios = false;
  double RefinedStep = 0.02;
  /// Worker threads for the candidate-profiling pre-pass: 1 (default)
  /// profiles serially on the caller, 0 uses every hardware thread, N > 1
  /// uses N workers. The chosen plan, its costs, and the profiler's
  /// hit/miss totals are identical for every value; only wall-clock time
  /// changes (see docs/INTERNALS.md section 7).
  int Jobs = 1;
};

/// Algorithm 1 driver.
class SearchEngine {
public:
  SearchEngine(CostProvider &P, SearchOptions Options)
      : Prof(P), Options(Options) {}

  /// Runs the search over \p G (not modified).
  ExecutionPlan search(const Graph &G);

  /// Applies \p Plan to \p G in place: annotates devices and runs the
  /// MD-DP / pipelining passes. \p Plan must have been computed on \p G.
  static void apply(Graph &G, const ExecutionPlan &Plan);

private:
  CostProvider &Prof;
  SearchOptions Options;
};

} // namespace pf

#endif // PIMFLOW_SEARCH_SEARCHENGINE_H
