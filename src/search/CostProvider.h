//===- search/CostProvider.h - Search cost abstraction ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost oracle Algorithm 1 searches over. The production implementation
/// is Profiler (simulated hardware measurement with memoization); tests
/// substitute stub providers to pin the dynamic program's decisions against
/// hand-constructed cost landscapes.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SEARCH_COSTPROVIDER_H
#define PIMFLOW_SEARCH_COSTPROVIDER_H

#include <vector>

#include "ir/Graph.h"
#include "runtime/SystemConfig.h"

namespace pf {

/// Costs of the execution-mode options for graph nodes and chains.
class CostProvider {
public:
  virtual ~CostProvider();

  /// The system configuration the costs describe (the search consults
  /// hasPim()).
  virtual const SystemConfig &config() const = 0;

  /// GPU-only time of node \p Id (the ratio-1.0 sample).
  virtual double gpuNodeNs(const Graph &G, NodeId Id) = 0;

  /// Full-offload time of node \p Id (the ratio-0.0 sample).
  virtual double pimNodeNs(const Graph &G, NodeId Id) = 0;

  /// MD-DP time at \p RatioGpu in [0, 1].
  virtual double mdDpNs(const Graph &G, NodeId Id, double RatioGpu) = 0;

  /// Pipelined time of \p Chain with \p Stages stages; negative when the
  /// chain cannot be pipelined at that stage count.
  virtual double pipelineNs(const Graph &G,
                            const std::vector<NodeId> &Chain,
                            int Stages) = 0;
};

} // namespace pf

#endif // PIMFLOW_SEARCH_COSTPROVIDER_H
