//===- search/LayerExtract.h - Profiling micrograph extraction --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts single layers and linear chains into standalone micrographs for
/// hardware-measurement-based profiling (Section 4.2.2): the search engine
/// transforms and times these in isolation, exactly as the artifact's
/// profiling step runs each candidate through the simulators.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SEARCH_LAYEREXTRACT_H
#define PIMFLOW_SEARCH_LAYEREXTRACT_H

#include <vector>

#include "ir/Graph.h"

namespace pf {

/// A micrograph plus the ids of the cloned chain nodes inside it.
struct ExtractedGraph {
  Graph G{"micro"};
  std::vector<NodeId> Nodes;
};

/// Clones node \p Id of \p Src into a fresh graph whose inputs are the
/// node's non-parameter inputs; parameters are recreated with identical
/// shapes.
ExtractedGraph extractLayer(const Graph &Src, NodeId Id);

/// Clones a linear chain (node i's first input is node i-1's output; other
/// inputs must be parameters) into a fresh graph.
ExtractedGraph extractChain(const Graph &Src,
                            const std::vector<NodeId> &Chain);

} // namespace pf

#endif // PIMFLOW_SEARCH_LAYEREXTRACT_H
