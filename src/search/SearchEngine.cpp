//===- search/SearchEngine.cpp - Execution mode & task size search -------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/SearchEngine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "ir/Verifier.h"
#include "obs/Counters.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"
#include "transform/MdDpSplitPass.h"
#include "transform/PipelinePass.h"

using namespace pf;

const char *pf::segmentModeName(SegmentMode M) {
  switch (M) {
  case SegmentMode::GpuNode:
    return "gpu";
  case SegmentMode::FullPim:
    return "pim";
  case SegmentMode::MdDp:
    return "md-dp";
  case SegmentMode::Pipeline:
    return "pipeline";
  }
  pf_unreachable("unknown segment mode");
}

ExecutionPlan SearchEngine::search(const Graph &G) {
  PF_TRACE_SCOPE_CAT("search", "search");
  const std::vector<NodeId> Seq = G.topoOrder();
  const size_t N = Seq.size();
  // Range hint (also calms GCC's alloc-size analysis on the DP arrays).
  PF_ASSERT(N < (size_t(1) << 32), "node count exceeds search limits");
  std::map<NodeId, size_t> Pos;
  for (size_t I = 0; I < N; ++I)
    Pos[Seq[I]] = I;

  ExecutionPlan Plan;
  const bool HasPim = Prof.config().hasPim();

  // The interior split-ratio grid, accumulated exactly like the serial
  // sweep so the sampled ratios (and thus the profile signatures) are
  // bit-identical to the single-threaded path.
  std::vector<double> Grid;
  if (Options.AllowSplit)
    for (double R = Options.RatioStep; R < 1.0 - 1e-9; R += Options.RatioStep)
      Grid.push_back(R);

  // Per-node profile slots (lines 1-7 and 16-22 of Algorithm 1), plus the
  // pipelining candidates (lines 8-15) whose chain occupies consecutive
  // positions in the sequence (the DP covers the sequence by contiguous
  // segments). Enumerating every candidate up front lets the profiling
  // pre-pass fill all slots concurrently; the decisions below then run
  // serially over warm values, independent of profiling order.
  struct NodeProfile {
    bool Candidate = false;
    double GpuNs = 0.0;
    double PimNs = 0.0;
    std::vector<double> SplitNs; ///< Parallel to Grid.
  };
  std::vector<NodeProfile> Profiles(N);
  for (size_t I = 0; I < N; ++I) {
    Profiles[I].Candidate = isPimCandidate(G.node(Seq[I])) && HasPim;
    if (Profiles[I].Candidate)
      Profiles[I].SplitNs.assign(Grid.size(), 0.0);
  }

  struct PipeOption {
    PipelineCandidate Cand;
    size_t Begin = 0;
    size_t Len = 0;
    double Ns = 0.0;
  };
  std::vector<PipeOption> Pipes;
  if (Options.AllowPipeline && HasPim) {
    for (const PipelineCandidate &Cand : findPipelineCandidates(G)) {
      obs::addCounter("search.pipeline_candidates");
      const size_t Begin = Pos.at(Cand.Chain.front());
      bool Consecutive = true;
      for (size_t I = 0; I < Cand.Chain.size(); ++I)
        Consecutive &= Begin + I < N && Seq[Begin + I] == Cand.Chain[I];
      if (Consecutive)
        Pipes.push_back(PipeOption{Cand, Begin, Cand.Chain.size(), 0.0});
    }
  }

  // Candidate-profiling pre-pass: every slot is written by exactly one
  // task, tasks share nothing else, and the profiler's memo cache is
  // single-flight, so the filled slots are identical for every job count.
  // Jobs == 1 runs the tasks inline in enumeration order — the serial path.
  {
    PF_TRACE_SCOPE_CAT("search.profile_candidates", "search");
    std::vector<std::function<void()>> Tasks;
    for (size_t I = 0; I < N; ++I) {
      Tasks.push_back([this, &G, &Profiles, &Seq, I] {
        Profiles[I].GpuNs = Prof.gpuNodeNs(G, Seq[I]);
        obs::addCounter("search.candidates_evaluated");
      });
      if (!Profiles[I].Candidate)
        continue;
      Tasks.push_back([this, &G, &Profiles, &Seq, I] {
        Profiles[I].PimNs = Prof.pimNodeNs(G, Seq[I]);
        obs::addCounter("search.candidates_evaluated");
      });
      for (size_t R = 0; R < Grid.size(); ++R)
        Tasks.push_back([this, &G, &Profiles, &Seq, &Grid, I, R] {
          Profiles[I].SplitNs[R] = Prof.mdDpNs(G, Seq[I], Grid[R]);
          obs::addCounter("search.candidates_evaluated");
        });
    }
    for (size_t P = 0; P < Pipes.size(); ++P)
      Tasks.push_back([this, &G, &Pipes, P] {
        Pipes[P].Ns =
            Prof.pipelineNs(G, Pipes[P].Cand.Chain, Options.PipelineStages);
      });
    if (Options.Jobs != 1 && Tasks.size() > 1) {
      ThreadPool Pool(Options.Jobs < 0 ? 0
                                       : static_cast<unsigned>(Options.Jobs));
      Pool.parallelFor(Tasks.size(), [&Tasks](size_t I) { Tasks[I](); });
    } else {
      for (const std::function<void()> &T : Tasks)
        T();
    }
  }

  // Chains that cannot pipeline at this stage count profiled negative.
  Pipes.erase(std::remove_if(Pipes.begin(), Pipes.end(),
                             [](const PipeOption &P) { return P.Ns < 0.0; }),
              Pipes.end());

  // Serial decision pass over the warm slots: the best single-node segment
  // per node given the allowed option set. Comparison order matches the
  // historical serial sweep, so ties break identically.
  struct NodeOption {
    SegmentMode Mode = SegmentMode::GpuNode;
    double RatioGpu = 1.0;
    double Ns = 0.0;
  };
  std::vector<NodeOption> BestNode(N);
  // Refined-ratio samples profiled during selection (only the auto-tuning
  // path adds any); they join the decision records so every profiled point
  // is explainable, not just the coarse grid.
  std::vector<std::vector<CandidateOption>> Refined(N);

  {
  PF_TRACE_SCOPE_CAT("search.select_nodes", "search");
  for (size_t I = 0; I < N; ++I) {
    NodeOption Opt;
    Opt.Ns = Profiles[I].GpuNs;
    Opt.Mode = SegmentMode::GpuNode;

    if (Profiles[I].Candidate) {
      LayerProfile LP;
      LP.Id = Seq[I];
      LP.GpuNs = Opt.Ns;
      LP.PimNs = Profiles[I].PimNs;
      LP.BestMdDpNs = LP.GpuNs;
      LP.BestRatioGpu = 1.0;

      if (Options.AllowFullOffload && LP.PimNs < Opt.Ns) {
        Opt.Ns = LP.PimNs;
        Opt.Mode = SegmentMode::FullPim;
        Opt.RatioGpu = 0.0;
      }
      if (LP.PimNs < LP.BestMdDpNs) {
        LP.BestMdDpNs = LP.PimNs;
        LP.BestRatioGpu = 0.0;
      }
      if (Options.AllowSplit) {
        auto Consider = [&](double R, double Ns) {
          if (Ns < LP.BestMdDpNs) {
            LP.BestMdDpNs = Ns;
            LP.BestRatioGpu = R;
          }
          if (Ns < Opt.Ns) {
            Opt.Ns = Ns;
            Opt.Mode = SegmentMode::MdDp;
            Opt.RatioGpu = R;
          }
        };
        for (size_t R = 0; R < Grid.size(); ++R)
          Consider(Grid[R], Profiles[I].SplitNs[R]);
        // Auto-tuning refinement (the paper's future work): sample around
        // the coarse optimum at the fine step instead of sweeping the
        // whole fine grid. The refinement centers depend on the coarse
        // decision, so these samples profile here, serially.
        if (Options.RefineRatios && Opt.Mode == SegmentMode::MdDp) {
          auto TrySplit = [&](double R) {
            const double Ns = Prof.mdDpNs(G, Seq[I], R);
            obs::addCounter("search.candidates_evaluated");
            Refined[I].push_back(
                CandidateOption{SegmentMode::MdDp, R, Ns});
            Consider(R, Ns);
          };
          const double Center = Opt.RatioGpu;
          for (double D = Options.RefinedStep;
               D < Options.RatioStep - 1e-9; D += Options.RefinedStep) {
            if (Center - D > 1e-9)
              TrySplit(Center - D);
            if (Center + D < 1.0 - 1e-9)
              TrySplit(Center + D);
          }
        }
      }
      Plan.Layers.push_back(LP);
    }
    BestNode[I] = Opt;
  }
  } // search.select_nodes

  // Dynamic program over the sequence (lines 23-29): Best[I] = cheapest
  // covering of Seq[I..N).
  PF_TRACE_SCOPE_CAT("search.dp", "search");
  obs::addCounter("search.dp_states", static_cast<int64_t>(N) + 1);
  constexpr double Inf = 1e300;
  std::vector<double> Best(N + 1, Inf);
  struct Choice {
    bool IsPipe = false;
    size_t PipeIdx = 0;
  };
  std::vector<Choice> Chosen;
  Chosen.resize(N);
  Best[N] = 0.0;
  for (size_t I = N; I-- > 0;) {
    Best[I] = BestNode[I].Ns + Best[I + 1];
    Chosen[I] = Choice{};
    for (size_t P = 0; P < Pipes.size(); ++P) {
      if (Pipes[P].Begin != I)
        continue;
      const double Cost = Pipes[P].Ns + Best[I + Pipes[P].Len];
      if (Cost < Best[I]) {
        Best[I] = Cost;
        Chosen[I] = Choice{true, P};
      }
    }
  }

  // Reconstruct the segment covering, recording one decision per node as
  // we go: what was profiled, what the DP chose, and the chosen option's
  // cost — the report's explainability trail.
  auto BaseDecision = [&](size_t I) {
    SearchDecision D;
    D.Id = Seq[I];
    D.PimCandidate = Profiles[I].Candidate;
    D.GpuOnlyNs = Profiles[I].GpuNs;
    D.Candidates.push_back(
        CandidateOption{SegmentMode::GpuNode, 1.0, Profiles[I].GpuNs});
    if (Profiles[I].Candidate) {
      D.Candidates.push_back(
          CandidateOption{SegmentMode::FullPim, 0.0, Profiles[I].PimNs});
      for (size_t R = 0; R < Grid.size(); ++R)
        D.Candidates.push_back(
            CandidateOption{SegmentMode::MdDp, Grid[R],
                            Profiles[I].SplitNs[R]});
      D.Candidates.insert(D.Candidates.end(), Refined[I].begin(),
                          Refined[I].end());
    }
    return D;
  };
  for (size_t I = 0; I < N;) {
    if (Chosen[I].IsPipe) {
      const PipeOption &P = Pipes[Chosen[I].PipeIdx];
      SegmentPlan S;
      S.Mode = SegmentMode::Pipeline;
      S.Nodes = P.Cand.Chain;
      S.Stages = Options.PipelineStages;
      S.Pattern = P.Cand.Pattern;
      S.PredictedNs = P.Ns;
      // The pipelined segment's time covers the whole chain; split it over
      // the chain proportionally to GPU-baseline times (the CONV-layer
      // metric's attribution rule) so per-node gains stay comparable.
      double ChainGpuNs = 0.0;
      for (size_t Off = 0; Off < P.Len; ++Off)
        ChainGpuNs += Profiles[I + Off].GpuNs;
      for (size_t Off = 0; Off < P.Len; ++Off) {
        SearchDecision D = BaseDecision(I + Off);
        D.ChosenMode = SegmentMode::Pipeline;
        D.ChosenNs = ChainGpuNs > 0.0
                         ? P.Ns * Profiles[I + Off].GpuNs / ChainGpuNs
                         : P.Ns / static_cast<double>(P.Len);
        Plan.Decisions.push_back(std::move(D));
      }
      Plan.Segments.push_back(std::move(S));
      I += P.Len;
      continue;
    }
    const NodeOption &O = BestNode[I];
    SegmentPlan S;
    S.Mode = O.Mode;
    S.Nodes = {Seq[I]};
    S.RatioGpu = O.RatioGpu;
    S.PredictedNs = O.Ns;
    SearchDecision D = BaseDecision(I);
    D.ChosenMode = O.Mode;
    D.ChosenRatioGpu = O.RatioGpu;
    D.ChosenNs = O.Ns;
    Plan.Decisions.push_back(std::move(D));
    Plan.Segments.push_back(std::move(S));
    ++I;
  }
  obs::addCounter("search.decisions",
                  static_cast<int64_t>(Plan.Decisions.size()));
  Plan.PredictedNs = Best[0];
  obs::addCounter("search.segments",
                  static_cast<int64_t>(Plan.Segments.size()));
  if (obs::activeRegistry().enabled())
    for (const SegmentPlan &S : Plan.Segments)
      obs::recordHistogram("search.segment_predicted_us",
                           S.PredictedNs / 1e3);
  return Plan;
}

void SearchEngine::apply(Graph &G, const ExecutionPlan &Plan) {
  for (const SegmentPlan &S : Plan.Segments) {
    switch (S.Mode) {
    case SegmentMode::GpuNode:
      G.node(S.Nodes[0]).Dev = Device::Gpu;
      break;
    case SegmentMode::FullPim:
      G.node(S.Nodes[0]).Dev = Device::Pim;
      break;
    case SegmentMode::MdDp: {
      auto Result = applyMdDpSplit(G, S.Nodes[0], S.RatioGpu);
      PF_ASSERT(Result.has_value(),
                "planned MD-DP ratio degenerated during apply");
      (void)Result;
      PF_VERIFY_PASS(G, "after MdDpSplit");
      break;
    }
    case SegmentMode::Pipeline: {
      PipelineSpec Spec;
      Spec.Chain = S.Nodes;
      Spec.NumStages = S.Stages;
      const bool Ok = applyPipeline(G, Spec);
      PF_ASSERT(Ok, "planned pipeline failed to apply");
      (void)Ok;
      PF_VERIFY_PASS(G, "after Pipeline");
      break;
    }
    }
  }
}
