//===- search/SearchEngine.cpp - Execution mode & task size search -------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "search/SearchEngine.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/Counters.h"
#include "obs/Trace.h"
#include "transform/MdDpSplitPass.h"
#include "transform/PipelinePass.h"

using namespace pf;

const char *pf::segmentModeName(SegmentMode M) {
  switch (M) {
  case SegmentMode::GpuNode:
    return "gpu";
  case SegmentMode::FullPim:
    return "pim";
  case SegmentMode::MdDp:
    return "md-dp";
  case SegmentMode::Pipeline:
    return "pipeline";
  }
  pf_unreachable("unknown segment mode");
}

ExecutionPlan SearchEngine::search(const Graph &G) {
  PF_TRACE_SCOPE_CAT("search", "search");
  const std::vector<NodeId> Seq = G.topoOrder();
  const size_t N = Seq.size();
  std::map<NodeId, size_t> Pos;
  for (size_t I = 0; I < N; ++I)
    Pos[Seq[I]] = I;

  ExecutionPlan Plan;

  // Profile the per-node options (lines 1-7 and 16-22 of Algorithm 1).
  // Per node: the best single-node segment given the allowed option set.
  struct NodeOption {
    SegmentMode Mode = SegmentMode::GpuNode;
    double RatioGpu = 1.0;
    double Ns = 0.0;
  };
  std::vector<NodeOption> BestNode(N);

  {
  PF_TRACE_SCOPE_CAT("search.profile_nodes", "search");
  for (size_t I = 0; I < N; ++I) {
    const Node &Nd = G.node(Seq[I]);
    NodeOption Opt;
    Opt.Ns = Prof.gpuNodeNs(G, Seq[I]);
    Opt.Mode = SegmentMode::GpuNode;
    obs::addCounter("search.candidates_evaluated");

    if (isPimCandidate(Nd) && Prof.config().hasPim()) {
      LayerProfile LP;
      LP.Id = Seq[I];
      LP.GpuNs = Opt.Ns;
      LP.PimNs = Prof.pimNodeNs(G, Seq[I]);
      LP.BestMdDpNs = LP.GpuNs;
      LP.BestRatioGpu = 1.0;
      obs::addCounter("search.candidates_evaluated");

      if (Options.AllowFullOffload && LP.PimNs < Opt.Ns) {
        Opt.Ns = LP.PimNs;
        Opt.Mode = SegmentMode::FullPim;
        Opt.RatioGpu = 0.0;
      }
      if (LP.PimNs < LP.BestMdDpNs) {
        LP.BestMdDpNs = LP.PimNs;
        LP.BestRatioGpu = 0.0;
      }
      if (Options.AllowSplit) {
        auto TrySplit = [&](double R) {
          const double Ns = Prof.mdDpNs(G, Seq[I], R);
          obs::addCounter("search.candidates_evaluated");
          if (Ns < LP.BestMdDpNs) {
            LP.BestMdDpNs = Ns;
            LP.BestRatioGpu = R;
          }
          if (Ns < Opt.Ns) {
            Opt.Ns = Ns;
            Opt.Mode = SegmentMode::MdDp;
            Opt.RatioGpu = R;
          }
        };
        for (double R = Options.RatioStep; R < 1.0 - 1e-9;
             R += Options.RatioStep)
          TrySplit(R);
        // Auto-tuning refinement (the paper's future work): sample around
        // the coarse optimum at the fine step instead of sweeping the
        // whole fine grid.
        if (Options.RefineRatios && Opt.Mode == SegmentMode::MdDp) {
          const double Center = Opt.RatioGpu;
          for (double D = Options.RefinedStep;
               D < Options.RatioStep - 1e-9; D += Options.RefinedStep) {
            if (Center - D > 1e-9)
              TrySplit(Center - D);
            if (Center + D < 1.0 - 1e-9)
              TrySplit(Center + D);
          }
        }
      }
      Plan.Layers.push_back(LP);
    }
    BestNode[I] = Opt;
  }
  } // search.profile_nodes

  // Profile the pipelining candidates (lines 8-15) and keep those whose
  // chain occupies consecutive positions in the sequence (the DP covers the
  // sequence by contiguous segments).
  struct PipeOption {
    PipelineCandidate Cand;
    size_t Begin = 0;
    size_t Len = 0;
    double Ns = 0.0;
  };
  std::vector<PipeOption> Pipes;
  if (Options.AllowPipeline && Prof.config().hasPim()) {
    PF_TRACE_SCOPE_CAT("search.profile_pipelines", "search");
    for (const PipelineCandidate &Cand : findPipelineCandidates(G)) {
      obs::addCounter("search.pipeline_candidates");
      const size_t Begin = Pos.at(Cand.Chain.front());
      bool Consecutive = true;
      for (size_t I = 0; I < Cand.Chain.size(); ++I)
        Consecutive &= Begin + I < N && Seq[Begin + I] == Cand.Chain[I];
      if (!Consecutive)
        continue;
      const double Ns =
          Prof.pipelineNs(G, Cand.Chain, Options.PipelineStages);
      if (Ns < 0.0)
        continue; // Not pipelineable at this stage count.
      Pipes.push_back(PipeOption{Cand, Begin, Cand.Chain.size(), Ns});
    }
  }

  // Dynamic program over the sequence (lines 23-29): Best[I] = cheapest
  // covering of Seq[I..N).
  PF_TRACE_SCOPE_CAT("search.dp", "search");
  obs::addCounter("search.dp_states", static_cast<int64_t>(N) + 1);
  constexpr double Inf = 1e300;
  std::vector<double> Best(N + 1, Inf);
  struct Choice {
    bool IsPipe = false;
    size_t PipeIdx = 0;
  };
  std::vector<Choice> Chosen(N);
  Best[N] = 0.0;
  for (size_t I = N; I-- > 0;) {
    Best[I] = BestNode[I].Ns + Best[I + 1];
    Chosen[I] = Choice{};
    for (size_t P = 0; P < Pipes.size(); ++P) {
      if (Pipes[P].Begin != I)
        continue;
      const double Cost = Pipes[P].Ns + Best[I + Pipes[P].Len];
      if (Cost < Best[I]) {
        Best[I] = Cost;
        Chosen[I] = Choice{true, P};
      }
    }
  }

  // Reconstruct the segment covering.
  for (size_t I = 0; I < N;) {
    if (Chosen[I].IsPipe) {
      const PipeOption &P = Pipes[Chosen[I].PipeIdx];
      SegmentPlan S;
      S.Mode = SegmentMode::Pipeline;
      S.Nodes = P.Cand.Chain;
      S.Stages = Options.PipelineStages;
      S.Pattern = P.Cand.Pattern;
      S.PredictedNs = P.Ns;
      Plan.Segments.push_back(std::move(S));
      I += P.Len;
      continue;
    }
    const NodeOption &O = BestNode[I];
    SegmentPlan S;
    S.Mode = O.Mode;
    S.Nodes = {Seq[I]};
    S.RatioGpu = O.RatioGpu;
    S.PredictedNs = O.Ns;
    Plan.Segments.push_back(std::move(S));
    ++I;
  }
  Plan.PredictedNs = Best[0];
  obs::addCounter("search.segments",
                  static_cast<int64_t>(Plan.Segments.size()));
  if (obs::Registry::instance().enabled())
    for (const SegmentPlan &S : Plan.Segments)
      obs::recordHistogram("search.segment_predicted_us",
                           S.PredictedNs / 1e3);
  return Plan;
}

void SearchEngine::apply(Graph &G, const ExecutionPlan &Plan) {
  for (const SegmentPlan &S : Plan.Segments) {
    switch (S.Mode) {
    case SegmentMode::GpuNode:
      G.node(S.Nodes[0]).Dev = Device::Gpu;
      break;
    case SegmentMode::FullPim:
      G.node(S.Nodes[0]).Dev = Device::Pim;
      break;
    case SegmentMode::MdDp: {
      auto Result = applyMdDpSplit(G, S.Nodes[0], S.RatioGpu);
      PF_ASSERT(Result.has_value(),
                "planned MD-DP ratio degenerated during apply");
      (void)Result;
      break;
    }
    case SegmentMode::Pipeline: {
      PipelineSpec Spec;
      Spec.Chain = S.Nodes;
      Spec.NumStages = S.Stages;
      const bool Ok = applyPipeline(G, Spec);
      PF_ASSERT(Ok, "planned pipeline failed to apply");
      (void)Ok;
      break;
    }
    }
  }
}
