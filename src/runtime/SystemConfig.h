//===- runtime/SystemConfig.h - Whole-system configuration ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the full GPU + PIM-enabled-memory system: the channel
/// grouping between GPU and PIM, the simulator configurations for both
/// devices, the back-end options, and the cross-channel interconnect.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_SYSTEMCONFIG_H
#define PIMFLOW_RUNTIME_SYSTEMCONFIG_H

#include "codegen/CommandGenerator.h"
#include "gpu/GpuConfig.h"
#include "pim/PimConfig.h"
#include "support/Diagnostics.h"

namespace pf {

/// Full-system configuration. The single physical GDDR6 memory has
/// TotalChannels channels; Pim.Channels of them are PIM-enabled and the
/// rest serve the GPU (Section 4.1's channel grouping). GPU-only baselines
/// give all channels to the GPU.
struct SystemConfig {
  int TotalChannels = 32;
  GpuConfig Gpu;
  PimConfig Pim;
  CodegenOptions Codegen;

  /// Memory-layout optimization of the back-end (Section 4.3.2).
  bool MemoryOptimizer = true;

  /// Channel-to-channel memory-network bandwidth in GB/s (crossbar between
  /// GPU and PIM channel groups).
  double CrossChannelGBs = 100.0;
  /// Fixed synchronization overhead per cross-device handoff in ns.
  double SyncOverheadNs = 300.0;

  /// Model memory-controller contention from PIM fetches on GPU traffic
  /// (Section 7); the measured slowdown is fractions of a percent.
  bool ModelContention = false;
  /// GPU slowdown per unit of PIM fetch-busy fraction (calibrated so the
  /// end-to-end contention slowdown lands in the paper's 0.1-0.3% range).
  double ContentionFactor = 0.003;

  /// GPU-only baseline: every channel serves the GPU.
  static SystemConfig gpuOnly(int Channels = 32) {
    SystemConfig C;
    C.TotalChannels = Channels;
    C.Gpu.MemChannels = Channels;
    C.Pim.Channels = 0;
    return C;
  }

  /// Dual GPU/PIM configuration with \p PimChannels of \p Total channels
  /// PIM-enabled. \p Optimized selects the Newton++ command set (multiple
  /// global buffers + GWRITE latency hiding + strided GWRITE + full
  /// scheduling granularity) vs the Newton+ baseline.
  static SystemConfig dual(int PimChannels = 16, bool Optimized = true,
                           int Total = 32) {
    PF_ASSERT(PimChannels > 0 && PimChannels < Total,
              "PIM channels must be a proper subset");
    SystemConfig C;
    C.TotalChannels = Total;
    C.Gpu.MemChannels = Total - PimChannels;
    C.Pim = Optimized ? PimConfig::newtonPlusPlus() : PimConfig::newtonPlus();
    C.Pim.Channels = PimChannels;
    // Coherence between PIM commands and GPU accesses needs write-through
    // caches (Section 5, footnote 2: ~2.8% slowdown vs write-back).
    C.Gpu.CoherenceSlowdown = 1.028;
    C.Codegen.StridedGwrite = Optimized;
    // The command-scheduling pass (all Fig. 6 granularities) is part of the
    // shared DRAM-PIM back-end: Newton+ and Newton++ differ only in the
    // PIM-command optimizations.
    C.Codegen.MaxGranularity = ScheduleGranularity::Comp;
    return C;
  }

  bool hasPim() const { return Pim.Channels > 0; }
};

/// Validates \p C before it configures a run: channel-grouping consistency
/// (PIM channels a proper subset of the physical channels), non-negative
/// interconnect parameters, and non-degenerate PIM device parameters when
/// PIM is enabled. Violations become config.invalid diagnostics in \p DE;
/// returns true when no error was added. The factories (gpuOnly, dual)
/// always produce valid configs — this gate catches hand-assembled ones
/// before they silently yield nonsense timelines.
bool validateSystemConfig(const SystemConfig &C, DiagnosticEngine &DE);

} // namespace pf

#endif // PIMFLOW_RUNTIME_SYSTEMCONFIG_H
