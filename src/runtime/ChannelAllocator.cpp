//===- runtime/ChannelAllocator.cpp - PIM channel arbitration -------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ChannelAllocator.h"

#include "support/Assert.h"
#include "support/Format.h"

namespace pf {

ChannelAllocator::ChannelAllocator(int PoolSize)
    : Pool(PoolSize), InUse(static_cast<size_t>(PoolSize > 0 ? PoolSize : 0),
                            false),
      Quarantined(static_cast<size_t>(PoolSize > 0 ? PoolSize : 0), false),
      Free(PoolSize > 0 ? PoolSize : 0) {
  PF_ASSERT(PoolSize >= 0, "negative PIM channel pool");
}

std::optional<ChannelGrant> ChannelAllocator::tryAcquire(int Want, int Min) {
  if (Want < 0)
    Want = 0;
  if (Min < 0)
    Min = 0;
  if (Min > Want)
    Min = Want;

  std::lock_guard<std::mutex> Lock(Mu);
  ChannelGrant G;
  G.Wanted = Want;
  const int Give = Free >= Want ? Want : (Min > 0 && Free >= Min ? Free : -1);
  if (Give < 0)
    return std::nullopt;
  G.Channels.reserve(static_cast<size_t>(Give));
  for (int Ch = 0; Ch < Pool && G.granted() < Give; ++Ch) {
    if (InUse[static_cast<size_t>(Ch)] || Quarantined[static_cast<size_t>(Ch)])
      continue;
    InUse[static_cast<size_t>(Ch)] = true;
    G.Channels.push_back(Ch);
  }
  PF_ASSERT(G.granted() == Give, "free-count / free-list disagreement");
  Free -= Give;
  return G;
}

bool ChannelAllocator::release(const ChannelGrant &G, DiagnosticEngine *DE) {
  std::lock_guard<std::mutex> Lock(Mu);
  bool Ok = true;
  for (int Ch : G.Channels) {
    if (Ch < 0 || Ch >= Pool) {
      if (DE)
        DE->error(DiagCode::ChannelMisuse, formatStr("channel %d", Ch),
                  formatStr("released id outside the pool [0, %d)", Pool));
      Ok = false;
      continue;
    }
    if (!InUse[static_cast<size_t>(Ch)]) {
      if (DE)
        DE->error(DiagCode::ChannelMisuse, formatStr("channel %d", Ch),
                  "double release of a PIM channel");
      Ok = false;
      continue;
    }
    InUse[static_cast<size_t>(Ch)] = false;
    if (!Quarantined[static_cast<size_t>(Ch)])
      ++Free;
  }
  return Ok;
}

bool ChannelAllocator::quarantine(int Ch) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ch < 0 || Ch >= Pool)
    return false;
  if (Quarantined[static_cast<size_t>(Ch)])
    return true;
  Quarantined[static_cast<size_t>(Ch)] = true;
  if (!InUse[static_cast<size_t>(Ch)])
    --Free;
  return true;
}

bool ChannelAllocator::readmit(int Ch) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ch < 0 || Ch >= Pool)
    return false;
  if (!Quarantined[static_cast<size_t>(Ch)])
    return true;
  Quarantined[static_cast<size_t>(Ch)] = false;
  if (!InUse[static_cast<size_t>(Ch)])
    ++Free;
  return true;
}

bool ChannelAllocator::isQuarantined(int Ch) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Ch >= 0 && Ch < Pool && Quarantined[static_cast<size_t>(Ch)];
}

int ChannelAllocator::quarantinedCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  int N = 0;
  for (const bool Q : Quarantined)
    N += Q ? 1 : 0;
  return N;
}

int ChannelAllocator::freeCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Free;
}

} // namespace pf
