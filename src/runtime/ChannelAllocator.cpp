//===- runtime/ChannelAllocator.cpp - PIM channel arbitration -------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ChannelAllocator.h"

#include "support/Assert.h"

namespace pf {

ChannelAllocator::ChannelAllocator(int PoolSize)
    : Pool(PoolSize), InUse(static_cast<size_t>(PoolSize > 0 ? PoolSize : 0),
                            false),
      Free(PoolSize > 0 ? PoolSize : 0) {
  PF_ASSERT(PoolSize >= 0, "negative PIM channel pool");
}

std::optional<ChannelGrant> ChannelAllocator::tryAcquire(int Want, int Min) {
  if (Want < 0)
    Want = 0;
  if (Min < 0)
    Min = 0;
  if (Min > Want)
    Min = Want;

  std::lock_guard<std::mutex> Lock(Mu);
  ChannelGrant G;
  G.Wanted = Want;
  const int Give = Free >= Want ? Want : (Min > 0 && Free >= Min ? Free : -1);
  if (Give < 0)
    return std::nullopt;
  G.Channels.reserve(static_cast<size_t>(Give));
  for (int Ch = 0; Ch < Pool && G.granted() < Give; ++Ch) {
    if (InUse[static_cast<size_t>(Ch)])
      continue;
    InUse[static_cast<size_t>(Ch)] = true;
    G.Channels.push_back(Ch);
  }
  PF_ASSERT(G.granted() == Give, "free-count / free-list disagreement");
  Free -= Give;
  return G;
}

void ChannelAllocator::release(const ChannelGrant &G) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (int Ch : G.Channels) {
    PF_ASSERT(Ch >= 0 && Ch < Pool, "released channel outside the pool");
    PF_ASSERT(InUse[static_cast<size_t>(Ch)],
              "double release of a PIM channel");
    InUse[static_cast<size_t>(Ch)] = false;
    ++Free;
  }
}

int ChannelAllocator::freeCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Free;
}

} // namespace pf
