//===- runtime/SystemConfig.cpp - Configuration validation ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/SystemConfig.h"

#include "support/Format.h"

using namespace pf;

bool pf::validateSystemConfig(const SystemConfig &C, DiagnosticEngine &DE) {
  const size_t Before = DE.errorCount();
  if (C.TotalChannels <= 0)
    DE.error(DiagCode::ConfigInvalid, "TotalChannels",
             formatStr("memory must have at least one channel, got %d",
                       C.TotalChannels));
  if (C.Pim.Channels < 0)
    DE.error(DiagCode::ConfigInvalid, "Pim.Channels",
             formatStr("PIM channel count cannot be negative, got %d",
                       C.Pim.Channels));
  if (C.Pim.Channels > C.TotalChannels)
    DE.error(DiagCode::ConfigInvalid, "Pim.Channels",
             formatStr("%d PIM channels exceed the %d physical channels",
                       C.Pim.Channels, C.TotalChannels));
  else if (C.Pim.Channels > 0 && C.Pim.Channels == C.TotalChannels)
    DE.error(DiagCode::ConfigInvalid, "Pim.Channels",
             "PIM channels must be a proper subset: the GPU channel group "
             "would be empty");
  if (C.Gpu.MemChannels <= 0)
    DE.error(DiagCode::ConfigInvalid, "Gpu.MemChannels",
             formatStr("GPU needs at least one memory channel, got %d",
                       C.Gpu.MemChannels));
  if (C.CrossChannelGBs < 0.0)
    DE.error(DiagCode::ConfigInvalid, "CrossChannelGBs",
             formatStr("cross-channel bandwidth cannot be negative, got %g",
                       C.CrossChannelGBs));
  if (C.SyncOverheadNs < 0.0)
    DE.error(DiagCode::ConfigInvalid, "SyncOverheadNs",
             formatStr("sync overhead cannot be negative, got %g",
                       C.SyncOverheadNs));
  if (C.ContentionFactor < 0.0)
    DE.error(DiagCode::ConfigInvalid, "ContentionFactor",
             formatStr("contention factor cannot be negative, got %g",
                       C.ContentionFactor));
  if (C.hasPim()) {
    // A PIM-enabled config with a degenerate device would divide by zero or
    // produce nonsense timings downstream; reject it here.
    if (C.Pim.BanksPerChannel <= 0)
      DE.error(DiagCode::ConfigInvalid, "Pim.BanksPerChannel",
               formatStr("PIM-enabled config needs banks, got %d",
                         C.Pim.BanksPerChannel));
    if (C.Pim.MultipliersPerBank <= 0)
      DE.error(DiagCode::ConfigInvalid, "Pim.MultipliersPerBank",
               formatStr("PIM-enabled config needs multipliers, got %d",
                         C.Pim.MultipliersPerBank));
    if (C.Pim.ClockGhz <= 0.0)
      DE.error(DiagCode::ConfigInvalid, "Pim.ClockGhz",
               formatStr("PIM clock must be positive, got %g",
                         C.Pim.ClockGhz));
    if (C.Pim.NumGlobalBuffers < 1)
      DE.error(DiagCode::ConfigInvalid, "Pim.NumGlobalBuffers",
               formatStr("PIM-enabled config needs a global buffer, got %d",
                         C.Pim.NumGlobalBuffers));
    if (C.Pim.FetchSupplyGBs <= 0.0)
      DE.error(DiagCode::ConfigInvalid, "Pim.FetchSupplyGBs",
               formatStr("fetch supply bandwidth must be positive, got %g",
                         C.Pim.FetchSupplyGBs));
  }
  return DE.errorCount() == Before;
}
