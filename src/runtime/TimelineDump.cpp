//===- runtime/TimelineDump.cpp - ASCII timeline rendering ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/TimelineDump.h"

#include <algorithm>

#include "support/Format.h"

using namespace pf;

std::string pf::renderGantt(const Graph &/*G*/, const Timeline &TL,
                            int Width) {
  PF_ASSERT(Width >= 10, "gantt width too small");
  if (TL.TotalNs <= 0.0)
    return "(empty timeline)\n";

  const double NsPerCol = TL.TotalNs / Width;
  std::string Lanes[2];
  Lanes[0].assign(static_cast<size_t>(Width), '.');
  Lanes[1].assign(static_cast<size_t>(Width), '.');

  for (const NodeSchedule &S : TL.Nodes) {
    if (S.durationNs() <= 0.0)
      continue;
    const int Lane = S.Dev == Device::Pim ? 1 : 0;
    int Begin = static_cast<int>(S.StartNs / NsPerCol);
    int End = static_cast<int>(S.EndNs / NsPerCol);
    Begin = std::clamp(Begin, 0, Width - 1);
    End = std::clamp(End, Begin, Width - 1);
    for (int C = Begin; C <= End; ++C)
      Lanes[static_cast<size_t>(Lane)][static_cast<size_t>(C)] = '#';
  }

  std::string Out;
  Out += formatStr("gpu |%s|\n", Lanes[0].c_str());
  Out += formatStr("pim |%s|\n", Lanes[1].c_str());
  Out += formatStr("    0%*s%.1f us\n", Width - 4, "", TL.TotalNs / 1e3);
  return Out;
}

std::string pf::renderScheduleList(const Graph &G, const Timeline &TL) {
  std::vector<const NodeSchedule *> Sorted;
  for (const NodeSchedule &S : TL.Nodes)
    if (S.durationNs() > 0.0)
      Sorted.push_back(&S);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const NodeSchedule *A, const NodeSchedule *B) {
              if (A->StartNs != B->StartNs)
                return A->StartNs < B->StartNs;
              return A->Id < B->Id;
            });
  std::string Out;
  for (const NodeSchedule *S : Sorted)
    Out += formatStr("[%9.2f .. %9.2f us] %-3s %s\n", S->StartNs / 1e3,
                     S->EndNs / 1e3, deviceName(S->Dev),
                     G.node(S->Id).Name.c_str());
  return Out;
}
