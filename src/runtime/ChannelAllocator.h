//===- runtime/ChannelAllocator.h - PIM channel arbitration -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic arbitration of the PIM-enabled channel group between concurrent
/// plans (docs/INTERNALS.md section 13). The paper's channel split is
/// static — one model owns all Pim.Channels for its whole run. A serving
/// deployment multiplexes that group: every in-flight request holds an
/// exclusive grant over a subset of the physical PIM channel ids, and a
/// request whose planned channel count is unavailable either waits, runs
/// degraded on fewer channels (the PR 4 recovery ladder's remap semantics:
/// same plan, shrunken `Pim.Channels`), or falls back to the GPU floor.
///
/// Grants are deterministic: the lowest-numbered free channels win, so a
/// given admission order always produces the same channel sets regardless
/// of which worker thread asks. The allocator never over-commits — a
/// channel id is in at most one live grant, which is what the
/// channel-pressure tests pin down.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_CHANNELALLOCATOR_H
#define PIMFLOW_RUNTIME_CHANNELALLOCATOR_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace pf {

/// An exclusive claim over a set of PIM channel ids. Returned by
/// ChannelAllocator::tryAcquire and surrendered via release(); holding a
/// grant is the only way a plan may execute on PIM channels.
struct ChannelGrant {
  /// The granted physical channel ids, ascending.
  std::vector<int> Channels;
  /// The count the plan originally asked for (Channels.size() < Wanted
  /// means the grant is degraded).
  int Wanted = 0;

  int granted() const { return static_cast<int>(Channels.size()); }
  bool degraded() const { return granted() < Wanted; }
};

/// Mutex-guarded free-list of PIM channel ids [0, poolSize). Thread-safe;
/// all outcomes depend only on the sequence of acquire/release calls, not
/// on thread identity.
class ChannelAllocator {
public:
  explicit ChannelAllocator(int PoolSize);

  /// Tries to claim \p Want channels. Grants the \p Want lowest-numbered
  /// free channels when enough are free; otherwise, when at least \p Min
  /// (> 0) are free, grants *all* free channels as a degraded set; else
  /// returns nullopt (caller waits or takes the GPU floor). \p Min is
  /// clamped to [0, Want]; Want <= 0 yields an empty (GPU-only) grant.
  std::optional<ChannelGrant> tryAcquire(int Want, int Min);

  /// Returns every channel of \p G to the free list. A grant must be
  /// released exactly once; double-release asserts.
  void release(const ChannelGrant &G);

  int poolSize() const { return Pool; }
  /// Channels currently free (snapshot; racy under concurrency, exact
  /// under the serve loop's single-threaded admission).
  int freeCount() const;

private:
  const int Pool;
  mutable std::mutex Mu;
  std::vector<bool> InUse; ///< indexed by channel id
  int Free;                ///< invariant: count of false entries in InUse
};

} // namespace pf

#endif // PIMFLOW_RUNTIME_CHANNELALLOCATOR_H
