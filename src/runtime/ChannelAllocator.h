//===- runtime/ChannelAllocator.h - PIM channel arbitration -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic arbitration of the PIM-enabled channel group between concurrent
/// plans (docs/INTERNALS.md section 13). The paper's channel split is
/// static — one model owns all Pim.Channels for its whole run. A serving
/// deployment multiplexes that group: every in-flight request holds an
/// exclusive grant over a subset of the physical PIM channel ids, and a
/// request whose planned channel count is unavailable either waits, runs
/// degraded on fewer channels (the PR 4 recovery ladder's remap semantics:
/// same plan, shrunken `Pim.Channels`), or falls back to the GPU floor.
///
/// Grants are deterministic: the lowest-numbered free channels win, so a
/// given admission order always produces the same channel sets regardless
/// of which worker thread asks. The allocator never over-commits — a
/// channel id is in at most one live grant, which is what the
/// channel-pressure tests pin down.
///
/// Quarantine (docs/INTERNALS.md section 14): a channel the circuit
/// breaker has taken out of service is excluded from every grant until
/// readmit() returns it. Quarantining an in-use channel does not revoke
/// the live grant — the serve loop interrupts the owning session itself —
/// but the channel skips the free list when that grant is released.
///
/// Misuse (releasing a channel that is outside the pool or not currently
/// granted, i.e. a double release) is reported as a
/// runtime.channel-misuse diagnostic instead of aborting, so a
/// release-mode server degrades instead of dying mid-stream.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_CHANNELALLOCATOR_H
#define PIMFLOW_RUNTIME_CHANNELALLOCATOR_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "support/Diagnostics.h"

namespace pf {

/// An exclusive claim over a set of PIM channel ids. Returned by
/// ChannelAllocator::tryAcquire and surrendered via release(); holding a
/// grant is the only way a plan may execute on PIM channels.
struct ChannelGrant {
  /// The granted physical channel ids, ascending.
  std::vector<int> Channels;
  /// The count the plan originally asked for (Channels.size() < Wanted
  /// means the grant is degraded).
  int Wanted = 0;

  int granted() const { return static_cast<int>(Channels.size()); }
  bool degraded() const { return granted() < Wanted; }
};

/// Mutex-guarded free-list of PIM channel ids [0, poolSize). Thread-safe;
/// all outcomes depend only on the sequence of acquire/release/quarantine
/// calls, not on thread identity.
class ChannelAllocator {
public:
  explicit ChannelAllocator(int PoolSize);

  /// Tries to claim \p Want channels. Grants the \p Want lowest-numbered
  /// free channels when enough are free; otherwise, when at least \p Min
  /// (> 0) are free, grants *all* free channels as a degraded set; else
  /// returns nullopt (caller waits or takes the GPU floor). \p Min is
  /// clamped to [0, Want]; Want <= 0 yields an empty (GPU-only) grant.
  /// Quarantined channels are never granted.
  std::optional<ChannelGrant> tryAcquire(int Want, int Min);

  /// Returns every channel of \p G to the free list (quarantined channels
  /// leave the in-use state but stay out of the free list). A channel that
  /// is outside the pool or not currently granted is a
  /// runtime.channel-misuse error on \p DE (skipped, never fatal); returns
  /// false when any channel of the grant was misused.
  bool release(const ChannelGrant &G, DiagnosticEngine *DE = nullptr);

  /// Takes \p Ch out of service: it will not appear in any future grant
  /// until readmit(). Idempotent; returns false for out-of-pool ids.
  bool quarantine(int Ch);

  /// Returns a quarantined \p Ch to service. Idempotent (no-op when not
  /// quarantined); returns false for out-of-pool ids.
  bool readmit(int Ch);

  bool isQuarantined(int Ch) const;
  int quarantinedCount() const;

  int poolSize() const { return Pool; }
  /// Channels currently free (snapshot; racy under concurrency, exact
  /// under the serve loop's single-threaded admission).
  int freeCount() const;

private:
  const int Pool;
  mutable std::mutex Mu;
  std::vector<bool> InUse;      ///< indexed by channel id
  std::vector<bool> Quarantined; ///< indexed by channel id
  int Free; ///< invariant: count of (!InUse && !Quarantined) entries
};

} // namespace pf

#endif // PIMFLOW_RUNTIME_CHANNELALLOCATOR_H
