//===- runtime/ChannelScoreboard.h - Channel circuit breakers -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-channel health scoreboard and circuit breakers for the serving
/// runtime (docs/INTERNALS.md section 14). The PR 4 recovery ladder reacts
/// to each fault in isolation; under a serving workload that re-grants a
/// flaky channel to the very next request, paying the interruption again.
/// ChannelScoreboard accumulates recovery *outcomes* across requests: after
/// `TripThreshold` consecutive failures a channel's breaker opens, the
/// serve loop quarantines it out of the ChannelAllocator, and the channel
/// only returns to service after a successful cooldown probe (seeded
/// jittered schedule on the deterministic virtual clock — never
/// wall-clock, so summaries stay byte-identical for any --jobs=N).
///
/// A failure on a channel whose breaker has not tripped is still a
/// quarantine for the duration of the outage window; the breaker decides
/// whether the channel returns automatically when the outage ends (Closed)
/// or must pass a probe first (Open).
///
/// The scoreboard keeps a chronological event log (quarantine / trip /
/// probe / readmit), which the chaos-under-serve tests replay to assert
/// that a tripped channel is never granted until re-admitted.
///
/// Not thread-safe: owned and driven by the single-threaded serve event
/// loop.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_CHANNELSCOREBOARD_H
#define PIMFLOW_RUNTIME_CHANNELSCOREBOARD_H

#include <cstdint>
#include <vector>

namespace pf {

/// One entry of the health event log, on the serve loop's virtual clock.
struct BreakerEvent {
  enum class Kind : uint8_t {
    Quarantine, ///< channel taken out of service (outage start)
    Trip,       ///< breaker opened after TripThreshold consecutive failures
    Probe,      ///< cooldown probe fired; Ok = channel was healthy
    Readmit,    ///< channel returned to service; Ok = via a breaker probe
  };
  int64_t TimeNs = 0;
  int Channel = 0;
  /// Serve request attributed to the event: the grant holder whose
  /// interruption caused a quarantine/trip, inherited by the trip's
  /// cooldown probes and readmit. -1 when no request was involved
  /// (static dead channels, outage-end recoveries).
  int ReqId = -1;
  Kind K = Kind::Quarantine;
  bool Ok = false;
};

/// Returns "quarantine"/"trip"/"probe"/"readmit".
const char *breakerEventKindName(BreakerEvent::Kind K);

class ChannelScoreboard {
public:
  /// \p TripThreshold consecutive failures open a channel's breaker;
  /// <= 0 disables tripping entirely. \p CooldownNs is the base probe
  /// spacing; each probe adds a seeded jitter in [0, CooldownNs/4] drawn
  /// from \p Seed so probe instants are deterministic but not phase-locked
  /// across channels.
  ChannelScoreboard(int Channels, int TripThreshold, int64_t CooldownNs,
                uint64_t Seed);

  /// Records a failure (an outage hitting the channel) at virtual time
  /// \p NowNs, attributed to serve request \p ReqId (-1 = none). Returns
  /// true when this failure trips the breaker (logged as a Trip event);
  /// the caller schedules the first probe. The tripping request is
  /// remembered so later probes/readmits of the chain stay attributed.
  bool recordFailure(int Ch, int64_t NowNs, int ReqId = -1);

  /// Records a successful completion on \p Ch, resetting its consecutive
  /// failure count (closed breakers only; an open breaker's state is
  /// owned by the probe path).
  void recordSuccess(int Ch);

  /// Logs the quarantine of \p Ch (the allocator-side exclusion),
  /// attributed to the interrupted request when there was one.
  void noteQuarantine(int Ch, int64_t NowNs, int ReqId = -1);

  /// Logs a non-breaker readmission: the outage ended and the (closed)
  /// breaker lets the channel return without a probe.
  void noteRecovery(int Ch, int64_t NowNs);

  /// The next probe instant for \p Ch after \p NowNs: base cooldown plus
  /// the seeded per-attempt jitter. Advances the channel's attempt
  /// counter.
  int64_t nextProbeNs(int Ch, int64_t NowNs);

  /// Registers a probe outcome at \p NowNs. A healthy probe closes the
  /// breaker, resets the failure count, and logs the Readmit; returns
  /// \p Healthy so call sites can chain the allocator readmit.
  bool probe(int Ch, int64_t NowNs, bool Healthy);

  bool open(int Ch) const;
  int consecutiveFailures(int Ch) const;
  int tripCount(int Ch) const;
  /// The request whose failure last tripped \p Ch's breaker (-1 when the
  /// breaker never tripped or no request was attributed).
  int lastTripRequest(int Ch) const;

  int64_t trips() const { return Trips; }
  int64_t probes() const { return Probes; }
  int64_t readmits() const { return Readmits; }
  int64_t recoveries() const { return Recoveries; }

  /// Chronological event log (virtual-time order: the single-threaded
  /// serve loop appends in nondecreasing NowNs).
  const std::vector<BreakerEvent> &events() const { return Events; }

private:
  struct PerChannel {
    int Consecutive = 0;
    int Trips = 0;
    int ProbeAttempts = 0;
    int LastTripReq = -1;
    bool Open = false;
  };

  PerChannel &state(int Ch);
  const PerChannel *stateOrNull(int Ch) const;
  void note(BreakerEvent::Kind K, int Ch, int64_t NowNs, bool Ok,
            int ReqId = -1);

  int TripThreshold;
  int64_t CooldownNs;
  uint64_t Seed;
  std::vector<PerChannel> Channels;
  std::vector<BreakerEvent> Events;
  int64_t Trips = 0;
  int64_t Probes = 0;
  int64_t Readmits = 0;
  int64_t Recoveries = 0;
};

} // namespace pf

#endif // PIMFLOW_RUNTIME_CHANNELSCOREBOARD_H
