//===- runtime/TimelineDump.h - ASCII timeline rendering --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an execution Timeline as a two-lane ASCII Gantt chart (GPU lane
/// and PIM lane), making mixed-parallel overlap — MD-DP halves executing
/// simultaneously, pipeline stages interleaving — visible at a glance.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_TIMELINEDUMP_H
#define PIMFLOW_RUNTIME_TIMELINEDUMP_H

#include <string>

#include "runtime/ExecutionEngine.h"

namespace pf {

/// Renders \p TL as an ASCII Gantt chart of \p Width columns. Each lane
/// shows busy spans as '#' blocks; a legend lists the nodes occupying each
/// span (zero-duration nodes are omitted).
std::string renderGantt(const Graph &G, const Timeline &TL,
                        int Width = 72);

/// One line per non-trivial node: "[start..end] device name", sorted by
/// start time.
std::string renderScheduleList(const Graph &G, const Timeline &TL);

} // namespace pf

#endif // PIMFLOW_RUNTIME_TIMELINEDUMP_H
