//===- runtime/MemoryPlanner.cpp - Activation liveness planning -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/MemoryPlanner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace pf;

MemoryPlan pf::planMemory(const Graph &G, const Timeline &TL,
                          const MemoryOptimizer &MemOpt) {
  MemoryPlan Plan;
  for (const Value &V : G.values())
    if (V.IsParam)
      Plan.WeightBytes += V.byteCount();

  // Schedule times per node.
  std::unordered_map<NodeId, const NodeSchedule *> Sched;
  for (const NodeSchedule &S : TL.Nodes)
    Sched[S.Id] = &S;

  // A value's buffer is allocated when its producer starts and released
  // when its last consumer ends (graph outputs live to the end). Aliased
  // values (outputs of free data-movement nodes) occupy no storage of
  // their own.
  std::map<double, int64_t> Deltas; // Time -> net allocation change.
  for (const NodeSchedule &S : TL.Nodes) {
    const Node &N = G.node(S.Id);
    const bool Aliased =
        MemOpt.classify(G, S.Id) == DataMovementCost::Free;
    for (ValueId Out : N.Outputs) {
      const int64_t Bytes = G.value(Out).byteCount();
      if (Aliased) {
        Plan.AliasedBytes += Bytes;
        continue;
      }
      double ReleaseNs = S.EndNs;
      for (ValueId GOut : G.graphOutputs())
        if (GOut == Out)
          ReleaseNs = TL.TotalNs;
      for (NodeId Consumer : G.consumers(Out)) {
        auto It = Sched.find(Consumer);
        if (It != Sched.end())
          ReleaseNs = std::max(ReleaseNs, It->second->EndNs);
      }
      Deltas[S.StartNs] += Bytes;
      // Epsilon past release so back-to-back alloc/free at the same
      // timestamp counts both buffers as briefly coresident (a safe
      // overestimate matching double-buffered runtimes).
      Deltas[ReleaseNs + 1e-9] -= Bytes;
    }
  }
  // Graph inputs are resident from time zero until their last consumer.
  for (ValueId In : G.graphInputs()) {
    double ReleaseNs = 0.0;
    for (NodeId Consumer : G.consumers(In)) {
      auto It = Sched.find(Consumer);
      if (It != Sched.end())
        ReleaseNs = std::max(ReleaseNs, It->second->EndNs);
    }
    Deltas[0.0] += G.value(In).byteCount();
    Deltas[ReleaseNs + 1e-9] -= G.value(In).byteCount();
  }

  int64_t Current = 0;
  for (const auto &[Time, Delta] : Deltas) {
    Current += Delta;
    if (Current > Plan.PeakActivationBytes) {
      Plan.PeakActivationBytes = Current;
      Plan.PeakAtNs = Time;
    }
  }
  return Plan;
}
