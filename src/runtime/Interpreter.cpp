//===- runtime/Interpreter.cpp - Functional reference executor --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include <cmath>
#include <optional>

#include "support/Random.h"

using namespace pf;

namespace {

/// Evaluation environment: one slot per graph value.
using Env = std::vector<std::optional<Tensor>>;

const Tensor &get(const Env &E, ValueId Id) {
  PF_ASSERT(E[static_cast<size_t>(Id)].has_value(),
            "interpreter read an unevaluated value");
  return *E[static_cast<size_t>(Id)];
}

Tensor evalConv2d(const Graph &G, const Node &N, const Env &E) {
  const Conv2dAttrs &A = N.conv();
  const Tensor &X = get(E, N.Inputs[0]);
  const Tensor &W = get(E, N.Inputs[1]);
  const Tensor *Bias =
      N.Inputs.size() > 2 ? &get(E, N.Inputs[2]) : nullptr;

  const TensorShape &XS = X.shape();
  const int64_t Batch = XS.dim(0), Hi = XS.dim(1), Wi = XS.dim(2),
                Cin = XS.dim(3);
  const int64_t Cout = W.shape().dim(3);
  const int64_t CinPerGroup = Cin / A.Groups;
  const int64_t CoutPerGroup = Cout / A.Groups;
  const TensorShape &OS = G.value(N.Outputs[0]).Shape;
  Tensor Out(OS);

  for (int64_t B = 0; B < Batch; ++B)
    for (int64_t Ho = 0; Ho < OS.dim(1); ++Ho)
      for (int64_t Wo = 0; Wo < OS.dim(2); ++Wo)
        for (int64_t Co = 0; Co < Cout; ++Co) {
          const int64_t Gr = Co / CoutPerGroup;
          double Acc = Bias ? Bias->at(Co) : 0.0;
          for (int64_t Kh = 0; Kh < A.KernelH; ++Kh) {
            const int64_t H = Ho * A.StrideH + Kh - A.PadTop;
            if (H < 0 || H >= Hi)
              continue;
            for (int64_t Kw = 0; Kw < A.KernelW; ++Kw) {
              const int64_t Wc = Wo * A.StrideW + Kw - A.PadLeft;
              if (Wc < 0 || Wc >= Wi)
                continue;
              for (int64_t Ci = 0; Ci < CinPerGroup; ++Ci) {
                // Weight layout [KH, KW, Cin/G, Cout].
                const int64_t WIdx =
                    ((Kh * A.KernelW + Kw) * CinPerGroup + Ci) * Cout + Co;
                Acc += static_cast<double>(
                           X.at4(B, H, Wc, Gr * CinPerGroup + Ci)) *
                       W.at(WIdx);
              }
            }
          }
          Out.at4(B, Ho, Wo, Co) = static_cast<float>(Acc);
        }
  return Out;
}

Tensor evalGemm(const Graph &G, const Node &N, const Env &E) {
  const Tensor &X = get(E, N.Inputs[0]);
  const Tensor &W = get(E, N.Inputs[1]);
  const Tensor *Bias =
      N.Inputs.size() > 2 ? &get(E, N.Inputs[2]) : nullptr;
  const int64_t Rows = X.shape().dim(0);
  const int64_t K = X.shape().dim(1);
  const int64_t M = W.shape().dim(1);
  Tensor Out(G.value(N.Outputs[0]).Shape);
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t C = 0; C < M; ++C) {
      double Acc = Bias ? Bias->at(C) : 0.0;
      for (int64_t I = 0; I < K; ++I)
        Acc += static_cast<double>(X.at(R * K + I)) * W.at(I * M + C);
      Out.at(R * M + C) = static_cast<float>(Acc);
    }
  return Out;
}

Tensor evalElementwiseUnary(const Node &N, const Env &E) {
  const Tensor &X = get(E, N.Inputs[0]);
  Tensor Out(X.shape());
  const int64_t Count = X.numElements();
  for (int64_t I = 0; I < Count; ++I) {
    const float V = X.at(I);
    float R = V;
    switch (N.Kind) {
    case OpKind::Relu:
      R = V > 0.0f ? V : 0.0f;
      break;
    case OpKind::Relu6:
      R = V > 0.0f ? (V < 6.0f ? V : 6.0f) : 0.0f;
      break;
    case OpKind::Sigmoid:
      R = 1.0f / (1.0f + std::exp(-V));
      break;
    case OpKind::SiLU:
      R = V / (1.0f + std::exp(-V));
      break;
    case OpKind::Tanh:
      R = std::tanh(V);
      break;
    case OpKind::Gelu:
      R = 0.5f * V *
          (1.0f + std::tanh(0.7978845608f * (V + 0.044715f * V * V * V)));
      break;
    case OpKind::Identity:
      break;
    default:
      pf_unreachable("not a unary elementwise op");
    }
    Out.at(I) = R;
  }
  return Out;
}

Tensor evalSoftmax(const Node &N, const Env &E) {
  const Tensor &X = get(E, N.Inputs[0]);
  Tensor Out(X.shape());
  const int64_t LastDim = X.shape().dim(X.shape().rank() - 1);
  const int64_t Rows = X.numElements() / LastDim;
  for (int64_t R = 0; R < Rows; ++R) {
    float Max = X.at(R * LastDim);
    for (int64_t I = 1; I < LastDim; ++I)
      Max = std::max(Max, X.at(R * LastDim + I));
    double Sum = 0.0;
    for (int64_t I = 0; I < LastDim; ++I) {
      const float Ex = std::exp(X.at(R * LastDim + I) - Max);
      Out.at(R * LastDim + I) = Ex;
      Sum += Ex;
    }
    for (int64_t I = 0; I < LastDim; ++I)
      Out.at(R * LastDim + I) =
          static_cast<float>(Out.at(R * LastDim + I) / Sum);
  }
  return Out;
}

Tensor evalBinary(const Node &N, const Env &E) {
  const Tensor &A = get(E, N.Inputs[0]);
  const Tensor &B = get(E, N.Inputs[1]);
  Tensor Out(A.shape());
  const int64_t Count = A.numElements();
  const int64_t BCount = B.numElements();
  const bool Broadcast = BCount != Count;
  PF_ASSERT(!Broadcast || Count % BCount == 0,
            "binary op broadcast mismatch");
  for (int64_t I = 0; I < Count; ++I) {
    const float Rhs = Broadcast ? B.at(I % BCount) : B.at(I);
    Out.at(I) = N.Kind == OpKind::Add ? A.at(I) + Rhs : A.at(I) * Rhs;
  }
  return Out;
}

Tensor evalBatchNorm(const Node &N, const Env &E) {
  const BatchNormAttrs &A = std::get<BatchNormAttrs>(N.Attrs);
  const Tensor &X = get(E, N.Inputs[0]);
  const Tensor &Scale = get(E, N.Inputs[1]);
  const Tensor &Bias = get(E, N.Inputs[2]);
  const Tensor &Mean = get(E, N.Inputs[3]);
  const Tensor &Var = get(E, N.Inputs[4]);
  Tensor Out(X.shape());
  const int64_t C = X.shape().dim(3);
  const int64_t Count = X.numElements();
  for (int64_t I = 0; I < Count; ++I) {
    const int64_t Ch = I % C;
    // Variances are materialized as arbitrary values; use |v| to keep the
    // square root defined.
    const float Denominator =
        std::sqrt(std::fabs(Var.at(Ch)) + A.Epsilon);
    Out.at(I) =
        (X.at(I) - Mean.at(Ch)) / Denominator * Scale.at(Ch) + Bias.at(Ch);
  }
  return Out;
}

Tensor evalPool(const Graph &G, const Node &N, const Env &E) {
  const PoolAttrs &A = std::get<PoolAttrs>(N.Attrs);
  const Tensor &X = get(E, N.Inputs[0]);
  const TensorShape &XS = X.shape();
  Tensor Out(G.value(N.Outputs[0]).Shape);
  const TensorShape &OS = Out.shape();
  const bool IsMax = N.Kind == OpKind::MaxPool;
  for (int64_t B = 0; B < OS.dim(0); ++B)
    for (int64_t Ho = 0; Ho < OS.dim(1); ++Ho)
      for (int64_t Wo = 0; Wo < OS.dim(2); ++Wo)
        for (int64_t C = 0; C < OS.dim(3); ++C) {
          double Acc = IsMax ? -1e30 : 0.0;
          int64_t Seen = 0;
          for (int64_t Kh = 0; Kh < A.KernelH; ++Kh) {
            const int64_t H = Ho * A.StrideH + Kh - A.PadTop;
            if (H < 0 || H >= XS.dim(1))
              continue;
            for (int64_t Kw = 0; Kw < A.KernelW; ++Kw) {
              const int64_t Wc = Wo * A.StrideW + Kw - A.PadLeft;
              if (Wc < 0 || Wc >= XS.dim(2))
                continue;
              const float V = X.at4(B, H, Wc, C);
              if (IsMax)
                Acc = std::max(Acc, static_cast<double>(V));
              else
                Acc += V;
              ++Seen;
            }
          }
          Out.at4(B, Ho, Wo, C) = static_cast<float>(
              IsMax ? Acc : (Seen > 0 ? Acc / Seen : 0.0));
        }
  return Out;
}

Tensor evalGlobalAvgPool(const Graph &G, const Node &N, const Env &E) {
  const Tensor &X = get(E, N.Inputs[0]);
  const TensorShape &XS = X.shape();
  Tensor Out(G.value(N.Outputs[0]).Shape);
  const int64_t Spatial = XS.dim(1) * XS.dim(2);
  for (int64_t B = 0; B < XS.dim(0); ++B)
    for (int64_t C = 0; C < XS.dim(3); ++C) {
      double Acc = 0.0;
      for (int64_t H = 0; H < XS.dim(1); ++H)
        for (int64_t W = 0; W < XS.dim(2); ++W)
          Acc += X.at4(B, H, W, C);
      Out.at4(B, 0, 0, C) = static_cast<float>(Acc / Spatial);
    }
  return Out;
}

Tensor evalPad(const Graph &G, const Node &N, const Env &E) {
  const PadAttrs &A = std::get<PadAttrs>(N.Attrs);
  const Tensor &X = get(E, N.Inputs[0]);
  const TensorShape &XS = X.shape();
  Tensor Out(G.value(N.Outputs[0]).Shape); // Zero-initialized.
  for (int64_t B = 0; B < XS.dim(0); ++B)
    for (int64_t H = 0; H < XS.dim(1); ++H)
      for (int64_t W = 0; W < XS.dim(2); ++W)
        for (int64_t C = 0; C < XS.dim(3); ++C)
          Out.at4(B, H + A.Top, W + A.Left, C) = X.at4(B, H, W, C);
  return Out;
}

Tensor evalSlice(const Graph &G, const Node &N, const Env &E) {
  const SliceAttrs &A = std::get<SliceAttrs>(N.Attrs);
  const Tensor &X = get(E, N.Inputs[0]);
  Tensor Out(G.value(N.Outputs[0]).Shape);
  const TensorShape &XS = X.shape();
  const TensorShape &OS = Out.shape();
  // Generic strided copy over up-to-rank-4 shapes: compute index vectors.
  const int64_t Rank = XS.rank();
  std::vector<int64_t> Idx(static_cast<size_t>(Rank), 0);
  const int64_t Count = Out.numElements();
  for (int64_t Flat = 0; Flat < Count; ++Flat) {
    // Decompose Flat into output indices.
    int64_t Rem = Flat;
    for (int64_t D = Rank - 1; D >= 0; --D) {
      Idx[static_cast<size_t>(D)] = Rem % OS.dim(D);
      Rem /= OS.dim(D);
    }
    // Map to input (offset along the sliced axis) and flatten.
    int64_t SrcFlat = 0;
    for (int64_t D = 0; D < Rank; ++D) {
      const int64_t SrcIdx =
          Idx[static_cast<size_t>(D)] + (D == A.Axis ? A.Begin : 0);
      SrcFlat = SrcFlat * XS.dim(D) + SrcIdx;
    }
    Out.at(Flat) = X.at(SrcFlat);
  }
  return Out;
}

Tensor evalConcat(const Graph &G, const Node &N, const Env &E) {
  const ConcatAttrs &A = std::get<ConcatAttrs>(N.Attrs);
  Tensor Out(G.value(N.Outputs[0]).Shape);
  const TensorShape &OS = Out.shape();
  const int64_t Rank = OS.rank();
  int64_t AxisOffset = 0;
  for (ValueId InId : N.Inputs) {
    const Tensor &X = get(E, InId);
    const TensorShape &XS = X.shape();
    const int64_t Count = X.numElements();
    std::vector<int64_t> Idx(static_cast<size_t>(Rank), 0);
    for (int64_t Flat = 0; Flat < Count; ++Flat) {
      int64_t Rem = Flat;
      for (int64_t D = Rank - 1; D >= 0; --D) {
        Idx[static_cast<size_t>(D)] = Rem % XS.dim(D);
        Rem /= XS.dim(D);
      }
      int64_t DstFlat = 0;
      for (int64_t D = 0; D < Rank; ++D) {
        const int64_t DstIdx =
            Idx[static_cast<size_t>(D)] + (D == A.Axis ? AxisOffset : 0);
        DstFlat = DstFlat * OS.dim(D) + DstIdx;
      }
      Out.at(DstFlat) = X.at(Flat);
    }
    AxisOffset += XS.dim(A.Axis);
  }
  return Out;
}

Tensor evalLayerNorm(const Node &N, const Env &E) {
  const LayerNormAttrs &A = std::get<LayerNormAttrs>(N.Attrs);
  const Tensor &X = get(E, N.Inputs[0]);
  const Tensor &Scale = get(E, N.Inputs[1]);
  const Tensor &Bias = get(E, N.Inputs[2]);
  Tensor Out(X.shape());
  const int64_t LastDim = X.shape().dim(X.shape().rank() - 1);
  const int64_t Rows = X.numElements() / LastDim;
  for (int64_t R = 0; R < Rows; ++R) {
    double Mean = 0.0;
    for (int64_t I = 0; I < LastDim; ++I)
      Mean += X.at(R * LastDim + I);
    Mean /= LastDim;
    double Var = 0.0;
    for (int64_t I = 0; I < LastDim; ++I) {
      const double D = X.at(R * LastDim + I) - Mean;
      Var += D * D;
    }
    Var /= LastDim;
    const double Inv = 1.0 / std::sqrt(Var + A.Epsilon);
    for (int64_t I = 0; I < LastDim; ++I)
      Out.at(R * LastDim + I) = static_cast<float>(
          (X.at(R * LastDim + I) - Mean) * Inv * Scale.at(I) +
          Bias.at(I));
  }
  return Out;
}

Tensor evalMatMul(const Graph &G, const Node &N, const Env &E) {
  const MatMulAttrs &A = std::get<MatMulAttrs>(N.Attrs);
  const Tensor &X = get(E, N.Inputs[0]);
  const Tensor &Y = get(E, N.Inputs[1]);
  Tensor Out(G.value(N.Outputs[0]).Shape);
  const int64_t Rows = X.shape().dim(0);
  const int64_t K = X.shape().dim(1);
  const int64_t M = Out.shape().dim(1);
  const int64_t YCols = Y.shape().dim(1);
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t C = 0; C < M; ++C) {
      double Acc = 0.0;
      for (int64_t I = 0; I < K; ++I) {
        const float YV =
            A.TransposeB ? Y.at(C * YCols + I) : Y.at(I * YCols + C);
        Acc += static_cast<double>(X.at(R * K + I)) * YV;
      }
      Out.at(R * M + C) = static_cast<float>(Acc);
    }
  return Out;
}

Tensor evalFlatten(const Graph &G, const Node &N, const Env &E) {
  const Tensor &X = get(E, N.Inputs[0]);
  Tensor Out(G.value(N.Outputs[0]).Shape);
  for (int64_t I = 0; I < X.numElements(); ++I)
    Out.at(I) = X.at(I);
  return Out;
}

} // namespace

Tensor Interpreter::materializeParam(const Graph &G, ValueId Id) {
  const Value &V = G.value(Id);
  PF_ASSERT(V.IsParam, "materializing a non-parameter");
  if (const Tensor *Explicit = G.paramData(Id))
    return *Explicit;
  Tensor T(V.Shape);
  // Fan-in-scaled uniform init keeps activations in a sane range through
  // deep stacks.
  const int64_t FanIn =
      V.Shape.rank() >= 2 ? V.Shape.numElements() / V.Shape.dim(
                                V.Shape.rank() - 1)
                          : V.Shape.numElements();
  const float Scale =
      1.0f / std::sqrt(static_cast<float>(FanIn > 0 ? FanIn : 1));
  Rng R(V.InitSeed);
  for (int64_t I = 0; I < T.numElements(); ++I)
    T.at(I) = R.nextFloat(-Scale, Scale);
  return T;
}

Tensor Interpreter::randomInput(const TensorShape &Shape, uint64_t Seed) {
  Tensor T(Shape);
  Rng R(Seed);
  for (int64_t I = 0; I < T.numElements(); ++I)
    T.at(I) = R.nextFloat(-1.0f, 1.0f);
  return T;
}

std::vector<Tensor> Interpreter::run(const std::vector<Tensor> &Inputs) const {
  PF_ASSERT(Inputs.size() == G.graphInputs().size(),
            "interpreter input count mismatch");
  Env E(G.numValues());

  for (size_t I = 0; I < Inputs.size(); ++I) {
    const ValueId Id = G.graphInputs()[I];
    PF_ASSERT(Inputs[I].shape() == G.value(Id).Shape,
              "interpreter input shape mismatch");
    E[static_cast<size_t>(Id)] = Inputs[I];
  }
  for (const Value &V : G.values())
    if (V.IsParam)
      E[static_cast<size_t>(V.Id)] = materializeParam(G, V.Id);

  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    Tensor Result;
    switch (N.Kind) {
    case OpKind::Input:
      continue;
    case OpKind::Conv2d:
      Result = evalConv2d(G, N, E);
      break;
    case OpKind::Gemm:
      Result = evalGemm(G, N, E);
      break;
    case OpKind::Relu:
    case OpKind::Relu6:
    case OpKind::Sigmoid:
    case OpKind::SiLU:
    case OpKind::Tanh:
    case OpKind::Gelu:
    case OpKind::Identity:
      Result = evalElementwiseUnary(N, E);
      break;
    case OpKind::Softmax:
      Result = evalSoftmax(N, E);
      break;
    case OpKind::Add:
    case OpKind::Mul:
      Result = evalBinary(N, E);
      break;
    case OpKind::BatchNorm:
      Result = evalBatchNorm(N, E);
      break;
    case OpKind::MaxPool:
    case OpKind::AvgPool:
      Result = evalPool(G, N, E);
      break;
    case OpKind::GlobalAvgPool:
      Result = evalGlobalAvgPool(G, N, E);
      break;
    case OpKind::Pad:
      Result = evalPad(G, N, E);
      break;
    case OpKind::Slice:
      Result = evalSlice(G, N, E);
      break;
    case OpKind::Concat:
      Result = evalConcat(G, N, E);
      break;
    case OpKind::Flatten:
      Result = evalFlatten(G, N, E);
      break;
    case OpKind::LayerNorm:
      Result = evalLayerNorm(N, E);
      break;
    case OpKind::MatMul:
      Result = evalMatMul(G, N, E);
      break;
    }
    E[static_cast<size_t>(N.Outputs[0])] = std::move(Result);
  }

  std::vector<Tensor> Outputs;
  Outputs.reserve(G.graphOutputs().size());
  for (ValueId Id : G.graphOutputs())
    Outputs.push_back(get(E, Id));
  return Outputs;
}
