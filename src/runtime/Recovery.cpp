//===- runtime/Recovery.cpp - Fault recovery and degradation ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Recovery.h"

#include <algorithm>

#include "codegen/PimKernelSpec.h"
#include "obs/Counters.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pim/PimSimulator.h"
#include "support/Format.h"

using namespace pf;

RecoveryExecutor::RecoveryExecutor(const SystemConfig &Config,
                                   const FaultModel &Faults,
                                   const RecoveryOptions &Options)
    : Config(Config), Faults(Faults), Options(Options) {}

RecoveryResult RecoveryExecutor::run(const Graph &G,
                                     DiagnosticEngine &DE) const {
  PF_TRACE_SCOPE_CAT("recovery.run", "recovery");
  obs::addCounter("recovery.runs");
  RecoveryResult R;
  R.Executed = G;

  if (!validateSystemConfig(Config, DE))
    return R; // Ok stays false; DE carries config.invalid errors.

  SystemConfig Degraded = Config;
  // The fault model the execution engine sees, projected onto whatever
  // channel group survives. Dead/stalled channels never reach the engine —
  // they are handled here, structurally.
  FaultModel Local;

  if (Config.hasPim()) {
    const int NumPim = Config.Pim.Channels;
    const std::vector<int> Survivors = Faults.survivors(NumPim);
    R.SurvivingChannels = static_cast<int>(Survivors.size());

    for (int Ch = 0; Ch < NumPim; ++Ch) {
      if (Faults.channelDead(Ch)) {
        ++R.DeadChannels;
        DE.warning(DiagCode::FaultDeadChannel, formatStr("channel %d", Ch),
                   "PIM channel permanently lost; remapping its work");
        R.Notes.push_back(formatStr("dead PIM channel %d", Ch));
        obs::addCounter("recovery.dead_channels");
        obs::flightEvent(obs::FlightEventKind::ChannelDead, 0, Ch, -1, 0.0,
                         "recovery");
      } else if (Faults.channelStalled(Ch)) {
        ++R.StalledChannels;
        DE.warning(DiagCode::FaultStalledChannel, formatStr("channel %d", Ch),
                   "GWRITE stall hit the watchdog; channel treated as lost");
        R.Notes.push_back(formatStr("stalled PIM channel %d", Ch));
        obs::addCounter("recovery.stalled_channels");
        obs::flightEvent(obs::FlightEventKind::WatchdogTrip, 0, Ch, -1, 0.0,
                         "recovery");
      }
    }

    const int Lost = NumPim - R.SurvivingChannels;
    const int Floor = std::max(1, Options.PimFloor);

    if (R.SurvivingChannels < Floor) {
      // Rule 2: not enough capacity left — the whole graph falls back to
      // the GPU through the existing device annotations. No PIM work
      // remains, so the engine never needs a fault model.
      int Demoted = 0;
      for (const Node &N : G.nodes()) {
        if (N.Dead || N.Dev != Device::Pim)
          continue;
        R.Executed.node(N.Id).Dev = Device::Gpu;
        ++Demoted;
      }
      R.NodesFellBack += Demoted;
      R.Degraded = true;
      Degraded.Pim.Channels = R.SurvivingChannels;
      DE.warning(DiagCode::FaultPimFloor, G.name(),
                 formatStr("%d of %d PIM channels survive (floor %d); "
                           "falling back to GPU-only execution",
                           R.SurvivingChannels, NumPim, Floor));
      R.Notes.push_back(
          formatStr("PIM capacity below floor (%d < %d): %d node(s) fell "
                    "back to GPU",
                    R.SurvivingChannels, Floor, Demoted));
      obs::addCounter("recovery.pim_floor_fallbacks");
      obs::flightEvent(obs::FlightEventKind::FloorFallback, 0,
                       R.SurvivingChannels, Floor,
                       static_cast<double>(Demoted));
    } else {
      if (Lost > 0) {
        // Rule 1: remap — shrink the PIM channel group and let the command
        // generator re-plan every PIM kernel over the survivors. The
        // Fig. 6 partition enumeration does the actual redistribution.
        Degraded.Pim.Channels = R.SurvivingChannels;
        int Remapped = 0;
        for (const Node &N : G.nodes())
          if (!N.Dead && N.Dev == Device::Pim)
            ++Remapped;
        R.NodesRemapped = Remapped;
        R.Degraded = true;
        if (Remapped > 0) {
          R.Notes.push_back(
              formatStr("remapped %d PIM node(s) across %d surviving "
                        "channel(s)",
                        Remapped, R.SurvivingChannels));
          obs::addCounter("recovery.nodes_remapped",
                          static_cast<int64_t>(Remapped));
          // One remap event per lost channel: its work moves onto the
          // compacted surviving group (B = new group size).
          for (int Ch = 0; Ch < NumPim; ++Ch)
            if (Faults.channelDead(Ch) || Faults.channelStalled(Ch))
              obs::flightEvent(obs::FlightEventKind::ChannelRemap, 0, Ch,
                               R.SurvivingChannels,
                               static_cast<double>(Remapped));
        }
      }
      Local = Faults.compactedFor(Survivors);

      if (!Local.empty()) {
        // Rule 3: pre-check the surviving faults per node. Bounded retries
        // and slow channels merely inflate the node's time; a transient
        // fault outlasting the retry budget demotes just that node.
        // Determinism guarantees the engine's own fault-aware simulation
        // reaches the same verdict for every node left on PIM.
        PimCommandGenerator Gen(Degraded.Pim, Degraded.Codegen);
        PimSimulator Sim(Degraded.Pim);
        std::vector<NodeId> PimNodes;
        for (const Node &N : R.Executed.nodes())
          if (!N.Dead && N.Dev == Device::Pim)
            PimNodes.push_back(N.Id);
        for (NodeId Id : PimNodes) {
          const PimKernelPlan Plan = Gen.plan(lowerToPimSpec(R.Executed, Id));
          const FaultyRunStats FS =
              Sim.runWithFaults(Plan.Trace, Local, Options.Retry);
          const std::string &Name = R.Executed.node(Id).Name;
          if (FS.anyPersistent()) {
            R.Executed.node(Id).Dev = Device::Gpu;
            ++R.NodesFellBack;
            R.Degraded = true;
            DE.warning(DiagCode::FaultRetriesExhausted, Name,
                       formatStr("transient fault persists beyond %d "
                                 "retries; node falls back to GPU",
                                 Options.Retry.MaxRetries));
            R.Notes.push_back(
                formatStr("node %s fell back to GPU (retries exhausted)",
                          Name.c_str()));
            obs::addCounter("recovery.node_fallbacks");
            obs::flightEvent(obs::FlightEventKind::NodeFallback, 0,
                             static_cast<int32_t>(Id), -1, 0.0,
                             "retries-exhausted");
            continue;
          }
          if (FS.TotalRetries > 0) {
            R.TransientRetries += FS.TotalRetries;
            R.Degraded = true;
            R.Notes.push_back(formatStr("node %s absorbed %d retr%s",
                                        Name.c_str(), FS.TotalRetries,
                                        FS.TotalRetries == 1 ? "y" : "ies"));
            obs::addCounter("recovery.retries",
                            static_cast<int64_t>(FS.TotalRetries));
          } else if (FS.degraded()) {
            R.Degraded = true;
            R.Notes.push_back(
                formatStr("node %s runs on a slowed channel", Name.c_str()));
          }
        }
      }
    }
  }

  obs::setGauge("recovery.surviving_channels",
                static_cast<double>(R.SurvivingChannels));
  ExecutionEngine Engine(Degraded);
  std::optional<Timeline> TL = Engine.tryExecute(
      R.Executed, DE, Local.empty() ? nullptr : &Local, &Options.Retry);
  if (!TL) {
    // The engine already recorded its ExecError event; snapshot the rings
    // once more under the recovery label so an unrecovered fault always
    // leaves a trace even if the engine's own dump path changes.
    obs::FlightRecorder::instance().autoDump("recovery: fault unrecovered");
    return R;
  }
  R.Schedule = *std::move(TL);
  R.Ok = true;
  if (R.Degraded)
    obs::addCounter("recovery.degraded_runs");
  return R;
}
