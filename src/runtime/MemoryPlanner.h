//===- runtime/MemoryPlanner.h - Activation liveness planning ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the peak resident activation memory of an execution timeline by
/// liveness analysis: a tensor's buffer lives from the start of its
/// producing kernel until the end of its last consumer. Values produced by
/// layout-optimized data-movement nodes (free Slice/Concat/Pad views) alias
/// their sources and occupy no storage — quantifying the other half of the
/// Section-4.3.2 claim: the zero-copy views save memory as well as time.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_MEMORYPLANNER_H
#define PIMFLOW_RUNTIME_MEMORYPLANNER_H

#include "codegen/MemoryOptimizer.h"
#include "runtime/ExecutionEngine.h"

namespace pf {

/// Result of the liveness analysis.
struct MemoryPlan {
  /// Peak simultaneously-resident activation bytes.
  int64_t PeakActivationBytes = 0;
  /// Time at which the peak occurs.
  double PeakAtNs = 0.0;
  /// Parameter bytes (resident for the whole inference).
  int64_t WeightBytes = 0;
  /// Activation bytes that alias other buffers (freed by the layout
  /// optimizer) instead of being allocated.
  int64_t AliasedBytes = 0;
};

/// Plans \p TL's memory under \p MemOpt's view classification.
MemoryPlan planMemory(const Graph &G, const Timeline &TL,
                      const MemoryOptimizer &MemOpt);

} // namespace pf

#endif // PIMFLOW_RUNTIME_MEMORYPLANNER_H
