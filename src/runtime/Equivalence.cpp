//===- runtime/Equivalence.cpp - Graph output comparison --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Equivalence.h"

#include <vector>

#include "runtime/Interpreter.h"
#include "support/Format.h"

using namespace pf;

namespace {

std::vector<Tensor> runGraph(const Graph &G, uint64_t Seed) {
  std::vector<Tensor> Inputs;
  for (ValueId In : G.graphInputs())
    Inputs.push_back(Interpreter::randomInput(G.value(In).Shape, Seed));
  return Interpreter(G).run(Inputs);
}

} // namespace

std::optional<std::string> pf::compareGraphOutputs(const Graph &A,
                                                   const Graph &B,
                                                   uint64_t Seed) {
  const std::vector<Tensor> OutA = runGraph(A, Seed);
  const std::vector<Tensor> OutB = runGraph(B, Seed);
  if (OutA.size() != OutB.size())
    return formatStr("'%s' yields %zu output(s) but '%s' yields %zu",
                     A.name().c_str(), OutA.size(), B.name().c_str(),
                     OutB.size());
  for (size_t I = 0; I < OutA.size(); ++I) {
    if (OutA[I].shape() != OutB[I].shape())
      return formatStr("output #%zu shape %s vs %s", I,
                       OutA[I].shape().toString().c_str(),
                       OutB[I].shape().toString().c_str());
    for (int64_t E = 0; E < OutA[I].numElements(); ++E)
      if (OutA[I].at(E) != OutB[I].at(E))
        return formatStr("output #%zu element %lld differs: %.9g vs %.9g", I,
                         static_cast<long long>(E),
                         static_cast<double>(OutA[I].at(E)),
                         static_cast<double>(OutB[I].at(E)));
  }
  return std::nullopt;
}
