//===- runtime/ExecutionEngine.cpp - GPU/PIM parallel execution -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutionEngine.h"

#include <algorithm>
#include <unordered_map>

#include "codegen/PimKernelSpec.h"
#include "obs/Counters.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pim/PimSimulator.h"
#include "support/Format.h"

using namespace pf;

const NodeSchedule *Timeline::find(NodeId Id) const {
  for (const NodeSchedule &S : Nodes)
    if (S.Id == Id)
      return &S;
  return nullptr;
}

const NodeSchedule &Timeline::scheduleOf(NodeId Id) const {
  if (const NodeSchedule *S = find(Id))
    return *S;
  fatal(formatStr("timeline has no schedule entry for node %d (%zu nodes "
                  "scheduled); use Timeline::find to probe partial timelines",
                  static_cast<int>(Id), Nodes.size()));
}

ExecutionEngine::ExecutionEngine(const SystemConfig &Config)
    : Config(Config), Gpu(Config.Gpu), MemOpt(Config.MemoryOptimizer) {}

namespace {

/// Elementwise operators that never run as standalone kernels: the GPU
/// runtime (TVM + cuDNN/CUTLASS) fuses them into the producing kernel's
/// epilogue, and for PIM-produced tensors the activation is applied while
/// results drain through the output path (the GDDR6 AiM device the paper
/// extends supports "various activation functions" in hardware).
bool isFusableEpilogue(OpKind Kind) {
  switch (Kind) {
  case OpKind::Relu:
  case OpKind::Relu6:
  case OpKind::Sigmoid:
  case OpKind::SiLU:
  case OpKind::Tanh:
  case OpKind::Gelu:
  case OpKind::Add:
  case OpKind::Mul:
  case OpKind::BatchNorm:
    return true;
  default:
    return false;
  }
}

/// Per-execution cache of PIM kernel plans.
struct PimPlanCache {
  std::unordered_map<NodeId, PimKernelPlan> Plans;

  const PimKernelPlan &planFor(const Graph &G, NodeId Id,
                               const PimCommandGenerator &Gen) {
    auto It = Plans.find(Id);
    if (It != Plans.end())
      return It->second;
    const PimKernelSpec Spec = lowerToPimSpec(G, Id);
    return Plans.emplace(Id, Gen.plan(Spec)).first->second;
  }
};

} // namespace

double ExecutionEngine::nodeLatencyNs(const Graph &G, NodeId Id,
                                      Device Dev) const {
  const Node &N = G.node(Id);
  if (Dev == Device::Pim) {
    PF_ASSERT(Config.hasPim(), "PIM node scheduled without PIM channels");
    PF_ASSERT(isPimCandidate(N), "PIM node is not offloadable");
    PimCommandGenerator Gen(Config.Pim, Config.Codegen);
    return Gen.plan(lowerToPimSpec(G, Id)).Ns;
  }
  const DataMovementCost DM = MemOpt.classify(G, Id);
  if (DM == DataMovementCost::Free)
    return 0.0;
  if (DM == DataMovementCost::Copy) {
    const double Bytes = static_cast<double>(MemOpt.copyBytes(G, Id));
    return Bytes / Config.Gpu.memBandwidth() * 1e9 +
           Config.Gpu.LightKernelLaunchNs;
  }
  return Gpu.nodeTime(G, Id).Ns;
}

double ExecutionEngine::nodeEnergyJ(const Graph &G, NodeId Id,
                                    Device Dev) const {
  const Node &N = G.node(Id);
  if (Dev == Device::Pim) {
    PimCommandGenerator Gen(Config.Pim, Config.Codegen);
    PimSimulator Sim(Config.Pim);
    const PimKernelPlan Plan = Gen.plan(lowerToPimSpec(G, Id));
    return Sim.energyJ(Plan.Stats, Plan.EffectiveMacs);
  }
  const DataMovementCost DM = MemOpt.classify(G, Id);
  if (DM == DataMovementCost::Free)
    return 0.0;
  if (DM == DataMovementCost::Copy) {
    // A copy is a pure-bandwidth kernel.
    GpuKernelTime T;
    T.Ns = nodeLatencyNs(G, Id, Device::Gpu);
    T.Utilization = 0.3;
    return Gpu.kernelEnergyJ(T);
  }
  (void)N;
  return Gpu.kernelEnergyJ(Gpu.nodeTime(G, Id));
}

Timeline ExecutionEngine::execute(const Graph &G) const {
  DiagnosticEngine DE;
  std::optional<Timeline> TL = tryExecute(G, DE);
  if (!TL)
    fatal(formatStr("cannot execute graph '%s':\n%s", G.name().c_str(),
                    DE.render().c_str()));
  return *std::move(TL);
}

std::optional<Timeline>
ExecutionEngine::tryExecute(const Graph &G, DiagnosticEngine &DE,
                            const FaultModel *Faults,
                            const RetryPolicy *Retry) const {
  PF_TRACE_SCOPE_CAT("engine.execute", "execute");
  PF_ASSERT(!Faults || Retry, "fault-aware execution needs a retry policy");
  obs::addCounter("engine.executions");
  obs::addCounter("engine.nodes_scheduled",
                  static_cast<int64_t>(G.numNodes()));
  obs::flightEvent(obs::FlightEventKind::ExecStart, 0,
                   static_cast<int32_t>(G.numNodes()), Config.Pim.Channels);
  // Any failed tryExecute leaves a flight trace behind (when a dump path is
  // configured): record the error event, then snapshot all rings.
  auto FailExec = [](const char *What) {
    obs::flightEvent(obs::FlightEventKind::ExecError, 0, -1, -1, 0.0, What);
    obs::FlightRecorder::instance().autoDump(What);
  };
  PimPlanCache Cache;
  PimCommandGenerator Gen(Config.Pim.Channels > 0
                              ? Config.Pim
                              : PimConfig::newtonPlus(),
                          Config.Codegen);
  PimSimulator Sim(Config.Pim);

  // One scheduling pass; \p GpuScale inflates GPU kernel durations (used by
  // the contention model's second pass). Nodes are dispatched to their
  // device queues greedily by earliest start time, so independent GPU and
  // PIM work (MD-DP halves, pipeline stages) overlaps as the hardware
  // would run it rather than serializing in topological order.
  auto SchedulePass = [&](double GpuScale) -> std::optional<Timeline> {
    Timeline TL;
    const std::vector<NodeId> Order = G.tryTopoOrder();

    // A cyclic dependency set never becomes ready, so Kahn's order comes up
    // short — surface a diagnostic instead of silently scheduling a partial
    // graph (or spinning forever looking for a ready node).
    size_t LiveNodes = 0;
    for (const Node &N : G.nodes())
      LiveNodes += N.Dead ? 0 : 1;
    if (Order.size() != LiveNodes) {
      DE.error(DiagCode::ExecUnschedulable, G.name(),
               formatStr("dependency cycle: only %zu of %zu live nodes are "
                         "schedulable",
                         Order.size(), LiveNodes));
      FailExec("exec.unschedulable: dependency cycle");
      return std::nullopt;
    }

    // Static per-node properties (device annotations fix the producing
    // device of every value up front).
    struct NodeInfo {
      Device Dev = Device::Gpu;
      double Duration = 0.0;
      double EnergyJ = 0.0;
      int Pending = 0;      ///< Unscheduled producer nodes.
      double ReadyNs = 0.0; ///< Max over scheduled deps (incl. handoffs).
      bool Scheduled = false;
      size_t TopoIdx = 0;
    };
    std::unordered_map<NodeId, NodeInfo> Info;

    for (size_t I = 0; I < Order.size(); ++I) {
      const Node &N = G.node(Order[I]);
      NodeInfo NI;
      NI.TopoIdx = I;
      NI.Dev = N.Dev == Device::Pim ? Device::Pim : Device::Gpu;
      if (NI.Dev == Device::Pim) {
        if (!Config.hasPim()) {
          DE.error(DiagCode::ExecNoPimChannels, N.Name,
                   "node is annotated for PIM but the system configuration "
                   "has zero PIM channels");
          FailExec("exec.no-pim-channels");
          return std::nullopt;
        }
        const PimKernelPlan &Plan = Cache.planFor(G, Order[I], Gen);
        if (Faults && !Faults->empty()) {
          const FaultyRunStats FS =
              Sim.runWithFaults(Plan.Trace, *Faults, *Retry);
          if (FS.anyPersistent()) {
            // Recovery must remap or fall back before the engine runs; a
            // persistent fault here would make the timeline silently wrong.
            DE.error(DiagCode::FaultUnrecovered, N.Name,
                     "persistent channel fault reached the execution engine "
                     "unrecovered");
            FailExec("fault.unrecovered");
            return std::nullopt;
          }
          obs::addCounter("engine.fault_retries", FS.TotalRetries);
          NI.Duration = FS.Stats.Ns;
          NI.EnergyJ = Sim.energyJ(FS.Stats, Plan.EffectiveMacs);
        } else {
          NI.Duration = Plan.Ns;
          NI.EnergyJ = Sim.energyJ(Plan.Stats, Plan.EffectiveMacs);
        }
      } else if (isFusableEpilogue(N.Kind)) {
        // Elementwise nodes fuse into their producer's epilogue (GPU) or
        // the PIM drain path: no standalone kernel either way.
        NI.Duration = 0.0;
        NI.EnergyJ = 0.0;
      } else {
        NI.Duration = nodeLatencyNs(G, Order[I], Device::Gpu) * GpuScale;
        NI.EnergyJ = nodeEnergyJ(G, Order[I], Device::Gpu);
      }
      // Count distinct produced input values (consumers() reports each
      // consumer once per value, so duplicates must not double-count).
      std::vector<ValueId> Seen;
      for (ValueId In : N.Inputs) {
        if (G.producer(In) == InvalidNode)
          continue;
        if (std::find(Seen.begin(), Seen.end(), In) != Seen.end())
          continue;
        Seen.push_back(In);
        ++NI.Pending;
      }
      Info.emplace(Order[I], NI);
    }

    double GpuFree = 0.0, PimFree = 0.0;
    size_t Remaining = Order.size();
    while (Remaining > 0) {
      // Pick the ready node with the earliest achievable start; break ties
      // by topological index for determinism.
      NodeId BestId = InvalidNode;
      double BestStart = 0.0;
      for (NodeId Id : Order) {
        NodeInfo &NI = Info.at(Id);
        if (NI.Scheduled || NI.Pending > 0)
          continue;
        const double Free = NI.Dev == Device::Pim ? PimFree : GpuFree;
        const double Start = std::max(Free, NI.ReadyNs);
        if (BestId == InvalidNode || Start < BestStart)
          BestId = Id, BestStart = Start;
      }
      if (BestId == InvalidNode) {
        // Unreachable for acyclic graphs (checked above), but a diagnostic
        // beats an infinite loop if the invariant ever breaks.
        DE.error(DiagCode::ExecUnschedulable, G.name(),
                 formatStr("scheduler deadlock with %zu node(s) unscheduled",
                           Remaining));
        FailExec("exec.unschedulable: scheduler deadlock");
        return std::nullopt;
      }

      NodeInfo &NI = Info.at(BestId);
      const double End = BestStart + NI.Duration;
      NI.Scheduled = true;
      --Remaining;
      // Zero-duration nodes (fused elementwise, free data movement) do not
      // occupy the device.
      if (NI.Duration > 0.0) {
        if (NI.Dev == Device::Pim) {
          PimFree = End;
          TL.PimBusyNs += NI.Duration;
        } else {
          GpuFree = End;
          TL.GpuBusyNs += NI.Duration;
        }
      }
      TL.Nodes.push_back(NodeSchedule{BestId, NI.Dev, BestStart, End,
                                      NI.EnergyJ});
      TL.TotalNs = std::max(TL.TotalNs, End);

      // Release consumers. Cross-device handoffs cost a synchronization
      // only: GPU and PIM channels share one physical memory, so a PIM
      // kernel's input fetch is modeled by its GWRITE commands and a PIM
      // result is read in place by the consumer through the channel
      // interconnect.
      for (ValueId Out : G.node(BestId).Outputs) {
        for (NodeId Consumer : G.consumers(Out)) {
          auto It = Info.find(Consumer);
          if (It == Info.end())
            continue;
          NodeInfo &CI = It->second;
          double Avail = End;
          if (CI.Dev != NI.Dev) {
            Avail += Config.SyncOverheadNs;
            obs::addCounter("engine.cross_device_handoffs");
          }
          CI.ReadyNs = std::max(CI.ReadyNs, Avail);
          --CI.Pending;
        }
      }
    }
    return TL;
  };

  std::optional<Timeline> MaybeTL = SchedulePass(1.0);
  if (!MaybeTL)
    return std::nullopt;
  Timeline TL = *std::move(MaybeTL);

  if (Config.ModelContention && Config.hasPim() && TL.TotalNs > 0.0) {
    // PIM fetch traffic occupies the shared memory controller; GPU kernels
    // overlapping it slow down proportionally to the fetch-busy fraction.
    double FetchCycles = 0.0;
    for (const auto &Entry : Cache.Plans)
      FetchCycles +=
          static_cast<double>(Entry.second.Stats.GwriteBursts) *
          static_cast<double>(Config.Pim.TCcdl);
    const double FetchNs = Config.Pim.cyclesToNs(
        static_cast<int64_t>(FetchCycles));
    const double Fraction = std::min(1.0, FetchNs / TL.TotalNs);
    const double Slowdown = 1.0 + Config.ContentionFactor * Fraction;
    obs::addCounter("engine.contention_reschedules");
    // The first pass succeeded, so the rescaled pass cannot fail: scaling
    // GPU durations changes no schedulability property.
    MaybeTL = SchedulePass(Slowdown);
    if (!MaybeTL)
      return std::nullopt;
    TL = *std::move(MaybeTL);
    TL.ContentionSlowdown = Slowdown;
  }

  // Kernel energies plus GPU static power while idle within the makespan
  // (the PIM kernels' energy already folds in their channels' background
  // power).
  double Energy = 0.0;
  for (const NodeSchedule &S : TL.Nodes)
    Energy += S.EnergyJ;
  Energy += Gpu.idleEnergyJ(std::max(0.0, TL.TotalNs - TL.GpuBusyNs));
  TL.EnergyJ = Energy;

  // Streaming telemetry off the final timeline only (the contention model's
  // first pass would double-count): per-node latency quantiles windowed
  // over wall time, plus the completion event for the flight trace.
  if (obs::activeMetrics().enabled()) {
    const int64_t NowUs =
        static_cast<int64_t>(obs::Tracer::instance().nowUs());
    for (const NodeSchedule &S : TL.Nodes)
      obs::recordMetricWindowed("engine.node_duration_ns",
                                obs::TickDomain::WallUs,
                                /*BucketWidth=*/100'000, NowUs,
                                S.EndNs - S.StartNs);
  }
  obs::flightEvent(obs::FlightEventKind::ExecDone, 0,
                   static_cast<int32_t>(TL.Nodes.size()), -1, TL.TotalNs);
  return TL;
}
