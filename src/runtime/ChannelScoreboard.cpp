//===- runtime/ChannelScoreboard.cpp - Channel circuit breakers ---------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ChannelScoreboard.h"

#include <algorithm>

#include "support/Assert.h"
#include "support/Random.h"

using namespace pf;

const char *pf::breakerEventKindName(BreakerEvent::Kind K) {
  switch (K) {
  case BreakerEvent::Kind::Quarantine:
    return "quarantine";
  case BreakerEvent::Kind::Trip:
    return "trip";
  case BreakerEvent::Kind::Probe:
    return "probe";
  case BreakerEvent::Kind::Readmit:
    return "readmit";
  }
  pf_unreachable("unknown breaker event kind");
}

ChannelScoreboard::ChannelScoreboard(int NumChannels, int TripThreshold,
                             int64_t CooldownNs, uint64_t Seed)
    : TripThreshold(TripThreshold), CooldownNs(std::max<int64_t>(1, CooldownNs)),
      Seed(Seed),
      Channels(static_cast<size_t>(NumChannels > 0 ? NumChannels : 0)) {}

ChannelScoreboard::PerChannel &ChannelScoreboard::state(int Ch) {
  PF_ASSERT(Ch >= 0 && Ch < static_cast<int>(Channels.size()),
            "channel outside the health scoreboard");
  return Channels[static_cast<size_t>(Ch)];
}

const ChannelScoreboard::PerChannel *ChannelScoreboard::stateOrNull(int Ch) const {
  if (Ch < 0 || Ch >= static_cast<int>(Channels.size()))
    return nullptr;
  return &Channels[static_cast<size_t>(Ch)];
}

void ChannelScoreboard::note(BreakerEvent::Kind K, int Ch, int64_t NowNs,
                         bool Ok, int ReqId) {
  Events.push_back(BreakerEvent{NowNs, Ch, ReqId, K, Ok});
}

bool ChannelScoreboard::recordFailure(int Ch, int64_t NowNs, int ReqId) {
  PerChannel &S = state(Ch);
  ++S.Consecutive;
  if (S.Open || TripThreshold <= 0 || S.Consecutive < TripThreshold)
    return false;
  S.Open = true;
  ++S.Trips;
  ++Trips;
  S.LastTripReq = ReqId;
  note(BreakerEvent::Kind::Trip, Ch, NowNs, false, ReqId);
  return true;
}

void ChannelScoreboard::recordSuccess(int Ch) {
  PerChannel &S = state(Ch);
  if (!S.Open)
    S.Consecutive = 0;
}

void ChannelScoreboard::noteQuarantine(int Ch, int64_t NowNs, int ReqId) {
  note(BreakerEvent::Kind::Quarantine, Ch, NowNs, false, ReqId);
}

void ChannelScoreboard::noteRecovery(int Ch, int64_t NowNs) {
  ++Recoveries;
  note(BreakerEvent::Kind::Readmit, Ch, NowNs, false);
}

int64_t ChannelScoreboard::nextProbeNs(int Ch, int64_t NowNs) {
  PerChannel &S = state(Ch);
  const int Attempt = S.ProbeAttempts++;
  // Stateless seeded jitter: a throwaway Rng keyed on (seed, channel,
  // attempt) keeps probe instants independent of event-processing order.
  Rng R(Seed ^ (static_cast<uint64_t>(Ch) * 0x9E3779B97F4A7C15ull) ^
        (static_cast<uint64_t>(Attempt) << 17));
  const int64_t Jitter = static_cast<int64_t>(
      R.nextBelow(static_cast<uint64_t>(CooldownNs / 4 + 1)));
  return NowNs + CooldownNs + Jitter;
}

bool ChannelScoreboard::probe(int Ch, int64_t NowNs, bool Healthy) {
  PerChannel &S = state(Ch);
  ++Probes;
  note(BreakerEvent::Kind::Probe, Ch, NowNs, Healthy, S.LastTripReq);
  if (!Healthy)
    return false;
  S.Open = false;
  S.Consecutive = 0;
  S.ProbeAttempts = 0;
  ++Readmits;
  note(BreakerEvent::Kind::Readmit, Ch, NowNs, true, S.LastTripReq);
  return true;
}

bool ChannelScoreboard::open(int Ch) const {
  const PerChannel *S = stateOrNull(Ch);
  return S && S->Open;
}

int ChannelScoreboard::consecutiveFailures(int Ch) const {
  const PerChannel *S = stateOrNull(Ch);
  return S ? S->Consecutive : 0;
}

int ChannelScoreboard::tripCount(int Ch) const {
  const PerChannel *S = stateOrNull(Ch);
  return S ? S->Trips : 0;
}

int ChannelScoreboard::lastTripRequest(int Ch) const {
  const PerChannel *S = stateOrNull(Ch);
  return S ? S->LastTripReq : -1;
}
