//===- runtime/Recovery.h - Fault recovery and degradation ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graceful degradation for the PIM channel runtime: given a device-annotated
/// graph and a FaultModel, the RecoveryExecutor produces a valid Timeline no
/// matter what the fault schedule does — never an assert, never a hang.
///
/// The decision ladder, applied before the execution engine ever runs:
///
///  1. Dead and stalled channels are removed from the PIM channel group.
///     If enough channels survive, PIM work is *remapped*: the command
///     generator re-plans every PIM kernel against the shrunken group (the
///     same Fig. 6 enumeration that picked the original channel
///     partitioning simply picks a new one over fewer channels).
///  2. If survivors drop below the configured floor, the whole graph falls
///     back to GPU-only via the existing device annotations.
///  3. Transient faults that outlast the retry budget demote just the
///     affected node to the GPU; bounded retries merely inflate its time.
///
/// Recovery only ever flips Device annotations — it never changes graph
/// structure or numerics — so a recovered graph is bit-identical to the
/// original under the runtime/Equivalence oracle. Degradation is reported
/// as warning diagnostics (fault.*) plus obs counters, keeping
/// hasErrors() == false for every successfully recovered run.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_RECOVERY_H
#define PIMFLOW_RUNTIME_RECOVERY_H

#include <string>
#include <vector>

#include "pim/FaultModel.h"
#include "runtime/ExecutionEngine.h"

namespace pf {

/// Knobs of the recovery policy.
struct RecoveryOptions {
  /// Retry/backoff/watchdog policy for transient and stalled commands.
  RetryPolicy Retry;
  /// Minimum surviving PIM channels to keep running in mixed mode; fewer
  /// survivors trigger the whole-graph GPU fallback. Clamped to >= 1 (zero
  /// surviving channels can never host PIM work).
  int PimFloor = 1;
};

/// Outcome of one recovered execution.
struct RecoveryResult {
  /// A valid timeline was produced (recovery itself cannot fail for valid
  /// inputs; Ok == false means the *input* was bad — invalid config or
  /// unschedulable graph — and DE carries the errors).
  bool Ok = false;
  /// Something degraded: channels lost, nodes remapped or demoted.
  bool Degraded = false;

  /// The graph actually executed. Differs from the input only in Device
  /// annotations (GPU fallbacks); structure and numerics are untouched.
  Graph Executed{"empty"};
  /// The resulting schedule over the (possibly degraded) configuration.
  Timeline Schedule;

  int DeadChannels = 0;
  int StalledChannels = 0;
  int SurvivingChannels = 0;
  /// PIM nodes re-planned over the shrunken channel group.
  int NodesRemapped = 0;
  /// Nodes demoted to the GPU (floor fallback or exhausted retries).
  int NodesFellBack = 0;
  /// Total successful command retries absorbed into the timeline.
  int TransientRetries = 0;

  /// Human-readable degradation notes, one per event, in decision order.
  std::vector<std::string> Notes;
};

/// Executes graphs against a fault schedule with retry, remap, and fallback.
class RecoveryExecutor {
public:
  RecoveryExecutor(const SystemConfig &Config, const FaultModel &Faults,
                   const RecoveryOptions &Options = {});

  /// Runs \p G to a valid Timeline, degrading as the fault schedule
  /// demands. Degradations are warning() diagnostics in \p DE; errors are
  /// only emitted for invalid inputs (config.invalid, exec.*), in which
  /// case Ok is false.
  RecoveryResult run(const Graph &G, DiagnosticEngine &DE) const;

  const SystemConfig &config() const { return Config; }
  const FaultModel &faults() const { return Faults; }

private:
  SystemConfig Config;
  FaultModel Faults;
  RecoveryOptions Options;
};

} // namespace pf

#endif // PIMFLOW_RUNTIME_RECOVERY_H
