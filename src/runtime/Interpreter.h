//===- runtime/Interpreter.h - Functional reference executor ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CPU reference interpreter that actually computes tensor values for any
/// graph. It is the correctness oracle for the PIMFlow transformation
/// passes: the MD-DP split and pipelining tests run the original and the
/// transformed graph on identical inputs and require bit-for-bit equal
/// outputs (the transforms only reorganize computation, never change it).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_INTERPRETER_H
#define PIMFLOW_RUNTIME_INTERPRETER_H

#include <vector>

#include "ir/Graph.h"

namespace pf {

/// Functional executor over the reference CPU backend.
class Interpreter {
public:
  explicit Interpreter(const Graph &G) : G(G) {}

  /// Executes the graph on \p Inputs (one tensor per graph input, in
  /// graphInputs() order) and returns the graph outputs in
  /// graphOutputs() order.
  std::vector<Tensor> run(const std::vector<Tensor> &Inputs) const;

  /// Materializes a parameter tensor: explicit data if attached to the
  /// graph, otherwise deterministic pseudo-random values from the
  /// parameter's InitSeed (uniform in [-s, s] with s = 1/sqrt(fan-in)).
  static Tensor materializeParam(const Graph &G, ValueId Id);

  /// Builds a deterministic pseudo-random input tensor for \p Shape.
  static Tensor randomInput(const TensorShape &Shape, uint64_t Seed);

private:
  const Graph &G;
};

} // namespace pf

#endif // PIMFLOW_RUNTIME_INTERPRETER_H
