//===- runtime/Equivalence.h - Graph output comparison ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter-based graph equivalence: runs two graphs on the same
/// deterministic random inputs and compares outputs bit-exactly. The
/// compiler-correctness contract behind both the equivalence test suite and
/// the pass-boundary differential check — every PIMFlow rewrite is
/// elementwise exact (H-splits, Slice/Concat and pipelining reorder work
/// but never approximate it), so any output difference is a transform bug.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_EQUIVALENCE_H
#define PIMFLOW_RUNTIME_EQUIVALENCE_H

#include <cstdint>
#include <optional>
#include <string>

#include "ir/Graph.h"

namespace pf {

/// Runs \p A and \p B on identical random inputs derived from \p Seed
/// (both graphs must share A's graph-input shapes) and compares every
/// output element bit-exactly. Returns a description of the first
/// difference — output index, element index, both values — or std::nullopt
/// when the graphs agree everywhere.
std::optional<std::string> compareGraphOutputs(const Graph &A, const Graph &B,
                                               uint64_t Seed);

} // namespace pf

#endif // PIMFLOW_RUNTIME_EQUIVALENCE_H
