//===- runtime/ExecutionEngine.h - GPU/PIM parallel execution ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mixed-parallel execution engine (the paper's extended TVM execution
/// engine): given a device-annotated graph it schedules GPU and PIM kernels
/// onto their respective resources as dependencies allow, prices
/// cross-device data movement over the channel interconnect, and reports a
/// per-node timeline with end-to-end latency and energy.
///
/// MD-DP and pipelined parallelism need no special handling here — the
/// transformation passes encode them structurally (split nodes / stage
/// nodes with the right dataflow edges), so plain dependency-driven list
/// scheduling realizes the overlap.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_EXECUTIONENGINE_H
#define PIMFLOW_RUNTIME_EXECUTIONENGINE_H

#include <vector>

#include "codegen/MemoryOptimizer.h"
#include "gpu/GpuModel.h"
#include "runtime/SystemConfig.h"

namespace pf {

/// Execution record of one node.
struct NodeSchedule {
  NodeId Id = InvalidNode;
  Device Dev = Device::Gpu;
  double StartNs = 0.0;
  double EndNs = 0.0;
  double EnergyJ = 0.0;

  double durationNs() const { return EndNs - StartNs; }
};

/// Result of executing a graph.
struct Timeline {
  std::vector<NodeSchedule> Nodes;
  double TotalNs = 0.0;
  double GpuBusyNs = 0.0;
  double PimBusyNs = 0.0;
  /// Total energy: kernel energies + GPU static power over the makespan.
  double EnergyJ = 0.0;
  /// GPU slowdown applied by the contention model (1.0 = none).
  double ContentionSlowdown = 1.0;

  /// Schedule entry for node \p Id (must exist).
  const NodeSchedule &scheduleOf(NodeId Id) const;
};

/// Dependency-driven two-resource scheduler over the timing models.
class ExecutionEngine {
public:
  explicit ExecutionEngine(const SystemConfig &Config);

  const SystemConfig &config() const { return Config; }

  /// Executes \p G per its device annotations (Device::Any runs on GPU).
  Timeline execute(const Graph &G) const;

  /// Latency of one node on \p Dev in isolation (no transfers).
  double nodeLatencyNs(const Graph &G, NodeId Id, Device Dev) const;

  /// Energy of one node on \p Dev in isolation.
  double nodeEnergyJ(const Graph &G, NodeId Id, Device Dev) const;

private:
  SystemConfig Config;
  GpuModel Gpu;
  MemoryOptimizer MemOpt;
};

} // namespace pf

#endif // PIMFLOW_RUNTIME_EXECUTIONENGINE_H
