//===- runtime/ExecutionEngine.h - GPU/PIM parallel execution ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mixed-parallel execution engine (the paper's extended TVM execution
/// engine): given a device-annotated graph it schedules GPU and PIM kernels
/// onto their respective resources as dependencies allow, prices
/// cross-device data movement over the channel interconnect, and reports a
/// per-node timeline with end-to-end latency and energy.
///
/// MD-DP and pipelined parallelism need no special handling here — the
/// transformation passes encode them structurally (split nodes / stage
/// nodes with the right dataflow edges), so plain dependency-driven list
/// scheduling realizes the overlap.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_RUNTIME_EXECUTIONENGINE_H
#define PIMFLOW_RUNTIME_EXECUTIONENGINE_H

#include <optional>
#include <vector>

#include "codegen/MemoryOptimizer.h"
#include "gpu/GpuModel.h"
#include "pim/FaultModel.h"
#include "runtime/SystemConfig.h"
#include "support/Diagnostics.h"

namespace pf {

/// Execution record of one node.
struct NodeSchedule {
  NodeId Id = InvalidNode;
  Device Dev = Device::Gpu;
  double StartNs = 0.0;
  double EndNs = 0.0;
  double EnergyJ = 0.0;

  double durationNs() const { return EndNs - StartNs; }
};

/// Result of executing a graph.
struct Timeline {
  std::vector<NodeSchedule> Nodes;
  double TotalNs = 0.0;
  double GpuBusyNs = 0.0;
  double PimBusyNs = 0.0;
  /// Total energy: kernel energies + GPU static power over the makespan.
  double EnergyJ = 0.0;
  /// GPU slowdown applied by the contention model (1.0 = none).
  double ContentionSlowdown = 1.0;

  /// Schedule entry for node \p Id, or nullptr when the node was never
  /// scheduled — the probe for recovery code inspecting partially-executed
  /// timelines, where absence is an answer rather than a bug.
  const NodeSchedule *find(NodeId Id) const;

  /// Schedule entry for node \p Id. Unlike the old must-exist contract
  /// (pf_unreachable), a missing node now dies through fatal() with a
  /// diagnosable message naming the node; callers that can tolerate absence
  /// should use find() instead.
  const NodeSchedule &scheduleOf(NodeId Id) const;
};

/// Dependency-driven two-resource scheduler over the timing models.
class ExecutionEngine {
public:
  explicit ExecutionEngine(const SystemConfig &Config);

  const SystemConfig &config() const { return Config; }

  /// Executes \p G per its device annotations (Device::Any runs on GPU).
  /// Aborts through fatal() on unschedulable inputs (dependency cycle, PIM
  /// annotation without PIM channels); use tryExecute to get a diagnostic
  /// instead.
  Timeline execute(const Graph &G) const;

  /// Like execute, but unschedulable inputs produce coded diagnostics in
  /// \p DE (exec.unschedulable, exec.no-pim-channels) and nullopt instead
  /// of an abort. With a non-null \p Faults, PIM kernel timings are
  /// simulated fault-aware under \p Retry (which must then also be
  /// non-null): retries and slow channels inflate durations, and any
  /// persistent fault reaching the engine is an error (fault.unrecovered)
  /// — recovery must remap or fall back first, so a silently wrong
  /// timeline is impossible.
  std::optional<Timeline> tryExecute(const Graph &G, DiagnosticEngine &DE,
                                     const FaultModel *Faults = nullptr,
                                     const RetryPolicy *Retry = nullptr) const;

  /// Latency of one node on \p Dev in isolation (no transfers).
  double nodeLatencyNs(const Graph &G, NodeId Id, Device Dev) const;

  /// Energy of one node on \p Dev in isolation.
  double nodeEnergyJ(const Graph &G, NodeId Id, Device Dev) const;

private:
  SystemConfig Config;
  GpuModel Gpu;
  MemoryOptimizer MemOpt;
};

} // namespace pf

#endif // PIMFLOW_RUNTIME_EXECUTIONENGINE_H
