//===- obs/TraceCheck.cpp - Chrome trace semantic validation --------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceCheck.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "support/Format.h"

using namespace pf;
using namespace pf::obs;

namespace {

/// Lane key: (pid, tid) as integers. The checker already rejected
/// non-numeric pids/tids before keys are built.
using LaneKey = std::pair<long long, long long>;

const JsonValue *numberField(const JsonValue &E, const char *Key) {
  const JsonValue *V = E.find(Key);
  return V && V->isNumber() ? V : nullptr;
}

std::string eventName(const JsonValue &E) {
  const JsonValue *N = E.find("name");
  return N && N->isString() ? N->Str : std::string();
}

} // namespace

bool pf::obs::checkChromeTrace(const JsonValue &Doc, std::string &Error,
                               TraceCheckSummary *Summary) {
  auto Fail = [&Error](size_t Index, const std::string &What) {
    Error = formatStr("traceEvents[%d]: %s", static_cast<int>(Index),
                      What.c_str());
    return false;
  };

  const JsonValue *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray() || Events->Array.empty()) {
    Error = "missing or empty 'traceEvents' array";
    return false;
  }

  TraceCheckSummary S;
  S.Events = Events->Array.size();

  // Pass 1: per-event field checks, lane grouping, flow id collection.
  std::map<LaneKey, std::vector<size_t>> LaneEvents;
  std::set<long long> FlowStarts, FlowFinishes;
  size_t FirstFinishNoStart = 0;
  bool SawFinishNoStartCandidate = false;
  for (size_t I = 0; I < Events->Array.size(); ++I) {
    const JsonValue &E = Events->Array[I];
    if (!E.isObject())
      return Fail(I, "not an object");
    const JsonValue *Ph = E.find("ph");
    if (!Ph || !Ph->isString())
      return Fail(I, "missing string 'ph'");
    const JsonValue *Pid = numberField(E, "pid");
    if (!Pid)
      return Fail(I, "missing numeric 'pid'");
    const JsonValue *Tid = numberField(E, "tid");
    if (!Tid)
      return Fail(I, "missing numeric 'tid'");
    const JsonValue *Ts = numberField(E, "ts");
    if (Ph->Str != "M") {
      if (!Ts)
        return Fail(I, "missing numeric 'ts'");
      if (Ts->Number < 0)
        return Fail(I, "negative 'ts'");
    } else if (Ts && Ts->Number < 0)
      return Fail(I, "negative 'ts'");
    const JsonValue *Dur = numberField(E, "dur");
    if (E.find("dur") && !Dur)
      return Fail(I, "non-numeric 'dur'");
    if (Dur && Dur->Number < 0)
      return Fail(I, "negative 'dur'");

    const std::string &P = Ph->Str;
    if (P == "X")
      ++S.CompleteSpans;
    else if (P == "i")
      ++S.Instants;
    else if (P == "s" || P == "f" || P == "t") {
      const JsonValue *Id = numberField(E, "id");
      if (!Id) {
        const JsonValue *IdStr = E.find("id");
        if (!IdStr || !IdStr->isString())
          return Fail(I, formatStr("flow event ('%s') missing 'id'",
                                   P.c_str()));
      }
      // Flow ids may be numbers or strings; normalize numbers, and hash
      // nothing — the exporters only emit numeric ids.
      const long long IdVal =
          Id ? static_cast<long long>(Id->Number) : -1;
      if (P == "s")
        FlowStarts.insert(IdVal);
      else {
        FlowFinishes.insert(IdVal);
        if (!FlowStarts.count(IdVal) && !SawFinishNoStartCandidate) {
          // Finishes may legally precede their start in file order only
          // if a start appears later; re-checked after the pass.
          SawFinishNoStartCandidate = true;
          FirstFinishNoStart = I;
        }
      }
    }
    if (P == "B" || P == "E")
      LaneEvents[{static_cast<long long>(Pid->Number),
                  static_cast<long long>(Tid->Number)}]
          .push_back(I);
    if (P != "M") {
      // Lanes counted over non-metadata events only, so naming a thread
      // does not create a lane.
      LaneEvents[{static_cast<long long>(Pid->Number),
                  static_cast<long long>(Tid->Number)}];
    }
  }

  // Flow resolution: every finish needs a start somewhere in the file,
  // every start a finish.
  for (long long Id : FlowFinishes)
    if (!FlowStarts.count(Id)) {
      Error = formatStr("flow finish id %lld has no matching start ('s') "
                        "event (near traceEvents[%d])",
                        Id, static_cast<int>(FirstFinishNoStart));
      return false;
    }
  for (long long Id : FlowStarts)
    if (!FlowFinishes.count(Id)) {
      Error = formatStr("flow start id %lld has no matching finish ('f') "
                        "event",
                        Id);
      return false;
    }
  S.FlowChains = FlowStarts.size();
  S.Lanes = LaneEvents.size();

  // Pass 2: B/E nesting per lane, in timestamp order (stable, so the
  // exporters' file order breaks zero-length-span ties: B before E).
  for (auto &[Key, Indices] : LaneEvents) {
    std::stable_sort(Indices.begin(), Indices.end(),
                     [&](size_t A, size_t B) {
                       const double TA =
                           Events->Array[A].numberOr("ts", 0.0);
                       const double TB =
                           Events->Array[B].numberOr("ts", 0.0);
                       return TA < TB;
                     });
    std::vector<std::pair<std::string, size_t>> Stack; // (name, index)
    for (size_t I : Indices) {
      const JsonValue &E = Events->Array[I];
      const std::string &P = E.find("ph")->Str;
      if (P == "B") {
        Stack.emplace_back(eventName(E), I);
      } else if (P == "E") {
        if (Stack.empty())
          return Fail(I, formatStr("'E' with no open 'B' on pid %lld tid "
                                   "%lld",
                                   Key.first, Key.second));
        const std::string Name = eventName(E);
        if (!Name.empty() && !Stack.back().first.empty() &&
            Name != Stack.back().first)
          return Fail(I, formatStr("'E' name '%s' does not close open 'B' "
                                   "'%s' (traceEvents[%d])",
                                   Name.c_str(),
                                   Stack.back().first.c_str(),
                                   static_cast<int>(Stack.back().second)));
        Stack.pop_back();
        ++S.PairedSpans;
      }
    }
    if (!Stack.empty())
      return Fail(Stack.back().second,
                  formatStr("unclosed 'B' '%s' on pid %lld tid %lld",
                            Stack.back().first.c_str(), Key.first,
                            Key.second));
  }

  if (Summary)
    *Summary = S;
  return true;
}
