//===- obs/StatsExport.h - JSON stats export --------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable counterpart of `core/Report.h`'s renderReport: the same
/// ExecutionStats (numbers match the prose report exactly — both call
/// computeStats), the timeline summary, the segment-mode census, and a dump
/// of the observability counter/histogram registry.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_STATSEXPORT_H
#define PIMFLOW_OBS_STATSEXPORT_H

#include <string>

#include "core/Report.h"

namespace pf::obs {

/// Serializes \p R (stats, timeline, segments) plus the current counter
/// registry as a JSON document.
std::string renderStatsJson(const CompileResult &R);

/// Serializes precomputed \p S with its \p R context (use when the caller
/// already ran computeStats and wants byte-identical numbers).
std::string renderStatsJson(const CompileResult &R, const ExecutionStats &S);

/// Writes renderStatsJson(R) to \p Path; false on I/O failure.
bool writeStatsJson(const CompileResult &R, const std::string &Path);

} // namespace pf::obs

#endif // PIMFLOW_OBS_STATSEXPORT_H
