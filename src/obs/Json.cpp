//===- obs/Json.cpp - Minimal JSON writer and parser ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/Assert.h"
#include "support/Format.h"

using namespace pf;
using namespace pf::obs;

std::string pf::obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20)
        Out += formatStr("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void JsonWriter::separate() {
  if (PendingKey) {
    PendingKey = false;
    return; // The key already emitted a comma if one was needed.
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Out += '{';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  PF_ASSERT(!NeedComma.empty(), "endObject without beginObject");
  NeedComma.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Out += '[';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  PF_ASSERT(!NeedComma.empty(), "endArray without beginArray");
  NeedComma.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  PF_ASSERT(!PendingKey, "key after key");
  separate();
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  separate();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(const char *S) {
  return value(std::string(S));
}

JsonWriter &JsonWriter::value(double D) {
  separate();
  if (!std::isfinite(D)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    Out += "null";
    return *this;
  }
  // %.17g round-trips every double; trim to the shortest representation
  // that still parses back exactly.
  std::string S = formatStr("%.17g", D);
  for (int Prec = 1; Prec < 17; ++Prec) {
    std::string Short = formatStr("%.*g", Prec, D);
    if (std::strtod(Short.c_str(), nullptr) == D) {
      S = std::move(Short);
      break;
    }
  }
  Out += S;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t I) {
  separate();
  Out += formatStr("%lld", static_cast<long long>(I));
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  separate();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::nullValue() {
  separate();
  Out += "null";
  return *this;
}

std::string JsonWriter::take() {
  PF_ASSERT(NeedComma.empty(), "take() with unclosed containers");
  std::string S = std::move(Out);
  Out.clear();
  PendingKey = false;
  return S;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

struct Parser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;

  explicit Parser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = formatStr("at offset %zu: %s", Pos, Msg.c_str());
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(formatStr("expected '%c'", C));
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &V) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    const char C = Text[Pos];
    if (C == '{')
      return parseObject(V);
    if (C == '[')
      return parseArray(V);
    if (C == '"') {
      V.K = JsonValue::Kind::String;
      return parseString(V.Str);
    }
    if (C == 't' || C == 'f')
      return parseKeyword(V);
    if (C == 'n') {
      if (Text.compare(Pos, 4, "null") != 0)
        return fail("bad keyword");
      Pos += 4;
      V.K = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(V);
  }

  bool parseKeyword(JsonValue &V) {
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      V.K = JsonValue::Kind::Bool;
      V.Boolean = true;
      return true;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      V.K = JsonValue::Kind::Bool;
      V.Boolean = false;
      return true;
    }
    return fail("bad keyword");
  }

  bool parseNumber(JsonValue &V) {
    const size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    char *End = nullptr;
    const std::string Num = Text.substr(Start, Pos - Start);
    V.Number = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      return fail("malformed number");
    V.K = JsonValue::Kind::Number;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      const char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          const char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // Encode as UTF-8 (surrogate pairs are passed through untouched —
        // the emitter never produces them).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // Closing quote.
    return true;
  }

  bool parseArray(JsonValue &V) {
    if (!consume('['))
      return false;
    V.K = JsonValue::Kind::Array;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue Elem;
      if (!parseValue(Elem))
        return false;
      V.Array.push_back(std::move(Elem));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parseObject(JsonValue &V) {
    if (!consume('{'))
      return false;
    V.K = JsonValue::Kind::Object;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      std::string Key;
      skipWs();
      if (!parseString(Key))
        return false;
      if (!consume(':'))
        return false;
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      V.Object.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}');
    }
  }
};

} // namespace

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Object)
    if (Name == Key)
      return &V;
  return nullptr;
}

double JsonValue::numberOr(const std::string &Key, double Default) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? V->Number : Default;
}

std::optional<JsonValue> JsonValue::parse(const std::string &Text,
                                          std::string *Error) {
  Parser P(Text);
  JsonValue V;
  if (!P.parseValue(V)) {
    if (Error)
      *Error = P.Error;
    return std::nullopt;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Error)
      *Error = formatStr("trailing characters at offset %zu", P.Pos);
    return std::nullopt;
  }
  return V;
}

//===----------------------------------------------------------------------===//
// File helpers
//===----------------------------------------------------------------------===//

bool pf::obs::writeTextFile(const std::string &Path,
                            const std::string &Content) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const size_t Written = std::fwrite(Content.data(), 1, Content.size(), F);
  const bool Ok = Written == Content.size() && std::fclose(F) == 0;
  if (Written != Content.size())
    std::fclose(F);
  return Ok;
}

std::optional<std::string> pf::obs::readTextFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return std::nullopt;
  std::string Out;
  char Buf[4096];
  size_t N = 0;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}
