//===- obs/Trace.h - Low-overhead compile-phase span tracer -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe span tracer for the compiler's own phases. Scopes are RAII
/// (`PF_TRACE_SCOPE("search.dp")`) and nest naturally; each completed scope
/// records a TraceEvent with a wall-clock timestamp relative to the tracer
/// epoch and the recording thread. The tracer is disabled by default: a
/// disabled PF_TRACE_SCOPE costs one relaxed atomic load, so instrumentation
/// can stay in hot compiler paths permanently (the `pimflow` driver enables
/// it when `--trace-out` is passed).
///
/// Events are consumed by `obs/ChromeTrace.h`, which renders them together
/// with the simulated execution Timeline as Chrome trace-event JSON.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_TRACE_H
#define PIMFLOW_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pf::obs {

/// One completed span. Timestamps are microseconds of wall-clock time since
/// the tracer's epoch (reset by clear()).
struct TraceEvent {
  std::string Name;
  /// Chrome trace category; groups phases in the viewer.
  std::string Category = "compile";
  double StartUs = 0.0;
  double DurUs = 0.0;
  /// Small dense id of the recording thread (0 = first thread seen).
  uint32_t Tid = 0;
};

/// The process-wide span sink.
class Tracer {
public:
  static Tracer &instance();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Drops all recorded events and re-bases the epoch at now.
  void clear();

  /// Microseconds of wall-clock time since the epoch.
  double nowUs() const;

  /// Records one completed span on the calling thread.
  void record(std::string Name, std::string Category, double StartUs,
              double DurUs);

  /// Copies out the events recorded so far.
  std::vector<TraceEvent> snapshot() const;

  /// Number of events recorded so far.
  size_t numEvents() const;

private:
  Tracer();
  uint32_t threadId();

  std::atomic<bool> Enabled{false};
  std::atomic<int64_t> EpochNs{0};
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
};

/// RAII span: measures construction-to-destruction and records it on the
/// tracer when tracing is enabled. Cheap no-op otherwise.
class TraceScope {
public:
  explicit TraceScope(const char *Name, const char *Category = "compile") {
    Tracer &T = Tracer::instance();
    if (!T.enabled())
      return;
    Active = true;
    this->Name = Name;
    this->Category = Category;
    StartUs = T.nowUs();
  }
  /// Dynamic-name variant for per-item spans.
  explicit TraceScope(std::string Name, const char *Category = "compile") {
    Tracer &T = Tracer::instance();
    if (!T.enabled())
      return;
    Active = true;
    DynName = std::move(Name);
    this->Category = Category;
    StartUs = T.nowUs();
  }
  ~TraceScope() {
    if (!Active)
      return;
    Tracer &T = Tracer::instance();
    const double End = T.nowUs();
    T.record(Name ? std::string(Name) : std::move(DynName), Category,
             StartUs, End - StartUs);
  }
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  bool Active = false;
  const char *Name = nullptr;
  std::string DynName;
  const char *Category = "compile";
  double StartUs = 0.0;
};

} // namespace pf::obs

#define PF_TRACE_CONCAT_IMPL(A, B) A##B
#define PF_TRACE_CONCAT(A, B) PF_TRACE_CONCAT_IMPL(A, B)

/// Opens an RAII span covering the rest of the enclosing scope.
#define PF_TRACE_SCOPE(NAME)                                                 \
  ::pf::obs::TraceScope PF_TRACE_CONCAT(PfTraceScope_, __LINE__)(NAME)

/// Like PF_TRACE_SCOPE with an explicit Chrome trace category.
#define PF_TRACE_SCOPE_CAT(NAME, CAT)                                        \
  ::pf::obs::TraceScope PF_TRACE_CONCAT(PfTraceScope_, __LINE__)(NAME, CAT)

#endif // PIMFLOW_OBS_TRACE_H
