//===- obs/Attribution.h - Timeline performance attribution -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Answers "where did the time go" for an executed Timeline: the critical
/// chain through dependency and device-occupancy constraints, per-node
/// slack, busy/idle accounting for the GPU lane and every PIM channel, and
/// per-channel command-phase cycle totals.
///
/// The analysis replays the ExecutionEngine's scheduling rules rather than
/// instrumenting the scheduler: a node starts at max(lane free, ready), a
/// cross-device producer hands off SyncOverheadNs late, and zero-duration
/// (fused) nodes never occupy a lane. Per-channel occupancy is derived the
/// same way the Chrome-trace exporter derives it — by regenerating each
/// offloaded node's command trace and reading which channels it maps to —
/// so the two views of a run always agree.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_ATTRIBUTION_H
#define PIMFLOW_OBS_ATTRIBUTION_H

#include <string>
#include <vector>

#include "ir/Graph.h"
#include "pim/PimSimulator.h"
#include "runtime/ExecutionEngine.h"
#include "runtime/SystemConfig.h"

namespace pf::obs {

/// One busy interval on a lane (a scheduled kernel slice).
struct LaneInterval {
  NodeId Id = InvalidNode;
  double StartNs = 0.0;
  double EndNs = 0.0;
};

/// One idle hole on a lane within [0, makespan].
struct IdleGap {
  double StartNs = 0.0;
  double EndNs = 0.0;

  double durationNs() const { return EndNs - StartNs; }
};

/// Busy/idle accounting of one lane: the GPU lane or one PIM channel.
struct LaneUsage {
  /// "gpu" or "pim.ch<N>".
  std::string Name;
  /// PIM channel index; -1 for the GPU lane.
  int Channel = -1;
  /// Busy intervals in start order (unmerged; one per kernel slice).
  std::vector<LaneInterval> Busy;
  /// Idle holes between merged busy intervals, spanning [0, makespan].
  std::vector<IdleGap> Gaps;
  /// Merged busy time (overlapping slices counted once).
  double BusyNs = 0.0;
  /// Makespan minus BusyNs.
  double IdleNs = 0.0;

  double utilization() const {
    const double Span = BusyNs + IdleNs;
    return Span > 0.0 ? BusyNs / Span : 0.0;
  }
};

/// Why a critical-chain node started exactly when it did.
enum class CriticalReason : uint8_t {
  Start,      ///< Started at time zero; nothing gated it.
  Dependency, ///< A producer's completion (plus handoff) gated the start.
  DeviceBusy, ///< The lane was occupied by the blocker until the start.
};

/// Returns "start"/"dependency"/"device-busy".
const char *criticalReasonName(CriticalReason R);

/// One node on the critical chain, in time order.
struct CriticalStep {
  NodeId Id = InvalidNode;
  Device Dev = Device::Gpu;
  double StartNs = 0.0;
  double EndNs = 0.0;
  CriticalReason Why = CriticalReason::Start;
  /// The gating node (producer or lane predecessor); InvalidNode for
  /// Start.
  NodeId Blocker = InvalidNode;
};

/// The chain of nodes that determines the makespan: walking any step's
/// blocker leads to the previous step, and the last step ends at the
/// timeline's TotalNs (LengthNs == makespan is an invariant the tests pin).
struct CriticalPath {
  std::vector<CriticalStep> Steps;
  double LengthNs = 0.0;
  /// Time the chain spends computing on each device (handoff waits make
  /// GpuNs + PimNs <= LengthNs).
  double GpuNs = 0.0;
  double PimNs = 0.0;
};

/// How far a node's completion can slip without growing the makespan,
/// given the schedule's dependency and lane orders.
struct NodeSlack {
  NodeId Id = InvalidNode;
  double SlackNs = 0.0;
  bool Critical = false;
};

/// The full attribution of one executed timeline.
struct AttributionReport {
  double TotalNs = 0.0;
  CriticalPath Critical;
  /// One entry per scheduled node, in schedule order.
  std::vector<NodeSlack> Slack;
  /// The GPU lane first, then every used PIM channel ascending.
  std::vector<LaneUsage> Lanes;
  /// Per-channel command-phase cycles summed over all offloaded nodes
  /// (planned, fault-free traces), ascending by channel.
  std::vector<ChannelPhaseCycles> Phases;
};

/// Attributes \p TL (executed from \p G under \p Config): critical chain,
/// slack, lane usage, and per-channel phase cycles.
AttributionReport attributeTimeline(const Graph &G, const Timeline &TL,
                                    const SystemConfig &Config);

/// Bumps the `pim.phase_cycles.<phase>.ch<N>` counters from \p Phases
/// (gwrite / g_act / comp / readres / retry / stall per channel). Call
/// once per report — repeated calls accumulate.
void exportPhaseCounters(const std::vector<ChannelPhaseCycles> &Phases);

} // namespace pf::obs

#endif // PIMFLOW_OBS_ATTRIBUTION_H
