//===- obs/PerfReport.cpp - Unified performance report ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfReport.h"

#include <algorithm>
#include <cmath>

#include "obs/Counters.h"
#include "obs/Metrics.h"
#include "search/SearchEngine.h"
#include "support/Format.h"
#include "support/Table.h"

using namespace pf;
using namespace pf::obs;

namespace {

void emitCriticalPath(JsonWriter &W, const Graph &G,
                      const AttributionReport &A) {
  W.key("critical_path").beginObject();
  W.field("length_ns", A.Critical.LengthNs);
  W.field("gpu_ns", A.Critical.GpuNs);
  W.field("pim_ns", A.Critical.PimNs);
  W.key("steps").beginArray();
  for (const CriticalStep &S : A.Critical.Steps) {
    W.beginObject()
        .field("node", G.node(S.Id).Name)
        .field("id", static_cast<int64_t>(S.Id))
        .field("device", deviceName(S.Dev))
        .field("start_ns", S.StartNs)
        .field("end_ns", S.EndNs)
        .field("reason", criticalReasonName(S.Why));
    if (S.Blocker != InvalidNode)
      W.field("blocker", G.node(S.Blocker).Name);
    W.endObject();
  }
  W.endArray().endObject();
}

void emitSlack(JsonWriter &W, const Graph &G, const AttributionReport &A) {
  W.key("slack").beginArray();
  for (const NodeSlack &S : A.Slack) {
    W.beginObject()
        .field("node", G.node(S.Id).Name)
        .field("id", static_cast<int64_t>(S.Id))
        .field("slack_ns", S.SlackNs)
        .field("critical", S.Critical)
        .endObject();
  }
  W.endArray();
}

void emitLanes(JsonWriter &W, const AttributionReport &A) {
  W.key("lanes").beginArray();
  for (const LaneUsage &L : A.Lanes) {
    W.beginObject()
        .field("name", L.Name)
        .field("channel", L.Channel)
        .field("busy_ns", L.BusyNs)
        .field("idle_ns", L.IdleNs)
        .field("utilization", L.utilization())
        .field("intervals", static_cast<int64_t>(L.Busy.size()))
        .field("gaps", static_cast<int64_t>(L.Gaps.size()))
        .endObject();
  }
  W.endArray();
}

void emitPhases(JsonWriter &W, const AttributionReport &A) {
  W.key("pim_phases").beginArray();
  for (const ChannelPhaseCycles &P : A.Phases) {
    // The channel's time-based utilization comes from its lane entry.
    double Util = 0.0;
    for (const LaneUsage &L : A.Lanes)
      if (L.Channel == P.Channel)
        Util = L.utilization();
    W.beginObject()
        .field("channel", P.Channel)
        .field("gwrite_cycles", P.GwriteCycles)
        .field("g_act_cycles", P.GactCycles)
        .field("comp_cycles", P.CompCycles)
        .field("readres_cycles", P.ReadResCycles)
        .field("retry_cycles", P.RetryCycles)
        .field("stall_cycles", P.StallCycles)
        .field("busy_cycles", P.busyCycles())
        .field("bank_busy_cycles", P.bankBusyCycles())
        .field("utilization", Util)
        .endObject();
  }
  W.endArray();
}

void emitDecisions(JsonWriter &W, const CompileResult &R) {
  W.key("decisions").beginArray();
  for (const SearchDecision &D : R.Plan.Decisions) {
    W.beginObject()
        .field("node", R.Transformed.node(D.Id).Name)
        .field("id", static_cast<int64_t>(D.Id))
        .field("pim_candidate", D.PimCandidate)
        .field("chosen_mode", segmentModeName(D.ChosenMode))
        .field("chosen_ratio_gpu", D.ChosenRatioGpu)
        .field("chosen_ns", D.ChosenNs)
        .field("gpu_only_ns", D.GpuOnlyNs)
        .field("gain_ns", D.gainNs());
    W.key("candidates").beginArray();
    for (const CandidateOption &C : D.Candidates) {
      W.beginObject()
          .field("mode", segmentModeName(C.Mode))
          .field("ratio_gpu", C.RatioGpu)
          .field("ns", C.Ns)
          .endObject();
    }
    W.endArray().endObject();
  }
  W.endArray();
}

} // namespace

std::string pf::obs::renderPerfReport(const CompileResult &R) {
  const ExecutionStats S = computeStats(R);
  const AttributionReport A =
      attributeTimeline(R.Transformed, R.Schedule, R.Config);
  // Surface the phase totals as counters too, so they show up in every
  // counter dump alongside the report.
  exportPhaseCounters(A.Phases);

  JsonWriter W;
  W.beginObject();
  W.field("schema_version", PerfReportSchemaVersion);
  W.field("kind", "pimflow-perf-report");
  W.field("model", R.Transformed.name());
  W.field("policy", policyName(R.Policy));
  W.field("end_to_end_ns", R.endToEndNs());
  W.field("energy_j", R.energyJ());
  W.field("conv_layer_ns", R.ConvLayerNs);
  W.field("fc_layer_ns", R.FcLayerNs);

  W.key("timeline")
      .beginObject()
      .field("total_ns", R.Schedule.TotalNs)
      .field("gpu_busy_ns", R.Schedule.GpuBusyNs)
      .field("pim_busy_ns", R.Schedule.PimBusyNs)
      .field("energy_j", R.Schedule.EnergyJ)
      .field("contention_slowdown", R.Schedule.ContentionSlowdown)
      .field("scheduled_nodes",
             static_cast<int64_t>(R.Schedule.Nodes.size()))
      .endObject();

  emitCriticalPath(W, R.Transformed, A);
  emitSlack(W, R.Transformed, A);
  emitLanes(W, A);
  emitPhases(W, A);
  emitDecisions(W, R);

  int Counts[4] = {};
  for (const SegmentPlan &Seg : R.Plan.Segments)
    ++Counts[static_cast<int>(Seg.Mode)];
  W.key("segments")
      .beginObject()
      .field("gpu", Counts[0])
      .field("pim", Counts[1])
      .field("md_dp", Counts[2])
      .field("pipeline", Counts[3])
      .endObject();

  W.key("stats")
      .beginObject()
      .field("gpu_kernels", S.GpuKernels)
      .field("pim_kernels", S.PimKernels)
      .field("fused_or_free_nodes", S.FusedOrFreeNodes)
      .field("gpu_busy_fraction", S.GpuBusyFraction)
      .field("pim_busy_fraction", S.PimBusyFraction)
      .field("pim_gwrite_bursts", S.PimGwriteBursts)
      .field("pim_g_acts", S.PimGActs)
      .field("pim_comp_columns", S.PimCompColumns)
      .field("pim_read_res", S.PimReadRes)
      .field("pim_weight_bytes", S.PimWeightBytes)
      .field("gpu_weight_bytes", S.GpuWeightBytes)
      .endObject();

  if (R.Recovery.Active) {
    W.key("recovery")
        .beginObject()
        .field("degraded", R.Recovery.Degraded)
        .field("dead_channels", R.Recovery.DeadChannels)
        .field("stalled_channels", R.Recovery.StalledChannels)
        .field("surviving_channels", R.Recovery.SurvivingChannels)
        .field("nodes_remapped", R.Recovery.NodesRemapped)
        .field("node_fallbacks", R.Recovery.NodesFellBack)
        .field("transient_retries", R.Recovery.TransientRetries)
        .endObject();
  }

  emitObsSections(W);

  W.endObject();
  return W.take();
}

void pf::obs::emitObsSections(JsonWriter &W) {
  const Registry &Reg = activeRegistry();
  W.key("counters").beginObject();
  for (const auto &[Name, Value] : Reg.counterSnapshot())
    W.field(Name, Value);
  W.endObject();

  // Schema v2: the streaming-metric section. Every snapshot is sorted by
  // name, so two reports of the same run are byte-identical.
  const MetricsRegistry &M = activeMetrics();
  W.key("metrics").beginObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, Q] : M.histogramSnapshot()) {
    W.key(Name)
        .beginObject()
        .field("count", Q.Count)
        .field("sum", Q.Sum)
        .field("min", Q.Min)
        .field("max", Q.Max)
        .field("mean", Q.mean())
        .field("p50", Q.P50)
        .field("p90", Q.P90)
        .field("p99", Q.P99)
        .field("p999", Q.P999)
        .field("rel_error_bound", Q.RelErrorBound)
        .endObject();
  }
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, V] : M.gaugeSnapshot())
    W.field(Name, V);
  W.endObject();
  W.key("windows").beginObject();
  for (const auto &[Name, WS] : M.windowSnapshot()) {
    W.key(Name)
        .beginObject()
        .field("domain", tickDomainName(WS.Domain))
        .field("bucket_width", WS.BucketWidth)
        .field("span_ticks", WS.SpanTicks)
        .field("count", WS.Count)
        .field("sum", WS.Sum)
        .field("mean", WS.mean())
        .endObject();
  }
  W.endObject();
  W.endObject();
}

bool pf::obs::writePerfReport(const CompileResult &R,
                              const std::string &Path) {
  return writeTextFile(Path, renderPerfReport(R));
}

namespace {

std::string strOr(const JsonValue &V, const std::string &Key,
                  const std::string &Default) {
  const JsonValue *M = V.find(Key);
  return M && M->isString() ? M->Str : Default;
}

std::string fmtNs(double Ns) { return formatStr("%.1f", Ns); }

} // namespace

std::string pf::obs::renderPerfReportText(const JsonValue &Report) {
  std::string Out;
  Out += formatStr("perf report (schema v%d): model=%s policy=%s\n",
                   static_cast<int>(Report.numberOr("schema_version", 0)),
                   strOr(Report, "model", "?").c_str(),
                   strOr(Report, "policy", "?").c_str());
  Out += formatStr(
      "end-to-end %.1f ns, energy %.3e J, conv %.1f ns, fc %.1f ns\n",
      Report.numberOr("end_to_end_ns", 0), Report.numberOr("energy_j", 0),
      Report.numberOr("conv_layer_ns", 0), Report.numberOr("fc_layer_ns", 0));

  if (const JsonValue *CP = Report.find("critical_path")) {
    Out += formatStr(
        "\ncritical path: %.1f ns (gpu %.1f ns, pim %.1f ns)\n",
        CP->numberOr("length_ns", 0), CP->numberOr("gpu_ns", 0),
        CP->numberOr("pim_ns", 0));
    if (const JsonValue *Steps = CP->find("steps"); Steps && Steps->isArray()) {
      Table T;
      T.setHeader({"#", "node", "device", "start ns", "end ns", "reason",
                   "blocker"});
      int I = 0;
      for (const JsonValue &S : Steps->Array)
        T.addRow({formatStr("%d", I++), strOr(S, "node", "?"),
                  strOr(S, "device", "?"), fmtNs(S.numberOr("start_ns", 0)),
                  fmtNs(S.numberOr("end_ns", 0)), strOr(S, "reason", "?"),
                  strOr(S, "blocker", "-")});
      Out += T.render();
    }
  }

  if (const JsonValue *Lanes = Report.find("lanes");
      Lanes && Lanes->isArray()) {
    Out += "\nlane utilization:\n";
    Table T;
    T.setHeader({"lane", "busy ns", "idle ns", "util", "gaps"});
    for (const JsonValue &L : Lanes->Array)
      T.addRow({strOr(L, "name", "?"), fmtNs(L.numberOr("busy_ns", 0)),
                fmtNs(L.numberOr("idle_ns", 0)),
                formatStr("%.1f%%", 100.0 * L.numberOr("utilization", 0)),
                formatStr("%d", static_cast<int>(L.numberOr("gaps", 0)))});
    Out += T.render();
  }

  if (const JsonValue *Phases = Report.find("pim_phases");
      Phases && Phases->isArray() && !Phases->Array.empty()) {
    Out += "\npim command phases (cycles):\n";
    Table T;
    T.setHeader({"channel", "gwrite", "g_act", "comp", "readres", "retry",
                 "stall", "busy"});
    for (const JsonValue &P : Phases->Array)
      T.addRow({formatStr("%d", static_cast<int>(P.numberOr("channel", 0))),
                formatStr("%.0f", P.numberOr("gwrite_cycles", 0)),
                formatStr("%.0f", P.numberOr("g_act_cycles", 0)),
                formatStr("%.0f", P.numberOr("comp_cycles", 0)),
                formatStr("%.0f", P.numberOr("readres_cycles", 0)),
                formatStr("%.0f", P.numberOr("retry_cycles", 0)),
                formatStr("%.0f", P.numberOr("stall_cycles", 0)),
                formatStr("%.0f", P.numberOr("busy_cycles", 0))});
    Out += T.render();
  }

  Out += renderPerfReportMetricsText(Report);

  if (const JsonValue *Decisions = Report.find("decisions");
      Decisions && Decisions->isArray() && !Decisions->Array.empty()) {
    Out += "\nsearch decisions:\n";
    Table T;
    T.setHeader({"node", "chosen", "ratio gpu", "chosen ns", "gpu-only ns",
                 "gain ns", "options"});
    for (const JsonValue &D : Decisions->Array) {
      const JsonValue *Cands = D.find("candidates");
      T.addRow({strOr(D, "node", "?"), strOr(D, "chosen_mode", "?"),
                formatStr("%.2f", D.numberOr("chosen_ratio_gpu", 1.0)),
                fmtNs(D.numberOr("chosen_ns", 0)),
                fmtNs(D.numberOr("gpu_only_ns", 0)),
                fmtNs(D.numberOr("gain_ns", 0)),
                formatStr("%d", Cands && Cands->isArray()
                                    ? static_cast<int>(Cands->Array.size())
                                    : 0)});
    }
    Out += T.render();
  }
  return Out;
}

std::string pf::obs::renderPerfReportMetricsText(const JsonValue &Report) {
  std::string Out;
  const JsonValue *M = Report.find("metrics");
  if (!M || !M->isObject())
    return Out;

  if (const JsonValue *H = M->find("histograms");
      H && H->isObject() && !H->Object.empty()) {
    Out += "\nlatency histograms (bounded-error quantiles):\n";
    Table T;
    T.setHeader({"histogram", "count", "mean", "p50", "p90", "p99", "p999",
                 "max", "err"});
    for (const auto &[Name, Q] : H->Object)
      T.addRow({Name, formatStr("%.0f", Q.numberOr("count", 0)),
                formatStr("%.1f", Q.numberOr("mean", 0)),
                formatStr("%.1f", Q.numberOr("p50", 0)),
                formatStr("%.1f", Q.numberOr("p90", 0)),
                formatStr("%.1f", Q.numberOr("p99", 0)),
                formatStr("%.1f", Q.numberOr("p999", 0)),
                formatStr("%.1f", Q.numberOr("max", 0)),
                formatStr("%.2g", Q.numberOr("rel_error_bound", 0))});
    Out += T.render();
  }

  if (const JsonValue *G = M->find("gauges");
      G && G->isObject() && !G->Object.empty()) {
    Out += "\ngauges:\n";
    Table T;
    T.setHeader({"gauge", "value"});
    for (const auto &[Name, V] : G->Object)
      T.addRow({Name, formatStr("%.6g", V.isNumber() ? V.Number : 0.0)});
    Out += T.render();
  }

  if (const JsonValue *Ws = M->find("windows");
      Ws && Ws->isObject() && !Ws->Object.empty()) {
    Out += "\nsliding windows (trailing span):\n";
    Table T;
    T.setHeader({"window", "domain", "span", "count", "mean"});
    for (const auto &[Name, V] : Ws->Object)
      T.addRow({Name, strOr(V, "domain", "?"),
                formatStr("%.0f", V.numberOr("span_ticks", 0)),
                formatStr("%.0f", V.numberOr("count", 0)),
                formatStr("%.1f", V.numberOr("mean", 0))});
    Out += T.render();
  }
  return Out;
}

namespace {

/// Gated metrics of a report document: (display name, path of keys).
const std::pair<const char *, std::vector<std::string>> ReportMetrics[] = {
    {"end_to_end_ns", {"end_to_end_ns"}},
    {"energy_j", {"energy_j"}},
    {"conv_layer_ns", {"conv_layer_ns"}},
    {"fc_layer_ns", {"fc_layer_ns"}},
    {"critical_path.length_ns", {"critical_path", "length_ns"}},
    {"timeline.gpu_busy_ns", {"timeline", "gpu_busy_ns"}},
    {"timeline.pim_busy_ns", {"timeline", "pim_busy_ns"}},
};

const JsonValue *lookupPath(const JsonValue &Doc,
                            const std::vector<std::string> &Path) {
  const JsonValue *V = &Doc;
  for (const std::string &Key : Path) {
    V = V->find(Key);
    if (!V)
      return nullptr;
  }
  return V;
}

void compareMetric(PerfDiffResult &R, const std::string &Name, double Base,
                   double Cur, const PerfDiffOptions &Options) {
  MetricDelta D;
  D.Name = Name;
  D.BaseValue = Base;
  D.CurValue = Cur;
  D.RelChange = Base != 0.0 ? (Cur - Base) / Base : 0.0;
  // Relative rule with an absolute floor: for Base > AbsEpsilon this is
  // exactly Cur > Base * (1 + threshold); for a zero/near-zero baseline
  // the floor takes over, so 0 -> nonzero regresses instead of hiding
  // behind a division by zero.
  D.Regressed = Cur - Base > Options.RelThreshold *
                                std::max(std::abs(Base), Options.AbsEpsilon);
  R.HasRegression |= D.Regressed;
  R.Deltas.push_back(std::move(D));
}

void diffBenchResults(PerfDiffResult &R, const JsonValue &Base,
                      const JsonValue &Cur, const PerfDiffOptions &Options) {
  const JsonValue *BaseRows = Base.find("results");
  const JsonValue *CurRows = Cur.find("results");
  auto rowKey = [](const JsonValue &Row) {
    const JsonValue *Fig = Row.find("figure");
    const JsonValue *Key = Row.find("key");
    return (Fig && Fig->isString() ? Fig->Str : "?") + "/" +
           (Key && Key->isString() ? Key->Str : "?");
  };
  for (const JsonValue &BRow : BaseRows->Array) {
    const std::string K = rowKey(BRow);
    const JsonValue *Match = nullptr;
    if (CurRows && CurRows->isArray())
      for (const JsonValue &CRow : CurRows->Array)
        if (rowKey(CRow) == K) {
          Match = &CRow;
          break;
        }
    if (!Match) {
      R.Notes.push_back(
          formatStr("baseline row '%s' missing from current results",
                    K.c_str()));
      R.HasRegression = true;
      continue;
    }
    compareMetric(R, K + ".end_to_end_ns", BRow.numberOr("end_to_end_ns", 0),
                  Match->numberOr("end_to_end_ns", 0), Options);
    compareMetric(R, K + ".energy_j", BRow.numberOr("energy_j", 0),
                  Match->numberOr("energy_j", 0), Options);
  }
}

/// Gates the p50/p99 of every baseline metrics.histograms entry whose name
/// is not wall-clock derived (those are machine-dependent; everything else
/// in the registry is simulated and deterministic).
void diffHistogramRows(PerfDiffResult &R, const JsonValue &Base,
                       const JsonValue &Cur, const PerfDiffOptions &Options) {
  const JsonValue *BH = lookupPath(Base, {"metrics", "histograms"});
  if (!BH || !BH->isObject())
    return;
  const JsonValue *CH = lookupPath(Cur, {"metrics", "histograms"});
  for (const auto &[Name, BQ] : BH->Object) {
    if (Name.find("wall") != std::string::npos)
      continue;
    const JsonValue *CQ =
        CH && CH->isObject() ? CH->find(Name) : nullptr;
    for (const char *Quant : {"p50", "p99"}) {
      const JsonValue *BV = BQ.find(Quant);
      if (!BV || !BV->isNumber())
        continue;
      const std::string Label = "metrics.histograms." + Name + "." + Quant;
      const JsonValue *CV = CQ ? CQ->find(Quant) : nullptr;
      if (!CV || !CV->isNumber()) {
        R.Notes.push_back(
            formatStr("metric '%s' missing from current report",
                      Label.c_str()));
        R.HasRegression = true;
        continue;
      }
      compareMetric(R, Label, BV->Number, CV->Number, Options);
    }
  }
}

} // namespace

PerfDiffResult pf::obs::perfDiff(const JsonValue &Base, const JsonValue &Cur,
                                 const PerfDiffOptions &Options) {
  PerfDiffResult R;
  const JsonValue *BaseRows = Base.find("results");
  if (BaseRows && BaseRows->isArray()) {
    diffBenchResults(R, Base, Cur, Options);
    return R;
  }
  for (const auto &[Name, Path] : ReportMetrics) {
    const JsonValue *B = lookupPath(Base, Path);
    if (!B || !B->isNumber())
      continue; // Not in the baseline: nothing to gate.
    const JsonValue *C = lookupPath(Cur, Path);
    if (!C || !C->isNumber()) {
      R.Notes.push_back(
          formatStr("metric '%s' missing from current report", Name));
      R.HasRegression = true;
      continue;
    }
    compareMetric(R, Name, B->Number, C->Number, Options);
  }
  diffHistogramRows(R, Base, Cur, Options);
  return R;
}

std::string pf::obs::renderPerfDiff(const PerfDiffResult &R) {
  std::string Out;
  Table T;
  T.setHeader({"metric", "base", "current", "change", "status"});
  for (const MetricDelta &D : R.Deltas)
    T.addRow({D.Name, formatStr("%.6g", D.BaseValue),
              formatStr("%.6g", D.CurValue),
              formatStr("%+.1f%%", 100.0 * D.RelChange),
              D.Regressed ? "REGRESSED" : "ok"});
  Out += T.render();
  for (const std::string &N : R.Notes)
    Out += "note: " + N + "\n";
  Out += R.HasRegression ? "result: REGRESSION\n" : "result: ok\n";
  return Out;
}
