//===- obs/Scope.h - Session-scoped observability registries -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-session observability scopes (docs/INTERNALS.md section 13). The
/// process-wide `Registry` / `MetricsRegistry` singletons make the engine
/// non-reentrant: two concurrent `PimFlow` runs interleave their counters,
/// quantiles, and gauges into one shared namespace, so neither run can be
/// attributed afterwards. A `Scope` is a private pair of registries a
/// caller (a serve `Session`, a bench iteration, a test) owns outright;
/// installing it with a `ScopeGuard` reroutes every `obs::addCounter` /
/// `obs::recordMetric` / `obs::setGauge` / `obs::advanceSimCycles` call on
/// the *current thread* into the scope instead of the globals.
///
/// Routing is thread-local by design: concurrent sessions on different
/// threads each see only their own scope, and a thread with no guard
/// installed keeps the historical behaviour (the global singletons), so
/// every existing one-shot CLI path is unchanged.
///
/// Deliberately global (documented exclusions, see `resetAll()`):
///  - `Tracer`: an append-only, mutex-guarded span log whose `nowUs()`
///    epoch is also the wall-tick domain for sliding windows; splitting it
///    per scope would desynchronize timestamps across sessions.
///  - `FlightRecorder`: crash forensics. Its per-thread bounded rings are
///    already race-free, and a post-mortem wants the interleaved history
///    of *all* sessions, not one.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_SCOPE_H
#define PIMFLOW_OBS_SCOPE_H

#include "obs/Counters.h"
#include "obs/Metrics.h"

namespace pf::obs {

/// A private observability namespace: one counter/histogram registry plus
/// one streaming-metrics registry, constructed enabled (a scope exists to
/// collect; the global on/off switch only governs the global registries).
/// Scopes are cheap enough to create per request and must outlive any
/// ScopeGuard installing them.
class Scope {
public:
  Scope() {
    Reg.setEnabled(true);
    Met.setEnabled(true);
  }

  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

  Registry &registry() { return Reg; }
  const Registry &registry() const { return Reg; }
  MetricsRegistry &metrics() { return Met; }
  const MetricsRegistry &metrics() const { return Met; }

  /// Zeroes both registries (registrations survive, like the globals).
  void reset() {
    Reg.reset();
    Met.reset();
  }

private:
  Registry Reg;
  MetricsRegistry Met;
};

/// RAII installer: routes this thread's obs helpers into \p S for the
/// guard's lifetime, restoring the previous scope (usually none — the
/// globals) on destruction. Guards nest; the innermost wins. A guard is
/// thread-affine: it routes only the constructing thread, so work handed
/// to a pool must install its own guard inside the pool task.
class ScopeGuard {
public:
  explicit ScopeGuard(Scope &S);
  ~ScopeGuard();

  ScopeGuard(const ScopeGuard &) = delete;
  ScopeGuard &operator=(const ScopeGuard &) = delete;

private:
  Scope *Prev;
};

/// The scope installed on the current thread, or nullptr when obs calls
/// route to the global singletons.
Scope *currentScope();

} // namespace pf::obs

#endif // PIMFLOW_OBS_SCOPE_H
