//===- obs/Counters.h - Named counter / histogram registry ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named int64 counters and scalar histograms,
/// exported into the `--json-stats` output. Naming convention (see
/// docs/INTERNALS.md section 6): `<module>.<metric>` in lower snake case,
/// with an optional `.ch<N>` suffix for per-PIM-channel metrics — e.g.
/// `profiler.cache_hits`, `search.dp_states`, `pim.comp_columns.ch3`.
///
/// Counters are relaxed atomics, safe to bump from concurrent threads.
/// Like the tracer, the registry is disabled by default and the
/// `obs::addCounter` / `obs::recordHistogram` helpers early-out on one
/// relaxed atomic load, so call sites can live in hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_COUNTERS_H
#define PIMFLOW_OBS_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pf::obs {

/// A monotonically named int64 counter (values may also go down; "counter"
/// refers to the aggregation, not a monotonicity contract).
class Counter {
public:
  void add(int64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Summary statistics of a histogram (no buckets: count/sum/min/max cover
/// the compiler-telemetry use cases without a bucketing policy).
struct HistogramStats {
  int64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;

  double mean() const { return Count > 0 ? Sum / Count : 0.0; }
};

/// A named scalar distribution.
class Histogram {
public:
  void record(double X) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (S.Count == 0) {
      S.Min = S.Max = X;
    } else {
      S.Min = X < S.Min ? X : S.Min;
      S.Max = X > S.Max ? X : S.Max;
    }
    ++S.Count;
    S.Sum += X;
  }
  HistogramStats stats() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return S;
  }
  void reset() {
    std::lock_guard<std::mutex> Lock(Mu);
    S = HistogramStats{};
  }

private:
  mutable std::mutex Mu;
  HistogramStats S;
};

/// A metric registry. The process-wide default lives behind `instance()`;
/// additional instances back session scopes (obs/Scope.h) so concurrent
/// runs keep private namespaces. Returned Counter/Histogram references
/// stay valid for the registry's lifetime; reset() zeroes values but never
/// invalidates them.
class Registry {
public:
  Registry() = default;

  static Registry &instance();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Finds or creates the counter named \p Name.
  Counter &counter(const std::string &Name);
  /// Finds or creates the histogram named \p Name.
  Histogram &histogram(const std::string &Name);

  /// All counters with a non-zero value, sorted by name.
  std::vector<std::pair<std::string, int64_t>> counterSnapshot() const;
  /// All histograms with at least one sample, sorted by name.
  std::vector<std::pair<std::string, HistogramStats>>
  histogramSnapshot() const;

  /// Zeroes every metric (registrations and references survive).
  void reset();

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// The registry obs helpers route to on this thread: the installed
/// session scope's (obs/Scope.h) when a ScopeGuard is live, the global
/// `Registry::instance()` otherwise. Defined in Scope.cpp.
Registry &activeRegistry();

/// Bumps counter \p Name by \p N when the active registry is enabled. The
/// name is only materialized after the enabled check, so disabled call
/// sites cost one thread-local read plus one atomic load.
inline void addCounter(const char *Name, int64_t N = 1) {
  Registry &R = activeRegistry();
  if (R.enabled())
    R.counter(Name).add(N);
}
inline void addCounter(const std::string &Name, int64_t N = 1) {
  Registry &R = activeRegistry();
  if (R.enabled())
    R.counter(Name).add(N);
}

/// Records \p X into histogram \p Name when the active registry is enabled.
inline void recordHistogram(const char *Name, double X) {
  Registry &R = activeRegistry();
  if (R.enabled())
    R.histogram(Name).record(X);
}

/// Turns the whole observability layer (tracer + registry) on or off, and
/// queries it. The driver's --trace-out/--json-stats flags call this.
void setObservabilityEnabled(bool On);
bool observabilityEnabled();

/// Clears every *global* observability registry: the Tracer's spans, the
/// Registry's counters/histograms, the MetricsRegistry's histograms,
/// gauges, windows, and cycle clock, and the FlightRecorder's per-thread
/// rings. Used by tests, by the driver between independent compilations,
/// and by the bench harness between iterations so JSON dumps are
/// per-iteration rather than cumulative. Explicitly excluded: session
/// scopes (obs/Scope.h) — a Scope's registries belong to its owner and
/// are reset via Scope::reset(), never by this global sweep.
/// tests/obs/ResetTest.cpp asserts this coverage contract.
void resetAll();

/// Alias of resetAll(), kept for existing call sites.
void resetObservability();

} // namespace pf::obs

#endif // PIMFLOW_OBS_COUNTERS_H
