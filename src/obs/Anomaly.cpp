//===- obs/Anomaly.cpp - In-run anomaly watchdog rules ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Anomaly.h"

#include "obs/Counters.h"
#include "obs/Metrics.h"
#include "support/Format.h"

using namespace pf;
using namespace pf::obs;

int pf::obs::evaluateAnomalies(DiagnosticEngine &DE,
                               const AttributionReport *A,
                               const AnomalyRules &Rules) {
  int Warnings = 0;

  // Rule 1: tail-latency ratio per HDR histogram.
  for (const auto &[Name, Q] : activeMetrics().histogramSnapshot()) {
    if (Q.Count < Rules.MinHistogramCount || Q.P50 <= 0.0)
      continue;
    const double Ratio = Q.P99 / Q.P50;
    if (Ratio <= Rules.TailRatioMax)
      continue;
    ++Warnings;
    DE.warning(DiagCode::AnomalyTailLatency, Name,
               formatStr("p99/p50 ratio %.1f exceeds %.1f "
                         "(p50=%.0f, p99=%.0f over %lld samples)",
                         Ratio, Rules.TailRatioMax, Q.P50, Q.P99,
                         static_cast<long long>(Q.Count)));
  }

  // Rule 2: idle-gap fraction per attributed lane.
  if (A) {
    for (const LaneUsage &L : A->Lanes) {
      if (L.BusyNs <= 0.0)
        continue; // a lane that ran nothing is unused, not anomalous
      const double Span = L.BusyNs + L.IdleNs;
      const double IdleFraction = Span > 0.0 ? L.IdleNs / Span : 0.0;
      if (IdleFraction <= Rules.IdleGapFractionMax)
        continue;
      ++Warnings;
      DE.warning(DiagCode::AnomalyIdleGap, L.Name,
                 formatStr("idle fraction %.2f exceeds %.2f "
                           "(%zu gap(s), busy %.0f ns of %.0f ns)",
                           IdleFraction, Rules.IdleGapFractionMax,
                           L.Gaps.size(), L.BusyNs, Span));
    }
  }

  // Rule 3: average retries per fault-injected simulator run.
  {
    Registry &R = activeRegistry();
    const int64_t Retries = R.counter("pim.sim.retries").value();
    const int64_t FaultRuns = R.counter("pim.sim.fault_runs").value();
    if (FaultRuns > 0) {
      const double Rate =
          static_cast<double>(Retries) / static_cast<double>(FaultRuns);
      if (Rate > Rules.RetryRateMax) {
        ++Warnings;
        DE.warning(DiagCode::AnomalyRetryRate, "pim.sim.retries",
                   formatStr("%.1f retries per faulted run exceeds %.1f "
                             "(%lld retries over %lld runs)",
                             Rate, Rules.RetryRateMax,
                             static_cast<long long>(Retries),
                             static_cast<long long>(FaultRuns)));
      }
    }
  }

  return Warnings;
}
