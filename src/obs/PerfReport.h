//===- obs/PerfReport.h - Unified performance report ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable performance report behind the driver's
/// `--perf-report=<path>` flag: one schema-versioned JSON document merging
/// the stats export, the timeline attribution (critical path, slack, lane
/// utilization, per-channel phase cycles) and the search's decision trail.
/// `renderPerfReportText` renders a parsed report for humans (`pimflow
/// report`), and `perfDiff` compares two reports (or two bench-results
/// dumps) with per-metric relative thresholds — the regression gate behind
/// `pf_perf_diff` and ci.sh tier 5.
///
/// Schema (version 1, lower-is-better metrics unless noted):
///   { schema_version, kind: "pimflow-perf-report", model, policy,
///     end_to_end_ns, energy_j, conv_layer_ns, fc_layer_ns,
///     timeline:{total_ns, gpu_busy_ns, pim_busy_ns, energy_j,
///               contention_slowdown, scheduled_nodes},
///     critical_path:{length_ns, gpu_ns, pim_ns,
///                    steps:[{node,id,device,start_ns,end_ns,reason,
///                            blocker}]},
///     slack:[{node,id,slack_ns,critical}],
///     lanes:[{name,channel,busy_ns,idle_ns,utilization,intervals,gaps}],
///     pim_phases:[{channel,gwrite_cycles,g_act_cycles,comp_cycles,
///                  readres_cycles,retry_cycles,stall_cycles,busy_cycles,
///                  bank_busy_cycles,utilization}],
///     decisions:[{node,id,pim_candidate,chosen_mode,chosen_ratio_gpu,
///                 chosen_ns,gpu_only_ns,gain_ns,
///                 candidates:[{mode,ratio_gpu,ns}]}],
///     segments:{gpu,pim,md_dp,pipeline}, stats:{...},
///     recovery:{...} (only when fault recovery ran), counters:{...} }
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_PERFREPORT_H
#define PIMFLOW_OBS_PERFREPORT_H

#include <string>
#include <vector>

#include "core/Report.h"
#include "obs/Attribution.h"
#include "obs/Json.h"

namespace pf::obs {

/// Current report schema version.
inline constexpr int PerfReportSchemaVersion = 1;

/// Renders the full performance report of \p R as JSON.
std::string renderPerfReport(const CompileResult &R);

/// Writes renderPerfReport(R) to \p Path; false on I/O failure.
bool writePerfReport(const CompileResult &R, const std::string &Path);

/// Renders a parsed report document as human-readable text (summary lines
/// plus critical-path / lane-utilization / phase / decision tables).
std::string renderPerfReportText(const JsonValue &Report);

/// Relative-threshold configuration of the diff gate.
struct PerfDiffOptions {
  /// A gated metric regresses when Cur > Base * (1 + RelThreshold) and
  /// Base > 0.
  double RelThreshold = 0.25;
};

/// One compared metric.
struct MetricDelta {
  std::string Name;
  double BaseValue = 0.0;
  double CurValue = 0.0;
  /// (Cur - Base) / Base; 0 when Base is 0.
  double RelChange = 0.0;
  bool Regressed = false;
};

/// Outcome of comparing two report (or bench-results) documents.
struct PerfDiffResult {
  std::vector<MetricDelta> Deltas;
  /// Structural problems (metric present in the baseline but missing from
  /// the current document); these also count as regressions.
  std::vector<std::string> Notes;
  bool HasRegression = false;
};

/// Compares \p Cur against \p Base. Both documents must be the same
/// format: a perf report (gates end_to_end_ns, energy_j, conv_layer_ns,
/// fc_layer_ns, critical_path.length_ns, timeline.gpu_busy_ns,
/// timeline.pim_busy_ns) or a bench-results dump — detected by its
/// "results" array — where every baseline (figure, key) row gates
/// end_to_end_ns and energy_j. Rows only in \p Cur are new coverage and
/// pass; rows missing from \p Cur are notes and fail.
PerfDiffResult perfDiff(const JsonValue &Base, const JsonValue &Cur,
                        const PerfDiffOptions &Options = {});

/// Renders \p R as an aligned table plus notes.
std::string renderPerfDiff(const PerfDiffResult &R);

} // namespace pf::obs

#endif // PIMFLOW_OBS_PERFREPORT_H
