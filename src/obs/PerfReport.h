//===- obs/PerfReport.h - Unified performance report ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable performance report behind the driver's
/// `--perf-report=<path>` flag: one schema-versioned JSON document merging
/// the stats export, the timeline attribution (critical path, slack, lane
/// utilization, per-channel phase cycles) and the search's decision trail.
/// `renderPerfReportText` renders a parsed report for humans (`pimflow
/// report`), and `perfDiff` compares two reports (or two bench-results
/// dumps) with per-metric relative thresholds — the regression gate behind
/// `pf_perf_diff` and ci.sh tier 5.
///
/// Schema (version 2, lower-is-better metrics unless noted):
///   { schema_version, kind: "pimflow-perf-report", model, policy,
///     end_to_end_ns, energy_j, conv_layer_ns, fc_layer_ns,
///     timeline:{total_ns, gpu_busy_ns, pim_busy_ns, energy_j,
///               contention_slowdown, scheduled_nodes},
///     critical_path:{length_ns, gpu_ns, pim_ns,
///                    steps:[{node,id,device,start_ns,end_ns,reason,
///                            blocker}]},
///     slack:[{node,id,slack_ns,critical}],
///     lanes:[{name,channel,busy_ns,idle_ns,utilization,intervals,gaps}],
///     pim_phases:[{channel,gwrite_cycles,g_act_cycles,comp_cycles,
///                  readres_cycles,retry_cycles,stall_cycles,busy_cycles,
///                  bank_busy_cycles,utilization}],
///     decisions:[{node,id,pim_candidate,chosen_mode,chosen_ratio_gpu,
///                 chosen_ns,gpu_only_ns,gain_ns,
///                 candidates:[{mode,ratio_gpu,ns}]}],
///     segments:{gpu,pim,md_dp,pipeline}, stats:{...},
///     recovery:{...} (only when fault recovery ran), counters:{...},
///     metrics:{histograms:{<name>:{count,sum,min,max,mean,p50,p90,p99,
///                                  p999,rel_error_bound}},
///              gauges:{<name>:value},
///              windows:{<name>:{domain,bucket_width,span_ticks,count,
///                               sum,mean}}} }
///
/// Version 2 added the `metrics` section (obs/Metrics: bounded-error
/// quantile histograms, gauges, sliding windows); every v1 key is
/// unchanged, so v1 consumers keep working.
///
/// Version 3 added the serving mode: the counter/metric namespace now
/// carries `serve.*` families (request latency / queue-delay histograms,
/// served/degraded/shed counters), the sections snapshot the *active*
/// observability scope (obs/Scope.h) so a session can report on itself,
/// and `pimflow serve --perf-report` emits the sibling document kind
/// `pimflow-serve-report` (src/serve/ServeReport.h) sharing this version
/// and the counters/metrics sections. Every v2 key is unchanged.
///
/// Version 4 added per-request tracing to the serve sibling
/// (docs/INTERNALS.md section 15): the config echoes `trace_sample`, a
/// top-level `sampled_requests` array lists the ids the policy selected,
/// and every request row carries `trace_id` / `sampled` / `interrupts`
/// plus — for sampled requests — a `segments` array of queue/exec/retry
/// intervals on the virtual clock (the substrate of `pimflow report
/// --request=<id>`). Every v3 key is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_PERFREPORT_H
#define PIMFLOW_OBS_PERFREPORT_H

#include <string>
#include <vector>

#include "core/Report.h"
#include "obs/Attribution.h"
#include "obs/Json.h"

namespace pf::obs {

/// Current report schema version.
inline constexpr int PerfReportSchemaVersion = 4;

/// Renders the full performance report of \p R as JSON.
std::string renderPerfReport(const CompileResult &R);

/// Emits the shared `counters` and `metrics` report sections (snapshotted
/// from the active observability scope, name-sorted for byte-stable
/// output) into \p W, which must be positioned inside an open object.
/// Used by renderPerfReport and by the serve report so both document
/// kinds stay field-compatible.
void emitObsSections(JsonWriter &W);

/// Writes renderPerfReport(R) to \p Path; false on I/O failure.
bool writePerfReport(const CompileResult &R, const std::string &Path);

/// Renders a parsed report document as human-readable text (summary lines
/// plus critical-path / lane-utilization / phase / metric / decision
/// tables).
std::string renderPerfReportText(const JsonValue &Report);

/// Renders only the schema-v2 `metrics` section (histogram quantiles,
/// gauges, windows) of a parsed report — the `pimflow report --metrics`
/// view. Empty string when the report has no metrics section.
std::string renderPerfReportMetricsText(const JsonValue &Report);

/// Relative-threshold configuration of the diff gate.
struct PerfDiffOptions {
  /// A gated metric regresses when
  ///   Cur - Base > RelThreshold * max(|Base|, AbsEpsilon),
  /// i.e. the usual relative rule, with an absolute floor so a zero or
  /// near-zero baseline still gates: 0 -> nonzero is a regression, not a
  /// divide-by-zero blind spot.
  double RelThreshold = 0.25;
  /// Absolute floor substituted for |Base| in the rule above when the
  /// baseline is smaller than this.
  double AbsEpsilon = 1e-9;
};

/// One compared metric.
struct MetricDelta {
  std::string Name;
  double BaseValue = 0.0;
  double CurValue = 0.0;
  /// (Cur - Base) / Base; 0 when Base is 0 (display only — the gating
  /// rule uses the epsilon-floored form in PerfDiffOptions).
  double RelChange = 0.0;
  bool Regressed = false;
};

/// Outcome of comparing two report (or bench-results) documents.
struct PerfDiffResult {
  std::vector<MetricDelta> Deltas;
  /// Structural problems (metric present in the baseline but missing from
  /// the current document); these also count as regressions.
  std::vector<std::string> Notes;
  bool HasRegression = false;
};

/// Compares \p Cur against \p Base. Both documents must be the same
/// format: a perf report (gates end_to_end_ns, energy_j, conv_layer_ns,
/// fc_layer_ns, critical_path.length_ns, timeline.gpu_busy_ns,
/// timeline.pim_busy_ns, plus the p50/p99 of every baseline
/// metrics.histograms entry whose name does not contain "wall" —
/// wall-clock distributions are machine-dependent and never gate) or a
/// bench-results dump — detected by its "results" array — where every
/// baseline (figure, key) row gates end_to_end_ns and energy_j. Rows only
/// in \p Cur are new coverage and pass; rows missing from \p Cur are
/// notes and fail.
PerfDiffResult perfDiff(const JsonValue &Base, const JsonValue &Cur,
                        const PerfDiffOptions &Options = {});

/// Renders \p R as an aligned table plus notes.
std::string renderPerfDiff(const PerfDiffResult &R);

} // namespace pf::obs

#endif // PIMFLOW_OBS_PERFREPORT_H
