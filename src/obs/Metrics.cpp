//===- obs/Metrics.cpp - Streaming metrics implementation -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/Counters.h"
#include "obs/Json.h"
#include "obs/Trace.h"

using namespace pf::obs;

//===----------------------------------------------------------------------===//
// LogLinearHistogram
//===----------------------------------------------------------------------===//

namespace {

constexpr int S = LogLinearHistogram::SubBucketsPerOctave;

/// Bucket key of a positive finite value: octave * S + linear sub-bucket.
/// Key order equals value order (larger octaves strictly dominate).
int32_t bucketKey(double X) {
  const int E = std::ilogb(X); // floor(log2(X))
  const double Frac = X / std::ldexp(1.0, E); // in [1, 2)
  int Sub = static_cast<int>((Frac - 1.0) * S);
  Sub = Sub < 0 ? 0 : (Sub >= S ? S - 1 : Sub);
  return static_cast<int32_t>(E) * S + Sub;
}

/// Midpoint of a bucket: at most half a sub-bucket width from any sample
/// in it, i.e. within relErrorBound() relative error.
double bucketMid(int32_t Key) {
  // C++ integer division truncates toward zero; recover floor semantics
  // for negative octaves (values in (0, 1)).
  int E = Key / S, Sub = Key % S;
  if (Sub < 0) {
    Sub += S;
    E -= 1;
  }
  return std::ldexp(1.0, E) * (1.0 + (Sub + 0.5) / S);
}

} // namespace

void LogLinearHistogram::record(double X) {
  if (!std::isfinite(X))
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Count == 0) {
    Min = Max = X;
  } else {
    Min = X < Min ? X : Min;
    Max = X > Max ? X : Max;
  }
  ++Count;
  Sum += X;
  if (X <= 0.0)
    ++ZeroCount;
  else
    ++Buckets[bucketKey(X)];
}

double LogLinearHistogram::quantileLocked(double Q) const {
  if (Count == 0)
    return 0.0;
  int64_t Rank = static_cast<int64_t>(std::ceil(Q * Count));
  Rank = Rank < 1 ? 1 : (Rank > Count ? Count : Rank);
  int64_t Seen = ZeroCount; // the zero bucket sorts below every octave
  if (Seen >= Rank)
    return 0.0;
  for (const auto &[Key, N] : Buckets) {
    Seen += N;
    if (Seen >= Rank) {
      const double V = bucketMid(Key);
      // Exact extremes beat the bucket midpoint at the edges.
      return V < Min ? Min : (V > Max ? Max : V);
    }
  }
  return Max;
}

double LogLinearHistogram::quantile(double Q) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return quantileLocked(Q);
}

QuantileStats LogLinearHistogram::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  QuantileStats R;
  R.Count = Count;
  R.Sum = Sum;
  R.Min = Min;
  R.Max = Max;
  R.P50 = quantileLocked(0.5);
  R.P90 = quantileLocked(0.9);
  R.P99 = quantileLocked(0.99);
  R.P999 = quantileLocked(0.999);
  R.RelErrorBound = relErrorBound();
  return R;
}

void LogLinearHistogram::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Buckets.clear();
  ZeroCount = Count = 0;
  Sum = Min = Max = 0.0;
}

//===----------------------------------------------------------------------===//
// SlidingWindow
//===----------------------------------------------------------------------===//

const char *pf::obs::tickDomainName(TickDomain D) {
  switch (D) {
  case TickDomain::WallUs:
    return "wall_us";
  case TickDomain::SimCycles:
    return "sim_cycles";
  }
  return "unknown";
}

SlidingWindow::SlidingWindow(TickDomain D, int64_t BucketWidth, int NumBuckets)
    : Dom(D), Width(BucketWidth > 0 ? BucketWidth : 1),
      Buckets(NumBuckets > 0 ? NumBuckets : 1) {}

void SlidingWindow::record(int64_t Tick, double X) {
  const int64_t Epoch = Tick / Width;
  std::lock_guard<std::mutex> Lock(Mu);
  Bucket &B = Buckets[static_cast<size_t>(Epoch % static_cast<int64_t>(
                          Buckets.size()))];
  if (B.Epoch != Epoch) {
    B.Epoch = Epoch;
    B.Count = 0;
    B.Sum = 0.0;
  }
  ++B.Count;
  B.Sum += X;
}

WindowStats SlidingWindow::stats(int64_t NowTick) const {
  WindowStats R;
  R.Domain = Dom;
  R.BucketWidth = Width;
  const int64_t NowEpoch = NowTick / Width;
  std::lock_guard<std::mutex> Lock(Mu);
  R.SpanTicks = Width * static_cast<int64_t>(Buckets.size());
  const int64_t Oldest = NowEpoch - static_cast<int64_t>(Buckets.size()) + 1;
  for (const Bucket &B : Buckets) {
    if (B.Epoch < Oldest || B.Epoch > NowEpoch)
      continue; // stale (not yet recycled) or from a reset clock
    R.Count += B.Count;
    R.Sum += B.Sum;
  }
  return R;
}

void SlidingWindow::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (Bucket &B : Buckets)
    B = Bucket{};
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry M;
  return M;
}

LogLinearHistogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(Name, std::make_unique<LogLinearHistogram>())
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(Name, std::make_unique<Gauge>()).first;
  return *It->second;
}

SlidingWindow &MetricsRegistry::window(const std::string &Name, TickDomain D,
                                       int64_t BucketWidth) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Windows.find(Name);
  if (It == Windows.end())
    It = Windows.emplace(Name, std::make_unique<SlidingWindow>(D, BucketWidth))
             .first;
  return *It->second;
}

std::vector<std::pair<std::string, QuantileStats>>
MetricsRegistry::histogramSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, QuantileStats>> Out;
  for (const auto &[Name, H] : Histograms) {
    const QuantileStats Q = H->stats();
    if (Q.Count > 0)
      Out.emplace_back(Name, Q);
  }
  return Out; // std::map iteration is already name-sorted.
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gaugeSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, double>> Out;
  for (const auto &[Name, G] : Gauges)
    if (G->value() != 0.0)
      Out.emplace_back(Name, G->value());
  return Out;
}

std::vector<std::pair<std::string, WindowStats>>
MetricsRegistry::windowSnapshot() const {
  const int64_t NowUs = static_cast<int64_t>(Tracer::instance().nowUs());
  const int64_t NowCycles = cycles();
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, WindowStats>> Out;
  for (const auto &[Name, W] : Windows) {
    const WindowStats S = W->stats(
        W->domain() == TickDomain::SimCycles ? NowCycles : NowUs);
    if (S.Count > 0)
      Out.emplace_back(Name, S);
  }
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, H] : Histograms)
    H->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, W] : Windows)
    W->reset();
  CycleClock.store(0, std::memory_order_relaxed);
}

void pf::obs::recordMetricWindowed(const char *Name, TickDomain D,
                                   int64_t BucketWidth, int64_t Tick,
                                   double X) {
  MetricsRegistry &M = activeMetrics();
  if (!M.enabled())
    return;
  M.histogram(Name).record(X);
  M.window(Name, D, BucketWidth).record(Tick, X);
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
/// dotted lower-snake names map onto that with '.'/'-' -> '_' plus the
/// `pimflow_` prefix.
std::string promName(const std::string &Name) {
  std::string Out = "pimflow_";
  for (char C : Name) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
  return Out;
}

void appendSample(std::string &Out, const std::string &Name, double V) {
  char Buf[64];
  // %.17g round-trips doubles; integral values print without exponent.
  if (V == static_cast<double>(static_cast<int64_t>(V)))
    std::snprintf(Buf, sizeof(Buf), "%lld",
                  static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Name;
  Out += ' ';
  Out += Buf;
  Out += '\n';
}

} // namespace

std::string pf::obs::renderPrometheus() {
  std::string Out;
  Out += "# pimflow metrics exposition (Prometheus text format)\n";

  for (const auto &[Name, V] : activeRegistry().counterSnapshot()) {
    const std::string P = promName(Name);
    Out += "# TYPE " + P + " counter\n";
    appendSample(Out, P, static_cast<double>(V));
  }

  for (const auto &[Name, V] : activeMetrics().gaugeSnapshot()) {
    const std::string P = promName(Name);
    Out += "# TYPE " + P + " gauge\n";
    appendSample(Out, P, V);
  }

  // Aggregate min/max histograms (obs::Registry): no quantiles, so they
  // export as summary {_sum,_count} plus explicit min/max gauges.
  for (const auto &[Name, H] : activeRegistry().histogramSnapshot()) {
    const std::string P = promName(Name);
    Out += "# TYPE " + P + " summary\n";
    appendSample(Out, P + "_sum", H.Sum);
    appendSample(Out, P + "_count", static_cast<double>(H.Count));
    Out += "# TYPE " + P + "_min gauge\n";
    appendSample(Out, P + "_min", H.Min);
    Out += "# TYPE " + P + "_max gauge\n";
    appendSample(Out, P + "_max", H.Max);
  }

  // HDR histograms: full summaries with bounded-error quantiles.
  for (const auto &[Name, Q] :
       activeMetrics().histogramSnapshot()) {
    const std::string P = promName(Name);
    Out += "# HELP " + P + " log-linear histogram, quantile rel-error <= " +
           std::to_string(Q.RelErrorBound) + "\n";
    Out += "# TYPE " + P + " summary\n";
    appendSample(Out, P + "{quantile=\"0.5\"}", Q.P50);
    appendSample(Out, P + "{quantile=\"0.9\"}", Q.P90);
    appendSample(Out, P + "{quantile=\"0.99\"}", Q.P99);
    appendSample(Out, P + "{quantile=\"0.999\"}", Q.P999);
    appendSample(Out, P + "_sum", Q.Sum);
    appendSample(Out, P + "_count", static_cast<double>(Q.Count));
  }

  // Sliding windows: trailing-span count/sum gauges, labeled with the
  // tick domain so readers know which clock the span is over.
  for (const auto &[Name, W] : activeMetrics().windowSnapshot()) {
    const std::string P = promName(Name) + "_window";
    const std::string Label = std::string("{domain=\"") +
                              tickDomainName(W.Domain) + "\",span=\"" +
                              std::to_string(W.SpanTicks) + "\"}";
    Out += "# TYPE " + P + "_count gauge\n";
    appendSample(Out, P + "_count" + Label, static_cast<double>(W.Count));
    Out += "# TYPE " + P + "_sum gauge\n";
    appendSample(Out, P + "_sum" + Label, W.Sum);
  }

  return Out;
}

bool pf::obs::writeMetricsText(const std::string &Path) {
  return writeTextFile(Path, renderPrometheus());
}
