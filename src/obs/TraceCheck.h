//===- obs/TraceCheck.h - Chrome trace semantic validation ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic validation of Chrome trace-event documents, shared by the
/// pf_json_check and pf_trace_check CTest/CI tools. Beyond per-event
/// field presence (string `ph`, numeric `pid`/`tid`, a non-negative `ts`
/// on every non-metadata event, non-negative `dur`), checkChromeTrace
/// enforces the span algebra the exporters promise:
///
///  - per (pid, tid) lane, duration events nest: every `E` closes the
///    most recent open `B` (matching its name when the `E` carries one),
///    and no lane ends with an open `B`;
///  - `X` complete events are exempt from nesting (exec-phase spans
///    deliberately overlap their enclosing attempt span);
///  - flow events resolve: every flow id seen on a finish (`f`) was
///    started (`s`), and no start is left dangling.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_TRACECHECK_H
#define PIMFLOW_OBS_TRACECHECK_H

#include <cstddef>
#include <string>

#include "obs/Json.h"

namespace pf::obs {

/// Tallies of a validated trace, for tool summary lines and tests.
struct TraceCheckSummary {
  size_t Events = 0;        ///< total traceEvents entries
  size_t CompleteSpans = 0; ///< `X` events
  size_t PairedSpans = 0;   ///< matched B/E pairs
  size_t Instants = 0;      ///< `i` events
  size_t FlowChains = 0;    ///< distinct resolved flow ids
  size_t Lanes = 0;         ///< distinct (pid, tid) pairs
};

/// Validates \p Doc (a parsed Chrome trace document) against the rules in
/// the file comment. Returns true when clean; otherwise returns false and
/// fills \p Error with the first violation, naming the offending
/// traceEvents index. \p Summary, when non-null, is filled on success.
bool checkChromeTrace(const JsonValue &Doc, std::string &Error,
                      TraceCheckSummary *Summary = nullptr);

} // namespace pf::obs

#endif // PIMFLOW_OBS_TRACECHECK_H
