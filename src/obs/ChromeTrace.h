//===- obs/ChromeTrace.h - Chrome trace-event JSON export -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a compilation + simulated execution as Chrome trace-event JSON,
/// loadable in chrome://tracing or https://ui.perfetto.dev. Two process
/// groups:
///
///  * pid 1 "pimflow compile (wall clock)": the tracer's PF_TRACE_SCOPE
///    spans, one track per recording thread — canonicalize, profiling,
///    DP search, codegen, execution phases;
///  * pid 2 "execution (simulated)": the ExecutionEngine Timeline, with
///    track 0 the GPU lane and one track per PIM channel. A GPU node is one
///    slice on the GPU lane; a PIM node is one slice on every channel its
///    scheduled command trace occupies (so MD-DP halves and pipeline-stage
///    overlap are visible per channel).
///
/// Wall-clock and simulated timestamps share the microsecond unit but not
/// an origin; the pid split keeps them visually separate.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_CHROMETRACE_H
#define PIMFLOW_OBS_CHROMETRACE_H

#include <string>
#include <vector>

#include "core/PimFlow.h"
#include "obs/Trace.h"

namespace pf::obs {

/// Renders \p CompileSpans plus the execution timeline of (\p G, \p TL)
/// under \p Config as a Chrome trace JSON document.
std::string renderChromeTrace(const Graph &G, const Timeline &TL,
                              const SystemConfig &Config,
                              const std::vector<TraceEvent> &CompileSpans);

/// Convenience: renders \p R with the global tracer's recorded spans.
std::string renderChromeTrace(const CompileResult &R);

/// Renders only the tracer's compile-phase spans (for driver modes without
/// an execution timeline, e.g. profiling).
std::string renderCompileTrace(const std::vector<TraceEvent> &CompileSpans);

/// Writes renderChromeTrace(R) to \p Path; false on I/O failure.
bool writeChromeTrace(const CompileResult &R, const std::string &Path);

/// Writes the (\p G, \p TL, \p Config) timeline plus the global tracer's
/// spans to \p Path; false on I/O failure.
bool writeChromeTrace(const Graph &G, const Timeline &TL,
                      const SystemConfig &Config, const std::string &Path);

} // namespace pf::obs

#endif // PIMFLOW_OBS_CHROMETRACE_H
