//===- obs/ChromeTrace.cpp - Chrome trace-event JSON export -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"

#include <algorithm>
#include <set>

#include "codegen/PimKernelSpec.h"
#include "obs/Json.h"
#include "support/Format.h"

using namespace pf;
using namespace pf::obs;

namespace {

constexpr int CompilePid = 1;
constexpr int ExecutionPid = 2;

void emitProcessName(JsonWriter &W, int Pid, const std::string &Name) {
  W.beginObject()
      .field("name", "process_name")
      .field("ph", "M")
      .field("pid", Pid)
      .field("tid", 0)
      .key("args")
      .beginObject()
      .field("name", Name)
      .endObject()
      .endObject();
}

void emitThreadName(JsonWriter &W, int Pid, int Tid,
                    const std::string &Name) {
  W.beginObject()
      .field("name", "thread_name")
      .field("ph", "M")
      .field("pid", Pid)
      .field("tid", Tid)
      .key("args")
      .beginObject()
      .field("name", Name)
      .endObject()
      .endObject();
}

void emitCompleteEvent(JsonWriter &W, int Pid, int Tid,
                       const std::string &Name, const std::string &Cat,
                       double TsUs, double DurUs) {
  W.beginObject()
      .field("name", Name)
      .field("cat", Cat)
      .field("ph", "X")
      .field("pid", Pid)
      .field("tid", Tid)
      .field("ts", TsUs)
      .field("dur", DurUs)
      .endObject();
}

void emitCompileSpans(JsonWriter &W,
                      const std::vector<TraceEvent> &CompileSpans) {
  emitProcessName(W, CompilePid, "pimflow compile (wall clock)");
  std::set<uint32_t> Tids;
  for (const TraceEvent &E : CompileSpans)
    Tids.insert(E.Tid);
  for (uint32_t Tid : Tids)
    emitThreadName(W, CompilePid, static_cast<int>(Tid),
                   Tid == 0 ? "main" : formatStr("worker %u", Tid));
  for (const TraceEvent &E : CompileSpans)
    emitCompleteEvent(W, CompilePid, static_cast<int>(E.Tid), E.Name,
                      E.Category, E.StartUs, E.DurUs);
}

/// Execution tids: 0 = the GPU lane, 1 + k = PIM channel k.
int channelTid(int Channel) { return 1 + Channel; }

void emitExecution(JsonWriter &W, const Graph &G, const Timeline &TL,
                   const SystemConfig &Config) {
  emitProcessName(W, ExecutionPid, "execution (simulated)");
  emitThreadName(W, ExecutionPid, 0, "GPU lane");

  // Regenerate the scheduled command traces of offloaded nodes to learn
  // which channels each one occupies (same derivation as computeStats).
  PimCommandGenerator Gen(Config.Pim.Channels > 0 ? Config.Pim
                                                  : PimConfig::newtonPlus(),
                          Config.Codegen);

  std::set<int> UsedChannels;
  struct PimSlice {
    const NodeSchedule *Sched = nullptr;
    std::vector<int> Channels;
    std::string Mapping;
  };
  std::vector<PimSlice> PimSlices;
  for (const NodeSchedule &S : TL.Nodes) {
    if (S.Dev != Device::Pim || S.durationNs() <= 0.0)
      continue;
    const PimKernelPlan Plan = Gen.plan(lowerToPimSpec(G, S.Id));
    PimSlice Slice;
    Slice.Sched = &S;
    Slice.Mapping = Plan.describeMapping();
    for (size_t C = 0; C < Plan.Trace.Channels.size(); ++C)
      if (!Plan.Trace.Channels[C].empty()) {
        Slice.Channels.push_back(static_cast<int>(C));
        UsedChannels.insert(static_cast<int>(C));
      }
    PimSlices.push_back(std::move(Slice));
  }
  for (int C : UsedChannels)
    emitThreadName(W, ExecutionPid, channelTid(C),
                   formatStr("PIM ch %d", C));

  for (const NodeSchedule &S : TL.Nodes) {
    if (S.Dev == Device::Pim || S.durationNs() <= 0.0)
      continue;
    emitCompleteEvent(W, ExecutionPid, 0, G.node(S.Id).Name, "gpu",
                      S.StartNs / 1e3, S.durationNs() / 1e3);
  }
  for (const PimSlice &Slice : PimSlices) {
    const Node &N = G.node(Slice.Sched->Id);
    for (int C : Slice.Channels) {
      W.beginObject()
          .field("name", N.Name)
          .field("cat", "pim")
          .field("ph", "X")
          .field("pid", ExecutionPid)
          .field("tid", channelTid(C))
          .field("ts", Slice.Sched->StartNs / 1e3)
          .field("dur", Slice.Sched->durationNs() / 1e3)
          .key("args")
          .beginObject()
          .field("mapping", Slice.Mapping)
          .field("op", opKindName(N.Kind))
          .endObject()
          .endObject();
    }
  }
}

std::string finishDocument(JsonWriter &W) {
  W.endArray()
      .field("displayTimeUnit", "ns")
      .endObject();
  return W.take();
}

JsonWriter startDocument() {
  JsonWriter W;
  W.beginObject().key("traceEvents").beginArray();
  return W;
}

} // namespace

std::string
pf::obs::renderChromeTrace(const Graph &G, const Timeline &TL,
                           const SystemConfig &Config,
                           const std::vector<TraceEvent> &CompileSpans) {
  JsonWriter W = startDocument();
  emitCompileSpans(W, CompileSpans);
  emitExecution(W, G, TL, Config);
  return finishDocument(W);
}

std::string pf::obs::renderChromeTrace(const CompileResult &R) {
  return renderChromeTrace(R.Transformed, R.Schedule, R.Config,
                           Tracer::instance().snapshot());
}

std::string
pf::obs::renderCompileTrace(const std::vector<TraceEvent> &CompileSpans) {
  JsonWriter W = startDocument();
  emitCompileSpans(W, CompileSpans);
  return finishDocument(W);
}

bool pf::obs::writeChromeTrace(const CompileResult &R,
                               const std::string &Path) {
  return writeTextFile(Path, renderChromeTrace(R));
}

bool pf::obs::writeChromeTrace(const Graph &G, const Timeline &TL,
                               const SystemConfig &Config,
                               const std::string &Path) {
  return writeTextFile(
      Path, renderChromeTrace(G, TL, Config, Tracer::instance().snapshot()));
}
