//===- obs/FlightRecorder.cpp - Always-on event ring buffer -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include <algorithm>
#include <cstdio>

#include "obs/Json.h"

using namespace pf::obs;

const char *pf::obs::flightEventKindName(FlightEventKind K) {
  switch (K) {
  case FlightEventKind::PhaseTransition:
    return "phase";
  case FlightEventKind::RetryIssued:
    return "retry";
  case FlightEventKind::BackoffWait:
    return "backoff";
  case FlightEventKind::WatchdogTrip:
    return "watchdog-trip";
  case FlightEventKind::ChannelDead:
    return "channel-dead";
  case FlightEventKind::ChannelRemap:
    return "channel-remap";
  case FlightEventKind::FloorFallback:
    return "floor-fallback";
  case FlightEventKind::NodeFallback:
    return "node-fallback";
  case FlightEventKind::CacheHit:
    return "cache-hit";
  case FlightEventKind::CacheMiss:
    return "cache-miss";
  case FlightEventKind::BreakerTrip:
    return "breaker-trip";
  case FlightEventKind::BreakerProbe:
    return "breaker-probe";
  case FlightEventKind::BreakerReadmit:
    return "breaker-readmit";
  case FlightEventKind::ExecStart:
    return "exec-start";
  case FlightEventKind::ExecDone:
    return "exec-done";
  case FlightEventKind::ExecError:
    return "exec-error";
  case FlightEventKind::RequestAdmit:
    return "request-admit";
  case FlightEventKind::RequestShed:
    return "request-shed";
  case FlightEventKind::RequestRetry:
    return "request-retry";
  case FlightEventKind::RequestDone:
    return "request-done";
  }
  return "unknown";
}

FlightRecorder &FlightRecorder::instance() {
  static FlightRecorder *R = new FlightRecorder();
  return *R;
}

FlightRecorder::Ring &FlightRecorder::localRing() {
  thread_local Ring *Local = nullptr;
  if (!Local) {
    std::lock_guard<std::mutex> Lock(Mu);
    Rings.push_back(std::make_unique<Ring>());
    Rings.back()->Tid = static_cast<uint32_t>(Rings.size() - 1);
    Local = Rings.back().get();
  }
  return *Local;
}

void FlightRecorder::record(FlightEventKind K, int64_t Cycle, int32_t A,
                            int32_t B, double Value, const char *Detail,
                            int32_t Req) {
  Ring &R = localRing();
  FlightEvent E;
  E.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  E.Cycle = Cycle;
  E.Value = Value;
  E.A = A;
  E.B = B;
  E.Req = Req;
  E.Kind = K;
  E.Tid = R.Tid;
  E.Detail = Detail;
  // The only cross-thread contention on this lock is a dump-time merge;
  // steady-state recording takes it uncontended.
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Events.push(E);
}

std::vector<FlightEvent> FlightRecorder::merged() const {
  std::vector<FlightEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &R : Rings) {
      std::lock_guard<std::mutex> RingLock(R->Mu);
      R->Events.forEach([&](const FlightEvent &E) { Out.push_back(E); });
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const FlightEvent &L, const FlightEvent &R) {
              return L.Seq < R.Seq;
            });
  return Out;
}

std::string FlightRecorder::renderText(const char *Reason) const {
  const std::vector<FlightEvent> Events = merged();
  uint32_t Threads = 0;
  for (const FlightEvent &E : Events)
    Threads = std::max(Threads, E.Tid + 1);

  std::string Out = "# pimflow flight recorder dump\n";
  if (Reason) {
    Out += "# reason: ";
    Out += Reason;
    Out += '\n';
  }
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "# events: %zu (last %zu per thread, %u thread%s)\n",
                Events.size(), RingCapacity, Threads,
                Threads == 1 ? "" : "s");
  Out += Buf;
  for (const FlightEvent &E : Events) {
    std::snprintf(Buf, sizeof(Buf),
                  "seq=%06llu tid=%u cycle=%lld kind=%s a=%d b=%d v=%g",
                  static_cast<unsigned long long>(E.Seq), E.Tid,
                  static_cast<long long>(E.Cycle), flightEventKindName(E.Kind),
                  E.A, E.B, E.Value);
    Out += Buf;
    if (E.Req >= 0) {
      std::snprintf(Buf, sizeof(Buf), " req=%d", E.Req);
      Out += Buf;
    }
    if (E.Detail) {
      Out += " note=";
      Out += E.Detail;
    }
    Out += '\n';
  }
  return Out;
}

bool FlightRecorder::dump(const std::string &Path, const char *Reason) const {
  return writeTextFile(Path, renderText(Reason));
}

void FlightRecorder::setAutoDumpPath(std::string Path) {
  std::lock_guard<std::mutex> Lock(Mu);
  AutoDumpPath = std::move(Path);
}

std::string FlightRecorder::autoDumpPath() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return AutoDumpPath;
}

void FlightRecorder::autoDump(const char *Reason) {
  const std::string Path = autoDumpPath();
  if (Path.empty())
    return;
  if (!dump(Path, Reason))
    std::fprintf(stderr, "warning: flight recorder: cannot write %s\n",
                 Path.c_str());
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &R : Rings) {
    std::lock_guard<std::mutex> RingLock(R->Mu);
    R->Events.clear();
  }
  NextSeq.store(0, std::memory_order_relaxed);
}
