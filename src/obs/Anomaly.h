//===- obs/Anomaly.h - In-run anomaly watchdog rules ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Threshold rules over the live telemetry registries (obs/Metrics,
/// obs/Counters) and a timeline attribution: tail-latency blowups
/// (p99/p50), lane idle-gap fractions, and retry rates. Violations become
/// structured DiagnosticEngine *warnings* (anomaly.tail-latency,
/// anomaly.idle-gap, anomaly.retry-rate) so a regression surfaces in the
/// run that caused it, not only at the tier-5 diff gate. The default
/// thresholds are deliberately loose — a healthy run must stay quiet;
/// tests and operators tighten them per use case.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_ANOMALY_H
#define PIMFLOW_OBS_ANOMALY_H

#include "obs/Attribution.h"
#include "support/Diagnostics.h"

namespace pf::obs {

/// Watchdog thresholds; every rule fires as a warning, never an error.
struct AnomalyRules {
  /// Maximum p99/p50 ratio of any HDR histogram (with p50 > 0) before the
  /// tail is flagged. Latency distributions here are simulated, so a
  /// 100x tail means a structurally imbalanced plan, not scheduler noise.
  double TailRatioMax = 100.0;
  /// Maximum idle fraction of a lane that did schedule work. 1.0 would
  /// never fire; a lane over this threshold mostly waited.
  double IdleGapFractionMax = 0.95;
  /// Maximum average retries per fault-injected simulator run.
  double RetryRateMax = 8.0;
  /// Histograms with fewer samples than this are never judged (tiny
  /// samples make meaningless tails).
  int64_t MinHistogramCount = 16;
};

/// Evaluates every rule against the current registries and, when \p A is
/// non-null, the lane usage of \p A. Returns the number of warnings
/// reported into \p DE.
int evaluateAnomalies(DiagnosticEngine &DE, const AttributionReport *A,
                      const AnomalyRules &Rules = {});

} // namespace pf::obs

#endif // PIMFLOW_OBS_ANOMALY_H
