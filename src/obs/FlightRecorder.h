//===- obs/FlightRecorder.h - Always-on event ring buffer -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A crash-safe flight recorder (docs/INTERNALS.md §11): every thread
/// writes structured events — phase transitions, retry/backoff decisions,
/// channel remaps, watchdog trips, cache hits/misses — into its own
/// bounded ring (support/Ring.h), so recording never contends across
/// threads and the cost per event is one relaxed sequence fetch_add plus
/// an uncontended per-ring lock. The recorder is on by default: the rings
/// are fixed-size and overwrite their oldest entries, so an idle recorder
/// costs nothing and a busy one holds exactly the last
/// `RingCapacity` events per thread.
///
/// Dumps merge all rings and order events by the global sequence number (a
/// total order consistent with every thread's program order; each event
/// also carries its simulated-cycle or nanosecond timestamp). A dump is
/// triggered automatically — via `autoDump` — whenever the execution
/// engine's `tryExecute` fails or a fault goes unrecovered, and at exit
/// when the driver's `--flight-dump=<path>` flag configured a destination;
/// without a configured path `autoDump` is a no-op, keeping induced-fault
/// test suites quiet.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_FLIGHTRECORDER_H
#define PIMFLOW_OBS_FLIGHTRECORDER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/Ring.h"

namespace pf::obs {

enum class FlightEventKind : uint8_t {
  PhaseTransition, ///< simulator phase boundary; A = channel, B = phase idx
  RetryIssued,     ///< transient retry; A = channel, B = attempt, V = cost
  BackoffWait,     ///< backoff pause; A = channel, B = attempt, V = cycles
  WatchdogTrip,    ///< watchdog fired; A = channel, V = budget cycles
  ChannelDead,     ///< channel declared dead; A = channel
  ChannelRemap,    ///< work remapped; A = from-channel, B = to-channel
  FloorFallback,   ///< whole plan demoted to the GPU floor
  NodeFallback,    ///< one node demoted to GPU; A = node id
  CacheHit,        ///< profiler memo hit; A = shard
  CacheMiss,       ///< profiler memo miss; A = shard, V = measure ns
  ExecStart,       ///< tryExecute entry; A = node count, B = channel count
  ExecDone,        ///< tryExecute success; V = makespan ns
  ExecError,       ///< tryExecute failure; Detail names the error
  BreakerTrip,     ///< channel breaker opened; A = channel, B = failures
  BreakerProbe,    ///< cooldown probe; A = channel, B = 1 healthy / 0 not
  BreakerReadmit,  ///< breaker closed, channel re-admitted; A = channel
  RequestAdmit,    ///< serve request started; A = channels granted, B = want
  RequestShed,     ///< serve request shed; A = reason ordinal
  RequestRetry,    ///< serve mid-run re-grant; A = channels, B = retry count
  RequestDone,     ///< serve request completed; V = latency ns
};

const char *flightEventKindName(FlightEventKind K);

/// One recorded event. POD; `Detail` must point at a string literal (the
/// ring stores the pointer, not a copy).
struct FlightEvent {
  uint64_t Seq = 0;  ///< global issue order across all threads
  int64_t Cycle = 0; ///< kind-specific timestamp (sim cycles or ns)
  double Value = 0.0;
  int32_t A = -1;
  int32_t B = -1;
  /// Serve request the event belongs to (-1 outside serve mode). Breaker
  /// trips carry the interrupted grant holder; probes/readmits carry the
  /// request whose failure tripped the channel.
  int32_t Req = -1;
  FlightEventKind Kind = FlightEventKind::ExecStart;
  uint32_t Tid = 0; ///< recorder-assigned thread ordinal
  const char *Detail = nullptr;
};

class FlightRecorder {
public:
  /// Events retained per thread. 256 × ~48 B ≈ 12 KiB per thread.
  static constexpr size_t RingCapacity = 256;

  /// The process-wide recorder (intentionally leaked: per-thread ring
  /// pointers must stay valid for any thread that outlives main's
  /// statics).
  static FlightRecorder &instance();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  void record(FlightEventKind K, int64_t Cycle, int32_t A = -1,
              int32_t B = -1, double Value = 0.0,
              const char *Detail = nullptr, int32_t Req = -1);

  /// All retained events from every thread's ring, sorted by Seq.
  std::vector<FlightEvent> merged() const;
  /// Human-readable dump of merged(), one event per line, with a header
  /// naming \p Reason.
  std::string renderText(const char *Reason = nullptr) const;
  /// Writes renderText(Reason) to \p Path; returns false on I/O error.
  bool dump(const std::string &Path, const char *Reason = nullptr) const;

  /// Destination for automatic dumps (empty = disabled, the default).
  /// The driver's --flight-dump flag sets this.
  void setAutoDumpPath(std::string Path);
  std::string autoDumpPath() const;
  /// Dumps to the auto-dump path if one is configured; no-op otherwise.
  /// Called from tryExecute error paths and unrecovered-fault handling.
  void autoDump(const char *Reason);

  /// Empties every ring (rings themselves survive; per-thread references
  /// stay valid). Also restarts the sequence counter.
  void clear();

private:
  struct Ring {
    mutable std::mutex Mu;
    uint32_t Tid = 0;
    BoundedRing<FlightEvent, RingCapacity> Events;
  };

  FlightRecorder() = default;
  Ring &localRing();

  std::atomic<bool> Enabled{true};
  std::atomic<uint64_t> NextSeq{0};
  mutable std::mutex Mu; // guards Rings registration and AutoDumpPath
  std::vector<std::unique_ptr<Ring>> Rings;
  std::string AutoDumpPath;
};

/// Records an event when the recorder is enabled (one relaxed load when
/// disabled, so call sites can live in hot paths).
inline void flightEvent(FlightEventKind K, int64_t Cycle, int32_t A = -1,
                        int32_t B = -1, double Value = 0.0,
                        const char *Detail = nullptr, int32_t Req = -1) {
  FlightRecorder &R = FlightRecorder::instance();
  if (R.enabled())
    R.record(K, Cycle, A, B, Value, Detail, Req);
}

} // namespace pf::obs

#endif // PIMFLOW_OBS_FLIGHTRECORDER_H
