//===- obs/Attribution.cpp - Timeline performance attribution ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Attribution.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "codegen/PimKernelSpec.h"
#include "obs/Counters.h"
#include "support/Format.h"

using namespace pf;
using namespace pf::obs;

namespace {

/// Scheduled times accumulate float error over long chains; compare with a
/// scale-relative epsilon.
bool near(double A, double B) {
  return std::fabs(A - B) <=
         1e-6 * std::max(1.0, std::max(std::fabs(A), std::fabs(B)));
}

/// Merges \p Busy (already start-sorted) and fills merged busy time plus
/// the idle holes of [0, Total].
void fillGaps(LaneUsage &Lane, double Total) {
  Lane.BusyNs = 0.0;
  double Cursor = 0.0;
  for (const LaneInterval &I : Lane.Busy) {
    if (I.StartNs > Cursor && !near(I.StartNs, Cursor))
      Lane.Gaps.push_back(IdleGap{Cursor, I.StartNs});
    const double End = std::max(Cursor, I.EndNs);
    Lane.BusyNs += End - std::max(Cursor, I.StartNs);
    Cursor = End;
  }
  if (Total > Cursor && !near(Total, Cursor))
    Lane.Gaps.push_back(IdleGap{Cursor, Total});
  Lane.IdleNs = std::max(0.0, Total - Lane.BusyNs);
}

} // namespace

const char *pf::obs::criticalReasonName(CriticalReason R) {
  switch (R) {
  case CriticalReason::Start:
    return "start";
  case CriticalReason::Dependency:
    return "dependency";
  case CriticalReason::DeviceBusy:
    return "device-busy";
  }
  return "?";
}

AttributionReport pf::obs::attributeTimeline(const Graph &G,
                                             const Timeline &TL,
                                             const SystemConfig &Config) {
  AttributionReport R;
  R.TotalNs = TL.TotalNs;
  if (TL.Nodes.empty())
    return R;

  std::unordered_map<NodeId, const NodeSchedule *> Sched;
  for (const NodeSchedule &S : TL.Nodes)
    Sched.emplace(S.Id, &S);

  // Producers of a node: one entry per distinct produced input value, with
  // the handoff the scheduler charged (SyncOverheadNs across devices).
  auto producersOf = [&](const NodeSchedule &S) {
    std::vector<const NodeSchedule *> Prods;
    std::vector<ValueId> Seen;
    for (ValueId In : G.node(S.Id).Inputs) {
      const NodeId P = G.producer(In);
      if (P == InvalidNode)
        continue;
      if (std::find(Seen.begin(), Seen.end(), In) != Seen.end())
        continue;
      Seen.push_back(In);
      auto It = Sched.find(P);
      if (It != Sched.end())
        Prods.push_back(It->second);
    }
    return Prods;
  };
  auto handoffNs = [&](const NodeSchedule &From, const NodeSchedule &To) {
    return From.Dev != To.Dev ? Config.SyncOverheadNs : 0.0;
  };

  // --- Critical chain: walk backwards from the node that ends at the
  // makespan, asking at each node which constraint pinned its start.
  const NodeSchedule *Last = &TL.Nodes.front();
  for (const NodeSchedule &S : TL.Nodes)
    if (S.EndNs > Last->EndNs)
      Last = &S;

  // Lane predecessor: the latest-ending lane-occupying node that finished
  // by the time S started (the node whose completion freed the lane).
  auto lanePredecessor = [&](const NodeSchedule &S) {
    const NodeSchedule *Pred = nullptr;
    for (const NodeSchedule &O : TL.Nodes) {
      if (&O == &S || O.durationNs() <= 0.0 || O.Dev != S.Dev)
        continue;
      if (O.EndNs > S.StartNs && !near(O.EndNs, S.StartNs))
        continue;
      if (!Pred || O.EndNs > Pred->EndNs)
        Pred = &O;
    }
    return Pred;
  };

  std::vector<CriticalStep> Chain;
  std::unordered_set<NodeId> OnChain;
  const NodeSchedule *Cur = Last;
  while (Cur && !OnChain.count(Cur->Id)) {
    OnChain.insert(Cur->Id);
    CriticalStep Step;
    Step.Id = Cur->Id;
    Step.Dev = Cur->Dev;
    Step.StartNs = Cur->StartNs;
    Step.EndNs = Cur->EndNs;

    const NodeSchedule *Next = nullptr;
    if (near(Cur->StartNs, 0.0)) {
      Step.Why = CriticalReason::Start;
    } else {
      // Prefer the dependency explanation when it binds: it names the
      // producer the node actually waited for, which is more actionable
      // than "the lane happened to be busy until then".
      const NodeSchedule *BestProd = nullptr;
      double BestAvail = 0.0;
      for (const NodeSchedule *P : producersOf(*Cur)) {
        const double Avail = P->EndNs + handoffNs(*P, *Cur);
        if (!BestProd || Avail > BestAvail)
          BestProd = P, BestAvail = Avail;
      }
      if (BestProd && near(BestAvail, Cur->StartNs)) {
        Step.Why = CriticalReason::Dependency;
        Step.Blocker = BestProd->Id;
        Next = BestProd;
      } else if (const NodeSchedule *Pred = lanePredecessor(*Cur)) {
        Step.Why = CriticalReason::DeviceBusy;
        Step.Blocker = Pred->Id;
        Next = Pred;
      } else if (BestProd) {
        // The start is later than every constraint we can reconstruct
        // (possible only for timelines not produced by the engine's list
        // scheduler); fall back to the tightest producer.
        Step.Why = CriticalReason::Dependency;
        Step.Blocker = BestProd->Id;
        Next = BestProd;
      } else {
        Step.Why = CriticalReason::Start;
      }
    }
    Chain.push_back(Step);
    Cur = Next;
  }
  std::reverse(Chain.begin(), Chain.end());
  R.Critical.Steps = std::move(Chain);
  R.Critical.LengthNs = Last->EndNs;
  for (const CriticalStep &S : R.Critical.Steps) {
    const double Dur = S.EndNs - S.StartNs;
    (S.Dev == Device::Pim ? R.Critical.PimNs : R.Critical.GpuNs) += Dur;
  }

  // --- Slack: a backward pass over reverse topological order. A node's
  // completion may slip until it would delay a consumer's latest start
  // (minus the handoff) or its lane successor's latest start.
  std::unordered_map<NodeId, double> LatestEnd;
  for (const NodeSchedule &S : TL.Nodes)
    LatestEnd[S.Id] = R.TotalNs;

  // Lane successors under the schedule's order: per lane, sort occupying
  // nodes by start; each constrains its predecessor.
  std::unordered_map<NodeId, const NodeSchedule *> LaneSucc;
  for (Device Dev : {Device::Gpu, Device::Pim}) {
    std::vector<const NodeSchedule *> Lane;
    for (const NodeSchedule &S : TL.Nodes)
      if (S.Dev == Dev && S.durationNs() > 0.0)
        Lane.push_back(&S);
    std::sort(Lane.begin(), Lane.end(),
              [](const NodeSchedule *A, const NodeSchedule *B) {
                return A->StartNs < B->StartNs;
              });
    for (size_t I = 0; I + 1 < Lane.size(); ++I)
      LaneSucc[Lane[I]->Id] = Lane[I + 1];
  }

  std::vector<NodeId> Topo = G.tryTopoOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    auto SIt = Sched.find(*It);
    if (SIt == Sched.end())
      continue;
    const NodeSchedule &S = *SIt->second;
    double &LE = LatestEnd[S.Id];
    for (ValueId Out : G.node(S.Id).Outputs) {
      for (NodeId C : G.consumers(Out)) {
        auto CIt = Sched.find(C);
        if (CIt == Sched.end())
          continue;
        const NodeSchedule &CS = *CIt->second;
        const double LatestStart =
            LatestEnd.at(CS.Id) - CS.durationNs() - handoffNs(S, CS);
        LE = std::min(LE, LatestStart);
      }
    }
    auto LIt = LaneSucc.find(S.Id);
    if (LIt != LaneSucc.end()) {
      const NodeSchedule &NS = *LIt->second;
      LE = std::min(LE, LatestEnd.at(NS.Id) - NS.durationNs());
    }
  }
  for (const NodeSchedule &S : TL.Nodes) {
    NodeSlack NS;
    NS.Id = S.Id;
    NS.SlackNs = std::max(0.0, LatestEnd.at(S.Id) - S.EndNs);
    NS.Critical = near(NS.SlackNs, 0.0);
    R.Slack.push_back(NS);
  }

  // --- Lane usage and per-channel phases. Regenerate each offloaded
  // node's command trace to learn channel occupancy (the Chrome-trace
  // derivation), and total the phase cycles of every channel trace.
  LaneUsage Gpu;
  Gpu.Name = "gpu";
  Gpu.Channel = -1;
  for (const NodeSchedule &S : TL.Nodes)
    if (S.Dev != Device::Pim && S.durationNs() > 0.0)
      Gpu.Busy.push_back(LaneInterval{S.Id, S.StartNs, S.EndNs});

  std::map<int, LaneUsage> Channels;
  std::map<int, ChannelPhaseCycles> Phases;
  if (Config.hasPim()) {
    PimCommandGenerator Gen(Config.Pim, Config.Codegen);
    for (const NodeSchedule &S : TL.Nodes) {
      if (S.Dev != Device::Pim || S.durationNs() <= 0.0)
        continue;
      const PimKernelPlan Plan = Gen.plan(lowerToPimSpec(G, S.Id));
      for (size_t C = 0; C < Plan.Trace.Channels.size(); ++C) {
        if (Plan.Trace.Channels[C].empty())
          continue;
        const int Ch = static_cast<int>(C);
        LaneUsage &Lane = Channels[Ch];
        if (Lane.Name.empty()) {
          Lane.Name = formatStr("pim.ch%d", Ch);
          Lane.Channel = Ch;
        }
        Lane.Busy.push_back(LaneInterval{S.Id, S.StartNs, S.EndNs});
        ChannelPhaseCycles P =
            phaseCyclesOf(Config.Pim, Plan.Trace.Channels[C]);
        P.Channel = Ch;
        Phases[Ch] += P;
        Phases[Ch].Channel = Ch;
      }
    }
  }

  auto sortBusy = [](LaneUsage &Lane) {
    std::sort(Lane.Busy.begin(), Lane.Busy.end(),
              [](const LaneInterval &A, const LaneInterval &B) {
                return A.StartNs < B.StartNs;
              });
  };
  sortBusy(Gpu);
  fillGaps(Gpu, R.TotalNs);
  R.Lanes.push_back(std::move(Gpu));
  for (auto &[Ch, Lane] : Channels) {
    sortBusy(Lane);
    fillGaps(Lane, R.TotalNs);
    R.Lanes.push_back(std::move(Lane));
  }
  for (const auto &[Ch, P] : Phases)
    R.Phases.push_back(P);

  addCounter("attrib.critical_steps",
             static_cast<int64_t>(R.Critical.Steps.size()));
  return R;
}

void pf::obs::exportPhaseCounters(
    const std::vector<ChannelPhaseCycles> &Phases) {
  for (const ChannelPhaseCycles &P : Phases) {
    addCounter(formatStr("pim.phase_cycles.gwrite.ch%d", P.Channel),
               P.GwriteCycles);
    addCounter(formatStr("pim.phase_cycles.g_act.ch%d", P.Channel),
               P.GactCycles);
    addCounter(formatStr("pim.phase_cycles.comp.ch%d", P.Channel),
               P.CompCycles);
    addCounter(formatStr("pim.phase_cycles.readres.ch%d", P.Channel),
               P.ReadResCycles);
    if (P.RetryCycles)
      addCounter(formatStr("pim.phase_cycles.retry.ch%d", P.Channel),
                 P.RetryCycles);
    if (P.StallCycles)
      addCounter(formatStr("pim.phase_cycles.stall.ch%d", P.Channel),
                 P.StallCycles);
  }
}
