//===- obs/Json.h - Minimal JSON writer and parser --------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON substrate of the observability layer: a streaming writer with
/// automatic comma/nesting management (used by the Chrome-trace exporter,
/// the stats exporter and the bench JSON emitter) and a small
/// recursive-descent parser (used by tests and the `pf_json_check` smoke
/// tool to prove the emitted files actually parse). Deliberately tiny — no
/// external dependency, no DOM mutation API.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_JSON_H
#define PIMFLOW_OBS_JSON_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pf::obs {

/// Escapes \p S for embedding inside a JSON string literal (quotes not
/// included).
std::string jsonEscape(const std::string &S);

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject().key("x").value(1).key("l").beginArray().value("a")
///    .endArray().endObject();
///   std::string S = W.take();
/// \endcode
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();
  JsonWriter &key(const std::string &K);
  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S);
  JsonWriter &value(double D);
  JsonWriter &value(int64_t I);
  JsonWriter &value(int I) { return value(static_cast<int64_t>(I)); }
  JsonWriter &value(bool B);
  JsonWriter &nullValue();

  /// Shorthand for key(K).value(V).
  template <typename T> JsonWriter &field(const std::string &K, T V) {
    return key(K).value(V);
  }

  /// Returns the document and resets the writer.
  std::string take();
  const std::string &str() const { return Out; }

private:
  void separate();

  std::string Out;
  /// One entry per open container: whether the next element needs a comma.
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

/// A parsed JSON document node.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool Boolean = false;
  double Number = 0.0;
  std::string Str;
  std::vector<JsonValue> Array;
  /// Insertion-ordered key/value pairs.
  std::vector<std::pair<std::string, JsonValue>> Object;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;
  /// Number value of member \p Key, or \p Default.
  double numberOr(const std::string &Key, double Default) const;

  /// Parses \p Text (must be a single JSON document; trailing garbage is an
  /// error). Returns nullopt and fills \p Error on malformed input.
  static std::optional<JsonValue> parse(const std::string &Text,
                                        std::string *Error = nullptr);
};

/// Writes \p Content to \p Path; false on I/O failure.
bool writeTextFile(const std::string &Path, const std::string &Content);

/// Reads all of \p Path; nullopt on I/O failure.
std::optional<std::string> readTextFile(const std::string &Path);

} // namespace pf::obs

#endif // PIMFLOW_OBS_JSON_H
