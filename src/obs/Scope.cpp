//===- obs/Scope.cpp - Session-scoped observability registries ------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Scope.h"

namespace pf::obs {

namespace {
thread_local Scope *CurrentScope = nullptr;
} // namespace

ScopeGuard::ScopeGuard(Scope &S) : Prev(CurrentScope) { CurrentScope = &S; }

ScopeGuard::~ScopeGuard() { CurrentScope = Prev; }

Scope *currentScope() { return CurrentScope; }

Registry &activeRegistry() {
  if (Scope *S = CurrentScope)
    return S->registry();
  return Registry::instance();
}

MetricsRegistry &activeMetrics() {
  if (Scope *S = CurrentScope)
    return S->metrics();
  return MetricsRegistry::instance();
}

} // namespace pf::obs
