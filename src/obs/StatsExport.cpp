//===- obs/StatsExport.cpp - JSON stats export ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/StatsExport.h"

#include "obs/Counters.h"
#include "obs/Json.h"
#include "obs/Metrics.h"

using namespace pf;
using namespace pf::obs;

std::string pf::obs::renderStatsJson(const CompileResult &R,
                                     const ExecutionStats &S) {
  JsonWriter W;
  W.beginObject();
  W.field("model", R.Transformed.name());
  W.field("policy", policyName(R.Policy));
  W.field("end_to_end_ns", R.endToEndNs());
  W.field("energy_j", R.energyJ());
  W.field("conv_layer_ns", R.ConvLayerNs);
  W.field("fc_layer_ns", R.FcLayerNs);

  // Segment-mode census, mirroring the report's "segments:" line.
  int Counts[4] = {};
  for (const SegmentPlan &Seg : R.Plan.Segments)
    ++Counts[static_cast<int>(Seg.Mode)];
  W.key("segments")
      .beginObject()
      .field("gpu", Counts[0])
      .field("pim", Counts[1])
      .field("md_dp", Counts[2])
      .field("pipeline", Counts[3])
      .endObject();

  W.key("stats")
      .beginObject()
      .field("gpu_kernels", S.GpuKernels)
      .field("pim_kernels", S.PimKernels)
      .field("fused_or_free_nodes", S.FusedOrFreeNodes)
      .field("gpu_busy_fraction", S.GpuBusyFraction)
      .field("pim_busy_fraction", S.PimBusyFraction)
      .field("pim_gwrite_bursts", S.PimGwriteBursts)
      .field("pim_g_acts", S.PimGActs)
      .field("pim_comp_columns", S.PimCompColumns)
      .field("pim_read_res", S.PimReadRes)
      .field("pim_weight_bytes", S.PimWeightBytes)
      .field("gpu_weight_bytes", S.GpuWeightBytes)
      .endObject();

  W.key("timeline")
      .beginObject()
      .field("total_ns", R.Schedule.TotalNs)
      .field("gpu_busy_ns", R.Schedule.GpuBusyNs)
      .field("pim_busy_ns", R.Schedule.PimBusyNs)
      .field("energy_j", R.Schedule.EnergyJ)
      .field("contention_slowdown", R.Schedule.ContentionSlowdown)
      .field("scheduled_nodes",
             static_cast<int64_t>(R.Schedule.Nodes.size()))
      .endObject();

  if (R.Recovery.Active) {
    W.key("recovery")
        .beginObject()
        .field("degraded", R.Recovery.Degraded)
        .field("dead_channels", R.Recovery.DeadChannels)
        .field("stalled_channels", R.Recovery.StalledChannels)
        .field("surviving_channels", R.Recovery.SurvivingChannels)
        .field("nodes_remapped", R.Recovery.NodesRemapped)
        .field("node_fallbacks", R.Recovery.NodesFellBack)
        .field("transient_retries", R.Recovery.TransientRetries)
        .endObject();
  }

  const Registry &Reg = activeRegistry();
  W.key("counters").beginObject();
  for (const auto &[Name, Value] : Reg.counterSnapshot())
    W.field(Name, Value);
  W.endObject();

  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Reg.histogramSnapshot()) {
    W.key(Name)
        .beginObject()
        .field("count", H.Count)
        .field("sum", H.Sum)
        .field("min", H.Min)
        .field("max", H.Max)
        .field("mean", H.mean())
        .endObject();
  }
  W.endObject();

  // Streaming metrics (obs/Metrics): quantile histograms and gauges, both
  // name-sorted like every other section so stats dumps diff cleanly.
  const MetricsRegistry &M = activeMetrics();
  W.key("metrics").beginObject();
  W.key("histograms").beginObject();
  for (const auto &[Name, Q] : M.histogramSnapshot()) {
    W.key(Name)
        .beginObject()
        .field("count", Q.Count)
        .field("mean", Q.mean())
        .field("p50", Q.P50)
        .field("p90", Q.P90)
        .field("p99", Q.P99)
        .field("p999", Q.P999)
        .field("rel_error_bound", Q.RelErrorBound)
        .endObject();
  }
  W.endObject();
  W.key("gauges").beginObject();
  for (const auto &[Name, V] : M.gaugeSnapshot())
    W.field(Name, V);
  W.endObject();
  W.endObject();

  W.endObject();
  return W.take();
}

std::string pf::obs::renderStatsJson(const CompileResult &R) {
  return renderStatsJson(R, computeStats(R));
}

bool pf::obs::writeStatsJson(const CompileResult &R,
                             const std::string &Path) {
  return writeTextFile(Path, renderStatsJson(R));
}
