//===- obs/Trace.cpp - Low-overhead compile-phase span tracer ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <chrono>
#include <thread>
#include <unordered_map>

using namespace pf::obs;

namespace {

int64_t wallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Dense thread numbering, stable for the process lifetime (thread ids stay
/// meaningful across Tracer::clear()).
std::mutex ThreadIdMu;
std::unordered_map<std::thread::id, uint32_t> ThreadIds;

uint32_t denseThreadId() {
  std::lock_guard<std::mutex> Lock(ThreadIdMu);
  auto [It, Inserted] = ThreadIds.emplace(
      std::this_thread::get_id(), static_cast<uint32_t>(ThreadIds.size()));
  (void)Inserted;
  return It->second;
}

} // namespace

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

Tracer::Tracer() { EpochNs.store(wallNowNs(), std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.clear();
  EpochNs.store(wallNowNs(), std::memory_order_relaxed);
}

double Tracer::nowUs() const {
  return static_cast<double>(wallNowNs() -
                             EpochNs.load(std::memory_order_relaxed)) /
         1e3;
}

uint32_t Tracer::threadId() { return denseThreadId(); }

void Tracer::record(std::string Name, std::string Category, double StartUs,
                    double DurUs) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.Tid = threadId();
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back(std::move(E));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events;
}

size_t Tracer::numEvents() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}
