//===- obs/Counters.cpp - Named counter / histogram registry ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"

#include <algorithm>

#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace pf::obs;

Registry &Registry::instance() {
  static Registry R;
  return R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(Name, std::make_unique<Counter>()).first;
  return *It->second;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(Name, std::make_unique<Histogram>()).first;
  return *It->second;
}

std::vector<std::pair<std::string, int64_t>>
Registry::counterSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, int64_t>> Out;
  for (const auto &[Name, C] : Counters)
    if (C->value() != 0)
      Out.emplace_back(Name, C->value());
  // Sorted-by-name emission is a documented contract (goldens and diffs
  // depend on it), not an accident of the backing container.
  std::sort(Out.begin(), Out.end(),
            [](const auto &L, const auto &R) { return L.first < R.first; });
  return Out;
}

std::vector<std::pair<std::string, HistogramStats>>
Registry::histogramSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, HistogramStats>> Out;
  for (const auto &[Name, H] : Histograms) {
    const HistogramStats S = H->stats();
    if (S.Count > 0)
      Out.emplace_back(Name, S);
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &L, const auto &R) { return L.first < R.first; });
  return Out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

void pf::obs::setObservabilityEnabled(bool On) {
  Tracer::instance().setEnabled(On);
  Registry::instance().setEnabled(On);
  MetricsRegistry::instance().setEnabled(On);
  // The flight recorder stays always-on regardless (bounded rings make it
  // free when idle); only its contents are lifecycle-managed, in
  // resetAll().
}

bool pf::obs::observabilityEnabled() {
  return Tracer::instance().enabled() || Registry::instance().enabled() ||
         MetricsRegistry::instance().enabled();
}

void pf::obs::resetAll() {
  Tracer::instance().clear();
  Registry::instance().reset();
  MetricsRegistry::instance().reset();
  FlightRecorder::instance().clear();
}

void pf::obs::resetObservability() { resetAll(); }
