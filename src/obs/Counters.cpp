//===- obs/Counters.cpp - Named counter / histogram registry ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"

#include <algorithm>

#include "obs/Trace.h"

using namespace pf::obs;

Registry &Registry::instance() {
  static Registry R;
  return R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(Name, std::make_unique<Counter>()).first;
  return *It->second;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(Name, std::make_unique<Histogram>()).first;
  return *It->second;
}

std::vector<std::pair<std::string, int64_t>>
Registry::counterSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, int64_t>> Out;
  for (const auto &[Name, C] : Counters)
    if (C->value() != 0)
      Out.emplace_back(Name, C->value());
  return Out; // std::map iteration is already name-sorted.
}

std::vector<std::pair<std::string, HistogramStats>>
Registry::histogramSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::pair<std::string, HistogramStats>> Out;
  for (const auto &[Name, H] : Histograms) {
    const HistogramStats S = H->stats();
    if (S.Count > 0)
      Out.emplace_back(Name, S);
  }
  return Out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

void pf::obs::setObservabilityEnabled(bool On) {
  Tracer::instance().setEnabled(On);
  Registry::instance().setEnabled(On);
}

bool pf::obs::observabilityEnabled() {
  return Tracer::instance().enabled() || Registry::instance().enabled();
}

void pf::obs::resetAll() {
  Tracer::instance().clear();
  Registry::instance().reset();
}

void pf::obs::resetObservability() { resetAll(); }
