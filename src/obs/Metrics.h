//===- obs/Metrics.h - Streaming metrics: HDR histograms, windows -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming half of the observability stack (docs/INTERNALS.md §11):
/// a process-wide `MetricsRegistry` of gauges, log-linear (HDR-style)
/// histograms with error-bounded quantiles, and sliding time-windowed
/// views, registered alongside the aggregate `obs::Registry` counters.
///
/// The log-linear histogram buckets values by octave (power of two), each
/// octave split into `SubBucketsPerOctave` linear sub-buckets, so any
/// reported quantile is within a relative error of
/// `1 / (2 * SubBucketsPerOctave)` of the true sample at that rank —
/// `relErrorBound()` reports the bound and the exporters carry it next to
/// the quantiles so downstream gates know the resolution they diff at.
///
/// Sliding windows answer "what happened recently" in one of two tick
/// domains: wall-clock microseconds (`Tracer::nowUs`) or simulated PIM
/// cycles (a registry-owned logical clock advanced by the simulator).
/// A window is a ring of `NumBuckets` accumulator buckets of fixed tick
/// width; reading sums the buckets that fall inside the trailing span.
///
/// Everything is gated on the same switch as the counter registry
/// (`obs::setObservabilityEnabled`); the `recordMetric*` helpers early-out
/// on one relaxed atomic load so call sites can live in hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_OBS_METRICS_H
#define PIMFLOW_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pf::obs {

/// A point-in-time scalar (last write wins, no aggregation).
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Summary of a log-linear histogram: exact count/sum/min/max plus
/// bounded-error quantiles.
struct QuantileStats {
  int64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double P50 = 0.0;
  double P90 = 0.0;
  double P99 = 0.0;
  double P999 = 0.0;
  /// Maximum relative error of any quantile above vs. the true sample.
  double RelErrorBound = 0.0;

  double mean() const { return Count > 0 ? Sum / Count : 0.0; }
};

/// A log-linear scalar distribution with bounded-error quantiles. Values
/// are expected non-negative (latencies, cycle counts, byte sizes);
/// non-positive samples land in an exact zero bucket and non-finite
/// samples are dropped.
class LogLinearHistogram {
public:
  /// Linear sub-buckets per power-of-two octave. 32 bounds the relative
  /// quantile error at 1/64 ≈ 1.6%.
  static constexpr int SubBucketsPerOctave = 32;

  void record(double X);
  /// Quantile \p Q in [0, 1] under the rank rule `ceil(Q * Count)`;
  /// relative error vs. the true sample at that rank is at most
  /// relErrorBound(). Returns 0 when empty.
  double quantile(double Q) const;
  QuantileStats stats() const;
  void reset();

  static constexpr double relErrorBound() {
    return 1.0 / (2.0 * SubBucketsPerOctave);
  }

private:
  double quantileLocked(double Q) const;

  mutable std::mutex Mu;
  /// Sparse bucket counts keyed by octave * SubBucketsPerOctave + sub;
  /// key order equals value order, which is what quantileLocked walks.
  std::map<int32_t, int64_t> Buckets;
  int64_t ZeroCount = 0;
  int64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Which logical clock a sliding window is keyed by.
enum class TickDomain : uint8_t {
  WallUs,    ///< wall-clock microseconds (obs::Tracer::nowUs)
  SimCycles, ///< simulated PIM cycles (MetricsRegistry cycle clock)
};

const char *tickDomainName(TickDomain D);

/// Point-in-time view over a window's trailing span.
struct WindowStats {
  TickDomain Domain = TickDomain::WallUs;
  int64_t BucketWidth = 0; ///< ticks per bucket
  int64_t SpanTicks = 0;   ///< BucketWidth * NumBuckets
  int64_t Count = 0;       ///< samples inside the trailing span
  double Sum = 0.0;

  double mean() const { return Count > 0 ? Sum / Count : 0.0; }
};

/// A ring of accumulator buckets over a tick domain. Thread-safe; stale
/// buckets are lazily recycled when their slot is rewritten.
class SlidingWindow {
public:
  SlidingWindow(TickDomain D, int64_t BucketWidth, int NumBuckets = 8);

  void record(int64_t Tick, double X);
  WindowStats stats(int64_t NowTick) const;
  TickDomain domain() const { return Dom; }
  void reset();

private:
  struct Bucket {
    int64_t Epoch = -1;
    int64_t Count = 0;
    double Sum = 0.0;
  };

  TickDomain Dom;
  int64_t Width;
  mutable std::mutex Mu;
  std::vector<Bucket> Buckets;
};

/// A streaming-metric registry. The process-wide default lives behind
/// `instance()` (enabled/disabled together with obs::Registry via
/// obs::setObservabilityEnabled); additional instances back session
/// scopes (obs/Scope.h). Returned references stay valid for the
/// registry's lifetime; reset() zeroes values but never invalidates them.
class MetricsRegistry {
public:
  MetricsRegistry() = default;

  static MetricsRegistry &instance();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }

  /// Finds or creates the histogram / gauge / window named \p Name. A
  /// window's domain and width are fixed by its first registration.
  LogLinearHistogram &histogram(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  SlidingWindow &window(const std::string &Name, TickDomain D,
                        int64_t BucketWidth);

  /// The simulated-cycle logical clock (TickDomain::SimCycles). Advanced
  /// by the PIM simulator as it retires work; monotonic until reset().
  void advanceCycles(int64_t N) {
    CycleClock.fetch_add(N, std::memory_order_relaxed);
  }
  int64_t cycles() const {
    return CycleClock.load(std::memory_order_relaxed);
  }

  /// All histograms with at least one sample, sorted by name.
  std::vector<std::pair<std::string, QuantileStats>> histogramSnapshot() const;
  /// All gauges with a non-zero value, sorted by name.
  std::vector<std::pair<std::string, double>> gaugeSnapshot() const;
  /// All windows with at least one in-span sample, sorted by name,
  /// evaluated at each window's current "now" tick.
  std::vector<std::pair<std::string, WindowStats>> windowSnapshot() const;

  /// Zeroes every metric and the cycle clock (registrations survive).
  void reset();

private:
  std::atomic<bool> Enabled{false};
  std::atomic<int64_t> CycleClock{0};
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<LogLinearHistogram>> Histograms;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<SlidingWindow>> Windows;
};

/// The metrics registry obs helpers route to on this thread: the
/// installed session scope's (obs/Scope.h) when a ScopeGuard is live, the
/// global `MetricsRegistry::instance()` otherwise. Defined in Scope.cpp.
MetricsRegistry &activeMetrics();

/// Records \p X into HDR histogram \p Name when metrics are enabled.
inline void recordMetric(const char *Name, double X) {
  MetricsRegistry &M = activeMetrics();
  if (M.enabled())
    M.histogram(Name).record(X);
}

/// Records \p X into both the HDR histogram \p Name and its sliding
/// window (same name, domain \p D, \p BucketWidth ticks per bucket) at
/// tick \p Tick.
void recordMetricWindowed(const char *Name, TickDomain D, int64_t BucketWidth,
                          int64_t Tick, double X);

/// Sets gauge \p Name when metrics are enabled.
inline void setGauge(const char *Name, double X) {
  MetricsRegistry &M = activeMetrics();
  if (M.enabled())
    M.gauge(Name).set(X);
}

/// Advances the simulated-cycle clock when metrics are enabled.
inline void advanceSimCycles(int64_t N) {
  MetricsRegistry &M = activeMetrics();
  if (M.enabled())
    M.advanceCycles(N);
}

/// Renders every enabled-registry metric — counters and min/max histograms
/// from obs::Registry, gauges / HDR histograms / windows from
/// MetricsRegistry — in the Prometheus text exposition format, sorted by
/// metric name within each section. HDR histograms become `summary`
/// families with p50/p90/p99/p999 `quantile` samples plus `_sum` and
/// `_count`. Names are sanitized (`.` and `-` become `_`) and prefixed
/// with `pimflow_`.
std::string renderPrometheus();

/// Writes renderPrometheus() to \p Path; returns false on I/O error.
bool writeMetricsText(const std::string &Path);

} // namespace pf::obs

#endif // PIMFLOW_OBS_METRICS_H
