//===- plan/PlanCache.h - Content-addressed plan cache ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed on-disk cache of compiled execution plans, keyed by
/// PlanKey::digest() — (canonical graph hash, SystemConfig fingerprint,
/// SearchOptions fingerprint, fault floor). Repeated compiles of the same
/// (model, config) pair are cache hits that skip the MD-DP search
/// entirely; any key change (graph edit, config tweak, option change,
/// floor change) addresses a different file and misses.
///
/// getOrCompute is single-flight, the same discipline as the profiler's
/// memo table: concurrent same-key compiles resolve to one search — the
/// winner computes and stores, every loser blocks on the winner's shared
/// future and counts a hit. An unreadable or corrupt cached file is a miss
/// (recompute and overwrite), never a plan and never an error: the cache
/// must not be able to change what a compile produces, only how fast.
///
/// Observability: `plan_cache.{hit,miss,store,evict,invalid}` counters and
/// the `plan.load_us` / `plan.validate_us` latency histograms (recorded by
/// the artifact layer) surface in `--json-stats`, `--perf-report`, and the
/// Prometheus exposition.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PLAN_PLANCACHE_H
#define PIMFLOW_PLAN_PLANCACHE_H

#include <atomic>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "plan/PlanArtifact.h"

namespace pf {

/// Content-addressed plan store under one directory.
class PlanCache {
public:
  /// \p Dir is created on first store if missing. \p MaxEntries > 0 bounds
  /// the number of cached artifacts: stores beyond the bound evict the
  /// least-recently-used digest, tracked over what this instance stored or
  /// served (files it never touched are left alone).
  explicit PlanCache(std::string Dir, int MaxEntries = 0);

  /// The artifact path digest \p Key addresses (inside the cache dir).
  std::string pathFor(const PlanKey &Key) const;

  /// Loads the cached plan for \p Key. Returns std::nullopt on miss —
  /// including a present-but-corrupt file or a digest collision whose
  /// stored key disagrees (counted under plan_cache.invalid).
  std::optional<ExecutionPlan> load(const PlanKey &Key);

  /// Serializes \p Plan under \p Key, evicting over capacity.
  bool store(const PlanKey &Key, const ExecutionPlan &Plan);

  /// The cache-through compile: load, or run \p Compute once and store.
  /// Single-flight per digest — concurrent callers with the same key get
  /// the one computed plan.
  ExecutionPlan getOrCompute(const PlanKey &Key,
                             const std::function<ExecutionPlan()> &Compute);

  const std::string &dir() const { return Dir; }
  size_t hits() const { return Hits.load(std::memory_order_relaxed); }
  size_t misses() const { return Misses.load(std::memory_order_relaxed); }
  size_t stores() const { return Stores.load(std::memory_order_relaxed); }
  size_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

private:
  /// One in-flight or completed compile, shared by racing callers.
  struct Entry {
    Entry() : Result(Done.get_future().share()) {}
    std::promise<std::shared_ptr<const ExecutionPlan>> Done;
    std::shared_future<std::shared_ptr<const ExecutionPlan>> Result;
  };

  /// Moves \p Digest to most-recently-used and evicts over capacity.
  /// Caller holds Mu.
  void touchLocked(const std::string &Digest);
  void evictOverCapacityLocked();

  std::string Dir;
  int MaxEntries;
  std::mutex Mu;
  /// Single-flight table, keyed by digest.
  std::map<std::string, std::shared_ptr<Entry>> InFlight;
  /// LRU order of digests this instance has stored or served (front =
  /// least recently used).
  std::list<std::string> LruOrder;
  std::map<std::string, std::list<std::string>::iterator> LruPos;

  std::atomic<size_t> Hits{0};
  std::atomic<size_t> Misses{0};
  std::atomic<size_t> Stores{0};
  std::atomic<size_t> Evictions{0};
};

} // namespace pf

#endif // PIMFLOW_PLAN_PLANCACHE_H
