//===- plan/PlanCache.cpp - Content-addressed plan cache ------------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "plan/PlanCache.h"

#include <cerrno>
#include <cstdio>
#include <sys/stat.h>
#include <sys/types.h>

#include "obs/Counters.h"
#include "support/Log.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

/// mkdir -p: creates every missing component of \p Path. Racing creators
/// are fine (EEXIST is success).
bool makeDirs(const std::string &Path) {
  std::string Prefix;
  for (const std::string &Part : split(Path, '/')) {
    Prefix += Part;
    if (!Prefix.empty() && Prefix != "." && Prefix != "..")
      if (::mkdir(Prefix.c_str(), 0755) != 0 && errno != EEXIST)
        return false;
    Prefix += '/';
  }
  return true;
}

} // namespace

PlanCache::PlanCache(std::string Dir, int MaxEntries)
    : Dir(std::move(Dir)), MaxEntries(MaxEntries) {}

std::string PlanCache::pathFor(const PlanKey &Key) const {
  return Dir + "/" + Key.digest() + ".plan";
}

std::optional<ExecutionPlan> PlanCache::load(const PlanKey &Key) {
  const std::string Path = pathFor(Key);
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    obs::addCounter("plan_cache.miss");
    return std::nullopt;
  }
  // A present-but-invalid file is a miss, never an error and never a plan:
  // the compile falls through to a fresh search and overwrites it.
  DiagnosticEngine DE;
  auto A = loadPlanArtifact(Path, DE);
  if (!A || A->Key != Key) {
    PF_LOG_INFO("plan cache: invalid cached artifact %s (%s), recomputing",
                Path.c_str(),
                !A ? "corrupt" : "stored key disagrees with digest");
    Misses.fetch_add(1, std::memory_order_relaxed);
    obs::addCounter("plan_cache.miss");
    obs::addCounter("plan_cache.invalid");
    return std::nullopt;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  obs::addCounter("plan_cache.hit");
  {
    std::lock_guard<std::mutex> Lock(Mu);
    touchLocked(Key.digest());
  }
  return std::move(A->Plan);
}

bool PlanCache::store(const PlanKey &Key, const ExecutionPlan &Plan) {
  if (!makeDirs(Dir))
    return false;
  if (!savePlanArtifact({Key, Plan}, pathFor(Key)))
    return false;
  Stores.fetch_add(1, std::memory_order_relaxed);
  obs::addCounter("plan_cache.store");
  std::lock_guard<std::mutex> Lock(Mu);
  touchLocked(Key.digest());
  evictOverCapacityLocked();
  return true;
}

void PlanCache::touchLocked(const std::string &Digest) {
  auto It = LruPos.find(Digest);
  if (It != LruPos.end())
    LruOrder.erase(It->second);
  LruOrder.push_back(Digest);
  LruPos[Digest] = std::prev(LruOrder.end());
}

void PlanCache::evictOverCapacityLocked() {
  if (MaxEntries <= 0)
    return;
  while (LruOrder.size() > static_cast<size_t>(MaxEntries)) {
    const std::string Victim = LruOrder.front();
    LruOrder.pop_front();
    LruPos.erase(Victim);
    std::remove((Dir + "/" + Victim + ".plan").c_str());
    Evictions.fetch_add(1, std::memory_order_relaxed);
    obs::addCounter("plan_cache.evict");
  }
}

ExecutionPlan
PlanCache::getOrCompute(const PlanKey &Key,
                        const std::function<ExecutionPlan()> &Compute) {
  const std::string Digest = Key.digest();
  std::shared_ptr<Entry> E;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = InFlight.find(Digest);
    if (It == InFlight.end()) {
      E = std::make_shared<Entry>();
      InFlight.emplace(Digest, E);
      Owner = true;
    } else {
      E = It->second;
    }
  }

  if (!Owner) {
    // Completed or in flight: either way this caller runs no search. The
    // result is published through the shared future, so racing same-key
    // compiles are single-flight like the profiler's memo table.
    Hits.fetch_add(1, std::memory_order_relaxed);
    obs::addCounter("plan_cache.hit");
    return *E->Result.get();
  }

  try {
    if (std::optional<ExecutionPlan> Cached = load(Key)) {
      auto P = std::make_shared<const ExecutionPlan>(std::move(*Cached));
      E->Done.set_value(P);
      return *P;
    }
    // load() counted the miss; compute and persist for the next compile.
    ExecutionPlan Fresh = Compute();
    if (!store(Key, Fresh))
      PF_LOG_INFO("plan cache: cannot write %s (caching skipped)",
                  pathFor(Key).c_str());
    auto P = std::make_shared<const ExecutionPlan>(std::move(Fresh));
    E->Done.set_value(P);
    return *P;
  } catch (...) {
    // Withdraw the slot so a later compile can retry, and propagate the
    // failure to any waiter.
    {
      std::lock_guard<std::mutex> Lock(Mu);
      InFlight.erase(Digest);
    }
    E->Done.set_exception(std::current_exception());
    throw;
  }
}
