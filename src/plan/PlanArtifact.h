//===- plan/PlanArtifact.h - Versioned on-disk execution plans --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk serialization of `search::ExecutionPlan` (docs/INTERNALS.md
/// section 12): the compile-once / replay-many half of the plan cache. An
/// artifact stores the full search result — segments, per-layer profiles,
/// the complete `SearchDecision` trail, and the DP objective — together
/// with the key that identifies what it was computed for:
///
/// ```
/// pimflow-plan v1 bytes <N> checksum <fnv64-hex>
/// graph <canonical graph hash>
/// config <SystemConfig fingerprint>
/// search <SearchOptions fingerprint>
/// fault-floor <n>
/// predicted <ns>
/// segment <mode> ratio <r> stages <s> pattern <p> ns <t> nodes <id...>
/// layer <id> gpu <t> pim <t> mddp <t> ratio <r>
/// decision <id> cand <0|1> chosen <mode> ratio <r> ns <t> gpuonly <t>
///          options <mode>:<r>:<t> ...        (one physical line)
/// end
/// ```
///
/// The first line covers everything after it: `bytes` is the exact byte
/// count of the remainder (any truncation or concatenation is detected
/// before parsing a single record) and `checksum` is the FNV-1a 64-bit
/// digest of those bytes (any bit flip below line 1 is detected; a flip
/// inside line 1 breaks the magic, the version, or the digest itself).
/// All times serialize at %.17g, so serialize → parse → re-serialize is
/// byte-identical and a replayed plan carries exactly the costs the search
/// chose.
///
/// Failure discipline: parsing never crashes and never guesses. Malformed
/// input produces `plan.corrupt` / `plan.version` diagnostics; an artifact
/// whose key disagrees with the live (graph, config, search options, fault
/// floor) produces `plan.mismatch` via validatePlanKey. Callers decide
/// whether to exit (the CLI) or fall back to a fresh search (the cache —
/// which treats any invalid cached file as a miss, never as a plan).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_PLAN_PLANARTIFACT_H
#define PIMFLOW_PLAN_PLANARTIFACT_H

#include <optional>
#include <string>

#include "runtime/SystemConfig.h"
#include "search/SearchEngine.h"
#include "support/Diagnostics.h"

namespace pf {

/// The content address of a plan: what the search result depends on. Two
/// compiles with equal keys are guaranteed (by the search's determinism
/// contract) to produce byte-identical plans, so the cache may serve either.
struct PlanKey {
  /// canonicalGraphHash of the input model graph.
  std::string GraphHash;
  /// systemConfigPlanSig of the configuration profiled against.
  std::string ConfigSig;
  /// searchOptionsPlanSig of the option set the DP chose from.
  std::string SearchSig;
  /// Recovery fault floor (--pim-floor): part of the key by contract so a
  /// floor change re-plans even though the search itself ignores it.
  int FaultFloor = 1;

  /// The content address: FNV-1a 64 over the joined fields, as 16 hex
  /// digits. Cache files are named `<digest>.plan`.
  std::string digest() const;

  bool operator==(const PlanKey &O) const {
    return GraphHash == O.GraphHash && ConfigSig == O.ConfigSig &&
           SearchSig == O.SearchSig && FaultFloor == O.FaultFloor;
  }
  bool operator!=(const PlanKey &O) const { return !(*this == O); }
};

/// FNV-1a 64-bit digest of \p Data, as 16 lower-case hex digits.
std::string fnv1a64Hex(const std::string &Data);

/// Canonical hash of \p G: the FNV-1a 64 digest of its textual
/// serialization (ir/GraphSerializer), which is deterministic and covers
/// name, values, shapes, attributes, topology, and device annotations.
std::string canonicalGraphHash(const Graph &G);

/// Fingerprint of every SystemConfig field that feeds the profiled
/// timings (channel grouping, bandwidths, PIM command options, codegen
/// options, interconnect and contention parameters). No spaces.
std::string systemConfigPlanSig(const SystemConfig &C);

/// Fingerprint of the SearchOptions fields that shape the plan. Jobs is
/// deliberately excluded: the determinism contract makes the plan
/// identical for every worker count.
std::string searchOptionsPlanSig(const SearchOptions &S);

/// Builds the key a (model, config, options, floor) tuple addresses.
PlanKey makePlanKey(const Graph &Model, const SystemConfig &Config,
                    const SearchOptions &Search, int FaultFloor);

/// A deserialized (or about-to-be-serialized) plan artifact.
struct PlanArtifact {
  PlanKey Key;
  ExecutionPlan Plan;
};

/// Renders \p A in the versioned, checksummed artifact format.
std::string serializePlanArtifact(const PlanArtifact &A);

/// Parses an artifact previously produced by serializePlanArtifact.
/// Returns std::nullopt after reporting plan.corrupt / plan.version
/// diagnostics into \p DE. Never crashes on arbitrary input.
std::optional<PlanArtifact> parsePlanArtifact(const std::string &Text,
                                              DiagnosticEngine &DE);

/// Writes serializePlanArtifact(A) to \p Path. Returns false on I/O error.
bool savePlanArtifact(const PlanArtifact &A, const std::string &Path);

/// Reads and parses an artifact file. I/O failures and parse failures
/// become diagnostics in \p DE (a missing file is plan.corrupt: the caller
/// asked to replay something that does not exist). Records the load
/// latency in the `plan.load_us` metrics histogram.
std::optional<PlanArtifact> loadPlanArtifact(const std::string &Path,
                                             DiagnosticEngine &DE);

/// The hard replay gate: compares \p Artifact against the \p Live key
/// derived from the graph/config/options actually being run. Any
/// disagreement produces one plan.mismatch diagnostic per differing field
/// (naming both sides) and returns false — the caller must not execute
/// the plan. Records the validation latency in `plan.validate_us`.
bool validatePlanKey(const PlanKey &Artifact, const PlanKey &Live,
                     DiagnosticEngine &DE);

} // namespace pf

#endif // PIMFLOW_PLAN_PLANARTIFACT_H
