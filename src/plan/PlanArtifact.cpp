//===- plan/PlanArtifact.cpp - Versioned on-disk execution plans ----------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "plan/PlanArtifact.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "ir/GraphSerializer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/StringUtil.h"

using namespace pf;

namespace {

const char *kMagic = "pimflow-plan";
const char *kVersion = "v1";

/// Full-token finite-double parser: the whole string must be a number
/// strtod accepts, and the result must be finite (profiled times are).
std::optional<double> parseDouble(const std::string &S) {
  if (S.empty())
    return std::nullopt;
  errno = 0;
  char *End = nullptr;
  const double V = std::strtod(S.c_str(), &End);
  if (End != S.c_str() + S.size() || errno == ERANGE || !std::isfinite(V))
    return std::nullopt;
  return V;
}

std::optional<SegmentMode> segmentModeFromName(const std::string &Name) {
  for (SegmentMode M : {SegmentMode::GpuNode, SegmentMode::FullPim,
                        SegmentMode::MdDp, SegmentMode::Pipeline})
    if (Name == segmentModeName(M))
      return M;
  return std::nullopt;
}

/// %.17g: the shortest printf format that round-trips every finite double
/// through strtod bit for bit, which is what makes serialize → parse →
/// re-serialize byte-identical.
std::string fmtNs(double X) { return formatStr("%.17g", X); }

/// Splits \p S into whitespace-separated tokens (no empties).
std::vector<std::string> tokens(const std::string &S) {
  std::vector<std::string> Out;
  size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && S[I] == ' ')
      ++I;
    size_t Begin = I;
    while (I < S.size() && S[I] != ' ')
      ++I;
    if (I > Begin)
      Out.push_back(S.substr(Begin, I - Begin));
  }
  return Out;
}

/// Parser state shared by the record handlers: the corrupt() helper tags
/// every finding with the physical line number (header = line 1).
struct LineParser {
  DiagnosticEngine &DE;
  size_t LineNo = 1;

  void corrupt(const std::string &Message) {
    DE.error(DiagCode::PlanCorrupt, formatStr("line %zu", LineNo), Message);
  }
};

} // namespace

std::string pf::fnv1a64Hex(const std::string &Data) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ull; // FNV prime
  }
  return formatStr("%016llx", static_cast<unsigned long long>(H));
}

std::string pf::canonicalGraphHash(const Graph &G) {
  return fnv1a64Hex(serializeGraph(G));
}

std::string pf::systemConfigPlanSig(const SystemConfig &C) {
  // Every field that feeds a profiled timing or the generated commands.
  // Compiled-in Table-1 constants that no option can change are covered by
  // the binary, not the signature.
  std::string S = formatStr(
      "tc%d/gmc%d/gbw%.9g/gclk%.9g/gf16%.9g/gsm%d/glan%d/gco%.9g",
      C.TotalChannels, C.Gpu.MemChannels, C.Gpu.ChannelBandwidthGBs,
      C.Gpu.ClockGhz, C.Gpu.Fp16Multiplier, C.Gpu.NumSms, C.Gpu.LanesPerSm,
      C.Gpu.CoherenceSlowdown);
  S += formatStr(
      "/pc%d/pb%d/pm%d/pgb%d/prl%d/pclk%.9g/pfs%.9g/ngb%d/lh%d",
      C.Pim.Channels, C.Pim.BanksPerChannel, C.Pim.MultipliersPerBank,
      C.Pim.GlobalBufferBytes, C.Pim.ResultLatchesPerBank, C.Pim.ClockGhz,
      C.Pim.FetchSupplyGBs, C.Pim.NumGlobalBuffers,
      C.Pim.GwriteLatencyHiding ? 1 : 0);
  S += formatStr(
      "/sg%d/gr%d/mo%d/xb%.9g/sy%.9g/mc%d/cf%.9g",
      C.Codegen.StridedGwrite ? 1 : 0,
      static_cast<int>(C.Codegen.MaxGranularity), C.MemoryOptimizer ? 1 : 0,
      C.CrossChannelGBs, C.SyncOverheadNs, C.ModelContention ? 1 : 0,
      C.ContentionFactor);
  return S;
}

std::string pf::searchOptionsPlanSig(const SearchOptions &S) {
  // Jobs is excluded: the plan is byte-identical for every worker count
  // (the SearchDeterminism contract), so it must not split the cache.
  return formatStr("sp%d/pl%d/fo%d/st%d/rs%.9g/rf%d/rr%.9g",
                   S.AllowSplit ? 1 : 0, S.AllowPipeline ? 1 : 0,
                   S.AllowFullOffload ? 1 : 0, S.PipelineStages, S.RatioStep,
                   S.RefineRatios ? 1 : 0, S.RefinedStep);
}

PlanKey pf::makePlanKey(const Graph &Model, const SystemConfig &Config,
                        const SearchOptions &Search, int FaultFloor) {
  PlanKey K;
  K.GraphHash = canonicalGraphHash(Model);
  K.ConfigSig = systemConfigPlanSig(Config);
  K.SearchSig = searchOptionsPlanSig(Search);
  K.FaultFloor = FaultFloor;
  return K;
}

std::string PlanKey::digest() const {
  return fnv1a64Hex(GraphHash + "|" + ConfigSig + "|" + SearchSig + "|" +
                    formatStr("%d", FaultFloor));
}

std::string pf::serializePlanArtifact(const PlanArtifact &A) {
  std::string Body;
  Body += "graph " + A.Key.GraphHash + "\n";
  Body += "config " + A.Key.ConfigSig + "\n";
  Body += "search " + A.Key.SearchSig + "\n";
  Body += formatStr("fault-floor %d\n", A.Key.FaultFloor);
  Body += "predicted " + fmtNs(A.Plan.PredictedNs) + "\n";
  for (const SegmentPlan &S : A.Plan.Segments) {
    Body += formatStr("segment %s ratio %s stages %d pattern %d ns %s nodes",
                      segmentModeName(S.Mode), fmtNs(S.RatioGpu).c_str(),
                      S.Stages, static_cast<int>(S.Pattern),
                      fmtNs(S.PredictedNs).c_str());
    for (NodeId Id : S.Nodes)
      Body += formatStr(" %d", Id);
    Body += "\n";
  }
  for (const LayerProfile &L : A.Plan.Layers)
    Body += formatStr("layer %d gpu %s pim %s mddp %s ratio %s\n", L.Id,
                      fmtNs(L.GpuNs).c_str(), fmtNs(L.PimNs).c_str(),
                      fmtNs(L.BestMdDpNs).c_str(),
                      fmtNs(L.BestRatioGpu).c_str());
  for (const SearchDecision &D : A.Plan.Decisions) {
    Body += formatStr("decision %d cand %d chosen %s ratio %s ns %s "
                      "gpuonly %s options",
                      D.Id, D.PimCandidate ? 1 : 0,
                      segmentModeName(D.ChosenMode),
                      fmtNs(D.ChosenRatioGpu).c_str(),
                      fmtNs(D.ChosenNs).c_str(), fmtNs(D.GpuOnlyNs).c_str());
    for (const CandidateOption &C : D.Candidates)
      Body += formatStr(" %s:%s:%s", segmentModeName(C.Mode),
                        fmtNs(C.RatioGpu).c_str(), fmtNs(C.Ns).c_str());
    Body += "\n";
  }
  Body += "end\n";
  return formatStr("%s %s bytes %zu checksum %s\n", kMagic, kVersion,
                   Body.size(), fnv1a64Hex(Body).c_str()) +
         Body;
}

std::optional<PlanArtifact> pf::parsePlanArtifact(const std::string &Text,
                                                  DiagnosticEngine &DE) {
  LineParser P{DE};

  const size_t HeaderEnd = Text.find('\n');
  if (HeaderEnd == std::string::npos) {
    P.corrupt("missing header line");
    return std::nullopt;
  }
  const std::vector<std::string> H = tokens(Text.substr(0, HeaderEnd));
  if (H.size() != 6 || H[0] != kMagic) {
    P.corrupt("not a pimflow-plan artifact (bad magic)");
    return std::nullopt;
  }
  if (H[1] != kVersion) {
    DE.error(DiagCode::PlanVersion, "line 1",
             formatStr("unsupported plan format version '%s' (this build "
                       "reads %s)",
                       H[1].c_str(), kVersion));
    return std::nullopt;
  }
  if (H[2] != "bytes" || H[4] != "checksum") {
    P.corrupt("malformed header (expected 'bytes <n> checksum <hex>')");
    return std::nullopt;
  }
  const std::optional<uint64_t> DeclaredBytes = parseUint(H[3]);
  if (!DeclaredBytes) {
    P.corrupt(formatStr("bad byte count '%s'", H[3].c_str()));
    return std::nullopt;
  }
  const std::string Body = Text.substr(HeaderEnd + 1);
  if (Body.size() != *DeclaredBytes) {
    P.corrupt(formatStr("truncated or padded artifact: header declares %llu "
                        "payload bytes, file carries %zu",
                        static_cast<unsigned long long>(*DeclaredBytes),
                        Body.size()));
    return std::nullopt;
  }
  if (const std::string Sum = fnv1a64Hex(Body); Sum != H[5]) {
    P.corrupt(formatStr("checksum mismatch: header declares %s, payload "
                        "hashes to %s",
                        H[5].c_str(), Sum.c_str()));
    return std::nullopt;
  }

  // The payload is authenticated; any malformation below is still reported
  // as plan.corrupt (a forged checksum is as corrupt as a flipped bit).
  PlanArtifact A;
  bool SawGraph = false, SawConfig = false, SawSearch = false,
       SawFloor = false, SawPredicted = false, SawEnd = false;
  size_t Pos = 0;
  while (Pos < Body.size()) {
    const size_t Eol = Body.find('\n', Pos);
    if (Eol == std::string::npos) {
      P.LineNo += 1;
      P.corrupt("unterminated final line");
      return std::nullopt;
    }
    const std::string Line = Body.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    P.LineNo += 1;
    if (SawEnd) {
      P.corrupt("content after 'end'");
      return std::nullopt;
    }
    const std::vector<std::string> T = tokens(Line);
    if (T.empty()) {
      P.corrupt("empty line");
      return std::nullopt;
    }
    const std::string &Kw = T[0];
    auto Need = [&](size_t N) {
      if (T.size() == N)
        return true;
      P.corrupt(formatStr("'%s' record expects %zu fields, got %zu",
                          Kw.c_str(), N - 1, T.size() - 1));
      return false;
    };
    if (Kw == "graph") {
      if (!Need(2))
        return std::nullopt;
      A.Key.GraphHash = T[1];
      SawGraph = true;
    } else if (Kw == "config") {
      if (!Need(2))
        return std::nullopt;
      A.Key.ConfigSig = T[1];
      SawConfig = true;
    } else if (Kw == "search") {
      if (!Need(2))
        return std::nullopt;
      A.Key.SearchSig = T[1];
      SawSearch = true;
    } else if (Kw == "fault-floor") {
      if (!Need(2))
        return std::nullopt;
      const std::optional<int64_t> V = parseInt(T[1]);
      if (!V || *V < 0 || *V > 1 << 20) {
        P.corrupt(formatStr("bad fault floor '%s'", T[1].c_str()));
        return std::nullopt;
      }
      A.Key.FaultFloor = static_cast<int>(*V);
      SawFloor = true;
    } else if (Kw == "predicted") {
      if (!Need(2))
        return std::nullopt;
      const std::optional<double> V = parseDouble(T[1]);
      if (!V) {
        P.corrupt(formatStr("bad predicted time '%s'", T[1].c_str()));
        return std::nullopt;
      }
      A.Plan.PredictedNs = *V;
      SawPredicted = true;
    } else if (Kw == "segment") {
      // segment <mode> ratio <r> stages <s> pattern <p> ns <t> nodes <id...>
      if (T.size() < 12 || T[2] != "ratio" || T[4] != "stages" ||
          T[6] != "pattern" || T[8] != "ns" || T[10] != "nodes") {
        P.corrupt("malformed segment record");
        return std::nullopt;
      }
      SegmentPlan S;
      const std::optional<SegmentMode> M = segmentModeFromName(T[1]);
      const std::optional<double> Ratio = parseDouble(T[3]);
      const std::optional<int64_t> Stages = parseInt(T[5]);
      const std::optional<int64_t> Pattern = parseInt(T[7]);
      const std::optional<double> Ns = parseDouble(T[9]);
      if (!M || !Ratio || !Stages || !Pattern || !Ns || *Stages < 1 ||
          *Stages > 1 << 16 || *Pattern < 0 || *Pattern > 2) {
        P.corrupt("malformed segment fields");
        return std::nullopt;
      }
      S.Mode = *M;
      S.RatioGpu = *Ratio;
      S.Stages = static_cast<int>(*Stages);
      S.Pattern = static_cast<PipelinePattern>(*Pattern);
      S.PredictedNs = *Ns;
      for (size_t I = 11; I < T.size(); ++I) {
        const std::optional<int64_t> Id = parseInt(T[I]);
        if (!Id || *Id < 0 || *Id > INT32_MAX) {
          P.corrupt(formatStr("bad node id '%s'", T[I].c_str()));
          return std::nullopt;
        }
        S.Nodes.push_back(static_cast<NodeId>(*Id));
      }
      A.Plan.Segments.push_back(std::move(S));
    } else if (Kw == "layer") {
      // layer <id> gpu <t> pim <t> mddp <t> ratio <r>
      if (T.size() != 10 || T[2] != "gpu" || T[4] != "pim" ||
          T[6] != "mddp" || T[8] != "ratio") {
        P.corrupt("malformed layer record");
        return std::nullopt;
      }
      LayerProfile L;
      const std::optional<int64_t> Id = parseInt(T[1]);
      const std::optional<double> Gpu = parseDouble(T[3]);
      const std::optional<double> Pim = parseDouble(T[5]);
      const std::optional<double> MdDp = parseDouble(T[7]);
      const std::optional<double> Ratio = parseDouble(T[9]);
      if (!Id || *Id < 0 || *Id > INT32_MAX || !Gpu || !Pim || !MdDp ||
          !Ratio) {
        P.corrupt("malformed layer fields");
        return std::nullopt;
      }
      L.Id = static_cast<NodeId>(*Id);
      L.GpuNs = *Gpu;
      L.PimNs = *Pim;
      L.BestMdDpNs = *MdDp;
      L.BestRatioGpu = *Ratio;
      A.Plan.Layers.push_back(L);
    } else if (Kw == "decision") {
      // decision <id> cand <0|1> chosen <mode> ratio <r> ns <t> gpuonly <t>
      //          options <mode>:<r>:<t> ...
      if (T.size() < 13 || T[2] != "cand" || T[4] != "chosen" ||
          T[6] != "ratio" || T[8] != "ns" || T[10] != "gpuonly" ||
          T[12] != "options") {
        P.corrupt("malformed decision record");
        return std::nullopt;
      }
      SearchDecision D;
      const std::optional<int64_t> Id = parseInt(T[1]);
      const std::optional<int64_t> Cand = parseInt(T[3]);
      const std::optional<SegmentMode> M = segmentModeFromName(T[5]);
      const std::optional<double> Ratio = parseDouble(T[7]);
      const std::optional<double> Ns = parseDouble(T[9]);
      const std::optional<double> GpuOnly = parseDouble(T[11]);
      if (!Id || *Id < 0 || *Id > INT32_MAX || !Cand ||
          (*Cand != 0 && *Cand != 1) || !M || !Ratio || !Ns || !GpuOnly) {
        P.corrupt("malformed decision fields");
        return std::nullopt;
      }
      D.Id = static_cast<NodeId>(*Id);
      D.PimCandidate = *Cand == 1;
      D.ChosenMode = *M;
      D.ChosenRatioGpu = *Ratio;
      D.ChosenNs = *Ns;
      D.GpuOnlyNs = *GpuOnly;
      for (size_t I = 13; I < T.size(); ++I) {
        const std::vector<std::string> Parts = split(T[I], ':');
        if (Parts.size() != 3) {
          P.corrupt(formatStr("malformed candidate option '%s'",
                              T[I].c_str()));
          return std::nullopt;
        }
        CandidateOption C;
        const std::optional<SegmentMode> CM = segmentModeFromName(Parts[0]);
        const std::optional<double> CR = parseDouble(Parts[1]);
        const std::optional<double> CNs = parseDouble(Parts[2]);
        if (!CM || !CR || !CNs) {
          P.corrupt(formatStr("malformed candidate option '%s'",
                              T[I].c_str()));
          return std::nullopt;
        }
        C.Mode = *CM;
        C.RatioGpu = *CR;
        C.Ns = *CNs;
        D.Candidates.push_back(C);
      }
      A.Plan.Decisions.push_back(std::move(D));
    } else if (Kw == "end") {
      if (!Need(1))
        return std::nullopt;
      SawEnd = true;
    } else {
      P.corrupt(formatStr("unknown record '%s'", Kw.c_str()));
      return std::nullopt;
    }
  }
  if (!SawEnd || !SawGraph || !SawConfig || !SawSearch || !SawFloor ||
      !SawPredicted) {
    P.corrupt("incomplete artifact (missing header records or 'end')");
    return std::nullopt;
  }
  return A;
}

bool pf::savePlanArtifact(const PlanArtifact &A, const std::string &Path) {
  const std::string Text = serializePlanArtifact(A);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  const size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  const bool Ok = std::fclose(F) == 0 && Written == Text.size();
  return Ok;
}

std::optional<PlanArtifact> pf::loadPlanArtifact(const std::string &Path,
                                                 DiagnosticEngine &DE) {
  const double StartUs = obs::Tracer::instance().nowUs();
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    DE.error(DiagCode::PlanCorrupt, Path,
             formatStr("cannot read plan artifact: %s", std::strerror(errno)));
    return std::nullopt;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  auto A = parsePlanArtifact(Text, DE);
  obs::recordMetric("plan.load_us", obs::Tracer::instance().nowUs() - StartUs);
  return A;
}

bool pf::validatePlanKey(const PlanKey &Artifact, const PlanKey &Live,
                         DiagnosticEngine &DE) {
  const double StartUs = obs::Tracer::instance().nowUs();
  auto Mismatch = [&](const char *What, const std::string &Got,
                      const std::string &Want) {
    DE.error(DiagCode::PlanMismatch, What,
             formatStr("artifact was compiled for %s, this run has %s",
                       Got.c_str(), Want.c_str()));
  };
  if (Artifact.GraphHash != Live.GraphHash)
    Mismatch("graph", Artifact.GraphHash, Live.GraphHash);
  if (Artifact.ConfigSig != Live.ConfigSig)
    Mismatch("system config", Artifact.ConfigSig, Live.ConfigSig);
  if (Artifact.SearchSig != Live.SearchSig)
    Mismatch("search options", Artifact.SearchSig, Live.SearchSig);
  if (Artifact.FaultFloor != Live.FaultFloor)
    Mismatch("fault floor", formatStr("%d", Artifact.FaultFloor),
             formatStr("%d", Live.FaultFloor));
  obs::recordMetric("plan.validate_us",
                    obs::Tracer::instance().nowUs() - StartUs);
  return Artifact == Live;
}
