//===- support/Table.cpp - ASCII table printer ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cctype>

using namespace pf;

void Table::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

/// Returns true if \p S looks like a number (possibly signed/decimal/x-suffix)
/// and should be right-aligned.
static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  size_t Digits = 0;
  for (char C : S) {
    if (std::isdigit(static_cast<unsigned char>(C)))
      ++Digits;
    else if (C != '.' && C != '-' && C != '+' && C != '%' && C != 'x' &&
             C != 'e' && C != 'E')
      return false;
  }
  return Digits > 0;
}

std::string Table::render() const {
  std::vector<size_t> Widths;
  auto Grow = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  auto RenderRow = [&Widths](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I < Widths.size(); ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      const size_t Pad = Widths[I] - Cell.size();
      if (I != 0)
        Line += "  ";
      if (looksNumeric(Cell)) {
        Line.append(Pad, ' ');
        Line += Cell;
      } else {
        Line += Cell;
        Line.append(Pad, ' ');
      }
    }
    // Trim trailing spaces for clean diffs.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line;
  };

  std::string Out;
  if (!Header.empty()) {
    Out += RenderRow(Header);
    Out += '\n';
    size_t Total = 0;
    for (size_t I = 0; I < Widths.size(); ++I)
      Total += Widths[I] + (I != 0 ? 2 : 0);
    Out.append(Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows) {
    Out += RenderRow(Row);
    Out += '\n';
  }
  return Out;
}
