//===- support/Log.cpp - Tiny leveled stderr logger -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include <atomic>
#include <cstdio>

using namespace pf;

namespace {
std::atomic<int> Level{static_cast<int>(LogLevel::Silent)};
} // namespace

void pf::setLogLevel(LogLevel L) {
  Level.store(static_cast<int>(L), std::memory_order_relaxed);
}

LogLevel pf::logLevel() {
  return static_cast<LogLevel>(Level.load(std::memory_order_relaxed));
}

bool pf::logEnabled(LogLevel L) {
  return static_cast<int>(L) <= Level.load(std::memory_order_relaxed);
}

void pf::logMessage(LogLevel L, const char *Fmt, ...) {
  if (!logEnabled(L))
    return;
  std::fputs(L == LogLevel::Debug ? "[pimflow:debug] " : "[pimflow] ",
             stderr);
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(stderr, Fmt, Args);
  va_end(Args);
  std::fputc('\n', stderr);
}
