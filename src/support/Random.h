//===- support/Random.h - Deterministic PRNG --------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic xorshift-based PRNG. Every simulator and weight
/// materializer in the repository seeds from fixed constants so that test
/// results and benchmark tables are reproducible run-to-run and
/// platform-to-platform (no dependence on libstdc++'s distribution
/// implementations).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_RANDOM_H
#define PIMFLOW_SUPPORT_RANDOM_H

#include <cstdint>

namespace pf {

/// xorshift128+ generator with splitmix64 seeding. Fast, decent quality, and
/// fully deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 to expand the seed into two non-zero state words.
    auto Next = [&Seed]() {
      Seed += 0x9E3779B97F4A7C15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
      return Z ^ (Z >> 31);
    };
    S0 = Next();
    S1 = Next();
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [Lo, Hi).
  float nextFloat(float Lo, float Hi) {
    return Lo + static_cast<float>(nextDouble()) * (Hi - Lo);
  }

  /// Uniform integer in [0, Bound). \p Bound must be non-zero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

private:
  uint64_t S0 = 0;
  uint64_t S1 = 0;
};

} // namespace pf

#endif // PIMFLOW_SUPPORT_RANDOM_H
