//===- support/Diagnostics.cpp - Structured diagnostics ---------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

#include "support/Assert.h"
#include "support/Format.h"

using namespace pf;

const char *pf::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::BadOption:
    return "cli.bad-option";
  case DiagCode::ParseHeader:
    return "parse.header";
  case DiagCode::ParseRecord:
    return "parse.record";
  case DiagCode::VerifyDanglingValue:
    return "verify.dangling-value";
  case DiagCode::VerifyUseBeforeDef:
    return "verify.use-before-def";
  case DiagCode::VerifyCycle:
    return "verify.cycle";
  case DiagCode::VerifyProducerLink:
    return "verify.producer-link";
  case DiagCode::VerifyGraphOutput:
    return "verify.graph-output";
  case DiagCode::VerifyIllegalAttrs:
    return "verify.illegal-attrs";
  case DiagCode::VerifyShapeInfer:
    return "verify.shape-infer";
  case DiagCode::VerifyStaleShape:
    return "verify.stale-shape";
  case DiagCode::VerifyBadName:
    return "verify.bad-name";
  case DiagCode::VerifyDevice:
    return "verify.device";
  case DiagCode::VerifyPieceOverlap:
    return "verify.piece-overlap";
  case DiagCode::VerifyPieceGap:
    return "verify.piece-gap";
  case DiagCode::ConfigInvalid:
    return "config.invalid";
  case DiagCode::FaultBadSpec:
    return "fault.bad-spec";
  case DiagCode::FaultDeadChannel:
    return "fault.dead-channel";
  case DiagCode::FaultStalledChannel:
    return "fault.stalled-channel";
  case DiagCode::FaultRetriesExhausted:
    return "fault.retries-exhausted";
  case DiagCode::FaultPimFloor:
    return "fault.pim-floor";
  case DiagCode::PlanCorrupt:
    return "plan.corrupt";
  case DiagCode::PlanVersion:
    return "plan.version";
  case DiagCode::PlanMismatch:
    return "plan.mismatch";
  case DiagCode::FaultUnrecovered:
    return "fault.unrecovered";
  case DiagCode::ExecNoPimChannels:
    return "exec.no-pim-channels";
  case DiagCode::ExecUnschedulable:
    return "exec.unschedulable";
  case DiagCode::AnomalyTailLatency:
    return "anomaly.tail-latency";
  case DiagCode::AnomalyIdleGap:
    return "anomaly.idle-gap";
  case DiagCode::AnomalyRetryRate:
    return "anomaly.retry-rate";
  case DiagCode::ServeBadSpec:
    return "serve.bad-spec";
  case DiagCode::ServeTimelineGap:
    return "serve.timeline-gap";
  case DiagCode::ServeInternal:
    return "serve.internal";
  case DiagCode::ChannelMisuse:
    return "runtime.channel-misuse";
  }
  pf_unreachable("unknown diagnostic code");
}

std::string Diagnostic::render() const {
  const char *Sev = Severity == DiagSeverity::Error ? "error" : "warning";
  if (Context.empty())
    return formatStr("%s[%s] %s", Sev, diagCodeName(Code), Message.c_str());
  return formatStr("%s[%s] %s: %s", Sev, diagCodeName(Code), Context.c_str(),
                   Message.c_str());
}

DiagnosticEngine::DiagnosticEngine(int MaxErrors)
    : MaxErrors(MaxErrors < 1 ? 1 : static_cast<size_t>(MaxErrors)) {}

void DiagnosticEngine::report(Diagnostic D) {
  if (D.Severity == DiagSeverity::Error)
    ++NumErrors;
  if (Diags.size() < MaxErrors)
    Diags.push_back(std::move(D));
  else
    ++NumDropped;
}

void DiagnosticEngine::error(DiagCode Code, std::string Context,
                             std::string Message) {
  report(Diagnostic{DiagSeverity::Error, Code, std::move(Context),
                    std::move(Message)});
}

void DiagnosticEngine::warning(DiagCode Code, std::string Context,
                               std::string Message) {
  report(Diagnostic{DiagSeverity::Warning, Code, std::move(Context),
                    std::move(Message)});
}

bool DiagnosticEngine::atLimit() const { return Diags.size() >= MaxErrors; }

bool DiagnosticEngine::hasCode(DiagCode Code) const {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += '\n';
  }
  if (NumDropped > 0)
    Out += formatStr("... and %zu more diagnostic(s) suppressed "
                     "(--max-errors)\n",
                     NumDropped);
  return Out;
}

void pf::fatal(const std::string &Message) {
  std::fprintf(stderr, "pimflow: fatal: %s\n", Message.c_str());
  std::abort();
}
