//===- support/Stats.h - Summary statistics ---------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / geomean / min / max helpers used when aggregating per-layer and
/// per-model results into the paper's "on average" numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_STATS_H
#define PIMFLOW_SUPPORT_STATS_H

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/Assert.h"

namespace pf {

/// Arithmetic mean of \p Values; 0 for an empty vector.
inline double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

/// Geometric mean of \p Values; all entries must be positive.
inline double geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    PF_ASSERT(V > 0.0, "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Minimum of \p Values; requires a non-empty vector.
inline double minOf(const std::vector<double> &Values) {
  PF_ASSERT(!Values.empty(), "minOf requires values");
  double M = Values.front();
  for (double V : Values)
    M = V < M ? V : M;
  return M;
}

/// Maximum of \p Values; requires a non-empty vector.
inline double maxOf(const std::vector<double> &Values) {
  PF_ASSERT(!Values.empty(), "maxOf requires values");
  double M = Values.front();
  for (double V : Values)
    M = V > M ? V : M;
  return M;
}

} // namespace pf

#endif // PIMFLOW_SUPPORT_STATS_H
