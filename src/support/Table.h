//===- support/Table.h - ASCII table printer --------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned ASCII table used by the bench binaries to print the rows
/// and series of the paper's tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_TABLE_H
#define PIMFLOW_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace pf {

/// Accumulates rows of cells and renders them with per-column alignment.
/// The first row added via setHeader() is underlined in the output.
class Table {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table; every column is padded to its widest cell. Numeric
  /// cells (heuristically detected) are right-aligned, text left-aligned.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace pf

#endif // PIMFLOW_SUPPORT_TABLE_H
