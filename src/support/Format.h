//===- support/Format.h - printf-style std::string formatting --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small printf-style formatter returning std::string, used by the bench
/// table printers and error messages. Deliberately minimal: the library has
/// no dependency on iostreams in headers.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_FORMAT_H
#define PIMFLOW_SUPPORT_FORMAT_H

#include <cstdarg>
#include <cstdio>
#include <string>

namespace pf {

/// Formats \p Fmt with printf semantics into a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Out;
}

} // namespace pf

#endif // PIMFLOW_SUPPORT_FORMAT_H
