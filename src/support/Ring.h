//===- support/Ring.h - Fixed-capacity overwrite ring -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity ring that keeps the last N pushed values, overwriting
/// the oldest on wraparound. Single-writer; callers that share a ring
/// across threads must provide their own synchronization (the flight
/// recorder wraps one per thread behind a per-ring mutex, so writers never
/// contend with each other — see obs/FlightRecorder.h).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_RING_H
#define PIMFLOW_SUPPORT_RING_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace pf {

template <typename T, size_t N> class BoundedRing {
  static_assert(N > 0, "ring capacity must be positive");

public:
  /// Appends \p V, evicting the oldest element once full.
  void push(const T &V) {
    Slots[Head % N] = V;
    ++Head;
  }

  /// Number of elements currently held (saturates at N).
  size_t size() const { return Head < N ? static_cast<size_t>(Head) : N; }
  /// Total number of pushes over the ring's lifetime, including evicted.
  uint64_t pushed() const { return Head; }
  bool empty() const { return Head == 0; }
  static constexpr size_t capacity() { return N; }

  /// Visits the retained elements oldest-first.
  template <typename Fn> void forEach(Fn &&F) const {
    const uint64_t Start = Head < N ? 0 : Head - N;
    for (uint64_t I = Start; I < Head; ++I)
      F(Slots[I % N]);
  }

  void clear() { Head = 0; }

private:
  std::array<T, N> Slots{};
  uint64_t Head = 0;
};

} // namespace pf

#endif // PIMFLOW_SUPPORT_RING_H
