//===- support/Diagnostics.h - Structured diagnostics -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-diagnostics engine used on user-reachable error paths
/// (option parsing, trace/graph file parsing, graph verification). Unlike
/// PF_ASSERT, diagnostics are *collected, not thrown*: producers report
/// coded findings with source context into a DiagnosticEngine and the
/// caller decides whether to render them, exit non-zero, or abort. Every
/// diagnostic carries a stable machine-checkable code (see DiagCode) so
/// tests can pin the exact failure class instead of matching prose.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_DIAGNOSTICS_H
#define PIMFLOW_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pf {

/// Stable diagnostic codes. Rendered as dotted slugs ("verify.use-before-def")
/// in messages; tests match on the enum.
enum class DiagCode : uint8_t {
  // Command-line / option handling.
  BadOption,            ///< cli.bad-option: malformed or out-of-range option.
  // File parsing (trace and graph readers).
  ParseHeader,          ///< parse.header: malformed file header.
  ParseRecord,          ///< parse.record: malformed record/line.
  // Graph verifier findings.
  VerifyDanglingValue,  ///< verify.dangling-value: ValueId out of range.
  VerifyUseBeforeDef,   ///< verify.use-before-def: use without a live def.
  VerifyCycle,          ///< verify.cycle: dataflow cycle.
  VerifyProducerLink,   ///< verify.producer-link: producer index inconsistent.
  VerifyGraphOutput,    ///< verify.graph-output: graph interface broken.
  VerifyIllegalAttrs,   ///< verify.illegal-attrs: op attributes out of range.
  VerifyShapeInfer,     ///< verify.shape-infer: shape inference rejects graph.
  VerifyStaleShape,     ///< verify.stale-shape: stored shape != inferred.
  VerifyBadName,        ///< verify.bad-name: name breaks serializer invariant.
  VerifyDevice,         ///< verify.device: illegal device annotation.
  VerifyPieceOverlap,   ///< verify.piece-overlap: HPieces overlap.
  VerifyPieceGap,       ///< verify.piece-gap: HPieces not contiguous from 0.
  // System-configuration validation.
  ConfigInvalid,        ///< config.invalid: SystemConfig field out of range.
  // Fault injection and recovery (pim/FaultModel, runtime/Recovery).
  FaultBadSpec,         ///< fault.bad-spec: malformed --faults entry.
  FaultDeadChannel,     ///< fault.dead-channel: PIM channel permanently lost.
  FaultStalledChannel,  ///< fault.stalled-channel: GWRITE stall hit watchdog.
  FaultRetriesExhausted,///< fault.retries-exhausted: transient fault persists.
  FaultPimFloor,        ///< fault.pim-floor: capacity below floor, GPU fallback.
  FaultUnrecovered,     ///< fault.unrecovered: persistent fault reached engine.
  // Execution-engine scheduling failures.
  ExecNoPimChannels,    ///< exec.no-pim-channels: PIM node, zero PIM channels.
  ExecUnschedulable,    ///< exec.unschedulable: cyclic or stuck dependency set.
  // Plan artifacts and the content-addressed plan cache (src/plan).
  PlanCorrupt,          ///< plan.corrupt: checksum/structure of artifact broken.
  PlanVersion,          ///< plan.version: artifact format version unsupported.
  PlanMismatch,         ///< plan.mismatch: artifact key disagrees with live run.
  // In-run anomaly watchdog (obs/Anomaly) — always warnings.
  AnomalyTailLatency,   ///< anomaly.tail-latency: p99/p50 ratio over budget.
  AnomalyIdleGap,       ///< anomaly.idle-gap: lane idle fraction over budget.
  AnomalyRetryRate,     ///< anomaly.retry-rate: retries per command over budget.
  // Serving mode (src/serve).
  ServeBadSpec,         ///< serve.bad-spec: malformed --requests entry.
  ServeTimelineGap,     ///< serve.timeline-gap: node absent from a
                        ///< partially-executed timeline (warning, not fatal).
  ServeInternal,        ///< serve.internal: serve-loop invariant violated
                        ///< (live state at drain, duration-table mismatch);
                        ///< the server degrades instead of aborting.
  // Channel arbitration (runtime/ChannelAllocator).
  ChannelMisuse,        ///< runtime.channel-misuse: released a channel that
                        ///< is outside the pool or not currently granted
                        ///< (double release).
};

/// Returns the dotted slug for \p Code ("verify.use-before-def", ...).
const char *diagCodeName(DiagCode Code);

enum class DiagSeverity : uint8_t {
  Warning,
  Error,
};

/// One collected finding.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  DiagCode Code = DiagCode::BadOption;
  /// Source context: a node/value name, an option name, or "line N".
  std::string Context;
  std::string Message;

  /// Renders as "error[verify.use-before-def] node 'x': message".
  std::string render() const;
};

/// Collects diagnostics up to a cap. Never throws and never aborts; callers
/// inspect hasErrors()/render() and choose the failure mode (the CLI exits
/// non-zero, the pass pipeline aborts via fatal(), tests assert on codes).
class DiagnosticEngine {
public:
  /// \p MaxErrors caps collection; further reports only bump the counter so
  /// a hopeless input cannot flood the terminal. Values < 1 clamp to 1.
  explicit DiagnosticEngine(int MaxErrors = 64);

  void error(DiagCode Code, std::string Context, std::string Message);
  void warning(DiagCode Code, std::string Context, std::string Message);

  bool hasErrors() const { return NumErrors > 0; }
  size_t errorCount() const { return NumErrors; }
  /// True once the collection cap has been reached.
  bool atLimit() const;

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// True if any collected diagnostic carries \p Code.
  bool hasCode(DiagCode Code) const;

  /// All collected diagnostics rendered one per line (plus a "... and N
  /// more" trailer when the cap was hit).
  std::string render() const;

private:
  void report(Diagnostic D);

  size_t MaxErrors;
  size_t NumErrors = 0;  ///< Total errors reported, including dropped ones.
  size_t NumDropped = 0; ///< Diagnostics dropped after the cap was reached.
  std::vector<Diagnostic> Diags;
};

/// Prints \p Message to stderr and aborts. The internal-invariant
/// counterpart to the collected mode: pass-boundary verification failures
/// are compiler bugs, so they stop the process with the rendered evidence.
[[noreturn]] void fatal(const std::string &Message);

} // namespace pf

#endif // PIMFLOW_SUPPORT_DIAGNOSTICS_H
