//===- support/Assert.h - Assertion and unreachable helpers ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion macros used throughout the library. We follow the LLVM
/// convention of asserting liberally with a message, and of marking
/// impossible control flow with pf_unreachable so that release builds can
/// treat it as an optimization hint.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_ASSERT_H
#define PIMFLOW_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

/// Asserts \p Cond with an explanatory message. Thin wrapper over assert()
/// so call sites read uniformly and the macro can later grow logging.
#define PF_ASSERT(Cond, Msg) assert((Cond) && (Msg))

namespace pf {

/// Marks a point in the program that cannot be reached. Prints the message
/// and aborts; in NDEBUG builds this still aborts (we never want to run past
/// broken invariants in a simulator whose output is the experiment).
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace pf

#define pf_unreachable(Msg) ::pf::unreachableImpl(Msg, __FILE__, __LINE__)

#endif // PIMFLOW_SUPPORT_ASSERT_H
