//===- support/ThreadPool.h - Fixed-size deterministic worker pool -*- C++ -*-//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free fixed-size worker pool for the compiler's embarrassingly
/// parallel phases (candidate profiling, bench sweeps). Design goals, in
/// order:
///
///   1. Determinism by construction: parallelFor(N, Body) assigns every index
///      to exactly one invocation of Body, so any computation whose per-index
///      results are independent produces identical output for every worker
///      count. The search relies on this (see docs/INTERNALS.md section 7).
///   2. Serial reproducibility: a pool of size 1 spawns no threads at all —
///      submit() and parallelFor() run inline on the caller, reproducing the
///      single-threaded path exactly.
///   3. Nesting safety: parallelFor() called from inside a worker task runs
///      inline (no re-entry into the queue, no deadlock), and submit() from a
///      worker only enqueues. The one unsupported pattern is a *task* that
///      blocks on another task's future; wait on futures from outside the
///      pool instead.
///
/// Exceptions propagate: submit()'s future rethrows on get(), and
/// parallelFor() runs every index, then rethrows the exception of the
/// lowest failing index (again independent of the worker count).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_THREADPOOL_H
#define PIMFLOW_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pf {

class ThreadPool {
public:
  /// \p Workers worker threads; 0 means defaultConcurrency(), 1 means a
  /// serial pool that spawns no threads and runs everything inline.
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// The worker count (1 for a serial/inline pool).
  unsigned size() const { return NumWorkers; }

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned defaultConcurrency();

  /// Schedules \p F; the future carries its result or exception. On a
  /// serial pool \p F runs inline before this returns.
  template <class Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto Task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Fut = Task->get_future();
    if (NumWorkers <= 1)
      (*Task)();
    else
      enqueue([Task] { (*Task)(); });
    return Fut;
  }

  /// Invokes Body(0) .. Body(N-1), each exactly once, and blocks until all
  /// have completed. The calling thread participates, so the pool's queue
  /// drains even when every worker is busy here. Every index runs even if
  /// an earlier one threw; afterwards the exception of the lowest failing
  /// index is rethrown. Runs inline when the pool is serial or when called
  /// from inside one of this pool's own tasks.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

private:
  void enqueue(std::function<void()> Task);
  void workerLoop();
  bool onWorkerThread() const;

  unsigned NumWorkers;
  std::vector<std::thread> Threads;
  std::deque<std::function<void()>> Queue;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Stop = false;
};

} // namespace pf

#endif // PIMFLOW_SUPPORT_THREADPOOL_H
