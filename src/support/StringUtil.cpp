//===- support/StringUtil.cpp - String helpers ------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cctype>
#include <charconv>

using namespace pf;

std::vector<std::string> pf::split(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string pf::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string pf::trim(const std::string &S) {
  size_t Begin = 0;
  size_t End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

bool pf::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool pf::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::optional<int64_t> pf::parseInt(const std::string &S) {
  const char *Begin = S.c_str();
  const char *End = Begin + S.size();
  // std::from_chars accepts '-' but not '+'; allow an explicit plus sign.
  if (Begin != End && *Begin == '+') {
    ++Begin;
    if (Begin != End && *Begin == '-')
      return std::nullopt;
  }
  int64_t Out = 0;
  auto [Ptr, Ec] = std::from_chars(Begin, End, Out, 10);
  if (Ec != std::errc() || Ptr != End || Begin == End)
    return std::nullopt;
  return Out;
}

std::optional<uint64_t> pf::parseUint(const std::string &S) {
  const char *Begin = S.c_str();
  const char *End = Begin + S.size();
  uint64_t Out = 0;
  auto [Ptr, Ec] = std::from_chars(Begin, End, Out, 10);
  if (Ec != std::errc() || Ptr != End || Begin == End)
    return std::nullopt;
  return Out;
}
