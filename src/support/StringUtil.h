//===- support/StringUtil.h - String helpers --------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities (split / join / trim / prefix tests) shared by the
/// graph printer, the profile cache, and the bench command-line handling.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_STRINGUTIL_H
#define PIMFLOW_SUPPORT_STRINGUTIL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pf {

/// Splits \p S on \p Sep; empty fields are kept.
std::vector<std::string> split(const std::string &S, char Sep);

/// Joins \p Parts with \p Sep between elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string &S);

/// Returns true if \p S begins with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

/// Strict decimal integer parser: the *entire* string must be an optionally
/// signed decimal number that fits in int64_t. Returns std::nullopt for
/// empty strings, junk prefixes/suffixes ("12x", " 3"), and overflow —
/// unlike std::atoi, which silently returns 0 or truncates.
std::optional<int64_t> parseInt(const std::string &S);

/// Unsigned variant of parseInt: the entire string must be an unsigned
/// decimal number that fits in uint64_t (no sign characters accepted).
std::optional<uint64_t> parseUint(const std::string &S);

} // namespace pf

#endif // PIMFLOW_SUPPORT_STRINGUTIL_H
