//===- support/StringUtil.h - String helpers --------------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities (split / join / trim / prefix tests) shared by the
/// graph printer, the profile cache, and the bench command-line handling.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_STRINGUTIL_H
#define PIMFLOW_SUPPORT_STRINGUTIL_H

#include <string>
#include <vector>

namespace pf {

/// Splits \p S on \p Sep; empty fields are kept.
std::vector<std::string> split(const std::string &S, char Sep);

/// Joins \p Parts with \p Sep between elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string &S);

/// Returns true if \p S begins with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

} // namespace pf

#endif // PIMFLOW_SUPPORT_STRINGUTIL_H
