//===- support/Log.h - Tiny leveled stderr logger ---------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal leveled logger for the driver and library: silent by default,
/// `-v` raises it to Info, `-vv` to Debug. Messages go to stderr so they
/// never corrupt machine-readable stdout (tables, traces). The PF_LOG_*
/// macros evaluate their arguments only when the level is enabled.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SUPPORT_LOG_H
#define PIMFLOW_SUPPORT_LOG_H

#include <cstdarg>

namespace pf {

enum class LogLevel : int {
  Silent = 0,
  Info = 1,
  Debug = 2,
};

/// Sets the global log threshold (messages at or below it are emitted).
void setLogLevel(LogLevel L);
LogLevel logLevel();
bool logEnabled(LogLevel L);

/// Emits one printf-formatted line at \p L (a newline is appended).
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logMessage(LogLevel L, const char *Fmt, ...);

} // namespace pf

#define PF_LOG_INFO(...)                                                     \
  do {                                                                       \
    if (::pf::logEnabled(::pf::LogLevel::Info))                              \
      ::pf::logMessage(::pf::LogLevel::Info, __VA_ARGS__);                   \
  } while (false)

#define PF_LOG_DEBUG(...)                                                    \
  do {                                                                       \
    if (::pf::logEnabled(::pf::LogLevel::Debug))                             \
      ::pf::logMessage(::pf::LogLevel::Debug, __VA_ARGS__);                  \
  } while (false)

#endif // PIMFLOW_SUPPORT_LOG_H
