//===- support/ThreadPool.cpp - Fixed-size deterministic worker pool ------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace pf;

namespace {

/// The pool whose workerLoop owns the current thread (nullptr on external
/// threads). Lets parallelFor detect nesting and degrade to inline
/// execution instead of deadlocking on its own queue.
thread_local const ThreadPool *CurrentPool = nullptr;

} // namespace

unsigned ThreadPool::defaultConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Workers)
    : NumWorkers(Workers == 0 ? defaultConcurrency() : Workers) {
  if (NumWorkers <= 1)
    return; // Serial pool: everything runs inline on the caller.
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  Cv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

bool ThreadPool::onWorkerThread() const { return CurrentPool == this; }

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
  }
  Cv.notify_one();
}

void ThreadPool::workerLoop() {
  CurrentPool = this;
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty())
        return; // Stop requested and nothing left to drain.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (NumWorkers <= 1 || N == 1 || onWorkerThread()) {
    // Inline path. Still runs every index and rethrows the lowest failing
    // one, so failure behavior is identical to the threaded path.
    std::exception_ptr Err;
    for (size_t I = 0; I < N; ++I) {
      try {
        Body(I);
      } catch (...) {
        if (!Err)
          Err = std::current_exception();
      }
    }
    if (Err)
      std::rethrow_exception(Err);
    return;
  }

  // Shared claim counter: each index is claimed by exactly one runner.
  // Every index runs regardless of failures elsewhere; the lowest failing
  // index's exception wins, so the outcome is worker-count independent.
  struct State {
    std::atomic<size_t> Next{0};
    std::mutex ErrMu;
    size_t ErrIndex;
    std::exception_ptr Err;
  };
  State St;
  St.ErrIndex = N;
  auto Run = [&St, &Body, N] {
    for (size_t I; (I = St.Next.fetch_add(1, std::memory_order_relaxed)) < N;) {
      try {
        Body(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(St.ErrMu);
        if (I < St.ErrIndex) {
          St.ErrIndex = I;
          St.Err = std::current_exception();
        }
      }
    }
  };

  const size_t Runners = std::min<size_t>(NumWorkers, N) - 1;
  std::vector<std::future<void>> Futs;
  Futs.reserve(Runners);
  for (size_t I = 0; I < Runners; ++I)
    Futs.push_back(submit(Run));
  Run(); // The caller is the last runner; keeps the queue draining.
  for (std::future<void> &F : Futs)
    F.get();
  if (St.Err)
    std::rethrow_exception(St.Err);
}
