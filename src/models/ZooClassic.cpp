//===- models/ZooClassic.cpp - VGG-16 and ResNet-50 -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "models/Zoo.h"

#include "ir/Builder.h"

using namespace pf;

Graph pf::buildVgg16() {
  GraphBuilder B("vgg-16");
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});

  auto ConvBlock = [&B](ValueId In, int64_t Cout, int Repeats) {
    ValueId V = In;
    for (int I = 0; I < Repeats; ++I)
      V = B.relu(B.conv2d(V, Cout, /*Kernel=*/3, /*Stride=*/1, /*Pad=*/1,
                          /*Groups=*/1, /*WithBias=*/true));
    return B.maxPool(V, 2, 2);
  };

  X = ConvBlock(X, 64, 2);
  X = ConvBlock(X, 128, 2);
  X = ConvBlock(X, 256, 3);
  X = ConvBlock(X, 512, 3);
  X = ConvBlock(X, 512, 3);

  X = B.flatten(X); // [1, 7*7*512]
  X = B.relu(B.gemm(X, 4096));
  X = B.relu(B.gemm(X, 4096));
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}

Graph pf::buildResNet50() {
  GraphBuilder B("resnet-50");
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});

  X = B.relu(B.conv2d(X, 64, /*Kernel=*/7, /*Stride=*/2, /*Pad=*/3));
  X = B.maxPool(X, 3, 2, /*Pad=*/1);

  // A bottleneck block: 1x1 reduce -> 3x3 -> 1x1 expand, with a projection
  // shortcut whenever the shape changes.
  auto Bottleneck = [&B](ValueId In, int64_t Mid, int64_t Out,
                         int64_t Stride) {
    ValueId Shortcut = In;
    const int64_t Cin = B.graph().value(In).Shape.dim(3);
    if (Stride != 1 || Cin != Out)
      Shortcut = B.conv2d(In, Out, 1, Stride, 0);
    ValueId V = B.relu(B.conv2d(In, Mid, 1, 1, 0));
    V = B.relu(B.conv2d(V, Mid, 3, Stride, 1));
    V = B.conv2d(V, Out, 1, 1, 0);
    return B.relu(B.add(V, Shortcut));
  };

  auto Stage = [&Bottleneck](ValueId In, int64_t Mid, int64_t Out,
                             int Blocks, int64_t FirstStride) {
    ValueId V = Bottleneck(In, Mid, Out, FirstStride);
    for (int I = 1; I < Blocks; ++I)
      V = Bottleneck(V, Mid, Out, 1);
    return V;
  };

  X = Stage(X, 64, 256, 3, 1);
  X = Stage(X, 128, 512, 4, 2);
  X = Stage(X, 256, 1024, 6, 2);
  X = Stage(X, 512, 2048, 3, 2);

  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}
