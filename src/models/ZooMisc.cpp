//===- models/ZooMisc.cpp - BERT encoder, Toy net, registry -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "models/Zoo.h"
#include "support/Format.h"

using namespace pf;

Graph pf::buildBertEncoder(int64_t SeqLen, int NumLayers) {
  PF_ASSERT(SeqLen >= 1, "sequence length must be positive");
  const int64_t Hidden = 768;
  const int64_t Ffn = 3072;

  GraphBuilder B(formatStr("bert-seq%lld", static_cast<long long>(SeqLen)));
  ValueId X = B.input("tokens", TensorShape{SeqLen, Hidden});

  for (int L = 0; L < NumLayers; ++L) {
    // Self-attention: Q/K/V projections (the PIM-candidate FC layers),
    // scores = softmax(Q x K^T), context = scores x V. The weight-less
    // matmuls are tiny at the evaluated sequence lengths; the paper treats
    // BERT as FC-dominated.
    ValueId Q = B.gemm(X, Hidden);
    ValueId K = B.gemm(X, Hidden);
    ValueId V = B.gemm(X, Hidden);
    ValueId Scores = B.softmax(B.matmul(Q, K, /*TransposeB=*/true));
    ValueId Context = B.matmul(Scores, V);
    ValueId AttnOut = B.gemm(Context, Hidden);
    X = B.layerNorm(B.add(X, AttnOut));

    // Feed-forward network.
    ValueId F = B.gelu(B.gemm(X, Ffn));
    F = B.gemm(F, Hidden);
    X = B.layerNorm(B.add(X, F));
  }
  B.output(X);
  return B.take();
}

Graph pf::buildToy() {
  GraphBuilder B("toy");
  ValueId X = B.input("image", TensorShape{1, 32, 32, 3});
  X = B.relu(B.conv2d(X, 16, 3, 1, 1));
  X = B.conv2d(X, 32, 1, 1, 0);          // pointwise (PIM candidate)
  X = B.relu6(B.dwConv(X, 3, 1, 1));     // depthwise (GPU only)
  X = B.conv2d(X, 64, 1, 1, 0);          // pointwise (PIM candidate)
  X = B.relu(X);
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 10);
  B.output(X);
  return B.take();
}

std::vector<std::string> pf::modelNames() {
  return {"efficientnet-v1-b0", "mobilenet-v2", "mnasnet-1.0", "resnet-50",
          "vgg-16"};
}

std::vector<std::string> pf::extraModelNames() {
  return {"alexnet", "squeezenet-1.1", "resnet-18", "resnet-34",
          "densenet-121"};
}

std::optional<Graph> pf::tryBuildModel(const std::string &Name) {
  std::vector<std::string> Known = modelNames();
  for (const std::string &Extra : extraModelNames())
    Known.push_back(Extra);
  for (int V = 0; V <= 6; ++V)
    Known.push_back(formatStr("efficientnet-v1-b%d", V));
  Known.push_back("bert");
  Known.push_back("toy");
  for (const std::string &K : Known)
    if (K == Name)
      return buildModel(Name);
  return std::nullopt;
}

Graph pf::buildModel(const std::string &Name) {
  if (Name == "efficientnet-v1-b0")
    return buildEfficientNet(0);
  for (int V = 0; V <= 6; ++V)
    if (Name == formatStr("efficientnet-v1-b%d", V))
      return buildEfficientNet(V);
  if (Name == "mobilenet-v2")
    return buildMobileNetV2();
  if (Name == "mnasnet-1.0")
    return buildMnasNet();
  if (Name == "resnet-50")
    return buildResNet50();
  if (Name == "vgg-16")
    return buildVgg16();
  if (Name == "alexnet")
    return buildAlexNet();
  if (Name == "squeezenet-1.1")
    return buildSqueezeNet();
  if (Name == "resnet-18")
    return buildResNet18();
  if (Name == "resnet-34")
    return buildResNet34();
  if (Name == "densenet-121")
    return buildDenseNet121();
  if (Name == "bert")
    return buildBertEncoder(64);
  if (Name == "toy")
    return buildToy();
  pf_unreachable("unknown model name");
}
