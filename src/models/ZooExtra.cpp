//===- models/ZooExtra.cpp - Additional CNNs (artifact A.7) -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact's "Experiment Customization" point: "The main execution
/// script can take as input other CNN/DNN models that were not evaluated
/// in the paper and optimize them with PIMFlow." These are Torchvision
/// models beyond the evaluated five: AlexNet, SqueezeNet 1.1 (1x1-heavy
/// fire modules), ResNet-18/34 (basic blocks), and DenseNet-121
/// (concat-heavy dense blocks).
///
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "models/Zoo.h"
#include "support/Format.h"

using namespace pf;

Graph pf::buildAlexNet() {
  GraphBuilder B("alexnet");
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});
  X = B.relu(B.conv2d(X, 64, 11, 4, 2, 1, /*WithBias=*/true));
  X = B.maxPool(X, 3, 2);
  X = B.relu(B.conv2d(X, 192, 5, 1, 2, 1, true));
  X = B.maxPool(X, 3, 2);
  X = B.relu(B.conv2d(X, 384, 3, 1, 1, 1, true));
  X = B.relu(B.conv2d(X, 256, 3, 1, 1, 1, true));
  X = B.relu(B.conv2d(X, 256, 3, 1, 1, 1, true));
  X = B.maxPool(X, 3, 2);
  X = B.flatten(X);
  X = B.relu(B.gemm(X, 4096));
  X = B.relu(B.gemm(X, 4096));
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}

Graph pf::buildSqueezeNet() {
  GraphBuilder B("squeezenet-1.1");
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});
  X = B.relu(B.conv2d(X, 64, 3, 2, 0, 1, /*WithBias=*/true));
  X = B.maxPool(X, 3, 2);

  // Fire module: 1x1 squeeze, then parallel 1x1 and 3x3 expands whose
  // outputs concatenate along channels — inherently 1x1-dominated and,
  // unusually for a CNN, with real inter-node parallelism.
  auto Fire = [&B](ValueId In, int64_t Squeeze, int64_t Expand) {
    ValueId S = B.relu(B.conv2d(In, Squeeze, 1, 1, 0, 1, true));
    ValueId E1 = B.relu(B.conv2d(S, Expand, 1, 1, 0, 1, true));
    ValueId E3 = B.relu(B.conv2d(S, Expand, 3, 1, 1, 1, true));
    return B.concat({E1, E3}, /*Axis=*/3);
  };

  X = Fire(X, 16, 64);
  X = Fire(X, 16, 64);
  X = B.maxPool(X, 3, 2);
  X = Fire(X, 32, 128);
  X = Fire(X, 32, 128);
  X = B.maxPool(X, 3, 2);
  X = Fire(X, 48, 192);
  X = Fire(X, 48, 192);
  X = Fire(X, 64, 256);
  X = Fire(X, 64, 256);
  X = B.relu(B.conv2d(X, 1000, 1, 1, 0, 1, true)); // Classifier conv.
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  B.output(X);
  return B.take();
}

namespace {

/// ResNet v1 with two-conv basic blocks (ResNet-18/34).
Graph buildBasicResNet(const char *Name, const int (&Blocks)[4]) {
  GraphBuilder B(Name);
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});
  X = B.relu(B.conv2d(X, 64, 7, 2, 3));
  X = B.maxPool(X, 3, 2, 1);

  auto Basic = [&B](ValueId In, int64_t Out, int64_t Stride) {
    ValueId Shortcut = In;
    const int64_t Cin = B.graph().value(In).Shape.dim(3);
    if (Stride != 1 || Cin != Out)
      Shortcut = B.conv2d(In, Out, 1, Stride, 0);
    ValueId V = B.relu(B.conv2d(In, Out, 3, Stride, 1));
    V = B.conv2d(V, Out, 3, 1, 1);
    return B.relu(B.add(V, Shortcut));
  };

  const int64_t Channels[4] = {64, 128, 256, 512};
  for (int Stage = 0; Stage < 4; ++Stage)
    for (int I = 0; I < Blocks[Stage]; ++I)
      X = Basic(X, Channels[Stage],
                I == 0 && Stage > 0 ? 2 : 1);

  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}

} // namespace

Graph pf::buildResNet18() {
  return buildBasicResNet("resnet-18", {2, 2, 2, 2});
}

Graph pf::buildResNet34() {
  return buildBasicResNet("resnet-34", {3, 4, 6, 3});
}

Graph pf::buildDenseNet121() {
  GraphBuilder B("densenet-121");
  const int64_t Growth = 32;
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});
  X = B.relu(B.conv2d(X, 64, 7, 2, 3));
  X = B.maxPool(X, 3, 2, 1);

  // Dense layer: BN-folded 1x1 bottleneck (4k) then 3x3 producing k new
  // feature maps, concatenated onto the running feature stack.
  auto DenseLayer = [&B, Growth](ValueId In) {
    ValueId V = B.relu(B.conv2d(In, 4 * Growth, 1, 1, 0));
    V = B.conv2d(V, Growth, 3, 1, 1);
    return B.concat({In, V}, /*Axis=*/3);
  };
  auto Transition = [&B](ValueId In) {
    const int64_t C = B.graph().value(In).Shape.dim(3);
    ValueId V = B.relu(B.conv2d(In, C / 2, 1, 1, 0));
    return B.avgPool(V, 2, 2);
  };

  const int BlockLayers[4] = {6, 12, 24, 16};
  for (int Block = 0; Block < 4; ++Block) {
    for (int L = 0; L < BlockLayers[Block]; ++L)
      X = DenseLayer(X);
    if (Block != 3)
      X = Transition(X);
  }
  X = B.relu(X);
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}
