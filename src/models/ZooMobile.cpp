//===- models/ZooMobile.cpp - MobileNetV2 / MnasNet / EfficientNet -------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The depthwise-separable mobile CNNs whose abundant pointwise (1x1)
/// convolutions make them the paper's prime PIMFlow targets.
///
//===----------------------------------------------------------------------===//

#include <cmath>

#include "ir/Builder.h"
#include "models/Zoo.h"
#include "support/Format.h"

using namespace pf;

namespace {

/// Rounds \p Channels * \p Mult to the nearest multiple of 8, never going
/// below 90% of the unrounded value (the EfficientNet/MobileNet rule).
int64_t scaleChannels(int64_t Channels, double Mult) {
  const double Scaled = static_cast<double>(Channels) * Mult;
  int64_t Rounded =
      static_cast<int64_t>(std::floor(Scaled / 8.0 + 0.5)) * 8;
  if (Rounded < 8)
    Rounded = 8;
  if (static_cast<double>(Rounded) < 0.9 * Scaled)
    Rounded += 8;
  return Rounded;
}

/// Rounds repeat counts up under a depth multiplier.
int scaleRepeats(int Repeats, double Mult) {
  return static_cast<int>(std::ceil(Mult * Repeats));
}

} // namespace

Graph pf::buildMobileNetV2(double WidthMult) {
  PF_ASSERT(WidthMult > 0.0, "width multiplier must be positive");
  GraphBuilder B(WidthMult == 1.0
                     ? std::string("mobilenet-v2")
                     : formatStr("mobilenet-v2-w%.2f", WidthMult));
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});

  X = B.relu6(B.conv2d(X, scaleChannels(32, WidthMult), 3, 2, 1));

  // Inverted residual: 1x1 expand -> depthwise 3x3 -> 1x1 project (linear),
  // with a residual when the block keeps shape.
  auto InvRes = [&B](ValueId In, int64_t Expand, int64_t Cout,
                     int64_t Stride) {
    const int64_t Cin = B.graph().value(In).Shape.dim(3);
    ValueId V = In;
    if (Expand != 1)
      V = B.relu6(B.conv2d(V, Cin * Expand, 1, 1, 0));
    V = B.relu6(B.dwConv(V, 3, Stride, 1));
    V = B.conv2d(V, Cout, 1, 1, 0);
    if (Stride == 1 && Cin == Cout)
      V = B.add(V, In);
    return V;
  };

  struct BlockSpec {
    int64_t Expand;
    int64_t Cout;
    int Repeats;
    int64_t Stride;
  };
  const BlockSpec Specs[] = {
      {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},  {6, 64, 4, 2},
      {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
  };
  for (const BlockSpec &S : Specs)
    for (int I = 0; I < S.Repeats; ++I)
      X = InvRes(X, S.Expand, scaleChannels(S.Cout, WidthMult),
                 I == 0 ? S.Stride : 1);

  X = B.relu6(B.conv2d(X, scaleChannels(1280, WidthMult), 1, 1, 0));
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}

Graph pf::buildMnasNet(double WidthMult) {
  PF_ASSERT(WidthMult > 0.0, "width multiplier must be positive");
  GraphBuilder B(WidthMult == 1.0
                     ? std::string("mnasnet-1.0")
                     : formatStr("mnasnet-w%.2f", WidthMult));
  ValueId X = B.input("image", TensorShape{1, 224, 224, 3});

  X = B.relu(B.conv2d(X, scaleChannels(32, WidthMult), 3, 2, 1));
  // SepConv head: depthwise 3x3 + pointwise to 16.
  X = B.relu(B.dwConv(X, 3, 1, 1));
  X = B.conv2d(X, scaleChannels(16, WidthMult), 1, 1, 0);

  auto MbConv = [&B](ValueId In, int64_t Expand, int64_t Kernel,
                     int64_t Cout, int64_t Stride) {
    const int64_t Cin = B.graph().value(In).Shape.dim(3);
    ValueId V = B.relu(B.conv2d(In, Cin * Expand, 1, 1, 0));
    V = B.relu(B.dwConv(V, Kernel, Stride, Kernel / 2));
    V = B.conv2d(V, Cout, 1, 1, 0);
    if (Stride == 1 && Cin == Cout)
      V = B.add(V, In);
    return V;
  };

  struct BlockSpec {
    int64_t Expand;
    int64_t Kernel;
    int64_t Cout;
    int Repeats;
    int64_t Stride;
  };
  const BlockSpec Specs[] = {
      {3, 3, 24, 3, 2},  {3, 5, 40, 3, 2},  {6, 5, 80, 3, 2},
      {6, 3, 96, 2, 1},  {6, 5, 192, 4, 2}, {6, 3, 320, 1, 1},
  };
  for (const BlockSpec &S : Specs)
    for (int I = 0; I < S.Repeats; ++I)
      X = MbConv(X, S.Expand, S.Kernel, scaleChannels(S.Cout, WidthMult),
                 I == 0 ? S.Stride : 1);

  X = B.relu(B.conv2d(X, scaleChannels(1280, WidthMult), 1, 1, 0));
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}

Graph pf::buildEfficientNet(int Variant) {
  PF_ASSERT(Variant >= 0 && Variant <= 6, "EfficientNet variant out of range");
  // Published compound-scaling coefficients (width, depth, resolution).
  const double WidthMult[] = {1.0, 1.0, 1.1, 1.2, 1.4, 1.6, 1.8};
  const double DepthMult[] = {1.0, 1.1, 1.2, 1.4, 1.8, 2.2, 2.6};
  const int64_t Resolution[] = {224, 240, 260, 300, 380, 456, 528};
  const double W = WidthMult[Variant];
  const double D = DepthMult[Variant];
  const int64_t R = Resolution[Variant];

  GraphBuilder B(formatStr("efficientnet-v1-b%d", Variant));
  ValueId X = B.input("image", TensorShape{1, R, R, 3});

  X = B.silu(B.conv2d(X, scaleChannels(32, W), 3, 2, 1));

  // Squeeze-and-excitation on an NHWC tensor: global pool -> 1x1 reduce ->
  // SiLU -> 1x1 expand -> sigmoid -> channel-broadcast multiply.
  auto SqueezeExcite = [&B](ValueId In, int64_t SeChannels) {
    const int64_t C = B.graph().value(In).Shape.dim(3);
    ValueId S = B.globalAvgPool(In);
    S = B.silu(B.conv2d(S, SeChannels, 1, 1, 0, 1, /*WithBias=*/true));
    S = B.sigmoid(B.conv2d(S, C, 1, 1, 0, 1, /*WithBias=*/true));
    return B.mul(In, S);
  };

  auto MbConv = [&B, &SqueezeExcite](ValueId In, int64_t Expand,
                                     int64_t Kernel, int64_t Cout,
                                     int64_t Stride, int64_t SeChannels) {
    const int64_t Cin = B.graph().value(In).Shape.dim(3);
    ValueId V = In;
    if (Expand != 1)
      V = B.silu(B.conv2d(V, Cin * Expand, 1, 1, 0));
    V = B.silu(B.dwConv(V, Kernel, Stride, Kernel / 2));
    V = SqueezeExcite(V, SeChannels);
    V = B.conv2d(V, Cout, 1, 1, 0);
    if (Stride == 1 && Cin == Cout)
      V = B.add(V, In);
    return V;
  };

  struct BlockSpec {
    int64_t Expand;
    int64_t Kernel;
    int64_t Cout;
    int Repeats;
    int64_t Stride;
  };
  // B0 base configuration; SE ratio is 0.25 of the block input channels.
  const BlockSpec Specs[] = {
      {1, 3, 16, 1, 1},  {6, 3, 24, 2, 2},  {6, 5, 40, 2, 2},
      {6, 3, 80, 3, 2},  {6, 5, 112, 3, 1}, {6, 5, 192, 4, 2},
      {6, 3, 320, 1, 1},
  };
  for (const BlockSpec &S : Specs) {
    const int64_t Cout = scaleChannels(S.Cout, W);
    const int Repeats = scaleRepeats(S.Repeats, D);
    for (int I = 0; I < Repeats; ++I) {
      const int64_t Cin = B.graph().value(X).Shape.dim(3);
      int64_t Se = Cin / 4;
      if (Se < 1)
        Se = 1;
      X = MbConv(X, S.Expand, S.Kernel, Cout, I == 0 ? S.Stride : 1, Se);
    }
  }

  X = B.silu(B.conv2d(X, scaleChannels(1280, W), 1, 1, 0));
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 1000);
  B.output(X);
  return B.take();
}
