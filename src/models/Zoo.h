//===- models/Zoo.h - Evaluated model architectures -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors for the networks evaluated in the paper: EfficientNet-B0
/// (and scaled B1..B6 for the Fig. 16 sensitivity study), MobileNetV2,
/// MnasNet-1.0, ResNet-50, VGG-16, a BERT-base encoder stack (Fig. 16), and
/// the artifact's Toy network. All CNNs take a single-batch 224x224x3 NHWC
/// image unless the variant dictates a different resolution; batch norm is
/// folded into the convolutions, matching inference-time ONNX exports.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_MODELS_ZOO_H
#define PIMFLOW_MODELS_ZOO_H

#include <optional>
#include <string>
#include <vector>

#include "ir/Graph.h"

namespace pf {

/// VGG-16 with two 4096-wide FC layers and a 1000-way classifier.
Graph buildVgg16();

/// ResNet-50 v1 with bottleneck blocks.
Graph buildResNet50();

/// MobileNetV2 with inverted residual blocks; \p WidthMult scales every
/// channel count (Fig. 16's scaled-up variants).
Graph buildMobileNetV2(double WidthMult = 1.0);

/// MnasNet-B1; \p WidthMult scales every channel count.
Graph buildMnasNet(double WidthMult = 1.0);

/// EfficientNet-B\p Variant with squeeze-and-excitation blocks; Variant in
/// [0, 6] applies the published width/depth/resolution scaling.
Graph buildEfficientNet(int Variant = 0);

/// BERT-base encoder stack (12 layers, hidden 768, FFN 3072) for a batch-1
/// sequence of length \p SeqLen. FC-dominated; used by Fig. 16.
Graph buildBertEncoder(int64_t SeqLen, int NumLayers = 12);

/// The artifact's Toy network: a short 1x1 / depthwise chain used by the
/// quickstart.
Graph buildToy();

//===----------------------------------------------------------------------===
// Models beyond the paper's evaluated five (artifact A.7: "other CNN/DNN
// models ... optimized with PIMFlow").
//===----------------------------------------------------------------------===

/// AlexNet (FC-heavy classic).
Graph buildAlexNet();
/// SqueezeNet 1.1: 1x1-dominated fire modules with real branch parallelism.
Graph buildSqueezeNet();
/// ResNet-18 (basic blocks).
Graph buildResNet18();
/// ResNet-34 (basic blocks).
Graph buildResNet34();
/// DenseNet-121: concat-heavy dense blocks.
Graph buildDenseNet121();

/// Names of the additional models accepted by buildModel().
std::vector<std::string> extraModelNames();

/// Names accepted by buildModel(), in the paper's order.
std::vector<std::string> modelNames();

/// Builds a model by artifact name: "efficientnet-v1-b0" .. "-b6",
/// "mobilenet-v2", "mnasnet-1.0", "resnet-50", "vgg-16", "bert", "toy",
/// or any extraModelNames() entry. Aborts on unknown names.
Graph buildModel(const std::string &Name);

/// Like buildModel but returns std::nullopt for unknown names (for tools
/// taking user input).
std::optional<Graph> tryBuildModel(const std::string &Name);

} // namespace pf

#endif // PIMFLOW_MODELS_ZOO_H
