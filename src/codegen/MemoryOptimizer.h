//===- codegen/MemoryOptimizer.h - Layout optimization ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-layout optimization of Section 4.3.2. MD-DP splitting and
/// pipelining insert Slice / Pad / Concat operators whose data copies would
/// otherwise eat the parallelization gains. With NHWC layout and batch-1
/// inference:
///
///  * slicing along the input height (H) axis of contiguously allocated
///    tensors is a no-op (the slice is a sub-range of the buffer);
///  * concatenating along H into a pre-allocated output is a no-op
///    (producers write directly at their offsets);
///  * Pad folds away by allocating the padded extent up front, zero-filled,
///    and writing payload data at the padding offset.
///
/// The optimizer classifies every data-movement node of a transformed graph
/// as free or as a real copy; the execution engine prices copies at memory
/// bandwidth.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_CODEGEN_MEMORYOPTIMIZER_H
#define PIMFLOW_CODEGEN_MEMORYOPTIMIZER_H

#include "ir/Graph.h"

namespace pf {

/// Classification of a data-movement node.
enum class DataMovementCost : uint8_t {
  NotDataMovement, ///< Not a Slice/Pad/Concat/Flatten node.
  Free,            ///< Eliminated by the layout optimization.
  Copy,            ///< Must be executed as a real copy.
};

/// Memory-layout optimization pass.
class MemoryOptimizer {
public:
  /// \p Enabled=false models the naive back-end (every Slice/Pad/Concat
  /// copies), used to quantify the optimization's contribution.
  explicit MemoryOptimizer(bool Enabled = true) : Enabled(Enabled) {}

  bool enabled() const { return Enabled; }

  /// Classifies node \p Id of \p G.
  DataMovementCost classify(const Graph &G, NodeId Id) const;

  /// Bytes actually copied when executing node \p Id (zero when free).
  int64_t copyBytes(const Graph &G, NodeId Id) const;

private:
  bool Enabled;
};

} // namespace pf

#endif // PIMFLOW_CODEGEN_MEMORYOPTIMIZER_H
