//===- codegen/CommandGenerator.cpp - PIM command generation ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/CommandGenerator.h"

#include <algorithm>

#include "obs/Counters.h"
#include "support/Format.h"

using namespace pf;

const char *pf::granularityName(ScheduleGranularity G) {
  switch (G) {
  case ScheduleGranularity::GAct:
    return "g_act";
  case ScheduleGranularity::ReadRes:
    return "readres";
  case ScheduleGranularity::Comp:
    return "comp";
  }
  pf_unreachable("unknown granularity");
}

std::string PimKernelPlan::describeMapping() const {
  return formatStr("m%d.v%d.k%d@%s", ChannelsForM, ChannelsForV,
                   ChannelsForK, granularityName(Granularity));
}

namespace {

int64_t ceilDiv(int64_t A, int64_t B) {
  PF_ASSERT(B > 0, "ceilDiv by non-positive");
  return (A + B - 1) / B;
}

/// All divisors of \p N in increasing order.
std::vector<int> divisorsOf(int N) {
  std::vector<int> Out;
  for (int D = 1; D <= N; ++D)
    if (N % D == 0)
      Out.push_back(D);
  return Out;
}

/// Per-channel command-mix telemetry of the plan the scheduler kept
/// (`pim.<command>.ch<N>` counters; only when observability is on).
void recordPlanCounters(const PimKernelPlan &Plan) {
  for (size_t C = 0; C < Plan.Trace.Channels.size(); ++C) {
    const ChannelTrace &Trace = Plan.Trace.Channels[C];
    if (Trace.empty())
      continue;
    int64_t GwriteBursts = 0, GActs = 0, CompColumns = 0, ReadRes = 0;
    for (const CommandBlock &B : Trace.Blocks) {
      for (const PimCommand &Cmd : B.Pattern) {
        switch (Cmd.Kind) {
        case PimCmdKind::Gwrite:
          GwriteBursts += B.Repeats * Cmd.Count;
          break;
        case PimCmdKind::Gwrite2:
          GwriteBursts += B.Repeats * Cmd.Count * 2;
          break;
        case PimCmdKind::Gwrite4:
          GwriteBursts += B.Repeats * Cmd.Count * 4;
          break;
        case PimCmdKind::GAct:
          GActs += B.Repeats * Cmd.Count;
          break;
        case PimCmdKind::Comp:
          CompColumns += B.Repeats * Cmd.Count;
          break;
        case PimCmdKind::ReadRes:
          ReadRes += B.Repeats * Cmd.Count;
          break;
        }
      }
    }
    obs::addCounter(formatStr("pim.gwrite_bursts.ch%zu", C), GwriteBursts);
    obs::addCounter(formatStr("pim.g_acts.ch%zu", C), GActs);
    obs::addCounter(formatStr("pim.comp_columns.ch%zu", C), CompColumns);
    obs::addCounter(formatStr("pim.read_res.ch%zu", C), ReadRes);
  }
}

} // namespace

PimKernelPlan
PimCommandGenerator::planWithMapping(const PimKernelSpec &Spec,
                                     int ChannelsForM, int ChannelsForV,
                                     int ChannelsForK) const {
  PF_ASSERT(Spec.valid(), "invalid PIM kernel spec");
  PF_ASSERT(ChannelsForM >= 1 && ChannelsForV >= 1 && ChannelsForK >= 1,
            "channel partition factors must be positive");
  PF_ASSERT(ChannelsForM * ChannelsForV * ChannelsForK <= Config.Channels,
            "channel partition exceeds the PIM channel count");

  const int64_t Banks = Config.BanksPerChannel;
  const int64_t ElemsPerComp = Config.elementsPerComp();
  const int64_t BufElems = Config.bufferElements();

  // Work shares of one channel (ceil everywhere: every channel is priced as
  // the worst-case channel, keeping the estimate conservative).
  const int64_t RowsPerPart = ceilDiv(Spec.M, ChannelsForM);
  // Matrix rows are interleaved across the channel's banks; the weight
  // layout packs each bank's share densely, so one activated DRAM row
  // serves ColumnIOsPerRow consecutive column computes regardless of how
  // short the individual dot products are.
  const int64_t RowsPerBank = ceilDiv(RowsPerPart, Banks);
  // Buffers used per pass: the largest supported GWRITE width (1/2/4) that
  // the vector count can fill.
  int64_t B = std::min<int64_t>(Config.NumGlobalBuffers, Spec.NumVectors);
  if (B == 3)
    B = 2;
  const int64_t PassesTotal = ceilDiv(Spec.NumVectors, B);
  const int64_t PassesPerPart = ceilDiv(PassesTotal, ChannelsForV);
  const int64_t KPart = ceilDiv(Spec.K, ChannelsForK);
  const int64_t NumTiles = ceilDiv(KPart, BufElems);

  // Result-latch pressure: each bank accumulates RowsPerBank x B partial
  // sums across the K-tiles. When that exceeds the latch count, partial
  // results must drain after every tile and be merged outside the memory.
  const bool DrainPerTile =
      NumTiles > 1 && RowsPerBank * B > Config.ResultLatchesPerBank;

  // Build the per-pass command pattern of one channel.
  std::vector<PimCommand> Pattern;
  for (int64_t T = 0; T < NumTiles; ++T) {
    const int64_t TileElems =
        T + 1 < NumTiles ? BufElems : KPart - (NumTiles - 1) * BufElems;
    const int64_t BurstsPerBuffer =
        ceilDiv(TileElems * 2, Config.BurstBytes);
    // Fetch the B input-vector tiles into the global buffers. Without the
    // strided-GWRITE extension every contiguous segment of a conv window
    // needs its own command (and pays the first-burst latency again).
    if (Options.StridedGwrite || Spec.GwriteSegments == 1) {
      Pattern.push_back(
          PimCommand::gwrite(BurstsPerBuffer, static_cast<int>(B)));
    } else {
      const int64_t Segments =
          std::min<int64_t>(Spec.GwriteSegments, BurstsPerBuffer);
      const int64_t BurstsPerSegment = ceilDiv(BurstsPerBuffer, Segments);
      for (int64_t S = 0; S < Segments; ++S)
        Pattern.push_back(
            PimCommand::gwrite(BurstsPerSegment, static_cast<int>(B)));
    }
    // Stream this K-tile of every resident matrix row through the MAC
    // trees: per bank, RowsPerBank dot-product segments of
    // ceil(TileElems/16) column I/Os each. Activations are shared across
    // the B buffered vectors — the multi-buffer G_ACT reuse.
    const int64_t ColumnsPerBank =
        RowsPerBank * ceilDiv(TileElems, ElemsPerComp);
    const int64_t GActs = ceilDiv(ColumnsPerBank, Config.ColumnIOsPerRow);
    Pattern.push_back(PimCommand::gact(GActs));
    Pattern.push_back(PimCommand::comp(B * ColumnsPerBank));
    if (DrainPerTile)
      Pattern.push_back(
          PimCommand::readRes(B * ceilDiv(RowsPerPart, ElemsPerComp)));
  }
  // Drain the accumulated results: each 32B READRES carries 16 fp16
  // partial outputs; every buffered vector drains its RowsPerPart results.
  if (!DrainPerTile)
    Pattern.push_back(
        PimCommand::readRes(B * ceilDiv(RowsPerPart, ElemsPerComp)));

  PimKernelPlan Plan;
  const int UsedChannels = ChannelsForM * ChannelsForV * ChannelsForK;
  Plan.Trace = DeviceTrace(Config.Channels);
  for (int C = 0; C < UsedChannels; ++C)
    Plan.Trace.Channels[static_cast<size_t>(C)].Blocks.push_back(
        CommandBlock{Pattern, PassesPerPart});

  Plan.Stats = Sim.run(Plan.Trace);
  Plan.Ns = Plan.Stats.Ns;
  Plan.EffectiveMacs = Spec.totalMacs();
  Plan.ChannelsForM = ChannelsForM;
  Plan.ChannelsForV = ChannelsForV;
  Plan.ChannelsForK = ChannelsForK;

  // Partial sums — from COMP-granularity K-splits across channels and from
  // latch-pressure per-tile drains — are merged by a lightweight
  // elementwise add on the GPU side; charge the merge traffic at the
  // cross-channel rate.
  int64_t PartialCopies = ChannelsForK - 1;
  if (DrainPerTile)
    PartialCopies += NumTiles - 1;
  if (PartialCopies > 0) {
    const double MergeBytes = static_cast<double>(PartialCopies + 1) *
                              static_cast<double>(Spec.M) *
                              static_cast<double>(Spec.NumVectors) * 2.0;
    Plan.Ns += MergeBytes / 100.0; // 100 GB/s crossbar -> ns per byte.
  }
  return Plan;
}

PimKernelPlan PimCommandGenerator::plan(const PimKernelSpec &Spec) const {
  PF_ASSERT(Spec.valid(), "invalid PIM kernel spec");

  PimKernelPlan Best;
  bool HaveBest = false;

  const int64_t B =
      std::min<int64_t>(Config.NumGlobalBuffers, Spec.NumVectors);
  const int64_t PassesTotal = ceilDiv(Spec.NumVectors, B);

  for (int Cm : divisorsOf(Config.Channels)) {
    // More M-partitions than rows only idles channels.
    if (Cm > Spec.M)
      continue;
    for (int Cv : divisorsOf(Config.Channels / Cm)) {
      if (Cv > 1 && Options.MaxGranularity == ScheduleGranularity::GAct)
        break;
      if (Cv > PassesTotal)
        break;
      for (int Ck : divisorsOf(Config.Channels / (Cm * Cv))) {
        if (Ck > 1 && Options.MaxGranularity != ScheduleGranularity::Comp)
          break;
        // Splitting K below one COMP's worth of elements is pointless.
        if (static_cast<int64_t>(Ck) * Config.elementsPerComp() > Spec.K &&
            Ck > 1)
          break;
        PimKernelPlan Plan = planWithMapping(Spec, Cm, Cv, Ck);
        Plan.Granularity = Ck > 1   ? ScheduleGranularity::Comp
                           : Cv > 1 ? ScheduleGranularity::ReadRes
                                    : ScheduleGranularity::GAct;
        obs::addCounter("codegen.mappings_tried");
        if (!HaveBest || Plan.Ns < Best.Ns) {
          Best = std::move(Plan);
          HaveBest = true;
        }
      }
    }
  }
  PF_ASSERT(HaveBest, "no feasible PIM mapping found");
  obs::addCounter("codegen.plans");
  if (obs::activeRegistry().enabled())
    recordPlanCounters(Best);
  return Best;
}
