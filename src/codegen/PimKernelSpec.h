//===- codegen/PimKernelSpec.h - Convolution lowering -----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convolution lowering for the DRAM-PIM back-end. A PIM-offloadable node is
/// lowered to a batch of matrix-vector multiplications (Section 2.2): the
/// filter matrix [M x K] lives in the memory cell arrays, and every output
/// position contributes one K-long input vector that is GWRITE'd into a
/// global buffer.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_CODEGEN_PIMKERNELSPEC_H
#define PIMFLOW_CODEGEN_PIMKERNELSPEC_H

#include "ir/Graph.h"

namespace pf {

/// A PIM workload after convolution lowering: NumVectors GEMVs of a fixed
/// [M x K] weight matrix.
struct PimKernelSpec {
  /// Output features (Cout / FC width): rows of the weight matrix.
  int64_t M = 0;
  /// Reduction length (KH*KW*Cin for conv, K for FC).
  int64_t K = 0;
  /// Number of input vectors (N*Ho*Wo output positions; batch rows for FC).
  int64_t NumVectors = 0;
  /// Contiguous memory segments per input vector. Pointwise conv and FC
  /// vectors are fully contiguous (1); a KHxKW conv window in NHWC consists
  /// of KH contiguous row segments. Without the strided-GWRITE extension
  /// each segment needs its own GWRITE command.
  int64_t GwriteSegments = 1;

  /// Useful multiply-accumulates.
  int64_t totalMacs() const { return M * K * NumVectors; }

  /// Weight bytes resident in the cell arrays (fp16).
  int64_t weightBytes() const { return M * K * 2; }

  bool valid() const { return M > 0 && K > 0 && NumVectors > 0; }
};

/// Lowers node \p Id to a PimKernelSpec. The node must be a PIM candidate
/// (Gemm, or Conv2d with Groups == 1) with inferred shapes.
PimKernelSpec lowerToPimSpec(const Graph &G, NodeId Id);

} // namespace pf

#endif // PIMFLOW_CODEGEN_PIMKERNELSPEC_H
