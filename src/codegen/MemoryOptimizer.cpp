//===- codegen/MemoryOptimizer.cpp - Layout optimization --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/MemoryOptimizer.h"

using namespace pf;

DataMovementCost MemoryOptimizer::classify(const Graph &G, NodeId Id) const {
  const Node &N = G.node(Id);
  switch (N.Kind) {
  case OpKind::Flatten:
  case OpKind::Identity:
    // Always metadata-only in a contiguous layout.
    return DataMovementCost::Free;

  case OpKind::Slice: {
    if (!Enabled)
      return DataMovementCost::Copy;
    // Weight/bias slices (from MD-DP output-feature splits) are prepared at
    // compile time when parameters are placed, never copied at runtime.
    if (G.value(N.Inputs[0]).IsParam)
      return DataMovementCost::Free;
    const SliceAttrs &A = std::get<SliceAttrs>(N.Attrs);
    const TensorShape &X = G.value(N.Inputs[0]).Shape;
    // NHWC batch-1: an H-axis (axis 1) slice of a contiguous tensor is a
    // contiguous sub-range; so is a leading-axis slice of a rank-2 tensor.
    // Other axes interleave and need a gather.
    if (X.rank() == 4 && X.dim(0) == 1 && A.Axis == 1)
      return DataMovementCost::Free;
    if (X.rank() == 2 && A.Axis == 0)
      return DataMovementCost::Free;
    if (X.rank() == 2 && A.Axis == 1 && X.dim(0) == 1)
      return DataMovementCost::Free;
    if (X.rank() == 1)
      return DataMovementCost::Free;
    return DataMovementCost::Copy;
  }

  case OpKind::Concat: {
    if (!Enabled)
      return DataMovementCost::Copy;
    const ConcatAttrs &A = std::get<ConcatAttrs>(N.Attrs);
    const TensorShape &Out = G.value(N.Outputs[0]).Shape;
    if (Out.rank() == 4 && Out.dim(0) == 1 && A.Axis == 1)
      return DataMovementCost::Free;
    if (Out.rank() == 2 && A.Axis == 0)
      return DataMovementCost::Free;
    if (Out.rank() == 2 && A.Axis == 1 && Out.dim(0) == 1)
      return DataMovementCost::Free;
    return DataMovementCost::Copy;
  }

  case OpKind::Pad:
    // Folded into a zero-initialized padded allocation when enabled.
    return Enabled ? DataMovementCost::Free : DataMovementCost::Copy;

  default:
    return DataMovementCost::NotDataMovement;
  }
}

int64_t MemoryOptimizer::copyBytes(const Graph &G, NodeId Id) const {
  if (classify(G, Id) != DataMovementCost::Copy)
    return 0;
  const Node &N = G.node(Id);
  // A copy reads every input once and writes the output once.
  int64_t Bytes = G.value(N.Outputs[0]).byteCount();
  for (ValueId In : N.Inputs)
    Bytes += G.value(In).byteCount();
  return Bytes;
}
