//===- codegen/WeightPlacement.h - Filter placement in DRAM -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time placement of filter matrices into the PIM channels' memory
/// cell arrays (Section 2.2: "we place the filters in the memory cell
/// array in advance"). For every offloaded kernel, the planner derives how
/// many DRAM rows each bank must dedicate under the kernel's chosen
/// channel mapping — including the replication that vector- and K-split
/// mappings imply — and checks the total against the per-bank row
/// capacity.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_CODEGEN_WEIGHTPLACEMENT_H
#define PIMFLOW_CODEGEN_WEIGHTPLACEMENT_H

#include <vector>

#include "codegen/CommandGenerator.h"

namespace pf {

/// Placement of one PIM kernel's weights.
struct PlacementEntry {
  NodeId Node = InvalidNode;
  /// DRAM rows per bank this kernel occupies in each channel that holds a
  /// copy of (its share of) the matrix.
  int64_t DramRowsPerBank = 0;
  /// Channels holding a copy (Cv * Ck partitions replicate the M-shard).
  int Replicas = 1;
  /// Logical weight bytes (unreplicated).
  int64_t WeightBytes = 0;
};

/// The whole device's placement.
struct PlacementPlan {
  std::vector<PlacementEntry> Entries;
  /// Worst-case DRAM rows consumed per bank (kernels stack within each
  /// channel; the per-channel loads are equal by construction).
  int64_t RowsPerBankUsed = 0;
  /// Row capacity per bank the plan was checked against.
  int64_t RowsPerBankCapacity = 0;
  /// Total logical weight bytes placed (unreplicated).
  int64_t TotalWeightBytes = 0;
  /// Physical bytes including replication.
  int64_t PhysicalWeightBytes = 0;

  bool fits() const { return RowsPerBankUsed <= RowsPerBankCapacity; }
  double utilization() const {
    return RowsPerBankCapacity == 0
               ? 0.0
               : static_cast<double>(RowsPerBankUsed) /
                     static_cast<double>(RowsPerBankCapacity);
  }
};

/// DRAM rows per bank that one kernel's plan occupies in each channel of
/// its M-partition.
int64_t dramRowsPerBank(const PimKernelSpec &Spec, const PimKernelPlan &P,
                        const PimConfig &Config);

/// Places the weights of every PIM-annotated node of \p G.
/// \p RowsPerBankCapacity defaults to a 1 GB/channel GDDR6 die with 16
/// banks of 1 KB rows (65536 rows per bank).
PlacementPlan placeWeights(const Graph &G, const PimConfig &Config,
                           const CodegenOptions &Options,
                           int64_t RowsPerBankCapacity = 65536);

} // namespace pf

#endif // PIMFLOW_CODEGEN_WEIGHTPLACEMENT_H
