//===- codegen/PimKernelSpec.cpp - Convolution lowering ---------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/PimKernelSpec.h"

using namespace pf;

PimKernelSpec pf::lowerToPimSpec(const Graph &G, NodeId Id) {
  const Node &N = G.node(Id);
  PF_ASSERT(isPimCandidate(N), "lowering a non-PIM-candidate node");
  PimKernelSpec Spec;

  if (N.Kind == OpKind::Gemm) {
    const TensorShape &X = G.value(N.Inputs[0]).Shape;
    const TensorShape &W = G.value(N.Inputs[1]).Shape;
    Spec.M = W.dim(1);
    Spec.K = W.dim(0);
    Spec.NumVectors = X.dim(0);
    Spec.GwriteSegments = 1;
    return Spec;
  }

  const Conv2dAttrs &A = N.conv();
  const TensorShape &X = G.value(N.Inputs[0]).Shape;
  const TensorShape &O = G.value(N.Outputs[0]).Shape;
  Spec.M = O.dim(3);
  Spec.K = A.KernelH * A.KernelW * X.dim(3);
  Spec.NumVectors = O.dim(0) * O.dim(1) * O.dim(2);
  // In NHWC one kernel-window row (KW x Cin) is contiguous; the window has
  // KH such segments.
  Spec.GwriteSegments = A.KernelH;
  return Spec;
}
