//===- codegen/CommandGenerator.h - PIM command generation ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DRAM-PIM command generator and command-scheduling pass (Section
/// 4.3.1). For a lowered PimKernelSpec it emits per-channel command traces,
/// distributing work across channels at one of three granularities
/// (Fig. 6):
///
///  * G_ACT level  — whole weight-row groups are pinned to channels for the
///    entire kernel (weight-stationary; minimal command duplication, but a
///    small matrix leaves channels idle);
///  * READRES level — (row-group x vector-batch) units are distributed, so
///    small matrices with many vectors still fill all channels;
///  * COMP level   — units are additionally split along the reduction (K)
///    axis into partial sums, engaging all channels even for single-vector
///    kernels with few rows.
///
/// The scheduler enumerates the channel-partitioning candidates permitted by
/// the mechanism's maximum granularity, prices each with the cycle
/// simulator, and keeps the fastest — this is the paper's "command
/// scheduling pass to distribute PIM commands across channels to fully
/// utilize all PIM compute units".
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_CODEGEN_COMMANDGENERATOR_H
#define PIMFLOW_CODEGEN_COMMANDGENERATOR_H

#include <string>

#include "codegen/PimKernelSpec.h"
#include "pim/PimCommand.h"
#include "pim/PimConfig.h"
#include "pim/PimSimulator.h"

namespace pf {

/// Fig. 6 command-scheduling granularities, in increasing channel-level
/// parallelism.
enum class ScheduleGranularity : uint8_t {
  GAct,
  ReadRes,
  Comp,
};

/// Returns "g_act"/"readres"/"comp".
const char *granularityName(ScheduleGranularity G);

/// Code-generation options distinguishing the evaluated mechanisms.
struct CodegenOptions {
  /// Finest scheduling granularity the mechanism may use.
  ScheduleGranularity MaxGranularity = ScheduleGranularity::Comp;
  /// Strided-GWRITE extension: gather a conv window's KH segments with one
  /// command instead of KH commands.
  bool StridedGwrite = true;
};

/// A generated PIM kernel: the traces, their simulated timing, and the
/// mapping the scheduler chose.
struct PimKernelPlan {
  DeviceTrace Trace{0};
  PimRunStats Stats;
  /// Simulated kernel latency in nanoseconds.
  double Ns = 0.0;
  /// Useful MACs (for the energy model).
  int64_t EffectiveMacs = 0;
  /// Chosen (M-partitions, vector-partitions, K-partitions) mapping.
  int ChannelsForM = 1;
  int ChannelsForV = 1;
  int ChannelsForK = 1;
  ScheduleGranularity Granularity = ScheduleGranularity::GAct;

  std::string describeMapping() const;
};

/// Generates and schedules PIM command traces for lowered kernels.
class PimCommandGenerator {
public:
  PimCommandGenerator(PimConfig Config, CodegenOptions Options)
      : Config(Config), Options(Options), Sim(Config) {}

  const PimConfig &config() const { return Config; }
  const CodegenOptions &options() const { return Options; }

  /// Emits traces for \p Spec under a fixed channel partitioning
  /// (ChannelsForM x ChannelsForV x ChannelsForK must not exceed the
  /// channel count).
  PimKernelPlan planWithMapping(const PimKernelSpec &Spec, int ChannelsForM,
                                int ChannelsForV, int ChannelsForK) const;

  /// Command-scheduling pass: tries every mapping the configured
  /// granularity permits and returns the fastest plan.
  PimKernelPlan plan(const PimKernelSpec &Spec) const;

private:
  PimConfig Config;
  CodegenOptions Options;
  PimSimulator Sim;
};

} // namespace pf

#endif // PIMFLOW_CODEGEN_COMMANDGENERATOR_H
