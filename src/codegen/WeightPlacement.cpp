//===- codegen/WeightPlacement.cpp - Filter placement in DRAM ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/WeightPlacement.h"

using namespace pf;

int64_t pf::dramRowsPerBank(const PimKernelSpec &Spec,
                            const PimKernelPlan &P,
                            const PimConfig &Config) {
  // Each channel of an M-partition holds ceil(M/Cm) matrix rows,
  // interleaved over the banks and packed densely: per bank,
  // ceil(rows/banks) dot-product segments of K fp16 elements each.
  const int64_t RowsPerPart =
      (Spec.M + P.ChannelsForM - 1) / P.ChannelsForM;
  const int64_t RowsPerBank =
      (RowsPerPart + Config.BanksPerChannel - 1) / Config.BanksPerChannel;
  const int64_t Elements = RowsPerBank * Spec.K;
  return (Elements + Config.elementsPerRow() - 1) /
         Config.elementsPerRow();
}

PlacementPlan pf::placeWeights(const Graph &G, const PimConfig &Config,
                               const CodegenOptions &Options,
                               int64_t RowsPerBankCapacity) {
  PlacementPlan Plan;
  Plan.RowsPerBankCapacity = RowsPerBankCapacity;
  PimCommandGenerator Gen(Config, Options);

  for (const Node &N : G.nodes()) {
    if (N.Dead || N.Dev != Device::Pim)
      continue;
    const PimKernelSpec Spec = lowerToPimSpec(G, N.Id);
    const PimKernelPlan P = Gen.plan(Spec);

    PlacementEntry E;
    E.Node = N.Id;
    E.DramRowsPerBank = dramRowsPerBank(Spec, P, Config);
    // Vector- and K-partitions run against the same M-shard, so each of
    // the Cv * Ck channel groups needs its own copy.
    E.Replicas = P.ChannelsForV * P.ChannelsForK;
    E.WeightBytes = Spec.weightBytes();
    Plan.TotalWeightBytes += E.WeightBytes;
    Plan.PhysicalWeightBytes += E.WeightBytes * E.Replicas;
    // Kernels stack in every channel: the per-bank load adds up (the
    // M-shards of one kernel spread across Cm channels at the same row
    // offsets, so the per-bank usage is uniform across channels).
    Plan.RowsPerBankUsed += E.DramRowsPerBank;
    Plan.Entries.push_back(E);
  }
  return Plan;
}
