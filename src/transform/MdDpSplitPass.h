//===- transform/MdDpSplitPass.h - Multi-device data-parallel ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-device parallelization pass (Section 4.2.1): splits one
/// PIM-candidate node into a GPU part and a PIM part that execute in
/// parallel on disjoint portions of the data, then concatenates their
/// outputs back into the original output tensor.
///
/// Convolutions split along the output-height axis (with the input sliced
/// to the rows each part reads and per-part residual padding). FC layers
/// split along the batch-row axis when the batch has multiple rows, and
/// along the output-feature axis (slicing the weight matrix) for batch-1
/// inference. All inserted Slice/Concat nodes move data along axes the
/// memory optimizer turns into no-ops.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_TRANSFORM_MDDPSPLITPASS_H
#define PIMFLOW_TRANSFORM_MDDPSPLITPASS_H

#include <optional>

#include "ir/Graph.h"

namespace pf {

/// Nodes created by one MD-DP split.
struct MdDpResult {
  NodeId GpuPart = InvalidNode;
  NodeId PimPart = InvalidNode;
  NodeId ConcatNode = InvalidNode;
};

/// Splits node \p Id so that a \p RatioGpu fraction of the work runs on the
/// GPU and the rest on PIM (Table 2's "split ratio to GPU").
///
/// When the ratio rounds to 0 or 1 no split is performed: the node is
/// annotated to run entirely on PIM (ratio 0) or GPU (ratio 1) and
/// std::nullopt is returned. Otherwise the graph is rewritten in place and
/// the created nodes are returned. \p Id must be a PIM candidate with
/// inferred shapes.
std::optional<MdDpResult> applyMdDpSplit(Graph &G, NodeId Id,
                                         double RatioGpu);

} // namespace pf

#endif // PIMFLOW_TRANSFORM_MDDPSPLITPASS_H
