//===- transform/PatternMatch.h - Pipelining pattern matcher ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finds the paper's pipelining candidate subgraphs: sequences of 1x1
/// (pointwise, PIM-offloadable) and depthwise (GPU-only) convolutions, with
/// optional interposed activations. Three patterns are used in the
/// evaluation (Fig. 11):
///
///   Type 1: 1x1 -> DW
///   Type 2: DW  -> 1x1
///   Type 3: 1x1 -> DW -> 1x1
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_TRANSFORM_PATTERNMATCH_H
#define PIMFLOW_TRANSFORM_PATTERNMATCH_H

#include <vector>

#include "ir/Graph.h"

namespace pf {

/// The three evaluated subgraph patterns.
enum class PipelinePattern : uint8_t {
  PwDw,   ///< Type 1: 1x1 -> DW
  DwPw,   ///< Type 2: DW -> 1x1
  PwDwPw, ///< Type 3: 1x1 -> DW -> 1x1
};

/// Returns "1x1-dw", "dw-1x1" or "1x1-dw-1x1".
const char *pipelinePatternName(PipelinePattern P);

/// One matched candidate: the node chain (convs plus any interposed
/// activations, in dataflow order) and which pattern it instantiates.
struct PipelineCandidate {
  std::vector<NodeId> Chain;
  PipelinePattern Pattern = PipelinePattern::PwDw;

  /// The conv nodes of the chain (activations filtered out).
  std::vector<NodeId> convNodes(const Graph &G) const;
};

/// Enumerates all pipelining candidates of \p G, longest patterns first at
/// each anchor. Candidates may overlap; the search engine's DP resolves
/// conflicts.
std::vector<PipelineCandidate> findPipelineCandidates(const Graph &G);

} // namespace pf

#endif // PIMFLOW_TRANSFORM_PATTERNMATCH_H
