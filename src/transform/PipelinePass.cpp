//===- transform/PipelinePass.cpp - Pipelined execution pass ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/PipelinePass.h"

#include <algorithm>

#include "ir/ShapeInference.h"
#include "support/Format.h"
#include "transform/SplitUtil.h"

using namespace pf;

namespace {

bool isUnaryElementwise(OpKind Kind) {
  switch (Kind) {
  case OpKind::Relu:
  case OpKind::Relu6:
  case OpKind::Sigmoid:
  case OpKind::SiLU:
  case OpKind::Tanh:
  case OpKind::Gelu:
  case OpKind::Identity:
    return true;
  default:
    return false;
  }
}

/// Largest number of output rows conv \p A can produce when only the first
/// \p InRows input rows are available.
int64_t producibleRows(const Conv2dAttrs &A, int64_t InRows, int64_t OutH) {
  // Output row o needs padded rows up to o*s + KH; the top padding supplies
  // PadTop virtual rows.
  const int64_t B = (InRows + A.PadTop - A.KernelH) / A.StrideH + 1;
  return std::clamp<int64_t>(B, 0, OutH);
}

} // namespace

bool pf::isPipelineableChain(const Graph &G,
                             const std::vector<NodeId> &Chain) {
  if (Chain.size() < 2)
    return false;
  for (size_t I = 0; I < Chain.size(); ++I) {
    const Node &N = G.node(Chain[I]);
    if (N.Dead)
      return false;
    if (N.Kind != OpKind::Conv2d && !isUnaryElementwise(N.Kind))
      return false;
    if (G.value(N.Outputs[0]).Shape.rank() != 4 ||
        G.value(N.Outputs[0]).Shape.dim(0) != 1)
      return false;
    if (I > 0) {
      const Node &Prev = G.node(Chain[I - 1]);
      if (N.Inputs.empty() || N.Inputs[0] != Prev.Outputs[0])
        return false;
      // Intermediate values must have no other consumers (the transform
      // deletes their producers).
      if (G.consumers(Prev.Outputs[0]).size() != 1)
        return false;
    }
  }
  return true;
}

bool pf::applyPipeline(Graph &G, const PipelineSpec &Spec) {
  PF_ASSERT(Spec.NumStages >= 2, "pipelining needs at least two stages");
  if (!isPipelineableChain(G, Spec.Chain))
    return false;
  const size_t Len = Spec.Chain.size();
  const int64_t S = Spec.NumStages;

  // Compute per-node stage boundaries forward through the chain. Node 0 is
  // split evenly; each later node's stage j ends at the last output row
  // computable from its producer's stages 0..j.
  std::vector<std::vector<int64_t>> Bounds(Len);
  {
    const Node &First = G.node(Spec.Chain[0]);
    const int64_t H0 = G.value(First.Outputs[0]).Shape.dim(1);
    if (H0 < S)
      return false;
    Bounds[0].assign(1, 0);
    for (auto [Begin, End] : splitRange(H0, S)) {
      (void)Begin;
      Bounds[0].push_back(End);
    }
  }
  for (size_t I = 1; I < Len; ++I) {
    const Node &N = G.node(Spec.Chain[I]);
    const int64_t OutH = G.value(N.Outputs[0]).Shape.dim(1);
    Bounds[I].assign(1, 0);
    for (int64_t J = 0; J < S; ++J) {
      int64_t End;
      if (J == S - 1) {
        End = OutH; // Final stage covers the remainder.
      } else if (N.Kind == OpKind::Conv2d) {
        End = producibleRows(N.conv(), Bounds[I - 1][J + 1], OutH);
      } else {
        End = std::min(Bounds[I - 1][J + 1], OutH);
      }
      if (End <= Bounds[I].back())
        return false; // A stage would be empty: reject this candidate.
      Bounds[I].push_back(End);
    }
  }

  // Rewrite the chain node by node.
  PiecewiseTensor Current(G, G.node(Spec.Chain[0]).Inputs[0]);
  ValueId FinalOut = G.node(Spec.Chain.back()).Outputs[0];
  const TensorShape FinalShape = G.value(FinalOut).Shape;

  for (size_t I = 0; I < Len; ++I) {
    const Node N = G.node(Spec.Chain[I]); // Copy: we remove it below.
    const Device StageDev =
        N.Kind == OpKind::Conv2d && isPimCandidate(N) ? Device::Pim
                                                      : Device::Gpu;
    std::vector<HPiece> Pieces;
    for (int64_t J = 0; J < S; ++J) {
      const int64_t Begin = Bounds[I][J];
      const int64_t End = Bounds[I][J + 1];
      const std::string Name =
          formatStr("%s.stage%lld", N.Name.c_str(), static_cast<long long>(J));
      ValueId Out = G.addValue(Name + ".out", TensorShape{});
      NodeId Part;
      if (N.Kind == OpKind::Conv2d) {
        const Conv2dAttrs &Orig = N.conv();
        const ConvInputReq Req =
            convInputRowsFor(Orig, Current.height(), Begin, End);
        // Boundary rows from earlier stages arrive through the gathered
        // range (Slice/Concat of prior pieces).
        ValueId In = Current.range(Req.InBegin, Req.InEnd, Device::Gpu);
        Conv2dAttrs Attrs = Orig;
        Attrs.PadTop = Req.PadTop;
        Attrs.PadBottom = Req.PadBottom;
        std::vector<ValueId> Inputs = {In, N.Inputs[1]};
        if (N.Inputs.size() > 2)
          Inputs.push_back(N.Inputs[2]);
        Part = G.addNode(OpKind::Conv2d, Name, Attrs, std::move(Inputs),
                         {Out});
      } else {
        ValueId In = Current.range(Begin, End, Device::Gpu);
        Part = G.addNode(N.Kind, Name, N.Attrs, {In}, {Out});
      }
      G.node(Part).Dev = StageDev;
      auto Err = inferNodeShapes(G, Part);
      PF_ASSERT(!Err, "pipeline stage shape inference failed");
      PF_ASSERT(G.value(Out).Shape.dim(1) == End - Begin,
                "pipeline stage produced unexpected row count");
      Pieces.push_back(HPiece{Begin, End, Out});
    }
    G.removeNode(N.Id);
    Current = PiecewiseTensor(G, std::move(Pieces));
  }

  // Reassemble the chain's output into the original value so downstream
  // consumers are untouched.
  ConcatAttrs A;
  A.Axis = 1;
  std::vector<ValueId> StageOuts;
  for (int64_t J = 0; J < S; ++J)
    StageOuts.push_back(
        Current.range(Bounds[Len - 1][J], Bounds[Len - 1][J + 1]));
  const std::string Name =
      formatStr("%s.pipe.join", G.node(Spec.Chain.back()).Name.c_str());
  NodeId Concat = G.addNode(OpKind::Concat, Name, A, StageOuts, {FinalOut});
  G.node(Concat).Dev = Device::Gpu;
  auto Err = inferNodeShapes(G, Concat);
  PF_ASSERT(!Err, "pipeline join shape inference failed");
  PF_ASSERT(G.value(FinalOut).Shape == FinalShape,
            "pipelining changed the chain output shape");
  return true;
}
