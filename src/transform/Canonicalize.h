//===- transform/Canonicalize.h - Graph cleanup passes ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cleanup passes run after the PIMFlow transformations: dead-code
/// elimination for nodes whose results are never consumed, folding of
/// Identity nodes, and cancellation of Slice-of-Concat pairs that
/// reconstruct an original piece (pipelining's gather logic can emit
/// these at stage boundaries).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_TRANSFORM_CANONICALIZE_H
#define PIMFLOW_TRANSFORM_CANONICALIZE_H

#include "ir/Graph.h"

namespace pf {

/// Statistics of one canonicalization run.
struct CanonicalizeStats {
  int DeadNodesRemoved = 0;
  int IdentitiesFolded = 0;
  int SlicesCancelled = 0;

  int total() const {
    return DeadNodesRemoved + IdentitiesFolded + SlicesCancelled;
  }
};

/// Removes live nodes none of whose outputs are consumed or graph outputs,
/// iterating to a fixed point.
int eliminateDeadNodes(Graph &G);

/// Rewrites consumers of Identity results to use the Identity's input and
/// removes the Identity. Identities producing graph outputs are kept.
int foldIdentities(Graph &G);

/// Cancels `Slice(axis, [b,e))` whose input is a `Concat(axis)` when the
/// sliced range corresponds exactly to one concat operand: consumers read
/// the operand directly.
int cancelSliceOfConcat(Graph &G);

/// Runs all cleanups to a fixed point.
CanonicalizeStats canonicalize(Graph &G);

} // namespace pf

#endif // PIMFLOW_TRANSFORM_CANONICALIZE_H
