//===- transform/PipelinePass.h - Pipelined execution pass ------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipelining pass (Section 4.2.1): splits every node of a linear chain
/// of consecutive nodes into pipeline-stage nodes so that GPU stages and PIM
/// stages of *different data* overlap.
///
/// Stage boundaries are computed forward through the chain: stage j of node
/// i may only produce the output rows computable from the rows node i-1's
/// stages 0..j have produced, so a stage never waits on a later stage of its
/// producer. Where a filter larger than 1x1 reaches across a stage boundary,
/// a Concat over the earlier stages' outputs supplies the boundary rows —
/// the paper's "concat node before 4(B)".
///
/// PIM-candidate (1x1/regular conv) stages are annotated for PIM; depthwise
/// convolutions and elementwise nodes stay on the GPU.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_TRANSFORM_PIPELINEPASS_H
#define PIMFLOW_TRANSFORM_PIPELINEPASS_H

#include <vector>

#include "ir/Graph.h"

namespace pf {

/// A pipelining request: the chain of nodes (consecutive, each intermediate
/// value single-consumer) and the stage count.
struct PipelineSpec {
  std::vector<NodeId> Chain;
  int NumStages = 2;
};

/// Returns true if \p Spec's chain is a pipelineable linear chain in \p G:
/// every node is a Conv2d or a unary elementwise op, node i's data input is
/// node i-1's sole output, and intermediates have exactly one consumer.
bool isPipelineableChain(const Graph &G, const std::vector<NodeId> &Chain);

/// Applies the pipelining transformation in place. Returns false (leaving
/// the graph untouched) when the chain cannot be pipelined with the
/// requested stage count (e.g. a stage would end up empty).
bool applyPipeline(Graph &G, const PipelineSpec &Spec);

} // namespace pf

#endif // PIMFLOW_TRANSFORM_PIPELINEPASS_H
