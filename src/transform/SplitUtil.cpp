//===- transform/SplitUtil.cpp - H-dimension splitting helpers --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/SplitUtil.h"

#include <algorithm>

#include "ir/ShapeInference.h"
#include "support/Format.h"

using namespace pf;

ConvInputReq pf::convInputRowsFor(const Conv2dAttrs &A, int64_t InH,
                                  int64_t OutBegin, int64_t OutEnd) {
  PF_ASSERT(OutBegin < OutEnd, "empty conv output row range");
  ConvInputReq R;
  // Output row o reads padded-input rows [o*s, o*s + KH); padded-input row
  // p corresponds to real input row p - PadTop.
  const int64_t WantBegin = OutBegin * A.StrideH - A.PadTop;
  const int64_t WantEnd = (OutEnd - 1) * A.StrideH + A.KernelH - A.PadTop;
  R.InBegin = std::max<int64_t>(0, WantBegin);
  R.InEnd = std::min(InH, WantEnd);
  R.PadTop = R.InBegin - WantBegin; // >= 0: rows that fall in the padding.
  R.PadBottom = WantEnd - R.InEnd;
  // Reachable only for degenerate attributes (pad >= kernel), which the
  // verifier rejects as verify.illegal-attrs: with pad < kernel every
  // window overlaps at least one real row, so every part does too.
  PF_ASSERT(R.InBegin < R.InEnd,
            "conv part reads no real input rows (pad >= kernel?)");
  return R;
}

bool pf::checkPieces(const Graph &G, const std::vector<HPiece> &Pieces,
                     DiagnosticEngine &DE) {
  const size_t Before = DE.errorCount();
  if (Pieces.empty()) {
    DE.error(DiagCode::VerifyPieceGap, "pieces",
             "piecewise tensor has no pieces");
    return false;
  }
  int64_t Expect = 0;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    const HPiece &P = Pieces[I];
    const std::string Ctx = formatStr("piece #%zu", I);
    if (P.End <= P.Begin) {
      DE.error(DiagCode::VerifyPieceGap, Ctx,
               formatStr("piece range [%lld,%lld) is empty or negative",
                         static_cast<long long>(P.Begin),
                         static_cast<long long>(P.End)));
    } else if (P.Begin < Expect) {
      DE.error(DiagCode::VerifyPieceOverlap, Ctx,
               formatStr("piece begins at row %lld but rows up to %lld are "
                         "already covered",
                         static_cast<long long>(P.Begin),
                         static_cast<long long>(Expect)));
    } else if (P.Begin > Expect) {
      DE.error(DiagCode::VerifyPieceGap, Ctx,
               formatStr("piece begins at row %lld, leaving rows [%lld,%lld) "
                         "uncovered",
                         static_cast<long long>(P.Begin),
                         static_cast<long long>(Expect),
                         static_cast<long long>(P.Begin)));
    }
    Expect = std::max(Expect, P.End);

    if (P.Id < 0 || static_cast<size_t>(P.Id) >= G.numValues()) {
      DE.error(DiagCode::VerifyDanglingValue, Ctx,
               formatStr("references value id %d, but the graph has %zu "
                         "values",
                         P.Id, G.numValues()));
      continue;
    }
    const TensorShape &S = G.value(P.Id).Shape;
    if (S.rank() != 4)
      DE.error(DiagCode::VerifyStaleShape, Ctx,
               formatStr("value '%s' is not rank-4 NHWC",
                         G.value(P.Id).Name.c_str()));
    else if (P.End > P.Begin && S.dim(1) != P.End - P.Begin)
      DE.error(DiagCode::VerifyStaleShape, Ctx,
               formatStr("covers %lld rows but value '%s' has height %lld",
                         static_cast<long long>(P.End - P.Begin),
                         G.value(P.Id).Name.c_str(),
                         static_cast<long long>(S.dim(1))));
  }
  return DE.errorCount() == Before;
}

PiecewiseTensor::PiecewiseTensor(Graph &G, ValueId Whole) : G(&G) {
  const TensorShape &S = G.value(Whole).Shape;
  PF_ASSERT(S.rank() == 4, "piecewise tensors are rank-4 NHWC");
  Pieces.push_back(HPiece{0, S.dim(1), Whole});
}

PiecewiseTensor::PiecewiseTensor(Graph &G, std::vector<HPiece> P)
    : G(&G), Pieces(std::move(P)) {
  // A split pass handing over broken pieces is a compiler bug: stop with
  // the full coded evidence rather than the first violated assert.
  DiagnosticEngine DE;
  if (!checkPieces(G, Pieces, DE))
    fatal("piecewise tensor invariants violated:\n" + DE.render());
}

int64_t PiecewiseTensor::height() const { return Pieces.back().End; }

ValueId PiecewiseTensor::range(int64_t Begin, int64_t End, Device Dev) {
  PF_ASSERT(Begin >= 0 && End <= height() && Begin < End,
            "piecewise range out of bounds");

  // Collect the (sub-)pieces overlapping the range.
  std::vector<ValueId> Parts;
  for (const HPiece &Piece : Pieces) {
    if (Piece.End <= Begin || Piece.Begin >= End)
      continue;
    const int64_t Lo = std::max(Begin, Piece.Begin) - Piece.Begin;
    const int64_t Hi = std::min(End, Piece.End) - Piece.Begin;
    if (Lo == 0 && Hi == Piece.End - Piece.Begin) {
      Parts.push_back(Piece.Id);
      continue;
    }
    // Sub-range of this piece: emit a Slice.
    SliceAttrs A;
    A.Axis = 1;
    A.Begin = Lo;
    A.End = Hi;
    const std::string Name =
        formatStr("%s.hslice%d", G->value(Piece.Id).Name.c_str(), Counter++);
    ValueId Out = G->addValue(Name + ".out", TensorShape{});
    NodeId N = G->addNode(OpKind::Slice, Name, A, {Piece.Id}, {Out});
    G->node(N).Dev = Dev;
    auto Err = inferNodeShapes(*G, N);
    PF_ASSERT(!Err, "slice shape inference failed");
    Parts.push_back(Out);
  }
  PF_ASSERT(!Parts.empty(), "range covered by no pieces");
  if (Parts.size() == 1)
    return Parts.front();

  // Concatenate along H.
  ConcatAttrs A;
  A.Axis = 1;
  const std::string Name = formatStr("hconcat%d", Counter++);
  ValueId Out = G->addValue(Name + ".out", TensorShape{});
  NodeId N = G->addNode(OpKind::Concat, Name, A, Parts, {Out});
  G->node(N).Dev = Dev;
  auto Err = inferNodeShapes(*G, N);
  PF_ASSERT(!Err, "concat shape inference failed");
  return Out;
}

std::vector<std::pair<int64_t, int64_t>> pf::splitRange(int64_t Total,
                                                        int64_t Parts) {
  PF_ASSERT(Parts >= 1 && Total >= Parts, "cannot split range");
  std::vector<std::pair<int64_t, int64_t>> Out;
  int64_t Begin = 0;
  for (int64_t P = 0; P < Parts; ++P) {
    const int64_t End = Total * (P + 1) / Parts;
    Out.emplace_back(Begin, End);
    Begin = End;
  }
  return Out;
}
