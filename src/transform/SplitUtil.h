//===- transform/SplitUtil.h - H-dimension splitting helpers ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the MD-DP and pipelining passes: computing which
/// input rows (and residual padding) a convolution needs to produce a range
/// of output rows, and materializing sub-range views of piecewise-produced
/// tensors with Slice/Concat nodes.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_TRANSFORM_SPLITUTIL_H
#define PIMFLOW_TRANSFORM_SPLITUTIL_H

#include <vector>

#include "ir/Graph.h"
#include "support/Diagnostics.h"

namespace pf {

/// Input requirement of a convolution computing output rows [OutBegin,
/// OutEnd): the input row range to read and the zero padding that survives
/// at the top/bottom of the part.
struct ConvInputReq {
  int64_t InBegin = 0;  ///< First input row needed (clamped to 0).
  int64_t InEnd = 0;    ///< One past the last input row needed (clamped).
  int64_t PadTop = 0;   ///< Zero padding remaining above the part.
  int64_t PadBottom = 0; ///< Zero padding remaining below the part.
};

/// Computes the input rows conv \p A over an input of height \p InH must
/// read to produce output rows [\p OutBegin, \p OutEnd).
///
/// Precondition: \p A is legal in the verifier's sense, in particular
/// pad < kernel. Under that precondition every non-empty output range reads
/// at least one real input row (verified by exhaustive enumeration in
/// SplitBoundaryTest); with pad >= kernel a part can land entirely inside
/// the zero padding, which this function rejects with an assert.
ConvInputReq convInputRowsFor(const Conv2dAttrs &A, int64_t InH,
                              int64_t OutBegin, int64_t OutEnd);

/// A tensor produced piecewise along the H axis: each piece covers rows
/// [Begin, End) of the logical tensor.
struct HPiece {
  int64_t Begin = 0;
  int64_t End = 0;
  ValueId Id = InvalidValue;
};

/// Verifies the piecewise-tensor invariants over \p Pieces: non-empty list,
/// every piece non-empty with a valid rank-4 value whose height matches,
/// sorted, contiguous from row 0, non-overlapping. Findings are reported
/// into \p DE (codes verify.piece-overlap / verify.piece-gap /
/// verify.dangling-value / verify.stale-shape); returns true when clean.
bool checkPieces(const Graph &G, const std::vector<HPiece> &Pieces,
                 DiagnosticEngine &DE);

/// A logical tensor assembled from H-pieces, with helpers to materialize
/// sub-ranges (inserting Slice/Concat nodes into \p G as needed). The
/// inserted nodes are H-axis data movement, which the memory optimizer
/// eliminates at code generation.
class PiecewiseTensor {
public:
  /// A single piece covering the whole tensor.
  PiecewiseTensor(Graph &G, ValueId Whole);

  /// An explicitly piecewise tensor; pieces must be sorted, contiguous from
  /// row 0, and non-overlapping.
  PiecewiseTensor(Graph &G, std::vector<HPiece> Pieces);

  /// Total height covered.
  int64_t height() const;

  /// Returns a value covering rows [Begin, End), emitting Slice/Concat
  /// nodes with device annotation \p Dev when a direct piece match is not
  /// available.
  ValueId range(int64_t Begin, int64_t End, Device Dev = Device::Gpu);

private:
  Graph *G;
  std::vector<HPiece> Pieces;
  int Counter = 0;
};

/// Splits [0, Total) into \p Parts nearly equal contiguous ranges.
std::vector<std::pair<int64_t, int64_t>> splitRange(int64_t Total,
                                                    int64_t Parts);

} // namespace pf

#endif // PIMFLOW_TRANSFORM_SPLITUTIL_H
