//===- transform/PatternMatch.cpp - Pipelining pattern matcher --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/PatternMatch.h"

#include "transform/PipelinePass.h"

using namespace pf;

const char *pf::pipelinePatternName(PipelinePattern P) {
  switch (P) {
  case PipelinePattern::PwDw:
    return "1x1-dw";
  case PipelinePattern::DwPw:
    return "dw-1x1";
  case PipelinePattern::PwDwPw:
    return "1x1-dw-1x1";
  }
  pf_unreachable("unknown pipeline pattern");
}

std::vector<NodeId> PipelineCandidate::convNodes(const Graph &G) const {
  std::vector<NodeId> Out;
  for (NodeId Id : Chain)
    if (G.node(Id).Kind == OpKind::Conv2d)
      Out.push_back(Id);
  return Out;
}

namespace {

bool isUnaryAct(OpKind Kind) {
  switch (Kind) {
  case OpKind::Relu:
  case OpKind::Relu6:
  case OpKind::Sigmoid:
  case OpKind::SiLU:
  case OpKind::Tanh:
  case OpKind::Gelu:
    return true;
  default:
    return false;
  }
}

bool isPointwiseConv(const Node &N) {
  return N.Kind == OpKind::Conv2d && N.conv().isPointwise();
}

/// Follows the single consumer of \p V, or returns InvalidNode when the
/// value fans out or dead-ends.
NodeId soleConsumer(const Graph &G, ValueId V) {
  const std::vector<NodeId> Users = G.consumers(V);
  return Users.size() == 1 ? Users.front() : InvalidNode;
}

/// Starting from conv node \p Anchor, tries to extend the chain through an
/// optional activation to the next conv. Returns the next conv's id (and
/// appends traversed nodes to \p Chain) or InvalidNode.
NodeId nextConv(const Graph &G, NodeId Anchor, std::vector<NodeId> &Chain) {
  NodeId Cur = soleConsumer(G, G.node(Anchor).Outputs[0]);
  if (Cur == InvalidNode)
    return InvalidNode;
  if (isUnaryAct(G.node(Cur).Kind)) {
    const NodeId Act = Cur;
    Cur = soleConsumer(G, G.node(Act).Outputs[0]);
    if (Cur == InvalidNode || G.node(Cur).Kind != OpKind::Conv2d)
      return InvalidNode;
    Chain.push_back(Act);
    Chain.push_back(Cur);
    return Cur;
  }
  if (G.node(Cur).Kind != OpKind::Conv2d)
    return InvalidNode;
  Chain.push_back(Cur);
  return Cur;
}

} // namespace

std::vector<PipelineCandidate> pf::findPipelineCandidates(const Graph &G) {
  std::vector<PipelineCandidate> Out;
  for (NodeId Anchor : G.topoOrder()) {
    const Node &N = G.node(Anchor);
    if (N.Kind != OpKind::Conv2d)
      continue;
    const bool AnchorPw = isPointwiseConv(N);
    const bool AnchorDw = isDepthwiseConv(N);
    if (!AnchorPw && !AnchorDw)
      continue;

    std::vector<NodeId> Chain = {Anchor};
    const NodeId Second = nextConv(G, Anchor, Chain);
    if (Second == InvalidNode)
      continue;

    if (AnchorPw && isDepthwiseConv(G.node(Second))) {
      // Try to extend to Type 3 (1x1-DW-1x1) first.
      std::vector<NodeId> Chain3 = Chain;
      const NodeId Third = nextConv(G, Second, Chain3);
      if (Third != InvalidNode && isPointwiseConv(G.node(Third)) &&
          isPipelineableChain(G, Chain3))
        Out.push_back(PipelineCandidate{Chain3, PipelinePattern::PwDwPw});
      if (isPipelineableChain(G, Chain))
        Out.push_back(PipelineCandidate{Chain, PipelinePattern::PwDw});
      continue;
    }
    if (AnchorDw && isPointwiseConv(G.node(Second)) &&
        isPipelineableChain(G, Chain))
      Out.push_back(PipelineCandidate{Chain, PipelinePattern::DwPw});
  }
  return Out;
}
