//===- transform/MdDpSplitPass.cpp - Multi-device data-parallel -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/MdDpSplitPass.h"

#include <cmath>

#include "ir/ShapeInference.h"
#include "support/Format.h"
#include "transform/SplitUtil.h"

using namespace pf;

namespace {

/// Emits a sub-convolution of \p Orig computing output rows [A, B) on
/// \p Dev, reading rows from \p Input (already sliced to Req's range).
ValueId emitConvPart(Graph &G, const Node &Orig, ValueId Input,
                     const ConvInputReq &Req, Device Dev, const char *Tag) {
  Conv2dAttrs Attrs = Orig.conv();
  Attrs.PadTop = Req.PadTop;
  Attrs.PadBottom = Req.PadBottom;
  std::vector<ValueId> Inputs = {Input, Orig.Inputs[1]};
  if (Orig.Inputs.size() > 2)
    Inputs.push_back(Orig.Inputs[2]); // Bias: shared by both parts.

  const std::string Name = formatStr("%s.%s", Orig.Name.c_str(), Tag);
  ValueId Out = G.addValue(Name + ".out", TensorShape{});
  NodeId N = G.addNode(OpKind::Conv2d, Name, Attrs, std::move(Inputs), {Out});
  G.node(N).Dev = Dev;
  auto Err = inferNodeShapes(G, N);
  PF_ASSERT(!Err, "conv part shape inference failed");
  return Out;
}

/// Emits `Slice(In, Axis, [Begin, End))` annotated with \p Dev.
ValueId emitSlice(Graph &G, ValueId In, int64_t Axis, int64_t Begin,
                  int64_t End, Device Dev, const char *Tag) {
  SliceAttrs A;
  A.Axis = Axis;
  A.Begin = Begin;
  A.End = End;
  const std::string Name =
      formatStr("%s.%s", G.value(In).Name.c_str(), Tag);
  ValueId Out = G.addValue(Name + ".out", TensorShape{});
  NodeId N = G.addNode(OpKind::Slice, Name, A, {In}, {Out});
  G.node(N).Dev = Dev;
  auto Err = inferNodeShapes(G, N);
  PF_ASSERT(!Err, "slice shape inference failed");
  return Out;
}

MdDpResult finishSplit(Graph &G, const Node &Orig, ValueId GpuOut,
                       ValueId PimOut, int64_t ConcatAxis) {
  const ValueId OrigOut = Orig.Outputs[0];
  const TensorShape OrigShape = G.value(OrigOut).Shape;
  G.removeNode(Orig.Id);

  ConcatAttrs A;
  A.Axis = ConcatAxis;
  const std::string Name = formatStr("%s.join", Orig.Name.c_str());
  NodeId Concat =
      G.addNode(OpKind::Concat, Name, A, {GpuOut, PimOut}, {OrigOut});
  G.node(Concat).Dev = Device::Gpu;
  auto Err = inferNodeShapes(G, Concat);
  PF_ASSERT(!Err, "join concat shape inference failed");
  PF_ASSERT(G.value(OrigOut).Shape == OrigShape,
            "MD-DP split changed the output shape");

  MdDpResult R;
  R.GpuPart = G.producer(GpuOut);
  R.PimPart = G.producer(PimOut);
  R.ConcatNode = Concat;
  return R;
}

std::optional<MdDpResult> splitConv(Graph &G, NodeId Id, double RatioGpu) {
  // Copy: node/value references would dangle across the insertions below.
  const Node N = G.node(Id);
  const TensorShape &OutShape = G.value(N.Outputs[0]).Shape;
  const int64_t Ho = OutShape.dim(1);
  const int64_t HGpu = llround(RatioGpu * static_cast<double>(Ho));
  if (HGpu <= 0) {
    G.node(Id).Dev = Device::Pim;
    return std::nullopt;
  }
  if (HGpu >= Ho) {
    G.node(Id).Dev = Device::Gpu;
    return std::nullopt;
  }

  const Conv2dAttrs Attrs = N.conv();
  const int64_t InH = G.value(N.Inputs[0]).Shape.dim(1);
  PiecewiseTensor Input(G, N.Inputs[0]);

  const ConvInputReq ReqGpu = convInputRowsFor(Attrs, InH, 0, HGpu);
  const ConvInputReq ReqPim = convInputRowsFor(Attrs, InH, HGpu, Ho);
  // Note: the two input slices overlap by KernelH - StrideH rows; with the
  // memory optimizer both are zero-copy views.
  ValueId GpuIn = Input.range(ReqGpu.InBegin, ReqGpu.InEnd, Device::Gpu);
  ValueId PimIn = Input.range(ReqPim.InBegin, ReqPim.InEnd, Device::Gpu);
  ValueId GpuOut = emitConvPart(G, N, GpuIn, ReqGpu, Device::Gpu, "gpu");
  ValueId PimOut = emitConvPart(G, N, PimIn, ReqPim, Device::Pim, "pim");
  return finishSplit(G, N, GpuOut, PimOut, /*ConcatAxis=*/1);
}

/// Emits a sub-Gemm on \p Dev over the given operand views.
ValueId emitGemmPart(Graph &G, const Node &Orig, ValueId X, ValueId W,
                     std::optional<ValueId> Bias, Device Dev,
                     const char *Tag) {
  GemmAttrs A = Orig.gemm();
  std::vector<ValueId> Inputs = {X, W};
  if (Bias)
    Inputs.push_back(*Bias);
  A.HasBias = Bias.has_value();
  const std::string Name = formatStr("%s.%s", Orig.Name.c_str(), Tag);
  ValueId Out = G.addValue(Name + ".out", TensorShape{});
  NodeId N = G.addNode(OpKind::Gemm, Name, A, std::move(Inputs), {Out});
  G.node(N).Dev = Dev;
  auto Err = inferNodeShapes(G, N);
  PF_ASSERT(!Err, "gemm part shape inference failed");
  return Out;
}

std::optional<MdDpResult> splitGemm(Graph &G, NodeId Id, double RatioGpu) {
  const Node N = G.node(Id);
  const TensorShape &WShape = G.value(N.Inputs[1]).Shape;
  const int64_t M = WShape.dim(1);
  const bool HasBias = N.Inputs.size() > 2;

  // FC layers split along the output-feature axis, slicing the
  // (compile-time prepared) weight matrix and bias: memory-bound FC time
  // is dominated by weight traffic, so unlike a batch-row split this
  // shrinks each device's share of the weight stream.
  const int64_t MGpu = llround(RatioGpu * static_cast<double>(M));
  if (MGpu <= 0) {
    G.node(Id).Dev = Device::Pim;
    return std::nullopt;
  }
  if (MGpu >= M) {
    G.node(Id).Dev = Device::Gpu;
    return std::nullopt;
  }
  ValueId WGpu = emitSlice(G, N.Inputs[1], /*Axis=*/1, 0, MGpu, Device::Gpu,
                           "w.gpu");
  ValueId WPim = emitSlice(G, N.Inputs[1], /*Axis=*/1, MGpu, M, Device::Gpu,
                           "w.pim");
  std::optional<ValueId> BiasGpu, BiasPim;
  if (HasBias) {
    BiasGpu = emitSlice(G, N.Inputs[2], /*Axis=*/0, 0, MGpu, Device::Gpu,
                        "b.gpu");
    BiasPim = emitSlice(G, N.Inputs[2], /*Axis=*/0, MGpu, M, Device::Gpu,
                        "b.pim");
  }
  ValueId GpuOut =
      emitGemmPart(G, N, N.Inputs[0], WGpu, BiasGpu, Device::Gpu, "gpu");
  ValueId PimOut =
      emitGemmPart(G, N, N.Inputs[0], WPim, BiasPim, Device::Pim, "pim");
  return finishSplit(G, N, GpuOut, PimOut, /*ConcatAxis=*/1);
}

} // namespace

std::optional<MdDpResult> pf::applyMdDpSplit(Graph &G, NodeId Id,
                                             double RatioGpu) {
  const Node &N = G.node(Id);
  PF_ASSERT(!N.Dead, "splitting a dead node");
  PF_ASSERT(isPimCandidate(N), "MD-DP split target must be a PIM candidate");
  PF_ASSERT(RatioGpu >= 0.0 && RatioGpu <= 1.0, "ratio out of range");
  if (N.Kind == OpKind::Conv2d)
    return splitConv(G, Id, RatioGpu);
  return splitGemm(G, Id, RatioGpu);
}
