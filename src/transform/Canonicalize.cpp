//===- transform/Canonicalize.cpp - Graph cleanup passes --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Canonicalize.h"

#include <algorithm>
#include <unordered_set>

using namespace pf;

namespace {

/// True if any of \p N's outputs is a graph output.
bool producesGraphOutput(const Graph &G, const Node &N) {
  for (ValueId Out : N.Outputs)
    for (ValueId GOut : G.graphOutputs())
      if (Out == GOut)
        return true;
  return false;
}

/// Rewrites every live node input equal to \p From to \p To. Returns the
/// number of uses rewritten.
int replaceUses(Graph &G, ValueId From, ValueId To) {
  int Rewritten = 0;
  for (NodeId Id : G.topoOrder()) {
    Node &N = G.node(Id);
    for (ValueId &In : N.Inputs)
      if (In == From) {
        In = To;
        ++Rewritten;
      }
  }
  return Rewritten;
}

} // namespace

int pf::eliminateDeadNodes(Graph &G) {
  int Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Collect all values consumed by live nodes.
    std::unordered_set<ValueId> Consumed;
    for (const Node &N : G.nodes()) {
      if (N.Dead)
        continue;
      for (ValueId In : N.Inputs)
        Consumed.insert(In);
    }
    for (const Node &N : G.nodes()) {
      if (N.Dead || producesGraphOutput(G, N))
        continue;
      bool Used = false;
      for (ValueId Out : N.Outputs)
        Used |= Consumed.count(Out) > 0;
      if (!Used) {
        G.removeNode(N.Id);
        ++Removed;
        Changed = true;
      }
    }
  }
  return Removed;
}

int pf::foldIdentities(Graph &G) {
  int Folded = 0;
  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    if (N.Kind != OpKind::Identity || producesGraphOutput(G, N))
      continue;
    replaceUses(G, N.Outputs[0], N.Inputs[0]);
    G.removeNode(Id);
    ++Folded;
  }
  return Folded;
}

int pf::cancelSliceOfConcat(Graph &G) {
  int Cancelled = 0;
  for (NodeId Id : G.topoOrder()) {
    const Node &N = G.node(Id);
    if (N.Kind != OpKind::Slice || producesGraphOutput(G, N))
      continue;
    const NodeId ProducerId = G.producer(N.Inputs[0]);
    if (ProducerId == InvalidNode)
      continue;
    const Node &Producer = G.node(ProducerId);
    if (Producer.Kind != OpKind::Concat)
      continue;
    const SliceAttrs &SA = std::get<SliceAttrs>(N.Attrs);
    const ConcatAttrs &CA = std::get<ConcatAttrs>(Producer.Attrs);
    if (SA.Axis != CA.Axis)
      continue;
    // Find a concat operand whose extent matches the slice range exactly.
    int64_t Offset = 0;
    ValueId Match = InvalidValue;
    for (ValueId OpId : Producer.Inputs) {
      const int64_t Extent = G.value(OpId).Shape.dim(CA.Axis);
      if (Offset == SA.Begin && Offset + Extent == SA.End) {
        Match = OpId;
        break;
      }
      Offset += Extent;
    }
    if (Match == InvalidValue)
      continue;
    replaceUses(G, N.Outputs[0], Match);
    G.removeNode(Id);
    ++Cancelled;
  }
  return Cancelled;
}

CanonicalizeStats pf::canonicalize(Graph &G) {
  CanonicalizeStats Stats;
  bool Changed = true;
  while (Changed) {
    const int Folded = foldIdentities(G);
    const int Cancelled = cancelSliceOfConcat(G);
    const int Removed = eliminateDeadNodes(G);
    Stats.IdentitiesFolded += Folded;
    Stats.SlicesCancelled += Cancelled;
    Stats.DeadNodesRemoved += Removed;
    Changed = Folded + Cancelled + Removed > 0;
  }
  return Stats;
}
