//===- serve/LoadGen.h - Deterministic closed-loop load generator -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seeded request stream behind `pimflow serve` (docs/INTERNALS.md
/// section 13). A `LoadSpec` is parsed from the `--requests=` grammar:
///
///   count:<N>,seed:<S>,mean-gap-us:<G>,batch:<B1|B2|...>,deadline-us:<D>
///
/// e.g. `count:24,seed:7,mean-gap-us:150,batch:1|2|4`. Every field is
/// optional; unknown keys are serve.bad-spec diagnostics. Generation is
/// the determinism contract the serve tests pin down: one `pf::Rng`
/// seeded with `seed`, drawing per request (in request-id order) the
/// inter-arrival gap (exponential with mean `mean-gap-us`, truncated to
/// whole nanoseconds), the model (uniform over the serve model list, in
/// CLI order), and the batch size (uniform over the `batch` list, in
/// spec order). The stream therefore depends only on the spec and the
/// model-list order — never on thread count, wall clock, or platform
/// libm quirks (the exponential uses a fixed log() of a 53-bit uniform,
/// which is exactly reproducible under IEEE-754).
///
/// `deadline-us` is a *fixed* per-request latency budget (0 = none, the
/// default) stamped onto every request. It deliberately consumes no Rng
/// draw: adding a deadline must not shift the gap/model/batch stream of
/// an existing seed, or every golden summary would move.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SERVE_LOADGEN_H
#define PIMFLOW_SERVE_LOADGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/Diagnostics.h"

namespace pf::serve {

/// Parsed `--requests=` spec.
struct LoadSpec {
  int Count = 32;
  uint64_t Seed = 1;
  double MeanGapUs = 200.0;
  /// Candidate batch sizes, drawn uniformly per request.
  std::vector<int> Batches = {1};
  /// Per-request latency budget in microseconds (0 = no deadline). The
  /// serve loop sheds a request whose deadline passes while it queues and
  /// classifies late completions (serve.deadline.* counters).
  int64_t DeadlineUs = 0;

  /// Parses the spec grammar above. Returns false and serve.bad-spec
  /// diagnostics in \p DE on malformed input; an empty spec is the
  /// defaults.
  static bool parse(const std::string &Spec, LoadSpec &Out,
                    DiagnosticEngine &DE);
};

/// One generated inference request.
struct Request {
  int Id = 0;        ///< dense [0, Count), also the arrival tie-break
  int ModelIdx = 0;  ///< index into the serve model list
  int Batch = 1;
  int64_t ArrivalNs = 0;  ///< virtual arrival time
  int64_t DeadlineNs = 0; ///< latency budget relative to arrival (0 = none)
};

/// Expands \p Spec into its request stream over \p NumModels models
/// (> 0). Deterministic in (Spec, NumModels); arrival times are
/// non-decreasing and ids are dense in arrival order.
std::vector<Request> generateRequests(const LoadSpec &Spec, int NumModels);

} // namespace pf::serve

#endif // PIMFLOW_SERVE_LOADGEN_H
