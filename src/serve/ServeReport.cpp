//===- serve/ServeReport.cpp - Serve-mode perf report ---------------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeReport.h"

#include "obs/PerfReport.h"
#include "support/Format.h"

using namespace pf;
using namespace pf::serve;

std::string pf::serve::renderServeReport(const ServeResult &R) {
  obs::JsonWriter W;
  W.beginObject();
  W.field("schema_version", obs::PerfReportSchemaVersion);
  W.field("kind", "pimflow-serve-report");
  W.field("policy", R.PolicyName);
  W.key("models").beginArray();
  for (const std::string &Name : R.ModelNames)
    W.value(Name);
  W.endArray();

  W.key("config")
      .beginObject()
      .field("planned_channels", R.PlannedChannels)
      .field("channel_pool", R.PoolChannels)
      .field("floor", R.Floor)
      .field("max_inflight", R.MaxInflight)
      .field("max_queue", R.MaxQueue)
      .field("seed", static_cast<int64_t>(R.Seed))
      .field("default_deadline_us", R.DefaultDeadlineUs)
      .field("retry_budget", R.RetryBudget)
      .field("breaker_threshold", R.BreakerThreshold)
      .field("breaker_cooldown_us", R.BreakerCooldownUs)
      .field("faults", R.FaultSummary)
      .field("trace_sample", R.SamplePolicy)
      .endObject();

  W.key("outcomes")
      .beginObject()
      .field("requests", static_cast<int64_t>(R.Sessions.size()))
      .field("served", R.Served)
      .field("degraded", R.Degraded)
      .field("floor_fallbacks", R.FloorFallbacks)
      .field("shed", R.Shed)
      .endObject();

  W.key("shed_reasons")
      .beginObject()
      .field("queue_full", R.ShedQueueFull)
      .field("deadline_expired", R.ShedDeadline)
      .endObject();
  W.key("floor_reasons")
      .beginObject()
      .field("below_floor", R.FloorBelowFloor)
      .field("retry_budget", R.FloorRetryBudget)
      .endObject();
  W.key("deadlines")
      .beginObject()
      .field("met", R.DeadlineMet)
      .field("missed_run", R.DeadlineMissedRun)
      .field("expired_queued", R.DeadlineExpiredQueued)
      .endObject();
  W.key("resilience")
      .beginObject()
      .field("fault_interrupts", R.FaultInterrupts)
      .field("retries_used", R.RetriesUsed)
      .field("retry_budget_denied", R.RetryBudgetDenied)
      .field("breaker_trips", R.BreakerTrips)
      .field("breaker_probes", R.BreakerProbes)
      .field("breaker_readmits", R.BreakerReadmits)
      .field("channel_recoveries", R.ChannelRecoveries)
      .endObject();

  // Exact nearest-rank percentiles (integer virtual ns), as opposed to
  // the bounded-error quantiles of the serve.* HDR histograms below.
  W.key("request_latency_ns")
      .beginObject()
      .field("p50", R.LatencyP50Ns)
      .field("p99", R.LatencyP99Ns)
      .field("max", R.LatencyMaxNs)
      .endObject();
  W.key("queue_delay_ns")
      .beginObject()
      .field("p50", R.QueueDelayP50Ns)
      .field("p99", R.QueueDelayP99Ns)
      .endObject();
  W.field("total_energy_j", R.TotalEnergyJ);

  // The --trace-sample selection (docs/INTERNALS.md section 15): these
  // ids carry segments below and lanes in the request trace.
  W.key("sampled_requests").beginArray();
  for (int Id : R.SampledRequests)
    W.value(Id);
  W.endArray();

  W.key("requests").beginArray();
  for (const auto &SP : R.Sessions) {
    const Session &S = *SP;
    W.beginObject()
        .field("id", S.Req.Id)
        .field("trace_id", formatTraceId(S.TraceId))
        .field("model",
               R.ModelNames[static_cast<size_t>(S.Req.ModelIdx)])
        .field("batch", S.Req.Batch)
        .field("outcome", outcomeName(S.Outcome))
        .field("reason", outcomeReasonName(S.Reason))
        .field("deadline", deadlineStateName(S.deadlineState()))
        .field("retries", S.Retries)
        .field("interrupts", S.Interrupts)
        .field("sampled", S.Sampled)
        .field("channels_granted", S.channelsGranted())
        .field("channels_wanted", S.ChannelsWanted)
        .field("arrival_ns", S.Req.ArrivalNs)
        .field("start_ns", S.StartNs)
        .field("end_ns", S.EndNs);
    if (S.Sampled) {
      // Virtual-time segment list, one queue segment plus one per
      // attempt — the substrate `pimflow report --request=` renders.
      W.key("segments").beginArray();
      W.beginObject()
          .field("kind", "queue")
          .field("start_ns", S.Req.ArrivalNs)
          .field("end_ns", S.ran() ? S.StartNs : S.EndNs)
          .endObject();
      for (size_t A = 0; A < S.Attempts.size(); ++A) {
        const ExecAttempt &At = S.Attempts[A];
        W.beginObject()
            .field("kind", A == 0 ? "exec" : "retry")
            .field("start_ns", At.StartNs)
            .field("end_ns", At.EndNs)
            .field("granted", static_cast<int>(At.Channels.size()));
        W.key("channels").beginArray();
        for (int Ch : At.Channels)
          W.value(Ch);
        W.endArray();
        W.field("outcome", outcomeName(At.Outcome))
            .field("reason", outcomeReasonName(At.Reason))
            .field("interrupted", At.Interrupted);
        if (At.OutageId >= 0)
          W.field("outage", At.OutageId);
        W.field("unit_gpu_busy_ns", At.UnitGpuBusyNs)
            .field("unit_pim_busy_ns", At.UnitPimBusyNs)
            .endObject();
      }
      W.endArray();
    }
    W.endObject();
  }
  W.endArray();

  // The shared counters/metrics sections from the active scope (where
  // Server::run recorded the serve.* families).
  obs::emitObsSections(W);

  W.endObject();
  return W.take();
}

bool pf::serve::writeServeReport(const ServeResult &R,
                                 const std::string &Path) {
  return obs::writeTextFile(Path, renderServeReport(R));
}

//===----------------------------------------------------------------------===//
// pimflow report --request=<id>
//===----------------------------------------------------------------------===//

namespace {

std::string stringOr(const obs::JsonValue &V, const std::string &Key,
                     const std::string &Default) {
  const obs::JsonValue *M = V.find(Key);
  return M && M->isString() ? M->Str : Default;
}

bool boolOr(const obs::JsonValue &V, const std::string &Key, bool Default) {
  const obs::JsonValue *M = V.find(Key);
  return M && M->K == obs::JsonValue::Kind::Bool ? M->Boolean : Default;
}

int64_t intOr(const obs::JsonValue &V, const std::string &Key,
              int64_t Default) {
  return static_cast<int64_t>(
      V.numberOr(Key, static_cast<double>(Default)));
}

/// "0+1+2" from a segment's channels array; "gpu-floor" when empty.
std::string segmentChannels(const obs::JsonValue &Seg) {
  const obs::JsonValue *Ch = Seg.find("channels");
  if (!Ch || !Ch->isArray() || Ch->Array.empty())
    return "gpu-floor";
  std::string Out;
  for (size_t I = 0; I < Ch->Array.size(); ++I) {
    if (I)
      Out += '+';
    Out += formatStr("%d", static_cast<int>(Ch->Array[I].Number));
  }
  return Out;
}

} // namespace

std::string pf::serve::renderServeRequestText(const obs::JsonValue &Report,
                                              int RequestId,
                                              std::string *Error) {
  auto Fail = [Error](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return std::string();
  };
  if (stringOr(Report, "kind", "") != "pimflow-serve-report")
    return Fail("not a pimflow-serve-report document (run `pimflow serve "
                "--perf-report=<path>` to produce one)");
  const obs::JsonValue *Reqs = Report.find("requests");
  if (!Reqs || !Reqs->isArray())
    return Fail("report has no requests array");
  const obs::JsonValue *Row = nullptr;
  for (const obs::JsonValue &V : Reqs->Array)
    if (V.isObject() && intOr(V, "id", -1) == RequestId) {
      Row = &V;
      break;
    }
  if (!Row)
    return Fail(formatStr("request %d is not in the report (%d requests)",
                          RequestId, static_cast<int>(Reqs->Array.size())));
  const obs::JsonValue *Segs = Row->find("segments");
  if (!boolOr(*Row, "sampled", false) || !Segs || !Segs->isArray()) {
    std::string Policy = "?";
    if (const obs::JsonValue *Config = Report.find("config"))
      Policy = stringOr(*Config, "trace_sample", Policy);
    return Fail(formatStr(
        "request %d was not sampled under --trace-sample=%s; rerun serve "
        "with --trace-sample=all (or a tail policy covering it)",
        RequestId, Policy.c_str()));
  }

  const int64_t ArrivalNs = intOr(*Row, "arrival_ns", 0);
  const int64_t StartNs = intOr(*Row, "start_ns", 0);
  const int64_t EndNs = intOr(*Row, "end_ns", 0);
  const bool Ran = stringOr(*Row, "outcome", "") != "shed";

  std::string Out;
  Out += formatStr("serve request %d  trace %s\n", RequestId,
                   stringOr(*Row, "trace_id", "?").c_str());
  Out += formatStr("  model    %s  batch %d\n",
                   stringOr(*Row, "model", "?").c_str(),
                   static_cast<int>(intOr(*Row, "batch", 0)));
  Out += formatStr("  outcome  %s (%s)  deadline %s  retries %d  "
                   "interrupts %d\n",
                   stringOr(*Row, "outcome", "?").c_str(),
                   stringOr(*Row, "reason", "?").c_str(),
                   stringOr(*Row, "deadline", "?").c_str(),
                   static_cast<int>(intOr(*Row, "retries", 0)),
                   static_cast<int>(intOr(*Row, "interrupts", 0)));

  for (const obs::JsonValue &Seg : Segs->Array) {
    if (!Seg.isObject())
      continue;
    const std::string Kind = stringOr(Seg, "kind", "?");
    const int64_t S = intOr(Seg, "start_ns", 0);
    const int64_t E = intOr(Seg, "end_ns", 0);
    if (Kind == "queue") {
      Out += formatStr("  %-10s [%12lld .. %12lld]  %10lld ns\n",
                       "queue-wait", static_cast<long long>(S),
                       static_cast<long long>(E),
                       static_cast<long long>(E - S));
      continue;
    }
    std::string Line = formatStr(
        "  %-10s [%12lld .. %12lld]  %10lld ns  grant %s", Kind.c_str(),
        static_cast<long long>(S), static_cast<long long>(E),
        static_cast<long long>(E - S), segmentChannels(Seg).c_str());
    if (boolOr(Seg, "interrupted", false))
      Line += formatStr("  interrupted by outage %d",
                        static_cast<int>(intOr(Seg, "outage", -1)));
    else
      Line += formatStr("  exec-phase gpu %.0f ns / pim %.0f ns",
                        Seg.numberOr("unit_gpu_busy_ns", 0.0),
                        Seg.numberOr("unit_pim_busy_ns", 0.0));
    Out += Line + "\n";
  }

  const int64_t QueueNs = (Ran ? StartNs : EndNs) - ArrivalNs;
  if (Ran)
    Out += formatStr("  latency  %lld ns = queue-wait %lld + service %lld\n",
                     static_cast<long long>(EndNs - ArrivalNs),
                     static_cast<long long>(QueueNs),
                     static_cast<long long>(EndNs - StartNs));
  else
    Out += formatStr("  shed after %lld ns in queue (%s)\n",
                     static_cast<long long>(QueueNs),
                     stringOr(*Row, "reason", "?").c_str());
  return Out;
}
