//===- serve/ServeReport.cpp - Serve-mode perf report ---------------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/ServeReport.h"

#include "obs/PerfReport.h"

using namespace pf;
using namespace pf::serve;

std::string pf::serve::renderServeReport(const ServeResult &R) {
  obs::JsonWriter W;
  W.beginObject();
  W.field("schema_version", obs::PerfReportSchemaVersion);
  W.field("kind", "pimflow-serve-report");
  W.field("policy", R.PolicyName);
  W.key("models").beginArray();
  for (const std::string &Name : R.ModelNames)
    W.value(Name);
  W.endArray();

  W.key("config")
      .beginObject()
      .field("planned_channels", R.PlannedChannels)
      .field("channel_pool", R.PoolChannels)
      .field("floor", R.Floor)
      .field("max_inflight", R.MaxInflight)
      .field("max_queue", R.MaxQueue)
      .field("seed", static_cast<int64_t>(R.Seed))
      .field("default_deadline_us", R.DefaultDeadlineUs)
      .field("retry_budget", R.RetryBudget)
      .field("breaker_threshold", R.BreakerThreshold)
      .field("breaker_cooldown_us", R.BreakerCooldownUs)
      .field("faults", R.FaultSummary)
      .endObject();

  W.key("outcomes")
      .beginObject()
      .field("requests", static_cast<int64_t>(R.Sessions.size()))
      .field("served", R.Served)
      .field("degraded", R.Degraded)
      .field("floor_fallbacks", R.FloorFallbacks)
      .field("shed", R.Shed)
      .endObject();

  W.key("shed_reasons")
      .beginObject()
      .field("queue_full", R.ShedQueueFull)
      .field("deadline_expired", R.ShedDeadline)
      .endObject();
  W.key("floor_reasons")
      .beginObject()
      .field("below_floor", R.FloorBelowFloor)
      .field("retry_budget", R.FloorRetryBudget)
      .endObject();
  W.key("deadlines")
      .beginObject()
      .field("met", R.DeadlineMet)
      .field("missed_run", R.DeadlineMissedRun)
      .field("expired_queued", R.DeadlineExpiredQueued)
      .endObject();
  W.key("resilience")
      .beginObject()
      .field("fault_interrupts", R.FaultInterrupts)
      .field("retries_used", R.RetriesUsed)
      .field("retry_budget_denied", R.RetryBudgetDenied)
      .field("breaker_trips", R.BreakerTrips)
      .field("breaker_probes", R.BreakerProbes)
      .field("breaker_readmits", R.BreakerReadmits)
      .field("channel_recoveries", R.ChannelRecoveries)
      .endObject();

  // Exact nearest-rank percentiles (integer virtual ns), as opposed to
  // the bounded-error quantiles of the serve.* HDR histograms below.
  W.key("request_latency_ns")
      .beginObject()
      .field("p50", R.LatencyP50Ns)
      .field("p99", R.LatencyP99Ns)
      .field("max", R.LatencyMaxNs)
      .endObject();
  W.key("queue_delay_ns")
      .beginObject()
      .field("p50", R.QueueDelayP50Ns)
      .field("p99", R.QueueDelayP99Ns)
      .endObject();
  W.field("total_energy_j", R.TotalEnergyJ);

  W.key("requests").beginArray();
  for (const auto &SP : R.Sessions) {
    const Session &S = *SP;
    W.beginObject()
        .field("id", S.Req.Id)
        .field("model",
               R.ModelNames[static_cast<size_t>(S.Req.ModelIdx)])
        .field("batch", S.Req.Batch)
        .field("outcome", outcomeName(S.Outcome))
        .field("reason", outcomeReasonName(S.Reason))
        .field("deadline", deadlineStateName(S.deadlineState()))
        .field("retries", S.Retries)
        .field("channels_granted", S.channelsGranted())
        .field("channels_wanted", S.ChannelsWanted)
        .field("arrival_ns", S.Req.ArrivalNs)
        .field("start_ns", S.StartNs)
        .field("end_ns", S.EndNs)
        .endObject();
  }
  W.endArray();

  // The shared schema-v3 sections: counters and metrics from the active
  // scope (where Server::run recorded the serve.* families).
  obs::emitObsSections(W);

  W.endObject();
  return W.take();
}

bool pf::serve::writeServeReport(const ServeResult &R,
                                 const std::string &Path) {
  return obs::writeTextFile(Path, renderServeReport(R));
}
