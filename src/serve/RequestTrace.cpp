//===- serve/RequestTrace.cpp - Per-request tracing and sampling ----------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Trace-id derivation, the --trace-sample policy, the deterministic tail
// sampler, and Server::renderTrace — the serve-side Chrome trace exporter
// (docs/INTERNALS.md section 15). Everything here consumes only
// virtual-time session records, so the rendered document is byte-identical
// for every --jobs=N.
//
//===----------------------------------------------------------------------===//

#include "serve/RequestTrace.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/Json.h"
#include "serve/Server.h"
#include "support/Format.h"
#include "support/StringUtil.h"

using namespace pf;
using namespace pf::serve;

uint64_t pf::serve::requestTraceId(uint64_t Seed, int RequestId) {
  // FNV-1a 64 over the little-endian bytes of (seed, id) — the same hash
  // family the plan cache keys with, picked for stability rather than
  // strength: the id only has to be reproducible and well-spread.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xFFu;
      H *= 1099511628211ull;
    }
  };
  Mix(Seed);
  Mix(static_cast<uint64_t>(static_cast<int64_t>(RequestId)));
  return H;
}

std::string pf::serve::formatTraceId(uint64_t TraceId) {
  return formatStr("%016llx", static_cast<unsigned long long>(TraceId));
}

bool TraceSamplePolicy::parse(const std::string &Spec, TraceSamplePolicy &Out,
                              DiagnosticEngine &DE) {
  if (Spec == "all") {
    Out.K = Kind::All;
    return true;
  }
  if (Spec == "tail") {
    Out.K = Kind::Tail;
    Out.SlowestK = 8;
    return true;
  }
  if (startsWith(Spec, "tail:")) {
    auto N = parseInt(Spec.substr(5));
    if (N && *N >= 0 && *N <= 1000000) {
      Out.K = Kind::Tail;
      Out.SlowestK = static_cast<int>(*N);
      return true;
    }
  }
  DE.error(DiagCode::ServeBadSpec, Spec,
           "trace-sample policy must be 'all', 'tail', or 'tail:<K>' with "
           "K in [0, 1000000]");
  return false;
}

std::string TraceSamplePolicy::describe() const {
  return K == Kind::All ? "all" : formatStr("tail:%d", SlowestK);
}

std::vector<int> pf::serve::sampleRequests(const ServeResult &R,
                                           const TraceSamplePolicy &P) {
  const int N = static_cast<int>(R.Sessions.size());
  std::vector<int> Out;
  if (P.K == TraceSamplePolicy::Kind::All) {
    Out.resize(N);
    std::iota(Out.begin(), Out.end(), 0);
    return Out;
  }

  std::vector<char> Mark(static_cast<size_t>(N), 0);
  // (latency, id) of the completed requests, for the slowest-K cutoff.
  std::vector<std::pair<int64_t, int>> Completed;
  Completed.reserve(static_cast<size_t>(N));
  for (int Id = 0; Id < N; ++Id) {
    const Session &S = *R.Sessions[Id];
    if (!S.ran()) {
      Mark[Id] = 1; // shed (queue-full or queue-expired)
      continue;
    }
    if (S.deadlineState() == DeadlineState::MissedRun)
      Mark[Id] = 1;
    if (S.Interrupts > 0 || S.Retries > 0 ||
        S.Reason == OutcomeReason::FaultRetry ||
        S.Reason == OutcomeReason::RetryBudget)
      Mark[Id] = 1; // faulted
    Completed.emplace_back(S.latencyNs(), Id);
  }
  std::sort(Completed.begin(), Completed.end(),
            [](const std::pair<int64_t, int> &A,
               const std::pair<int64_t, int> &B) {
              if (A.first != B.first)
                return A.first > B.first; // slowest first
              return A.second < B.second; // ties toward the lower id
            });
  for (size_t I = 0;
       I < Completed.size() && I < static_cast<size_t>(P.SlowestK); ++I)
    Mark[Completed[I].second] = 1;

  for (int Id = 0; Id < N; ++Id)
    if (Mark[Id])
      Out.push_back(Id);
  return Out;
}

//===----------------------------------------------------------------------===//
// Chrome trace rendering
//===----------------------------------------------------------------------===//

namespace {

using obs::JsonWriter;

/// Serve-trace process lanes; compile/execution exports own pids 1/2
/// (obs/ChromeTrace.cpp), so the serve document is mergeable with them.
constexpr int RequestPid = 3;
constexpr int ChannelPid = 4;

/// Node-level exec-phase span budget per attempt: past it, only replay 0
/// is emitted and the span notes how many replays were elided.
constexpr int MaxPhaseSpans = 512;

double usOf(int64_t Ns) { return static_cast<double>(Ns) / 1000.0; }
double usOf(double Ns) { return Ns / 1000.0; }

/// Flow-event id linking a request-lane attempt to its channel lane.
int64_t flowId(int ReqId, size_t Attempt) {
  return (static_cast<int64_t>(ReqId) << 8) |
         static_cast<int64_t>(Attempt & 0xFFu);
}

void emitProcessName(JsonWriter &W, int Pid, const std::string &Name) {
  W.beginObject()
      .field("name", "process_name")
      .field("ph", "M")
      .field("pid", Pid)
      .field("tid", 0)
      .key("args")
      .beginObject()
      .field("name", Name)
      .endObject()
      .endObject();
}

void emitThreadName(JsonWriter &W, int Pid, int Tid,
                    const std::string &Name) {
  W.beginObject()
      .field("name", "thread_name")
      .field("ph", "M")
      .field("pid", Pid)
      .field("tid", Tid)
      .key("args")
      .beginObject()
      .field("name", Name)
      .endObject()
      .endObject();
}

/// Opens a trace event object through its common fields; the caller adds
/// ts / dur / args and closes it.
JsonWriter &openEvent(JsonWriter &W, const char *Ph, const std::string &Name,
                      const char *Cat, int Pid, int Tid) {
  return W.beginObject()
      .field("name", Name)
      .field("cat", Cat)
      .field("ph", Ph)
      .field("pid", Pid)
      .field("tid", Tid);
}

void emitInstant(JsonWriter &W, const std::string &Name, const char *Cat,
                 int Pid, int Tid, int64_t Ns,
                 const std::vector<std::pair<std::string, std::string>> &Args) {
  openEvent(W, "i", Name, Cat, Pid, Tid).field("ts", usOf(Ns)).field("s", "t");
  W.key("args").beginObject();
  for (const auto &KV : Args)
    W.field(KV.first, KV.second);
  W.endObject().endObject();
}

/// "0+1+2" for a grant, "gpu-floor" for an empty one.
std::string channelsLabel(const std::vector<int> &Channels) {
  if (Channels.empty())
    return "gpu-floor";
  std::string Out;
  for (size_t I = 0; I < Channels.size(); ++I) {
    if (I)
      Out += '+';
    Out += formatStr("%d", Channels[I]);
  }
  return Out;
}

} // namespace

std::string Server::renderTrace(const ServeResult &R) const {
  JsonWriter W;
  W.beginObject().key("traceEvents").beginArray();

  emitProcessName(W, RequestPid, "pimflow serve: requests (virtual time)");
  emitProcessName(W, ChannelPid, "pimflow serve: channels (virtual time)");
  for (int Ch = 0; Ch < Pool; ++Ch)
    emitThreadName(W, ChannelPid, Ch, formatStr("PIM ch %d", Ch));
  emitThreadName(W, ChannelPid, Pool, "GPU floor");

  // --- pid 3: one lane per sampled request -------------------------------
  for (int Id : R.SampledRequests) {
    const Session &S = *R.Sessions[static_cast<size_t>(Id)];
    emitThreadName(W, RequestPid, Id,
                   formatStr("req %d [%s]", Id,
                             formatTraceId(S.TraceId).c_str()));

    // Root span: arrival to completion (or to the shed instant).
    openEvent(W, "B", "request", "serve.request", RequestPid, Id)
        .field("ts", usOf(S.Req.ArrivalNs))
        .key("args")
        .beginObject()
        .field("request", Id)
        .field("trace_id", formatTraceId(S.TraceId))
        .field("model", R.ModelNames[static_cast<size_t>(S.Req.ModelIdx)])
        .field("batch", S.Req.Batch)
        .field("outcome", outcomeName(S.Outcome))
        .field("reason", outcomeReasonName(S.Reason))
        .field("deadline", deadlineStateName(S.deadlineState()))
        .field("retries", S.Retries)
        .field("interrupts", S.Interrupts)
        .endObject()
        .endObject();

    // Queue span: arrival to admission for a ran request, arrival to the
    // shed instant otherwise. Zero-length when admitted on arrival.
    const int64_t QueueEndNs = S.ran() ? S.StartNs : S.EndNs;
    openEvent(W, "B", "queue", "serve.queue", RequestPid, Id)
        .field("ts", usOf(S.Req.ArrivalNs))
        .endObject();
    openEvent(W, "E", "queue", "serve.queue", RequestPid, Id)
        .field("ts", usOf(QueueEndNs))
        .endObject();

    if (!S.ran())
      emitInstant(W, "shed", "serve.shed", RequestPid, Id, S.EndNs,
                  {{"reason", outcomeReasonName(S.Reason)}});

    for (size_t A = 0; A < S.Attempts.size(); ++A) {
      const ExecAttempt &At = S.Attempts[A];
      const bool Final = A + 1 == S.Attempts.size();
      const std::string Name = A == 0 ? "exec" : "retry";

      // Phase spans replay the attempt's priced unit timeline; only the
      // final, uninterrupted attempt earns them (earlier ones were cut).
      const Timeline *TL = nullptr;
      int Replays = 0;
      int Elided = 0;
      if (Final && !At.Interrupted) {
        TL = unitTimeline(S.Req.ModelIdx,
                          static_cast<int>(At.Channels.size()));
        if (TL && !TL->Nodes.empty()) {
          Replays = S.Req.Batch;
          if (static_cast<size_t>(Replays) * TL->Nodes.size() >
              static_cast<size_t>(MaxPhaseSpans)) {
            Elided = Replays - 1;
            Replays = 1;
          }
        }
      }

      openEvent(W, "B", Name, "serve.exec", RequestPid, Id)
          .field("ts", usOf(At.StartNs))
          .key("args")
          .beginObject()
          .field("attempt", static_cast<int>(A))
          .field("channels", channelsLabel(At.Channels))
          .field("granted", static_cast<int>(At.Channels.size()))
          .field("outcome", outcomeName(At.Outcome))
          .field("reason", outcomeReasonName(At.Reason))
          .field("interrupted", At.Interrupted);
      if (At.OutageId >= 0)
        W.field("outage", At.OutageId);
      if (Elided > 0)
        W.field("replays_elided", Elided);
      W.field("unit_gpu_busy_ns", At.UnitGpuBusyNs)
          .field("unit_pim_busy_ns", At.UnitPimBusyNs)
          .endObject()
          .endObject();

      emitInstant(W, "grant", "serve.grant", RequestPid, Id, At.StartNs,
                  {{"channels", channelsLabel(At.Channels)}});

      // Flow start: picked up by the channel-lane half below.
      openEvent(W, "s", "req-exec", "serve.flow", RequestPid, Id)
          .field("ts", usOf(At.StartNs))
          .field("id", flowId(Id, A))
          .endObject();

      if (TL) {
        const PreparedModel &PM = Models[static_cast<size_t>(S.Req.ModelIdx)];
        const Graph &G = At.Channels.empty() ? PM.FloorDemoted
                                             : PM.Materialized;
        for (int Rep = 0; Rep < Replays; ++Rep) {
          const double BaseNs =
              static_cast<double>(At.StartNs) + Rep * S.UnitNs;
          for (const NodeSchedule &NS : TL->Nodes) {
            openEvent(W, "X", G.node(NS.Id).Name, "serve.phase", RequestPid,
                      Id)
                .field("ts", usOf(BaseNs + NS.StartNs))
                .field("dur", usOf(NS.durationNs()))
                .key("args")
                .beginObject()
                .field("device", deviceName(NS.Dev))
                .field("replay", Rep)
                .endObject()
                .endObject();
          }
        }
      }

      if (At.Interrupted)
        emitInstant(W, "interrupt", "serve.fault", RequestPid, Id, At.EndNs,
                    {{"outage", formatStr("%d", At.OutageId)}});

      openEvent(W, "E", Name, "serve.exec", RequestPid, Id)
          .field("ts", usOf(At.EndNs))
          .endObject();
    }

    openEvent(W, "E", "request", "serve.request", RequestPid, Id)
        .field("ts", usOf(std::max(S.EndNs, S.Req.ArrivalNs)))
        .endObject();
  }

  // --- pid 4: channel occupancy, fault windows, breaker instants ---------
  for (const ChannelOutage &O : R.Outages) {
    openEvent(W, "X", formatStr("outage %d", O.Id), "serve.fault",
              ChannelPid, O.Channel)
        .field("ts", usOf(O.StartNs))
        .field("dur", usOf(O.EndNs - O.StartNs))
        .key("args")
        .beginObject()
        .field("outage", O.Id)
        .field("channel", O.Channel)
        .endObject()
        .endObject();
  }

  for (int Id : R.SampledRequests) {
    const Session &S = *R.Sessions[static_cast<size_t>(Id)];
    for (size_t A = 0; A < S.Attempts.size(); ++A) {
      const ExecAttempt &At = S.Attempts[A];
      const std::string Name =
          formatStr("req %d%s", Id, A == 0 ? "" : " retry");
      // The floor lane carries channel-less attempts.
      std::vector<int> Lanes = At.Channels;
      if (Lanes.empty())
        Lanes.push_back(Pool);
      for (int Lane : Lanes) {
        openEvent(W, "X", Name, "serve.lane", ChannelPid, Lane)
            .field("ts", usOf(At.StartNs))
            .field("dur", usOf(At.durationNs()))
            .key("args")
            .beginObject()
            .field("request", Id)
            .field("attempt", static_cast<int>(A))
            .field("trace_id", formatTraceId(S.TraceId))
            .endObject()
            .endObject();
      }
      // Flow finish on the attempt's first lane, bound to the enclosing
      // occupancy slice (bp:"e").
      openEvent(W, "f", "req-exec", "serve.flow", ChannelPid, Lanes.front())
          .field("ts", usOf(At.StartNs))
          .field("id", flowId(Id, A))
          .field("bp", "e")
          .endObject();
    }
  }

  for (const BreakerEvent &E : R.HealthEvents) {
    std::vector<std::pair<std::string, std::string>> Args = {
        {"channel", formatStr("%d", E.Channel)},
        {"ok", E.Ok ? "true" : "false"}};
    if (E.ReqId >= 0)
      Args.emplace_back("request", formatStr("%d", E.ReqId));
    emitInstant(W, breakerEventKindName(E.K), "serve.breaker", ChannelPid,
                E.Channel, E.TimeNs, Args);
  }

  W.endArray()
      .field("displayTimeUnit", "ns")
      .field("serveTraceSample", R.SamplePolicy)
      .endObject();
  return W.take();
}

bool Server::writeTrace(const ServeResult &R,
                        const std::string &Path) const {
  return obs::writeTextFile(Path, renderTrace(R));
}
