//===- serve/RequestTrace.h - Per-request tracing and sampling --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end request tracing for `pimflow serve` (docs/INTERNALS.md
/// section 15). Every generated request carries a RequestTraceContext —
/// its dense request id plus a seeded 64-bit trace id — and the event
/// loop records a per-attempt history (serve/Session.h's ExecAttempt
/// list) on the virtual clock. After the run, a deterministic tail
/// sampler picks which requests keep full-fidelity traces, and
/// Server::renderTrace turns the sampled set into a Chrome trace-event
/// document:
///
///   pid 3  one lane per sampled request: a root `request` span nesting
///          the `queue` span and one `exec`/`retry` span per attempt,
///          with grant / interrupt / shed instants and the unit run's
///          node-level exec-phase spans.
///   pid 4  one lane per PIM channel plus the GPU floor lane: the same
///          attempts laid out as channel occupancy, fault outage
///          windows, and breaker trip/probe/readmit instants.
///
/// Flow events (`ph:"s"`/`ph:"f"`, id = request<<8 | attempt) link each
/// request-lane attempt to the channel lane it ran on. All timestamps
/// are virtual nanoseconds scaled to microseconds — never wall clock —
/// so the document is byte-identical for every `--jobs=N`.
///
/// Sampling policy grammar (`--trace-sample=`):
///
///   all          every request (the default)
///   tail         shed + deadline-missed + faulted + slowest-8
///   tail:<K>     same, with the slowest-K cutoff at K
///
/// The tail set is decided from the finished ServeResult alone, so it is
/// deterministic in (spec, options) and bounded under chaos matrices.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SERVE_REQUESTTRACE_H
#define PIMFLOW_SERVE_REQUESTTRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/Diagnostics.h"

namespace pf::serve {

struct ServeResult;

/// The identity a request carries through the serve pipeline: the dense
/// request id (lane + log correlation key) and the seeded trace id (the
/// cross-artifact correlation key rendered as 16 hex digits).
struct RequestTraceContext {
  int RequestId = -1;
  uint64_t TraceId = 0;
};

/// The stable trace id of request \p RequestId in a stream seeded with
/// \p Seed: FNV-1a 64 over the (seed, id) pair. Pure, so every consumer
/// (summary, report, trace, flight dump) derives the same id without
/// coordination.
uint64_t requestTraceId(uint64_t Seed, int RequestId);

/// requestTraceId rendered the way every artifact spells it: 16
/// lower-case hex digits.
std::string formatTraceId(uint64_t TraceId);

/// Parsed `--trace-sample=` policy.
struct TraceSamplePolicy {
  enum class Kind : uint8_t {
    All,  ///< trace every request
    Tail, ///< shed + deadline-missed + faulted + slowest-K
  };
  Kind K = Kind::All;
  int SlowestK = 8;

  /// Parses the grammar above. Returns false and a serve.bad-spec
  /// diagnostic in \p DE on malformed input.
  static bool parse(const std::string &Spec, TraceSamplePolicy &Out,
                    DiagnosticEngine &DE);

  /// The canonical spelling ("all" / "tail:8"), echoed by the report.
  std::string describe() const;
};

/// The sampled request-id set of \p R under \p P, sorted ascending.
/// Decided entirely from the virtual-time session records, so the set is
/// byte-identical across --jobs. Tail membership: shed requests,
/// deadline-missed (run-late or queue-expired) requests, faulted
/// requests (any outage interrupt or fault-retry/retry-budget outcome),
/// and the SlowestK highest-latency completed requests (latency ties
/// broken toward the lower id).
std::vector<int> sampleRequests(const ServeResult &R,
                                const TraceSamplePolicy &P);

} // namespace pf::serve

#endif // PIMFLOW_SERVE_REQUESTTRACE_H
