//===- serve/Server.cpp - Closed-loop multi-tenant serving ----------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>
#include <map>
#include <queue>

#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "support/Format.h"
#include "support/Log.h"
#include "support/ThreadPool.h"

using namespace pf;
using namespace pf::serve;

const char *pf::serve::outcomeName(RequestOutcome O) {
  switch (O) {
  case RequestOutcome::Served:
    return "served";
  case RequestOutcome::Degraded:
    return "degraded";
  case RequestOutcome::FloorFallback:
    return "floor";
  case RequestOutcome::Shed:
    return "shed";
  }
  pf_unreachable("unknown request outcome");
}

const char *pf::serve::outcomeReasonName(OutcomeReason R) {
  switch (R) {
  case OutcomeReason::None:
    return "none";
  case OutcomeReason::Contention:
    return "contention";
  case OutcomeReason::BelowFloor:
    return "below-floor";
  case OutcomeReason::FaultRetry:
    return "fault-retry";
  case OutcomeReason::RetryBudget:
    return "retry-budget";
  case OutcomeReason::QueueFull:
    return "queue-full";
  case OutcomeReason::DeadlineExpired:
    return "deadline-expired";
  }
  pf_unreachable("unknown outcome reason");
}

const char *pf::serve::deadlineStateName(DeadlineState D) {
  switch (D) {
  case DeadlineState::None:
    return "none";
  case DeadlineState::Met:
    return "met";
  case DeadlineState::MissedRun:
    return "missed";
  case DeadlineState::ExpiredQueued:
    return "expired";
  }
  pf_unreachable("unknown deadline state");
}

Server::Server(std::vector<std::pair<std::string, Graph>> InModels,
               ServerOptions O)
    : Options(O),
      Planned(O.Policy == OffloadPolicy::GpuOnly ? 0 : O.Flow.PimChannels),
      Pool(Planned == 0        ? 0
           : O.PoolChannels > 0 ? O.PoolChannels
                                : Planned),
      Flow(O.Policy, O.Flow) {
  PF_ASSERT(!InModels.empty(), "serve needs at least one model");
  for (auto &[Name, G] : InModels) {
    PreparedModel PM;
    PM.Name = Name;
    PM.Model = std::move(G);
    PM.Materialized = Graph("unprepared");
    PM.FloorDemoted = Graph("unprepared");
    Models.push_back(std::move(PM));
  }
}

SystemConfig Server::configFor(int GrantedChannels) const {
  // Mirrors the recovery ladder's remap: the plan stays fixed and only
  // Pim.Channels shrinks to the granted count (GPU lanes keep the planned
  // grouping — physically the ungranted PIM channels belong to *other*
  // sessions, not to this request's GPU).
  SystemConfig C = Flow.config();
  C.Pim.Channels = GrantedChannels;
  return C;
}

void Server::prepare() {
  if (Prepared)
    return;
  Prepared = true;

  const int Floor = std::clamp(Options.Flow.PimFloor, 0, Planned);
  for (PreparedModel &PM : Models) {
    // plan() consults the plan cache when configured, so a serve start
    // replays PR 7 artifacts instead of re-searching warm models.
    ExecutionPlan Plan = Flow.plan(PM.Model);
    PM.Materialized = Flow.materialize(PM.Model, Plan);
    // The GPU floor: the same transformed graph with every PIM node
    // demoted — the recovery ladder's whole-graph fallback, precomputed
    // once since serve falls back per request, not per fault.
    PM.FloorDemoted = PM.Materialized;
    for (const Node &N : PM.FloorDemoted.nodes())
      if (!N.Dead && N.Dev == Device::Pim)
        PM.FloorDemoted.node(N.Id).Dev = Device::Gpu;
    PM.UnitNsByChannels.assign(static_cast<size_t>(Planned) + 1, 0.0);
    PM.UnitEnergyJByChannels.assign(static_cast<size_t>(Planned) + 1, 0.0);
    PM.UnitTimelines.assign(static_cast<size_t>(Planned) + 1, Timeline{});
  }

  // Price every reachable (model, granted-channels) pair once, in
  // parallel: c = 0 is the GPU floor, c in [max(1, Floor), MaxGrant] the
  // (possibly degraded) PIM grants — a grant never exceeds the smaller of
  // the plan's want and the pool. Each entry runs under a throwaway
  // scope so pricing never pollutes the caller's registries, and the
  // result depends only on (graph, config) — not on evaluation order.
  struct Entry {
    size_t ModelIdx;
    int Channels;
  };
  const int MaxGrant = std::min(Planned, Pool);
  std::vector<Entry> Entries;
  for (size_t M = 0; M < Models.size(); ++M) {
    Entries.push_back({M, 0});
    for (int C = std::max(1, Floor); C <= MaxGrant; ++C)
      Entries.push_back({M, C});
  }
  ThreadPool Pool(static_cast<unsigned>(std::max(1, Options.Jobs)));
  Pool.parallelFor(Entries.size(), [&](size_t I) {
    const Entry &E = Entries[I];
    PreparedModel &PM = Models[E.ModelIdx];
    obs::Scope Throwaway;
    obs::ScopeGuard Guard(Throwaway);
    ExecutionEngine Engine(configFor(E.Channels));
    const Timeline TL =
        Engine.execute(E.Channels > 0 ? PM.Materialized : PM.FloorDemoted);
    PM.UnitNsByChannels[static_cast<size_t>(E.Channels)] = TL.TotalNs;
    PM.UnitEnergyJByChannels[static_cast<size_t>(E.Channels)] = TL.EnergyJ;
    // Keep the whole node schedule: the request trace replays it as the
    // exec-phase span tree under each attempt.
    PM.UnitTimelines[static_cast<size_t>(E.Channels)] = TL;
  });
}

const Timeline *Server::unitTimeline(int ModelIdx, int Channels) const {
  if (!Prepared || ModelIdx < 0 ||
      ModelIdx >= static_cast<int>(Models.size()))
    return nullptr;
  const PreparedModel &PM = Models[static_cast<size_t>(ModelIdx)];
  if (Channels < 0 ||
      Channels >= static_cast<int>(PM.UnitTimelines.size()))
    return nullptr;
  const Timeline &TL = PM.UnitTimelines[static_cast<size_t>(Channels)];
  return TL.Nodes.empty() ? nullptr : &TL;
}

ServeResult Server::run(const LoadSpec &Spec, DiagnosticEngine *DE) {
  prepare();

  const int Floor = std::clamp(Options.Flow.PimFloor, 0, Planned);
  const int MaxInflight = std::max(1, Options.MaxInflight);
  const int MaxQueue = std::max(0, Options.MaxQueue);
  const int64_t DefaultDeadlineNs = Options.DefaultDeadlineUs * 1000;
  // Per-session fault retries default to the PR 4 ladder's per-run
  // budget; the global budget bounds the whole stream.
  const int SessionBudget = Options.SessionRetryBudget >= 0
                                ? Options.SessionRetryBudget
                                : std::max(0, Options.Flow.MaxRetries);
  int RetryBudgetLeft = std::max(0, Options.RetryBudget);

  ServeResult R;
  for (const PreparedModel &PM : Models)
    R.ModelNames.push_back(PM.Name);
  R.PolicyName = policyName(Options.Policy);
  R.PlannedChannels = Planned;
  R.PoolChannels = Pool;
  R.Floor = Floor;
  R.MaxInflight = MaxInflight;
  R.MaxQueue = MaxQueue;
  R.Seed = Spec.Seed;
  R.DefaultDeadlineUs = Options.DefaultDeadlineUs;
  R.RetryBudget = std::max(0, Options.RetryBudget);
  R.BreakerThreshold = Options.BreakerThreshold;
  R.BreakerCooldownUs = Options.BreakerCooldownUs;
  R.FaultSummary = Options.Faults.describe();

  const std::vector<Request> Requests =
      generateRequests(Spec, static_cast<int>(Models.size()));
  R.Sessions.reserve(Requests.size());
  for (const Request &Q : Requests) {
    auto S = std::make_unique<Session>();
    S->Req = Q;
    S->ChannelsWanted = Planned;
    // The trace context travels with the session from generation on:
    // the id is the lane key, the seeded trace id the cross-artifact
    // correlation key.
    S->TraceId = requestTraceId(Spec.Seed, Q.Id);
    const int64_t BudgetNs =
        Q.DeadlineNs > 0 ? Q.DeadlineNs : DefaultDeadlineNs;
    S->DeadlineNs = BudgetNs > 0 ? Q.ArrivalNs + BudgetNs : 0;
    R.Sessions.push_back(std::move(S));
  }

  ChannelAllocator Alloc(Pool);
  ChannelScoreboard Health(Pool, Options.BreakerThreshold,
                       Options.BreakerCooldownUs * 1000, Spec.Seed);

  // Statically dead channels never serve: quarantined from t = 0, no
  // readmission path (their outage has no end).
  for (int Ch = 0; Ch < Pool; ++Ch)
    if (Options.Faults.channelDead(Ch)) {
      Alloc.quarantine(Ch);
      Health.noteQuarantine(Ch, 0);
    }

  ThreadPool Workers(static_cast<unsigned>(std::max(1, Options.Jobs)));

  // Each completed request's engine run, re-executed for real under the
  // session's private scope. The virtual completion time comes from the
  // duration table, so worker timing never reorders the event loop; the
  // run result is cross-checked against the table below. Submission
  // happens at *completion* time so an interrupted-and-retried session
  // executes exactly once, under its final granted configuration.
  struct RunResult {
    double TotalNs = 0.0;
    int MissingNodes = 0;
  };
  std::vector<std::pair<size_t, std::future<RunResult>>> Runs;
  auto submitRun = [&](Session &S) {
    const size_t Idx = static_cast<size_t>(S.Req.Id);
    const int C = S.channelsGranted();
    Runs.emplace_back(Idx, Workers.submit([this, &S, C]() -> RunResult {
      obs::ScopeGuard Guard(S.Scope);
      const PreparedModel &PM =
          Models[static_cast<size_t>(S.Req.ModelIdx)];
      const Graph &G = C > 0 ? PM.Materialized : PM.FloorDemoted;
      ExecutionEngine Engine(configFor(C));
      const Timeline TL = Engine.execute(G);
      RunResult RR;
      RR.TotalNs = TL.TotalNs;
      // Partially-executed-timeline guard: every live node must have a
      // schedule entry. Probed with find() — absence is a diagnostic
      // (serve.timeline-gap), never a fatal() killing the server.
      for (const Node &N : G.nodes())
        if (!N.Dead && !TL.find(N.Id))
          ++RR.MissingNodes;
      if (RR.MissingNodes > 0)
        obs::addCounter("serve.timeline_gaps", RR.MissingNodes);
      return RR;
    }));
  };

  // The discrete-event loop: single-threaded, over virtual nanoseconds.
  // Three event sources merge on (time, priority): channel recoveries
  // and breaker probes first (freed channels are visible at the same
  // instant), then completions, then outage starts, then arrivals —
  // so a completion at t sees the machine state after recoveries at t,
  // and an arrival at t sees capacity freed by completions at t, but a
  // channel dying at t cannot retroactively kill a run that finished
  // at t.
  struct Completion {
    int64_t EndNs;
    int Id;
    int Gen; ///< stale when != the session's current generation
    bool operator>(const Completion &O) const {
      return EndNs != O.EndNs ? EndNs > O.EndNs : Id > O.Id;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      Completions;

  enum class TimerKind : uint8_t { OutageEnd, Probe, OutageStart };
  struct Timer {
    int64_t T;
    int Prio; ///< cross-source order: see PrioOf below
    uint64_t Seq;
    TimerKind K;
    int Ch;
    int Aux = -1; ///< outage ordinal for OutageStart/End timers
    bool operator>(const Timer &O) const {
      if (T != O.T)
        return T > O.T;
      if (Prio != O.Prio)
        return Prio > O.Prio;
      return Seq > O.Seq;
    }
  };
  constexpr int PrioOutageEnd = 0, PrioProbe = 1, PrioCompletion = 2,
                PrioOutageStart = 3, PrioArrival = 4;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> Timers;
  uint64_t TimerSeq = 0;
  for (const ChannelOutage &O : Options.Faults.outages()) {
    if (O.Channel < 0 || O.Channel >= Pool)
      continue; // out-of-pool entries are inert, like the static classes
    Timers.push({O.StartNs, PrioOutageStart, TimerSeq++,
                 TimerKind::OutageStart, O.Channel, O.Id});
    Timers.push({O.EndNs, PrioOutageEnd, TimerSeq++, TimerKind::OutageEnd,
                 O.Channel, O.Id});
    R.Outages.push_back(O); // pool-clamped: the trace's fault lanes
  }

  std::deque<int> Waiting;
  std::map<int, ChannelGrant> LiveGrants;
  int Inflight = 0;

  auto price = [&](Session &S, int C, int64_t Now) {
    const PreparedModel &PM = Models[static_cast<size_t>(S.Req.ModelIdx)];
    S.UnitNs = PM.UnitNsByChannels[static_cast<size_t>(C)];
    S.UnitEnergyJ = PM.UnitEnergyJByChannels[static_cast<size_t>(C)];
    // Micro-batching: a batch-B request replays the unit run B times
    // back to back on its granted channels.
    const int64_t ServiceNs = std::max<int64_t>(
        1, std::llround(S.UnitNs * static_cast<double>(S.Req.Batch)));
    S.EndNs = Now + ServiceNs;
    if (!S.Attempts.empty()) {
      // The attempt record projects its completion and carries the unit
      // run's busy split — overwritten with the interrupt instant if an
      // outage cuts the attempt short.
      ExecAttempt &A = S.Attempts.back();
      A.EndNs = S.EndNs;
      const Timeline &TL = PM.UnitTimelines[static_cast<size_t>(C)];
      A.UnitGpuBusyNs = TL.GpuBusyNs;
      A.UnitPimBusyNs = TL.PimBusyNs;
    }
    Completions.push({S.EndNs, S.Req.Id, S.Gen});
  };

  auto recordAttempt = [](Session &S, int64_t Now) {
    ExecAttempt A;
    A.StartNs = Now;
    A.Channels = S.Channels;
    A.Outcome = S.Outcome;
    A.Reason = S.Reason;
    S.Attempts.push_back(std::move(A));
  };

  auto start = [&](Session &S, int64_t Now) {
    S.StartNs = Now;
    int C = 0;
    if (auto Grant = Alloc.tryAcquire(Planned, Floor)) {
      C = Grant->granted();
      S.Outcome = Grant->degraded() ? RequestOutcome::Degraded
                                    : RequestOutcome::Served;
      S.Reason = Grant->degraded() ? OutcomeReason::Contention
                                   : OutcomeReason::None;
      S.Channels = Grant->Channels;
      if (!S.Channels.empty())
        R.Grants.push_back({Now, S.Req.Id, S.Channels});
      LiveGrants.emplace(S.Req.Id, std::move(*Grant));
    } else {
      S.Outcome = RequestOutcome::FloorFallback;
      S.Reason = OutcomeReason::BelowFloor;
    }
    recordAttempt(S, Now);
    obs::flightEvent(obs::FlightEventKind::RequestAdmit, Now, C, Planned,
                     0.0, outcomeName(S.Outcome), S.Req.Id);
    price(S, C, Now);
    ++Inflight;
  };

  // A channel outage cutting a live grant: surrender the grant (the dead
  // channel stays quarantined), then either consume retry budget for an
  // immediate re-grant — the PR 4 ladder's remap, re-priced and restarted
  // at Now — or demote straight to the GPU floor. Either way the old
  // completion entry is a stale generation.
  auto interrupt = [&](Session &S, int64_t Now, int OutageId) {
    ++R.FaultInterrupts;
    ++S.Interrupts;
    auto It = LiveGrants.find(S.Req.Id);
    if (It == LiveGrants.end()) {
      obs::addCounter("serve.internal_errors");
      if (DE)
        DE->error(DiagCode::ServeInternal,
                  formatStr("request %d", S.Req.Id),
                  "interrupted session holds no grant");
      return;
    }
    if (!S.Attempts.empty()) {
      // Close the cut attempt at the interrupt instant, remembering the
      // outage window that killed it.
      ExecAttempt &A = S.Attempts.back();
      A.EndNs = Now;
      A.Interrupted = true;
      A.OutageId = OutageId;
    }
    Alloc.release(It->second, DE);
    LiveGrants.erase(It);
    ++S.Gen;
    S.Channels.clear();
    int C = 0;
    if (S.Retries < SessionBudget && RetryBudgetLeft > 0) {
      // A retry *attempt* consumes budget even when the shrunken pool can
      // no longer supply the floor — that admission-style decision is
      // what the attempt bought.
      --RetryBudgetLeft;
      ++S.Retries;
      ++R.RetriesUsed;
      if (auto Grant = Alloc.tryAcquire(Planned, Floor)) {
        C = Grant->granted();
        S.Outcome = Grant->degraded() ? RequestOutcome::Degraded
                                      : RequestOutcome::Served;
        S.Reason = OutcomeReason::FaultRetry;
        S.Channels = Grant->Channels;
        if (!S.Channels.empty())
          R.Grants.push_back({Now, S.Req.Id, S.Channels});
        LiveGrants.emplace(S.Req.Id, std::move(*Grant));
      } else {
        S.Outcome = RequestOutcome::FloorFallback;
        S.Reason = OutcomeReason::BelowFloor;
      }
    } else {
      ++R.RetryBudgetDenied;
      S.Outcome = RequestOutcome::FloorFallback;
      S.Reason = OutcomeReason::RetryBudget;
    }
    recordAttempt(S, Now);
    obs::flightEvent(obs::FlightEventKind::RequestRetry, Now, C, S.Retries,
                     0.0, outcomeReasonName(S.Reason), S.Req.Id);
    // Replay semantics: the interrupted work is abandoned and the request
    // restarts from Now under its final configuration (only that final
    // run is charged for energy and re-executed by a worker).
    price(S, C, Now);
  };

  size_t NextArrival = 0;
  auto peelStale = [&] {
    while (!Completions.empty() &&
           Completions.top().Gen !=
               R.Sessions[static_cast<size_t>(Completions.top().Id)]->Gen)
      Completions.pop();
  };

  while (true) {
    peelStale();
    const bool HaveArrival = NextArrival < Requests.size();
    const bool HaveCompletion = !Completions.empty();
    if (!HaveArrival && !HaveCompletion)
      break; // pending timers beyond the stream's end are irrelevant

    // Pick the earliest (time, priority) across the three sources.
    int64_t BestT = 0;
    int BestPrio = 0;
    int BestSrc = -1; // 0 = timer, 1 = completion, 2 = arrival
    auto Consider = [&](int64_t T, int Prio, int Src) {
      if (BestSrc < 0 || T < BestT || (T == BestT && Prio < BestPrio)) {
        BestT = T;
        BestPrio = Prio;
        BestSrc = Src;
      }
    };
    if (!Timers.empty())
      Consider(Timers.top().T, Timers.top().Prio, 0);
    if (HaveCompletion)
      Consider(Completions.top().EndNs, PrioCompletion, 1);
    if (HaveArrival)
      Consider(Requests[NextArrival].ArrivalNs, PrioArrival, 2);

    if (BestSrc == 0) {
      const Timer E = Timers.top();
      Timers.pop();
      switch (E.K) {
      case TimerKind::OutageStart: {
        // Find the holder first: quarantine, trip, and the interrupt
        // below are all attributed to the request whose grant the
        // outage cut (at most one — grants are exclusive).
        int Holder = -1;
        for (const auto &[Id, G] : LiveGrants) {
          if (std::find(G.Channels.begin(), G.Channels.end(), E.Ch) !=
              G.Channels.end()) {
            Holder = Id;
            break;
          }
        }
        if (!Alloc.isQuarantined(E.Ch)) {
          Alloc.quarantine(E.Ch);
          Health.noteQuarantine(E.Ch, E.T, Holder);
        }
        obs::flightEvent(obs::FlightEventKind::ChannelDead, E.T, E.Ch,
                         E.Aux, 0.0, nullptr, Holder);
        if (Health.recordFailure(E.Ch, E.T, Holder)) {
          obs::flightEvent(obs::FlightEventKind::BreakerTrip, E.T, E.Ch,
                           Health.consecutiveFailures(E.Ch), 0.0, nullptr,
                           Holder);
          Timers.push({Health.nextProbeNs(E.Ch, E.T), PrioProbe, TimerSeq++,
                       TimerKind::Probe, E.Ch});
        }
        if (Holder >= 0)
          interrupt(*R.Sessions[static_cast<size_t>(Holder)], E.T, E.Aux);
        break;
      }
      case TimerKind::OutageEnd: {
        // A closed breaker readmits the channel as soon as the outage
        // ends (unless another window still covers it); an open breaker
        // keeps it quarantined until a probe succeeds.
        if (!Health.open(E.Ch) && Alloc.isQuarantined(E.Ch) &&
            !Options.Faults.deadAt(E.Ch, E.T)) {
          Alloc.readmit(E.Ch);
          Health.noteRecovery(E.Ch, E.T);
        }
        break;
      }
      case TimerKind::Probe: {
        if (!Health.open(E.Ch))
          break; // breaker closed by an earlier probe of this chain
        const bool Healthy = !Options.Faults.deadAt(E.Ch, E.T);
        // Probes inherit the attribution of the request whose failure
        // tripped the channel: the whole cooldown chain traces back to
        // one interrupt.
        const int TripReq = Health.lastTripRequest(E.Ch);
        obs::flightEvent(obs::FlightEventKind::BreakerProbe, E.T, E.Ch,
                         Healthy ? 1 : 0, 0.0, nullptr, TripReq);
        if (Health.probe(E.Ch, E.T, Healthy)) {
          Alloc.readmit(E.Ch);
          obs::flightEvent(obs::FlightEventKind::BreakerReadmit, E.T, E.Ch,
                           -1, 0.0, nullptr, TripReq);
        } else {
          Timers.push({Health.nextProbeNs(E.Ch, E.T), PrioProbe, TimerSeq++,
                       TimerKind::Probe, E.Ch});
        }
        break;
      }
      }
      continue;
    }

    if (BestSrc == 1) {
      const Completion Done = Completions.top();
      Completions.pop();
      Session &S = *R.Sessions[static_cast<size_t>(Done.Id)];
      auto It = LiveGrants.find(Done.Id);
      if (It != LiveGrants.end()) {
        // A finished run is a success signal for every channel it held.
        for (int Ch : It->second.Channels)
          Health.recordSuccess(Ch);
        Alloc.release(It->second, DE);
        LiveGrants.erase(It);
      }
      --Inflight;
      obs::flightEvent(obs::FlightEventKind::RequestDone, Done.EndNs,
                       S.channelsGranted(), S.Retries,
                       static_cast<double>(S.latencyNs()), nullptr,
                       S.Req.Id);
      submitRun(S);
      while (!Waiting.empty() && Inflight < MaxInflight) {
        Session &Next = *R.Sessions[static_cast<size_t>(Waiting.front())];
        Waiting.pop_front();
        // Deadline shedding: a queued request whose budget has already
        // passed is dead on arrival at the head of the line. Its shed
        // instant is the deadline itself (when it became undeliverable),
        // not the completion that happened to pop it.
        if (Next.hasDeadline() && Done.EndNs >= Next.DeadlineNs) {
          Next.Outcome = RequestOutcome::Shed;
          Next.Reason = OutcomeReason::DeadlineExpired;
          Next.StartNs = Next.EndNs = Next.DeadlineNs;
          obs::flightEvent(obs::FlightEventKind::RequestShed,
                           Next.DeadlineNs,
                           static_cast<int32_t>(Next.Reason), -1, 0.0,
                           outcomeReasonName(Next.Reason), Next.Req.Id);
          continue;
        }
        start(Next, Done.EndNs);
      }
      continue;
    }

    const Request &Q = Requests[NextArrival++];
    Session &S = *R.Sessions[static_cast<size_t>(Q.Id)];
    if (Inflight < MaxInflight) {
      start(S, Q.ArrivalNs);
    } else if (static_cast<int>(Waiting.size()) < MaxQueue) {
      Waiting.push_back(Q.Id);
    } else {
      S.Outcome = RequestOutcome::Shed;
      S.Reason = OutcomeReason::QueueFull;
      S.StartNs = S.EndNs = Q.ArrivalNs;
      obs::flightEvent(obs::FlightEventKind::RequestShed, Q.ArrivalNs,
                       static_cast<int32_t>(S.Reason), -1, 0.0,
                       outcomeReasonName(S.Reason), S.Req.Id);
    }
  }
  if (Inflight != 0 || !LiveGrants.empty() || !Waiting.empty()) {
    // Survivable invariant breach: report and keep serving the summary
    // instead of aborting a release-mode server.
    obs::addCounter("serve.internal_errors");
    if (DE)
      DE->error(DiagCode::ServeInternal, "event loop",
                formatStr("finished with live state (inflight=%d, "
                          "grants=%d, waiting=%d)",
                          Inflight, static_cast<int>(LiveGrants.size()),
                          static_cast<int>(Waiting.size())));
  }

  // Drain the real runs and cross-check them against the duration table:
  // a session's engine run must price exactly like the pricing pass (same
  // graph, same config, deterministic engine) or the table lied.
  for (auto &[Idx, Fut] : Runs) {
    const RunResult RR = Fut.get();
    Session &S = *R.Sessions[Idx];
    if (std::abs(RR.TotalNs - S.UnitNs) >= 0.5) {
      obs::addCounter("serve.internal_errors");
      if (DE)
        DE->error(DiagCode::ServeInternal,
                  formatStr("request %d", S.Req.Id),
                  "session run disagrees with the duration table");
    }
    if (RR.MissingNodes > 0 && DE)
      DE->warning(DiagCode::ServeTimelineGap,
                  formatStr("request %d", S.Req.Id),
                  formatStr("%d node(s) missing from the executed "
                            "timeline",
                            RR.MissingNodes));
  }

  // Aggregates + the serve.* families, recorded into the caller's scope
  // in request-id order so exports are deterministic.
  std::vector<int64_t> Latencies, QueueDelays;
  for (const auto &SP : R.Sessions) {
    const Session &S = *SP;
    obs::addCounter("serve.requests");
    switch (S.Outcome) {
    case RequestOutcome::Served:
      ++R.Served;
      obs::addCounter("serve.served");
      break;
    case RequestOutcome::Degraded:
      ++R.Degraded;
      obs::addCounter("serve.degraded");
      break;
    case RequestOutcome::FloorFallback:
      ++R.FloorFallbacks;
      obs::addCounter("serve.floor_fallbacks");
      if (S.Reason == OutcomeReason::RetryBudget)
        ++R.FloorRetryBudget;
      else
        ++R.FloorBelowFloor;
      break;
    case RequestOutcome::Shed:
      ++R.Shed;
      obs::addCounter("serve.shed");
      if (S.Reason == OutcomeReason::DeadlineExpired) {
        ++R.ShedDeadline;
        obs::addCounter("serve.shed_deadline_expired");
      } else {
        ++R.ShedQueueFull;
        obs::addCounter("serve.shed_queue_full");
      }
      break;
    }
    switch (S.deadlineState()) {
    case DeadlineState::None:
      break;
    case DeadlineState::Met:
      ++R.DeadlineMet;
      obs::addCounter("serve.deadline.met");
      // Slack/overrun split into two non-negative histograms: the
      // log-linear registry buckets non-positive samples at zero, so a
      // signed slack would lose the miss magnitudes.
      obs::recordMetric("serve.deadline_slack_ns",
                        static_cast<double>(S.DeadlineNs - S.EndNs));
      break;
    case DeadlineState::MissedRun:
      ++R.DeadlineMissedRun;
      obs::addCounter("serve.deadline.missed_run");
      obs::recordMetric("serve.deadline_overrun_ns",
                        static_cast<double>(S.EndNs - S.DeadlineNs));
      break;
    case DeadlineState::ExpiredQueued:
      ++R.DeadlineExpiredQueued;
      obs::addCounter("serve.deadline.expired_queued");
      break;
    }
    if (!S.ran())
      continue;
    Latencies.push_back(S.latencyNs());
    QueueDelays.push_back(S.queueDelayNs());
    R.TotalEnergyJ += S.UnitEnergyJ * S.Req.Batch;
    obs::recordMetric("serve.request_latency_ns",
                      static_cast<double>(S.latencyNs()));
    obs::recordMetric("serve.queue_delay_ns",
                      static_cast<double>(S.queueDelayNs()));
    obs::recordMetric("serve.service_ns",
                      static_cast<double>(S.serviceNs()));
  }

  R.BreakerTrips = Health.trips();
  R.BreakerProbes = Health.probes();
  R.BreakerReadmits = Health.readmits();
  R.ChannelRecoveries = Health.recoveries();
  R.HealthEvents = Health.events();
  if (R.FaultInterrupts > 0)
    obs::addCounter("serve.fault_interrupts", R.FaultInterrupts);
  if (R.RetriesUsed > 0)
    obs::addCounter("serve.retries", R.RetriesUsed);
  if (R.RetryBudgetDenied > 0)
    obs::addCounter("serve.retry_budget_denied", R.RetryBudgetDenied);
  if (R.BreakerTrips > 0)
    obs::addCounter("serve.breaker.trips", R.BreakerTrips);
  if (R.BreakerProbes > 0)
    obs::addCounter("serve.breaker.probes", R.BreakerProbes);
  if (R.BreakerReadmits > 0)
    obs::addCounter("serve.breaker.readmits", R.BreakerReadmits);
  if (R.ChannelRecoveries > 0)
    obs::addCounter("serve.channel_recoveries", R.ChannelRecoveries);

  // Exact nearest-rank percentiles over integer ns: byte-stable, unlike
  // the HDR histograms' bounded-error quantiles.
  auto Rank = [](std::vector<int64_t> &V, double Q) -> int64_t {
    if (V.empty())
      return 0;
    std::sort(V.begin(), V.end());
    const size_t N = V.size();
    size_t K = static_cast<size_t>(
        std::ceil(Q * static_cast<double>(N)));
    if (K == 0)
      K = 1;
    return V[std::min(N, K) - 1];
  };
  R.LatencyP50Ns = Rank(Latencies, 0.50);
  R.LatencyP99Ns = Rank(Latencies, 0.99);
  R.LatencyMaxNs = Latencies.empty() ? 0 : Latencies.back();
  R.QueueDelayP50Ns = Rank(QueueDelays, 0.50);
  R.QueueDelayP99Ns = Rank(QueueDelays, 0.99);

  // Tail sampling runs after the whole stream settled: membership
  // depends only on the virtual-time session records, so the sampled
  // set (like everything above) is byte-identical across --jobs.
  R.SamplePolicy = Options.Sample.describe();
  R.SampledRequests = sampleRequests(R, Options.Sample);
  for (int Id : R.SampledRequests)
    R.Sessions[static_cast<size_t>(Id)]->Sampled = true;

  PF_LOG_INFO("serve: %d requests -> %d served, %d degraded, %d floor, "
              "%d shed (latency p50 %lld ns, p99 %lld ns)",
              static_cast<int>(R.Sessions.size()), R.Served, R.Degraded,
              R.FloorFallbacks, R.Shed,
              static_cast<long long>(R.LatencyP50Ns),
              static_cast<long long>(R.LatencyP99Ns));
  return R;
}

std::string pf::serve::renderServeSummary(const ServeResult &R) {
  std::string Out = "# pimflow serve summary\n";
  Out += "models:";
  for (size_t I = 0; I < R.ModelNames.size(); ++I)
    Out += (I ? "," : " ") + R.ModelNames[I];
  Out += "\n";
  Out += formatStr("policy: %s planned_channels: %d channel_pool: %d "
                   "floor: %d max_inflight: %d max_queue: %d seed: %llu\n",
                   R.PolicyName.c_str(), R.PlannedChannels, R.PoolChannels,
                   R.Floor, R.MaxInflight, R.MaxQueue,
                   static_cast<unsigned long long>(R.Seed));
  Out += formatStr("resilience: default_deadline_us=%lld retry_budget=%d "
                   "breaker_threshold=%d breaker_cooldown_us=%lld "
                   "faults=%s\n",
                   static_cast<long long>(R.DefaultDeadlineUs),
                   R.RetryBudget, R.BreakerThreshold,
                   static_cast<long long>(R.BreakerCooldownUs),
                   R.FaultSummary.c_str());
  for (const auto &SP : R.Sessions) {
    const Session &S = *SP;
    Out += formatStr(
        "req %04d model=%s batch=%d outcome=%s reason=%s channels=%d/%d "
        "arrival_ns=%lld start_ns=%lld end_ns=%lld queue_ns=%lld "
        "latency_ns=%lld deadline=%s retries=%d\n",
        S.Req.Id,
        R.ModelNames[static_cast<size_t>(S.Req.ModelIdx)].c_str(),
        S.Req.Batch, outcomeName(S.Outcome), outcomeReasonName(S.Reason),
        S.channelsGranted(), S.ChannelsWanted,
        static_cast<long long>(S.Req.ArrivalNs),
        static_cast<long long>(S.StartNs),
        static_cast<long long>(S.EndNs),
        static_cast<long long>(S.ran() ? S.queueDelayNs() : 0),
        static_cast<long long>(S.ran() ? S.latencyNs() : 0),
        deadlineStateName(S.deadlineState()), S.Retries);
  }
  Out += formatStr("outcomes: served=%d degraded=%d floor=%d shed=%d\n",
                   R.Served, R.Degraded, R.FloorFallbacks, R.Shed);
  Out += formatStr("shed_reasons: queue_full=%d deadline_expired=%d\n",
                   R.ShedQueueFull, R.ShedDeadline);
  Out += formatStr("floor_reasons: below_floor=%d retry_budget=%d\n",
                   R.FloorBelowFloor, R.FloorRetryBudget);
  Out += formatStr("deadline: met=%d missed_run=%d expired_queued=%d\n",
                   R.DeadlineMet, R.DeadlineMissedRun,
                   R.DeadlineExpiredQueued);
  Out += formatStr("resilience: interrupts=%d retries=%d budget_denied=%d "
                   "trips=%lld probes=%lld readmits=%lld recoveries=%lld\n",
                   R.FaultInterrupts, R.RetriesUsed, R.RetryBudgetDenied,
                   static_cast<long long>(R.BreakerTrips),
                   static_cast<long long>(R.BreakerProbes),
                   static_cast<long long>(R.BreakerReadmits),
                   static_cast<long long>(R.ChannelRecoveries));
  Out += formatStr("latency_ns: p50=%lld p99=%lld max=%lld\n",
                   static_cast<long long>(R.LatencyP50Ns),
                   static_cast<long long>(R.LatencyP99Ns),
                   static_cast<long long>(R.LatencyMaxNs));
  Out += formatStr("queue_delay_ns: p50=%lld p99=%lld\n",
                   static_cast<long long>(R.QueueDelayP50Ns),
                   static_cast<long long>(R.QueueDelayP99Ns));
  return Out;
}

std::string pf::serve::renderServeBenchJson(const ServeResult &R) {
  std::string Mix;
  for (size_t I = 0; I < R.ModelNames.size(); ++I)
    Mix += (I ? "+" : "") + R.ModelNames[I];

  obs::JsonWriter W;
  W.beginObject();
  W.key("results").beginArray();
  auto Row = [&](const char *Key, double EndToEndNs, double EnergyJ) {
    W.beginObject()
        .field("figure", "Serve")
        .field("key", Key)
        .field("model", Mix)
        .field("policy", R.PolicyName)
        .field("end_to_end_ns", EndToEndNs)
        .field("energy_j", EnergyJ);
    W.key("counters")
        .beginObject()
        .field("serve.served", static_cast<int64_t>(R.Served))
        .field("serve.degraded", static_cast<int64_t>(R.Degraded))
        .field("serve.floor_fallbacks",
               static_cast<int64_t>(R.FloorFallbacks))
        .field("serve.shed", static_cast<int64_t>(R.Shed))
        .endObject();
    W.endObject();
  };
  Row("serve/latency_p50", static_cast<double>(R.LatencyP50Ns),
      R.TotalEnergyJ);
  Row("serve/latency_p99", static_cast<double>(R.LatencyP99Ns),
      R.TotalEnergyJ);
  Row("serve/queue_delay_p50", static_cast<double>(R.QueueDelayP50Ns),
      R.TotalEnergyJ);
  W.endArray();
  W.endObject();
  return W.take();
}
