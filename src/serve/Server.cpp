//===- serve/Server.cpp - Closed-loop multi-tenant serving ----------------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <future>
#include <map>
#include <queue>

#include "obs/Json.h"
#include "support/Format.h"
#include "support/Log.h"
#include "support/ThreadPool.h"

using namespace pf;
using namespace pf::serve;

const char *pf::serve::outcomeName(RequestOutcome O) {
  switch (O) {
  case RequestOutcome::Served:
    return "served";
  case RequestOutcome::Degraded:
    return "degraded";
  case RequestOutcome::FloorFallback:
    return "floor";
  case RequestOutcome::Shed:
    return "shed";
  }
  pf_unreachable("unknown request outcome");
}

Server::Server(std::vector<std::pair<std::string, Graph>> InModels,
               ServerOptions O)
    : Options(O),
      Planned(O.Policy == OffloadPolicy::GpuOnly ? 0 : O.Flow.PimChannels),
      Pool(Planned == 0        ? 0
           : O.PoolChannels > 0 ? O.PoolChannels
                                : Planned),
      Flow(O.Policy, O.Flow) {
  PF_ASSERT(!InModels.empty(), "serve needs at least one model");
  for (auto &[Name, G] : InModels) {
    PreparedModel PM;
    PM.Name = Name;
    PM.Model = std::move(G);
    PM.Materialized = Graph("unprepared");
    PM.FloorDemoted = Graph("unprepared");
    Models.push_back(std::move(PM));
  }
}

SystemConfig Server::configFor(int GrantedChannels) const {
  // Mirrors the recovery ladder's remap: the plan stays fixed and only
  // Pim.Channels shrinks to the granted count (GPU lanes keep the planned
  // grouping — physically the ungranted PIM channels belong to *other*
  // sessions, not to this request's GPU).
  SystemConfig C = Flow.config();
  C.Pim.Channels = GrantedChannels;
  return C;
}

void Server::prepare() {
  if (Prepared)
    return;
  Prepared = true;

  const int Floor = std::clamp(Options.Flow.PimFloor, 0, Planned);
  for (PreparedModel &PM : Models) {
    // plan() consults the plan cache when configured, so a serve start
    // replays PR 7 artifacts instead of re-searching warm models.
    ExecutionPlan Plan = Flow.plan(PM.Model);
    PM.Materialized = Flow.materialize(PM.Model, Plan);
    // The GPU floor: the same transformed graph with every PIM node
    // demoted — the recovery ladder's whole-graph fallback, precomputed
    // once since serve falls back per request, not per fault.
    PM.FloorDemoted = PM.Materialized;
    for (const Node &N : PM.FloorDemoted.nodes())
      if (!N.Dead && N.Dev == Device::Pim)
        PM.FloorDemoted.node(N.Id).Dev = Device::Gpu;
    PM.UnitNsByChannels.assign(static_cast<size_t>(Planned) + 1, 0.0);
    PM.UnitEnergyJByChannels.assign(static_cast<size_t>(Planned) + 1, 0.0);
  }

  // Price every reachable (model, granted-channels) pair once, in
  // parallel: c = 0 is the GPU floor, c in [max(1, Floor), MaxGrant] the
  // (possibly degraded) PIM grants — a grant never exceeds the smaller of
  // the plan's want and the pool. Each entry runs under a throwaway
  // scope so pricing never pollutes the caller's registries, and the
  // result depends only on (graph, config) — not on evaluation order.
  struct Entry {
    size_t ModelIdx;
    int Channels;
  };
  const int MaxGrant = std::min(Planned, Pool);
  std::vector<Entry> Entries;
  for (size_t M = 0; M < Models.size(); ++M) {
    Entries.push_back({M, 0});
    for (int C = std::max(1, Floor); C <= MaxGrant; ++C)
      Entries.push_back({M, C});
  }
  ThreadPool Pool(static_cast<unsigned>(std::max(1, Options.Jobs)));
  Pool.parallelFor(Entries.size(), [&](size_t I) {
    const Entry &E = Entries[I];
    PreparedModel &PM = Models[E.ModelIdx];
    obs::Scope Throwaway;
    obs::ScopeGuard Guard(Throwaway);
    ExecutionEngine Engine(configFor(E.Channels));
    const Timeline TL =
        Engine.execute(E.Channels > 0 ? PM.Materialized : PM.FloorDemoted);
    PM.UnitNsByChannels[static_cast<size_t>(E.Channels)] = TL.TotalNs;
    PM.UnitEnergyJByChannels[static_cast<size_t>(E.Channels)] = TL.EnergyJ;
  });
}

ServeResult Server::run(const LoadSpec &Spec, DiagnosticEngine *DE) {
  prepare();

  const int Floor = std::clamp(Options.Flow.PimFloor, 0, Planned);
  const int MaxInflight = std::max(1, Options.MaxInflight);
  const int MaxQueue = std::max(0, Options.MaxQueue);

  ServeResult R;
  for (const PreparedModel &PM : Models)
    R.ModelNames.push_back(PM.Name);
  R.PolicyName = policyName(Options.Policy);
  R.PlannedChannels = Planned;
  R.PoolChannels = Pool;
  R.Floor = Floor;
  R.MaxInflight = MaxInflight;
  R.MaxQueue = MaxQueue;
  R.Seed = Spec.Seed;

  const std::vector<Request> Requests =
      generateRequests(Spec, static_cast<int>(Models.size()));
  R.Sessions.reserve(Requests.size());
  for (const Request &Q : Requests) {
    auto S = std::make_unique<Session>();
    S->Req = Q;
    S->ChannelsWanted = Planned;
    R.Sessions.push_back(std::move(S));
  }

  ChannelAllocator Alloc(Pool);
  ThreadPool Pool(static_cast<unsigned>(std::max(1, Options.Jobs)));

  // Each admitted request's engine run, re-executed for real under the
  // session's private scope. The virtual completion time comes from the
  // duration table, so worker timing never reorders the event loop; the
  // run result is cross-checked against the table below.
  struct RunResult {
    double TotalNs = 0.0;
    int MissingNodes = 0;
  };
  std::vector<std::pair<size_t, std::future<RunResult>>> Runs;
  auto submitRun = [&](Session &S) {
    const size_t Idx = static_cast<size_t>(S.Req.Id);
    const int C = S.channelsGranted();
    Runs.emplace_back(Idx, Pool.submit([this, &S, C]() -> RunResult {
      obs::ScopeGuard Guard(S.Scope);
      const PreparedModel &PM =
          Models[static_cast<size_t>(S.Req.ModelIdx)];
      const Graph &G = C > 0 ? PM.Materialized : PM.FloorDemoted;
      ExecutionEngine Engine(configFor(C));
      const Timeline TL = Engine.execute(G);
      RunResult RR;
      RR.TotalNs = TL.TotalNs;
      // Partially-executed-timeline guard: every live node must have a
      // schedule entry. Probed with find() — absence is a diagnostic
      // (serve.timeline-gap), never a fatal() killing the server.
      for (const Node &N : G.nodes())
        if (!N.Dead && !TL.find(N.Id))
          ++RR.MissingNodes;
      if (RR.MissingNodes > 0)
        obs::addCounter("serve.timeline_gaps", RR.MissingNodes);
      return RR;
    }));
  };

  // The discrete-event loop: single-threaded, over virtual nanoseconds.
  struct Completion {
    int64_t EndNs;
    int Id;
    bool operator>(const Completion &O) const {
      return EndNs != O.EndNs ? EndNs > O.EndNs : Id > O.Id;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      Completions;
  std::deque<int> Waiting;
  std::map<int, ChannelGrant> LiveGrants;
  int Inflight = 0;

  auto start = [&](Session &S, int64_t Now) {
    S.StartNs = Now;
    int C = 0;
    if (auto Grant = Alloc.tryAcquire(Planned, Floor)) {
      C = Grant->granted();
      S.Outcome = Grant->degraded() ? RequestOutcome::Degraded
                                    : RequestOutcome::Served;
      S.Channels = Grant->Channels;
      LiveGrants.emplace(S.Req.Id, std::move(*Grant));
    } else {
      S.Outcome = RequestOutcome::FloorFallback;
    }
    const PreparedModel &PM = Models[static_cast<size_t>(S.Req.ModelIdx)];
    S.UnitNs = PM.UnitNsByChannels[static_cast<size_t>(C)];
    S.UnitEnergyJ = PM.UnitEnergyJByChannels[static_cast<size_t>(C)];
    // Micro-batching: a batch-B request replays the unit run B times
    // back to back on its granted channels.
    const int64_t ServiceNs = std::max<int64_t>(
        1, std::llround(S.UnitNs * static_cast<double>(S.Req.Batch)));
    S.EndNs = Now + ServiceNs;
    Completions.push({S.EndNs, S.Req.Id});
    ++Inflight;
    submitRun(S);
  };

  size_t NextArrival = 0;
  while (NextArrival < Requests.size() || !Completions.empty()) {
    // Completions first at a tied timestamp: freed capacity and channels
    // are visible to an arrival at the same virtual instant.
    const bool TakeCompletion =
        !Completions.empty() &&
        (NextArrival >= Requests.size() ||
         Completions.top().EndNs <= Requests[NextArrival].ArrivalNs);
    if (TakeCompletion) {
      const Completion Done = Completions.top();
      Completions.pop();
      auto It = LiveGrants.find(Done.Id);
      if (It != LiveGrants.end()) {
        Alloc.release(It->second);
        LiveGrants.erase(It);
      }
      --Inflight;
      while (!Waiting.empty() && Inflight < MaxInflight) {
        Session &Next = *R.Sessions[static_cast<size_t>(Waiting.front())];
        Waiting.pop_front();
        start(Next, Done.EndNs);
      }
      continue;
    }
    const Request &Q = Requests[NextArrival++];
    Session &S = *R.Sessions[static_cast<size_t>(Q.Id)];
    if (Inflight < MaxInflight) {
      start(S, Q.ArrivalNs);
    } else if (static_cast<int>(Waiting.size()) < MaxQueue) {
      Waiting.push_back(Q.Id);
    } else {
      S.Outcome = RequestOutcome::Shed;
      S.StartNs = S.EndNs = Q.ArrivalNs;
    }
  }
  PF_ASSERT(Inflight == 0 && LiveGrants.empty() && Waiting.empty(),
            "serve event loop finished with live state");

  // Drain the real runs and cross-check them against the duration table:
  // a session's engine run must price exactly like the pricing pass (same
  // graph, same config, deterministic engine) or the table lied.
  for (auto &[Idx, Fut] : Runs) {
    const RunResult RR = Fut.get();
    Session &S = *R.Sessions[Idx];
    PF_ASSERT(std::abs(RR.TotalNs - S.UnitNs) < 0.5,
              "session run disagrees with the duration table");
    if (RR.MissingNodes > 0 && DE)
      DE->warning(DiagCode::ServeTimelineGap,
                  formatStr("request %d", S.Req.Id),
                  formatStr("%d node(s) missing from the executed "
                            "timeline",
                            RR.MissingNodes));
  }

  // Aggregates + the serve.* families, recorded into the caller's scope
  // in request-id order so exports are deterministic.
  std::vector<int64_t> Latencies, QueueDelays;
  for (const auto &SP : R.Sessions) {
    const Session &S = *SP;
    obs::addCounter("serve.requests");
    switch (S.Outcome) {
    case RequestOutcome::Served:
      ++R.Served;
      obs::addCounter("serve.served");
      break;
    case RequestOutcome::Degraded:
      ++R.Degraded;
      obs::addCounter("serve.degraded");
      break;
    case RequestOutcome::FloorFallback:
      ++R.FloorFallbacks;
      obs::addCounter("serve.floor_fallbacks");
      break;
    case RequestOutcome::Shed:
      ++R.Shed;
      obs::addCounter("serve.shed");
      break;
    }
    if (!S.ran())
      continue;
    Latencies.push_back(S.latencyNs());
    QueueDelays.push_back(S.queueDelayNs());
    R.TotalEnergyJ += S.UnitEnergyJ * S.Req.Batch;
    obs::recordMetric("serve.request_latency_ns",
                      static_cast<double>(S.latencyNs()));
    obs::recordMetric("serve.queue_delay_ns",
                      static_cast<double>(S.queueDelayNs()));
    obs::recordMetric("serve.service_ns",
                      static_cast<double>(S.serviceNs()));
  }

  // Exact nearest-rank percentiles over integer ns: byte-stable, unlike
  // the HDR histograms' bounded-error quantiles.
  auto Rank = [](std::vector<int64_t> &V, double Q) -> int64_t {
    if (V.empty())
      return 0;
    std::sort(V.begin(), V.end());
    const size_t N = V.size();
    size_t K = static_cast<size_t>(
        std::ceil(Q * static_cast<double>(N)));
    if (K == 0)
      K = 1;
    return V[std::min(N, K) - 1];
  };
  R.LatencyP50Ns = Rank(Latencies, 0.50);
  R.LatencyP99Ns = Rank(Latencies, 0.99);
  R.LatencyMaxNs = Latencies.empty() ? 0 : Latencies.back();
  R.QueueDelayP50Ns = Rank(QueueDelays, 0.50);
  R.QueueDelayP99Ns = Rank(QueueDelays, 0.99);

  PF_LOG_INFO("serve: %d requests -> %d served, %d degraded, %d floor, "
              "%d shed (latency p50 %lld ns, p99 %lld ns)",
              static_cast<int>(R.Sessions.size()), R.Served, R.Degraded,
              R.FloorFallbacks, R.Shed,
              static_cast<long long>(R.LatencyP50Ns),
              static_cast<long long>(R.LatencyP99Ns));
  return R;
}

std::string pf::serve::renderServeSummary(const ServeResult &R) {
  std::string Out = "# pimflow serve summary\n";
  Out += "models:";
  for (size_t I = 0; I < R.ModelNames.size(); ++I)
    Out += (I ? "," : " ") + R.ModelNames[I];
  Out += "\n";
  Out += formatStr("policy: %s planned_channels: %d channel_pool: %d "
                   "floor: %d max_inflight: %d max_queue: %d seed: %llu\n",
                   R.PolicyName.c_str(), R.PlannedChannels, R.PoolChannels,
                   R.Floor, R.MaxInflight, R.MaxQueue,
                   static_cast<unsigned long long>(R.Seed));
  for (const auto &SP : R.Sessions) {
    const Session &S = *SP;
    Out += formatStr(
        "req %04d model=%s batch=%d outcome=%s channels=%d/%d "
        "arrival_ns=%lld start_ns=%lld end_ns=%lld queue_ns=%lld "
        "latency_ns=%lld\n",
        S.Req.Id,
        R.ModelNames[static_cast<size_t>(S.Req.ModelIdx)].c_str(),
        S.Req.Batch, outcomeName(S.Outcome), S.channelsGranted(),
        S.ChannelsWanted, static_cast<long long>(S.Req.ArrivalNs),
        static_cast<long long>(S.StartNs),
        static_cast<long long>(S.EndNs),
        static_cast<long long>(S.ran() ? S.queueDelayNs() : 0),
        static_cast<long long>(S.ran() ? S.latencyNs() : 0));
  }
  Out += formatStr("outcomes: served=%d degraded=%d floor=%d shed=%d\n",
                   R.Served, R.Degraded, R.FloorFallbacks, R.Shed);
  Out += formatStr("latency_ns: p50=%lld p99=%lld max=%lld\n",
                   static_cast<long long>(R.LatencyP50Ns),
                   static_cast<long long>(R.LatencyP99Ns),
                   static_cast<long long>(R.LatencyMaxNs));
  Out += formatStr("queue_delay_ns: p50=%lld p99=%lld\n",
                   static_cast<long long>(R.QueueDelayP50Ns),
                   static_cast<long long>(R.QueueDelayP99Ns));
  return Out;
}

std::string pf::serve::renderServeBenchJson(const ServeResult &R) {
  std::string Mix;
  for (size_t I = 0; I < R.ModelNames.size(); ++I)
    Mix += (I ? "+" : "") + R.ModelNames[I];

  obs::JsonWriter W;
  W.beginObject();
  W.key("results").beginArray();
  auto Row = [&](const char *Key, double EndToEndNs, double EnergyJ) {
    W.beginObject()
        .field("figure", "Serve")
        .field("key", Key)
        .field("model", Mix)
        .field("policy", R.PolicyName)
        .field("end_to_end_ns", EndToEndNs)
        .field("energy_j", EnergyJ);
    W.key("counters")
        .beginObject()
        .field("serve.served", static_cast<int64_t>(R.Served))
        .field("serve.degraded", static_cast<int64_t>(R.Degraded))
        .field("serve.floor_fallbacks",
               static_cast<int64_t>(R.FloorFallbacks))
        .field("serve.shed", static_cast<int64_t>(R.Shed))
        .endObject();
    W.endObject();
  };
  Row("serve/latency_p50", static_cast<double>(R.LatencyP50Ns),
      R.TotalEnergyJ);
  Row("serve/latency_p99", static_cast<double>(R.LatencyP99Ns),
      R.TotalEnergyJ);
  Row("serve/queue_delay_p50", static_cast<double>(R.QueueDelayP50Ns),
      R.TotalEnergyJ);
  W.endArray();
  W.endObject();
  return W.take();
}
