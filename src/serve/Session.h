//===- serve/Session.h - Per-request serving session ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One admitted inference request's execution context (docs/INTERNALS.md
/// section 13). A `Session` owns everything the request's engine run
/// touches that used to be process-global: its observability scope (a
/// private counter + metrics registry pair installed thread-locally while
/// the run executes), its channel grant, and its outcome/timing record.
/// Two sessions therefore never share mutable state — the reentrancy fix
/// the serve tests and the tier-3 TSan gate pin down.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SERVE_SESSION_H
#define PIMFLOW_SERVE_SESSION_H

#include <cstdint>
#include <vector>

#include "obs/Scope.h"
#include "runtime/ChannelAllocator.h"
#include "serve/LoadGen.h"

namespace pf::serve {

/// Terminal state of a request.
enum class RequestOutcome : uint8_t {
  Served,        ///< ran with its full planned channel set
  Degraded,      ///< ran on a smaller (but >= floor) channel set
  FloorFallback, ///< no channels free: ran entirely on the GPU
  Shed,          ///< rejected (queue full or deadline expired), never ran
};

const char *outcomeName(RequestOutcome O);

/// Why a request ended up shed, degraded, or floored — the breakdown the
/// serve summary and report surface (docs/INTERNALS.md section 14).
enum class OutcomeReason : uint8_t {
  None,            ///< served in full, nothing to explain
  Contention,      ///< degraded at admission: pool busy, >= floor free
  BelowFloor,      ///< floored: fewer than floor channels were grantable
  FaultRetry,      ///< re-granted mid-run after a channel outage interrupt
  RetryBudget,     ///< floored: a retry was due but the budget was spent
  QueueFull,       ///< shed at arrival: wait line at --max-queue
  DeadlineExpired, ///< shed in queue: deadline passed before admission
};

const char *outcomeReasonName(OutcomeReason R);

/// Deadline classification of a request (none when it carried no
/// deadline).
enum class DeadlineState : uint8_t {
  None,          ///< no deadline attached
  Met,           ///< completed at or before arrival + deadline
  MissedRun,     ///< ran to completion, but past the deadline
  ExpiredQueued, ///< shed from the queue once the deadline passed
};

const char *deadlineStateName(DeadlineState D);

/// One execution attempt of an admitted request: the interval between an
/// admission (or mid-run re-grant) and its projected completion — or the
/// outage interrupt that cut it short. The serve event loop appends one
/// record per grant decision, so a request's attempt list is its full
/// virtual-time history: Attempts.size() == 1 + interrupts. The request
/// trace renders each attempt as one exec/retry span
/// (docs/INTERNALS.md section 15).
struct ExecAttempt {
  int64_t StartNs = 0;
  /// Projected completion when the attempt ran out, or the interrupt
  /// instant when an outage cut it (Interrupted below).
  int64_t EndNs = 0;
  std::vector<int> Channels; ///< granted ids (empty = GPU floor)
  RequestOutcome Outcome = RequestOutcome::Served;
  OutcomeReason Reason = OutcomeReason::None;
  bool Interrupted = false;
  /// Ordinal of the ChannelOutage window that interrupted the attempt
  /// (-1 when it ran to completion).
  int OutageId = -1;
  /// Unit-run device busy split under the attempt's granted config — the
  /// exec-phase breakdown `pimflow report --request=` renders.
  double UnitGpuBusyNs = 0.0;
  double UnitPimBusyNs = 0.0;

  int64_t durationNs() const { return EndNs - StartNs; }
};

/// One request's session: identity, virtual-time bookkeeping from the
/// serve event loop, the channel grant it ran under, and the private
/// observability scope its engine run recorded into.
struct Session {
  Request Req;
  RequestOutcome Outcome = RequestOutcome::Shed;
  OutcomeReason Reason = OutcomeReason::None;

  /// Channels the plan wanted / the allocator granted (granted ids kept
  /// for the pressure tests' disjointness assertions).
  int ChannelsWanted = 0;
  std::vector<int> Channels;

  /// Virtual times (ns): admission start and completion. A shed request
  /// keeps Start == End == the shed instant (arrival, or the deadline
  /// expiry for a queue-expired request).
  int64_t StartNs = 0;
  int64_t EndNs = 0;

  /// Absolute deadline (arrival + budget); 0 = none.
  int64_t DeadlineNs = 0;

  /// Mid-run fault retries this session consumed (each one re-granted
  /// channels and restarted the service interval on the virtual clock).
  int Retries = 0;

  /// Completion-queue generation: stale completions from before an
  /// interrupt are lazily discarded by the event loop.
  int Gen = 0;

  /// Channel-outage interrupts this session absorbed. Every interrupt
  /// closes one attempt and opens the next, so for a ran() session
  /// Attempts.size() == Interrupts + 1 (the chaos tests' attempt
  /// conservation law). Unlike Retries this also counts interrupts the
  /// retry budget denied (which demote to the floor without a re-grant).
  int Interrupts = 0;

  /// Stable trace correlation id: requestTraceId(Spec.Seed, Req.Id),
  /// stamped at stream generation so it is identical across --jobs and
  /// across reruns of the same (spec, options) input.
  uint64_t TraceId = 0;

  /// Whether the run's --trace-sample policy selected this request; only
  /// sampled sessions emit request-lane trace events and report
  /// segments.
  bool Sampled = false;

  /// Grant-to-grant execution history, one entry per admission or
  /// mid-run re-grant (empty for shed requests).
  std::vector<ExecAttempt> Attempts;

  /// Unit (batch-1) simulated latency / energy of the engine run that
  /// served this request; virtual service time is Batch * UnitNs.
  double UnitNs = 0.0;
  double UnitEnergyJ = 0.0;

  /// The request's private stats scope; the engine run executes under a
  /// ScopeGuard installing it.
  obs::Scope Scope;

  int channelsGranted() const { return static_cast<int>(Channels.size()); }
  bool ran() const { return Outcome != RequestOutcome::Shed; }
  int64_t queueDelayNs() const { return StartNs - Req.ArrivalNs; }
  int64_t serviceNs() const { return EndNs - StartNs; }
  int64_t latencyNs() const { return EndNs - Req.ArrivalNs; }

  bool hasDeadline() const { return DeadlineNs > 0; }
  DeadlineState deadlineState() const {
    if (!hasDeadline())
      return DeadlineState::None;
    if (!ran())
      return Reason == OutcomeReason::DeadlineExpired
                 ? DeadlineState::ExpiredQueued
                 : DeadlineState::None;
    return EndNs <= DeadlineNs ? DeadlineState::Met
                               : DeadlineState::MissedRun;
  }
};

} // namespace pf::serve

#endif // PIMFLOW_SERVE_SESSION_H
