//===- serve/Session.h - Per-request serving session ------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One admitted inference request's execution context (docs/INTERNALS.md
/// section 13). A `Session` owns everything the request's engine run
/// touches that used to be process-global: its observability scope (a
/// private counter + metrics registry pair installed thread-locally while
/// the run executes), its channel grant, and its outcome/timing record.
/// Two sessions therefore never share mutable state — the reentrancy fix
/// the serve tests and the tier-3 TSan gate pin down.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SERVE_SESSION_H
#define PIMFLOW_SERVE_SESSION_H

#include <cstdint>
#include <vector>

#include "obs/Scope.h"
#include "runtime/ChannelAllocator.h"
#include "serve/LoadGen.h"

namespace pf::serve {

/// Terminal state of a request.
enum class RequestOutcome : uint8_t {
  Served,        ///< ran with its full planned channel set
  Degraded,      ///< ran on a smaller (but >= floor) channel set
  FloorFallback, ///< no channels free: ran entirely on the GPU
  Shed,          ///< admission queue full: rejected, never ran
};

const char *outcomeName(RequestOutcome O);

/// One request's session: identity, virtual-time bookkeeping from the
/// serve event loop, the channel grant it ran under, and the private
/// observability scope its engine run recorded into.
struct Session {
  Request Req;
  RequestOutcome Outcome = RequestOutcome::Shed;

  /// Channels the plan wanted / the allocator granted (granted ids kept
  /// for the pressure tests' disjointness assertions).
  int ChannelsWanted = 0;
  std::vector<int> Channels;

  /// Virtual times (ns): admission start and completion. A shed request
  /// keeps Start == End == arrival.
  int64_t StartNs = 0;
  int64_t EndNs = 0;

  /// Unit (batch-1) simulated latency / energy of the engine run that
  /// served this request; virtual service time is Batch * UnitNs.
  double UnitNs = 0.0;
  double UnitEnergyJ = 0.0;

  /// The request's private stats scope; the engine run executes under a
  /// ScopeGuard installing it.
  obs::Scope Scope;

  int channelsGranted() const { return static_cast<int>(Channels.size()); }
  bool ran() const { return Outcome != RequestOutcome::Shed; }
  int64_t queueDelayNs() const { return StartNs - Req.ArrivalNs; }
  int64_t serviceNs() const { return EndNs - StartNs; }
  int64_t latencyNs() const { return EndNs - Req.ArrivalNs; }
};

} // namespace pf::serve

#endif // PIMFLOW_SERVE_SESSION_H
