//===- serve/ServeReport.h - Serve-mode perf report -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving sibling of obs/PerfReport: a schema-v3 JSON document of
/// kind `pimflow-serve-report` carrying the per-request outcome table,
/// exact request-latency / queue-delay percentiles, and the shared
/// counters/metrics sections (obs::emitObsSections) snapshotted from the
/// caller's scope — where the serve.* histogram families recorded by
/// Server::run live. `pimflow serve --perf-report=<path>` writes it.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SERVE_SERVEREPORT_H
#define PIMFLOW_SERVE_SERVEREPORT_H

#include <string>

#include "serve/Server.h"

namespace pf::serve {

/// Renders the serve report of \p R as JSON.
std::string renderServeReport(const ServeResult &R);

/// Writes renderServeReport(R) to \p Path; false on I/O failure.
bool writeServeReport(const ServeResult &R, const std::string &Path);

} // namespace pf::serve

#endif // PIMFLOW_SERVE_SERVEREPORT_H
