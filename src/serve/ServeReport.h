//===- serve/ServeReport.h - Serve-mode perf report -------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving sibling of obs/PerfReport: a schema-v4 JSON document of
/// kind `pimflow-serve-report` carrying the per-request outcome table
/// (with trace ids and, for sampled requests, virtual-time segment
/// lists), exact request-latency / queue-delay percentiles, and the
/// shared counters/metrics sections (obs::emitObsSections) snapshotted
/// from the caller's scope — where the serve.* histogram families
/// recorded by Server::run live. `pimflow serve --perf-report=<path>`
/// writes it; `pimflow report --request=<id>` renders one request's
/// attribution from it (renderServeRequestText).
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SERVE_SERVEREPORT_H
#define PIMFLOW_SERVE_SERVEREPORT_H

#include <string>

#include "obs/Json.h"
#include "serve/Server.h"

namespace pf::serve {

/// Renders the serve report of \p R as JSON.
std::string renderServeReport(const ServeResult &R);

/// Writes renderServeReport(R) to \p Path; false on I/O failure.
bool writeServeReport(const ServeResult &R, const std::string &Path);

/// Renders one request's virtual-time attribution from a parsed serve
/// report (`pimflow report --request=<id>`): the queue-wait interval,
/// each attempt's grant / exec-phase / retry segment, and the latency
/// split. Returns "" and fills \p Error when the document is not a serve
/// report, the id is absent, or the request was not sampled (pointing at
/// --trace-sample as the fix).
std::string renderServeRequestText(const obs::JsonValue &Report,
                                   int RequestId, std::string *Error);

} // namespace pf::serve

#endif // PIMFLOW_SERVE_SERVEREPORT_H
