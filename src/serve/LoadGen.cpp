//===- serve/LoadGen.cpp - Deterministic closed-loop load generator -------===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/LoadGen.h"

#include <cmath>

#include "support/Assert.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/StringUtil.h"

using namespace pf;
using namespace pf::serve;

bool LoadSpec::parse(const std::string &Spec, LoadSpec &Out,
                     DiagnosticEngine &DE) {
  if (Spec.empty())
    return true;
  bool Ok = true;
  auto Bad = [&](const std::string &Entry, const char *Why) {
    DE.error(DiagCode::ServeBadSpec, Entry, Why);
    Ok = false;
  };
  for (const std::string &Entry : split(Spec, ',')) {
    const size_t Colon = Entry.find(':');
    if (Colon == std::string::npos) {
      Bad(Entry, "expected key:value");
      continue;
    }
    const std::string Key = Entry.substr(0, Colon);
    const std::string Val = Entry.substr(Colon + 1);
    if (Key == "count") {
      auto N = parseInt(Val);
      if (!N || *N <= 0 || *N > 1'000'000)
        Bad(Entry, "count must be an integer in [1, 1000000]");
      else
        Out.Count = static_cast<int>(*N);
    } else if (Key == "seed") {
      auto S = parseUint(Val);
      if (!S)
        Bad(Entry, "seed must be an unsigned integer");
      else
        Out.Seed = *S;
    } else if (Key == "mean-gap-us") {
      auto G = parseInt(Val);
      if (!G || *G < 0)
        Bad(Entry, "mean-gap-us must be a non-negative integer");
      else
        Out.MeanGapUs = static_cast<double>(*G);
    } else if (Key == "deadline-us") {
      auto D = parseInt(Val);
      if (!D || *D < 0 || *D > 1'000'000'000)
        Bad(Entry, "deadline-us must be an integer in [0, 1000000000]");
      else
        Out.DeadlineUs = *D;
    } else if (Key == "batch") {
      std::vector<int> Batches;
      for (const std::string &B : split(Val, '|')) {
        auto N = parseInt(B);
        if (!N || *N <= 0 || *N > 1024) {
          Bad(Entry, "batch sizes must be integers in [1, 1024]");
          Batches.clear();
          break;
        }
        Batches.push_back(static_cast<int>(*N));
      }
      if (!Batches.empty())
        Out.Batches = std::move(Batches);
    } else {
      Bad(Entry,
          "unknown key (expected count/seed/mean-gap-us/batch/deadline-us)");
    }
  }
  return Ok;
}

std::vector<Request> pf::serve::generateRequests(const LoadSpec &Spec,
                                                 int NumModels) {
  PF_ASSERT(NumModels > 0, "load generation needs at least one model");
  PF_ASSERT(!Spec.Batches.empty(), "load generation needs a batch list");
  Rng R(Spec.Seed);
  std::vector<Request> Out;
  Out.reserve(static_cast<size_t>(Spec.Count));
  int64_t Clock = 0;
  for (int Id = 0; Id < Spec.Count; ++Id) {
    // Exponential inter-arrival with mean MeanGapUs, truncated to whole
    // nanoseconds so arrival times are integers (byte-stable summaries).
    const double U = R.nextDouble(); // [0, 1)
    const double GapUs = Spec.MeanGapUs * -std::log1p(-U);
    Clock += static_cast<int64_t>(GapUs * 1e3);
    Request Q;
    Q.Id = Id;
    Q.ArrivalNs = Clock;
    Q.ModelIdx = static_cast<int>(R.nextBelow(
        static_cast<uint64_t>(NumModels)));
    Q.Batch = Spec.Batches[static_cast<size_t>(
        R.nextBelow(Spec.Batches.size()))];
    // Fixed, not drawn: see the header's Rng-stream stability note.
    Q.DeadlineNs = Spec.DeadlineUs * 1000;
    Out.push_back(Q);
  }
  return Out;
}
