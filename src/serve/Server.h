//===- serve/Server.h - Closed-loop multi-tenant serving --------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `pimflow serve` engine (docs/INTERNALS.md section 13): admits a
/// deterministic request stream (serve/LoadGen.h) against pre-compiled
/// plans, arbitrating the PIM channel group between concurrent requests
/// with a ChannelAllocator and bounding concurrency with an admission
/// controller.
///
/// Determinism contract: outcomes are decided by a discrete-event
/// simulation over *virtual* nanoseconds, never by wall-clock races. The
/// server first prices every (model, granted-channel-count) pair once —
/// the duration table, computed concurrently but order-independently —
/// and the single-threaded event loop then schedules admissions and
/// completions from the table. Worker threads only re-execute each
/// admitted request's engine run under its Session's private scope (the
/// reentrancy exercise, cross-checked against the table); they cannot
/// influence admission order. A given (models, spec, options) input
/// therefore yields byte-identical summaries for every --jobs=N.
///
/// Admission policy, in order, for a request at the head of the line:
///  1. In-flight bound reached -> wait in the FIFO queue (or shed when
///     the queue is at --max-queue).
///  2. Otherwise take a channel grant: the full planned set when free,
///     any >= --pim-floor subset as a *degraded* run (the PR 4 recovery
///     ladder's remap semantics: same plan, shrunken Pim.Channels),
///  3. or, with fewer than floor channels free, fall back to the GPU
///     floor (every PIM node demoted, zero channels owned).
///
/// The arbitrated pool is the machine's PIM channel group
/// (--channel-pool, default: the per-plan planned count). When the pool
/// equals the planned count, grants are all-or-floor — every taker wants
/// the whole group; a pool that is not a multiple of the planned count
/// (e.g. 24 channels shared by 16-channel plans) is what leaves partial
/// remainders free and makes degraded grants reachable.
///
/// Resilience (docs/INTERNALS.md section 14): requests may carry
/// deadlines (shed once expired in queue, classified late when run past
/// them); the fault timeline's windowed outages interrupt live grants
/// mid-stream, consuming bounded retry budgets before demoting to the
/// GPU floor; and a ChannelScoreboard circuit breaker quarantines channels
/// that fail repeatedly, re-admitting them via seeded cooldown probes.
/// Everything runs on the same virtual clock, so a hostile machine is
/// exactly as deterministic as a healthy one.
///
//===----------------------------------------------------------------------===//

#ifndef PIMFLOW_SERVE_SERVER_H
#define PIMFLOW_SERVE_SERVER_H

#include <memory>
#include <string>
#include <vector>

#include "core/PimFlow.h"
#include "pim/FaultModel.h"
#include "runtime/ChannelScoreboard.h"
#include "serve/RequestTrace.h"
#include "serve/Session.h"

namespace pf::serve {

/// Serve-mode configuration over the compile-side PimFlowOptions.
struct ServerOptions {
  OffloadPolicy Policy = OffloadPolicy::PimFlow;
  /// Compile options; PimChannels is the per-request planned channel
  /// count and PimFloor the degraded minimum, mirroring the recovery
  /// ladder's use of the same fields.
  PimFlowOptions Flow;
  /// Max concurrently executing requests (--max-inflight).
  int MaxInflight = 4;
  /// Max requests waiting behind the in-flight bound (--max-queue);
  /// arrivals beyond it are shed.
  int MaxQueue = 8;
  /// Size of the shared PIM channel group the allocator arbitrates
  /// (--channel-pool); 0 means the per-plan planned count. See the file
  /// comment for why a pool larger than the planned count is the
  /// interesting multi-tenant configuration.
  int PoolChannels = 0;
  /// Worker threads re-executing admitted requests (--jobs); outcomes
  /// are identical for every value.
  int Jobs = 1;

  // Resilience knobs (docs/INTERNALS.md section 14).

  /// Default per-request latency budget in microseconds
  /// (--default-deadline-us); applied to requests whose spec carried no
  /// deadline-us. 0 = no deadline.
  int64_t DefaultDeadlineUs = 0;
  /// Global mid-run retry budget across the whole stream
  /// (--retry-budget): every channel-outage interrupt that re-grants
  /// channels consumes one unit; once spent, interrupted requests demote
  /// straight to the GPU floor. 0 disables mid-run retries entirely.
  int RetryBudget = 256;
  /// Per-session retry cap; -1 means Flow.MaxRetries (the PR 4 ladder's
  /// per-run budget).
  int SessionRetryBudget = -1;
  /// Consecutive failures that trip a channel's circuit breaker
  /// (--breaker-threshold); <= 0 disables tripping.
  int BreakerThreshold = 2;
  /// Base spacing of breaker cooldown probes in virtual microseconds
  /// (--breaker-cooldown-us); each probe adds a seeded jitter.
  int64_t BreakerCooldownUs = 500;
  /// Fault schedule evaluated against the serve loop's virtual clock:
  /// static dead channels are quarantined from t = 0 and windowed
  /// outages (dead@t1..t2:ch) open and close mid-stream. Slow/stall/
  /// transient entries are inert in serve mode (they price per-run, not
  /// per-stream).
  FaultModel Faults;

  /// Which requests keep full-fidelity traces (--trace-sample); the
  /// default traces everything. Sampling also gates the per-request
  /// segment lists in the serve report.
  TraceSamplePolicy Sample;
};

/// Aggregate outcome of a serve run. Sessions are ordered by request id;
/// percentiles are exact nearest-rank statistics over the non-shed
/// requests (integer ns, so summaries are byte-stable).
struct ServeResult {
  std::vector<std::string> ModelNames;
  std::vector<std::unique_ptr<Session>> Sessions;

  /// Echoed configuration (summary header / bench rows).
  std::string PolicyName;
  int PlannedChannels = 0;
  int PoolChannels = 0;
  int Floor = 0;
  int MaxInflight = 0;
  int MaxQueue = 0;
  uint64_t Seed = 0;
  int64_t DefaultDeadlineUs = 0;
  int RetryBudget = 0;
  int BreakerThreshold = 0;
  int64_t BreakerCooldownUs = 0;
  std::string FaultSummary; ///< FaultModel::describe() of the timeline

  int Served = 0;
  int Degraded = 0;
  int FloorFallbacks = 0;
  int Shed = 0;

  /// Shed / floor reason breakdowns (sum to Shed / FloorFallbacks).
  int ShedQueueFull = 0;
  int ShedDeadline = 0;
  int FloorBelowFloor = 0;  ///< fewer than floor channels grantable
  int FloorRetryBudget = 0; ///< floored because the retry budget was spent

  /// Deadline classification over deadline-carrying requests.
  int DeadlineMet = 0;
  int DeadlineMissedRun = 0;
  int DeadlineExpiredQueued = 0;

  /// Resilience tallies.
  int FaultInterrupts = 0;   ///< live grants cut by a channel outage
  int RetriesUsed = 0;       ///< interrupts that re-granted channels
  int RetryBudgetDenied = 0; ///< interrupts demoted for lack of budget
  int64_t BreakerTrips = 0;
  int64_t BreakerProbes = 0;
  int64_t BreakerReadmits = 0;
  int64_t ChannelRecoveries = 0; ///< non-breaker outage-end readmissions

  /// Chronological health event log (quarantine/trip/probe/readmit on the
  /// virtual clock) — the chaos tests' quarantine-exclusion evidence.
  std::vector<BreakerEvent> HealthEvents;

  /// Every channel grant the loop handed out (admission and fault-retry
  /// re-grants), in event order: the other half of the quarantine
  /// invariant (a quarantined channel never appears in a grant).
  struct GrantEvent {
    int64_t TimeNs = 0;
    int ReqId = 0;
    std::vector<int> Channels;
  };
  std::vector<GrantEvent> Grants;

  /// The run's windowed outages clamped to the pool (with their timeline
  /// ordinals) — the fault lanes of the request trace.
  std::vector<ChannelOutage> Outages;

  /// Canonical spelling of the sampling policy ("all" / "tail:8").
  std::string SamplePolicy;
  /// Requests the policy selected, ascending; those sessions carry
  /// Sampled = true.
  std::vector<int> SampledRequests;

  int64_t LatencyP50Ns = 0;
  int64_t LatencyP99Ns = 0;
  int64_t LatencyMaxNs = 0;
  int64_t QueueDelayP50Ns = 0;
  int64_t QueueDelayP99Ns = 0;
  double TotalEnergyJ = 0.0;

  int completed() const { return Served + Degraded + FloorFallbacks; }
};

/// Renders the golden per-request outcome summary: one header, one line
/// per request in id order, and the aggregate tail. Byte-deterministic
/// for a given (models, spec, options) input.
std::string renderServeSummary(const ServeResult &R);

/// Renders the bench-format results dump (`{"results": [...]}`) with the
/// pf_perf_diff-gated request-latency rows (serve/latency_p50 etc.) —
/// the ci.sh tier-8 regression gate against bench/baselines/BENCH_serve.json.
std::string renderServeBenchJson(const ServeResult &R);

/// The serving engine. Construction compiles (or replays from the plan
/// cache) every model's plan and materializes its transformed graph plus
/// the GPU-floor demotion; run() executes request streams against them.
class Server {
public:
  Server(std::vector<std::pair<std::string, Graph>> Models,
         ServerOptions Options);

  /// Runs \p Spec's request stream to completion and returns every
  /// session. Also records the serve.* counter/histogram families into
  /// the *caller's* active observability scope (the driver's globals for
  /// the CLI) for the perf-report / Prometheus exports. With a non-null
  /// \p DE, survivable irregularities (a node missing from a
  /// partially-executed timeline) surface as warnings instead of dying.
  ServeResult run(const LoadSpec &Spec, DiagnosticEngine *DE = nullptr);

  /// Renders the per-request Chrome trace of \p R (which must have come
  /// from this server's run(): node-level exec-phase spans replay the
  /// prepared unit timelines). Only sampled requests get lanes; the
  /// document is byte-identical for every --jobs=N
  /// (docs/INTERNALS.md section 15).
  std::string renderTrace(const ServeResult &R) const;

  /// Writes renderTrace(R) to \p Path; false on I/O failure.
  bool writeTrace(const ServeResult &R, const std::string &Path) const;

  const ServerOptions &options() const { return Options; }
  int plannedChannels() const { return Planned; }
  int poolChannels() const { return Pool; }

private:
  struct PreparedModel {
    std::string Name;
    Graph Model;        ///< original, as handed in
    Graph Materialized; ///< plan applied, verified (PIM annotations live)
    Graph FloorDemoted; ///< Materialized with every PIM node on the GPU
    /// Unit latency / energy by granted channel count c in [0, Planned];
    /// c = 0 prices FloorDemoted, c >= PimFloor prices Materialized under
    /// Pim.Channels = c. Entries in (0, PimFloor) are unused.
    std::vector<double> UnitNsByChannels;
    std::vector<double> UnitEnergyJByChannels;
    /// The unit run's full node schedule per granted count — the
    /// per-run span tree the request trace replays as exec-phase spans
    /// under each attempt.
    std::vector<Timeline> UnitTimelines;
  };

  SystemConfig configFor(int GrantedChannels) const;
  void prepare();
  /// The priced unit timeline for (model, granted channels); nullptr
  /// when unprepared or the entry was never priced.
  const Timeline *unitTimeline(int ModelIdx, int Channels) const;

  ServerOptions Options;
  int Planned = 0;
  int Pool = 0;
  PimFlow Flow;
  std::vector<PreparedModel> Models;
  bool Prepared = false;
};

} // namespace pf::serve

#endif // PIMFLOW_SERVE_SERVER_H
