//===- tests/core/PimFlowTest.cpp - facade tests ----------------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PimFlow.h"

#include <gtest/gtest.h>

#include "models/Zoo.h"

using namespace pf;

TEST(PimFlowTest, PolicyNames) {
  EXPECT_STREQ(policyName(OffloadPolicy::GpuOnly), "Baseline");
  EXPECT_STREQ(policyName(OffloadPolicy::NewtonPlus), "Newton+");
  EXPECT_STREQ(policyName(OffloadPolicy::NewtonPlusPlus), "Newton++");
  EXPECT_STREQ(policyName(OffloadPolicy::PimFlow), "PIMFlow");
  EXPECT_EQ(allPolicies().size(), 6u);
}

TEST(PimFlowTest, SystemConfigPerPolicy) {
  PimFlowOptions O;
  SystemConfig Base = systemConfigFor(OffloadPolicy::GpuOnly, O);
  EXPECT_EQ(Base.Gpu.MemChannels, 32);
  EXPECT_FALSE(Base.hasPim());

  SystemConfig NPlus = systemConfigFor(OffloadPolicy::NewtonPlus, O);
  EXPECT_EQ(NPlus.Gpu.MemChannels, 16);
  EXPECT_EQ(NPlus.Pim.Channels, 16);
  EXPECT_EQ(NPlus.Pim.NumGlobalBuffers, 1);
  EXPECT_FALSE(NPlus.Pim.GwriteLatencyHiding);
  EXPECT_FALSE(NPlus.Codegen.StridedGwrite);

  SystemConfig NPlusPlus = systemConfigFor(OffloadPolicy::NewtonPlusPlus, O);
  EXPECT_EQ(NPlusPlus.Pim.NumGlobalBuffers, 4);
  EXPECT_TRUE(NPlusPlus.Pim.GwriteLatencyHiding);
  EXPECT_TRUE(NPlusPlus.Codegen.StridedGwrite);
}

TEST(PimFlowTest, AblationOverrides) {
  PimFlowOptions O;
  O.NumGlobalBuffers = 2;
  O.GwriteLatencyHiding = true;
  SystemConfig C = systemConfigFor(OffloadPolicy::NewtonPlus, O);
  EXPECT_EQ(C.Pim.NumGlobalBuffers, 2);
  EXPECT_TRUE(C.Pim.GwriteLatencyHiding);
}

TEST(PimFlowTest, SearchOptionsPerPolicy) {
  PimFlowOptions O;
  SearchOptions NP = searchOptionsFor(OffloadPolicy::NewtonPlusPlus, O);
  EXPECT_FALSE(NP.AllowSplit);
  EXPECT_FALSE(NP.AllowPipeline);
  EXPECT_TRUE(NP.AllowFullOffload);
  SearchOptions Md = searchOptionsFor(OffloadPolicy::PimFlowMd, O);
  EXPECT_TRUE(Md.AllowSplit);
  EXPECT_FALSE(Md.AllowPipeline);
  SearchOptions Pl = searchOptionsFor(OffloadPolicy::PimFlowPl, O);
  EXPECT_FALSE(Pl.AllowSplit);
  EXPECT_TRUE(Pl.AllowPipeline);
  SearchOptions Full = searchOptionsFor(OffloadPolicy::PimFlow, O);
  EXPECT_TRUE(Full.AllowSplit && Full.AllowPipeline);
}

TEST(PimFlowTest, ToyEndToEndAllPolicies) {
  const Graph Model = buildToy();
  double BaselineNs = 0.0;
  for (OffloadPolicy Policy : allPolicies()) {
    PimFlow Flow(Policy);
    CompileResult R = Flow.compileAndRun(Model);
    EXPECT_GT(R.endToEndNs(), 0.0);
    EXPECT_GT(R.energyJ(), 0.0);
    EXPECT_FALSE(R.Transformed.validate().has_value());
    if (Policy == OffloadPolicy::GpuOnly)
      BaselineNs = R.endToEndNs();
    else
      EXPECT_LT(R.endToEndNs(), 1.2 * BaselineNs);
  }
}

TEST(PimFlowTest, MechanismOrderingOnMobileNet) {
  // Fig. 9's qualitative ordering on a mobile CNN: PIMFlow is best, and
  // every PIM mechanism beats or matches Newton+ on CONV layers.
  const Graph Model = buildMobileNetV2();
  std::map<OffloadPolicy, CompileResult> R;
  for (OffloadPolicy P : allPolicies())
    R.emplace(P, PimFlow(P).compileAndRun(Model));

  const double Base = R.at(OffloadPolicy::GpuOnly).ConvLayerNs;
  EXPECT_LT(R.at(OffloadPolicy::NewtonPlusPlus).ConvLayerNs,
            R.at(OffloadPolicy::NewtonPlus).ConvLayerNs * 1.001);
  EXPECT_LT(R.at(OffloadPolicy::PimFlowMd).ConvLayerNs,
            R.at(OffloadPolicy::NewtonPlusPlus).ConvLayerNs * 1.001);
  EXPECT_LT(R.at(OffloadPolicy::PimFlowMd).ConvLayerNs, Base);

  const double BaseE2e = R.at(OffloadPolicy::GpuOnly).endToEndNs();
  EXPECT_LT(R.at(OffloadPolicy::PimFlow).endToEndNs(), BaseE2e);
  // Algorithm 1 optimizes the sum of isolated segment profiles, so the
  // combined policy can trail a variant by a small end-to-end margin when
  // cross-segment interactions differ from the profiles.
  EXPECT_LE(R.at(OffloadPolicy::PimFlow).endToEndNs(),
            R.at(OffloadPolicy::PimFlowMd).endToEndNs() * 1.02);
  EXPECT_LE(R.at(OffloadPolicy::PimFlow).endToEndNs(),
            R.at(OffloadPolicy::PimFlowPl).endToEndNs() * 1.02);
}

TEST(PimFlowTest, VggGainsFromFcOffload) {
  // VGG's huge FC layers are memory-bound: every PIM mechanism must
  // offload them and gain end-to-end.
  const Graph Model = buildVgg16();
  CompileResult Base = PimFlow(OffloadPolicy::GpuOnly).compileAndRun(Model);
  CompileResult NPlus =
      PimFlow(OffloadPolicy::NewtonPlus).compileAndRun(Model);
  EXPECT_LT(NPlus.FcLayerNs, 0.3 * Base.FcLayerNs);
  EXPECT_LT(NPlus.endToEndNs(), Base.endToEndNs());
}

TEST(PimFlowTest, MemoryOptimizerAblation) {
  // Section 4.3.2: without the layout optimization most splitting attempts
  // are futile.
  const Graph Model = buildMobileNetV2();
  PimFlowOptions On, Off;
  Off.MemoryOptimizer = false;
  CompileResult ROn =
      PimFlow(OffloadPolicy::PimFlowMd, On).compileAndRun(Model);
  CompileResult ROff =
      PimFlow(OffloadPolicy::PimFlowMd, Off).compileAndRun(Model);
  EXPECT_LT(ROn.endToEndNs(), ROff.endToEndNs());
}

TEST(PimFlowTest, ChannelRatioAffectsPerformance) {
  // Fig. 13: very few PIM channels must be worse than the 16/16 split for
  // a PIM-friendly model.
  const Graph Model = buildMnasNet();
  PimFlowOptions Few, Even;
  Few.PimChannels = 4;
  Even.PimChannels = 16;
  const double TFew =
      PimFlow(OffloadPolicy::PimFlow, Few).compileAndRun(Model).endToEndNs();
  const double TEven =
      PimFlow(OffloadPolicy::PimFlow, Even).compileAndRun(Model)
          .endToEndNs();
  EXPECT_LT(TEven, TFew);
}

TEST(PimFlowTest, ContentionIsNegligible) {
  const Graph Model = buildToy();
  PimFlowOptions O;
  O.ModelContention = true;
  CompileResult R = PimFlow(OffloadPolicy::PimFlow, O).compileAndRun(Model);
  EXPECT_LT(R.Schedule.ContentionSlowdown, 1.01);
}

TEST(PimFlowTest, TransformedGraphKeepsInterface) {
  const Graph Model = buildToy();
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  ASSERT_EQ(R.Transformed.graphOutputs().size(),
            Model.graphOutputs().size());
  EXPECT_EQ(R.Transformed.value(R.Transformed.graphOutputs()[0]).Shape,
            Model.value(Model.graphOutputs()[0]).Shape);
}

TEST(PimFlowTest, VerifiedPipelineMatchesDefault) {
  // Runtime per-pass verification + the differential interpreter check:
  // the pipeline must pass both on a clean model, and produce the same
  // result as the unverified configuration.
  const Graph Model = buildToy();
  PimFlowOptions Checked;
  Checked.VerifyPasses = true;
  Checked.DifferentialCheck = true;
  CompileResult R =
      PimFlow(OffloadPolicy::PimFlow, Checked).compileAndRun(Model);
  CompileResult Plain =
      PimFlow(OffloadPolicy::PimFlow).compileAndRun(Model);
  EXPECT_EQ(R.endToEndNs(), Plain.endToEndNs());
}

TEST(PimFlowTest, FinalVerifyGateRejectsCorruptModel) {
  // The facade's exit gate runs the full verifier on every compile: a
  // model with illegal conv attributes (pad >= kernel would break the
  // H-split arithmetic) dies with a rendered diagnostic, not a wrong
  // answer.
  Graph Model = buildToy();
  for (const Node &N : Model.nodes()) {
    if (N.Dead || N.Kind != OpKind::Conv2d)
      continue;
    std::get<Conv2dAttrs>(Model.node(N.Id).Attrs).PadTop = 99;
    break;
  }
  EXPECT_DEATH(PimFlow(OffloadPolicy::GpuOnly).compileAndRun(Model),
               "verify.illegal-attrs");
}
