//===- tests/core/ReportTest.cpp - report generator tests -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include <gtest/gtest.h>

#include "models/Zoo.h"

using namespace pf;

TEST(ReportTest, StatsCoverAllScheduledNodes) {
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildToy());
  ExecutionStats S = computeStats(R);
  EXPECT_EQ(static_cast<size_t>(S.GpuKernels + S.PimKernels +
                                S.FusedOrFreeNodes),
            R.Schedule.Nodes.size());
  EXPECT_GT(S.PimKernels, 0);
  EXPECT_GT(S.GpuKernels, 0);
}

TEST(ReportTest, PimCommandCountsPositiveWhenOffloaded) {
  CompileResult R =
      PimFlow(OffloadPolicy::NewtonPlusPlus).compileAndRun(buildToy());
  ExecutionStats S = computeStats(R);
  if (S.PimKernels > 0) {
    EXPECT_GT(S.PimGwriteBursts, 0);
    EXPECT_GT(S.PimCompColumns, 0);
    EXPECT_GT(S.PimWeightBytes, 0);
  }
}

TEST(ReportTest, GpuOnlyHasNoPimActivity) {
  CompileResult R = PimFlow(OffloadPolicy::GpuOnly).compileAndRun(buildToy());
  ExecutionStats S = computeStats(R);
  EXPECT_EQ(S.PimKernels, 0);
  EXPECT_EQ(S.PimCompColumns, 0);
  EXPECT_EQ(S.PimWeightBytes, 0);
  EXPECT_EQ(S.PimBusyFraction, 0.0);
}

TEST(ReportTest, BusyFractionsBounded) {
  CompileResult R =
      PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildMobileNetV2());
  ExecutionStats S = computeStats(R);
  EXPECT_GE(S.GpuBusyFraction, 0.0);
  EXPECT_LE(S.GpuBusyFraction, 1.0 + 1e-9);
  EXPECT_GE(S.PimBusyFraction, 0.0);
  EXPECT_LE(S.PimBusyFraction, 1.0 + 1e-9);
}

TEST(ReportTest, RenderedReportHasSections) {
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildToy());
  const std::string Text = renderReport(R);
  EXPECT_NE(Text.find("PIMFlow report"), std::string::npos);
  EXPECT_NE(Text.find("segments:"), std::string::npos);
  EXPECT_NE(Text.find("COMP columns"), std::string::npos);
  EXPECT_NE(Text.find("gpu |"), std::string::npos);
  EXPECT_NE(Text.find("pim |"), std::string::npos);
}

TEST(ReportTest, WeightPlacementSplitsByDevice) {
  // VGG's FC weights (~270 MB) move to PIM under Newton+.
  CompileResult R =
      PimFlow(OffloadPolicy::NewtonPlus).compileAndRun(buildVgg16());
  ExecutionStats S = computeStats(R);
  EXPECT_GT(S.PimWeightBytes, 200'000'000);
  EXPECT_GT(S.GpuWeightBytes, 10'000'000); // Conv weights stay.
}

TEST(ReportTest, HbmPimPresetDiffers) {
  const PimConfig Hbm = PimConfig::hbmPim();
  const PimConfig Aim = PimConfig::newtonPlusPlus();
  EXPECT_NE(Hbm.BanksPerChannel, Aim.BanksPerChannel);
  EXPECT_LT(Hbm.ClockGhz, Aim.ClockGhz);
  EXPECT_LT(Hbm.macsPerComp(), Aim.macsPerComp());
}
