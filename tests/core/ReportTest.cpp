//===- tests/core/ReportTest.cpp - report generator tests -------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "obs/Json.h"
#include "obs/StatsExport.h"

using namespace pf;

TEST(ReportTest, StatsCoverAllScheduledNodes) {
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildToy());
  ExecutionStats S = computeStats(R);
  EXPECT_EQ(static_cast<size_t>(S.GpuKernels + S.PimKernels +
                                S.FusedOrFreeNodes),
            R.Schedule.Nodes.size());
  EXPECT_GT(S.PimKernels, 0);
  EXPECT_GT(S.GpuKernels, 0);
}

TEST(ReportTest, PimCommandCountsPositiveWhenOffloaded) {
  CompileResult R =
      PimFlow(OffloadPolicy::NewtonPlusPlus).compileAndRun(buildToy());
  ExecutionStats S = computeStats(R);
  if (S.PimKernels > 0) {
    EXPECT_GT(S.PimGwriteBursts, 0);
    EXPECT_GT(S.PimCompColumns, 0);
    EXPECT_GT(S.PimWeightBytes, 0);
  }
}

TEST(ReportTest, GpuOnlyHasNoPimActivity) {
  CompileResult R = PimFlow(OffloadPolicy::GpuOnly).compileAndRun(buildToy());
  ExecutionStats S = computeStats(R);
  EXPECT_EQ(S.PimKernels, 0);
  EXPECT_EQ(S.PimCompColumns, 0);
  EXPECT_EQ(S.PimWeightBytes, 0);
  EXPECT_EQ(S.PimBusyFraction, 0.0);
}

TEST(ReportTest, BusyFractionsBounded) {
  CompileResult R =
      PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildMobileNetV2());
  ExecutionStats S = computeStats(R);
  EXPECT_GE(S.GpuBusyFraction, 0.0);
  EXPECT_LE(S.GpuBusyFraction, 1.0 + 1e-9);
  EXPECT_GE(S.PimBusyFraction, 0.0);
  EXPECT_LE(S.PimBusyFraction, 1.0 + 1e-9);
}

TEST(ReportTest, RenderedReportHasSections) {
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildToy());
  const std::string Text = renderReport(R);
  EXPECT_NE(Text.find("PIMFlow report"), std::string::npos);
  EXPECT_NE(Text.find("segments:"), std::string::npos);
  EXPECT_NE(Text.find("COMP columns"), std::string::npos);
  EXPECT_NE(Text.find("gpu |"), std::string::npos);
  EXPECT_NE(Text.find("pim |"), std::string::npos);
}

TEST(ReportTest, WeightPlacementSplitsByDevice) {
  // VGG's FC weights (~270 MB) move to PIM under Newton+.
  CompileResult R =
      PimFlow(OffloadPolicy::NewtonPlus).compileAndRun(buildVgg16());
  ExecutionStats S = computeStats(R);
  EXPECT_GT(S.PimWeightBytes, 200'000'000);
  EXPECT_GT(S.GpuWeightBytes, 10'000'000); // Conv weights stay.
}

TEST(ReportTest, JsonStatsRoundTripMatchesComputeStats) {
  CompileResult R = PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildToy());
  const ExecutionStats S = computeStats(R);

  const auto Doc = obs::JsonValue::parse(obs::renderStatsJson(R, S));
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("model")->Str, R.Transformed.name());
  EXPECT_EQ(Doc->find("policy")->Str, policyName(R.Policy));
  EXPECT_DOUBLE_EQ(Doc->numberOr("end_to_end_ns", -1.0), R.endToEndNs());

  const obs::JsonValue *J = Doc->find("stats");
  ASSERT_NE(J, nullptr);
  // Every command total must match the prose report's source of truth
  // exactly (renderStatsJson and renderReport both serialize computeStats).
  EXPECT_EQ(J->numberOr("gpu_kernels", -1), S.GpuKernels);
  EXPECT_EQ(J->numberOr("pim_kernels", -1), S.PimKernels);
  EXPECT_EQ(J->numberOr("fused_or_free_nodes", -1), S.FusedOrFreeNodes);
  EXPECT_EQ(J->numberOr("pim_gwrite_bursts", -1),
            static_cast<double>(S.PimGwriteBursts));
  EXPECT_EQ(J->numberOr("pim_g_acts", -1), static_cast<double>(S.PimGActs));
  EXPECT_EQ(J->numberOr("pim_comp_columns", -1),
            static_cast<double>(S.PimCompColumns));
  EXPECT_EQ(J->numberOr("pim_read_res", -1),
            static_cast<double>(S.PimReadRes));
  EXPECT_EQ(J->numberOr("pim_weight_bytes", -1),
            static_cast<double>(S.PimWeightBytes));
  EXPECT_EQ(J->numberOr("gpu_weight_bytes", -1),
            static_cast<double>(S.GpuWeightBytes));
  EXPECT_DOUBLE_EQ(J->numberOr("gpu_busy_fraction", -1.0),
                   S.GpuBusyFraction);
  EXPECT_DOUBLE_EQ(J->numberOr("pim_busy_fraction", -1.0),
                   S.PimBusyFraction);

  const obs::JsonValue *TL = Doc->find("timeline");
  ASSERT_NE(TL, nullptr);
  EXPECT_DOUBLE_EQ(TL->numberOr("total_ns", -1.0), R.Schedule.TotalNs);
  EXPECT_EQ(TL->numberOr("scheduled_nodes", -1),
            static_cast<double>(R.Schedule.Nodes.size()));
}

TEST(ReportTest, HbmPimPresetDiffers) {
  const PimConfig Hbm = PimConfig::hbmPim();
  const PimConfig Aim = PimConfig::newtonPlusPlus();
  EXPECT_NE(Hbm.BanksPerChannel, Aim.BanksPerChannel);
  EXPECT_LT(Hbm.ClockGhz, Aim.ClockGhz);
  EXPECT_LT(Hbm.macsPerComp(), Aim.macsPerComp());
}
