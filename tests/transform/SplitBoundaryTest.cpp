//===- tests/transform/SplitBoundaryTest.cpp - split boundaries -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary regressions for convInputRowsFor: N-way H-splits of a single
/// convolution must reproduce the unsplit interpreter result bit-exactly,
/// including the hard cases — odd output heights that split unevenly,
/// stride 2 (where the last part's first input row is not the previous
/// part's last), and kernels 3/5/7 with symmetric padding. A per-row
/// oracle cross-checks the returned row ranges against the conv
/// definition directly.
///
//===----------------------------------------------------------------------===//

#include "transform/SplitUtil.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/ShapeInference.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"
#include "support/Format.h"

using namespace pf;

namespace {

/// input -> conv(K, Stride, Pad) -> output.
Graph convGraph(int64_t H, int64_t K, int64_t Stride, int64_t Pad,
                bool Bias = false) {
  GraphBuilder B("split-boundary");
  ValueId X = B.input("x", TensorShape{1, H, H, 3});
  B.output(B.conv2d(X, 4, K, Stride, Pad, 1, Bias));
  return B.take();
}

NodeId firstConv(const Graph &G) {
  for (const Node &N : G.nodes())
    if (!N.Dead && N.Kind == OpKind::Conv2d)
      return N.Id;
  return InvalidNode;
}

/// Rewrites the first conv of a copy of \p Original into \p Parts
/// row-contiguous sub-convs (same weights, pads from convInputRowsFor)
/// joined by a Concat — the N-way generalization of the MD-DP split.
Graph splitConvNWays(const Graph &Original, int64_t Parts) {
  Graph G = Original;
  const Node N = G.node(firstConv(G)); // Copy: references would dangle.
  const Conv2dAttrs Attrs = N.conv();
  const int64_t InH = G.value(N.Inputs[0]).Shape.dim(1);
  const int64_t Ho = G.value(N.Outputs[0]).Shape.dim(1);
  PiecewiseTensor Input(G, N.Inputs[0]);

  std::vector<ValueId> PartOuts;
  int64_t PartNo = 0;
  for (auto [Lo, Hi] : splitRange(Ho, Parts)) {
    const ConvInputReq Req = convInputRowsFor(Attrs, InH, Lo, Hi);
    Conv2dAttrs A = Attrs;
    A.PadTop = Req.PadTop;
    A.PadBottom = Req.PadBottom;
    std::vector<ValueId> Ins = {Input.range(Req.InBegin, Req.InEnd),
                                N.Inputs[1]};
    if (N.Inputs.size() > 2)
      Ins.push_back(N.Inputs[2]);
    const std::string Name =
        formatStr("%s.part%lld", N.Name.c_str(),
                  static_cast<long long>(PartNo++));
    ValueId Out = G.addValue(Name + ".out", TensorShape{});
    NodeId P =
        G.addNode(OpKind::Conv2d, Name, A, std::move(Ins), {Out});
    EXPECT_FALSE(inferNodeShapes(G, P).has_value());
    EXPECT_EQ(G.value(Out).Shape.dim(1), Hi - Lo)
        << "part [" << Lo << ", " << Hi << ") height mismatch";
    PartOuts.push_back(Out);
  }

  const ValueId OrigOut = N.Outputs[0];
  G.removeNode(N.Id);
  ConcatAttrs CA;
  CA.Axis = 1;
  NodeId Join = G.addNode(OpKind::Concat, N.Name + ".join", CA,
                          std::move(PartOuts), {OrigOut});
  EXPECT_FALSE(inferNodeShapes(G, Join).has_value());
  return G;
}

/// Runs \p G on deterministic random inputs.
std::vector<Tensor> runGraph(const Graph &G) {
  std::vector<Tensor> Inputs;
  for (ValueId In : G.graphInputs())
    Inputs.push_back(
        Interpreter::randomInput(G.value(In).Shape, 17 + In));
  return Interpreter(G).run(Inputs);
}

void expectBitIdentical(const Graph &A, const Graph &B) {
  auto OutA = runGraph(A);
  auto OutB = runGraph(B);
  ASSERT_EQ(OutA.size(), OutB.size());
  for (size_t I = 0; I < OutA.size(); ++I) {
    ASSERT_EQ(OutA[I].shape(), OutB[I].shape());
    for (int64_t E = 0; E < OutA[I].numElements(); ++E)
      ASSERT_EQ(OutA[I].at(E), OutB[I].at(E)) << "element " << E;
  }
}

} // namespace

//===----------------------------------------------------------------------===
// Per-row oracle: the returned range matches the conv definition
//===----------------------------------------------------------------------===

TEST(SplitBoundaryTest, RowRangesMatchConvDefinition) {
  for (int64_t K : {3, 5, 7}) {
    for (int64_t Stride : {1, 2, 3}) {
      for (int64_t Pad = 0; Pad < K; ++Pad) {
        for (int64_t InH : {9, 14, 15}) {
          const int64_t Ho = (InH + 2 * Pad - K) / Stride + 1;
          if (Ho <= 0)
            continue;
          Conv2dAttrs A;
          A.KernelH = A.KernelW = K;
          A.StrideH = A.StrideW = Stride;
          A.PadTop = A.PadBottom = Pad;
          for (int64_t R = 0; R < Ho; ++R) {
            // Output row R reads padded rows [R*S, R*S + K), i.e. real
            // input rows clamped to [0, InH).
            const int64_t First = R * Stride - Pad;
            const int64_t Last = First + K;
            SCOPED_TRACE(formatStr("K=%lld S=%lld P=%lld InH=%lld R=%lld",
                                   static_cast<long long>(K),
                                   static_cast<long long>(Stride),
                                   static_cast<long long>(Pad),
                                   static_cast<long long>(InH),
                                   static_cast<long long>(R)));
            const ConvInputReq Req = convInputRowsFor(A, InH, R, R + 1);
            EXPECT_EQ(Req.InBegin, std::max<int64_t>(First, 0));
            EXPECT_EQ(Req.InEnd, std::min(Last, InH));
            EXPECT_EQ(Req.PadTop, std::max<int64_t>(-First, 0));
            EXPECT_EQ(Req.PadBottom, std::max<int64_t>(Last - InH, 0));
            EXPECT_LT(Req.InBegin, Req.InEnd); // Reads a real row.
          }
        }
      }
    }
  }
}

TEST(SplitBoundaryTest, FullRangeReproducesOriginalPads) {
  Conv2dAttrs A;
  A.KernelH = A.KernelW = 5;
  A.StrideH = A.StrideW = 2;
  A.PadTop = A.PadBottom = 2;
  const int64_t Ho = (15 + 4 - 5) / 2 + 1; // 8
  const ConvInputReq Req = convInputRowsFor(A, 15, 0, Ho);
  EXPECT_EQ(Req.InBegin, 0);
  EXPECT_EQ(Req.InEnd, 15);
  EXPECT_EQ(Req.PadTop, 2);
  EXPECT_EQ(Req.PadBottom, 2);
}

//===----------------------------------------------------------------------===
// End-to-end: N-way splits are bit-identical to the unsplit conv
//===----------------------------------------------------------------------===

struct BoundaryCase {
  int64_t H, K, Stride, Pad, Parts;
  bool Bias;
};

class SplitBoundaryEquivalence
    : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(SplitBoundaryEquivalence, NWaySplitBitIdentical) {
  const BoundaryCase C = GetParam();
  const Graph Original =
      convGraph(C.H, C.K, C.Stride, C.Pad, C.Bias);
  const Graph Split = splitConvNWays(Original, C.Parts);
  // The rewritten graph must satisfy every verifier invariant...
  ASSERT_FALSE(verify(Split).has_value());
  // ...and compute the same function.
  expectBitIdentical(Original, Split);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SplitBoundaryEquivalence,
    ::testing::Values(
        // Odd output heights splitting unevenly (15 -> 4+4+4+3).
        BoundaryCase{15, 3, 1, 1, 4, false},
        BoundaryCase{15, 5, 1, 2, 4, true},
        BoundaryCase{9, 7, 1, 3, 2, false},
        // Stride 2: part boundaries land between sampled rows. 15
        // rows, k=3, s=2, p=1 -> 8 output rows -> 3+3+2.
        BoundaryCase{15, 3, 2, 1, 3, false},
        BoundaryCase{15, 5, 2, 2, 3, true},
        BoundaryCase{16, 7, 2, 3, 3, false},
        // Stride 2 without padding (bottom rows partially consumed).
        BoundaryCase{15, 3, 2, 0, 3, false},
        // Asymmetric-looking case: stride larger than half the kernel.
        BoundaryCase{14, 7, 2, 3, 4, true},
        // One part per output row: every boundary is exercised.
        BoundaryCase{9, 7, 1, 3, 9, false},
        BoundaryCase{11, 5, 2, 2, 6, false},
        BoundaryCase{15, 3, 2, 1, 8, true}));

TEST(SplitBoundaryTest, SplitCountsSweepOddHeight) {
  // Sweep every part count for one odd-height strided conv: 15 rows,
  // k=3, s=2, p=1 gives 8 output rows; parts 2..8 cover every uneven
  // partition shape.
  const Graph Original = convGraph(15, 3, 2, 1);
  for (int64_t Parts = 2; Parts <= 8; ++Parts) {
    SCOPED_TRACE(formatStr("parts=%lld", static_cast<long long>(Parts)));
    const Graph Split = splitConvNWays(Original, Parts);
    ASSERT_FALSE(verify(Split).has_value());
    expectBitIdentical(Original, Split);
  }
}
