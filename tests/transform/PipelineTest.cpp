//===- tests/transform/PipelineTest.cpp - pipelining pass tests -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/PipelinePass.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/ShapeInference.h"
#include "runtime/Interpreter.h"

using namespace pf;

namespace {

std::vector<Tensor> runGraph(const Graph &G, uint64_t Seed = 7) {
  std::vector<Tensor> Inputs;
  for (ValueId In : G.graphInputs())
    Inputs.push_back(
        Interpreter::randomInput(G.value(In).Shape, Seed + In));
  return Interpreter(G).run(Inputs);
}

void expectSameOutputs(const Graph &A, const Graph &B) {
  auto OutA = runGraph(A);
  auto OutB = runGraph(B);
  ASSERT_EQ(OutA.size(), OutB.size());
  for (size_t I = 0; I < OutA.size(); ++I) {
    ASSERT_EQ(OutA[I].shape(), OutB[I].shape());
    for (int64_t E = 0; E < OutA[I].numElements(); ++E)
      ASSERT_EQ(OutA[I].at(E), OutB[I].at(E)) << "element " << E;
  }
}

/// A MobileNet-style 1x1 -> relu6 -> DW(3x3, stride S) -> relu6 -> 1x1
/// block; returns the conv/activation chain node ids in order.
Graph invertedResidual(int64_t H, int64_t Cin, int64_t Expand,
                       int64_t Stride, std::vector<NodeId> *Chain) {
  GraphBuilder B("invres");
  ValueId X = B.input("x", TensorShape{1, H, H, Cin});
  ValueId V = B.conv2d(X, Cin * Expand, 1, 1, 0);
  V = B.relu6(V);
  V = B.dwConv(V, 3, Stride, 1);
  V = B.relu6(V);
  V = B.conv2d(V, Cin, 1, 1, 0);
  B.output(V);
  Graph G = B.take();
  if (Chain)
    *Chain = G.topoOrder();
  return G;
}

} // namespace

TEST(PipelineTest, ChainValidation) {
  std::vector<NodeId> Chain;
  Graph G = invertedResidual(16, 4, 3, 1, &Chain);
  EXPECT_TRUE(isPipelineableChain(G, Chain));
  // Reversed order is not a chain.
  std::vector<NodeId> Reversed(Chain.rbegin(), Chain.rend());
  EXPECT_FALSE(isPipelineableChain(G, Reversed));
  // A single node is not a chain.
  EXPECT_FALSE(isPipelineableChain(G, {Chain[0]}));
}

TEST(PipelineTest, FanOutBlocksPipelining) {
  GraphBuilder B("fan");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId C1 = B.conv2d(X, 8, 1, 1, 0);
  ValueId D = B.dwConv(C1, 3, 1, 1);
  B.output(D);
  B.output(B.relu(C1)); // Second consumer of the intermediate value.
  Graph G = B.take();
  std::vector<NodeId> Chain = {G.producer(C1), G.producer(D)};
  EXPECT_FALSE(isPipelineableChain(G, Chain));
  PipelineSpec Spec;
  Spec.Chain = Chain;
  EXPECT_FALSE(applyPipeline(G, Spec));
}

TEST(PipelineTest, StagesAssignedToDevices) {
  std::vector<NodeId> Chain;
  Graph G = invertedResidual(16, 4, 3, 1, &Chain);
  PipelineSpec Spec;
  Spec.Chain = Chain;
  Spec.NumStages = 2;
  ASSERT_TRUE(applyPipeline(G, Spec));
  int PimStages = 0, GpuStages = 0;
  for (const Node &N : G.nodes()) {
    if (N.Dead || N.Name.find(".stage") == std::string::npos)
      continue;
    if (N.Dev == Device::Pim) {
      ++PimStages;
      EXPECT_TRUE(isPimCandidate(N));
    } else {
      ++GpuStages;
    }
  }
  EXPECT_EQ(PimStages, 4); // Two 1x1 convs x two stages.
  EXPECT_GE(GpuStages, 6); // DW + activations x stages.
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_FALSE(inferShapes(G).has_value());
}

struct PipelineCase {
  int64_t H, Cin, Expand, Stride;
  int Stages;
};

class PipelineEquivalence : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalence, OutputsBitIdentical) {
  const PipelineCase C = GetParam();
  std::vector<NodeId> Chain;
  Graph Original = invertedResidual(C.H, C.Cin, C.Expand, C.Stride, &Chain);
  Graph Piped = Original;
  PipelineSpec Spec;
  Spec.Chain = Chain;
  Spec.NumStages = C.Stages;
  ASSERT_TRUE(applyPipeline(Piped, Spec));
  ASSERT_FALSE(Piped.validate().has_value());
  expectSameOutputs(Original, Piped);
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, PipelineEquivalence,
    ::testing::Values(PipelineCase{16, 4, 3, 1, 2},
                      PipelineCase{16, 4, 3, 2, 2}, // strided DW
                      PipelineCase{16, 4, 6, 1, 3},
                      PipelineCase{16, 4, 3, 1, 4},
                      PipelineCase{12, 2, 2, 1, 2},
                      PipelineCase{17, 3, 2, 1, 3})); // odd height

TEST(PipelineTest, SubChainPwDwOnly) {
  std::vector<NodeId> Full;
  Graph Original = invertedResidual(16, 4, 3, 1, &Full);
  // Pipeline only the first three nodes (1x1, relu6, dw): Type-1 pattern.
  std::vector<NodeId> Chain(Full.begin(), Full.begin() + 3);
  Graph Piped = Original;
  PipelineSpec Spec;
  Spec.Chain = Chain;
  Spec.NumStages = 2;
  ASSERT_TRUE(applyPipeline(Piped, Spec));
  ASSERT_FALSE(Piped.validate().has_value());
  expectSameOutputs(Original, Piped);
}

TEST(PipelineTest, TooManyStagesRejected) {
  // A 4-row output cannot be split into 8 stages.
  GraphBuilder B("tiny");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  ValueId C = B.conv2d(X, 4, 1, 1, 0);
  ValueId D = B.dwConv(C, 3, 1, 1);
  B.output(D);
  Graph G = B.take();
  PipelineSpec Spec;
  Spec.Chain = G.topoOrder();
  Spec.NumStages = 8;
  const size_t NodesBefore = G.numNodes();
  EXPECT_FALSE(applyPipeline(G, Spec));
  EXPECT_EQ(G.numNodes(), NodesBefore); // Untouched on failure.
}

TEST(PipelineTest, StageBoundariesRespectDataflow) {
  // Every stage of node i must start no later than it could: stage j of a
  // consumer never depends on stage > j of its producer (checked
  // indirectly: the producing stage indices of each stage's inputs).
  std::vector<NodeId> Chain;
  Graph G = invertedResidual(16, 4, 3, 1, &Chain);
  PipelineSpec Spec;
  Spec.Chain = Chain;
  Spec.NumStages = 2;
  ASSERT_TRUE(applyPipeline(G, Spec));
  for (const Node &N : G.nodes()) {
    if (N.Dead)
      continue;
    const size_t Pos = N.Name.find(".stage");
    if (Pos == std::string::npos)
      continue;
    const int Stage = N.Name[Pos + 6] - '0';
    // Walk transitively through data-movement nodes to producing stages.
    std::vector<ValueId> Work(N.Inputs.begin(), N.Inputs.end());
    while (!Work.empty()) {
      ValueId V = Work.back();
      Work.pop_back();
      NodeId P = G.producer(V);
      if (P == InvalidNode)
        continue;
      const Node &PN = G.node(P);
      const size_t PPos = PN.Name.find(".stage");
      if (PPos == std::string::npos) {
        Work.insert(Work.end(), PN.Inputs.begin(), PN.Inputs.end());
        continue;
      }
      const int PStage = PN.Name[PPos + 6] - '0';
      EXPECT_LE(PStage, Stage)
          << N.Name << " depends on later stage " << PN.Name;
    }
  }
}

TEST(PipelineTest, DwFirstChainEquivalent) {
  // Type-2 pattern: DW -> relu -> 1x1.
  GraphBuilder B("dwpw");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 6});
  ValueId V = B.dwConv(X, 3, 1, 1);
  V = B.relu(V);
  V = B.conv2d(V, 12, 1, 1, 0);
  B.output(V);
  Graph Original = B.take();
  Graph Piped = Original;
  PipelineSpec Spec;
  Spec.Chain = Piped.topoOrder();
  Spec.NumStages = 2;
  ASSERT_TRUE(applyPipeline(Piped, Spec));
  expectSameOutputs(Original, Piped);
}
