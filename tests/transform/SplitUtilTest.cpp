//===- tests/transform/SplitUtilTest.cpp - split helper tests ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/SplitUtil.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "runtime/Interpreter.h"

using namespace pf;

TEST(ConvInputRowsTest, PointwiseIsIdentityMapping) {
  Conv2dAttrs A; // 1x1 stride 1 no pad.
  ConvInputReq R = convInputRowsFor(A, 56, 10, 30);
  EXPECT_EQ(R.InBegin, 10);
  EXPECT_EQ(R.InEnd, 30);
  EXPECT_EQ(R.PadTop, 0);
  EXPECT_EQ(R.PadBottom, 0);
}

TEST(ConvInputRowsTest, ThreeByThreeNeedsHalo) {
  Conv2dAttrs A;
  A.KernelH = A.KernelW = 3;
  A.PadTop = A.PadBottom = 1;
  // Middle rows [10, 30) need input rows [9, 31).
  ConvInputReq R = convInputRowsFor(A, 56, 10, 30);
  EXPECT_EQ(R.InBegin, 9);
  EXPECT_EQ(R.InEnd, 31);
  EXPECT_EQ(R.PadTop, 0);
  EXPECT_EQ(R.PadBottom, 0);
}

TEST(ConvInputRowsTest, TopPartKeepsTopPadding) {
  Conv2dAttrs A;
  A.KernelH = A.KernelW = 3;
  A.PadTop = A.PadBottom = 1;
  ConvInputReq R = convInputRowsFor(A, 56, 0, 28);
  EXPECT_EQ(R.InBegin, 0);
  EXPECT_EQ(R.InEnd, 29);
  EXPECT_EQ(R.PadTop, 1);
  EXPECT_EQ(R.PadBottom, 0);
}

TEST(ConvInputRowsTest, BottomPartKeepsBottomPadding) {
  Conv2dAttrs A;
  A.KernelH = A.KernelW = 3;
  A.PadTop = A.PadBottom = 1;
  ConvInputReq R = convInputRowsFor(A, 56, 28, 56);
  EXPECT_EQ(R.InBegin, 27);
  EXPECT_EQ(R.InEnd, 56);
  EXPECT_EQ(R.PadTop, 0);
  EXPECT_EQ(R.PadBottom, 1);
}

TEST(ConvInputRowsTest, StridedConv) {
  Conv2dAttrs A;
  A.KernelH = A.KernelW = 3;
  A.StrideH = A.StrideW = 2;
  A.PadTop = A.PadBottom = 1;
  // 112 -> 56 output rows; rows [28, 56) read input [55, 112).
  ConvInputReq R = convInputRowsFor(A, 112, 28, 56);
  EXPECT_EQ(R.InBegin, 55);
  EXPECT_EQ(R.InEnd, 112);
  EXPECT_EQ(R.PadBottom, 0);
}

TEST(SplitRangeTest, EvenAndUneven) {
  auto Even = splitRange(100, 4);
  ASSERT_EQ(Even.size(), 4u);
  EXPECT_EQ(Even[0], (std::pair<int64_t, int64_t>{0, 25}));
  EXPECT_EQ(Even[3], (std::pair<int64_t, int64_t>{75, 100}));

  auto Uneven = splitRange(10, 3);
  int64_t Covered = 0;
  for (auto [Lo, Hi] : Uneven) {
    EXPECT_EQ(Lo, Covered);
    EXPECT_GT(Hi, Lo);
    Covered = Hi;
  }
  EXPECT_EQ(Covered, 10);
}

TEST(PiecewiseTensorTest, WholeRangeReturnsOriginal) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 4, 2});
  B.output(B.relu(X));
  Graph G = B.graph();
  PiecewiseTensor P(G, X);
  EXPECT_EQ(P.height(), 8);
  EXPECT_EQ(P.range(0, 8), X);
}

TEST(PiecewiseTensorTest, SubRangeEmitsSlice) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 4, 2});
  B.output(B.relu(X));
  Graph G = B.graph();
  PiecewiseTensor P(G, X);
  ValueId Sub = P.range(2, 6);
  EXPECT_NE(Sub, X);
  EXPECT_EQ(G.value(Sub).Shape, (TensorShape{1, 4, 4, 2}));
  const Node &N = G.node(G.producer(Sub));
  EXPECT_EQ(N.Kind, OpKind::Slice);
}

TEST(PiecewiseTensorTest, CrossPieceRangeConcatenatesCorrectData) {
  // Build pieces from two slices of an input and gather a range crossing
  // the boundary; executing the graph must reproduce the right rows.
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 2, 1});
  ValueId Lo = B.slice(X, 1, 0, 4);
  ValueId Hi = B.slice(X, 1, 4, 8);
  Graph &G = B.graph();
  PiecewiseTensor P(G, {HPiece{0, 4, Lo}, HPiece{4, 8, Hi}});
  ValueId Mid = P.range(2, 6);
  B.output(Mid);
  Graph Final = B.take();

  Tensor In = Interpreter::randomInput(TensorShape{1, 8, 2, 1}, 3);
  auto Out = Interpreter(Final).run({In});
  EXPECT_EQ(Out[0].shape(), (TensorShape{1, 4, 2, 1}));
  for (int64_t H = 0; H < 4; ++H)
    for (int64_t W = 0; W < 2; ++W)
      EXPECT_FLOAT_EQ(Out[0].at4(0, H, W, 0), In.at4(0, H + 2, W, 0));
}

TEST(PiecewiseTensorTest, ExactPieceReusedWithoutSlice) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 2, 1});
  ValueId Lo = B.slice(X, 1, 0, 4);
  ValueId Hi = B.slice(X, 1, 4, 8);
  Graph &G = B.graph();
  const size_t NodesBefore = G.numNodes();
  PiecewiseTensor P(G, {HPiece{0, 4, Lo}, HPiece{4, 8, Hi}});
  EXPECT_EQ(P.range(0, 4), Lo);
  EXPECT_EQ(P.range(4, 8), Hi);
  EXPECT_EQ(G.numNodes(), NodesBefore); // No new nodes emitted.
}
