//===- tests/transform/CanonicalizeTest.cpp - cleanup pass tests -*- C++ -*-=//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/Canonicalize.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "runtime/Interpreter.h"
#include "transform/MdDpSplitPass.h"
#include "transform/PipelinePass.h"

using namespace pf;

namespace {

std::vector<Tensor> runGraph(const Graph &G, uint64_t Seed = 5) {
  std::vector<Tensor> Inputs;
  for (ValueId In : G.graphInputs())
    Inputs.push_back(Interpreter::randomInput(G.value(In).Shape, Seed));
  return Interpreter(G).run(Inputs);
}

void expectSameOutputs(const Graph &A, const Graph &B) {
  auto OA = runGraph(A);
  auto OB = runGraph(B);
  ASSERT_EQ(OA.size(), OB.size());
  for (size_t I = 0; I < OA.size(); ++I)
    for (int64_t E = 0; E < OA[I].numElements(); ++E)
      ASSERT_EQ(OA[I].at(E), OB[I].at(E));
}

} // namespace

TEST(CanonicalizeTest, RemovesDeadChain) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  ValueId Live = B.relu(X);
  ValueId Dead = B.relu6(X);
  B.sigmoid(Dead); // Dead chain of two nodes.
  B.output(Live);
  Graph G = B.take();
  EXPECT_EQ(G.numNodes(), 3u);
  EXPECT_EQ(eliminateDeadNodes(G), 2);
  EXPECT_EQ(G.numNodes(), 1u);
  EXPECT_FALSE(G.validate().has_value());
}

TEST(CanonicalizeTest, KeepsGraphOutputs) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  B.output(B.relu(X));
  Graph G = B.take();
  EXPECT_EQ(eliminateDeadNodes(G), 0);
}

TEST(CanonicalizeTest, FoldsIdentity) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  Graph &G = B.graph();
  ValueId Mid = G.addValue("mid", TensorShape{1, 4, 4, 2});
  G.addNode(OpKind::Identity, "id", std::monostate{}, {X}, {Mid});
  B.output(B.relu(Mid));
  Graph Final = B.take();
  EXPECT_EQ(foldIdentities(Final), 1);
  // The relu now reads the graph input directly.
  for (const Node &N : Final.nodes())
    if (!N.Dead && N.Kind == OpKind::Relu) {
      EXPECT_EQ(N.Inputs[0], X);
    }
  EXPECT_FALSE(Final.validate().has_value());
}

TEST(CanonicalizeTest, IdentityProducingOutputKept) {
  Graph G("t");
  ValueId X = G.addValue("x", TensorShape{1, 2, 2, 1});
  ValueId Out = G.addValue("o", TensorShape{1, 2, 2, 1});
  G.addNode(OpKind::Identity, "id", std::monostate{}, {X}, {Out});
  G.setGraphInputs({X});
  G.setGraphOutputs({Out});
  EXPECT_EQ(foldIdentities(G), 0);
  EXPECT_EQ(G.numNodes(), 1u);
}

TEST(CanonicalizeTest, CancelsSliceOfConcat) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  ValueId Y = B.input("y", TensorShape{1, 6, 4, 2});
  ValueId C = B.concat({X, Y}, 1);
  ValueId S = B.slice(C, 1, 4, 10); // Exactly the Y operand.
  B.output(B.relu(S));
  Graph Original = B.take();
  Graph G = Original;
  EXPECT_EQ(cancelSliceOfConcat(G), 1);
  for (const Node &N : G.nodes())
    if (!N.Dead && N.Kind == OpKind::Relu) {
      EXPECT_EQ(N.Inputs[0], Y);
    }
  canonicalize(G); // Clean up the now-dead concat.
  EXPECT_FALSE(G.validate().has_value());
  expectSameOutputs(Original, G);
}

TEST(CanonicalizeTest, PartialSliceOfConcatKept) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 4, 4, 2});
  ValueId Y = B.input("y", TensorShape{1, 6, 4, 2});
  ValueId C = B.concat({X, Y}, 1);
  ValueId S = B.slice(C, 1, 2, 8); // Crosses the operand boundary.
  B.output(S);
  Graph G = B.take();
  EXPECT_EQ(cancelSliceOfConcat(G), 0);
}

TEST(CanonicalizeTest, AfterMdDpSplitPreservesSemantics) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  B.output(B.relu(B.conv2d(X, 8, 3, 1, 1)));
  Graph Original = B.take();
  Graph G = Original;
  for (NodeId Id : Original.topoOrder())
    if (isPimCandidate(G.node(Id)))
      applyMdDpSplit(G, Id, 0.5);
  CanonicalizeStats Stats = canonicalize(G);
  (void)Stats;
  EXPECT_FALSE(G.validate().has_value());
  expectSameOutputs(Original, G);
}

TEST(CanonicalizeTest, AfterPipelinePreservesSemanticsAndShrinks) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId V = B.conv2d(X, 12, 1, 1, 0);
  V = B.relu6(V);
  V = B.dwConv(V, 3, 1, 1);
  B.output(V);
  Graph Original = B.take();
  Graph G = Original;
  PipelineSpec Spec;
  Spec.Chain = G.topoOrder();
  Spec.NumStages = 2;
  ASSERT_TRUE(applyPipeline(G, Spec));
  const size_t Before = G.numNodes();
  canonicalize(G);
  EXPECT_LE(G.numNodes(), Before);
  EXPECT_FALSE(G.validate().has_value());
  expectSameOutputs(Original, G);
}

TEST(CanonicalizeTest, FixedPointIsIdempotent) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 2});
  ValueId C = B.concat({B.slice(X, 1, 0, 4), B.slice(X, 1, 4, 8)}, 1);
  B.output(B.relu(C));
  Graph G = B.take();
  canonicalize(G);
  CanonicalizeStats Second = canonicalize(G);
  EXPECT_EQ(Second.total(), 0);
}
