//===- tests/transform/MdDpSplitTest.cpp - MD-DP split tests ----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional-equivalence tests for the multi-device parallelization pass:
/// the transformed graph must compute bit-identical outputs (the pass only
/// reorganizes work; every output element is produced by the same
/// reduction in the same order).
///
//===----------------------------------------------------------------------===//

#include "transform/MdDpSplitPass.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "ir/ShapeInference.h"
#include "runtime/Interpreter.h"

using namespace pf;

namespace {

/// Runs \p G on deterministic random inputs.
std::vector<Tensor> runGraph(const Graph &G, uint64_t Seed = 99) {
  std::vector<Tensor> Inputs;
  for (ValueId In : G.graphInputs())
    Inputs.push_back(
        Interpreter::randomInput(G.value(In).Shape, Seed + In));
  return Interpreter(G).run(Inputs);
}

void expectSameOutputs(const Graph &A, const Graph &B, float Tol = 0.0f) {
  auto OutA = runGraph(A);
  auto OutB = runGraph(B);
  ASSERT_EQ(OutA.size(), OutB.size());
  for (size_t I = 0; I < OutA.size(); ++I) {
    ASSERT_EQ(OutA[I].shape(), OutB[I].shape());
    for (int64_t E = 0; E < OutA[I].numElements(); ++E) {
      if (Tol == 0.0f)
        ASSERT_EQ(OutA[I].at(E), OutB[I].at(E)) << "element " << E;
      else
        ASSERT_NEAR(OutA[I].at(E), OutB[I].at(E), Tol) << "element " << E;
    }
  }
}

/// First PIM-candidate node of \p G.
NodeId firstCandidate(const Graph &G) {
  for (NodeId Id : G.topoOrder())
    if (isPimCandidate(G.node(Id)))
      return Id;
  return InvalidNode;
}

Graph convGraph(int64_t H, int64_t Cin, int64_t Cout, int64_t K,
                int64_t Stride, int64_t Pad, bool Bias = false) {
  GraphBuilder B("conv");
  ValueId X = B.input("x", TensorShape{1, H, H, Cin});
  B.output(B.relu(B.conv2d(X, Cout, K, Stride, Pad, 1, Bias)));
  return B.take();
}

} // namespace

//===----------------------------------------------------------------------===
// Structure
//===----------------------------------------------------------------------===

TEST(MdDpSplitTest, SplitCreatesTwoPartsAndConcat) {
  Graph G = convGraph(16, 4, 8, 3, 1, 1);
  NodeId Conv = firstCandidate(G);
  auto R = applyMdDpSplit(G, Conv, 0.5);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(G.node(R->GpuPart).Dev, Device::Gpu);
  EXPECT_EQ(G.node(R->PimPart).Dev, Device::Pim);
  EXPECT_EQ(G.node(R->ConcatNode).Kind, OpKind::Concat);
  EXPECT_TRUE(G.node(Conv).Dead);
  EXPECT_FALSE(G.validate().has_value());
  EXPECT_FALSE(inferShapes(G).has_value());
}

TEST(MdDpSplitTest, RatioZeroAnnotatesPim) {
  Graph G = convGraph(16, 4, 8, 1, 1, 0);
  NodeId Conv = firstCandidate(G);
  EXPECT_FALSE(applyMdDpSplit(G, Conv, 0.0).has_value());
  EXPECT_EQ(G.node(Conv).Dev, Device::Pim);
  EXPECT_FALSE(G.node(Conv).Dead);
}

TEST(MdDpSplitTest, RatioOneAnnotatesGpu) {
  Graph G = convGraph(16, 4, 8, 1, 1, 0);
  NodeId Conv = firstCandidate(G);
  EXPECT_FALSE(applyMdDpSplit(G, Conv, 1.0).has_value());
  EXPECT_EQ(G.node(Conv).Dev, Device::Gpu);
}

TEST(MdDpSplitTest, TinyRatioDegenerates) {
  // 16 output rows at 1% rounds to zero GPU rows -> full PIM.
  Graph G = convGraph(16, 4, 8, 1, 1, 0);
  NodeId Conv = firstCandidate(G);
  EXPECT_FALSE(applyMdDpSplit(G, Conv, 0.01).has_value());
  EXPECT_EQ(G.node(Conv).Dev, Device::Pim);
}

TEST(MdDpSplitTest, PartRowCountsMatchRatio) {
  Graph G = convGraph(20, 4, 8, 1, 1, 0);
  NodeId Conv = firstCandidate(G);
  auto R = applyMdDpSplit(G, Conv, 0.3);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(G.value(G.node(R->GpuPart).Outputs[0]).Shape.dim(1), 6);
  EXPECT_EQ(G.value(G.node(R->PimPart).Outputs[0]).Shape.dim(1), 14);
}

//===----------------------------------------------------------------------===
// Functional equivalence: convolutions
//===----------------------------------------------------------------------===

struct ConvCase {
  int64_t H, Cin, Cout, K, Stride, Pad;
  bool Bias;
};

class MdDpConvEquivalence
    : public ::testing::TestWithParam<std::tuple<ConvCase, double>> {};

TEST_P(MdDpConvEquivalence, OutputsBitIdentical) {
  const auto [C, Ratio] = GetParam();
  Graph Original = convGraph(C.H, C.Cin, C.Cout, C.K, C.Stride, C.Pad,
                             C.Bias);
  Graph Split = Original;
  NodeId Conv = firstCandidate(Split);
  applyMdDpSplit(Split, Conv, Ratio);
  ASSERT_FALSE(Split.validate().has_value());
  expectSameOutputs(Original, Split);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MdDpConvEquivalence,
    ::testing::Combine(
        ::testing::Values(ConvCase{16, 4, 8, 1, 1, 0, false},  // pointwise
                          ConvCase{16, 4, 8, 3, 1, 1, false},  // 3x3 same
                          ConvCase{16, 4, 8, 3, 2, 1, true},   // strided
                          ConvCase{15, 3, 5, 5, 1, 2, false},  // 5x5 odd H
                          ConvCase{14, 6, 10, 7, 2, 3, true},  // 7x7 s2
                          ConvCase{9, 2, 4, 3, 3, 1, false}),  // stride 3
        ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)));

//===----------------------------------------------------------------------===
// Functional equivalence: FC layers
//===----------------------------------------------------------------------===

TEST(MdDpSplitTest, GemmBatchSplitEquivalent) {
  GraphBuilder B("fc");
  ValueId X = B.input("x", TensorShape{8, 32});
  B.output(B.gemm(X, 16));
  Graph Original = B.take();
  for (double Ratio : {0.25, 0.5, 0.75}) {
    Graph Split = Original;
    NodeId Gm = firstCandidate(Split);
    auto R = applyMdDpSplit(Split, Gm, Ratio);
    ASSERT_TRUE(R.has_value());
    ASSERT_FALSE(Split.validate().has_value());
    expectSameOutputs(Original, Split);
  }
}

TEST(MdDpSplitTest, GemmBatch1FeatureSplitEquivalent) {
  GraphBuilder B("fc1");
  ValueId X = B.input("x", TensorShape{1, 64});
  B.output(B.gemm(X, 40, /*WithBias=*/true));
  Graph Original = B.take();
  for (double Ratio : {0.2, 0.5, 0.8}) {
    Graph Split = Original;
    NodeId Gm = firstCandidate(Split);
    auto R = applyMdDpSplit(Split, Gm, Ratio);
    ASSERT_TRUE(R.has_value());
    ASSERT_FALSE(Split.validate().has_value());
    // Weight slicing changes nothing numerically: exact equality.
    expectSameOutputs(Original, Split);
  }
}

TEST(MdDpSplitTest, GemmBatch1SplitSlicesWeights) {
  GraphBuilder B("fc1");
  ValueId X = B.input("x", TensorShape{1, 64});
  B.output(B.gemm(X, 40));
  Graph G = B.take();
  NodeId Gm = firstCandidate(G);
  auto R = applyMdDpSplit(G, Gm, 0.5);
  ASSERT_TRUE(R.has_value());
  // Both parts read Slice-of-parameter weights.
  const Node &Gpu = G.node(R->GpuPart);
  const Node &WSlice = G.node(G.producer(Gpu.Inputs[1]));
  EXPECT_EQ(WSlice.Kind, OpKind::Slice);
  EXPECT_TRUE(G.value(WSlice.Inputs[0]).IsParam);
}

//===----------------------------------------------------------------------===
// Repeated splitting across a deeper network
//===----------------------------------------------------------------------===

TEST(MdDpSplitTest, SplitEveryCandidateInSmallCnn) {
  GraphBuilder B("cnn");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 3});
  X = B.relu(B.conv2d(X, 8, 3, 1, 1));
  X = B.relu6(B.conv2d(X, 12, 1, 1, 0));
  X = B.relu(B.dwConv(X, 3, 1, 1));
  X = B.conv2d(X, 16, 3, 2, 1, 1, /*WithBias=*/true);
  X = B.globalAvgPool(X);
  X = B.flatten(X);
  X = B.gemm(X, 10);
  B.output(X);
  Graph Original = B.take();

  Graph Split = Original;
  int NumSplit = 0;
  for (NodeId Id : Original.topoOrder()) {
    if (!isPimCandidate(Split.node(Id)) || Split.node(Id).Dead)
      continue;
    if (applyMdDpSplit(Split, Id, 0.5).has_value())
      ++NumSplit;
  }
  EXPECT_GE(NumSplit, 3);
  ASSERT_FALSE(Split.validate().has_value());
  expectSameOutputs(Original, Split);
}
