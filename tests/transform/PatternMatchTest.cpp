//===- tests/transform/PatternMatchTest.cpp - matcher tests -----*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "transform/PatternMatch.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"
#include "models/Zoo.h"

using namespace pf;

namespace {

int countPattern(const std::vector<PipelineCandidate> &Cands,
                 PipelinePattern P) {
  int N = 0;
  for (const PipelineCandidate &C : Cands)
    N += C.Pattern == P;
  return N;
}

} // namespace

TEST(PatternMatchTest, FindsPwDw) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId V = B.conv2d(X, 8, 1, 1, 0);
  V = B.relu6(V);
  V = B.dwConv(V, 3, 1, 1);
  B.output(V);
  Graph G = B.take();
  auto Cands = findPipelineCandidates(G);
  ASSERT_EQ(Cands.size(), 1u);
  EXPECT_EQ(Cands[0].Pattern, PipelinePattern::PwDw);
  EXPECT_EQ(Cands[0].Chain.size(), 3u); // conv, relu6, dw.
  EXPECT_EQ(Cands[0].convNodes(G).size(), 2u);
}

TEST(PatternMatchTest, FindsDwPw) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId V = B.dwConv(X, 3, 1, 1);
  V = B.conv2d(V, 8, 1, 1, 0);
  B.output(V);
  Graph G = B.take();
  auto Cands = findPipelineCandidates(G);
  ASSERT_EQ(Cands.size(), 1u);
  EXPECT_EQ(Cands[0].Pattern, PipelinePattern::DwPw);
  EXPECT_EQ(Cands[0].Chain.size(), 2u);
}

TEST(PatternMatchTest, FindsType3AndNestedType1) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId V = B.conv2d(X, 8, 1, 1, 0);
  V = B.relu6(V);
  V = B.dwConv(V, 3, 1, 1);
  V = B.relu6(V);
  V = B.conv2d(V, 4, 1, 1, 0);
  B.output(V);
  Graph G = B.take();
  auto Cands = findPipelineCandidates(G);
  EXPECT_EQ(countPattern(Cands, PipelinePattern::PwDwPw), 1);
  EXPECT_EQ(countPattern(Cands, PipelinePattern::PwDw), 1);
  EXPECT_EQ(countPattern(Cands, PipelinePattern::DwPw), 1);
}

TEST(PatternMatchTest, FanOutBreaksChain) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId C = B.conv2d(X, 8, 1, 1, 0);
  ValueId D = B.dwConv(C, 3, 1, 1);
  B.output(D);
  B.output(B.relu(C)); // C has two consumers.
  Graph G = B.take();
  EXPECT_TRUE(findPipelineCandidates(G).empty());
}

TEST(PatternMatchTest, RegularConvsDoNotMatch) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 16, 16, 4});
  ValueId V = B.conv2d(X, 8, 3, 1, 1); // 3x3 dense, not pointwise.
  V = B.conv2d(V, 8, 3, 1, 1);
  B.output(V);
  Graph G = B.take();
  EXPECT_TRUE(findPipelineCandidates(G).empty());
}

TEST(PatternMatchTest, MobileNetV2HasManyCandidates) {
  Graph G = buildMobileNetV2();
  auto Cands = findPipelineCandidates(G);
  // 17 inverted-residual blocks contribute pw-dw, dw-pw and pw-dw-pw
  // chains.
  EXPECT_GT(Cands.size(), 30u);
  EXPECT_GT(countPattern(Cands, PipelinePattern::PwDw), 10);
  EXPECT_GT(countPattern(Cands, PipelinePattern::DwPw), 10);
}

TEST(PatternMatchTest, ResNetAndVggHaveNoCandidates) {
  // Fig. 9 discussion: "ResNet50 and VGG16 with a few to zero pipelining
  // pattern matches".
  EXPECT_TRUE(findPipelineCandidates(buildResNet50()).empty());
  EXPECT_TRUE(findPipelineCandidates(buildVgg16()).empty());
}

TEST(PatternMatchTest, PatternNames) {
  EXPECT_STREQ(pipelinePatternName(PipelinePattern::PwDw), "1x1-dw");
  EXPECT_STREQ(pipelinePatternName(PipelinePattern::DwPw), "dw-1x1");
  EXPECT_STREQ(pipelinePatternName(PipelinePattern::PwDwPw), "1x1-dw-1x1");
}
