//===- tests/codegen/CommandGeneratorTest.cpp - codegen tests ---*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/CommandGenerator.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"

using namespace pf;

namespace {

PimCommandGenerator makeGen(bool Optimized) {
  PimConfig C =
      Optimized ? PimConfig::newtonPlusPlus() : PimConfig::newtonPlus();
  CodegenOptions O;
  O.StridedGwrite = Optimized;
  return PimCommandGenerator(C, O);
}

PimKernelSpec spec(int64_t M, int64_t K, int64_t V, int64_t Segments = 1) {
  PimKernelSpec S;
  S.M = M;
  S.K = K;
  S.NumVectors = V;
  S.GwriteSegments = Segments;
  return S;
}

} // namespace

TEST(LoweringTest, PointwiseConv) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 56, 56, 24});
  B.output(B.conv2d(X, 144, 1, 1, 0));
  Graph G = B.take();
  PimKernelSpec S = lowerToPimSpec(G, G.topoOrder().front());
  EXPECT_EQ(S.M, 144);
  EXPECT_EQ(S.K, 24);
  EXPECT_EQ(S.NumVectors, 56 * 56);
  EXPECT_EQ(S.GwriteSegments, 1);
  EXPECT_EQ(S.totalMacs(), 144 * 24 * 56 * 56);
}

TEST(LoweringTest, RegularConvIm2col) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 28, 28, 64});
  B.output(B.conv2d(X, 128, 3, 2, 1));
  Graph G = B.take();
  PimKernelSpec S = lowerToPimSpec(G, G.topoOrder().front());
  EXPECT_EQ(S.M, 128);
  EXPECT_EQ(S.K, 9 * 64);
  EXPECT_EQ(S.NumVectors, 14 * 14);
  EXPECT_EQ(S.GwriteSegments, 3); // KH contiguous NHWC row segments.
}

TEST(LoweringTest, Gemm) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{4, 768});
  B.output(B.gemm(X, 3072));
  Graph G = B.take();
  PimKernelSpec S = lowerToPimSpec(G, G.topoOrder().front());
  EXPECT_EQ(S.M, 3072);
  EXPECT_EQ(S.K, 768);
  EXPECT_EQ(S.NumVectors, 4);
}

TEST(CommandGeneratorTest, WorkConservation) {
  // COMP columns across the device must cover the kernel's MACs.
  for (bool Opt : {false, true}) {
    PimCommandGenerator Gen = makeGen(Opt);
    for (const PimKernelSpec &S :
         {spec(144, 24, 3136), spec(4096, 25088, 1), spec(64, 576, 196),
          spec(16, 16, 1), spec(1000, 1280, 1)}) {
      PimKernelPlan P = Gen.plan(S);
      const int64_t MacCapacity =
          P.Stats.CompColumns * Gen.config().macsPerComp();
      EXPECT_GE(MacCapacity, S.totalMacs())
          << "M=" << S.M << " K=" << S.K << " V=" << S.NumVectors;
      EXPECT_EQ(P.EffectiveMacs, S.totalMacs());
    }
  }
}

TEST(CommandGeneratorTest, GwriteCoversInputData) {
  PimCommandGenerator Gen = makeGen(true);
  PimKernelSpec S = spec(256, 512, 64);
  PimKernelPlan P = Gen.plan(S);
  // Every vector must be fetched at least once (32B bursts).
  const int64_t MinBursts = S.NumVectors * (S.K * 2 / 32);
  EXPECT_GE(P.Stats.GwriteBursts, MinBursts);
}

TEST(CommandGeneratorTest, MappingRespectsChannelCount) {
  PimCommandGenerator Gen = makeGen(true);
  PimKernelPlan P = Gen.plan(spec(144, 24, 3136));
  EXPECT_LE(P.ChannelsForM * P.ChannelsForV * P.ChannelsForK,
            Gen.config().Channels);
  EXPECT_LE(P.Trace.numActiveChannels(), Gen.config().Channels);
}

TEST(CommandGeneratorTest, GActGranularityUsesNoVectorSplit) {
  PimConfig C = PimConfig::newtonPlus();
  CodegenOptions O;
  O.MaxGranularity = ScheduleGranularity::GAct;
  PimCommandGenerator Gen(C, O);
  PimKernelPlan P = Gen.plan(spec(144, 24, 3136));
  EXPECT_EQ(P.ChannelsForV, 1);
  EXPECT_EQ(P.ChannelsForK, 1);
}

TEST(CommandGeneratorTest, FinerGranularityNeverSlower) {
  // The scheduler picks the min over a superset of mappings.
  PimConfig C = PimConfig::newtonPlusPlus();
  CodegenOptions Coarse, Fine;
  Coarse.MaxGranularity = ScheduleGranularity::GAct;
  Fine.MaxGranularity = ScheduleGranularity::Comp;
  for (const PimKernelSpec &S :
       {spec(144, 24, 3136), spec(32, 2048, 1), spec(4096, 4096, 1)}) {
    const double CoarseNs = PimCommandGenerator(C, Coarse).plan(S).Ns;
    const double FineNs = PimCommandGenerator(C, Fine).plan(S).Ns;
    EXPECT_LE(FineNs, CoarseNs + 1e-9);
  }
}

TEST(CommandGeneratorTest, SmallMatrixBenefitsFromFineGranularity) {
  // The paper's motivation for the scheduling pass: a small 1x1-CONV
  // matrix leaves channels idle at G_ACT granularity.
  PimConfig C = PimConfig::newtonPlusPlus();
  CodegenOptions Coarse, Fine;
  Coarse.MaxGranularity = ScheduleGranularity::GAct;
  Fine.MaxGranularity = ScheduleGranularity::Comp;
  const PimKernelSpec S = spec(32, 144, 784);
  const double CoarseNs = PimCommandGenerator(C, Coarse).plan(S).Ns;
  const double FineNs = PimCommandGenerator(C, Fine).plan(S).Ns;
  EXPECT_LT(FineNs, 0.5 * CoarseNs);
}

TEST(CommandGeneratorTest, MultiBufferReducesActivations) {
  // Fig. 14's premise: four global buffers reuse each G_ACT across four
  // input vectors.
  PimConfig One = PimConfig::newtonPlus();
  PimConfig Four = One;
  Four.NumGlobalBuffers = 4;
  CodegenOptions O;
  const PimKernelSpec S = spec(144, 24, 3136);
  PimKernelPlan P1 = PimCommandGenerator(One, O).planWithMapping(S, 1, 16, 1);
  PimKernelPlan P4 =
      PimCommandGenerator(Four, O).planWithMapping(S, 1, 16, 1);
  EXPECT_GT(P1.Stats.GActs, 3 * P4.Stats.GActs);
  EXPECT_LT(P4.Ns, P1.Ns);
}

TEST(CommandGeneratorTest, StridedGwriteHelpsWideKernels) {
  // Without strided GWRITE each of the KH im2col segments pays the
  // first-burst latency.
  PimConfig C = PimConfig::newtonPlus();
  CodegenOptions Strided, Plain;
  Strided.StridedGwrite = true;
  Plain.StridedGwrite = false;
  const PimKernelSpec S = spec(128, 9 * 64, 196, /*Segments=*/3);
  const double WithNs = PimCommandGenerator(C, Strided).plan(S).Ns;
  const double WithoutNs = PimCommandGenerator(C, Plain).plan(S).Ns;
  EXPECT_LT(WithNs, WithoutNs);
}

TEST(CommandGeneratorTest, TimeScalesWithVectors) {
  PimCommandGenerator Gen = makeGen(true);
  const double T1 = Gen.plan(spec(144, 24, 784)).Ns;
  const double T4 = Gen.plan(spec(144, 24, 4 * 784)).Ns;
  EXPECT_GT(T4, 3.0 * T1);
  EXPECT_LT(T4, 5.0 * T1);
}

TEST(CommandGeneratorTest, LargeKTilesOverBufferCapacity) {
  PimCommandGenerator Gen = makeGen(false); // 2048-element buffer.
  // K = 25088 needs ceil(25088/2048) = 13 tiles; each pass re-activates.
  PimKernelPlan P = Gen.planWithMapping(spec(4096, 25088, 1), 16, 1, 1);
  EXPECT_GE(P.Stats.GwriteCmds, 13);
}

TEST(CommandGeneratorTest, MappingDescription) {
  PimCommandGenerator Gen = makeGen(true);
  PimKernelPlan P = Gen.plan(spec(144, 24, 3136));
  const std::string Desc = P.describeMapping();
  EXPECT_NE(Desc.find("m"), std::string::npos);
  EXPECT_NE(Desc.find("@"), std::string::npos);
}

TEST(CommandGeneratorTest, FcMuchFasterThanEquivalentGpuTraffic) {
  // Sanity anchor for Fig. 8: a 4096x4096 GEMV is an order of magnitude
  // faster on PIM than the ~34 MB weight stream would be on a ~450 GB/s
  // GPU (~75 us).
  PimCommandGenerator Gen = makeGen(true);
  PimKernelPlan P = Gen.plan(spec(4096, 4096, 1));
  EXPECT_LT(P.Ns, 75000.0 / 5.0);
}
