//===- tests/codegen/CodegenPropertyTest.cpp - invariant sweeps -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized invariant sweeps over the command generator's (M, K, V)
/// space: work conservation, input coverage, monotonicity, and mapping
/// validity must hold for every lowered kernel shape, not just the ones
/// the evaluated models produce.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "codegen/CommandGenerator.h"

using namespace pf;

namespace {

PimKernelSpec spec(int64_t M, int64_t K, int64_t V, int64_t Segments = 1) {
  PimKernelSpec S;
  S.M = M;
  S.K = K;
  S.NumVectors = V;
  S.GwriteSegments = Segments;
  return S;
}

} // namespace

class CodegenSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
protected:
  PimKernelSpec param() const {
    const auto [M, K, V] = GetParam();
    return spec(M, K, V);
  }
};

TEST_P(CodegenSweep, InvariantsHold) {
  const PimKernelSpec S = param();
  for (bool Optimized : {false, true}) {
    const PimConfig C = Optimized ? PimConfig::newtonPlusPlus()
                                  : PimConfig::newtonPlus();
    CodegenOptions O;
    O.StridedGwrite = Optimized;
    PimCommandGenerator Gen(C, O);
    const PimKernelPlan P = Gen.plan(S);

    // 1. Positive, finite time.
    EXPECT_GT(P.Ns, 0.0);
    EXPECT_LT(P.Ns, 1e12);

    // 2. Work conservation: COMP columns cover every MAC.
    EXPECT_GE(P.Stats.CompColumns * C.macsPerComp(), S.totalMacs());

    // 3. Input coverage: every vector's K elements fetched at least once.
    EXPECT_GE(P.Stats.GwriteBursts * C.BurstBytes,
              S.NumVectors * S.K * 2);

    // 4. Results drained: every output element leaves through READRES.
    EXPECT_GE(P.Stats.ReadResCmds * C.elementsPerComp(),
              S.M * S.NumVectors);

    // 5. Mapping within the device.
    EXPECT_LE(P.ChannelsForM * P.ChannelsForV * P.ChannelsForK,
              C.Channels);
    EXPECT_EQ(P.Trace.numActiveChannels(),
              P.ChannelsForM * P.ChannelsForV * P.ChannelsForK);

    // 6. Makespan consistency: the stats' cycle count matches an
    //    independent re-simulation of the emitted traces.
    PimSimulator Sim(C);
    EXPECT_GE(Sim.run(P.Trace).Cycles, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MkvGrid, CodegenSweep,
    ::testing::Combine(::testing::Values(1, 16, 144, 1000, 4096),
                       ::testing::Values(16, 24, 576, 25088),
                       ::testing::Values(1, 49, 3136)));

TEST(CodegenMonotonicity, TimeGrowsWithEachDimension) {
  PimCommandGenerator Gen(PimConfig::newtonPlusPlus(), CodegenOptions{});
  const double Base = Gen.plan(spec(128, 128, 128)).Ns;
  EXPECT_GE(Gen.plan(spec(512, 128, 128)).Ns, Base);
  EXPECT_GE(Gen.plan(spec(128, 512, 128)).Ns, Base);
  EXPECT_GE(Gen.plan(spec(128, 128, 512)).Ns, Base);
}

TEST(CodegenMonotonicity, MoreChannelsNeverSlower) {
  CodegenOptions O;
  PimConfig Few = PimConfig::newtonPlusPlus();
  Few.Channels = 4;
  PimConfig Many = PimConfig::newtonPlusPlus();
  Many.Channels = 16;
  for (const PimKernelSpec &S :
       {spec(144, 24, 3136), spec(4096, 4096, 1), spec(32, 512, 49)}) {
    EXPECT_LE(PimCommandGenerator(Many, O).plan(S).Ns,
              PimCommandGenerator(Few, O).plan(S).Ns * 1.0001);
  }
}

TEST(CodegenMonotonicity, LatchPressureDrainsPerTile) {
  // A kernel whose rows x buffers exceed the latches and whose K spans
  // multiple tiles must drain partials per tile (more READRES commands).
  PimConfig C = PimConfig::newtonPlusPlus(); // 4 buffers, 512-elem tiles.
  CodegenOptions O;
  PimCommandGenerator Gen(C, O);
  // RowsPerBank * B = ceil(4096/16/16)=16 rows * 4 buffers = 64 > 16.
  const PimKernelPlan Pressured =
      Gen.planWithMapping(spec(4096, 2048, 8), 1, 1, 1);
  // Same shape with K inside one tile: single drain.
  const PimKernelPlan Single =
      Gen.planWithMapping(spec(4096, 512, 8), 1, 1, 1);
  EXPECT_GT(static_cast<double>(Pressured.Stats.ReadResCmds),
            3.9 * static_cast<double>(Single.Stats.ReadResCmds));
}
