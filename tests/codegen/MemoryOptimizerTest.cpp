//===- tests/codegen/MemoryOptimizerTest.cpp - layout opt tests -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/MemoryOptimizer.h"

#include <gtest/gtest.h>

#include "ir/Builder.h"

using namespace pf;

TEST(MemoryOptimizerTest, HSliceIsFree) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 56, 56, 24});
  B.output(B.slice(X, 1, 0, 28));
  Graph G = B.take();
  MemoryOptimizer M(true);
  EXPECT_EQ(M.classify(G, G.topoOrder().front()), DataMovementCost::Free);
  EXPECT_EQ(M.copyBytes(G, G.topoOrder().front()), 0);
}

TEST(MemoryOptimizerTest, WSliceCopies) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 56, 56, 24});
  B.output(B.slice(X, 2, 0, 28));
  Graph G = B.take();
  MemoryOptimizer M(true);
  EXPECT_EQ(M.classify(G, G.topoOrder().front()), DataMovementCost::Copy);
  EXPECT_GT(M.copyBytes(G, G.topoOrder().front()), 0);
}

TEST(MemoryOptimizerTest, ChannelSliceCopies) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 64});
  B.output(B.slice(X, 3, 0, 32));
  Graph G = B.take();
  MemoryOptimizer M(true);
  EXPECT_EQ(M.classify(G, G.topoOrder().front()), DataMovementCost::Copy);
}

TEST(MemoryOptimizerTest, HConcatIsFree) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 28, 56, 24});
  ValueId Y = B.input("y", TensorShape{1, 28, 56, 24});
  B.output(B.concat({X, Y}, 1));
  Graph G = B.take();
  MemoryOptimizer M(true);
  EXPECT_EQ(M.classify(G, G.topoOrder().front()), DataMovementCost::Free);
}

TEST(MemoryOptimizerTest, PadFoldsIntoAllocation) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 28, 28, 24});
  B.output(B.pad(X, 1, 1, 1, 1));
  Graph G = B.take();
  EXPECT_EQ(MemoryOptimizer(true).classify(G, G.topoOrder().front()),
            DataMovementCost::Free);
}

TEST(MemoryOptimizerTest, DisabledOptimizerCopiesEverything) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 28, 28, 24});
  ValueId S = B.slice(X, 1, 0, 14);
  ValueId P = B.pad(S, 1, 1, 1, 1);
  B.output(P);
  Graph G = B.take();
  MemoryOptimizer Off(false);
  for (NodeId Id : G.topoOrder()) {
    EXPECT_EQ(Off.classify(G, Id), DataMovementCost::Copy);
    EXPECT_GT(Off.copyBytes(G, Id), 0);
  }
}

TEST(MemoryOptimizerTest, ParamSliceAlwaysFree) {
  // MD-DP output-feature splits slice the weight matrix; weights are
  // placed at compile time, so even a strided slice costs nothing.
  Graph G("t");
  ValueId W = G.addParam("w", TensorShape{512, 1000});
  ValueId O = G.addValue("o", TensorShape{});
  SliceAttrs A;
  A.Axis = 1;
  A.Begin = 0;
  A.End = 500;
  NodeId N = G.addNode(OpKind::Slice, "s", A, {W}, {O});
  EXPECT_EQ(MemoryOptimizer(true).classify(G, N), DataMovementCost::Free);
}

TEST(MemoryOptimizerTest, Rank2RowSliceFree) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{64, 768});
  B.output(B.slice(X, 0, 0, 32));
  Graph G = B.take();
  EXPECT_EQ(MemoryOptimizer(true).classify(G, G.topoOrder().front()),
            DataMovementCost::Free);
}

TEST(MemoryOptimizerTest, Rank2FeatureConcatOfBatch1Free) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 500});
  ValueId Y = B.input("y", TensorShape{1, 500});
  B.output(B.concat({X, Y}, 1));
  Graph G = B.take();
  EXPECT_EQ(MemoryOptimizer(true).classify(G, G.topoOrder().front()),
            DataMovementCost::Free);
}

TEST(MemoryOptimizerTest, ComputeNodesNotDataMovement) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  B.output(B.conv2d(X, 8, 1, 1, 0));
  Graph G = B.take();
  EXPECT_EQ(MemoryOptimizer(true).classify(G, G.topoOrder().front()),
            DataMovementCost::NotDataMovement);
}

TEST(MemoryOptimizerTest, FlattenAlwaysFree) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 7, 7, 512});
  B.output(B.flatten(X));
  Graph G = B.take();
  for (bool Enabled : {true, false})
    EXPECT_EQ(MemoryOptimizer(Enabled).classify(G, G.topoOrder().front()),
              DataMovementCost::Free);
}
