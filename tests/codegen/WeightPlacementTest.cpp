//===- tests/codegen/WeightPlacementTest.cpp - placement tests --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/WeightPlacement.h"

#include <gtest/gtest.h>

#include "core/PimFlow.h"
#include "ir/Builder.h"
#include "models/Zoo.h"

using namespace pf;

namespace {

PimKernelSpec spec(int64_t M, int64_t K, int64_t V) {
  PimKernelSpec S;
  S.M = M;
  S.K = K;
  S.NumVectors = V;
  return S;
}

} // namespace

TEST(WeightPlacementTest, RowMathExactCase) {
  // M=256 over 16 channels -> 16 rows/part -> 1 row/bank; K=512 fills
  // exactly one 512-element DRAM row per bank.
  PimConfig C = PimConfig::newtonPlusPlus();
  PimKernelPlan P;
  P.ChannelsForM = 16;
  EXPECT_EQ(dramRowsPerBank(spec(256, 512, 1), P, C), 1);
  // K=513 spills into a second row.
  EXPECT_EQ(dramRowsPerBank(spec(256, 513, 1), P, C), 2);
  // Unsplit matrix: 16 rows per bank of 512 elements -> 16 rows.
  P.ChannelsForM = 1;
  EXPECT_EQ(dramRowsPerBank(spec(256, 512, 1), P, C), 16);
}

TEST(WeightPlacementTest, EmptyGraphPlacesNothing) {
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 8, 8, 4});
  B.output(B.relu(X));
  Graph G = B.take();
  PlacementPlan Plan =
      placeWeights(G, PimConfig::newtonPlusPlus(), CodegenOptions{});
  EXPECT_TRUE(Plan.Entries.empty());
  EXPECT_EQ(Plan.RowsPerBankUsed, 0);
  EXPECT_TRUE(Plan.fits());
}

TEST(WeightPlacementTest, ModelsFitComfortably) {
  // Every evaluated model's offloaded weights fit a 1 GB/channel device
  // with room to spare.
  for (const std::string Model : {"mobilenet-v2", "vgg-16"}) {
    CompileResult R =
        PimFlow(OffloadPolicy::PimFlow).compileAndRun(buildModel(Model));
    PlacementPlan Plan = placeWeights(R.Transformed, R.Config.Pim,
                                      R.Config.Codegen);
    EXPECT_FALSE(Plan.Entries.empty()) << Model;
    EXPECT_TRUE(Plan.fits()) << Model;
    EXPECT_LT(Plan.utilization(), 0.5) << Model;
    EXPECT_GT(Plan.TotalWeightBytes, 0) << Model;
    EXPECT_GE(Plan.PhysicalWeightBytes, Plan.TotalWeightBytes) << Model;
  }
}

TEST(WeightPlacementTest, ReplicationCountsVectorSplits) {
  // A small-matrix/many-vector kernel maps with Cv > 1: its weights
  // replicate across the vector partitions.
  GraphBuilder B("t");
  ValueId X = B.input("x", TensorShape{1, 56, 56, 24});
  B.output(B.conv2d(X, 144, 1, 1, 0));
  Graph G = B.take();
  G.node(G.topoOrder().front()).Dev = Device::Pim;
  PlacementPlan Plan =
      placeWeights(G, PimConfig::newtonPlusPlus(), CodegenOptions{});
  ASSERT_EQ(Plan.Entries.size(), 1u);
  EXPECT_GT(Plan.Entries[0].Replicas, 1);
  EXPECT_EQ(Plan.PhysicalWeightBytes,
            Plan.TotalWeightBytes * Plan.Entries[0].Replicas);
}

TEST(WeightPlacementTest, TinyCapacityOverflows) {
  Graph Model = buildVgg16();
  CompileResult R = PimFlow(OffloadPolicy::NewtonPlus).compileAndRun(Model);
  PlacementPlan Plan = placeWeights(R.Transformed, R.Config.Pim,
                                    R.Config.Codegen,
                                    /*RowsPerBankCapacity=*/16);
  EXPECT_FALSE(Plan.fits());
  EXPECT_GT(Plan.utilization(), 1.0);
}
