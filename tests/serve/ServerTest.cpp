//===- tests/serve/ServerTest.cpp - Serve engine tests ----------*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The serve determinism contract (serve/Server.h): a given (models, spec,
// options) input yields byte-identical summaries for every --jobs=N,
// because outcomes are decided by the virtual-time event loop and worker
// threads only re-execute what the loop already admitted.
//
//===----------------------------------------------------------------------===//

#include <string>

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "obs/Scope.h"
#include "serve/ServeReport.h"
#include "serve/Server.h"
#include "support/Diagnostics.h"

using namespace pf;
using namespace pf::serve;

namespace {

std::vector<std::pair<std::string, Graph>> twoTenants() {
  // Two tenants of the same small graph: multi-model bookkeeping without
  // multi-minute searches.
  std::vector<std::pair<std::string, Graph>> Models;
  Models.emplace_back("toy-a", buildToy());
  Models.emplace_back("toy-b", buildToy());
  return Models;
}

ServerOptions contendedOptions(int Jobs) {
  ServerOptions SO;
  SO.Flow.PimChannels = 8;
  SO.Flow.PimFloor = 2;
  // A pool of 1.5x the planned count: the second taker finds a partial
  // remainder, which is what makes degraded grants reachable at all.
  SO.PoolChannels = 12;
  SO.MaxInflight = 3;
  SO.MaxQueue = 1;
  SO.Jobs = Jobs;
  return SO;
}

LoadSpec burstySpec() {
  LoadSpec Spec;
  Spec.Count = 32;
  Spec.Seed = 9;
  Spec.MeanGapUs = 2.0; // well under toy's service time: heavy contention
  Spec.Batches = {1, 4};
  return Spec;
}

TEST(ServerTest, SummaryIsByteIdenticalAcrossJobCounts) {
  const LoadSpec Spec = burstySpec();
  std::string Summaries[2];
  for (int I = 0; I < 2; ++I) {
    Server S(twoTenants(), contendedOptions(I == 0 ? 1 : 4));
    Summaries[I] = renderServeSummary(S.run(Spec));
  }
  EXPECT_EQ(Summaries[0], Summaries[1]);
}

TEST(ServerTest, ContentionReachesEveryOutcome) {
  Server S(twoTenants(), contendedOptions(2));
  DiagnosticEngine DE;
  const ServeResult R = S.run(burstySpec(), &DE);

  EXPECT_EQ(static_cast<int>(R.Sessions.size()), 32);
  EXPECT_EQ(R.Served + R.Degraded + R.FloorFallbacks + R.Shed, 32);
  EXPECT_GT(R.Served, 0);
  EXPECT_GT(R.Degraded, 0);
  EXPECT_GT(R.FloorFallbacks, 0);
  EXPECT_GT(R.Shed, 0);

  // Fully-executed timelines: no serve.timeline-gap diagnostics.
  EXPECT_FALSE(DE.hasCode(DiagCode::ServeTimelineGap));
  EXPECT_FALSE(DE.hasErrors());

  for (const auto &SP : R.Sessions) {
    const Session &Sess = *SP;
    EXPECT_LE(Sess.channelsGranted(), Sess.ChannelsWanted);
    switch (Sess.Outcome) {
    case RequestOutcome::Served:
      EXPECT_EQ(Sess.channelsGranted(), Sess.ChannelsWanted);
      break;
    case RequestOutcome::Degraded:
      EXPECT_GE(Sess.channelsGranted(), 2); // the floor
      EXPECT_LT(Sess.channelsGranted(), Sess.ChannelsWanted);
      break;
    case RequestOutcome::FloorFallback:
    case RequestOutcome::Shed:
      EXPECT_EQ(Sess.channelsGranted(), 0);
      break;
    }
    if (Sess.ran()) {
      EXPECT_GE(Sess.StartNs, Sess.Req.ArrivalNs);
      EXPECT_GT(Sess.EndNs, Sess.StartNs);
      // The session's private scope saw exactly its own engine run.
      const auto Counters = Sess.Scope.registry().counterSnapshot();
      int64_t Executions = 0;
      for (const auto &[Name, V] : Counters)
        if (Name == "engine.executions")
          Executions = V;
      EXPECT_EQ(Executions, 1);
    }
  }
}

TEST(ServerTest, ServeFamiliesLandInTheCallersScope) {
  obs::Scope Caller;
  obs::ScopeGuard Guard(Caller);
  Server S(twoTenants(), contendedOptions(1));
  const ServeResult R = S.run(burstySpec());

  int64_t Requests = 0, Served = 0, Shed = 0;
  for (const auto &[Name, V] : Caller.registry().counterSnapshot()) {
    if (Name == "serve.requests")
      Requests = V;
    else if (Name == "serve.served")
      Served = V;
    else if (Name == "serve.shed")
      Shed = V;
  }
  EXPECT_EQ(Requests, 32);
  EXPECT_EQ(Served, R.Served);
  EXPECT_EQ(Shed, R.Shed);

  bool SawLatency = false;
  for (const auto &[Name, Stats] : Caller.metrics().histogramSnapshot())
    if (Name == "serve.request_latency_ns") {
      SawLatency = true;
      EXPECT_EQ(Stats.Count, R.completed());
    }
  EXPECT_TRUE(SawLatency);
}

TEST(ServerTest, ReportAndBenchRowsRenderConsistently) {
  obs::Scope Caller;
  obs::ScopeGuard Guard(Caller);
  Server S(twoTenants(), contendedOptions(1));
  const ServeResult R = S.run(burstySpec());

  const std::string Report = renderServeReport(R);
  EXPECT_NE(Report.find("\"kind\":\"pimflow-serve-report\""),
            std::string::npos);
  EXPECT_NE(Report.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(Report.find("serve.requests"), std::string::npos);

  const std::string Bench = renderServeBenchJson(R);
  EXPECT_NE(Bench.find("serve/latency_p50"), std::string::npos);
  EXPECT_NE(Bench.find("serve/latency_p99"), std::string::npos);
  EXPECT_NE(Bench.find("\"model\":\"toy-a+toy-b\""), std::string::npos);
}

TEST(ServerTest, GpuOnlyPolicyServesEverythingWithoutChannels) {
  ServerOptions SO;
  SO.Policy = OffloadPolicy::GpuOnly;
  SO.MaxInflight = 4;
  SO.MaxQueue = 64;
  LoadSpec Spec;
  Spec.Count = 8;
  Spec.Seed = 3;
  Server S(twoTenants(), SO);
  const ServeResult R = S.run(Spec);
  EXPECT_EQ(R.PlannedChannels, 0);
  EXPECT_EQ(R.Served + R.Shed, 8);
  for (const auto &SP : R.Sessions)
    EXPECT_EQ(SP->channelsGranted(), 0);
}

} // namespace
