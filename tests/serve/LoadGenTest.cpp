//===- tests/serve/LoadGenTest.cpp - Load-generator unit tests --*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "serve/LoadGen.h"
#include "support/Diagnostics.h"

using namespace pf;
using namespace pf::serve;

namespace {

TEST(LoadGenTest, ParsesTheFullGrammar) {
  LoadSpec Spec;
  DiagnosticEngine DE;
  ASSERT_TRUE(LoadSpec::parse("count:24,seed:7,mean-gap-us:150,batch:1|2|4",
                              Spec, DE));
  EXPECT_EQ(Spec.Count, 24);
  EXPECT_EQ(Spec.Seed, 7u);
  EXPECT_DOUBLE_EQ(Spec.MeanGapUs, 150.0);
  EXPECT_EQ(Spec.Batches, (std::vector<int>{1, 2, 4}));
}

TEST(LoadGenTest, EmptySpecIsTheDefaults) {
  LoadSpec Spec;
  DiagnosticEngine DE;
  ASSERT_TRUE(LoadSpec::parse("", Spec, DE));
  EXPECT_EQ(Spec.Count, 32);
  EXPECT_EQ(Spec.Seed, 1u);
  EXPECT_EQ(Spec.Batches, (std::vector<int>{1}));
}

TEST(LoadGenTest, MalformedSpecsAreBadSpecDiagnostics) {
  for (const char *Bad :
       {"count:0", "count:nope", "seed:-1", "mean-gap-us:-5",
        "batch:0", "batch:1|9999", "gap:3", "count"}) {
    LoadSpec Spec;
    DiagnosticEngine DE;
    EXPECT_FALSE(LoadSpec::parse(Bad, Spec, DE)) << Bad;
    EXPECT_TRUE(DE.hasCode(DiagCode::ServeBadSpec)) << Bad;
  }
}

TEST(LoadGenTest, DeadlineKeyParsesAndStampsRequests) {
  LoadSpec Spec;
  DiagnosticEngine DE;
  ASSERT_TRUE(LoadSpec::parse("count:4,seed:2,deadline-us:750", Spec, DE));
  EXPECT_EQ(Spec.DeadlineUs, 750);
  for (const Request &Q : generateRequests(Spec, 2))
    EXPECT_EQ(Q.DeadlineNs, 750'000);
}

TEST(LoadGenTest, DeadlineConsumesNoRngDraw) {
  // The golden-stability contract: adding deadline-us must not shift the
  // gap/model/batch stream of an existing seed.
  LoadSpec Plain, Deadlined;
  DiagnosticEngine DE;
  ASSERT_TRUE(LoadSpec::parse("count:32,seed:7,batch:1|4", Plain, DE));
  ASSERT_TRUE(LoadSpec::parse("count:32,seed:7,batch:1|4,deadline-us:500",
                              Deadlined, DE));
  const auto A = generateRequests(Plain, 3);
  const auto B = generateRequests(Deadlined, 3);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].ArrivalNs, B[I].ArrivalNs);
    EXPECT_EQ(A[I].ModelIdx, B[I].ModelIdx);
    EXPECT_EQ(A[I].Batch, B[I].Batch);
    EXPECT_EQ(A[I].DeadlineNs, 0);
    EXPECT_EQ(B[I].DeadlineNs, 500'000);
  }
}

TEST(LoadGenTest, HostileSpecsNeverCrashOnlyDiagnose) {
  // The negative-parse sweep: bad keys, overflow, empty batch lists,
  // trailing garbage. Every one must fail with serve.bad-spec collected in
  // the engine — never a crash, never a silent acceptance.
  for (const char *Bad : {
           "flavor:spicy",                      // unknown key
           "count:2000000",                     // above the cap
           "count:99999999999999999999",        // 64-bit overflow
           "count:-3",                          // negative
           "seed:twelve",                       // non-numeric
           "mean-gap-us:1e9",                   // floats rejected
           "deadline-us:-1",                    // negative deadline
           "deadline-us:2000000000",            // above the cap
           "deadline-us:soon",                  // non-numeric
           "batch:",                            // empty batch list
           "batch:1||4",                        // empty element
           "batch:-1|2",                        // negative batch
           "count:4,",                          // trailing comma
           "count:4,junk",                      // trailing garbage
           ",",                                 // nothing but separators
           ":",                                 // empty key and value
           "count:4;seed:2",                    // wrong separator
       }) {
    LoadSpec Spec;
    DiagnosticEngine DE;
    EXPECT_FALSE(LoadSpec::parse(Bad, Spec, DE)) << Bad;
    EXPECT_TRUE(DE.hasCode(DiagCode::ServeBadSpec)) << Bad;
    EXPECT_FALSE(DE.diagnostics().empty()) << Bad;
  }
}

TEST(LoadGenTest, BadEntriesDoNotClobberGoodOnes) {
  LoadSpec Spec;
  DiagnosticEngine DE;
  // Parse keeps collecting after an error: the good keys land, the bad
  // one diagnoses, and the whole parse still reports failure.
  EXPECT_FALSE(LoadSpec::parse("count:12,bogus:1,seed:5", Spec, DE));
  EXPECT_EQ(Spec.Count, 12);
  EXPECT_EQ(Spec.Seed, 5u);
  EXPECT_TRUE(DE.hasCode(DiagCode::ServeBadSpec));
}

TEST(LoadGenTest, GenerationIsDeterministicAndWellFormed) {
  LoadSpec Spec;
  DiagnosticEngine DE;
  ASSERT_TRUE(LoadSpec::parse("count:64,seed:5,mean-gap-us:50,batch:1|8",
                              Spec, DE));
  const auto A = generateRequests(Spec, 3);
  const auto B = generateRequests(Spec, 3);
  ASSERT_EQ(A.size(), 64u);

  int64_t PrevArrival = -1;
  bool SawModel[3] = {false, false, false};
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Id, static_cast<int>(I));
    EXPECT_EQ(A[I].Id, B[I].Id);
    EXPECT_EQ(A[I].ModelIdx, B[I].ModelIdx);
    EXPECT_EQ(A[I].Batch, B[I].Batch);
    EXPECT_EQ(A[I].ArrivalNs, B[I].ArrivalNs);
    EXPECT_GE(A[I].ArrivalNs, PrevArrival);
    PrevArrival = A[I].ArrivalNs;
    ASSERT_GE(A[I].ModelIdx, 0);
    ASSERT_LT(A[I].ModelIdx, 3);
    SawModel[A[I].ModelIdx] = true;
    EXPECT_TRUE(A[I].Batch == 1 || A[I].Batch == 8);
  }
  // 64 draws over 3 models: all of them show up.
  EXPECT_TRUE(SawModel[0] && SawModel[1] && SawModel[2]);
}

TEST(LoadGenTest, DifferentSeedsDiverge) {
  LoadSpec A, B;
  DiagnosticEngine DE;
  ASSERT_TRUE(LoadSpec::parse("count:16,seed:1", A, DE));
  ASSERT_TRUE(LoadSpec::parse("count:16,seed:2", B, DE));
  const auto RA = generateRequests(A, 2);
  const auto RB = generateRequests(B, 2);
  bool Different = false;
  for (size_t I = 0; I < RA.size(); ++I)
    Different |= RA[I].ArrivalNs != RB[I].ArrivalNs ||
                 RA[I].ModelIdx != RB[I].ModelIdx;
  EXPECT_TRUE(Different);
}

} // namespace
