//===- tests/serve/SessionReentrancyTest.cpp - Concurrent sessions -*-C++-*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The singleton-reentrancy fix under TSan (ci.sh tier 3): two sessions
// executing engine runs concurrently on different threads, each under its
// own obs::Scope, must neither race nor cross-pollute — every counter a
// run bumps lands in that run's scope, and the totals per scope are
// independent of interleaving. Before the scope routing, both threads
// hammered Registry::instance() and the per-session attribution was
// meaningless.
//
//===----------------------------------------------------------------------===//

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "obs/Counters.h"
#include "obs/Scope.h"
#include "runtime/ExecutionEngine.h"
#include "runtime/SystemConfig.h"

using namespace pf;

namespace {

int64_t counterOf(const obs::Scope &S, const char *Name) {
  for (const auto &[N, V] : S.registry().counterSnapshot())
    if (N == Name)
      return V;
  return 0;
}

TEST(SessionReentrancyTest, ConcurrentScopedRunsKeepIndependentStats) {
  obs::resetAll();
  const bool WasEnabled = obs::Registry::instance().enabled();
  obs::Registry::instance().setEnabled(false);
  const Graph G = buildToy();
  constexpr int NumSessions = 2;
  constexpr int RunsPerSession = 3;

  std::vector<obs::Scope> Scopes(NumSessions);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumSessions; ++T)
    Threads.emplace_back([&, T] {
      obs::ScopeGuard Guard(Scopes[static_cast<size_t>(T)]);
      for (int I = 0; I < RunsPerSession; ++I) {
        ExecutionEngine Engine(SystemConfig::dual());
        const Timeline TL = Engine.execute(G);
        ASSERT_GT(TL.TotalNs, 0.0);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  for (const obs::Scope &S : Scopes) {
    // Each scope saw exactly its own runs — not 0 (lost to the globals),
    // not 2x (bled in from the sibling session).
    EXPECT_EQ(counterOf(S, "engine.executions"), RunsPerSession);
    EXPECT_GT(counterOf(S, "engine.nodes_scheduled"), 0);
  }
  // And nothing leaked into the process-wide registry.
  EXPECT_EQ(obs::Registry::instance().counterSnapshot().size(), 0u);
  obs::Registry::instance().setEnabled(WasEnabled);
}

TEST(SessionReentrancyTest, ScopedAndGlobalThreadsCoexist) {
  obs::resetAll();
  const bool WasEnabled = obs::Registry::instance().enabled();
  obs::Registry::instance().setEnabled(true);
  const Graph G = buildToy();

  obs::Scope Session;
  std::thread Scoped([&] {
    obs::ScopeGuard Guard(Session);
    ExecutionEngine(SystemConfig::dual()).execute(G);
  });
  // This thread has no guard: the historical global-singleton behaviour.
  ExecutionEngine(SystemConfig::dual()).execute(G);
  Scoped.join();

  EXPECT_EQ(counterOf(Session, "engine.executions"), 1);
  int64_t GlobalExecutions = 0;
  for (const auto &[N, V] : obs::Registry::instance().counterSnapshot())
    if (N == "engine.executions")
      GlobalExecutions = V;
  EXPECT_EQ(GlobalExecutions, 1);

  obs::Registry::instance().setEnabled(WasEnabled);
  obs::resetAll();
}

} // namespace
