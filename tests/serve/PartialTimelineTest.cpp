//===- tests/serve/PartialTimelineTest.cpp - find() vs scheduleOf() -*-C++-*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The partially-executed-timeline contract serve and recovery code rely
// on: Timeline::find() answers "never scheduled" with nullptr (absence is
// an answer, not a bug), while scheduleOf() dies through fatal() with a
// diagnosable message. Serve's per-session run probes with find() and
// surfaces gaps as serve.timeline-gap diagnostics, so a truncated
// timeline can never crash the server.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "runtime/ExecutionEngine.h"
#include "runtime/SystemConfig.h"

using namespace pf;

namespace {

Timeline truncatedToyTimeline(NodeId *Dropped) {
  Timeline TL = ExecutionEngine(SystemConfig::gpuOnly()).execute(buildToy());
  // Simulate a partial execution (an aborted or recovering run) by
  // dropping the last scheduled node.
  *Dropped = TL.Nodes.back().Id;
  TL.Nodes.pop_back();
  return TL;
}

TEST(PartialTimelineTest, FindProbesAbsenceWithoutDying) {
  NodeId Dropped = InvalidNode;
  const Timeline TL = truncatedToyTimeline(&Dropped);
  ASSERT_FALSE(TL.Nodes.empty());

  // Present nodes resolve; the dropped one probes to nullptr.
  EXPECT_NE(TL.find(TL.Nodes.front().Id), nullptr);
  EXPECT_EQ(TL.find(Dropped), nullptr);
}

TEST(PartialTimelineTest, ScheduleOfDiesDiagnosablyOnGaps) {
  NodeId Dropped = InvalidNode;
  const Timeline TL = truncatedToyTimeline(&Dropped);
  EXPECT_DEATH((void)TL.scheduleOf(Dropped), "no schedule entry");
}

} // namespace
