//===- tests/serve/ChannelPressureTest.cpp - Seeded pressure matrix -*-C++-*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Channel-pressure coverage: across a seeded matrix of pool sizes,
// floors, and admission bounds, a request that cannot get its planned
// channels deterministically degrades (>= floor) or falls back to the
// GPU floor — and no session ever executes on a channel it does not own:
// any two sessions whose service intervals overlap in virtual time hold
// disjoint channel sets.
//
//===----------------------------------------------------------------------===//

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "serve/Server.h"

using namespace pf;
using namespace pf::serve;

namespace {

struct Pressure {
  int Pool;
  int Floor;
  int MaxInflight;
  int MaxQueue;
  uint64_t Seed;
};

ServeResult runPressure(const Pressure &P) {
  ServerOptions SO;
  SO.Flow.PimChannels = 8;
  SO.Flow.PimFloor = P.Floor;
  SO.PoolChannels = P.Pool;
  SO.MaxInflight = P.MaxInflight;
  SO.MaxQueue = P.MaxQueue;
  SO.Jobs = 2;

  LoadSpec Spec;
  Spec.Count = 24;
  Spec.Seed = P.Seed;
  Spec.MeanGapUs = 3.0;
  Spec.Batches = {1, 2};

  std::vector<std::pair<std::string, Graph>> Models;
  Models.emplace_back("toy", buildToy());
  Server S(std::move(Models), SO);
  return S.run(Spec);
}

TEST(ChannelPressureTest, MatrixDegradesOrFallsBackDeterministically) {
  const std::vector<Pressure> Matrix = {
      {8, 1, 2, 4, 1},  // pool == planned: grants are all-or-floor
      {12, 2, 3, 1, 2}, // 1.5x pool: partial remainders -> degraded
      {12, 2, 3, 1, 3}, // same shape, different arrival stream
      {20, 4, 4, 0, 4}, // 2.5x pool, no queue: immediate decisions only
      {6, 1, 3, 2, 5},  // pool *below* planned: nothing can be served full
  };

  for (const Pressure &P : Matrix) {
    SCOPED_TRACE(testing::Message()
                 << "pool=" << P.Pool << " floor=" << P.Floor
                 << " inflight=" << P.MaxInflight << " queue=" << P.MaxQueue
                 << " seed=" << P.Seed);
    const ServeResult R = runPressure(P);
    EXPECT_EQ(R.Served + R.Degraded + R.FloorFallbacks + R.Shed, 24);

    for (const auto &SP : R.Sessions) {
      const Session &S = *SP;
      // A grant never exceeds the want or the pool, and every granted id
      // is a real channel of the pool.
      EXPECT_LE(S.channelsGranted(), S.ChannelsWanted);
      EXPECT_LE(S.channelsGranted(), P.Pool);
      for (int C : S.Channels) {
        EXPECT_GE(C, 0);
        EXPECT_LT(C, P.Pool);
      }
      switch (S.Outcome) {
      case RequestOutcome::Served:
        EXPECT_EQ(S.channelsGranted(), S.ChannelsWanted);
        break;
      case RequestOutcome::Degraded:
        EXPECT_GE(S.channelsGranted(), P.Floor);
        EXPECT_LT(S.channelsGranted(), S.ChannelsWanted);
        break;
      case RequestOutcome::FloorFallback:
      case RequestOutcome::Shed:
        EXPECT_TRUE(S.Channels.empty());
        break;
      }
    }

    // Pool below planned: a full grant is impossible by construction.
    if (P.Pool < 8) {
      EXPECT_EQ(R.Served, 0);
    }

    // Exclusivity: overlapping service intervals => disjoint channels.
    for (size_t I = 0; I < R.Sessions.size(); ++I) {
      const Session &A = *R.Sessions[I];
      if (!A.ran() || A.Channels.empty())
        continue;
      for (size_t J = I + 1; J < R.Sessions.size(); ++J) {
        const Session &B = *R.Sessions[J];
        if (!B.ran() || B.Channels.empty())
          continue;
        const bool Overlap = A.StartNs < B.EndNs && B.StartNs < A.EndNs;
        if (!Overlap)
          continue;
        std::set<int> Union(A.Channels.begin(), A.Channels.end());
        for (int C : B.Channels)
          EXPECT_TRUE(Union.insert(C).second)
              << "sessions " << A.Req.Id << " and " << B.Req.Id
              << " both executed on channel " << C;
      }
    }
  }
}

TEST(ChannelPressureTest, RerunsAreByteIdentical) {
  const Pressure P = {12, 2, 3, 1, 7};
  const std::string First = renderServeSummary(runPressure(P));
  const std::string Second = renderServeSummary(runPressure(P));
  EXPECT_EQ(First, Second);
  EXPECT_NE(First.find("outcome=degraded"), std::string::npos);
}

} // namespace
