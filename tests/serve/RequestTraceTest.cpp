//===- tests/serve/RequestTraceTest.cpp - Request tracing tests -*- C++ -*-===//
//
// Part of the PIMFlow reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The per-request tracing contract (docs/INTERNALS.md section 15):
//
//  - Span conservation: every admitted request owns exactly one root
//    span; every request has exactly one queue span; shed requests have
//    no exec span; sampled-out requests emit zero events.
//  - Determinism: the rendered trace is byte-identical for --jobs=1 and
//    --jobs=4, because it is built from virtual-time records alone.
//  - Tail sampling covers exactly the interesting requests: shed,
//    deadline-missed, faulted, and the slowest-K completions.
//  - Correlation: flight-recorder request events and the serve report's
//    segments carry the same request/trace ids the trace lanes use.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "models/Zoo.h"
#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "obs/Scope.h"
#include "obs/TraceCheck.h"
#include "pim/FaultModel.h"
#include "serve/ServeReport.h"
#include "serve/Server.h"

using namespace pf;
using namespace pf::serve;

namespace {

std::vector<std::pair<std::string, Graph>> tenants() {
  std::vector<std::pair<std::string, Graph>> Models;
  Models.emplace_back("toy-a", buildToy());
  Models.emplace_back("toy-b", buildToy());
  return Models;
}

/// The serve_chaos baseline: a 12-channel pool under 8-channel plans, a
/// hair-trigger breaker, and mid-stream outages on channel 0 — every
/// outcome and the fault path reachable in one 24-request stream.
ServerOptions chaosOptions(int Jobs) {
  ServerOptions SO;
  SO.Flow.PimChannels = 8;
  SO.Flow.PimFloor = 2;
  SO.PoolChannels = 12;
  SO.MaxInflight = 3;
  SO.MaxQueue = 2;
  SO.Jobs = Jobs;
  SO.BreakerThreshold = 1;
  SO.BreakerCooldownUs = 100;
  SO.RetryBudget = 8;
  DiagnosticEngine DE;
  auto F = FaultModel::parse("dead@200..700:0,dead@900..1600:0", DE);
  EXPECT_TRUE(F.has_value()) << DE.render();
  if (F)
    SO.Faults = *std::move(F);
  return SO;
}

LoadSpec chaosSpec() {
  LoadSpec Spec;
  Spec.Count = 24;
  Spec.Seed = 7;
  Spec.MeanGapUs = 50.0;
  Spec.Batches = {1, 4};
  Spec.DeadlineUs = 4000;
  return Spec;
}

/// Non-metadata events of \p Doc on (pid, tid), in file order. Metadata
/// ('M') names the process/threads and is not request data, so it does
/// not count toward a request lane's contents.
std::vector<const obs::JsonValue *>
laneEvents(const obs::JsonValue &Doc, int Pid, int Tid) {
  std::vector<const obs::JsonValue *> Out;
  const obs::JsonValue *Events = Doc.find("traceEvents");
  if (!Events)
    return Out;
  for (const obs::JsonValue &E : Events->Array) {
    const obs::JsonValue *P = E.find("ph");
    if (P && P->isString() && P->Str == "M")
      continue;
    if (static_cast<int>(E.numberOr("pid", -1)) == Pid &&
        static_cast<int>(E.numberOr("tid", -1)) == Tid)
      Out.push_back(&E);
  }
  return Out;
}

size_t countSpans(const std::vector<const obs::JsonValue *> &Lane,
                  const char *Ph, const char *Cat) {
  size_t N = 0;
  for (const obs::JsonValue *E : Lane) {
    const obs::JsonValue *P = E->find("ph");
    const obs::JsonValue *C = E->find("cat");
    if (P && P->isString() && P->Str == Ph && C && C->isString() &&
        C->Str == Cat)
      ++N;
  }
  return N;
}

TEST(RequestTraceTest, SamplePolicyParsesTheGrammar) {
  DiagnosticEngine DE;
  TraceSamplePolicy P;
  ASSERT_TRUE(TraceSamplePolicy::parse("all", P, DE));
  EXPECT_EQ(P.K, TraceSamplePolicy::Kind::All);
  EXPECT_EQ(P.describe(), "all");

  ASSERT_TRUE(TraceSamplePolicy::parse("tail", P, DE));
  EXPECT_EQ(P.K, TraceSamplePolicy::Kind::Tail);
  EXPECT_EQ(P.SlowestK, 8);
  EXPECT_EQ(P.describe(), "tail:8");

  ASSERT_TRUE(TraceSamplePolicy::parse("tail:3", P, DE));
  EXPECT_EQ(P.SlowestK, 3);
  EXPECT_EQ(P.describe(), "tail:3");

  ASSERT_TRUE(TraceSamplePolicy::parse("tail:0", P, DE));
  EXPECT_EQ(P.SlowestK, 0);
  EXPECT_FALSE(DE.hasErrors());

  for (const char *Bad : {"", "head", "tail:", "tail:-1", "tail:abc",
                          "tail:9999999999", "ALL"}) {
    DiagnosticEngine BadDE;
    TraceSamplePolicy Q;
    EXPECT_FALSE(TraceSamplePolicy::parse(Bad, Q, BadDE)) << Bad;
    EXPECT_TRUE(BadDE.hasErrors()) << Bad;
  }
}

TEST(RequestTraceTest, TraceIdsAreStableAndDistinct) {
  const uint64_t A = requestTraceId(7, 0);
  EXPECT_EQ(A, requestTraceId(7, 0));
  EXPECT_NE(A, requestTraceId(7, 1));
  EXPECT_NE(A, requestTraceId(8, 0));

  const std::string Hex = formatTraceId(A);
  ASSERT_EQ(Hex.size(), 16u);
  for (char C : Hex)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << Hex;
  EXPECT_EQ(formatTraceId(0), "0000000000000000");
}

TEST(RequestTraceTest, TraceObeysSpanConservationLaws) {
  // A one-deep admission with no wait line sheds the arrivals that land
  // mid-run, so the shed laws have something to bite on; the channel-0
  // outages still interrupt live grants.
  ServerOptions SO = chaosOptions(1);
  SO.MaxInflight = 1;
  SO.MaxQueue = 0;
  Server S(tenants(), SO);
  const ServeResult R = S.run(chaosSpec());
  // The stream must exercise both the shed and the fault paths for the
  // laws below to bite.
  ASSERT_GT(R.Shed, 0);
  ASSERT_GT(R.FaultInterrupts, 0);

  const std::string Trace = S.renderTrace(R);
  std::string Error;
  const auto Doc = obs::JsonValue::parse(Trace, &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  obs::TraceCheckSummary Summary;
  ASSERT_TRUE(obs::checkChromeTrace(*Doc, Error, &Summary)) << Error;

  // Under the default all policy, every request is sampled.
  ASSERT_EQ(R.SampledRequests.size(), R.Sessions.size());
  for (const auto &SP : R.Sessions) {
    const Session &Sess = *SP;
    const auto Lane = laneEvents(*Doc, 3, Sess.Req.Id);
    ASSERT_FALSE(Lane.empty()) << "req " << Sess.Req.Id;
    // Exactly one root span and one queue span per request.
    EXPECT_EQ(countSpans(Lane, "B", "serve.request"), 1u)
        << "req " << Sess.Req.Id;
    EXPECT_EQ(countSpans(Lane, "E", "serve.request"), 1u)
        << "req " << Sess.Req.Id;
    EXPECT_EQ(countSpans(Lane, "B", "serve.queue"), 1u)
        << "req " << Sess.Req.Id;
    // Shed requests never opened an exec span; ran requests opened one
    // per attempt.
    const size_t ExecSpans = countSpans(Lane, "B", "serve.exec");
    if (Sess.ran())
      EXPECT_EQ(ExecSpans, Sess.Attempts.size()) << "req " << Sess.Req.Id;
    else
      EXPECT_EQ(ExecSpans, 0u) << "req " << Sess.Req.Id;
  }
}

TEST(RequestTraceTest, SampledOutRequestsEmitZeroEvents) {
  ServerOptions SO = chaosOptions(1);
  DiagnosticEngine DE;
  ASSERT_TRUE(TraceSamplePolicy::parse("tail:2", SO.Sample, DE));
  Server S(tenants(), SO);
  const ServeResult R = S.run(chaosSpec());
  ASSERT_LT(R.SampledRequests.size(), R.Sessions.size());

  std::string Error;
  const auto Doc = obs::JsonValue::parse(S.renderTrace(R), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;
  ASSERT_TRUE(obs::checkChromeTrace(*Doc, Error)) << Error;

  const std::set<int> Sampled(R.SampledRequests.begin(),
                              R.SampledRequests.end());
  for (const auto &SP : R.Sessions) {
    const int Id = SP->Req.Id;
    EXPECT_EQ(SP->Sampled, Sampled.count(Id) == 1) << "req " << Id;
    if (!Sampled.count(Id)) {
      EXPECT_TRUE(laneEvents(*Doc, 3, Id).empty())
          << "unsampled req " << Id << " leaked trace events";
    }
  }
}

TEST(RequestTraceTest, TailSamplingCoversShedMissedAndFaulted) {
  ServerOptions SO = chaosOptions(1);
  DiagnosticEngine DE;
  ASSERT_TRUE(TraceSamplePolicy::parse("tail:0", SO.Sample, DE));
  Server S(tenants(), SO);
  LoadSpec Spec = chaosSpec();
  // Tighter deadlines than the chaos baseline so all three tail classes
  // (shed, missed-run, faulted) appear.
  Spec.Count = 32;
  Spec.MeanGapUs = 2.0;
  Spec.DeadlineUs = 30;
  const ServeResult R = S.run(Spec);
  ASSERT_GT(R.Shed, 0);
  ASSERT_GT(R.DeadlineMissedRun, 0);

  EXPECT_TRUE(std::is_sorted(R.SampledRequests.begin(),
                             R.SampledRequests.end()));
  const std::set<int> Sampled(R.SampledRequests.begin(),
                              R.SampledRequests.end());
  for (const auto &SP : R.Sessions) {
    const Session &Sess = *SP;
    const bool Tail =
        !Sess.ran() ||
        Sess.deadlineState() == DeadlineState::MissedRun ||
        Sess.Interrupts > 0 || Sess.Retries > 0 ||
        Sess.Reason == OutcomeReason::FaultRetry ||
        Sess.Reason == OutcomeReason::RetryBudget;
    // With SlowestK = 0 the tail classes are the *whole* sampled set.
    EXPECT_EQ(Sampled.count(Sess.Req.Id) == 1, Tail)
        << "req " << Sess.Req.Id;
  }
}

TEST(RequestTraceTest, TraceIsByteIdenticalAcrossJobCounts) {
  std::string Traces[2];
  for (int I = 0; I < 2; ++I) {
    ServerOptions SO = chaosOptions(I == 0 ? 1 : 4);
    DiagnosticEngine DE;
    ASSERT_TRUE(TraceSamplePolicy::parse("tail", SO.Sample, DE));
    Server S(tenants(), SO);
    Traces[I] = S.renderTrace(S.run(chaosSpec()));
  }
  EXPECT_EQ(Traces[0], Traces[1]);
}

TEST(RequestTraceTest, FlightEventsCarryRequestIds) {
  obs::FlightRecorder &FR = obs::FlightRecorder::instance();
  FR.clear();
  FR.setEnabled(true);

  Server S(tenants(), chaosOptions(1));
  const ServeResult R = S.run(chaosSpec());
  ASSERT_GT(R.RetriesUsed, 0);

  int Admits = 0, Dones = 0, Retries = 0, Sheds = 0;
  for (const obs::FlightEvent &E : FR.merged()) {
    switch (E.Kind) {
    case obs::FlightEventKind::RequestAdmit:
      ++Admits;
      EXPECT_GE(E.Req, 0);
      break;
    case obs::FlightEventKind::RequestDone:
      ++Dones;
      EXPECT_GE(E.Req, 0);
      break;
    case obs::FlightEventKind::RequestRetry:
      ++Retries;
      EXPECT_GE(E.Req, 0);
      break;
    case obs::FlightEventKind::RequestShed:
      ++Sheds;
      EXPECT_GE(E.Req, 0);
      break;
    default:
      break;
    }
  }
  // The ring holds 256 events per thread and the single-threaded loop
  // emits well under that here, so the tallies are exact.
  EXPECT_EQ(Admits, R.completed());
  EXPECT_EQ(Dones, R.completed());
  EXPECT_EQ(Retries, R.RetriesUsed);
  EXPECT_EQ(Sheds, R.Shed);

  // Breaker trips caused by interrupting a live grant are attributed to
  // the grant holder, and the trip's probes/readmit inherit the id.
  bool SawAttributedTrip = false;
  for (const obs::FlightEvent &E : FR.merged())
    if (E.Kind == obs::FlightEventKind::BreakerTrip && E.Req >= 0)
      SawAttributedTrip = true;
  EXPECT_TRUE(SawAttributedTrip);
  EXPECT_NE(FR.renderText().find("req="), std::string::npos);
  FR.clear();
}

TEST(RequestTraceTest, HealthEventsAttributeTheTrippingRequest) {
  Server S(tenants(), chaosOptions(1));
  const ServeResult R = S.run(chaosSpec());
  ASSERT_GT(R.BreakerTrips, 0);

  // A trip with a known holder passes its request id to the cooldown
  // probes and the eventual readmit of the same channel.
  std::map<int, int> LastTripReq;
  for (const BreakerEvent &E : R.HealthEvents) {
    if (E.K == BreakerEvent::Kind::Trip) {
      LastTripReq[E.Channel] = E.ReqId;
    } else if (E.K == BreakerEvent::Kind::Probe ||
               (E.K == BreakerEvent::Kind::Readmit && E.Ok)) {
      EXPECT_EQ(E.ReqId, LastTripReq.count(E.Channel)
                             ? LastTripReq[E.Channel]
                             : -1)
          << "channel " << E.Channel;
    }
  }
}

TEST(RequestTraceTest, ReportRendersRequestSegments) {
  obs::Scope Caller;
  obs::ScopeGuard Guard(Caller);
  Server S(tenants(), chaosOptions(1));
  const ServeResult R = S.run(chaosSpec());

  // Pick a faulted request: it has both an exec and a retry segment.
  int Faulted = -1;
  for (const auto &SP : R.Sessions)
    if (SP->Interrupts > 0 && SP->ran())
      Faulted = SP->Req.Id;
  ASSERT_GE(Faulted, 0);

  std::string Error;
  const auto Doc = obs::JsonValue::parse(renderServeReport(R), &Error);
  ASSERT_TRUE(Doc.has_value()) << Error;

  std::string RenderError;
  const std::string Text =
      renderServeRequestText(*Doc, Faulted, &RenderError);
  ASSERT_FALSE(Text.empty()) << RenderError;
  EXPECT_NE(Text.find("queue-wait"), std::string::npos);
  EXPECT_NE(Text.find("grant"), std::string::npos);
  EXPECT_NE(Text.find("exec-phase"), std::string::npos);
  EXPECT_NE(Text.find("retry"), std::string::npos);
  EXPECT_NE(Text.find(formatTraceId(
                R.Sessions[static_cast<size_t>(Faulted)]->TraceId)),
            std::string::npos);

  // Unknown ids and unsampled ids are errors, not empty renders.
  EXPECT_TRUE(renderServeRequestText(*Doc, 9999, &RenderError).empty());
  EXPECT_NE(RenderError.find("not in the report"), std::string::npos);
}

} // namespace
